(* Bounded-safe migration planner ([Qp_place.Migrate]): hand-sized unit
   checks plus the qcheck safety property from the live-reconfiguration
   work — no intermediate placement of a plan ever violates quorum
   intersection or the [(alpha+1) * cap] load allowance. *)

module Rng = Qp_util.Rng
module Generators = Qp_graph.Generators
module Simple_qs = Qp_quorum.Simple_qs
module Grid_qs = Qp_quorum.Grid_qs
module Strategy = Qp_quorum.Strategy
open Qp_place

(* Same instance family as test_place: random geometric graph, small
   quorum system, capacities generous enough that random placements are
   usually feasible (tight enough that plans still need ordering). *)
let random_qpp seed =
  let rng = Rng.create seed in
  let n = 6 + Rng.int rng 8 in
  let g, _ = Generators.random_geometric rng n 0.45 in
  let system =
    match Rng.int rng 3 with
    | 0 -> Simple_qs.triangle ()
    | 1 -> Grid_qs.make 2
    | _ -> Simple_qs.wheel 5
  in
  let strategy = Strategy.uniform system in
  let loads = Strategy.loads system strategy in
  let max_load = Array.fold_left Float.max 0. loads in
  let caps = Array.init n (fun _ -> max_load *. (1. +. Rng.float rng 1.5)) in
  (Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy (), rng)

let bound = 3.

(* ------------------------------------------------------------------ *)
(* Unit checks                                                         *)
(* ------------------------------------------------------------------ *)

let path3_problem () =
  let g = Qp_graph.Graph.create 3 in
  Qp_graph.Graph.add_edge g 0 1 1.;
  Qp_graph.Graph.add_edge g 1 2 1.;
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  let caps = Array.make 3 10. in
  Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy ()

let test_identity_plan () =
  let p = path3_problem () in
  let f = [| 0; 1; 2 |] in
  match Migrate.plan ~bound p ~current:f ~target:f with
  | Error e -> Alcotest.failf "identity plan: %s" (Qp_util.Qp_error.to_string e)
  | Ok pl ->
      Alcotest.(check int) "no moves" 0 (List.length pl.Migrate.moves);
      Alcotest.(check int) "no drains" 0 pl.Migrate.drains

let test_apply_move () =
  let f = [| 0; 1; 2 |] in
  let f' = Migrate.apply_move f { Migrate.elem = 1; src = 1; dst = 2 } in
  Alcotest.(check (array int)) "moved" [| 0; 2; 2 |] f';
  Alcotest.(check (array int)) "original untouched" [| 0; 1; 2 |] f;
  Alcotest.check_raises "src mismatch" (Invalid_argument "Migrate.apply_move: source mismatch")
    (fun () -> ignore (Migrate.apply_move f { Migrate.elem = 0; src = 2; dst = 1 }))

let test_intermediates_shape () =
  let f = [| 0; 1; 2 |] in
  let moves =
    [ { Migrate.elem = 0; src = 0; dst = 1 }; { Migrate.elem = 1; src = 1; dst = 0 } ]
  in
  let states = Migrate.intermediates ~current:f moves in
  Alcotest.(check int) "one state per move" 2 (List.length states);
  Alcotest.(check (array int)) "final" [| 1; 0; 2 |]
    (List.nth states 1)

let test_infeasible_target () =
  (* Target piles every element on a node whose capacity cannot hold
     them even at the bound: the planner must refuse, not emit an
     unsafe plan. *)
  let g = Qp_graph.Graph.create 3 in
  Qp_graph.Graph.add_edge g 0 1 1.;
  Qp_graph.Graph.add_edge g 1 2 1.;
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  let caps = [| 10.; 0.1; 10. |] in
  let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  match Migrate.plan ~bound p ~current:[| 0; 0; 2 |] ~target:[| 1; 1; 1 |] with
  | Error (Qp_util.Qp_error.Infeasible _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Qp_util.Qp_error.to_string e)
  | Ok _ -> Alcotest.fail "planned into an over-bound target"

(* ------------------------------------------------------------------ *)
(* qcheck: every intermediate placement is safe                        *)
(* ------------------------------------------------------------------ *)

(* The independent verifier plus a from-scratch replay: every prefix
   placement must keep load(v) within max(bound * cap(v), starting
   load(v)) — the grandfathering rule — and reach the target exactly. *)
let intermediates_safe p ~current (pl : Migrate.plan) ~target =
  let start = Placement.node_loads p current in
  let allowance v =
    Float.max (bound *. p.Problem.capacities.(v)) start.(v) +. 1e-9
  in
  let ok_state f =
    let loads = Placement.node_loads p f in
    Array.for_all (fun v -> loads.(v) <= allowance v)
      (Array.init (Problem.n_nodes p) (fun v -> v))
  in
  let states = Migrate.intermediates ~current pl.Migrate.moves in
  List.for_all ok_state states
  && (states = [] || List.nth states (List.length states - 1) = target)

let prop_plan_intermediates_safe =
  QCheck.Test.make
    ~name:"every Migrate.plan intermediate respects the load allowance" ~count:120
    QCheck.small_int (fun seed ->
      let p, rng = random_qpp seed in
      match (Baselines.random rng p, Baselines.random rng p) with
      | Some current, Some target when current <> target -> (
          match Migrate.plan ~bound p ~current ~target with
          | Error _ -> true (* planner may refuse; it must never lie *)
          | Ok pl ->
              (match Migrate.check p ~current ~target pl with
              | Ok () -> true
              | Error e ->
                  QCheck.Test.fail_reportf "check rejected its own plan: %s"
                    (Qp_util.Qp_error.to_string e))
              && intermediates_safe p ~current pl ~target)
      | _ -> true)

let prop_plan_reaches_solver_target =
  (* The production path: migrate from a random placement to an LP
     placement. Solver targets respect capacities, so the planner
     should nearly always succeed — and when it does, the plan's own
     max_ratio must agree with a replay. *)
  QCheck.Test.make ~name:"plans to solver placements verify and report max_ratio"
    ~count:40 QCheck.small_int (fun seed ->
      let p, rng = random_qpp (seed + 5000) in
      match
        (Baselines.random rng p, Qpp_solver.solve ~alpha:2. p)
      with
      | Some current, Some r when current <> r.Qpp_solver.placement ->
          let target = r.Qpp_solver.placement in
          (match Migrate.plan ~bound p ~current ~target with
          | Error _ -> true
          | Ok pl ->
              let replayed =
                List.fold_left
                  (fun acc f -> Float.max acc (Placement.max_violation p f))
                  0.
                  (Migrate.intermediates ~current pl.Migrate.moves)
              in
              Migrate.check p ~current ~target pl = Ok ()
              && Float.abs (replayed -. pl.Migrate.max_ratio) <= 1e-6)
      | _ -> true)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_plan_intermediates_safe; prop_plan_reaches_solver_target ]

let suites =
  [ ( "migrate.unit",
      [ Alcotest.test_case "identity plan is empty" `Quick test_identity_plan;
        Alcotest.test_case "apply_move" `Quick test_apply_move;
        Alcotest.test_case "intermediates shape" `Quick test_intermediates_shape;
        Alcotest.test_case "over-bound target refused" `Quick test_infeasible_target ] );
    ("migrate.properties", qcheck_tests) ]
