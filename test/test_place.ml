open Qp_place
module Rng = Qp_util.Rng
module Metric = Qp_graph.Metric
module Generators = Qp_graph.Generators
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Simple_qs = Qp_quorum.Simple_qs
module Grid_qs = Qp_quorum.Grid_qs

let check_float = Alcotest.(check (float 1e-9))

(* Path 0-1-2 with the 2-of-3 triangle system, uniform strategy,
   cap = 2/3 per node (exactly one element each). *)
let triangle_on_path () =
  let system = Simple_qs.triangle () in
  Problem.of_graph_qpp ~graph:(Generators.path 3)
    ~capacities:(Array.make 3 (2. /. 3.))
    ~system ~strategy:(Strategy.uniform system) ()

(* ------------------------------------------------------------------ *)
(* Problem / placement                                                 *)
(* ------------------------------------------------------------------ *)

let test_problem_validation () =
  let system = Simple_qs.triangle () in
  let metric = Metric.of_graph (Generators.path 3) in
  Alcotest.check_raises "bad caps length"
    (Invalid_argument "Problem: capacities length must match metric size") (fun () ->
      ignore
        (Problem.make_qpp ~metric ~capacities:[| 1. |] ~system
           ~strategy:(Strategy.uniform system) ()));
  Alcotest.check_raises "negative cap" (Invalid_argument "Problem: negative capacity")
    (fun () ->
      ignore
        (Problem.make_qpp ~metric ~capacities:[| 1.; -1.; 1. |] ~system
           ~strategy:(Strategy.uniform system) ()));
  Alcotest.check_raises "bad v0" (Invalid_argument "Problem: v0 out of range") (fun () ->
      ignore
        (Problem.make_ssqpp ~metric ~capacities:(Array.make 3 1.) ~system
           ~strategy:(Strategy.uniform system) ~v0:9));
  Alcotest.check_raises "bad rates"
    (Invalid_argument "Problem: client rates must have positive sum") (fun () ->
      ignore
        (Problem.make_qpp ~metric ~capacities:(Array.make 3 1.) ~system
           ~strategy:(Strategy.uniform system) ~client_rates:[| 0.; 0.; 0. |] ()));
  Alcotest.check_raises "empty metric"
    (Invalid_argument "Problem: metric must have at least one node") (fun () ->
      ignore
        (Problem.make_qpp ~metric:(Metric.of_matrix [||]) ~capacities:[||] ~system
           ~strategy:(Strategy.uniform system) ()));
  (* Metric.scale with an infinite factor is the one public path that
     produces non-finite distances; the instance must refuse them. *)
  Alcotest.check_raises "non-finite metric"
    (Invalid_argument "Problem: non-finite metric entry") (fun () ->
      ignore
        (Problem.make_qpp ~metric:(Metric.scale metric infinity)
           ~capacities:(Array.make 3 1.) ~system ~strategy:(Strategy.uniform system) ()));
  Alcotest.check_raises "non-finite cap" (Invalid_argument "Problem: non-finite capacity")
    (fun () ->
      ignore
        (Problem.make_qpp ~metric ~capacities:[| 1.; Float.nan; 1. |] ~system
           ~strategy:(Strategy.uniform system) ()));
  Alcotest.check_raises "non-finite rate"
    (Invalid_argument "Problem: non-finite client rate") (fun () ->
      ignore
        (Problem.make_qpp ~metric ~capacities:(Array.make 3 1.) ~system
           ~strategy:(Strategy.uniform system) ~client_rates:[| 1.; infinity; 1. |] ()));
  (* Empty quorum systems are unconstructable: even the unchecked
     constructor refuses them, so no qpp can smuggle one in (the
     Problem-level guards are defense in depth). *)
  Alcotest.check_raises "empty universe"
    (Invalid_argument "Quorum.make: universe must be positive") (fun () ->
      ignore (Quorum.make_unchecked ~universe:0 [||]));
  Alcotest.check_raises "no quorums" (Invalid_argument "Quorum.make: empty family")
    (fun () -> ignore (Quorum.make_unchecked ~universe:3 [||]))

let test_problem_capacity_feasible () =
  let p = triangle_on_path () in
  Alcotest.(check bool) "feasible" true (Problem.capacity_feasible p);
  let system = Simple_qs.triangle () in
  let tight =
    Problem.of_graph_qpp ~graph:(Generators.path 3) ~capacities:(Array.make 3 0.1)
      ~system ~strategy:(Strategy.uniform system) ()
  in
  Alcotest.(check bool) "infeasible" false (Problem.capacity_feasible tight)

let test_placement_loads () =
  let p = triangle_on_path () in
  let f = [| 0; 0; 2 |] in
  let loads = Placement.node_loads p f in
  check_float "node 0" (4. /. 3.) loads.(0);
  check_float "node 1" 0. loads.(1);
  check_float "node 2" (2. /. 3.) loads.(2);
  Alcotest.(check bool) "violates" false (Placement.respects_capacities p f);
  Alcotest.(check bool) "within 2x" true (Placement.respects_capacities ~slack:2. p f);
  check_float "violation factor" 2. (Placement.max_violation p f);
  Alcotest.(check (list int)) "used nodes" [ 0; 2 ] (Placement.used_nodes f);
  Alcotest.(check bool) "identity respects" true
    (Placement.respects_capacities p [| 0; 1; 2 |])

let test_placement_validation () =
  let p = triangle_on_path () in
  Alcotest.check_raises "length" (Invalid_argument "Placement.validate: length must equal universe size")
    (fun () -> Placement.validate p [| 0 |]);
  Alcotest.check_raises "range" (Invalid_argument "Placement.validate: node out of range")
    (fun () -> Placement.validate p [| 0; 1; 7 |])

(* ------------------------------------------------------------------ *)
(* Delay functionals (hand-computed)                                   *)
(* ------------------------------------------------------------------ *)

let test_max_delay_hand () =
  let p = triangle_on_path () in
  let f = [| 0; 1; 2 |] in
  check_float "Delta(0)" (5. /. 3.) (Delay.client_max_delay p f 0);
  check_float "Delta(1)" 1. (Delay.client_max_delay p f 1);
  check_float "Delta(2)" (5. /. 3.) (Delay.client_max_delay p f 2);
  check_float "avg" (13. /. 9.) (Delay.avg_max_delay p f)

let test_total_delay_hand () =
  let p = triangle_on_path () in
  let f = [| 0; 1; 2 |] in
  check_float "Gamma(0)" 2. (Delay.client_total_delay p f 0);
  check_float "Gamma(1)" (4. /. 3.) (Delay.client_total_delay p f 1);
  check_float "Gamma(2)" 2. (Delay.client_total_delay p f 2);
  check_float "avg" (16. /. 9.) (Delay.avg_total_delay p f)

let test_delay_colocated_zero () =
  (* All elements on the client's node: zero max-delay there. *)
  let system = Simple_qs.triangle () in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 3) ~capacities:[| 2.; 0.; 0. |]
      ~system ~strategy:(Strategy.uniform system) ()
  in
  let f = [| 0; 0; 0 |] in
  check_float "Delta(0) = 0" 0. (Delay.client_max_delay p f 0);
  check_float "Delta(2) = 2" 2. (Delay.client_max_delay p f 2)

let test_client_rates_weighting () =
  let system = Simple_qs.triangle () in
  let graph = Generators.path 3 in
  let mk rates =
    Problem.of_graph_qpp ~graph ~capacities:(Array.make 3 1.) ~system
      ~strategy:(Strategy.uniform system) ?client_rates:rates ()
  in
  let f = [| 0; 1; 2 |] in
  (* All rate on client 1: avg = Delta(1) = 1. *)
  check_float "rate-concentrated" 1.
    (Delay.avg_max_delay (mk (Some [| 0.; 1.; 0. |])) f);
  (* Uniform rates = unweighted. *)
  check_float "uniform rates" (13. /. 9.)
    (Delay.avg_max_delay (mk (Some [| 1.; 1.; 1. |])) f)

let test_ssqpp_delay () =
  let p = triangle_on_path () in
  let s = Problem.ssqpp_of_qpp p 1 in
  check_float "single-source = client delay" 1. (Delay.ssqpp_delay s [| 0; 1; 2 |])

(* ------------------------------------------------------------------ *)
(* Relay (Lemma 3.1)                                                   *)
(* ------------------------------------------------------------------ *)

let test_relay_hand () =
  let p = triangle_on_path () in
  let f = [| 0; 1; 2 |] in
  let a = Relay.analyze p f in
  (* v0 minimizes Delta: node 1. relayed = avg d(v,1) + Delta(1) =
     2/3 + 1 = 5/3; direct = 13/9; ratio = 15/13. *)
  Alcotest.(check int) "v0" 1 a.Relay.v0;
  check_float "direct" (13. /. 9.) a.Relay.direct;
  check_float "relayed" (5. /. 3.) a.Relay.relayed;
  check_float "ratio" (15. /. 13.) a.Relay.ratio;
  Alcotest.(check bool) "within bound" true (a.Relay.ratio <= Relay.bound)

let random_qpp seed =
  let rng = Rng.create seed in
  let n = 6 + Rng.int rng 8 in
  let g, _ = Generators.random_geometric rng n 0.45 in
  let system =
    match Rng.int rng 3 with
    | 0 -> Simple_qs.triangle ()
    | 1 -> Grid_qs.make 2
    | _ -> Simple_qs.wheel 5
  in
  let strategy = Strategy.uniform system in
  let loads = Strategy.loads system strategy in
  let max_load = Array.fold_left Float.max 0. loads in
  (* Generous capacities keep random placements feasible. *)
  let caps = Array.init n (fun _ -> max_load *. (1. +. Rng.float rng 2.)) in
  (Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy (), rng)

let prop_relay_bound =
  QCheck.Test.make ~name:"Lemma 3.1: relay ratio <= 5 (random placements)" ~count:80
    QCheck.small_int (fun seed ->
      let p, rng = random_qpp seed in
      match Baselines.random rng p with
      | None -> true (* nothing to check *)
      | Some f ->
          let a = Relay.analyze p f in
          a.Relay.ratio <= Relay.bound +. 1e-9)

let prop_relay_dominates_direct =
  QCheck.Test.make ~name:"relaying never beats direct routing" ~count:50
    QCheck.small_int (fun seed ->
      let p, rng = random_qpp (seed + 1000) in
      match Baselines.random rng p with
      | None -> true
      | Some f ->
          (* For each client, d(v,v0) + delta(v0,Q) >= delta(v,Q) by the
             triangle inequality, so the averages compare too. *)
          let a = Relay.analyze p f in
          a.Relay.relayed >= a.Relay.direct -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Exact solvers                                                       *)
(* ------------------------------------------------------------------ *)

let test_exact_dp_equals_brute_force () =
  for seed = 1 to 8 do
    let rng = Rng.create (2000 + seed) in
    let n = 5 + Rng.int rng 3 in
    let g, _ = Generators.random_geometric rng n 0.5 in
    let system = Simple_qs.triangle () in
    let strategy = Strategy.uniform system in
    let load = 2. /. 3. in
    let caps = Array.make n load in
    let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
    let s = Problem.ssqpp_of_qpp p 0 in
    match (Exact.ssqpp_uniform_dp s, Exact.ssqpp_brute_force s) with
    | Some (dp, fdp), Some (bf, fbf) ->
        Alcotest.(check bool) "same optimum" true (Float.abs (dp -. bf) < 1e-9);
        check_float "dp placement evaluates to dp" dp (Delay.ssqpp_delay s fdp);
        check_float "bf placement evaluates to bf" bf (Delay.ssqpp_delay s fbf)
    | _ -> Alcotest.fail "expected feasible instance"
  done

let test_exact_dp_infeasible () =
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 2)
      ~capacities:(Array.make 2 (2. /. 3.))
      ~system ~strategy ()
  in
  let s = Problem.ssqpp_of_qpp p 0 in
  Alcotest.(check bool) "too few nodes" true (Exact.ssqpp_uniform_dp s = None);
  Alcotest.(check bool) "brute force agrees" true (Exact.ssqpp_brute_force s = None)

let test_exact_dp_rejects_nonuniform () =
  let system = Simple_qs.star 3 in
  (* Star loads: hub 1, leaves 1/2 -> non-uniform. *)
  let strategy = Strategy.uniform system in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 4) ~capacities:(Array.make 4 1.)
      ~system ~strategy ()
  in
  let s = Problem.ssqpp_of_qpp p 0 in
  Alcotest.check_raises "nonuniform"
    (Invalid_argument "Exact.ssqpp_uniform_dp: element loads are not uniform") (fun () ->
      ignore (Exact.ssqpp_uniform_dp s))

let test_qpp_brute_force_tiny () =
  let p = triangle_on_path () in
  match Exact.qpp_brute_force p with
  | None -> Alcotest.fail "feasible"
  | Some (opt, f) ->
      check_float "matches evaluation" opt (Delay.avg_max_delay p f);
      (* The identity placement is one feasible competitor. *)
      Alcotest.(check bool) "no worse than identity" true
        (opt <= Delay.avg_max_delay p [| 0; 1; 2 |] +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Capacity expansion                                                  *)
(* ------------------------------------------------------------------ *)

let test_capacity_expand () =
  let metric = Metric.of_graph (Generators.path 3) in
  let caps = [| 2.5; 0.4; 1.0 |] in
  let e = Capacity.expand metric caps ~load:1. () in
  (* Node 0 -> 2 copies, node 1 -> 0, node 2 -> 1. *)
  Alcotest.(check (array int)) "copies" [| 0; 0; 2 |] e.Capacity.original_of_copy;
  check_float "copies colocated" 0. (Metric.dist e.Capacity.metric 0 1);
  check_float "cross distance preserved" 2. (Metric.dist e.Capacity.metric 0 2);
  Alcotest.(check (array int)) "project" [| 0; 2; 0 |]
    (Capacity.project e [| 1; 2; 0 |])

let test_capacity_expand_rejects () =
  let metric = Metric.of_graph (Generators.path 2) in
  Alcotest.check_raises "no room" (Invalid_argument "Capacity.expand: no node can hold any element")
    (fun () -> ignore (Capacity.expand metric [| 0.3; 0.3 |] ~load:1. ()));
  Alcotest.check_raises "bad load" (Invalid_argument "Capacity.expand: load must be positive")
    (fun () -> ignore (Capacity.expand metric [| 1.; 1. |] ~load:0. ()))

let test_capacity_max_copies () =
  let metric = Metric.of_graph (Generators.path 2) in
  let e = Capacity.expand metric [| 1000.; 1. |] ~load:1. ~max_copies:3 () in
  Alcotest.(check int) "bounded" 4 (Array.length e.Capacity.original_of_copy)

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)
(* ------------------------------------------------------------------ *)

let test_baselines_feasible () =
  let p, rng = random_qpp 77 in
  (match Baselines.random rng p with
  | None -> Alcotest.fail "random should fit (generous caps)"
  | Some f -> Alcotest.(check bool) "random respects caps" true
      (Placement.respects_capacities p f));
  match Baselines.greedy_closest p 0 with
  | None -> Alcotest.fail "greedy should fit"
  | Some f ->
      Alcotest.(check bool) "greedy respects caps" true (Placement.respects_capacities p f)

let test_lin_single_node () =
  let p = triangle_on_path () in
  let hub, f = Baselines.lin_single_node p in
  Alcotest.(check int) "middle of path" 1 hub;
  Alcotest.(check (array int)) "all on hub" [| 1; 1; 1 |] f;
  (* Massively overloaded but delay-optimal: avg = avg distance. *)
  check_float "delay = avg distance" (2. /. 3.) (Delay.avg_max_delay p f);
  Alcotest.(check bool) "violates caps" false (Placement.respects_capacities p f)

let test_local_search_improves () =
  let p = triangle_on_path () in
  (* Deliberately bad start: everything far from the middle. *)
  let start = [| 0; 1; 2 |] in
  let objective f = Delay.avg_max_delay p f in
  let improved = Baselines.local_search ~objective p start in
  Alcotest.(check bool) "no worse" true (objective improved <= objective start +. 1e-12);
  Alcotest.(check bool) "still feasible" true (Placement.respects_capacities p improved)

let prop_local_search_never_worse =
  QCheck.Test.make ~name:"local search never worsens the objective" ~count:30
    QCheck.small_int (fun seed ->
      let p, rng = random_qpp (seed + 3000) in
      match Baselines.random rng p with
      | None -> true
      | Some start ->
          let objective f = Delay.avg_max_delay p f in
          let out = Baselines.local_search ~max_steps:20 ~objective p start in
          objective out <= objective start +. 1e-9
          && Placement.respects_capacities p out)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_relay_bound; prop_relay_dominates_direct; prop_local_search_never_worse ]

let suites =
  [
    ( "place.problem",
      [
        Alcotest.test_case "validation" `Quick test_problem_validation;
        Alcotest.test_case "capacity feasibility" `Quick test_problem_capacity_feasible;
        Alcotest.test_case "placement loads" `Quick test_placement_loads;
        Alcotest.test_case "placement validation" `Quick test_placement_validation;
      ] );
    ( "place.delay",
      [
        Alcotest.test_case "max-delay by hand" `Quick test_max_delay_hand;
        Alcotest.test_case "total-delay by hand" `Quick test_total_delay_hand;
        Alcotest.test_case "colocated zero" `Quick test_delay_colocated_zero;
        Alcotest.test_case "client rates" `Quick test_client_rates_weighting;
        Alcotest.test_case "ssqpp delay" `Quick test_ssqpp_delay;
      ] );
    ( "place.relay",
      [ Alcotest.test_case "hand instance" `Quick test_relay_hand ] );
    ( "place.exact",
      [
        Alcotest.test_case "DP = brute force" `Quick test_exact_dp_equals_brute_force;
        Alcotest.test_case "infeasible detection" `Quick test_exact_dp_infeasible;
        Alcotest.test_case "rejects nonuniform" `Quick test_exact_dp_rejects_nonuniform;
        Alcotest.test_case "QPP brute force" `Quick test_qpp_brute_force_tiny;
      ] );
    ( "place.capacity",
      [
        Alcotest.test_case "expand" `Quick test_capacity_expand;
        Alcotest.test_case "rejects" `Quick test_capacity_expand_rejects;
        Alcotest.test_case "max copies" `Quick test_capacity_max_copies;
      ] );
    ( "place.baselines",
      [
        Alcotest.test_case "feasible placements" `Quick test_baselines_feasible;
        Alcotest.test_case "lin single node" `Quick test_lin_single_node;
        Alcotest.test_case "local search improves" `Quick test_local_search_improves;
      ] );
    ("place.properties", qcheck_tests);
  ]
