(* Solve-core scaling layer (DESIGN.md section 15): the flat Bigarray
   metric representation, the revised-simplex path, and the exact tree
   specialist behind the registry's auto dispatch. Every property here
   pins a NEW code path to an OLD oracle: flat vs boxed APSP, revised
   vs dense simplex, branch-and-bound vs exhaustive search. *)

module Rng = Qp_util.Rng
module Qp_error = Qp_util.Qp_error
module Graph = Qp_graph.Graph
module Apsp = Qp_graph.Apsp
module Metric = Qp_graph.Metric
module Spec = Qp_instance.Spec
open Qp_lp
open Qp_place

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected error: " ^ Qp_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Flat metrics vs the boxed oracles                                   *)
(* ------------------------------------------------------------------ *)

(* Random connected graph: a random spanning tree (connectivity by
   construction) plus extra random edges with float lengths. *)
let random_connected_graph_rng rng n =
  let g = Graph.create n in
  for v = 1 to n - 1 do
    Graph.add_edge g v (Rng.int rng v) (0.1 +. Rng.float rng 5.)
  done;
  let extra = Rng.int rng (2 * n) in
  for _ = 1 to extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then Graph.add_edge g u v (0.1 +. Rng.float rng 5.)
  done;
  g

let random_connected_graph seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 30 in
  random_connected_graph_rng rng n

let random_connected_graph_n n seed =
  random_connected_graph_rng (Rng.create seed) n

let alloc_mat n =
  Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (n * n)

(* Bit-for-bit: the flat representation behind [Metric.of_graph] must
   reproduce the boxed repeated-Dijkstra floats exactly — same
   algorithm, same summation order, different storage. *)
let prop_flat_equals_boxed_dijkstra =
  QCheck.Test.make ~name:"flat Metric.of_graph = boxed Dijkstra bit-for-bit"
    ~count:100 QCheck.small_int (fun seed ->
      let g = random_connected_graph (seed + 100) in
      let n = Graph.n_vertices g in
      let boxed = Apsp.repeated_dijkstra g in
      let m = Metric.of_graph ~cache:false g in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Metric.dist m i j <> boxed.(i).(j) then ok := false
        done
      done;
      !ok)

(* Single-block (n <= block): the tiled schedule degenerates to the
   plain k-major triple loop, so the floats must match the boxed
   oracle bitwise. *)
let prop_blocked_fw_equals_boxed =
  QCheck.Test.make
    ~name:"single-block Floyd-Warshall = boxed triple loop bitwise" ~count:60
    QCheck.small_int (fun seed ->
      let g = random_connected_graph (seed + 500) in
      let n = Graph.n_vertices g in
      let boxed = Apsp.floyd_warshall g in
      let flat = alloc_mat n in
      Apsp.floyd_warshall_into g flat;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Bigarray.Array1.get flat ((i * n) + j) <> boxed.(i).(j) then
            ok := false
        done
      done;
      !ok)

(* Multi-block (nb > 1): phase 3 reads distances already closed over a
   whole k-block — a different bracketing of the same path sums than
   the untiled loop — so cells agree only up to float-summation
   rounding. Both must still be the same shortest-path distances. *)
let fw_close_to_boxed g =
  let n = Graph.n_vertices g in
  let boxed = Apsp.floyd_warshall g in
  let flat = alloc_mat n in
  Apsp.floyd_warshall_into g flat;
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let a = Bigarray.Array1.get flat ((i * n) + j) and b = boxed.(i).(j) in
      if Float.abs (a -. b) > 1e-9 *. Float.max 1. (Float.abs b) then
        ok := false
    done
  done;
  !ok

(* The tiled phases 2/3 exercised at property sizes by shrinking the
   block through the test hook: n up to 31 over block 4 gives up to 8
   block-rows per phase. *)
let prop_blocked_fw_multiblock =
  QCheck.Test.make
    ~name:"multi-block Floyd-Warshall = boxed triple loop (tolerance)"
    ~count:60 QCheck.small_int (fun seed ->
      let saved = Apsp.fw_block () in
      Fun.protect
        ~finally:(fun () -> Apsp.set_fw_block saved)
        (fun () ->
          Apsp.set_fw_block 4;
          fw_close_to_boxed (random_connected_graph (seed + 1300))))

(* And once past the production block size of 64 with no hook: n = 100
   runs the real two-block-per-axis schedule. *)
let test_blocked_fw_above_block_size () =
  Alcotest.(check bool) "default block width is the production one" true
    (Apsp.fw_block () = 64);
  Alcotest.(check bool) "n=100 blocked FW matches boxed within tolerance" true
    (fw_close_to_boxed (random_connected_graph_n 100 7))

(* [repeated_dijkstra_into] writes the same floats as the boxed path
   into a caller-supplied flat buffer (disjoint rows per worker). *)
let prop_dijkstra_into_equals_boxed =
  QCheck.Test.make ~name:"repeated_dijkstra_into = boxed rows bit-for-bit"
    ~count:60 QCheck.small_int (fun seed ->
      let g = random_connected_graph (seed + 900) in
      let n = Graph.n_vertices g in
      let boxed = Apsp.repeated_dijkstra g in
      let flat = alloc_mat n in
      Apsp.repeated_dijkstra_into g flat;
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Bigarray.Array1.get flat ((i * n) + j) <> boxed.(i).(j) then
            ok := false
        done
      done;
      !ok)

(* The cache-footprint gauge: 8 bytes per matrix cell per resident
   entry, back to zero on reset. *)
let test_apsp_cache_bytes () =
  Metric.reset_apsp_cache ();
  Alcotest.(check int) "empty cache" 0 (Metric.apsp_cache_bytes ());
  let g1 = random_connected_graph 1 in
  let n1 = Graph.n_vertices g1 in
  let (_ : Metric.t) = Metric.of_graph g1 in
  Alcotest.(check int) "one entry" (8 * n1 * n1) (Metric.apsp_cache_bytes ());
  let (_ : Metric.t) = Metric.of_graph g1 in
  Alcotest.(check int) "hit adds nothing" (8 * n1 * n1)
    (Metric.apsp_cache_bytes ());
  let g2 = random_connected_graph 2 in
  let n2 = Graph.n_vertices g2 in
  let (_ : Metric.t) = Metric.of_graph g2 in
  Alcotest.(check int) "two entries"
    ((8 * n1 * n1) + (8 * n2 * n2))
    (Metric.apsp_cache_bytes ());
  Metric.reset_apsp_cache ();
  Alcotest.(check int) "reset zeroes the gauge" 0 (Metric.apsp_cache_bytes ())

(* ------------------------------------------------------------------ *)
(* Revised simplex vs the dense tableau                                *)
(* ------------------------------------------------------------------ *)

(* Same construction as test_lp's witness generator: feasible by
   construction (a witness point exists), bounded below by the
   non-negative objective on Le/Eq-dominated instances — though random
   rows may still leave a ray, which both paths must agree on. *)
let random_witness_lp seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let m = 2 + Rng.int rng 8 in
  let witness = Array.init n (fun _ -> Rng.float rng 5.) in
  let lp = Lp.create n in
  for v = 0 to n - 1 do
    Lp.set_objective lp v (Rng.float rng 3.)
  done;
  for _ = 1 to m do
    let terms = List.init n (fun v -> (v, Rng.float rng 4. -. 2.)) in
    let lhs = Lp.eval_terms terms witness in
    match Rng.int rng 3 with
    | 0 -> Lp.add_constraint lp terms Lp.Le (lhs +. Rng.float rng 2.)
    | 1 -> Lp.add_constraint lp terms Lp.Ge (lhs -. Rng.float rng 2.)
    | _ -> Lp.add_constraint lp terms Lp.Eq lhs
  done;
  lp

(* The same LP made infeasible: two contradictory rows on top. *)
let random_infeasible_lp seed =
  let lp = random_witness_lp seed in
  let terms = [ (0, 1.); (1, 1.) ] in
  Lp.add_constraint lp terms Lp.Le 1.;
  Lp.add_constraint lp terms Lp.Ge 3.;
  lp

let solve_forced path lp =
  Fun.protect
    ~finally:(fun () -> Simplex.set_forced_path None)
    (fun () ->
      Simplex.set_forced_path (Some path);
      let outcome = Simplex.solve lp in
      Alcotest.(check bool) "forced path taken" true
        (Simplex.last_path () = path);
      outcome)

let same_classification a b =
  match (a, b) with
  | Simplex.Optimal { objective = a; _ }, Simplex.Optimal { objective = b; _ }
    ->
      Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs a)
  | Simplex.Infeasible, Simplex.Infeasible -> true
  | Simplex.Unbounded, Simplex.Unbounded -> true
  | _ -> false

let prop_revised_equals_dense =
  QCheck.Test.make ~name:"revised simplex = dense tableau on random LPs"
    ~count:200 QCheck.small_int (fun seed ->
      let lp () = random_witness_lp (seed + 3000) in
      same_classification (solve_forced Simplex.Dense (lp ()))
        (solve_forced Simplex.Revised (lp ())))

let prop_revised_equals_dense_infeasible =
  QCheck.Test.make ~name:"revised simplex = dense tableau on infeasible LPs"
    ~count:100 QCheck.small_int (fun seed ->
      let lp () = random_infeasible_lp (seed + 4000) in
      let dense = solve_forced Simplex.Dense (lp ()) in
      let revised = solve_forced Simplex.Revised (lp ()) in
      dense = Simplex.Infeasible && same_classification dense revised)

(* Auto-selection: seed-size problems must keep taking the dense path
   (byte-identity with the historical pivots), small LPs never flip to
   the revised path behind the caller's back. *)
let test_small_lp_stays_dense () =
  let lp = random_witness_lp 42 in
  Simplex.set_forced_path None;
  let (_ : Simplex.outcome) = Simplex.solve lp in
  Alcotest.(check bool) "small LP solved on the dense path" true
    (Simplex.last_path () = Simplex.Dense)

(* ------------------------------------------------------------------ *)
(* Exact tree specialist and the auto dispatcher                       *)
(* ------------------------------------------------------------------ *)

let build_spec ?(topology = "tree") ?(nodes = 8) ?(system = "grid:2")
    ?(cap_slack = 1.4) ?(seed = 1) () =
  { Spec.default with Spec.topology; nodes; system; cap_slack; seed }

let params_for spec =
  let topology_hint, system_hint = Spec.solver_hints spec in
  { Solver.default_params with Solver.topology_hint; system_hint }

let solve_registry name spec p =
  (Solver.find_exn name).Solver.solve (params_for spec) p

(* Exactness: on every <= 8-node tree instance the branch-and-bound
   answer equals the exhaustive search, including on infeasible
   instances (both must say so). *)
let tree_spec_gen =
  QCheck.Gen.(
    let* nodes = int_range 4 8 in
    let* system = oneofl [ "grid:2"; "majority:3:2"; "triangle" ] in
    let* cap_slack = float_range 0.9 1.8 in
    let* seed = int_range 1 10_000 in
    return (build_spec ~nodes ~system ~cap_slack ~seed ()))

let tree_spec_arbitrary =
  QCheck.make ~print:(Format.asprintf "%a" Spec.pp) tree_spec_gen

let prop_tree_equals_exhaustive =
  QCheck.Test.make ~name:"tree solver = exhaustive search on small trees"
    ~count:80 tree_spec_arbitrary (fun spec ->
      match Spec.build spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok p -> (
          match
            (solve_registry "tree" spec p, solve_registry "exact" spec p)
          with
          | Ok t, Ok e ->
              Float.abs (t.Outcome.objective -. e.Outcome.objective) <= 1e-9
          | Error (Qp_error.Infeasible _), Error (Qp_error.Infeasible _) ->
              true
          | _ -> false))

(* The LP pipeline relaxes capacities to (alpha+1)*cap, so its rounded
   placement may beat the cap-respecting optimum; the exact bound only
   holds when the LP answer happens to respect the true capacities. *)
let prop_tree_no_worse_than_lp =
  QCheck.Test.make
    ~name:"tree optimum <= cap-respecting LP-rounded objective" ~count:80
    tree_spec_arbitrary (fun spec ->
      match Spec.build spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok p -> (
          match
            (solve_registry "tree" spec p, solve_registry "lp" spec p)
          with
          | Ok t, Ok l ->
              l.Outcome.load_violation > 1. +. 1e-9
              || t.Outcome.objective <= l.Outcome.objective +. 1e-6
          | _ -> true))

let test_auto_dispatches_tree () =
  let spec = build_spec ~nodes:10 () in
  let p = ok_exn (Spec.build spec) in
  let auto = ok_exn (solve_registry "auto" spec p) in
  Alcotest.(check string) "tree specialist selected" "tree"
    auto.Outcome.solver;
  let direct = ok_exn (solve_registry "tree" spec p) in
  Alcotest.(check (float 1e-12)) "same objective as direct call"
    direct.Outcome.objective auto.Outcome.objective

let test_auto_on_general_metric () =
  let spec = build_spec ~topology:"waxman" ~nodes:10 () in
  let p = ok_exn (Spec.build spec) in
  let auto = ok_exn (solve_registry "auto" spec p) in
  Alcotest.(check bool) "never the tree solver off trees" true
    (auto.Outcome.solver <> "tree");
  Alcotest.(check bool) "stamped a registered solver" true
    (List.mem auto.Outcome.solver (Solver.names ()))

(* Hints steer, verification decides: a cycle metric is not a tree
   metric, and the specialist must refuse it no matter what a caller
   hints. *)
let test_tree_rejects_cycle_metric () =
  let g = Graph.create 4 in
  List.iter
    (fun (u, v) -> Graph.add_edge g u v 1.)
    [ (0, 1); (1, 2); (2, 3); (3, 0) ];
  let m = Metric.of_graph ~cache:false g in
  Alcotest.(check bool) "C4 is not a tree metric" false
    (Tree_place.is_tree_metric m);
  let spec = build_spec ~topology:"tree" ~nodes:8 () in
  let tree_metric =
    (ok_exn (Spec.build spec)).Problem.metric
  in
  Alcotest.(check bool) "tree topology verifies" true
    (Tree_place.is_tree_metric tree_metric)

(* Cooperative cancellation parity with the simplex paths: the tree
   branch-and-bound honours the request's work budget and the
   domain-local deadline, both surfacing as the [Internal] error shape
   the server's deadline mapping keys on. *)
let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_tree_node_budget () =
  let spec = build_spec ~nodes:12 () in
  let p = ok_exn (Spec.build spec) in
  let params = { (params_for spec) with Solver.pivot_budget = Some 1 } in
  (match (Solver.find_exn "tree").Solver.solve params p with
  | Error (Qp_error.Internal msg) ->
      Alcotest.(check bool) "budget named in the error" true
        (contains_sub msg "search-node budget")
  | Ok _ -> Alcotest.fail "solve completed under a 1-node budget"
  | Error e ->
      Alcotest.fail ("unexpected error: " ^ Qp_error.to_string e));
  (* The same instance without a budget solves fine. *)
  match (Solver.find_exn "tree").Solver.solve (params_for spec) p with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("unbudgeted solve: " ^ Qp_error.to_string e)

let test_tree_deadline_cancels () =
  let spec = build_spec ~nodes:12 () in
  let p = ok_exn (Spec.build spec) in
  Fun.protect
    ~finally:(fun () -> Simplex.set_deadline None)
    (fun () ->
      Simplex.set_deadline (Some 0.) (* already expired *);
      match (Solver.find_exn "tree").Solver.solve (params_for spec) p with
      | Error (Qp_error.Internal msg) ->
          Alcotest.(check bool) "deadline named in the error" true
            (contains_sub msg "deadline")
      | Ok _ -> Alcotest.fail "solve completed past an expired deadline"
      | Error e ->
          Alcotest.fail ("unexpected error: " ^ Qp_error.to_string e))

(* Flat-layout bounds: an out-of-range j must raise, never silently
   read a cell of the wrong row (i*n + j can stay inside the buffer). *)
let test_metric_dist_bounds () =
  let g = random_connected_graph_n 4 11 in
  let m = Metric.of_graph ~cache:false g in
  let raises i j =
    match Metric.dist m i j with
    | (_ : float) -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "in-range reads fine" true
    (Float.is_finite (Metric.dist m 3 0));
  Alcotest.(check bool) "j = n raises" true (raises 1 4);
  Alcotest.(check bool) "j < 0 raises" true (raises 1 (-1));
  Alcotest.(check bool) "i = n raises" true (raises 4 1);
  Alcotest.(check bool) "i < 0 raises" true (raises (-1) 1)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_flat_equals_boxed_dijkstra; prop_blocked_fw_equals_boxed;
      prop_blocked_fw_multiblock; prop_dijkstra_into_equals_boxed;
      prop_revised_equals_dense; prop_revised_equals_dense_infeasible;
      prop_tree_equals_exhaustive; prop_tree_no_worse_than_lp ]

let suites =
  [
    ( "scale.core",
      [
        Alcotest.test_case "apsp cache bytes" `Quick test_apsp_cache_bytes;
        Alcotest.test_case "small LP stays dense" `Quick
          test_small_lp_stays_dense;
        Alcotest.test_case "auto dispatches tree" `Quick
          test_auto_dispatches_tree;
        Alcotest.test_case "auto on general metric" `Quick
          test_auto_on_general_metric;
        Alcotest.test_case "tree metric verification" `Quick
          test_tree_rejects_cycle_metric;
        Alcotest.test_case "blocked FW above block size" `Quick
          test_blocked_fw_above_block_size;
        Alcotest.test_case "tree node budget" `Quick test_tree_node_budget;
        Alcotest.test_case "tree deadline cancellation" `Quick
          test_tree_deadline_cancels;
        Alcotest.test_case "metric dist bounds" `Quick test_metric_dist_bounds;
      ] );
    ("scale.properties", qcheck_tests);
  ]
