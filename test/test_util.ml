open Qp_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_uniform_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let u = Rng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0. && u < 1.)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 5 in
  let xs = Array.init 20000 (fun _ -> Rng.uniform rng) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (m -. 0.5) < 0.02)

let test_rng_exponential_mean () =
  let rng = Rng.create 11 in
  let xs = Array.init 20000 (fun _ -> Rng.exponential rng 2.0) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (m -. 0.5) < 0.03)

let test_rng_permutation () =
  let rng = Rng.create 13 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    let s = Rng.sample_distinct rng 5 12 in
    Alcotest.(check int) "size" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun v -> Alcotest.(check bool) "range" true (v >= 0 && v < 12)) s
  done

let test_rng_split_independent () =
  let a = Rng.create 23 in
  let b = Rng.split a in
  let xa = Rng.int64 a and xb = Rng.int64 b in
  Alcotest.(check bool) "distinct streams" true (xa <> xb)

let test_rng_categorical () =
  let rng = Rng.create 29 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30000 do
    let i = Rng.categorical rng [| 1.; 2.; 1. |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac1 = float_of_int counts.(1) /. 30000. in
  Alcotest.(check bool) "middle weight dominates" true (Float.abs (frac1 -. 0.5) < 0.03);
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Rng.categorical: weights must have positive sum") (fun () ->
      ignore (Rng.categorical rng [| 0.; 0. |]))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stats_variance () =
  check_float "variance" (5. /. 3.) (Stats.variance [| 1.; 2.; 3.; 4. |])

let test_stats_min_max () =
  check_float "min" (-2.) (Stats.min [| 3.; -2.; 7. |]);
  check_float "max" 7. (Stats.max [| 3.; -2.; 7. |])

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.median xs);
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p100" 5. (Stats.percentile xs 100.);
  check_float "p25" 2. (Stats.percentile xs 25.)

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty input") (fun () ->
      ignore (Stats.mean [||]))

let test_stats_online_matches_batch () =
  let rng = Rng.create 31 in
  let xs = Array.init 500 (fun _ -> Rng.uniform rng *. 10.) in
  let o = Stats.online_create () in
  Array.iter (Stats.online_add o) xs;
  Alcotest.(check bool) "mean matches" true
    (Float.abs (Stats.online_mean o -. Stats.mean xs) < 1e-9);
  Alcotest.(check bool) "stddev matches" true
    (Float.abs (Stats.online_stddev o -. Stats.stddev xs) < 1e-9)

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3. |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_float "mean" 2. s.Stats.mean

let test_stats_nonfinite () =
  Alcotest.check_raises "nan rejected"
    (Invalid_argument "Stats.percentile: non-finite input") (fun () ->
      ignore (Stats.percentile [| 1.; Float.nan |] 50.));
  Alcotest.check_raises "inf rejected"
    (Invalid_argument "Stats.summarize: non-finite input") (fun () ->
      ignore (Stats.summarize [| 1.; Float.infinity |]))

let test_stats_online_merge_edges () =
  let a = Stats.online_create () and b = Stats.online_create () in
  Alcotest.(check int) "empty + empty" 0 (Stats.online_count (Stats.online_merge a b));
  Array.iter (Stats.online_add a) [| 1.; 2.; 3. |];
  let one_sided = Stats.online_merge a b in
  Alcotest.(check int) "count vs empty" 3 (Stats.online_count one_sided);
  check_float "mean vs empty" 2. (Stats.online_mean one_sided);
  check_float "stddev vs empty" 1. (Stats.online_stddev one_sided)

(* ------------------------------------------------------------------ *)
(* Combin                                                              *)
(* ------------------------------------------------------------------ *)

let test_binomial_values () =
  Alcotest.(check int) "C(5,2)" 10 (Combin.binomial 5 2);
  Alcotest.(check int) "C(10,0)" 1 (Combin.binomial 10 0);
  Alcotest.(check int) "C(10,10)" 1 (Combin.binomial 10 10);
  Alcotest.(check int) "C(10,11)" 0 (Combin.binomial 10 11);
  Alcotest.(check int) "C(10,-1)" 0 (Combin.binomial 10 (-1));
  Alcotest.(check int) "C(52,5)" 2598960 (Combin.binomial 52 5)

let test_binomial_pascal () =
  for n = 1 to 30 do
    for k = 1 to n - 1 do
      Alcotest.(check int) "pascal" (Combin.binomial n k)
        (Combin.binomial (n - 1) (k - 1) + Combin.binomial (n - 1) k)
    done
  done

let test_factorial () =
  Alcotest.(check int) "0!" 1 (Combin.factorial 0);
  Alcotest.(check int) "5!" 120 (Combin.factorial 5);
  Alcotest.(check int) "12!" 479001600 (Combin.factorial 12)

let test_overflow_detection () =
  (* 63-bit ints hold 20! but not 21!. *)
  Alcotest.(check bool) "20! fits" true (Combin.factorial 20 > 0);
  Alcotest.check_raises "21! overflows" (Failure "Combin: 63-bit overflow") (fun () ->
      ignore (Combin.factorial 21));
  Alcotest.check_raises "C(70,35) overflows" (Failure "Combin: 63-bit overflow")
    (fun () -> ignore (Combin.binomial 70 35));
  (* The float fallback still works there. *)
  Alcotest.(check bool) "log binomial finite" true
    (Float.is_finite (Combin.log_binomial 70 35))

let test_choose_iter_counts () =
  let count = ref 0 in
  Combin.choose_iter 6 3 (fun _ -> incr count);
  Alcotest.(check int) "C(6,3) subsets" 20 !count;
  let subsets = Combin.subsets_of_size 4 2 in
  Alcotest.(check int) "C(4,2)" 6 (List.length subsets);
  Alcotest.(check bool) "all sorted distinct" true
    (List.for_all (fun s -> List.sort compare s = s) subsets)

let test_log_binomial () =
  let exact = log (float_of_int (Combin.binomial 30 15)) in
  Alcotest.(check bool) "log binomial accurate" true
    (Float.abs (Combin.log_binomial 30 15 -. exact) < 1e-8)

(* ------------------------------------------------------------------ *)
(* Floatx                                                              *)
(* ------------------------------------------------------------------ *)

let test_floatx () =
  Alcotest.(check bool) "approx" true (Floatx.approx 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "not approx" false (Floatx.approx 1.0 1.1);
  Alcotest.(check bool) "leq slack" true (Floatx.leq (1.0 +. 1e-12) 1.0);
  Alcotest.(check bool) "leq strict fail" false (Floatx.leq 1.1 1.0);
  check_float "clamp" 1.0 (Floatx.clamp 0. 1. 3.)

(* ------------------------------------------------------------------ *)
(* Table                                                               *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create ~title:"demo" [ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_rowf t "yy|%d" 22;
  let s = Table.render t in
  Alcotest.(check bool) "contains title" true
    (String.length s > 0 && String.sub s 0 4 = "demo");
  Alcotest.(check bool) "contains formatted row" true (contains s "yy" && contains s "22")

let test_table_manual_contains () =
  let t = Table.create [ ("col", Table.Left) ] in
  Table.add_row t [ "value" ];
  let s = Table.render t in
  Alcotest.(check bool) "has header" true (contains s "col");
  Alcotest.(check bool) "has value" true (contains s "value")

let test_table_mismatch () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "bad row" (Invalid_argument "Table.add_row: cell count mismatch")
    (fun () -> Table.add_row t [ "only-one" ])

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_binomial_symmetry =
  QCheck.Test.make ~name:"binomial symmetric" ~count:200
    QCheck.(pair (int_range 0 40) (int_range 0 40))
    (fun (n, k) -> Combin.binomial n k = Combin.binomial n (n - k) || k > n)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in q" ~count:100
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 30) (float_range (-100.) 100.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (q1, q2)) ->
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_online_merge_matches_single_stream =
  QCheck.Test.make ~name:"online merge = single stream" ~count:200
    QCheck.(pair (array (float_range (-50.) 50.)) (array (float_range (-50.) 50.)))
    (fun (xs, ys) ->
      let a = Stats.online_create () and b = Stats.online_create () in
      Array.iter (Stats.online_add a) xs;
      Array.iter (Stats.online_add b) ys;
      let merged = Stats.online_merge a b in
      let single = Stats.online_create () in
      Array.iter (Stats.online_add single) xs;
      Array.iter (Stats.online_add single) ys;
      Stats.online_count merged = Stats.online_count single
      && Float.abs (Stats.online_mean merged -. Stats.online_mean single) < 1e-9
      && Float.abs (Stats.online_stddev merged -. Stats.online_stddev single) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Lru                                                                 *)
(* ------------------------------------------------------------------ *)

let test_lru_basics () =
  let l = Lru.create ~capacity:3 in
  Alcotest.(check int) "capacity" 3 (Lru.capacity l);
  Alcotest.(check int) "empty" 0 (Lru.length l);
  Lru.put l "a" 1;
  Lru.put l "b" 2;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find l "a");
  Alcotest.(check (option int)) "miss" None (Lru.find l "zzz");
  Lru.put l "a" 10;
  Alcotest.(check (option int)) "overwrite" (Some 10) (Lru.find l "a");
  Alcotest.(check int) "overwrite keeps length" 2 (Lru.length l);
  Lru.remove l "a";
  Alcotest.(check bool) "removed" false (Lru.mem l "a");
  Alcotest.(check int) "remove is not an eviction" 0 (Lru.evictions l)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:2 in
  Lru.put l "a" 1;
  Lru.put l "b" 2;
  (* touching [a] makes [b] the LRU, so the next insert evicts [b] *)
  ignore (Lru.find l "a");
  Lru.put l "c" 3;
  Alcotest.(check bool) "a survives (promoted)" true (Lru.mem l "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem l "b");
  Alcotest.(check bool) "c present" true (Lru.mem l "c");
  Alcotest.(check int) "one eviction" 1 (Lru.evictions l);
  Alcotest.(check int) "bounded" 2 (Lru.length l);
  (* fold is recency order, most recent first *)
  Alcotest.(check (list string)) "recency order" [ "c"; "a" ]
    (List.rev (Lru.fold l ~init:[] ~f:(fun acc k _ -> k :: acc)))

let test_lru_bound_under_churn () =
  let l = Lru.create ~capacity:4 in
  for i = 1 to 100 do
    Lru.put l (string_of_int i) i;
    Alcotest.(check bool) "length <= capacity" true (Lru.length l <= 4)
  done;
  Alcotest.(check int) "evictions = inserts - capacity" 96 (Lru.evictions l);
  (* the survivors are exactly the last four inserts *)
  List.iter
    (fun i ->
      Alcotest.(check bool) (Printf.sprintf "%d present" i) true
        (Lru.mem l (string_of_int i)))
    [ 97; 98; 99; 100 ]

let test_lru_zero_capacity_and_clear () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Lru.create ~capacity:(-1) : (int, int) Lru.t));
  let off = Lru.create ~capacity:0 in
  Lru.put off 1 1;
  Alcotest.(check int) "capacity 0 stores nothing" 0 (Lru.length off);
  Alcotest.(check (option int)) "capacity 0 always misses" None (Lru.find off 1);
  Alcotest.(check int) "no-op put is not an eviction" 0 (Lru.evictions off);
  let l = Lru.create ~capacity:2 in
  Lru.put l 1 1;
  Lru.put l 2 2;
  Lru.put l 3 3;
  Lru.clear l;
  Alcotest.(check int) "cleared" 0 (Lru.length l);
  Alcotest.(check int) "clear keeps the eviction count" 1 (Lru.evictions l);
  (* reusable after clear *)
  Lru.put l 9 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Lru.find l 9)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves multiset" ~count:100
    QCheck.(pair small_int (array small_int))
    (fun (seed, a) ->
      let b = Array.copy a in
      Rng.shuffle (Rng.create seed) b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_binomial_symmetry; prop_percentile_monotone;
      prop_online_merge_matches_single_stream; prop_shuffle_preserves_multiset ]

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "int range" `Quick test_rng_int_range;
        Alcotest.test_case "int rejects bound<=0" `Quick test_rng_int_rejects_nonpositive;
        Alcotest.test_case "uniform range" `Quick test_rng_uniform_range;
        Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "permutation" `Quick test_rng_permutation;
        Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "categorical" `Quick test_rng_categorical;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "variance" `Quick test_stats_variance;
        Alcotest.test_case "min/max" `Quick test_stats_min_max;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "empty input" `Quick test_stats_empty;
        Alcotest.test_case "online = batch" `Quick test_stats_online_matches_batch;
        Alcotest.test_case "non-finite rejected" `Quick test_stats_nonfinite;
        Alcotest.test_case "online merge edge cases" `Quick test_stats_online_merge_edges;
        Alcotest.test_case "summary" `Quick test_stats_summary;
      ] );
    ( "util.combin",
      [
        Alcotest.test_case "binomial values" `Quick test_binomial_values;
        Alcotest.test_case "pascal identity" `Quick test_binomial_pascal;
        Alcotest.test_case "factorial" `Quick test_factorial;
        Alcotest.test_case "overflow detection" `Quick test_overflow_detection;
        Alcotest.test_case "choose_iter counts" `Quick test_choose_iter_counts;
        Alcotest.test_case "log binomial" `Quick test_log_binomial;
      ] );
    ( "util.floatx",
      [ Alcotest.test_case "comparisons" `Quick test_floatx ] );
    ( "util.lru",
      [
        Alcotest.test_case "basics" `Quick test_lru_basics;
        Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
        Alcotest.test_case "bound under churn" `Quick test_lru_bound_under_churn;
        Alcotest.test_case "zero capacity and clear" `Quick
          test_lru_zero_capacity_and_clear;
      ] );
    ( "util.table",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "contains cells" `Quick test_table_manual_contains;
        Alcotest.test_case "row mismatch" `Quick test_table_mismatch;
      ] );
    ("util.properties", qcheck_tests);
  ]
