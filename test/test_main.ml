(* Aggregates every suite into one alcotest binary; each [test_<lib>.ml]
   exports a [suites : unit Alcotest.test list]. *)
let () =
  Alcotest.run "quorum-placement"
    (List.concat [ Test_util.suites; Test_obs.suites; Test_graph.suites; Test_lp.suites; Test_quorum.suites; Test_assign.suites; Test_sched.suites; Test_place.suites; Test_place_algo.suites; Test_sim.suites; Test_availability.suites; Test_fault_sim.suites; Test_design.suites; Test_extensions.suites; Test_serialize.suites; Test_solver.suites; Test_instance.suites; Test_partial_deploy.suites; Test_pareto.suites; Test_byzantine.suites; Test_sidney.suites; Test_repair.suites; Test_runtime.suites; Test_par.suites; Test_serve.suites; Test_migrate.suites; Test_scale.suites; Test_scenario.suites ])
