module Rng = Qp_util.Rng
module Generators = Qp_graph.Generators
module Strategy = Qp_quorum.Strategy
module Simple_qs = Qp_quorum.Simple_qs
module Grid_qs = Qp_quorum.Grid_qs
open Qp_place

let fixture ?(slack = 2.0) seed =
  let rng = Rng.create seed in
  let n = 10 in
  let g, _ = Generators.random_geometric rng n 0.5 in
  let system = Grid_qs.make 2 in
  let load = Grid_qs.element_load 2 in
  let p =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make n (slack *. load)) ~system
      ~strategy:(Strategy.uniform system) ()
  in
  (p, [| 0; 1; 2; 3 |])

let test_repair_moves_only_displaced () =
  let p, f = fixture 1 in
  match Repair.repair p f ~dead:[ 1; 3 ] with
  | None -> Alcotest.fail "enough surviving capacity"
  | Some r ->
      Alcotest.(check (list int)) "exactly the hosted elements move"
        (List.sort compare [ 1; 3 ])
        (List.sort compare r.Repair.moved);
      (* Elements on surviving nodes kept their host. *)
      Alcotest.(check int) "element 0 stays" 0 r.Repair.placement.(0);
      Alcotest.(check int) "element 2 stays" 2 r.Repair.placement.(2);
      (* No element on a dead node. *)
      Array.iter
        (fun v -> Alcotest.(check bool) "avoids dead" true (v <> 1 && v <> 3))
        r.Repair.placement

let test_repair_respects_surviving_capacity () =
  let p, f = fixture 2 in
  match Repair.repair p f ~dead:[ 0 ] with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      (* Validate against the survivors problem: dead capacity 0. *)
      let caps' = Array.copy p.Problem.capacities in
      caps'.(0) <- 0.;
      let p' =
        Problem.make_qpp ~metric:p.Problem.metric ~capacities:caps'
          ~system:p.Problem.system ~strategy:p.Problem.strategy ()
      in
      Alcotest.(check bool) "respects caps" true
        (Placement.respects_capacities p' r.Repair.placement)

let test_repair_noop_when_no_hosted_dead () =
  let p, f = fixture 3 in
  (* Nodes 7, 8, 9 host nothing. *)
  match Repair.repair p f ~dead:[ 7; 8; 9 ] with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      Alcotest.(check (list int)) "nothing moved" [] r.Repair.moved;
      Alcotest.(check (array int)) "unchanged" f r.Repair.placement;
      Alcotest.(check (float 1e-9)) "delay unchanged" r.Repair.delay_before
        r.Repair.delay_after

let test_repair_infeasible () =
  (* Tight capacities: killing a host leaves nowhere to go. *)
  let p, f = fixture ~slack:1.0 4 in
  (* With slack 1.0 every surviving node already hosting an element is
     full; nodes 4..9 are empty with capacity = 1 load though, so kill
     all of them plus a host. *)
  Alcotest.(check bool) "infeasible when everything else is gone" true
    (Repair.repair p f ~dead:[ 0; 4; 5; 6; 7; 8; 9 ] = None)

let test_repair_validation () =
  let p, f = fixture 5 in
  Alcotest.check_raises "bad node" (Invalid_argument "Repair: dead node out of range")
    (fun () -> ignore (Repair.repair p f ~dead:[ 42 ]));
  Alcotest.check_raises "all dead" (Invalid_argument "Repair: no surviving node")
    (fun () -> ignore (Repair.repair p f ~dead:(List.init 10 (fun v -> v))))

let test_degradation_vs_resolve () =
  let p, _ = fixture 6 in
  (* Start from a solved placement so the comparison is meaningful. *)
  match Qpp_solver.solve ~alpha:2. p with
  | None -> Alcotest.fail "feasible"
  | Some solved -> (
      let f = solved.Qpp_solver.placement in
      let dead = [ f.(0) ] in
      match Repair.degradation_vs_resolve p f ~dead with
      | None -> Alcotest.fail "feasible after churn"
      | Some (repaired, resolved) ->
          Alcotest.(check bool) "both positive" true (repaired >= 0. && resolved >= 0.);
          (* The greedy patch cannot beat... actually it CAN beat the
             approximate re-solve; only assert both are finite and the
             repair is within a loose factor of the re-solve. *)
          Alcotest.(check bool) "repair within 5x of re-solve" true
            (repaired <= (5. *. resolved) +. 1e-6))

let prop_repair_sound =
  QCheck.Test.make ~name:"repair avoids dead nodes and moves minimally" ~count:20
    QCheck.small_int (fun seed ->
      let p, f = fixture (seed + 100) in
      let rng = Rng.create seed in
      let dead = Rng.sample_distinct rng 2 10 in
      match Repair.repair p f ~dead with
      | None -> true
      | Some r ->
          Array.for_all (fun v -> not (List.mem v dead)) r.Repair.placement
          && Array.for_all2
               (fun before after -> before = after || List.mem before dead)
               f r.Repair.placement)

let prop_repair_moved_exactly_displaced =
  QCheck.Test.make ~name:"moved lists exactly the displaced elements" ~count:40
    QCheck.small_int (fun seed ->
      let p, f = fixture (seed + 500) in
      let rng = Rng.create (seed + 1) in
      let k = 1 + Rng.int rng 3 in
      let dead = Rng.sample_distinct rng k 10 in
      match Repair.repair p f ~dead with
      | None -> true
      | Some r ->
          let displaced = ref [] in
          Array.iteri (fun u v -> if List.mem v dead then displaced := u :: !displaced) f;
          List.sort compare r.Repair.moved = List.sort compare !displaced)

let prop_repair_respects_surviving_capacities =
  QCheck.Test.make ~name:"patched placement fits the surviving capacities" ~count:40
    QCheck.small_int (fun seed ->
      let p, f = fixture (seed + 900) in
      let rng = Rng.create (seed + 2) in
      let k = 1 + Rng.int rng 3 in
      let dead = Rng.sample_distinct rng k 10 in
      match Repair.repair p f ~dead with
      | None -> true
      | Some r ->
          let caps' = Array.copy p.Problem.capacities in
          List.iter (fun v -> caps'.(v) <- 0.) dead;
          let p' =
            Problem.make_qpp ~metric:p.Problem.metric ~capacities:caps'
              ~system:p.Problem.system ~strategy:p.Problem.strategy ()
          in
          Placement.respects_capacities p' r.Repair.placement)

(* delay_after >= delay_before is deliberately NOT a property: repair
   re-packs the displaced elements greedily onto the nearest surviving
   hosts, and when the original placement was not optimal (here it is
   the arbitrary [|0;1;2;3|]) eviction can accidentally IMPROVE the
   delay. This witness pins that behavior down so nobody "fixes" the
   property tests by asserting monotonic degradation. *)
let test_repair_can_improve_delay () =
  let witness = ref None in
  let seed = ref 0 in
  while !witness = None && !seed < 200 do
    (let p, f = fixture !seed in
     let rng = Rng.create (1000 + !seed) in
     let dead = Rng.sample_distinct rng 2 10 in
     match Repair.repair p f ~dead with
     | Some r when r.Repair.delay_after < r.Repair.delay_before -. 1e-9 ->
         witness := Some (r.Repair.delay_before, r.Repair.delay_after)
     | _ -> ());
    incr seed
  done;
  match !witness with
  | Some (before, after) ->
      Alcotest.(check bool) "strictly improved" true (after < before)
  | None -> Alcotest.fail "no improving repair found in 200 instances"

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_repair_sound;
      prop_repair_moved_exactly_displaced;
      prop_repair_respects_surviving_capacities;
    ]

let suites =
  [
    ( "place.repair",
      [
        Alcotest.test_case "moves only displaced" `Quick test_repair_moves_only_displaced;
        Alcotest.test_case "respects surviving capacity" `Quick test_repair_respects_surviving_capacity;
        Alcotest.test_case "noop on empty hosts" `Quick test_repair_noop_when_no_hosted_dead;
        Alcotest.test_case "infeasible" `Quick test_repair_infeasible;
        Alcotest.test_case "validation" `Quick test_repair_validation;
        Alcotest.test_case "vs re-solve" `Quick test_degradation_vs_resolve;
        Alcotest.test_case "repair can improve delay" `Quick test_repair_can_improve_delay;
      ] );
    ("repair.properties", qcheck_tests);
  ]
