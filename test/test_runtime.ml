(* The closed-loop resilience engine: failure detector, retry policy,
   adaptive strategy and the end-to-end engine. *)

module Rng = Qp_util.Rng
module Generators = Qp_graph.Generators
module Metric = Qp_graph.Metric
module Strategy = Qp_quorum.Strategy
module Majority_qs = Qp_quorum.Majority_qs
module Simple_qs = Qp_quorum.Simple_qs
module Problem = Qp_place.Problem
module Detector = Qp_runtime.Detector
module Retry = Qp_runtime.Retry
module Failure = Qp_runtime.Failure
module Adaptive = Qp_runtime.Adaptive
module Engine = Qp_runtime.Engine

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Detector                                                            *)
(* ------------------------------------------------------------------ *)

let test_detector_ewma () =
  let d = Detector.create 3 in
  Alcotest.(check bool) "initially healthy" true (Detector.healthy d);
  check_float "zero suspicion" 0. (Detector.suspicion d 1);
  (* Failed probes drive suspicion toward 1 geometrically. *)
  Detector.observe d 1 ~ok:false;
  check_float "one miss" 0.35 (Detector.suspicion d 1);
  Detector.observe d 1 ~ok:false;
  check_float "two misses" (0.35 +. (0.35 *. 0.65)) (Detector.suspicion d 1);
  Alcotest.(check bool) "not yet suspected" false (Detector.suspected d 1);
  Detector.observe d 1 ~ok:false;
  Alcotest.(check bool) "suspected after three" true (Detector.suspected d 1);
  Alcotest.(check (list int)) "suspect list" [ 1 ] (Detector.suspected_nodes d);
  (* Successes decay it back below threshold. *)
  Detector.observe d 1 ~ok:true;
  Detector.observe d 1 ~ok:true;
  Alcotest.(check bool) "recovered" false (Detector.suspected d 1);
  Alcotest.(check int) "observation count" 5 (Detector.observations d 1)

let test_detector_version_tracks_crossings () =
  let d = Detector.create 2 in
  let v0 = Detector.version d in
  Detector.observe d 0 ~ok:true;
  Alcotest.(check int) "no crossing, no bump" v0 (Detector.version d);
  Detector.observe d 0 ~ok:false;
  Detector.observe d 0 ~ok:false;
  Detector.observe d 0 ~ok:false;
  Alcotest.(check bool) "bumped on suspect" true (Detector.version d > v0);
  let v1 = Detector.version d in
  Detector.observe d 0 ~ok:false;
  Alcotest.(check int) "deeper suspicion, same version" v1 (Detector.version d);
  Detector.reset d 0;
  Alcotest.(check bool) "bumped on reset" true (Detector.version d > v1);
  check_float "reset clears" 0. (Detector.suspicion d 0)

let test_detector_validation () =
  Alcotest.check_raises "bad gain" (Invalid_argument "Detector: gain must lie in (0, 1]")
    (fun () ->
      ignore (Detector.create ~config:{ Detector.gain = 0.; suspect_threshold = 0.5 } 2));
  Alcotest.check_raises "empty" (Invalid_argument "Detector.create: need at least one node")
    (fun () -> ignore (Detector.create 0));
  let d = Detector.create 2 in
  Alcotest.check_raises "range" (Invalid_argument "Detector.observe: node out of range")
    (fun () -> Detector.observe d 7 ~ok:true)

(* ------------------------------------------------------------------ *)
(* Retry                                                               *)
(* ------------------------------------------------------------------ *)

let test_retry_backoff () =
  let p =
    Retry.exponential ~jitter:0. ~timeout:10. ~base:1. ~factor:2. ~max_backoff:5.
      ~max_attempts:5 ()
  in
  check_float "first" 1. (Retry.base_backoff p ~attempt:1);
  check_float "second" 2. (Retry.base_backoff p ~attempt:2);
  check_float "third" 4. (Retry.base_backoff p ~attempt:3);
  check_float "capped" 5. (Retry.base_backoff p ~attempt:4);
  let fixed = Retry.fixed ~timeout:10. ~max_attempts:3 in
  check_float "fixed policy never pauses" 0. (Retry.base_backoff fixed ~attempt:2)

let test_retry_jitter_bounds () =
  let p = Retry.exponential ~jitter:0.5 ~timeout:10. ~base:2. ~max_attempts:3 () in
  let rng = Rng.create 4 in
  for _ = 1 to 200 do
    let d = Retry.backoff_delay p rng ~attempt:1 in
    Alcotest.(check bool) "within jitter band" true (d >= 1. && d <= 3.)
  done

let test_retry_validation () =
  Alcotest.check_raises "attempts" (Invalid_argument "Retry: max_attempts >= 1 required")
    (fun () -> ignore (Retry.fixed ~timeout:1. ~max_attempts:0));
  Alcotest.check_raises "hedge range"
    (Invalid_argument "Retry: hedge delay must lie in (0, timeout)") (fun () ->
      ignore (Retry.exponential ~hedge_after:2. ~timeout:1. ~base:0.1 ~max_attempts:2 ()))

(* ------------------------------------------------------------------ *)
(* Adaptive strategy                                                   *)
(* ------------------------------------------------------------------ *)

let triangle_fixture () =
  let system = Simple_qs.triangle () in
  let rng = Rng.create 3 in
  let g, _ = Generators.random_geometric rng 4 0.8 in
  let problem =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make 4 1.) ~system
      ~strategy:(Strategy.uniform system) ()
  in
  (problem, [| 0; 1; 2 |])

let test_adaptive_healthy_is_static () =
  let problem, placement = triangle_fixture () in
  let system = problem.Problem.system in
  let static = problem.Problem.strategy in
  let d = Detector.create 4 in
  (* Physical equality: when the detector is quiet the engine must run
     the paper's static optimum, not a reweighted copy of it. *)
  Alcotest.(check bool) "same array" true
    (Adaptive.strategy system placement d ~static == static)

let test_adaptive_shifts_mass_off_suspected () =
  let problem, placement = triangle_fixture () in
  let system = problem.Problem.system in
  let static = problem.Problem.strategy in
  let d = Detector.create 4 in
  (* Node 2 (hosting element 2) goes dark. Triangle quorums: {0,1},
     {1,2}, {0,2} - the two quorums touching element 2 must lose mass
     to {0,1}. *)
  for _ = 1 to 5 do
    Detector.observe d 2 ~ok:false
  done;
  let p = Adaptive.strategy system placement d ~static in
  Alcotest.(check bool) "healthy quorum gains" true (p.(0) > static.(0));
  Alcotest.(check bool) "suspect quorums lose" true (p.(1) < static.(1) && p.(2) < static.(2));
  check_float "still a distribution" 1. (Array.fold_left ( +. ) 0. p);
  (* All nodes deeply dark: every quorum's health underflows the
     renormalization floor, so reweighting has no signal and the
     strategy falls back to the static optimum. *)
  for v = 0 to 3 do
    for _ = 1 to 60 do
      Detector.observe d v ~ok:false
    done
  done;
  let q = Adaptive.strategy system placement d ~static in
  Alcotest.(check bool) "all-dark falls back to static" true
    (Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) q static)

let test_adaptive_cache_tracks_version () =
  let problem, placement = triangle_fixture () in
  let system = problem.Problem.system in
  let static = problem.Problem.strategy in
  let d = Detector.create 4 in
  let c = Adaptive.make system placement ~static in
  let s0 = Adaptive.refresh c d in
  Alcotest.(check bool) "healthy cache serves static" true (s0 == static);
  for _ = 1 to 5 do
    Detector.observe d 2 ~ok:false
  done;
  let s1 = Adaptive.refresh c d in
  Alcotest.(check bool) "recomputed on crossing" true (s1 != static);
  let s2 = Adaptive.refresh c d in
  Alcotest.(check bool) "cached between crossings" true (s1 == s2)

let test_strategy_reweight () =
  let p = [| 0.5; 0.25; 0.25 |] in
  (match Strategy.reweight p (fun i -> if i = 0 then 0. else 1.) with
  | None -> Alcotest.fail "renormalizable"
  | Some q ->
      check_float "zeroed" 0. q.(0);
      check_float "renormalized" 0.5 q.(1));
  Alcotest.(check bool) "all-zero weights collapse" true
    (Strategy.reweight p (fun _ -> 0.) = None);
  Alcotest.check_raises "negative factor"
    (Invalid_argument "Strategy.reweight: negative weight factor") (fun () ->
      ignore (Strategy.reweight p (fun _ -> -1.)))

(* ------------------------------------------------------------------ *)
(* Engine, end to end                                                  *)
(* ------------------------------------------------------------------ *)

let engine_fixture () =
  let rng = Rng.create 11 in
  let n = 10 in
  let g, _ = Generators.random_geometric rng n 0.6 in
  let system = Majority_qs.make ~n:5 ~t:3 in
  let strategy = Strategy.uniform system in
  let problem =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make n (1.5 *. (3. /. 5.))) ~system
      ~strategy ()
  in
  match Qp_place.Qpp_solver.solve ~alpha:2. problem with
  | Some r -> (problem, r.Qp_place.Qpp_solver.placement)
  | None -> Alcotest.fail "fixture infeasible"

let test_engine_failure_free_matches_analytic () =
  let problem, placement = engine_fixture () in
  let cfg =
    { (Engine.default_config ~problem ~placement ~failure:(Failure.Static 0.) ()) with
      Engine.accesses_per_client = 2000 }
  in
  let r = Engine.run cfg in
  check_float "everything succeeds" 1. r.Engine.availability;
  check_float "single attempts" 1. r.Engine.mean_attempts;
  (* Poisson sampling of the static strategy: the mean delay estimates
     the paper's analytic average max-delay. *)
  Alcotest.(check bool) "reproduces the analytic delay" true
    (Float.abs (r.Engine.mean_delay_success -. r.Engine.analytic_delay)
     /. r.Engine.analytic_delay
    < 0.05)

let test_engine_adaptive_beats_static_under_churn () =
  let problem, placement = engine_fixture () in
  let failure = Failure.Dynamic { mtbf = 60.; mttr = 40. } in
  let retry =
    Retry.fixed
      ~timeout:(4. *. Metric.diameter problem.Problem.metric)
      ~max_attempts:3
  in
  let static =
    Qp_sim.Fault_sim.run
      { (Qp_sim.Fault_sim.default_config ~problem ~placement ~failure_model:failure) with
        Qp_sim.Fault_sim.retry; accesses_per_client = 400; seed = 3 }
  in
  let adaptive =
    Engine.run
      { (Engine.default_config ~adaptive:true ~problem ~placement ~failure ()) with
        Engine.retry; accesses_per_client = 400; seed = 3 }
  in
  (* Same seed => same churn trajectory and access times (both streams
     are split off the seed identically in both simulators): a paired
     comparison at an equal retry budget. *)
  Alcotest.(check bool) "strictly more accesses succeed" true
    (adaptive.Engine.availability > static.Qp_sim.Fault_sim.availability);
  Alcotest.(check bool) "no extra attempts" true
    (adaptive.Engine.mean_attempts <= static.Qp_sim.Fault_sim.mean_attempts +. 1e-9)

let test_engine_repair_fires_and_avoids_dead () =
  let problem, placement = engine_fixture () in
  let failure = Failure.Dynamic { mtbf = 40.; mttr = 60. } in
  let cfg =
    { (Engine.default_config ~adaptive:true ~repair:Engine.default_trigger ~problem
         ~placement ~failure ()) with
      Engine.accesses_per_client = 300;
      seed = 2 }
  in
  let r = Engine.run cfg in
  Alcotest.(check bool) "repairs triggered" true (r.Engine.repairs <> []);
  List.iter
    (fun (ev : Engine.repair_event) ->
      Alcotest.(check bool) "moved something" true (ev.Engine.moved > 0))
    r.Engine.repairs;
  (* The last repair's placement is the final one; it must avoid the
     nodes that repair believed dead at that point. *)
  (match List.rev r.Engine.repairs with
  | last :: _ ->
      Array.iter
        (fun v ->
          Alcotest.(check bool) "replica off believed-dead node" true
            (not (List.mem v last.Engine.dead)))
        r.Engine.final_placement
  | [] -> ());
  Alcotest.(check bool) "repair helped" true (r.Engine.availability > 0.5)

let test_engine_migration_loop () =
  (* With a migration policy, a tripped trigger runs the closed loop:
     warm re-solve -> bounded-safe plan -> staged application. The run
     must record migration events whose accounting is consistent, and
     must remain deterministic in the seed. *)
  let problem, placement = engine_fixture () in
  let failure = Failure.Dynamic { mtbf = 40.; mttr = 60. } in
  let cfg =
    { (Engine.default_config ~adaptive:true ~repair:Engine.default_trigger
         ~migration:Engine.default_migration ~problem ~placement ~failure ()) with
      Engine.accesses_per_client = 300;
      seed = 2 }
  in
  let r = Engine.run cfg in
  Alcotest.(check bool) "migrations triggered" true (r.Engine.migrations <> []);
  List.iter
    (fun (ev : Engine.migration_event) ->
      Alcotest.(check bool) "applied <= planned" true
        (ev.Engine.applied_moves <= ev.Engine.planned_moves);
      Alcotest.(check bool) "non-degraded events apply their whole plan" true
        (ev.Engine.degraded || ev.Engine.applied_moves = ev.Engine.planned_moves))
    r.Engine.migrations;
  let r' = Engine.run cfg in
  Alcotest.(check int) "deterministic event count"
    (List.length r.Engine.migrations)
    (List.length r'.Engine.migrations);
  Alcotest.(check (array int)) "deterministic final placement"
    r.Engine.final_placement r'.Engine.final_placement

let test_engine_deterministic () =
  let problem, placement = engine_fixture () in
  let failure = Failure.Dynamic { mtbf = 50.; mttr = 30. } in
  let cfg =
    { (Engine.default_config ~adaptive:true ~problem ~placement ~failure ()) with
      Engine.accesses_per_client = 150;
      seed = 9 }
  in
  let a = Engine.run cfg in
  let b = Engine.run cfg in
  Alcotest.(check int) "same successes" a.Engine.n_success b.Engine.n_success;
  check_float "same delay" a.Engine.mean_delay_success b.Engine.mean_delay_success;
  Alcotest.(check (array int)) "same final placement" a.Engine.final_placement
    b.Engine.final_placement

let test_engine_hedging_accounting () =
  let problem, placement = engine_fixture () in
  let timeout = 4. *. Metric.diameter problem.Problem.metric in
  let retry =
    Retry.exponential ~jitter:0.2 ~hedge_after:(0.5 *. timeout) ~timeout
      ~base:(0.2 *. timeout) ~max_attempts:3 ()
  in
  let cfg =
    { (Engine.default_config ~adaptive:true ~problem ~placement
         ~failure:(Failure.Dynamic { mtbf = 60.; mttr = 40. }) ()) with
      Engine.retry; accesses_per_client = 300; seed = 4 }
  in
  let r = Engine.run cfg in
  Alcotest.(check bool) "hedges launched" true (r.Engine.hedges_launched > 0);
  Alcotest.(check bool) "wins within launches" true
    (r.Engine.hedges_won <= r.Engine.hedges_launched);
  Alcotest.(check int) "histogram covers successes" r.Engine.n_success
    (Array.fold_left ( + ) 0 r.Engine.attempt_histogram)

let test_engine_validation () =
  let problem, placement = engine_fixture () in
  let base = Engine.default_config ~problem ~placement ~failure:(Failure.Static 0.1) () in
  Alcotest.check_raises "probe interval"
    (Invalid_argument "Engine: probe_interval must be positive") (fun () ->
      ignore (Engine.run { base with Engine.probe_interval = 0. }));
  Alcotest.check_raises "repair trigger"
    (Invalid_argument "Engine: repair capacity_frac must lie in (0, 1]") (fun () ->
      ignore
        (Engine.run
           { base with
             Engine.repair = Some { Engine.default_trigger with Engine.capacity_frac = 0. }
           }))

(* ------------------------------------------------------------------ *)
(* SLO trigger and migration wide events                                *)
(* ------------------------------------------------------------------ *)

let test_engine_slo_validation () =
  let problem, placement = engine_fixture () in
  let base = Engine.default_config ~problem ~placement ~failure:(Failure.Static 0.1) () in
  Alcotest.check_raises "requires repair"
    (Invalid_argument "Engine: an SLO trigger requires a repair trigger") (fun () ->
      ignore (Engine.run { base with Engine.slo = Some Engine.default_slo_trigger }));
  let with_slo s =
    { base with Engine.repair = Some Engine.default_trigger; slo = Some s }
  in
  Alcotest.check_raises "windows"
    (Invalid_argument "Engine: SLO windows must satisfy 0 < fast <= slow") (fun () ->
      ignore
        (Engine.run
           (with_slo { Engine.default_slo_trigger with Engine.fast_window = 200. })));
  Alcotest.check_raises "threshold"
    (Invalid_argument "Engine: SLO burn_threshold must be positive") (fun () ->
      ignore
        (Engine.run
           (with_slo { Engine.default_slo_trigger with Engine.burn_threshold = 0. })));
  Alcotest.check_raises "target"
    (Invalid_argument "Engine: SLO target must lie in (0, 1)") (fun () ->
      ignore
        (Engine.run
           (with_slo
              { Engine.default_slo_trigger with
                Engine.objective = { Qp_obs.Slo.name = "x"; target = 1.5; latency_s = None }
              })))

let test_engine_slo_trigger_trips () =
  let problem, placement = engine_fixture () in
  let failure = Failure.Dynamic { mtbf = 40.; mttr = 60. } in
  (* A repair trigger whose heuristics can never fire (all capacity
     suspected / 1000x delay): any repair in the run was tripped by
     the SLO burn rate alone. *)
  let inert =
    { Engine.default_trigger with Engine.capacity_frac = 1.0; delay_factor = 1000. }
  in
  let cfg slo =
    { (Engine.default_config ~adaptive:true ~repair:inert ?slo ~problem ~placement
         ~failure ()) with
      Engine.accesses_per_client = 300;
      seed = 2 }
  in
  let without = Engine.run (cfg None) in
  Alcotest.(check int) "inert heuristics never repair" 0
    (List.length without.Engine.repairs);
  (* 99% objective: under 60%-downtime churn the error budget burns in
     both windows and the trip invokes the same repair path *)
  let tight =
    { Engine.default_slo_trigger with
      Engine.objective = { Qp_obs.Slo.name = "access"; target = 0.99; latency_s = None }
    }
  in
  let with_slo = Engine.run (cfg (Some tight)) in
  Alcotest.(check bool) "slo burn trips repair" true (with_slo.Engine.repairs <> []);
  (* deterministic in the seed, like every other engine path *)
  let again = Engine.run (cfg (Some tight)) in
  Alcotest.(check int) "deterministic repair count"
    (List.length with_slo.Engine.repairs)
    (List.length again.Engine.repairs)

let test_engine_migration_wide_events () =
  let module Wide = Qp_obs.Wide in
  let module Json = Qp_obs.Json in
  let sink, read = Qp_obs.Trace.memory () in
  Fun.protect ~finally:(fun () -> Wide.uninstall ()) @@ fun () ->
  Wide.install sink;
  let problem, placement = engine_fixture () in
  let failure = Failure.Dynamic { mtbf = 40.; mttr = 60. } in
  let cfg =
    { (Engine.default_config ~adaptive:true ~repair:Engine.default_trigger
         ~migration:Engine.default_migration ~problem ~placement ~failure ()) with
      Engine.accesses_per_client = 300;
      seed = 2 }
  in
  let r = Engine.run cfg in
  Alcotest.(check bool) "migrations happened" true (r.Engine.migrations <> []);
  let str k j = Option.bind (Json.member k j) Json.to_str in
  let migs =
    List.filter (fun j -> str "kind" j = Some "migration") (read ())
  in
  Alcotest.(check int) "one wide event per migration episode"
    (List.length r.Engine.migrations)
    (List.length migs);
  List.iter
    (fun m ->
      (match str "outcome" m with
      | Some ("applied" | "degraded") -> ()
      | o ->
          Alcotest.failf "unexpected outcome %s"
            (Option.value o ~default:"<none>"));
      (* every episode times the warm re-solve; the plan phase exists
         unless the ladder degraded before planning *)
      let phases = Option.get (Json.member "phases" m) in
      Alcotest.(check bool) "resolve phase timed" true
        (Json.member "resolve" phases <> None);
      Alcotest.(check bool) "sim timeline attrs" true
        (Json.member "sim_time" m <> None && Json.member "sim_end" m <> None))
    migs

let suites =
  [
    ( "runtime.detector",
      [
        Alcotest.test_case "ewma suspicion" `Quick test_detector_ewma;
        Alcotest.test_case "version on crossings" `Quick test_detector_version_tracks_crossings;
        Alcotest.test_case "validation" `Quick test_detector_validation;
      ] );
    ( "runtime.retry",
      [
        Alcotest.test_case "exponential backoff" `Quick test_retry_backoff;
        Alcotest.test_case "jitter bounds" `Quick test_retry_jitter_bounds;
        Alcotest.test_case "validation" `Quick test_retry_validation;
      ] );
    ( "runtime.adaptive",
      [
        Alcotest.test_case "healthy serves static" `Quick test_adaptive_healthy_is_static;
        Alcotest.test_case "shifts mass off suspects" `Quick test_adaptive_shifts_mass_off_suspected;
        Alcotest.test_case "cache tracks version" `Quick test_adaptive_cache_tracks_version;
        Alcotest.test_case "strategy reweight" `Quick test_strategy_reweight;
      ] );
    ( "runtime.engine",
      [
        Alcotest.test_case "failure-free matches analytic" `Quick
          test_engine_failure_free_matches_analytic;
        Alcotest.test_case "adaptive beats static" `Quick
          test_engine_adaptive_beats_static_under_churn;
        Alcotest.test_case "repair fires" `Quick test_engine_repair_fires_and_avoids_dead;
        Alcotest.test_case "migration loop" `Quick test_engine_migration_loop;
        Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
        Alcotest.test_case "hedging accounting" `Quick test_engine_hedging_accounting;
        Alcotest.test_case "validation" `Quick test_engine_validation;
        Alcotest.test_case "slo validation" `Quick test_engine_slo_validation;
        Alcotest.test_case "slo trigger trips" `Quick test_engine_slo_trigger_trips;
        Alcotest.test_case "migration wide events" `Quick
          test_engine_migration_wide_events;
      ] );
  ]
