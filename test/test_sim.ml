open Qp_sim
module Rng = Qp_util.Rng
module Generators = Qp_graph.Generators
module Strategy = Qp_quorum.Strategy
module Quorum = Qp_quorum.Quorum
module Simple_qs = Qp_quorum.Simple_qs
module Problem = Qp_place.Problem
module Placement = Qp_place.Placement
module Delay = Qp_place.Delay

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim 3.0 (fun _ -> log := 3 :: !log);
  Sim.schedule sim 1.0 (fun _ -> log := 1 :: !log);
  Sim.schedule sim 2.0 (fun s ->
      log := 2 :: !log;
      Sim.schedule_in s 0.5 (fun _ -> log := 25 :: !log));
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 1; 2; 25; 3 ] (List.rev !log);
  Alcotest.(check int) "processed" 4 (Sim.events_processed sim);
  check_float "final clock" 3.0 (Sim.now sim)

let test_engine_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim (float_of_int i) (fun _ -> incr count)
  done;
  Sim.run ~until:5.5 sim;
  Alcotest.(check int) "stopped at horizon" 5 !count;
  Sim.run sim;
  Alcotest.(check int) "resumes" 10 !count

let test_engine_stop () =
  (* A self-regenerating event chain is cut off by Sim.stop. *)
  let sim = Sim.create () in
  let count = ref 0 in
  let rec tick s =
    incr count;
    if !count = 5 then Sim.stop s else Sim.schedule_in s 1.0 tick
  in
  Sim.schedule sim 0.0 tick;
  Sim.run sim;
  Alcotest.(check int) "stopped after 5" 5 !count

let test_engine_rejects_past () =
  let sim = Sim.create () in
  Sim.schedule sim 5.0 (fun s ->
      Alcotest.check_raises "past event" (Invalid_argument "Event.schedule: time in the past")
        (fun () -> Sim.schedule s 1.0 (fun _ -> ())));
  Sim.run sim

(* ------------------------------------------------------------------ *)
(* Access simulation                                                   *)
(* ------------------------------------------------------------------ *)

let fixture () =
  let system = Simple_qs.triangle () in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 3)
      ~capacities:(Array.make 3 (2. /. 3.))
      ~system ~strategy:(Strategy.uniform system) ()
  in
  (p, [| 0; 1; 2 |])

(* Single quorum: every access has the same deterministic delay, so
   the simulated mean equals the analytic value exactly. *)
let single_quorum_fixture () =
  let n = 4 in
  let system = Quorum.make ~universe:2 [| [| 0; 1 |] |] in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path n) ~capacities:(Array.make n 1.)
      ~system ~strategy:[| 1. |] ()
  in
  (p, [| 1; 2 |])

let test_calibration_exact_single_quorum () =
  let problem, placement = single_quorum_fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  List.iter
    (fun protocol ->
      let report = Access_sim.run { cfg with Access_sim.protocol; accesses_per_client = 50 } in
      check_float "simulated = analytic (deterministic)" report.Access_sim.analytic_delay
        report.Access_sim.mean_delay;
      check_float "relative error zero" 0. report.Access_sim.relative_error)
    [ Access_sim.Parallel; Access_sim.Sequential ]

let test_calibration_sampling_converges () =
  let problem, placement = fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let report = Access_sim.run { cfg with Access_sim.accesses_per_client = 4000 } in
  Alcotest.(check bool) "within 5% of Avg Delta_f" true
    (report.Access_sim.relative_error < 0.05)

let test_calibration_sequential_converges () =
  let problem, placement = fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let report =
    Access_sim.run
      { cfg with Access_sim.protocol = Access_sim.Sequential; accesses_per_client = 4000 }
  in
  Alcotest.(check bool) "within 5% of Avg Gamma_f" true
    (report.Access_sim.relative_error < 0.05)

let test_empirical_load_matches_placement_load () =
  let problem, placement = fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let report = Access_sim.run { cfg with Access_sim.accesses_per_client = 4000 } in
  let expected = Placement.node_loads problem placement in
  Array.iteri
    (fun v l ->
      Alcotest.(check bool) "probe frequency ~ load_f" true
        (Float.abs (report.Access_sim.empirical_node_load.(v) -. l) < 0.05))
    expected

let test_round_trip_at_least_double () =
  (* Round-trip with zero service: every delay doubles relative to the
     one-way measurement for parallel accesses (same path out and
     back, no jitter). *)
  let problem, placement = single_quorum_fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let one_way = Access_sim.run { cfg with Access_sim.accesses_per_client = 20 } in
  let rt =
    Access_sim.run { cfg with Access_sim.round_trip = true; accesses_per_client = 20 }
  in
  check_float "round trip doubles" (2. *. one_way.Access_sim.mean_delay)
    rt.Access_sim.mean_delay

let test_service_time_adds_delay () =
  let problem, placement = single_quorum_fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let base =
    Access_sim.run { cfg with Access_sim.round_trip = true; accesses_per_client = 20 }
  in
  let slow =
    Access_sim.run
      {
        cfg with
        Access_sim.round_trip = true;
        service = Access_sim.Fixed 0.5;
        accesses_per_client = 20;
      }
  in
  Alcotest.(check bool) "service adds >= 0.5" true
    (slow.Access_sim.mean_delay >= base.Access_sim.mean_delay +. 0.5 -. 1e-9)

let test_queueing_under_contention () =
  (* Very high arrival rate + non-trivial service: FIFO queueing must
     push delays above the uncontended value. *)
  let problem, placement = single_quorum_fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let uncontended =
    Access_sim.run
      {
        cfg with
        Access_sim.round_trip = true;
        service = Access_sim.Fixed 0.2;
        arrival_rate = 0.001;
        accesses_per_client = 50;
      }
  in
  let contended =
    Access_sim.run
      {
        cfg with
        Access_sim.round_trip = true;
        service = Access_sim.Fixed 0.2;
        arrival_rate = 100.;
        accesses_per_client = 50;
      }
  in
  Alcotest.(check bool) "queueing visible" true
    (contended.Access_sim.mean_delay > uncontended.Access_sim.mean_delay +. 0.1)

let test_jitter_increases_delay () =
  let problem, placement = single_quorum_fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let jittered =
    Access_sim.run { cfg with Access_sim.jitter = 0.5; accesses_per_client = 500 }
  in
  (* Jitter only inflates latencies (factor in [1, 1.5]). *)
  Alcotest.(check bool) "mean above analytic" true
    (jittered.Access_sim.mean_delay >= jittered.Access_sim.analytic_delay -. 1e-9)

let test_client_rates_weighting () =
  (* All rate concentrated on client 0: mean approaches Delta_f(0). *)
  let system = Simple_qs.triangle () in
  let graph = Generators.path 3 in
  let problem =
    Problem.of_graph_qpp ~graph ~capacities:(Array.make 3 1.) ~system
      ~strategy:(Strategy.uniform system)
      ~client_rates:[| 1.; 0.; 0. |] ()
  in
  let placement = [| 0; 1; 2 |] in
  let cfg = Access_sim.default_config ~problem ~placement in
  let report = Access_sim.run { cfg with Access_sim.accesses_per_client = 4000 } in
  let expected = Delay.client_max_delay problem placement 0 in
  Alcotest.(check bool) "rate-weighted mean" true
    (Float.abs (report.Access_sim.mean_delay -. expected) /. expected < 0.05)

let test_run_validation () =
  let problem, placement = fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  Alcotest.check_raises "bad count"
    (Invalid_argument "Access_sim.run: accesses_per_client must be positive") (fun () ->
      ignore (Access_sim.run { cfg with Access_sim.accesses_per_client = 0 }));
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Access_sim.run: arrival_rate must be positive") (fun () ->
      ignore (Access_sim.run { cfg with Access_sim.arrival_rate = 0. }))

let test_determinism () =
  let problem, placement = fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let a = Access_sim.run { cfg with Access_sim.seed = 42 } in
  let b = Access_sim.run { cfg with Access_sim.seed = 42 } in
  check_float "same seed, same mean" a.Access_sim.mean_delay b.Access_sim.mean_delay;
  let c = Access_sim.run { cfg with Access_sim.seed = 43 } in
  Alcotest.(check bool) "different seed differs" true
    (a.Access_sim.mean_delay <> c.Access_sim.mean_delay)

let test_conservation_invariants () =
  (* Per-client means and access counts must be mutually consistent,
     and total probes must equal the sum of sampled quorum sizes. *)
  let problem, placement = fixture () in
  let cfg = Access_sim.default_config ~problem ~placement in
  let r = Access_sim.run { cfg with Access_sim.accesses_per_client = 300 } in
  Alcotest.(check int) "every client ran its quota" (3 * 300) r.Access_sim.n_accesses;
  let total_probes = Array.fold_left ( + ) 0 r.Access_sim.node_probes in
  (* Triangle quorums all have 2 elements. *)
  Alcotest.(check int) "probes = accesses x |Q|" (2 * r.Access_sim.n_accesses) total_probes;
  (* The global mean is the mean of per-client means (equal counts). *)
  let mean_of_means =
    Array.fold_left ( +. ) 0. r.Access_sim.per_client_mean /. 3.
  in
  check_float "mean decomposition" r.Access_sim.mean_delay mean_of_means

let prop_calibration_matches_analytic =
  QCheck.Test.make ~name:"simulated delay tracks analytic (random instances)" ~count:10
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 4000) in
      let n = 5 + Rng.int rng 5 in
      let g, _ = Generators.random_geometric rng n 0.5 in
      let system = Simple_qs.triangle () in
      let strategy = Strategy.uniform system in
      let problem =
        Problem.of_graph_qpp ~graph:g ~capacities:(Array.make n 1.) ~system ~strategy ()
      in
      let placement = Array.init 3 (fun u -> u mod n) in
      let cfg = Access_sim.default_config ~problem ~placement in
      let report =
        Access_sim.run { cfg with Access_sim.accesses_per_client = 2000; seed }
      in
      report.Access_sim.analytic_delay = 0. || report.Access_sim.relative_error < 0.1)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_calibration_matches_analytic ]

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "ordering" `Quick test_engine_ordering;
        Alcotest.test_case "horizon" `Quick test_engine_until;
        Alcotest.test_case "stop" `Quick test_engine_stop;
        Alcotest.test_case "rejects past" `Quick test_engine_rejects_past;
      ] );
    ( "sim.access",
      [
        Alcotest.test_case "exact on deterministic instance" `Quick
          test_calibration_exact_single_quorum;
        Alcotest.test_case "parallel converges to Avg Delta" `Quick
          test_calibration_sampling_converges;
        Alcotest.test_case "sequential converges to Avg Gamma" `Quick
          test_calibration_sequential_converges;
        Alcotest.test_case "empirical load ~ load_f" `Quick
          test_empirical_load_matches_placement_load;
        Alcotest.test_case "round trip doubles" `Quick test_round_trip_at_least_double;
        Alcotest.test_case "service adds delay" `Quick test_service_time_adds_delay;
        Alcotest.test_case "queueing under contention" `Quick test_queueing_under_contention;
        Alcotest.test_case "jitter inflates" `Quick test_jitter_increases_delay;
        Alcotest.test_case "client rates" `Quick test_client_rates_weighting;
        Alcotest.test_case "validation" `Quick test_run_validation;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "conservation invariants" `Quick test_conservation_invariants;
      ] );
    ("sim.properties", qcheck_tests);
  ]
