open Qp_sim
module Rng = Qp_util.Rng
module Generators = Qp_graph.Generators
module Strategy = Qp_quorum.Strategy
module Simple_qs = Qp_quorum.Simple_qs
module Majority_qs = Qp_quorum.Majority_qs
module Availability = Qp_quorum.Availability
module Problem = Qp_place.Problem

(* Helpers for overriding the shared retry policy in a config. *)
let with_attempts cfg k =
  { cfg with
    Fault_sim.retry = { cfg.Fault_sim.retry with Qp_runtime.Retry.max_attempts = k } }

let with_timeout cfg t =
  { cfg with Fault_sim.retry = { cfg.Fault_sim.retry with Qp_runtime.Retry.timeout = t } }

let fixture ?(n = 6) ?(system = Simple_qs.triangle ()) () =
  let rng = Rng.create 10 in
  let g, _ = Generators.random_geometric rng n 0.6 in
  let problem =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make n 2.) ~system
      ~strategy:(Strategy.uniform system) ()
  in
  let universe = Qp_quorum.Quorum.universe system in
  (problem, Array.init universe (fun u -> u mod n))

let test_no_failures_full_availability () =
  let problem, placement = fixture () in
  let cfg = Fault_sim.default_config ~problem ~placement ~failure_model:(Fault_sim.Static 0.) in
  let r = Fault_sim.run cfg in
  Alcotest.(check (float 1e-9)) "all succeed" 1. r.Fault_sim.availability;
  Alcotest.(check (float 1e-9)) "one attempt each" 1. r.Fault_sim.mean_attempts;
  Alcotest.(check (float 1e-9)) "prediction agrees" 1. r.Fault_sim.predicted_success

let test_total_failure () =
  let problem, placement = fixture () in
  let cfg = Fault_sim.default_config ~problem ~placement ~failure_model:(Fault_sim.Static 1.) in
  let r = Fault_sim.run cfg in
  Alcotest.(check (float 1e-9)) "all fail" 0. r.Fault_sim.availability;
  Alcotest.(check (float 1e-9)) "max attempts burned" 3. r.Fault_sim.mean_attempts

let test_static_matches_iid_prediction () =
  let problem, placement = fixture ~n:8 ~system:(Majority_qs.make ~n:5 ~t:3) () in
  let cfg =
    {
      (Fault_sim.default_config ~problem ~placement ~failure_model:(Fault_sim.Static 0.25)) with
      Fault_sim.accesses_per_client = 3000;
    }
  in
  let r = Fault_sim.run cfg in
  Alcotest.(check bool) "within 2% of iid closed form" true
    (Float.abs (r.Fault_sim.availability -. r.Fault_sim.predicted_success) < 0.02)

let test_iid_closed_form_accounts_colocation () =
  (* All three elements of the triangle on ONE node: a quorum needs
     only that node alive, so single-attempt success = 1 - p. *)
  let rng = Rng.create 1 in
  let g, _ = Generators.random_geometric rng 4 0.8 in
  let system = Simple_qs.triangle () in
  let problem =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make 4 2.) ~system
      ~strategy:(Strategy.uniform system) ()
  in
  let placement = [| 0; 0; 0 |] in
  let cfg =
    with_attempts
      (Fault_sim.default_config ~problem ~placement ~failure_model:(Fault_sim.Static 0.3))
      1
  in
  Alcotest.(check (float 1e-9)) "co-located fate sharing" 0.7
    (Fault_sim.iid_success_probability cfg)

let test_retries_improve_availability () =
  let problem, placement = fixture ~n:8 ~system:(Majority_qs.make ~n:5 ~t:3) () in
  let base = Fault_sim.default_config ~problem ~placement ~failure_model:(Fault_sim.Static 0.35) in
  let one =
    Fault_sim.run (with_attempts { base with Fault_sim.accesses_per_client = 1500 } 1)
  in
  let three =
    Fault_sim.run (with_attempts { base with Fault_sim.accesses_per_client = 1500 } 3)
  in
  Alcotest.(check bool) "retries help" true
    (three.Fault_sim.availability > one.Fault_sim.availability +. 0.05)

let test_failed_attempts_cost_timeout () =
  let problem, placement = fixture () in
  let base = Fault_sim.default_config ~problem ~placement ~failure_model:(Fault_sim.Static 0.3) in
  let r = Fault_sim.run { base with Fault_sim.accesses_per_client = 1500 } in
  let r0 = Fault_sim.run { base with Fault_sim.failure_model = Fault_sim.Static 0.; accesses_per_client = 1500 } in
  Alcotest.(check bool) "successful-access delay grows with retries" true
    (r.Fault_sim.mean_delay_success > r0.Fault_sim.mean_delay_success);
  (* Histogram sums to the number of successes. *)
  Alcotest.(check int) "histogram consistent" r.Fault_sim.n_success
    (Array.fold_left ( + ) 0 r.Fault_sim.attempt_histogram)

let test_dynamic_model_runs () =
  let problem, placement = fixture ~n:8 ~system:(Majority_qs.make ~n:5 ~t:3) () in
  let cfg =
    {
      (Fault_sim.default_config ~problem ~placement
         ~failure_model:(Fault_sim.Dynamic { mtbf = 50.; mttr = 10. })) with
      Fault_sim.accesses_per_client = 800;
    }
  in
  let r = Fault_sim.run cfg in
  Alcotest.(check bool) "some succeed" true (r.Fault_sim.availability > 0.5);
  Alcotest.(check bool) "some fail" true (r.Fault_sim.availability < 1.);
  Alcotest.(check bool) "attempts within budget" true
    (r.Fault_sim.mean_attempts
    <= float_of_int cfg.Fault_sim.retry.Qp_runtime.Retry.max_attempts +. 1e-9)

let test_dynamic_extremes () =
  let problem, placement = fixture () in
  (* Nodes essentially never fail. *)
  let up =
    Fault_sim.run
      { (Fault_sim.default_config ~problem ~placement
           ~failure_model:(Fault_sim.Dynamic { mtbf = 1e12; mttr = 1e-6 })) with
        Fault_sim.accesses_per_client = 100 }
  in
  Alcotest.(check (float 1e-9)) "always up" 1. up.Fault_sim.availability

let test_validation () =
  let problem, placement = fixture () in
  let cfg = Fault_sim.default_config ~problem ~placement ~failure_model:(Fault_sim.Static 0.1) in
  Alcotest.check_raises "attempts" (Invalid_argument "Retry: max_attempts >= 1 required")
    (fun () -> ignore (Fault_sim.run (with_attempts cfg 0)));
  Alcotest.check_raises "timeout" (Invalid_argument "Retry: timeout must be positive")
    (fun () -> ignore (Fault_sim.run (with_timeout cfg 0.)));
  Alcotest.check_raises "probability"
    (Invalid_argument "Failure.validate: Static probability must lie in [0, 1]")
    (fun () -> ignore (Fault_sim.run { cfg with Fault_sim.failure_model = Fault_sim.Static 2. }))

(* Cross-module consistency: with one element per node and one attempt,
   the simulated availability matches the Availability module's exact
   system failure probability. *)
let test_matches_availability_module () =
  let system = Majority_qs.make ~n:5 ~t:3 in
  let rng = Rng.create 2 in
  let g, _ = Generators.random_geometric rng 5 0.7 in
  let problem =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make 5 1.) ~system
      ~strategy:(Strategy.uniform system) ()
  in
  let placement = [| 0; 1; 2; 3; 4 |] in
  let p = 0.3 in
  let cfg =
    with_attempts
      { (Fault_sim.default_config ~problem ~placement ~failure_model:(Fault_sim.Static p)) with
        Fault_sim.accesses_per_client = 4000 }
      1
  in
  let r = Fault_sim.run cfg in
  let exact_up = 1. -. Availability.failure_probability system p in
  (* A single attempt samples ONE quorum, so it can fail even when some
     other quorum is alive: per-attempt success <= system availability. *)
  Alcotest.(check bool) "attempt success <= system availability" true
    (r.Fault_sim.predicted_success <= exact_up +. 1e-9);
  Alcotest.(check bool) "simulation near its prediction" true
    (Float.abs (r.Fault_sim.availability -. r.Fault_sim.predicted_success) < 0.02)

let suites =
  [
    ( "sim.faults",
      [
        Alcotest.test_case "no failures" `Quick test_no_failures_full_availability;
        Alcotest.test_case "total failure" `Quick test_total_failure;
        Alcotest.test_case "matches iid prediction" `Quick test_static_matches_iid_prediction;
        Alcotest.test_case "co-location fate sharing" `Quick test_iid_closed_form_accounts_colocation;
        Alcotest.test_case "retries improve availability" `Quick test_retries_improve_availability;
        Alcotest.test_case "timeouts counted in delay" `Quick test_failed_attempts_cost_timeout;
        Alcotest.test_case "dynamic model" `Quick test_dynamic_model_runs;
        Alcotest.test_case "dynamic extremes" `Quick test_dynamic_extremes;
        Alcotest.test_case "validation" `Quick test_validation;
        Alcotest.test_case "consistent with Availability" `Quick test_matches_availability_module;
      ] );
  ]
