(* The geo-scenario subsystem: region RTT tables, read/write quorum
   mixes, skewed client populations, spec parsing and the runner's
   determinism. The reduction properties here are the PR's contract:
   the symmetric corner of the read/write model reproduces the
   historical single-strategy pipeline byte for byte. *)

module Qp_error = Qp_util.Qp_error
module Rng = Qp_util.Rng
module Stats = Qp_util.Stats
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Rw_qs = Qp_quorum.Rw_qs
module Spec = Qp_instance.Spec
module Region = Qp_instance.Region
module Clients = Qp_scenario.Clients
module Scenario = Qp_scenario.Scenario
module Runner = Qp_scenario.Runner

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected error: " ^ Qp_error.to_string e)

let check_invalid what = function
  | Error (Qp_error.Invalid_instance _) -> ()
  | Error e ->
      Alcotest.fail
        (Printf.sprintf "%s: wrong error category: %s" what
           (Qp_error.to_string e))
  | Ok _ -> Alcotest.fail (what ^ ": expected Invalid_instance")

(* ------------------------------------------------------------------ *)
(* Region tables                                                       *)
(* ------------------------------------------------------------------ *)

let test_region_tables () =
  Alcotest.(check (list string))
    "registered tables" [ "aws-3"; "aws-9"; "gcp-6" ] (Region.names ());
  let t = ok_exn (Region.find "aws-3") in
  Alcotest.(check int) "aws-3 regions" 3 (Region.n_regions t);
  check_invalid "unknown table" (Region.find "azure-5");
  (* RTT matrices are symmetric with a zero diagonal. *)
  List.iter
    (fun name ->
      let t = ok_exn (Region.find name) in
      let r = Region.n_regions t in
      for i = 0 to r - 1 do
        Alcotest.(check (float 0.)) "zero diagonal" 0. (Region.rtt t i i);
        for j = 0 to r - 1 do
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s rtt symmetric (%d,%d)" name i j)
            (Region.rtt t i j) (Region.rtt t j i)
        done
      done)
    (Region.names ())

let test_region_residency () =
  let t = ok_exn (Region.find "aws-3") in
  (* Round-robin residency: node v lives in region v mod 3, so any
     prefix of node ids covers the regions as evenly as possible. *)
  Alcotest.(check int) "node 0" 0 (Region.region_of_node t 0);
  Alcotest.(check int) "node 4" 1 (Region.region_of_node t 4);
  Alcotest.(check (list int)) "region 1 of 7 nodes" [ 1; 4 ]
    (Region.nodes_of_region t ~nodes:7 1);
  Alcotest.(check string) "region name" "eu-west-1"
    (Region.region_name_of_node t 4)

let test_region_topology_in_spec () =
  let spec =
    { Spec.default with Spec.topology = "region:aws-3"; nodes = 9 }
  in
  let p = ok_exn (Spec.build spec) in
  Alcotest.(check int) "nodes" 9 (Qp_place.Problem.n_nodes p);
  (* Intra-region distance (1 ms) is far below inter-region RTT. *)
  let t = ok_exn (Region.find "aws-3") in
  let g = Region.graph t ~nodes:9 in
  let m = Qp_graph.Metric.of_graph g in
  Alcotest.(check (float 1e-9)) "intra-region" 1.
    (Qp_graph.Metric.dist m 0 3);
  Alcotest.(check (float 1e-9)) "us-east-1 <-> eu-west-1" 75.
    (Qp_graph.Metric.dist m 0 1);
  check_invalid "too few nodes"
    (Spec.build { spec with Spec.nodes = 2 });
  check_invalid "unknown region table"
    (Spec.build { spec with Spec.topology = "region:nope" });
  (* Deterministic: the rng is unused, equal specs build byte-identical
     instances. *)
  Alcotest.(check string) "deterministic"
    (Qp_place.Serialize.problem_to_string (ok_exn (Spec.build spec)))
    (Qp_place.Serialize.problem_to_string (ok_exn (Spec.build spec)))

(* ------------------------------------------------------------------ *)
(* Read/write quorum systems                                           *)
(* ------------------------------------------------------------------ *)

let test_rw_constructions () =
  let g = ok_exn (Rw_qs.of_string_opt "rw-grid:3" |> Option.get) in
  Alcotest.(check int) "grid reads" 3 (Rw_qs.n_reads g);
  Alcotest.(check int) "grid writes" 3 (Rw_qs.n_writes g);
  Alcotest.(check int) "grid universe" 9 (Rw_qs.universe g);
  Alcotest.(check bool) "grid safe" true (Rw_qs.intersection_ok g);
  (* Reads are rows: they deliberately do NOT intersect each other. *)
  Alcotest.(check bool) "reads not a coterie" false
    (Quorum.all_intersecting (Rw_qs.reads g));
  let r = ok_exn (Rw_qs.of_string_opt "rowa:5" |> Option.get) in
  Alcotest.(check int) "rowa reads" 5 (Rw_qs.n_reads r);
  Alcotest.(check int) "rowa writes" 1 (Rw_qs.n_writes r);
  Alcotest.(check bool) "rowa safe" true (Rw_qs.intersection_ok r);
  let m = ok_exn (Rw_qs.of_string_opt "rw-majority:5:2:4" |> Option.get) in
  Alcotest.(check int) "majority reads" 10 (Rw_qs.n_reads m);
  Alcotest.(check int) "majority writes" 5 (Rw_qs.n_writes m);
  Alcotest.(check bool) "majority safe" true (Rw_qs.intersection_ok m);
  Alcotest.(check bool) "plain names fall through" true
    (Rw_qs.of_string_opt "grid:3" = None);
  check_invalid "r + w <= n rejected"
    (Option.get (Rw_qs.of_string_opt "rw-majority:5:2:3"));
  check_invalid "2w <= n rejected"
    (Option.get (Rw_qs.of_string_opt "rw-majority:6:4:3"))

let test_rw_make_validates () =
  let singles n =
    Quorum.make_unchecked ~universe:n (Array.init n (fun v -> [| v |]))
  in
  (* Singleton writes never pairwise intersect for n >= 2. *)
  check_invalid "writes must interset"
    (Rw_qs.make ~reads:(singles 3) ~writes:(singles 3));
  let full n = Quorum.make_unchecked ~universe:n [| Array.init n Fun.id |] in
  check_invalid "universes must match"
    (Rw_qs.make ~reads:(singles 3) ~writes:(full 4));
  let rw = ok_exn (Rw_qs.make ~reads:(singles 3) ~writes:(full 3)) in
  Alcotest.(check bool) "rowa shape accepted" true (Rw_qs.intersection_ok rw);
  (* Cross-intersection violation: a read disjoint from a write. *)
  let reads = Quorum.make_unchecked ~universe:4 [| [| 0 |] |] in
  let writes = Quorum.make_unchecked ~universe:4 [| [| 1; 2; 3 |] |] in
  check_invalid "read missing a write" (Rw_qs.make ~reads ~writes)

let test_rw_combined_indices () =
  let g = ok_exn (Rw_qs.of_string_opt "rw-grid:2" |> Option.get) in
  let c = Rw_qs.combined g in
  Alcotest.(check int) "combined count" 4 (Quorum.n_quorums c);
  Alcotest.(check (array int)) "read indices" [| 0; 1 |]
    (Rw_qs.read_indices g);
  Alcotest.(check (array int)) "write indices" [| 2; 3 |]
    (Rw_qs.write_indices g);
  (* Shared systems keep the original family untouched. *)
  let s = Qp_quorum.Grid_qs.make 3 in
  let shared = Rw_qs.of_system s in
  Alcotest.(check bool) "shared combined == original" true
    (Rw_qs.combined shared == s)

(* The PR's byte-identity contract: a problem built from the symmetric
   embedding at read_fraction 1.0 (or 0.5 with read = write) is
   byte-identical to the historical single-strategy problem. *)
let test_rw_reduction_byte_identity () =
  let spec = { Spec.default with Spec.topology = "complete"; nodes = 9 } in
  let p = ok_exn (Spec.build spec) in
  let rw = Rw_qs.of_system p.Qp_place.Problem.system in
  let u = Strategy.uniform p.Qp_place.Problem.system in
  let build strategy =
    Qp_place.Serialize.problem_to_string
      (Qp_place.Problem.make_qpp ~metric:p.Qp_place.Problem.metric
         ~capacities:p.Qp_place.Problem.capacities
         ~system:p.Qp_place.Problem.system ~strategy ())
  in
  let baseline = build p.Qp_place.Problem.strategy in
  Alcotest.(check string) "rho = 1.0 reduces exactly" baseline
    (build (Rw_qs.mixed rw ~read:u ~write:u ~read_fraction:1.0));
  Alcotest.(check string) "rho = 0.5 with read = write reduces exactly"
    baseline
    (build (Rw_qs.mixed rw ~read:u ~write:u ~read_fraction:0.5))

let prop_rw_cross_intersection =
  QCheck.Test.make ~name:"rw families: every read meets every write"
    ~count:12
    QCheck.(int_range 1 5)
    (fun k ->
      let g = Result.get_ok (Option.get (Rw_qs.of_string_opt
          (Printf.sprintf "rw-grid:%d" k))) in
      let r = Result.get_ok (Option.get (Rw_qs.of_string_opt
          (Printf.sprintf "rowa:%d" (k + 1)))) in
      Rw_qs.intersection_ok g && Rw_qs.intersection_ok r)

let prop_rw_mixed_is_distribution =
  QCheck.Test.make ~name:"mixed strategy is a distribution at any rho"
    ~count:30
    QCheck.(pair (int_range 1 4) (float_range 0. 1.))
    (fun (k, rho) ->
      let rw = Result.get_ok (Option.get (Rw_qs.of_string_opt
          (Printf.sprintf "rw-grid:%d" k))) in
      let m =
        Rw_qs.mixed rw ~read:(Rw_qs.uniform_read rw)
          ~write:(Rw_qs.uniform_write rw) ~read_fraction:rho
      in
      Strategy.validate (Rw_qs.combined rw) m;
      Float.abs (Array.fold_left ( +. ) 0. m -. 1.) < 1e-9)

(* ------------------------------------------------------------------ *)
(* Client populations                                                  *)
(* ------------------------------------------------------------------ *)

let prop_zipf_deterministic_sum1 =
  QCheck.Test.make
    ~name:"zipf rates: deterministic per seed, sum to 1" ~count:30
    QCheck.(pair (int_range 1 40) (int_range 0 1000))
    (fun (nodes, seed) ->
      let r1 = Result.get_ok (Clients.rates (Clients.Zipf 1.1) ~nodes ~seed) in
      let r2 = Result.get_ok (Clients.rates (Clients.Zipf 1.1) ~nodes ~seed) in
      r1 = r2
      && Float.abs (Array.fold_left ( +. ) 0. r1 -. 1.) < 1e-9
      && Array.for_all (fun x -> x > 0.) r1)

let test_region_weight_rates () =
  let t = ok_exn (Region.find "aws-3") in
  let r =
    ok_exn
      (Clients.rates ~table:t (Clients.Region_weights [| 2.; 1.; 0. |])
         ~nodes:6 ~seed:1)
  in
  Alcotest.(check (float 1e-9)) "sums to 1" 1. (Array.fold_left ( +. ) 0. r);
  (* Region 2's nodes (2 and 5) are silenced. *)
  Alcotest.(check (float 0.)) "node 2 silent" 0. r.(2);
  Alcotest.(check (float 0.)) "node 5 silent" 0. r.(5);
  (* Region 0 carries twice region 1's share, split over two nodes. *)
  Alcotest.(check (float 1e-9)) "node 0 share" (1. /. 3.) r.(0);
  check_invalid "weight count must match regions"
    (Clients.rates ~table:t (Clients.Region_weights [| 1.; 1. |]) ~nodes:6
       ~seed:1);
  check_invalid "regions skew needs a table"
    (Clients.rates (Clients.Region_weights [| 1.; 1.; 1. |]) ~nodes:6 ~seed:1);
  check_invalid "all-zero weights"
    (Clients.rates ~table:t (Clients.Region_weights [| 0.; 0.; 0. |]) ~nodes:6
       ~seed:1)

(* ------------------------------------------------------------------ *)
(* Stats tiny-sample guards                                            *)
(* ------------------------------------------------------------------ *)

let test_stats_guards () =
  Alcotest.(check bool) "summarize_opt empty" true
    (Stats.summarize_opt [||] = None);
  Alcotest.(check bool) "percentile_opt empty" true
    (Stats.percentile_opt [||] 50. = None);
  Alcotest.(check (list (pair (float 0.) (float 0.)))) "cdf empty" []
    (Stats.cdf [||]);
  (* Singletons: degenerate but finite and monotone, never NaN. *)
  let s = Option.get (Stats.summarize_opt [| 42. |]) in
  Alcotest.(check int) "singleton n" 1 s.Stats.n;
  Alcotest.(check (float 0.)) "singleton stddev" 0. s.Stats.stddev;
  Alcotest.(check (float 0.)) "singleton p95" 42. s.Stats.p95;
  let cdf = Stats.cdf [| 42. |] in
  Alcotest.(check int) "singleton cdf points" 11 (List.length cdf);
  List.iter
    (fun (_, v) -> Alcotest.(check (float 0.)) "constant curve" 42. v)
    cdf

let prop_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone in the quantile" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 40) (float_range (-50.) 50.))
    (fun xs ->
      let cdf = Stats.cdf (Array.of_list xs) in
      let rec mono = function
        | (_, v1) :: ((_, v2) :: _ as rest) -> v1 <= v2 +. 1e-12 && mono rest
        | _ -> true
      in
      mono cdf)

(* ------------------------------------------------------------------ *)
(* Spec parsing                                                        *)
(* ------------------------------------------------------------------ *)

let minimal_spec =
  {|{"schema":"qp-scenario-spec/1","name":"t","topology":"region:aws-3",
     "nodes":9,"system":"grid:3"}|}

let test_scenario_parsing () =
  let sc = ok_exn (Scenario.of_string minimal_spec) in
  Alcotest.(check string) "name" "t" sc.Scenario.name;
  Alcotest.(check (float 0.)) "default rho" 0.5 sc.Scenario.read_fraction;
  Alcotest.(check bool) "default skew" true (sc.Scenario.skew = Clients.Uniform);
  Alcotest.(check string) "default alg" "auto" sc.Scenario.alg;
  check_invalid "missing field"
    (Scenario.of_string {|{"schema":"qp-scenario-spec/1","name":"t"}|});
  check_invalid "unknown field"
    (Scenario.of_string
       {|{"schema":"qp-scenario-spec/1","name":"t","topology":"complete",
          "nodes":4,"system":"triangle","reads_fraction":0.9}|});
  check_invalid "wrong schema"
    (Scenario.of_string {|{"schema":"qp-scenario-spec/2","name":"t"}|});
  check_invalid "malformed json" (Scenario.of_string "{nope");
  check_invalid "bad skew"
    (Scenario.of_string
       {|{"schema":"qp-scenario-spec/1","name":"t","topology":"complete",
          "nodes":4,"system":"triangle","clients":{"skew":"hot"}}|});
  check_invalid "bad rho"
    (Scenario.of_string
       {|{"schema":"qp-scenario-spec/1","name":"t","topology":"complete",
          "nodes":4,"system":"triangle","read_fraction":1.5}|});
  let zipf =
    ok_exn
      (Scenario.of_string
         {|{"schema":"qp-scenario-spec/1","name":"z","topology":"complete",
            "nodes":4,"system":"triangle","clients":{"skew":"zipf","exponent":2},
            "service":"fixed:3","protocol":"sequential","offered_loads":[0.5,2]}|})
  in
  Alcotest.(check bool) "zipf parsed" true (zipf.Scenario.skew = Clients.Zipf 2.);
  Alcotest.(check bool) "service parsed" true
    (zipf.Scenario.service = Qp_sim.Access_sim.Fixed 3.);
  Alcotest.(check bool) "protocol parsed" true
    (zipf.Scenario.protocol = Qp_sim.Access_sim.Sequential)

(* ------------------------------------------------------------------ *)
(* Runner                                                              *)
(* ------------------------------------------------------------------ *)

let small_scenario =
  { Scenario.default with
    Scenario.name = "test-small";
    topology = "region:aws-3";
    nodes = 9;
    system = "rw-grid:3";
    read_fraction = 0.9;
    offered_loads = [| 1.0 |];
    accesses_per_client = 40;
    service = Qp_sim.Access_sim.Fixed 1.0;
    alg = "greedy";
    seed = 5 }

let test_runner_record_shape () =
  let r = ok_exn (Runner.run small_scenario) in
  Alcotest.(check int) "regions" 3 (Array.length r.Runner.regions);
  Alcotest.(check int) "curve cells" 1 (Array.length r.Runner.curve);
  Alcotest.(check int) "cdf groups" 3 (List.length r.Runner.region_cdfs);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (c.Runner.region ^ " has active clients") true (c.Runner.count > 0))
    r.Runner.region_cdfs;
  let cell = r.Runner.curve.(0) in
  Alcotest.(check bool) "throughput positive" true (cell.Runner.throughput > 0.);
  Alcotest.(check bool) "accesses ran" true (cell.Runner.accesses > 0);
  (* The record round-trips through the telemetry JSON. *)
  let doc = Qp_obs.Json.to_string (Runner.to_json r) in
  let json = Qp_obs.Json.of_string doc in
  Alcotest.(check (option string)) "schema field" (Some "qp-scenario/1")
    (Option.bind (Qp_obs.Json.member "schema" json) Qp_obs.Json.to_str);
  (match Qp_obs.Json.member "region_cdfs" json with
  | Some (Qp_obs.Json.Obj groups) ->
      Alcotest.(check int) "cdf keys serialized" 3 (List.length groups)
  | _ -> Alcotest.fail "region_cdfs must be an object")

let test_runner_jobs_deterministic () =
  let render pool =
    let r = ok_exn (Runner.run ~pool small_scenario) in
    Qp_obs.Json.to_string (Runner.to_json r)
  in
  let p1 = Qp_par.Pool.create ~jobs:1 in
  let p3 = Qp_par.Pool.create ~jobs:3 in
  let a = render p1 and b = render p3 in
  Qp_par.Pool.shutdown p1;
  Qp_par.Pool.shutdown p3;
  Alcotest.(check string) "records byte-identical across jobs" a b

let test_runner_rejects () =
  check_invalid "unknown topology"
    (Runner.run { small_scenario with Scenario.topology = "donut" });
  check_invalid "unknown system"
    (Runner.run { small_scenario with Scenario.system = "rw-nope:3" });
  check_invalid "bad offered load"
    (Runner.run { small_scenario with Scenario.offered_loads = [| 0. |] });
  check_invalid "regions skew off region tables"
    (Runner.run
       { small_scenario with
         Scenario.topology = "complete";
         skew = Clients.Region_weights [| 1.; 1.; 1. |] })

let test_sim_makespan () =
  let p = ok_exn (Spec.build { Spec.default with Spec.topology = "complete"; nodes = 9 }) in
  let outcome =
    match
      (Qp_place.Solver.find_exn "greedy").Qp_place.Solver.solve
        Qp_place.Solver.default_params p
    with
    | Ok o -> o
    | Error e -> Alcotest.fail (Qp_error.to_string e)
  in
  let report =
    Qp_sim.Access_sim.run
      (Qp_sim.Access_sim.default_config ~problem:p
         ~placement:outcome.Qp_place.Outcome.placement)
  in
  Alcotest.(check bool) "makespan positive" true
    (report.Qp_sim.Access_sim.makespan > 0.);
  (* The last completion cannot precede the slowest single access. *)
  Alcotest.(check bool) "makespan >= max delay" true
    (report.Qp_sim.Access_sim.makespan
    >= report.Qp_sim.Access_sim.delay_summary.Stats.max)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_rw_cross_intersection; prop_rw_mixed_is_distribution;
      prop_zipf_deterministic_sum1; prop_cdf_monotone;
    ]

let suites =
  [
    ( "scenario.region",
      [
        Alcotest.test_case "tables" `Quick test_region_tables;
        Alcotest.test_case "residency" `Quick test_region_residency;
        Alcotest.test_case "spec topology" `Quick test_region_topology_in_spec;
      ] );
    ( "scenario.rw",
      [
        Alcotest.test_case "constructions" `Quick test_rw_constructions;
        Alcotest.test_case "validation" `Quick test_rw_make_validates;
        Alcotest.test_case "combined indices" `Quick test_rw_combined_indices;
        Alcotest.test_case "reduction byte-identity" `Quick
          test_rw_reduction_byte_identity;
      ] );
    ( "scenario.clients",
      [ Alcotest.test_case "region weights" `Quick test_region_weight_rates ] );
    ( "scenario.stats",
      [ Alcotest.test_case "tiny-sample guards" `Quick test_stats_guards ] );
    ( "scenario.spec",
      [ Alcotest.test_case "parsing" `Quick test_scenario_parsing ] );
    ( "scenario.runner",
      [
        Alcotest.test_case "record shape" `Quick test_runner_record_shape;
        Alcotest.test_case "jobs-deterministic" `Quick
          test_runner_jobs_deterministic;
        Alcotest.test_case "rejects" `Quick test_runner_rejects;
        Alcotest.test_case "sim makespan" `Quick test_sim_makespan;
      ] );
    ("scenario.properties", qcheck_tests);
  ]
