(* qp_serve: framing, protocol codecs, and in-process client/server
   round-trips. The server runs in a thread on an ephemeral port; the
   tests talk to it over real loopback sockets, so the admission,
   deadline, and drain paths are exercised end to end exactly as a
   remote client would see them. *)

module Obs = Qp_obs
module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error
module Spec = Qp_instance.Spec
module Solver = Qp_place.Solver
module Serialize = Qp_place.Serialize
module Frame = Qp_serve.Frame
module Protocol = Qp_serve.Protocol
module Server = Qp_serve.Server
module Client = Qp_serve.Client
module Loadgen = Qp_serve.Loadgen

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* Small and fast: grid:2 on 8 waxman nodes solves in ~10ms, so a
   whole suite of round-trips stays well under a second. *)
let test_spec =
  { Spec.topology = "waxman"; nodes = 8; system = "grid:2"; cap_slack = 1.0;
    seed = 3; jobs = 1 }

let get_ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (Qp_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Frame layer                                                         *)
(* ------------------------------------------------------------------ *)

let test_decoder_byte_by_byte () =
  let payload = {|{"verb":"health"}|} in
  let enc = Frame.encode payload in
  let d = Frame.Decoder.create () in
  let n = Bytes.length enc in
  for i = 0 to n - 2 do
    Frame.Decoder.feed d (Bytes.sub enc i 1) 1;
    match Frame.Decoder.next d with
    | `Await -> ()
    | `Frame _ -> Alcotest.fail "frame completed early"
    | `Error msg -> Alcotest.failf "decoder error mid-frame: %s" msg
  done;
  Frame.Decoder.feed d (Bytes.sub enc (n - 1) 1) 1;
  (match Frame.Decoder.next d with
  | `Frame p -> checks "payload" payload p
  | _ -> Alcotest.fail "expected a complete frame");
  match Frame.Decoder.next d with
  | `Await -> ()
  | _ -> Alcotest.fail "decoder must be empty after the frame"

let test_decoder_pipelined () =
  let p1 = "first" and p2 = {|{"k":[1,2,3]}|} in
  let enc = Bytes.cat (Frame.encode p1) (Frame.encode p2) in
  let d = Frame.Decoder.create () in
  Frame.Decoder.feed d enc (Bytes.length enc);
  (match Frame.Decoder.next d with
  | `Frame p -> checks "first frame" p1 p
  | _ -> Alcotest.fail "expected first frame");
  (match Frame.Decoder.next d with
  | `Frame p -> checks "second frame" p2 p
  | _ -> Alcotest.fail "expected second frame");
  match Frame.Decoder.next d with
  | `Await -> ()
  | _ -> Alcotest.fail "expected Await after both frames"

let test_decoder_oversize_poisons () =
  let d = Frame.Decoder.create ~max_len:8 () in
  let enc = Frame.encode (String.make 100 'x') in
  Frame.Decoder.feed d enc (Bytes.length enc);
  (match Frame.Decoder.next d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "oversize length must be a decoder error");
  match Frame.Decoder.next d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "decoder must stay poisoned"

let test_decoder_negative_length () =
  let d = Frame.Decoder.create () in
  let b = Bytes.make 8 '\xff' in
  Frame.Decoder.feed d b 8;
  match Frame.Decoder.next d with
  | `Error _ -> ()
  | _ -> Alcotest.fail "negative length must be a decoder error"

(* ------------------------------------------------------------------ *)
(* Codecs                                                              *)
(* ------------------------------------------------------------------ *)

let test_error_codec_roundtrip () =
  let cases =
    [ Qp_error.Invalid_instance "bad spec";
      Qp_error.Infeasible "no placement";
      Qp_error.Capacity_violation { node = 3; load = 2.5; cap = 1.0 };
      Qp_error.Internal "pivot budget exceeded" ]
  in
  List.iter
    (fun e ->
      let j = Serialize.error_to_json e in
      match Serialize.error_of_json j with
      | Ok e' ->
          checkb
            (Printf.sprintf "round-trip %s" (Serialize.error_code e))
            true (e = e')
      | Error d -> Alcotest.failf "decode failed: %s" (Qp_error.to_string d))
    cases;
  checks "codes" "invalid_instance,infeasible,capacity_violation,internal"
    (String.concat "," (List.map Serialize.error_code cases))

let test_request_codec () =
  let req =
    Protocol.request ~id:(Json.Int 7) ~spec:test_spec
      ~options:
        { Protocol.default_options with
          Protocol.deadline_ms = Some 250;
          pivot_budget = Some 9 }
      Protocol.Solve
  in
  let j = Protocol.request_to_json req in
  let req' = get_ok "request_of_json" (Protocol.request_of_json j) in
  checkb "id" true (req'.Protocol.id = Json.Int 7);
  checkb "verb" true (req'.Protocol.verb = Protocol.Solve);
  (match req'.Protocol.spec with
  | Some s -> checkb "spec" true (s = test_spec)
  | None -> Alcotest.fail "spec lost");
  checkb "options" true
    (req'.Protocol.options.Protocol.deadline_ms = Some 250
    && req'.Protocol.options.Protocol.pivot_budget = Some 9)

let test_request_defaults_and_errors () =
  let req =
    get_ok "minimal" (Protocol.request_of_json (Json.of_string {|{"verb":"health"}|}))
  in
  checkb "defaults" true
    (req.Protocol.id = Json.Null
    && req.Protocol.spec = None
    && req.Protocol.options = Protocol.default_options);
  (match Protocol.request_of_json (Json.of_string {|{"verb":"explode"}|}) with
  | Error (Qp_error.Invalid_instance _) -> ()
  | _ -> Alcotest.fail "unknown verb must be invalid_instance");
  (match Protocol.request_of_json (Json.of_string {|{"verb":"solve","spec":{"nodes":"many"}}|}) with
  | Error (Qp_error.Invalid_instance _) -> ()
  | _ -> Alcotest.fail "mistyped spec field must be invalid_instance");
  match Protocol.parse_request {|{"id":42,"verb":"nope"}|} with
  | Error (Json.Int 42, _) -> ()
  | _ -> Alcotest.fail "parse_request must recover the id"

let test_delta_codec () =
  let delta =
    [ Qp_instance.Delta.Set_edge { u = 0; v = 1; length = 2.5 };
      Qp_instance.Delta.Remove_edge { u = 2; v = 3 };
      Qp_instance.Delta.Set_capacity { node = 1; cap = 4. };
      Qp_instance.Delta.Set_cap_slack 1.5 ]
  in
  let req = Protocol.request ~id:(Json.Int 9) ~delta Protocol.Update in
  let j = Protocol.request_to_json req in
  let req' = get_ok "update request" (Protocol.request_of_json j) in
  checkb "verb" true (req'.Protocol.verb = Protocol.Update);
  checkb "delta round-trips" true (req'.Protocol.delta = Some delta);
  (* malformed deltas are typed errors, field by field *)
  let bad s =
    match Protocol.request_of_json (Json.of_string s) with
    | Error (Qp_error.Invalid_instance _) -> ()
    | _ -> Alcotest.failf "accepted malformed delta: %s" s
  in
  bad {|{"verb":"update","delta":"not an array"}|};
  bad {|{"verb":"update","delta":[{"op":"set_edge","u":0}]}|};
  bad {|{"verb":"update","delta":[{"op":"warp_core"}]}|};
  bad {|{"verb":"update","delta":[42]}|}

let test_partial_spec_defaults () =
  let base = test_spec in
  let s =
    get_ok "partial spec"
      (Protocol.spec_of_json ~base (Json.of_string {|{"seed":99}|}))
  in
  checkb "only seed overridden" true
    (s = { base with Spec.seed = 99 })

(* ------------------------------------------------------------------ *)
(* In-process server harness                                           *)
(* ------------------------------------------------------------------ *)

let with_server ?(tweak = fun c -> c) f =
  let port = Atomic.make 0 in
  let cfg =
    tweak
      { Server.default_config with
        Server.port = 0;
        default_spec = test_spec }
  in
  let result = ref (Ok ()) in
  let th =
    Thread.create
      (fun () -> result := Server.run ~ready:(fun p -> Atomic.set port p) cfg)
      ()
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.002
  done;
  if Atomic.get port = 0 then Alcotest.fail "server never became ready";
  let p = Atomic.get port in
  Fun.protect
    ~finally:(fun () ->
      (match Client.connect ~port:p () with
      | Ok c ->
          ignore (Client.call c (Protocol.request Protocol.Shutdown));
          Client.close c
      | Error _ -> () (* already drained *));
      Thread.join th;
      match !result with
      | Ok () -> ()
      | Error e -> Alcotest.failf "server exit: %s" (Qp_error.to_string e))
    (fun () -> f p)

let call_ok what client req =
  match get_ok what (Client.call client req) with
  | { Protocol.payload = Ok j; _ } -> j
  | { Protocol.payload = Error e; _ } ->
      Alcotest.failf "%s: server error %s: %s" what
        (Protocol.serve_error_code e)
        (Protocol.serve_error_message e)

let call_err what client req =
  match get_ok what (Client.call client req) with
  | { Protocol.payload = Error e; _ } -> e
  | { Protocol.payload = Ok _; _ } ->
      Alcotest.failf "%s: expected an error response" what

let member_string what j key =
  match Option.bind (Json.member key j) Json.to_str with
  | Some s -> s
  | None -> Alcotest.failf "%s: missing string %S" what key

(* ------------------------------------------------------------------ *)
(* End-to-end verbs                                                    *)
(* ------------------------------------------------------------------ *)

let test_all_verbs () =
  with_server @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* health: status + build version (the --version satellite, served) *)
  let h = call_ok "health" c (Protocol.request ~id:(Json.Int 1) Protocol.Health) in
  checks "health status" "ok" (member_string "health" h "status");
  checks "health version" Obs.Build_info.version (member_string "health" h "version");
  (* info: quorum-system description *)
  let i = call_ok "info" c (Protocol.request ~id:(Json.Int 2) Protocol.Info) in
  checki "info universe"
    (match Json.member "universe" i with Some (Json.Int n) -> n | _ -> -1)
    4;
  (* metrics: well-formed Prometheus text mentioning our series *)
  let m = call_ok "metrics" c (Protocol.request ~id:(Json.Int 3) Protocol.Metrics) in
  let body = member_string "metrics" m "body" in
  checkb "metrics exports request counter" true
    (let re = "qp_serve_requests_total" in
     let len = String.length re in
     let rec find i =
       i + len <= String.length body && (String.sub body i len = re || find (i + 1))
     in
     find 0);
  (* solve: echoes the id and returns a qp-solve/1 outcome *)
  let resp =
    get_ok "solve"
      (Client.call c (Protocol.request ~id:(Json.String "rq") Protocol.Solve))
  in
  checkb "solve id echoed" true (resp.Protocol.id = Json.String "rq");
  match resp.Protocol.payload with
  | Ok j -> checks "outcome schema" "qp-solve/1" (member_string "solve" j "schema")
  | Error e -> Alcotest.failf "solve: %s" (Protocol.serve_error_message e)

(* The acceptance property: a served placement is byte-identical to
   the offline solve of the same spec and options. *)
let test_served_equals_offline () =
  let offline =
    let solver = get_ok "find lp" (Solver.find "lp") in
    let problem = get_ok "build" (Spec.build test_spec) in
    let params = Protocol.solver_params test_spec Protocol.default_options in
    get_ok "offline solve" (solver.Solver.solve params problem)
  in
  let offline_str = Json.to_string (Serialize.outcome_to_json offline) in
  with_server @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* once against the server's default spec, once with the spec on the
     wire: both must be the same bytes *)
  let served1 = call_ok "solve default" c (Protocol.request Protocol.Solve) in
  let served2 =
    call_ok "solve explicit" c (Protocol.request ~spec:test_spec Protocol.Solve)
  in
  checks "served(default spec) = offline" offline_str (Json.to_string served1);
  checks "served(wire spec) = offline" offline_str (Json.to_string served2)

let test_solve_typed_errors () =
  with_server @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* unknown algorithm -> invalid_instance, connection stays usable *)
  let e =
    call_err "bad alg" c
      (Protocol.request
         ~options:{ Protocol.default_options with Protocol.algorithm = "nope" }
         Protocol.Solve)
  in
  checks "bad alg code" "invalid_instance" (Protocol.serve_error_code e);
  (* pivot-budget exhaustion -> typed internal error *)
  let e =
    call_err "tiny budget" c
      (Protocol.request
         ~options:{ Protocol.default_options with Protocol.pivot_budget = Some 1 }
         Protocol.Solve)
  in
  checks "pivot budget code" "internal" (Protocol.serve_error_code e);
  checkb "pivot budget message" true
    (let msg = Protocol.serve_error_message e in
     let has sub =
       let n = String.length sub in
       let rec find i =
         i + n <= String.length msg && (String.sub msg i n = sub || find (i + 1))
       in
       find 0
     in
     has "pivot");
  (* and the server is still healthy afterwards *)
  let h = call_ok "health after errors" c (Protocol.request Protocol.Health) in
  checks "still ok" "ok" (member_string "health" h "status")

let test_deadline_zero_rejected () =
  with_server @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let e =
    call_err "deadline 0" c
      (Protocol.request
         ~options:{ Protocol.default_options with Protocol.deadline_ms = Some 0 }
         Protocol.Solve)
  in
  checks "deadline code" "deadline_exceeded" (Protocol.serve_error_code e)

let test_malformed_gets_reply_not_hangup () =
  with_server @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  get_ok "send garbage json" (Client.send_raw c "this is not json");
  (match get_ok "recv" (Client.recv c) with
  | Some { Protocol.payload = Error (Protocol.Typed (Qp_error.Invalid_instance _)); _ } ->
      ()
  | Some _ -> Alcotest.fail "expected invalid_instance reply"
  | None -> Alcotest.fail "server hung up instead of replying");
  (* same connection still serves requests *)
  let h = call_ok "health after garbage" c (Protocol.request Protocol.Health) in
  checks "still ok" "ok" (member_string "health" h "status")

(* ------------------------------------------------------------------ *)
(* Live updates                                                        *)
(* ------------------------------------------------------------------ *)

let generation what client =
  let h = call_ok what client (Protocol.request Protocol.Health) in
  match Json.member "generation" h with
  | Some (Json.Int g) -> g
  | _ -> Alcotest.failf "%s: health carries no generation" what

let test_update_verb () =
  with_server @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  checki "initial generation" 0 (generation "gen0" c);
  let before = call_ok "solve before" c (Protocol.request Protocol.Solve) in
  (* a served solve with no spec is the live instance at generation 0:
     byte-identical to the spec route *)
  let explicit = call_ok "solve spec" c (Protocol.request ~spec:test_spec Protocol.Solve) in
  checks "live gen0 = spec solve" (Json.to_string explicit) (Json.to_string before);
  (* accepted delta: generation bumps, cache is invalidated *)
  let delta = [ Qp_instance.Delta.Set_edge { u = 0; v = 1; length = 9. } ] in
  let u = call_ok "update" c (Protocol.request ~delta Protocol.Update) in
  checki "update reports generation"
    (match Json.member "generation" u with Some (Json.Int g) -> g | _ -> -1)
    1;
  checki "generation after update" 1 (generation "gen1" c);
  let after = call_ok "solve after" c (Protocol.request Protocol.Solve) in
  (* the served solve now matches an offline solve of the mutated
     instance, not of the original spec *)
  let offline =
    let live = get_ok "live" (Qp_instance.Live.of_spec test_spec) in
    get_ok "offline apply" (Qp_instance.Live.apply live delta);
    let solver = get_ok "find lp" (Solver.find "lp") in
    let params = Protocol.solver_params test_spec Protocol.default_options in
    get_ok "offline solve"
      (solver.Solver.solve params (Qp_instance.Live.problem live))
  in
  checks "solve reflects the mutated instance"
    (Json.to_string (Serialize.outcome_to_json offline))
    (Json.to_string after);
  (* repeat solve is served from the refreshed cache: same bytes *)
  let again = call_ok "solve cached" c (Protocol.request Protocol.Solve) in
  checks "cached solve identical" (Json.to_string after) (Json.to_string again);
  (* rejected deltas leave the generation alone *)
  let reject what delta =
    let e = call_err what c (Protocol.request ?delta Protocol.Update) in
    checks (what ^ " code") "invalid_instance" (Protocol.serve_error_code e);
    checki (what ^ " generation unchanged") 1 (generation what c)
  in
  reject "missing delta" None;
  reject "empty delta" (Some []);
  reject "out-of-range node"
    (Some [ Qp_instance.Delta.Set_capacity { node = 99; cap = 1. } ])

(* Fuzz: random — frequently malformed — update deltas never crash the
   server, and a rejected delta never moves the generation (Live.apply
   is all-or-nothing). *)
let fuzz_update_port = Atomic.make 0

let rand_delta_json rng =
  let rand_op () =
    match Qp_util.Rng.int rng 8 with
    | 0 ->
        Json.Obj
          [ ("op", Json.String "set_edge"); ("u", Json.Int (Qp_util.Rng.int rng 8));
            ("v", Json.Int (Qp_util.Rng.int rng 8));
            ("length", Json.Float (Qp_util.Rng.float rng 4. -. 1.)) ]
    | 1 ->
        Json.Obj
          [ ("op", Json.String "remove_edge"); ("u", Json.Int (Qp_util.Rng.int rng 10));
            ("v", Json.Int (Qp_util.Rng.int rng 10)) ]
    | 2 ->
        Json.Obj
          [ ("op", Json.String "set_capacity");
            ("node", Json.Int (Qp_util.Rng.int rng 12 - 2));
            ("cap", Json.Float (Qp_util.Rng.float rng 5. -. 1.)) ]
    | 3 ->
        Json.Obj
          [ ("op", Json.String "set_cap_slack");
            ("slack", Json.Float (Qp_util.Rng.float rng 3. -. 0.5)) ]
    | 4 -> Json.Obj [ ("op", Json.String "set_edge"); ("u", Json.Int 0) ]
    | 5 -> Json.Obj [ ("op", Json.String "warp_core") ]
    | 6 -> Json.Int 42
    | _ ->
        Json.Obj
          [ ("op", Json.String "set_edge"); ("u", Json.Int 3); ("v", Json.Int 3);
            ("length", Json.Float 1.) ]
  in
  match Qp_util.Rng.int rng 10 with
  | 0 -> Json.String "not an array"
  | 1 -> Json.List []
  | _ -> Json.List (List.init (1 + Qp_util.Rng.int rng 3) (fun _ -> rand_op ()))

let fuzz_update_survives =
  QCheck.Test.make ~count:40
    ~name:"serve: fuzzed update deltas never crash or corrupt the instance"
    QCheck.small_int (fun seed ->
      match Atomic.get fuzz_update_port with
      | 0 -> QCheck.Test.fail_report "fuzz server not running"
      | port ->
          let rng = Qp_util.Rng.create (seed + 31) in
          let c =
            match Client.connect ~port () with
            | Ok c -> c
            | Error e ->
                QCheck.Test.fail_reportf "connect: %s" (Qp_error.to_string e)
          in
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          let gen_before = generation "fuzz before" c in
          let payload =
            Json.to_string
              (Json.Obj
                 [ ("verb", Json.String "update"); ("delta", rand_delta_json rng) ])
          in
          ignore (Client.send_raw c payload);
          let accepted =
            match get_ok "fuzz recv" (Client.recv c) with
            | Some { Protocol.payload = Ok _; _ } -> true
            | Some { Protocol.payload = Error _; _ } -> false
            | None -> QCheck.Test.fail_report "server hung up on an update"
          in
          let gen_after = generation "fuzz after" c in
          (* generation moves iff the delta was accepted, and the
             instance still solves either way *)
          gen_after = gen_before + (if accepted then 1 else 0)
          && match Client.call c (Protocol.request Protocol.Solve) with
             | Ok { Protocol.payload = Ok _; _ } -> true
             | _ -> false)

let test_update_fuzz () =
  with_server @@ fun port ->
  Atomic.set fuzz_update_port port;
  Fun.protect ~finally:(fun () -> Atomic.set fuzz_update_port 0) @@ fun () ->
  QCheck.Test.check_exn fuzz_update_survives

(* ------------------------------------------------------------------ *)
(* Robust client                                                       *)
(* ------------------------------------------------------------------ *)

let test_robust_client_reconnects () =
  with_server @@ fun port ->
  let r = Client.Robust.create ~port ~timeout_ms:2000 ~retries:2 () in
  Fun.protect ~finally:(fun () -> Client.Robust.close r) @@ fun () ->
  (match Client.Robust.call r (Protocol.request Protocol.Health) with
  | Ok { Protocol.payload = Ok _; _ } -> ()
  | _ -> Alcotest.fail "first health failed");
  checki "no reconnects yet" 0 (Client.Robust.reconnects r);
  (* kill the connection under the client's feet: the next call must
     transparently reconnect and succeed *)
  Client.Robust.drop r;
  (match Client.Robust.call r (Protocol.request Protocol.Health) with
  | Ok { Protocol.payload = Ok _; _ } -> ()
  | _ -> Alcotest.fail "health after drop failed");
  checki "one reconnect" 1 (Client.Robust.reconnects r)

let test_robust_client_gives_up () =
  (* a port with no listener: every attempt fails, the typed error
     surfaces after the retry budget instead of hanging *)
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> Alcotest.fail "no port"
  in
  Unix.close fd;
  let r = Client.Robust.create ~port ~timeout_ms:200 ~retries:1 ~backoff_ms:1. () in
  Fun.protect ~finally:(fun () -> Client.Robust.close r) @@ fun () ->
  match Client.Robust.call r (Protocol.request Protocol.Health) with
  | Error _ -> checki "retried once" 1 (Client.Robust.retried r)
  | Ok _ -> Alcotest.fail "call to a dead port succeeded"

(* ------------------------------------------------------------------ *)
(* Admission control and drain                                         *)
(* ------------------------------------------------------------------ *)

(* Raw pipelined burst on one socket: all frames land in the server's
   read buffer together, so the admission decision is deterministic. *)
let burst port payloads =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  let buf = Buffer.create 256 in
  List.iter (fun p -> Buffer.add_bytes buf (Frame.encode p)) payloads;
  let b = Buffer.to_bytes buf in
  let n = Unix.write fd b 0 (Bytes.length b) in
  checki "burst written in one call" (Bytes.length b) n;
  fd

let read_responses fd n =
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      match Frame.read fd with
      | Some payload ->
          let j = Json.of_string payload in
          go (get_ok "response_of_json" (Protocol.response_of_json j) :: acc)
            (k - 1)
      | None -> Alcotest.failf "EOF after %d responses" (n - k)
  in
  go [] n

let solve_req id =
  Json.to_string
    (Protocol.request_to_json (Protocol.request ~id:(Json.Int id) Protocol.Solve))

let test_queue_full_rejection () =
  with_server ~tweak:(fun c -> { c with Server.queue_depth = 1 })
  @@ fun port ->
  let fd = burst port [ solve_req 1; solve_req 2; solve_req 3 ] in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let resps = read_responses fd 3 in
  let by_id id =
    match List.find_opt (fun r -> r.Protocol.id = Json.Int id) resps with
    | Some r -> r
    | None -> Alcotest.failf "no response for id %d" id
  in
  (* the first request of the burst is admitted and solved... *)
  (match (by_id 1).Protocol.payload with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "admitted request failed: %s" (Protocol.serve_error_message e));
  (* ...the overflow is rejected immediately with the typed code *)
  List.iter
    (fun id ->
      match (by_id id).Protocol.payload with
      | Error (Protocol.Overloaded _) -> ()
      | _ -> Alcotest.failf "id %d should be overloaded" id)
    [ 2; 3 ];
  (* rejections are written during the read phase, before the solve *)
  match List.map (fun r -> r.Protocol.id) resps with
  | [ Json.Int 2; Json.Int 3; Json.Int 1 ] -> ()
  | _ -> Alcotest.fail "rejections must precede the admitted reply on the wire"

let test_graceful_drain_ordering () =
  with_server @@ fun port ->
  let shutdown_req =
    Json.to_string
      (Protocol.request_to_json (Protocol.request ~id:(Json.Int 2) Protocol.Shutdown))
  in
  let health_req =
    Json.to_string
      (Protocol.request_to_json (Protocol.request ~id:(Json.Int 3) Protocol.Health))
  in
  let fd = burst port [ solve_req 1; shutdown_req; health_req ] in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let resps = read_responses fd 3 in
  (* everything admitted before the shutdown is answered, in order *)
  (match List.map (fun r -> (r.Protocol.id, Result.is_ok r.Protocol.payload)) resps with
  | [ (Json.Int 1, true); (Json.Int 2, true); (Json.Int 3, true) ] -> ()
  | _ -> Alcotest.fail "drain must answer the whole admitted queue in order");
  (* the health request dispatched after shutdown reports draining *)
  (match (List.nth resps 2).Protocol.payload with
  | Ok j -> checks "draining status" "draining" (member_string "drain" j "status")
  | Error _ -> Alcotest.fail "health during drain failed");
  (* then the server closes the connection... *)
  (match Frame.read fd with
  | None -> ()
  | Some _ -> Alcotest.fail "expected EOF after drain");
  (* ...and stops listening *)
  match Client.connect ~port () with
  | Error _ -> ()
  | Ok c ->
      (* accept backlog may race the close; a dead socket is also fine *)
      let alive =
        match Client.call c (Protocol.request Protocol.Health) with
        | Ok _ -> true
        | Error _ -> false
      in
      Client.close c;
      checkb "no service after drain" false alive

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                            *)
(* ------------------------------------------------------------------ *)

let test_simplex_deadline_cancels () =
  (* Deterministic via the fake clock: the deadline is already in the
     past when the solver starts, so the very first pivot-loop check
     must abort with a typed internal error. *)
  Obs.Core.set_clock (fun () -> 100.);
  Fun.protect
    ~finally:(fun () ->
      Qp_lp.Simplex.set_deadline None;
      Obs.Core.default_clock ())
  @@ fun () ->
  Qp_lp.Simplex.set_deadline (Some 50.);
  let solver = get_ok "find lp" (Solver.find "lp") in
  let problem = get_ok "build" (Spec.build test_spec) in
  let params = Protocol.solver_params test_spec Protocol.default_options in
  match solver.Solver.solve params problem with
  | Error (Qp_error.Internal msg) ->
      checkb "mentions deadline" true
        (let sub = "deadline" in
         let n = String.length sub in
         let rec find i =
           i + n <= String.length msg
           && (String.sub msg i n = sub || find (i + 1))
         in
         find 0)
  | Ok _ -> Alcotest.fail "expired deadline must cancel the solve"
  | Error e -> Alcotest.failf "wrong error: %s" (Qp_error.to_string e)

(* ------------------------------------------------------------------ *)
(* Fuzz: arbitrary bytes never kill the server                         *)
(* ------------------------------------------------------------------ *)

let fuzz_port = Atomic.make 0

let fuzz_server_survives =
  QCheck.Test.make ~count:20 ~name:"serve: arbitrary frames never crash the server"
    QCheck.(string_of_size (Gen.int_range 0 2048))
    (fun garbage ->
      match Atomic.get fuzz_port with
      | 0 -> QCheck.Test.fail_report "fuzz server not running"
      | port ->
          (* framed garbage payload on its own connection *)
          (match Client.connect ~port () with
          | Ok c ->
              ignore (Client.send_raw c garbage);
              ignore (Client.recv c);
              Client.close c
          | Error _ -> ());
          (* raw unframed garbage too *)
          (try
             let fd =
               Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0
             in
             Unix.connect fd
               (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
             let b = Bytes.of_string garbage in
             if Bytes.length b > 0 then
               ignore (Unix.write fd b 0 (Bytes.length b));
             Unix.close fd
           with Unix.Unix_error _ -> ());
          (* the server must still answer a well-formed health check *)
          let c' =
            match Client.connect ~port () with
            | Ok c -> c
            | Error e ->
                QCheck.Test.fail_reportf "reconnect failed: %s"
                  (Qp_error.to_string e)
          in
          let ok =
            match Client.call c' (Protocol.request Protocol.Health) with
            | Ok { Protocol.payload = Ok _; _ } -> true
            | _ -> false
          in
          Client.close c';
          ok)

let test_fuzz () =
  with_server @@ fun port ->
  Atomic.set fuzz_port port;
  Fun.protect ~finally:(fun () -> Atomic.set fuzz_port 0) @@ fun () ->
  QCheck.Test.check_exn fuzz_server_survives

(* ------------------------------------------------------------------ *)
(* Loadgen                                                             *)
(* ------------------------------------------------------------------ *)

let test_mix_of_string () =
  (match Loadgen.mix_of_string "solve=8,info=1,health=1" with
  | Ok [ (Protocol.Solve, 8.); (Protocol.Info, 1.); (Protocol.Health, 1.) ] -> ()
  | Ok _ -> Alcotest.fail "wrong mix"
  | Error e -> Alcotest.failf "mix: %s" (Qp_error.to_string e));
  (match Loadgen.mix_of_string "shutdown=1" with
  | Error (Qp_error.Invalid_instance _) -> ()
  | _ -> Alcotest.fail "shutdown must be rejected in a mix");
  match Loadgen.mix_of_string "solve=-1" with
  | Error (Qp_error.Invalid_instance _) -> ()
  | _ -> Alcotest.fail "negative weight must be rejected"

let test_loadgen_against_server () =
  with_server @@ fun port ->
  let cfg =
    { Loadgen.default_config with
      Loadgen.port;
      connections = 2;
      duration_s = 0.4;
      spec = Some test_spec;
      seed = 42 }
  in
  let report = get_ok "loadgen" (Loadgen.run cfg) in
  checkb "completed requests" true (report.Loadgen.completed > 0);
  checki "no transport errors" 0 report.Loadgen.transport_errors;
  checki "latencies recorded" report.Loadgen.completed
    (Array.length report.Loadgen.latencies_ms);
  (* report JSON is a qp-loadgen/1 document *)
  let j = Loadgen.report_to_json report in
  checks "report schema" "qp-loadgen/1" (member_string "report" j "schema");
  match report.Loadgen.sample_outcome with
  | Some outcome ->
      checks "sample outcome schema" "qp-solve/1"
        (member_string "sample" outcome "schema")
  | None -> Alcotest.fail "solve-heavy mix must capture a sample outcome"

(* ------------------------------------------------------------------ *)
(* Trace propagation, timing echo, and wide-event observability        *)
(* ------------------------------------------------------------------ *)

let test_trace_and_timing_codec () =
  let trace = { Protocol.trace_id = "t-7"; parent_span = Some "s-1" } in
  let req = Protocol.request ~id:(Json.Int 1) ~trace Protocol.Health in
  let req' =
    get_ok "request" (Protocol.request_of_json (Protocol.request_to_json req))
  in
  checkb "trace round-trips" true (req'.Protocol.trace = Some trace);
  (* a request without a context adds no key at all *)
  let plain = Protocol.request ~id:(Json.Int 1) Protocol.Health in
  checkb "no trace key" true
    (Json.member "trace" (Protocol.request_to_json plain) = None);
  (* response timing round-trips; absent timing adds no key *)
  let resp =
    Protocol.response
      ~timing:[ ("parse", 0.001); ("queue", 0.002) ]
      ~id:(Json.Int 1) ~verb:"health"
      (Ok (Json.Obj []))
  in
  let j = Protocol.response_to_json resp in
  let resp' = get_ok "response" (Protocol.response_of_json j) in
  checkb "timing round-trips" true
    (resp'.Protocol.timing = Some [ ("parse", 0.001); ("queue", 0.002) ]);
  let bare = Protocol.response ~id:(Json.Int 1) ~verb:"health" (Ok (Json.Obj [])) in
  checkb "no timing key" true
    (Json.member "timing" (Protocol.response_to_json bare) = None);
  match
    Protocol.response_of_json
      (Json.of_string {|{"id":1,"verb":"health","ok":{},"timing":{"parse":"x"}}|})
  with
  | Error (Qp_error.Invalid_instance _) -> ()
  | _ -> Alcotest.fail "mistyped timing must be invalid_instance"

let with_wide_sink f =
  let sink, read = Obs.Trace.memory () in
  Fun.protect
    ~finally:(fun () -> Obs.Wide.uninstall ())
    (fun () ->
      Obs.Wide.install sink;
      f read)

let test_trace_propagation_end_to_end () =
  with_wide_sink @@ fun read ->
  with_server @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* traced request: the response echoes phase timing... *)
  let trace = { Protocol.trace_id = "client-trace-1"; parent_span = None } in
  let resp =
    get_ok "traced solve"
      (Client.call c (Protocol.request ~id:(Json.Int 1) ~trace Protocol.Solve))
  in
  checkb "solve ok" true (Result.is_ok resp.Protocol.payload);
  (match resp.Protocol.timing with
  | Some timing ->
      List.iter
        (fun phase ->
          checkb (phase ^ " echoed") true (List.mem_assoc phase timing);
          checkb (phase ^ " sane") true (List.assoc phase timing >= 0.))
        [ "parse"; "queue"; "handle" ]
  | None -> Alcotest.fail "traced request must carry a timing echo");
  (* ...an untraced request must not (byte-identical default shape) *)
  let resp' =
    get_ok "plain solve" (Client.call c (Protocol.request ~id:(Json.Int 2) Protocol.Solve))
  in
  checkb "no timing on untraced" true (resp'.Protocol.timing = None);
  checkb "no timing key on the wire" true
    (Json.member "timing" (Protocol.response_to_json resp') = None);
  (* the server's wide event adopted the client's trace id and timed
     every phase of the request's life *)
  let wides =
    List.filter
      (fun r ->
        Option.bind (Json.member "type" r) Json.to_str = Some "wide"
        && Option.bind (Json.member "kind" r) Json.to_str = Some "serve_request")
      (read ())
  in
  match
    List.find_opt
      (fun r ->
        Option.bind (Json.member "trace_id" r) Json.to_str = Some "client-trace-1")
      wides
  with
  | None -> Alcotest.fail "no server wide event joined the client trace id"
  | Some r ->
      checks "verb attr" "solve" (member_string "wide" r "verb");
      checks "outcome" "ok" (member_string "wide" r "outcome");
      let phases = Option.get (Json.member "phases" r) in
      List.iter
        (fun phase ->
          checkb (phase ^ " phase present") true
            (match Option.bind (Json.member phase phases) Json.to_float with
            | Some d -> d >= 0.
            | None -> false))
        [ "parse"; "queue"; "handle"; "serialize"; "write" ]

let test_health_and_metrics_observability () =
  with_server @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* prime the solve cache: one miss, then one hit *)
  ignore (call_ok "solve 1" c (Protocol.request Protocol.Solve));
  ignore (call_ok "solve 2" c (Protocol.request Protocol.Solve));
  let h = call_ok "health" c (Protocol.request Protocol.Health) in
  checki "idle queue" 0
    (match Json.member "queue_len" h with Some (Json.Int n) -> n | _ -> -1);
  (match Json.member "solve_cache" h with
  | Some cache ->
      let get k =
        match Option.bind (Json.member k cache) Json.to_int with
        | Some n -> n
        | None -> Alcotest.failf "solve_cache missing %s" k
      in
      checkb "hits and misses counted" true (get "hits" >= 1 && get "misses" >= 1)
  | None -> Alcotest.fail "health must report the solve cache");
  (match Json.member "slo" h with
  | Some slo ->
      (match Json.member "windows" slo with
      | Some (Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "slo must report windows");
      checkb "no burn while healthy" true
        (match Json.member "windows" slo with
        | Some (Json.List ws) ->
            List.for_all
              (fun w ->
                match Option.bind (Json.member "burn_rate" w) Json.to_float with
                | Some b -> b = 0.
                | None -> false)
              ws
        | _ -> false)
  | None -> Alcotest.fail "health must report slo state");
  let m = call_ok "metrics" c (Protocol.request Protocol.Metrics) in
  let body = member_string "metrics" m "body" in
  let has sub =
    let n = String.length sub in
    let rec find i =
      i + n <= String.length body && (String.sub body i n = sub || find (i + 1))
    in
    find 0
  in
  checkb "uptime gauge" true (has "process_uptime_seconds");
  checkb "build info gauge" true
    (has ("qp_build_info{version=\"" ^ Obs.Build_info.version ^ "\"} 1"));
  checkb "queue-wait histogram" true (has "qp_serve_queue_wait_seconds")

(* ------------------------------------------------------------------ *)
(* Pooled dispatch and the placement cache                              *)
(* ------------------------------------------------------------------ *)

let connect_raw port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let send_frame fd payload =
  let b = Frame.encode payload in
  checki "frame written in one call" (Bytes.length b)
    (Unix.write fd b 0 (Bytes.length b))

let read_raw fd =
  match Frame.read fd with
  | Some p -> p
  | None -> Alcotest.fail "unexpected EOF"

let solve_req_spec id seed =
  Json.to_string
    (Protocol.request_to_json
       (Protocol.request ~id:(Json.Int id)
          ~spec:{ test_spec with Spec.seed }
          Protocol.Solve))

(* Health-reported cache counters, read over a fresh connection (the
   health verb itself never touches the solve cache). *)
let cache_counters port =
  let c = get_ok "counters connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let h = call_ok "counters health" c (Protocol.request Protocol.Health) in
  match Json.member "solve_cache" h with
  | Some cache ->
      fun k ->
        (match Option.bind (Json.member k cache) Json.to_int with
        | Some n -> n
        | None -> Alcotest.failf "solve_cache missing %s" k)
  | None -> Alcotest.fail "health must report the solve cache"

let string_contains hay sub =
  let n = String.length sub in
  let rec find i =
    i + n <= String.length hay && (String.sub hay i n = sub || find (i + 1))
  in
  find 0

let test_cache_hit_serves_identical_bytes () =
  with_server @@ fun port ->
  let fd = connect_raw port in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  (* sequential identical solves: the first misses and fills the
     cache, the second is answered from it — same bytes on the wire *)
  let req = solve_req 1 in
  send_frame fd req;
  let fresh = read_raw fd in
  send_frame fd req;
  let cached = read_raw fd in
  checks "cache hit = fresh bytes" fresh cached;
  let g = cache_counters port in
  checki "one miss" 1 (g "misses");
  checki "one hit" 1 (g "hits");
  checki "one entry" 1 (g "entries")

let test_single_flight_dedup () =
  with_server ~tweak:(fun c -> { c with Server.jobs = 4 }) @@ fun port ->
  (* two identical solves land in the server's read buffer together;
     dispatch sends the first to a worker and the second must join its
     flight rather than solve again *)
  let fd = burst port [ solve_req 1; solve_req 2 ] in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let resps = read_responses fd 2 in
  (match
     List.map (fun r -> (r.Protocol.id, Result.is_ok r.Protocol.payload)) resps
   with
  | [ (Json.Int 1, true); (Json.Int 2, true) ] -> ()
  | _ -> Alcotest.fail "both pipelined solves must succeed, in order");
  let payload r =
    match r.Protocol.payload with
    | Ok j -> Json.to_string j
    | Error _ -> Alcotest.fail "expected ok payload"
  in
  checks "identical payloads" (payload (List.nth resps 0))
    (payload (List.nth resps 1));
  let g = cache_counters port in
  checki "one solve ran" 1 (g "misses");
  checki "the second was absorbed" 1 (g "hits" + g "inflight_joins")

let test_cache_eviction_bound () =
  with_server ~tweak:(fun c -> { c with Server.cache_capacity = 2 })
  @@ fun port ->
  let c = get_ok "connect" (Client.connect ~port ()) in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let solve_seed seed =
    ignore
      (call_ok
         (Printf.sprintf "solve seed %d" seed)
         c
         (Protocol.request ~spec:{ test_spec with Spec.seed } Protocol.Solve))
  in
  List.iter solve_seed [ 11; 12; 13 ];
  let g = cache_counters port in
  checki "three distinct misses" 3 (g "misses");
  checki "entries bounded by capacity" 2 (g "entries");
  checki "one capacity eviction" 1 (g "evictions");
  (* the evicted (least-recently-used) key must miss again *)
  solve_seed 11;
  let g = cache_counters port in
  checki "evicted key re-misses" 4 (g "misses");
  checki "still bounded" 2 (g "entries");
  (* the eviction counter is exported as a monotone Prometheus series *)
  let m = call_ok "metrics" c (Protocol.request Protocol.Metrics) in
  let body = member_string "metrics" m "body" in
  checkb "evictions series exported" true
    (string_contains body "qp_serve_solve_cache_evictions_total")

let test_pooled_deadline_cancellation () =
  with_server ~tweak:(fun c -> { c with Server.jobs = 4 }) @@ fun port ->
  (* A carries a 1 ms budget the default-instance solve cannot meet —
     it must come back deadline_exceeded (cancelled mid-solve on its
     worker, or at dispatch if the queue already ate the budget). B
     runs concurrently with no deadline on another worker and must be
     untouched: the deadline is domain-local, not process-global. *)
  let fd_a = connect_raw port and fd_b = connect_raw port in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ fd_a; fd_b ])
  @@ fun () ->
  let req_a =
    Json.to_string
      (Protocol.request_to_json
         (Protocol.request ~id:(Json.Int 1)
            ~options:
              { Protocol.default_options with Protocol.deadline_ms = Some 1 }
            Protocol.Solve))
  in
  send_frame fd_a req_a;
  send_frame fd_b (solve_req_spec 2 77);
  (match (List.hd (read_responses fd_b 1)).Protocol.payload with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "concurrent no-deadline solve was cancelled: %s"
        (Protocol.serve_error_message e));
  (match (List.hd (read_responses fd_a 1)).Protocol.payload with
  | Error (Protocol.Deadline_exceeded _) -> ()
  | Ok _ -> Alcotest.fail "a 1 ms budget must cancel the solve"
  | Error e ->
      Alcotest.failf "wrong error: %s" (Protocol.serve_error_code e));
  (* the worker that cancelled is reusable: a fresh solve succeeds *)
  send_frame fd_a (solve_req 3);
  match (List.hd (read_responses fd_a 1)).Protocol.payload with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "server unhealthy after cancellation: %s"
        (Protocol.serve_error_message e)

let test_drain_with_inflight_pooled_solves () =
  with_server ~tweak:(fun c -> { c with Server.jobs = 4 }) @@ fun port ->
  (* three distinct-spec solves go inflight on worker domains, then a
     shutdown lands behind them: the drain must wait for every pooled
     solve and the responses must still arrive in request order *)
  let shutdown_req =
    Json.to_string
      (Protocol.request_to_json
         (Protocol.request ~id:(Json.Int 4) Protocol.Shutdown))
  in
  let fd =
    burst port
      [ solve_req_spec 1 31; solve_req_spec 2 32; solve_req_spec 3 33;
        shutdown_req ]
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let resps = read_responses fd 4 in
  (match
     List.map (fun r -> (r.Protocol.id, Result.is_ok r.Protocol.payload)) resps
   with
  | [ (Json.Int 1, true); (Json.Int 2, true); (Json.Int 3, true);
      (Json.Int 4, true) ] ->
      ()
  | _ ->
      Alcotest.fail
        "drain must answer every inflight pooled solve, in request order");
  match Frame.read fd with
  | None -> ()
  | Some _ -> Alcotest.fail "expected EOF after drain"

let test_served_bytes_identical_across_jobs () =
  let serve_twice jobs =
    with_server ~tweak:(fun c -> { c with Server.jobs }) @@ fun port ->
    let fd = connect_raw port in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    send_frame fd (solve_req 1);
    let fresh = read_raw fd in
    send_frame fd (solve_req 1);
    let cached = read_raw fd in
    (fresh, cached)
  in
  let f1, c1 = serve_twice 1 in
  let f4, c4 = serve_twice 4 in
  checks "cache hit = fresh (jobs=1)" f1 c1;
  checks "cache hit = fresh (jobs=4)" f4 c4;
  checks "jobs=4 = jobs=1 on the wire" f1 f4

let test_loadgen_trace_requests () =
  with_wide_sink @@ fun read ->
  with_server @@ fun port ->
  let cfg =
    { Loadgen.default_config with
      Loadgen.port;
      connections = 2;
      duration_s = 0.4;
      spec = Some test_spec;
      seed = 42;
      trace_requests = true }
  in
  let report = get_ok "loadgen" (Loadgen.run cfg) in
  (* barrier: the server emits a request's wide event just after
     writing its response, so the last loadgen reply can race our
     read. The dispatch loop is sequential — once this health call is
     answered, every earlier event has been emitted. *)
  (let c = get_ok "barrier connect" (Client.connect ~port ()) in
   Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
   ignore (call_ok "barrier" c (Protocol.request Protocol.Health)));
  checkb "completed requests" true (report.Loadgen.completed > 0);
  (* the server's timing echo surfaces as per-phase samples *)
  List.iter
    (fun phase ->
      match List.assoc_opt phase report.Loadgen.phases_ms with
      | Some samples ->
          checkb (phase ^ " sampled") true (Array.length samples > 0);
          checkb (phase ^ " non-negative") true (Array.for_all (fun d -> d >= 0.) samples)
      | None -> Alcotest.failf "report lost the %s phase" phase)
    [ "parse"; "queue"; "handle" ];
  (match Json.member "phases" (Loadgen.report_to_json report) with
  | Some (Json.Obj (_ :: _)) -> ()
  | _ -> Alcotest.fail "report json must carry a phases object");
  (* client and server wide events join on trace ids *)
  let by_kind k =
    List.filter_map
      (fun r ->
        if Option.bind (Json.member "kind" r) Json.to_str = Some k then
          Option.bind (Json.member "trace_id" r) Json.to_str
        else None)
      (read ())
  in
  let client_ids = by_kind "client_call" in
  let server_ids = by_kind "serve_request" in
  checkb "client events emitted" true (client_ids <> []);
  List.iter
    (fun id ->
      checkb ("server side of " ^ id) true (List.mem id server_ids))
    client_ids

let suites =
  [ ( "serve.frame",
      [ Alcotest.test_case "decoder byte-by-byte" `Quick test_decoder_byte_by_byte;
        Alcotest.test_case "decoder pipelined frames" `Quick test_decoder_pipelined;
        Alcotest.test_case "decoder oversize poisons" `Quick test_decoder_oversize_poisons;
        Alcotest.test_case "decoder negative length" `Quick test_decoder_negative_length ] );
    ( "serve.protocol",
      [ Alcotest.test_case "error codec round-trip" `Quick test_error_codec_roundtrip;
        Alcotest.test_case "request codec round-trip" `Quick test_request_codec;
        Alcotest.test_case "request defaults and errors" `Quick test_request_defaults_and_errors;
        Alcotest.test_case "delta codec" `Quick test_delta_codec;
        Alcotest.test_case "partial spec defaults" `Quick test_partial_spec_defaults ] );
    ( "serve.server",
      [ Alcotest.test_case "all verbs round-trip" `Quick test_all_verbs;
        Alcotest.test_case "served solve = offline solve" `Quick test_served_equals_offline;
        Alcotest.test_case "typed solve errors" `Quick test_solve_typed_errors;
        Alcotest.test_case "deadline 0 rejected" `Quick test_deadline_zero_rejected;
        Alcotest.test_case "malformed request gets a reply" `Quick test_malformed_gets_reply_not_hangup;
        Alcotest.test_case "queue-full rejection" `Quick test_queue_full_rejection;
        Alcotest.test_case "graceful drain ordering" `Quick test_graceful_drain_ordering;
        Alcotest.test_case "simplex deadline cancels" `Quick test_simplex_deadline_cancels;
        Alcotest.test_case "fuzz: garbage never crashes" `Quick test_fuzz;
        Alcotest.test_case "update verb end to end" `Quick test_update_verb;
        Alcotest.test_case "fuzz: update deltas" `Quick test_update_fuzz;
        Alcotest.test_case "robust client reconnects" `Quick test_robust_client_reconnects;
        Alcotest.test_case "robust client gives up" `Quick test_robust_client_gives_up;
        Alcotest.test_case "trace/timing codecs" `Quick test_trace_and_timing_codec;
        Alcotest.test_case "trace propagation end to end" `Quick
          test_trace_propagation_end_to_end;
        Alcotest.test_case "health/metrics observability" `Quick
          test_health_and_metrics_observability ] );
    ( "serve.pool_cache",
      [ Alcotest.test_case "cache hit serves identical bytes" `Quick
          test_cache_hit_serves_identical_bytes;
        Alcotest.test_case "single-flight dedup" `Quick test_single_flight_dedup;
        Alcotest.test_case "LRU eviction bound" `Quick test_cache_eviction_bound;
        Alcotest.test_case "pooled deadline cancellation" `Quick
          test_pooled_deadline_cancellation;
        Alcotest.test_case "drain with inflight pooled solves" `Quick
          test_drain_with_inflight_pooled_solves;
        Alcotest.test_case "served bytes identical across jobs" `Quick
          test_served_bytes_identical_across_jobs ] );
    ( "serve.loadgen",
      [ Alcotest.test_case "mix parser" `Quick test_mix_of_string;
        Alcotest.test_case "closed-loop run" `Quick test_loadgen_against_server;
        Alcotest.test_case "traced run joins client and server" `Quick
          test_loadgen_trace_requests ] ) ]
