(* Domain-pool layer: scheduling correctness, determinism of results
   and telemetry, nesting fallback, and the APSP cache that rides on
   it. *)

module Pool = Qp_par.Pool
module Io = Qp_par.Io
module Metrics = Qp_obs.Metrics
module Rng = Qp_util.Rng
module Graph = Qp_graph.Graph
module Generators = Qp_graph.Generators
module Apsp = Qp_graph.Apsp
module Metric = Qp_graph.Metric

let with_pool jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* Same helper as test_graph: random weights on a connected skeleton. *)
let random_connected_graph seed n =
  let rng = Rng.create seed in
  let g = Generators.erdos_renyi rng n 0.2 in
  let g' = Graph.create n in
  Graph.iter_edges g (fun u v _ -> Graph.add_edge g' u v (0.1 +. Rng.uniform rng));
  g'

(* ------------------------------------------------------------------ *)
(* Pool basics                                                         *)
(* ------------------------------------------------------------------ *)

let test_create_invalid () =
  Alcotest.check_raises "jobs = 0" (Invalid_argument "Pool.create: jobs must be >= 1")
    (fun () -> ignore (Pool.create ~jobs:0))

let test_init_matches_array_init () =
  with_pool 3 @@ fun pool ->
  for n = 0 to 17 do
    let expected = Array.init n (fun i -> (i * i) - (3 * i)) in
    let got = Pool.parallel_init pool n (fun i -> (i * i) - (3 * i)) in
    Alcotest.(check (array int)) (Printf.sprintf "n = %d" n) expected got
  done

let test_pool_reuse () =
  with_pool 4 @@ fun pool ->
  Alcotest.(check int) "jobs" 4 (Pool.jobs pool);
  for round = 1 to 5 do
    let got = Pool.parallel_init pool 100 (fun i -> i + round) in
    Alcotest.(check (array int)) "round result" (Array.init 100 (fun i -> i + round)) got
  done

let test_map_empty_and_small () =
  with_pool 4 @@ fun pool ->
  Alcotest.(check (array int)) "empty" [||] (Pool.parallel_map pool (fun x -> x + 1) [||]);
  (* Fewer elements than workers. *)
  Alcotest.(check (array int)) "n < jobs" [| 10; 11 |]
    (Pool.parallel_map pool (fun x -> x + 10) [| 0; 1 |])

let test_chunk_edge_cases () =
  with_pool 3 @@ fun pool ->
  let expected = Array.init 11 (fun i -> 2 * i) in
  Alcotest.(check (array int)) "chunk = 1" expected
    (Pool.parallel_init ~chunk:1 pool 11 (fun i -> 2 * i));
  Alcotest.(check (array int)) "chunk > n" expected
    (Pool.parallel_init ~chunk:100 pool 11 (fun i -> 2 * i));
  Alcotest.check_raises "chunk = 0" (Invalid_argument "Pool: chunk must be >= 1")
    (fun () -> ignore (Pool.parallel_init ~chunk:0 pool 4 (fun i -> i)));
  Alcotest.check_raises "n < 0" (Invalid_argument "Pool.parallel_init: negative size")
    (fun () -> ignore (Pool.parallel_init pool (-1) (fun i -> i)))

let test_iter_runs_each_once () =
  with_pool 3 @@ fun pool ->
  let n = 50 in
  let hits = Array.make n 0 in
  (* Elements of one chunk run on one domain; counting into distinct
     slots is race-free because indices are disjoint. *)
  Pool.parallel_iter pool (fun i -> hits.(i) <- hits.(i) + 1) (Array.init n (fun i -> i));
  Alcotest.(check (array int)) "each exactly once" (Array.make n 1) hits

exception Boom of int

let test_exception_propagation () =
  with_pool 3 @@ fun pool ->
  let ran = Array.make 10 false in
  (try
     ignore
       (Pool.parallel_init ~chunk:1 pool 10 (fun i ->
            ran.(i) <- true;
            if i = 7 || i = 3 then raise (Boom i);
            i))
   with Boom i -> Alcotest.(check int) "lowest failing index wins" 3 i);
  Alcotest.(check (array bool)) "all elements still ran" (Array.make 10 true) ran;
  (* The pool survives a failed batch. *)
  Alcotest.(check (array int)) "pool usable after exception"
    (Array.init 6 (fun i -> i)) (Pool.parallel_init pool 6 (fun i -> i))

let test_nested_calls_fall_back () =
  with_pool 3 @@ fun pool ->
  Alcotest.(check bool) "not in worker outside" false (Pool.in_worker ());
  let nested_flags =
    Pool.parallel_init ~chunk:1 pool 6 (fun i ->
        (* A nested parallel section must not deadlock on the shared
           queue: it runs inline on this domain. *)
        let inner = Pool.parallel_init pool 4 (fun j -> (10 * i) + j) in
        Alcotest.(check (array int)) "nested result" (Array.init 4 (fun j -> (10 * i) + j))
          inner;
        Pool.in_worker ())
  in
  Alcotest.(check (array bool)) "in_worker inside tasks" (Array.make 6 true) nested_flags;
  Alcotest.(check bool) "flag restored" false (Pool.in_worker ())

let test_shutdown_semantics () =
  let pool = Pool.create ~jobs:3 in
  ignore (Pool.parallel_init pool 5 (fun i -> i));
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool: submit on a shut-down pool") (fun () ->
      ignore (Pool.parallel_init pool 64 (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Fire-and-forget submission and context propagation                  *)
(* ------------------------------------------------------------------ *)

let test_async_runs_tasks () =
  with_pool 3 @@ fun pool ->
  let n = 50 in
  let hits = Atomic.make 0 in
  let done_m = Mutex.create () and done_c = Condition.create () in
  for _ = 1 to n do
    Pool.async pool (fun () ->
        if Atomic.fetch_and_add hits 1 = n - 1 then begin
          Mutex.lock done_m;
          Condition.signal done_c;
          Mutex.unlock done_m
        end)
  done;
  let deadline = Unix.gettimeofday () +. 10. in
  Mutex.lock done_m;
  while Atomic.get hits < n && Unix.gettimeofday () < deadline do
    Mutex.unlock done_m;
    Thread.delay 0.002;
    Mutex.lock done_m
  done;
  Mutex.unlock done_m;
  Alcotest.(check int) "every task ran exactly once" n (Atomic.get hits)

let test_async_inline_on_single_job_pool () =
  with_pool 1 @@ fun pool ->
  (* jobs = 1 has no workers: async must degrade to a synchronous call
     on the submitting thread, not deadlock *)
  let ran = ref false in
  Pool.async pool (fun () -> ran := true);
  Alcotest.(check bool) "ran synchronously" true !ran

let test_async_after_shutdown () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Alcotest.check_raises "async on a shut-down pool"
    (Invalid_argument "Pool: submit on a shut-down pool") (fun () ->
      Pool.async pool (fun () -> ()))

let test_simplex_deadline_context_propagates () =
  (* The simplex deadline is domain-local state; its registered context
     hook must carry the submitting thread's deadline onto the worker
     domain that executes the task — and restore the worker's own state
     afterwards. *)
  let module Simplex = Qp_lp.Simplex in
  with_pool 2 @@ fun pool ->
  Fun.protect ~finally:(fun () -> Simplex.set_deadline None) @@ fun () ->
  Simplex.set_deadline (Some 123.5);
  let observed = Atomic.make [] in
  let record d = Atomic.set observed (d :: Atomic.get observed) in
  let done_f = Atomic.make 0 in
  Pool.async pool (fun () ->
      record (Simplex.get_deadline ());
      ignore (Atomic.fetch_and_add done_f 1));
  let deadline = Unix.gettimeofday () +. 10. in
  while Atomic.get done_f < 1 && Unix.gettimeofday () < deadline do
    Thread.delay 0.002
  done;
  Alcotest.(check bool) "worker saw the submitter's deadline" true
    (Atomic.get observed = [ Some 123.5 ]);
  (* after clearing, a new task must NOT inherit the stale value *)
  Simplex.set_deadline None;
  Atomic.set observed [];
  Pool.async pool (fun () ->
      record (Simplex.get_deadline ());
      ignore (Atomic.fetch_and_add done_f 1));
  let deadline = Unix.gettimeofday () +. 10. in
  while Atomic.get done_f < 2 && Unix.gettimeofday () < deadline do
    Thread.delay 0.002
  done;
  Alcotest.(check bool) "cleared deadline does not leak to workers" true
    (Atomic.get observed = [ None ])

let test_default_pool () =
  Alcotest.(check int) "default is sequential" 1 (Pool.default_jobs ());
  Pool.set_default_jobs 3;
  Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) @@ fun () ->
  Alcotest.(check int) "raised" 3 (Pool.default_jobs ());
  Alcotest.(check int) "pool matches" 3 (Pool.jobs (Pool.default ()));
  Alcotest.(check (array int)) "default pool works" (Array.init 9 (fun i -> i * 7))
    (Pool.parallel_init (Pool.default ()) 9 (fun i -> i * 7))

(* ------------------------------------------------------------------ *)
(* Telemetry determinism                                               *)
(* ------------------------------------------------------------------ *)

(* Record the same counter/histogram traffic from every element and
   compare the merged registry against a sequential run: totals must be
   bit-identical. *)
let record_run jobs n =
  let reg = Metrics.create ~enabled:true () in
  Metrics.with_current reg (fun () ->
      with_pool jobs @@ fun pool ->
      ignore
        (Pool.parallel_init ~chunk:2 pool n (fun i ->
             let c =
               Metrics.counter ~help:"test" (Metrics.current ()) "par_test_total"
             in
             Metrics.add c (float_of_int (i + 1));
             let h = Metrics.histogram ~help:"test" (Metrics.current ()) "par_test_hist" in
             Metrics.observe h (float_of_int i);
             i)));
  Metrics.scalar_series reg

let test_metrics_merge_matches_sequential () =
  let seq = record_run 1 23 in
  let par = record_run 4 23 in
  Alcotest.(check (list (pair string (float 0.)))) "series identical" seq par;
  (* Sanity: the totals are what 23 elements should have produced. *)
  Alcotest.(check (float 1e-9)) "counter total" 276. (List.assoc "par_test_total" seq);
  Alcotest.(check (float 1e-9)) "hist count" 23. (List.assoc "par_test_hist_count" seq)

let test_disabled_parent_stays_silent () =
  let reg = Metrics.create ~enabled:false () in
  Metrics.with_current reg (fun () ->
      with_pool 3 @@ fun pool ->
      ignore
        (Pool.parallel_init pool 10 (fun i ->
             Metrics.inc (Metrics.counter (Metrics.current ()) "par_disabled_total");
             i)));
  Alcotest.(check (list (pair string (float 0.)))) "nothing recorded" []
    (Metrics.scalar_series reg)

(* ------------------------------------------------------------------ *)
(* Output sink                                                         *)
(* ------------------------------------------------------------------ *)

let test_io_buffer_capture () =
  let b = Buffer.create 64 in
  Io.with_buffer b (fun () ->
      Io.print_string "a";
      Io.printf "%d-%s" 42 "x";
      Io.print_endline "!";
      Io.print_newline ());
  Alcotest.(check string) "captured" "a42-x!\n\n" (Buffer.contents b);
  (* The sink is restored: nothing further lands in the buffer. *)
  Alcotest.(check string) "restored" "a42-x!\n\n" (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Parallel APSP and the metric cache                                  *)
(* ------------------------------------------------------------------ *)

let test_apsp_parallel_equals_sequential =
  QCheck.Test.make ~name:"parallel APSP = sequential APSP" ~count:20
    QCheck.(pair (int_range 1 1000) (int_range 2 18))
    (fun (seed, n) ->
      let g = random_connected_graph seed n in
      let seq = with_pool 1 (fun pool -> Apsp.repeated_dijkstra ~pool g) in
      let par = with_pool 3 (fun pool -> Apsp.repeated_dijkstra ~pool g) in
      seq = par)

let stats = Alcotest.(triple int int int)

let test_apsp_cache () =
  Metric.reset_apsp_cache ();
  Alcotest.check stats "fresh stats" (0, 0, 0) (Metric.apsp_cache_stats ());
  let g = random_connected_graph 5 12 in
  let m1 = Metric.of_graph g in
  Alcotest.check stats "first is a miss" (0, 1, 0) (Metric.apsp_cache_stats ());
  (* A structurally identical graph built separately must hit. *)
  let m2 = Metric.of_graph (random_connected_graph 5 12) in
  Alcotest.check stats "second hits" (1, 1, 0) (Metric.apsp_cache_stats ());
  for u = 0 to 11 do
    for v = 0 to 11 do
      Alcotest.(check (float 0.)) "same distances" (Metric.dist m1 u v) (Metric.dist m2 u v)
    done
  done;
  ignore (Metric.of_graph ~cache:false g);
  Alcotest.check stats "cache:false bypasses" (1, 1, 0)
    (Metric.apsp_cache_stats ());
  ignore (Metric.of_graph (random_connected_graph 6 12));
  Alcotest.check stats "different graph misses" (1, 2, 0)
    (Metric.apsp_cache_stats ());
  Metric.reset_apsp_cache ();
  Alcotest.check stats "reset" (0, 0, 0) (Metric.apsp_cache_stats ());
  ignore (Metric.of_graph g);
  Alcotest.check stats "re-computed after reset" (0, 1, 0)
    (Metric.apsp_cache_stats ())

(* Incremental APSP after a small edge delta must agree with a fresh
   computation and count as a partial invalidation. *)
let test_apsp_delta () =
  Metric.reset_apsp_cache ();
  let g = random_connected_graph 7 14 in
  let base = Metric.of_graph g in
  (* Perturb one edge (longer) and add one shortcut. *)
  let edges = Graph.edges g in
  let u0, v0, w0 = List.hd edges in
  let edges' =
    (u0, v0, w0 *. 3.) :: List.filter (fun (a, b, _) -> (a, b) <> (u0, v0)) edges
  in
  let g' = Graph.of_edges 14 edges' in
  let inc = Metric.of_graph_delta ~base ~base_graph:g g' in
  let fresh = Metric.of_graph ~cache:false g' in
  for i = 0 to 13 do
    for j = 0 to 13 do
      Alcotest.(check (float 1e-9)) "delta = fresh" (Metric.dist fresh i j)
        (Metric.dist inc i j)
    done
  done;
  let _, _, partial = Metric.apsp_cache_stats () in
  Alcotest.(check bool) "counted partial" true (partial >= 1)

(* ------------------------------------------------------------------ *)
(* End to end: the solver is worker-count invariant                    *)
(* ------------------------------------------------------------------ *)

let test_solver_jobs_invariant () =
  let open Qp_place in
  let module Strategy = Qp_quorum.Strategy in
  let graph = random_connected_graph 42 10 in
  let system = Qp_quorum.Grid_qs.make 2 in
  let strategy = Strategy.uniform system in
  let loads = Strategy.loads system strategy in
  let max_load = Array.fold_left Float.max 0. loads in
  let problem =
    Problem.of_graph_qpp ~graph
      ~capacities:(Array.make 10 (1.2 *. max_load))
      ~system ~strategy ()
  in
  let solve_with jobs =
    Pool.set_default_jobs jobs;
    Fun.protect ~finally:(fun () -> Pool.set_default_jobs 1) (fun () ->
        Qpp_solver.solve ~alpha:2. problem)
  in
  match (solve_with 1, solve_with 3) with
  | Some a, Some b ->
      Alcotest.(check int) "same v0" a.Qpp_solver.v0 b.Qpp_solver.v0;
      Alcotest.(check (float 0.)) "same objective" a.Qpp_solver.objective
        b.Qpp_solver.objective;
      Alcotest.(check (array int)) "same placement" a.Qpp_solver.placement
        b.Qpp_solver.placement;
      Alcotest.(check (option (float 0.))) "same lower bound" a.Qpp_solver.lower_bound
        b.Qpp_solver.lower_bound
  | _ -> Alcotest.fail "solver unexpectedly infeasible"

let suites =
  [
    ( "par.pool",
      [
        Alcotest.test_case "create rejects jobs = 0" `Quick test_create_invalid;
        Alcotest.test_case "parallel_init = Array.init" `Quick test_init_matches_array_init;
        Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
        Alcotest.test_case "empty and tiny inputs" `Quick test_map_empty_and_small;
        Alcotest.test_case "chunk edge cases" `Quick test_chunk_edge_cases;
        Alcotest.test_case "iter runs each element once" `Quick test_iter_runs_each_once;
        Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
        Alcotest.test_case "nested calls run inline" `Quick test_nested_calls_fall_back;
        Alcotest.test_case "shutdown semantics" `Quick test_shutdown_semantics;
        Alcotest.test_case "process-default pool" `Quick test_default_pool;
        Alcotest.test_case "async runs every task" `Quick test_async_runs_tasks;
        Alcotest.test_case "async inline at jobs=1" `Quick
          test_async_inline_on_single_job_pool;
        Alcotest.test_case "async after shutdown" `Quick test_async_after_shutdown;
        Alcotest.test_case "deadline context propagates" `Quick
          test_simplex_deadline_context_propagates;
      ] );
    ( "par.telemetry",
      [
        Alcotest.test_case "merged metrics = sequential" `Quick
          test_metrics_merge_matches_sequential;
        Alcotest.test_case "disabled registry records nothing" `Quick
          test_disabled_parent_stays_silent;
        Alcotest.test_case "io buffer capture" `Quick test_io_buffer_capture;
      ] );
    ( "par.apsp",
      [
        QCheck_alcotest.to_alcotest test_apsp_parallel_equals_sequential;
        Alcotest.test_case "metric cache hits and bypass" `Quick test_apsp_cache;
        Alcotest.test_case "incremental APSP after delta" `Quick test_apsp_delta;
        Alcotest.test_case "solver invariant under jobs" `Quick test_solver_jobs_invariant;
      ] );
  ]
