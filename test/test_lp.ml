open Qp_lp
module Rng = Qp_util.Rng

let solve_opt lp =
  match Simplex.solve lp with
  | Simplex.Optimal { x; objective } -> (x, objective)
  | Simplex.Infeasible -> Alcotest.fail "unexpected Infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected Unbounded"

let check_float = Alcotest.(check (float 1e-6))

(* max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18  (classic Dantzig
   example; optimum x=2, y=6, value 36). *)
let test_dantzig_example () =
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 (-3.);
  Lp.set_objective lp 1 (-5.);
  Lp.add_constraint lp [ (0, 1.) ] Lp.Le 4.;
  Lp.add_constraint lp [ (1, 2.) ] Lp.Le 12.;
  Lp.add_constraint lp [ (0, 3.); (1, 2.) ] Lp.Le 18.;
  let x, obj = solve_opt lp in
  check_float "objective" (-36.) obj;
  check_float "x" 2. x.(0);
  check_float "y" 6. x.(1)

(* min 2x + 3y s.t. x + y >= 4; x >= 1  => x=4 or boundary? Optimum at
   y=0, x=4: 8? vs x=1,y=3: 2+9=11. So x=4,y=0, value 8. *)
let test_ge_constraints () =
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 2.;
  Lp.set_objective lp 1 3.;
  Lp.add_constraint lp [ (0, 1.); (1, 1.) ] Lp.Ge 4.;
  Lp.add_constraint lp [ (0, 1.) ] Lp.Ge 1.;
  let x, obj = solve_opt lp in
  check_float "objective" 8. obj;
  check_float "x" 4. x.(0);
  check_float "y" 0. x.(1)

let test_equality () =
  (* min x + 2y s.t. x + y = 3, y >= 1 (as -y <= -1). Optimum x=2,y=1,
     value 4. *)
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 1.;
  Lp.set_objective lp 1 2.;
  Lp.add_constraint lp [ (0, 1.); (1, 1.) ] Lp.Eq 3.;
  Lp.add_constraint lp [ (1, 1.) ] Lp.Ge 1.;
  let x, obj = solve_opt lp in
  check_float "objective" 4. obj;
  check_float "x" 2. x.(0);
  check_float "y" 1. x.(1)

let test_infeasible () =
  let lp = Lp.create 1 in
  Lp.add_constraint lp [ (0, 1.) ] Lp.Le 1.;
  Lp.add_constraint lp [ (0, 1.) ] Lp.Ge 2.;
  Alcotest.(check bool) "infeasible" true (Simplex.solve lp = Simplex.Infeasible)

let test_infeasible_negative_rhs () =
  (* x >= 0 and x <= -1 is infeasible; exercises rhs normalization. *)
  let lp = Lp.create 1 in
  Lp.add_constraint lp [ (0, 1.) ] Lp.Le (-1.);
  Alcotest.(check bool) "infeasible" true (Simplex.solve lp = Simplex.Infeasible)

let test_unbounded () =
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 (-1.);
  Lp.add_constraint lp [ (0, 1.); (1, -1.) ] Lp.Le 1.;
  Alcotest.(check bool) "unbounded" true (Simplex.solve lp = Simplex.Unbounded)

let test_degenerate () =
  (* Degenerate vertex: three constraints through the optimum. *)
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 (-1.);
  Lp.set_objective lp 1 (-1.);
  Lp.add_constraint lp [ (0, 1.) ] Lp.Le 1.;
  Lp.add_constraint lp [ (1, 1.) ] Lp.Le 1.;
  Lp.add_constraint lp [ (0, 1.); (1, 1.) ] Lp.Le 2.;
  let _, obj = solve_opt lp in
  check_float "objective" (-2.) obj

let test_redundant_equalities () =
  (* Duplicate equality rows force a redundant phase-1 row drop. *)
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 1.;
  Lp.add_constraint lp [ (0, 1.); (1, 1.) ] Lp.Eq 2.;
  Lp.add_constraint lp [ (0, 1.); (1, 1.) ] Lp.Eq 2.;
  Lp.add_constraint lp [ (0, 2.); (1, 2.) ] Lp.Eq 4.;
  let x, obj = solve_opt lp in
  check_float "objective" 0. obj;
  check_float "x" 0. x.(0);
  check_float "y" 2. x.(1)

let test_zero_objective_feasibility_only () =
  let lp = Lp.create 3 in
  Lp.add_constraint lp [ (0, 1.); (1, 1.); (2, 1.) ] Lp.Eq 1.;
  let x, obj = solve_opt lp in
  check_float "objective" 0. obj;
  check_float "sums to one" 1. (x.(0) +. x.(1) +. x.(2))

let test_duplicate_terms_merged () =
  let lp = Lp.create 1 in
  Lp.set_objective lp 0 1.;
  (* x + x >= 3  <=>  2x >= 3. *)
  Lp.add_constraint lp [ (0, 1.); (0, 1.) ] Lp.Ge 3.;
  let x, _ = solve_opt lp in
  check_float "x" 1.5 x.(0)

let test_builder_validation () =
  let lp = Lp.create 2 in
  Alcotest.check_raises "bad var" (Invalid_argument "Lp.add_constraint: variable out of range")
    (fun () -> Lp.add_constraint lp [ (5, 1.) ] Lp.Le 1.);
  Alcotest.check_raises "bad obj" (Invalid_argument "Lp.set_objective: variable out of range")
    (fun () -> Lp.set_objective lp 9 1.)

let test_objective_helpers () =
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 1.;
  Lp.add_objective lp 0 2.;
  let o = Lp.objective lp in
  check_float "accumulated" 3. o.(0);
  check_float "value" 6. (Lp.objective_value lp [| 2.; 0. |])

(* Transportation LP with known optimum (2 sources x 2 sinks).
   Supplies (10, 20), demands (15, 15); costs c11=1 c12=4 c21=2 c22=1.
   Optimum: x11=10, x21=5, x22=15 -> 10 + 10 + 15 = 35. *)
let test_transportation () =
  let lp = Lp.create 4 in
  (* vars: x11 x12 x21 x22 *)
  List.iteri (fun i c -> Lp.set_objective lp i c) [ 1.; 4.; 2.; 1. ];
  Lp.add_constraint lp [ (0, 1.); (1, 1.) ] Lp.Eq 10.;
  Lp.add_constraint lp [ (2, 1.); (3, 1.) ] Lp.Eq 20.;
  Lp.add_constraint lp [ (0, 1.); (2, 1.) ] Lp.Eq 15.;
  Lp.add_constraint lp [ (1, 1.); (3, 1.) ] Lp.Eq 15.;
  let _, obj = solve_opt lp in
  check_float "objective" 35. obj

(* Random LPs that are feasible by construction: draw a witness point
   x* >= 0 and emit rows consistent with it. The simplex optimum must
   be feasible and no worse than the witness. *)
let random_feasible_lp seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let m = 2 + Rng.int rng 8 in
  let witness = Array.init n (fun _ -> Rng.float rng 5.) in
  let lp = Lp.create n in
  for v = 0 to n - 1 do
    (* Non-negative objective keeps the LP bounded below. *)
    Lp.set_objective lp v (Rng.float rng 3.)
  done;
  for _ = 1 to m do
    let terms = List.init n (fun v -> (v, Rng.float rng 4. -. 2.)) in
    let lhs = Lp.eval_terms terms witness in
    match Rng.int rng 3 with
    | 0 -> Lp.add_constraint lp terms Lp.Le (lhs +. Rng.float rng 2.)
    | 1 -> Lp.add_constraint lp terms Lp.Ge (lhs -. Rng.float rng 2.)
    | _ -> Lp.add_constraint lp terms Lp.Eq lhs
  done;
  (lp, witness)

(* Two LPs with identical variable/constraint layout whose right-hand
   sides differ by a small random delta — the shape of an instance
   update reaching the solver. *)
let random_lp_pair seed =
  let rng = Rng.create seed in
  let n = 2 + Rng.int rng 5 in
  let m = 2 + Rng.int rng 8 in
  let witness = Array.init n (fun _ -> Rng.float rng 5.) in
  let base = Lp.create n in
  let delta = Lp.create n in
  for v = 0 to n - 1 do
    let c = Rng.float rng 3. in
    Lp.set_objective base v c;
    Lp.set_objective delta v c
  done;
  for _ = 1 to m do
    let terms = List.init n (fun v -> (v, Rng.float rng 4. -. 2.)) in
    let lhs = Lp.eval_terms terms witness in
    let bump = Rng.float rng 0.3 -. 0.15 in
    match Rng.int rng 3 with
    | 0 ->
        let rhs = lhs +. Rng.float rng 2. in
        Lp.add_constraint base terms Lp.Le rhs;
        Lp.add_constraint delta terms Lp.Le (rhs +. bump)
    | 1 ->
        let rhs = lhs -. Rng.float rng 2. in
        Lp.add_constraint base terms Lp.Ge rhs;
        Lp.add_constraint delta terms Lp.Ge (rhs +. bump)
    | _ ->
        Lp.add_constraint base terms Lp.Eq lhs;
        Lp.add_constraint delta terms Lp.Eq (lhs +. bump)
  done;
  (base, delta)

(* Satellite property (b): a warm-started solve must agree with the
   cold solve on the perturbed LP — the crash basis is an accelerator,
   never an answer-changer. *)
let prop_warm_equals_cold =
  QCheck.Test.make ~name:"warm-started solve = cold solve on small deltas"
    ~count:150 QCheck.small_int (fun seed ->
      let base, delta = random_lp_pair (seed + 7000) in
      match Simplex.solve_warm base with
      | Simplex.Optimal _, Some basis -> (
          let cold = Simplex.solve delta in
          let warm, _ = Simplex.solve_warm ~warm:basis delta in
          match (cold, warm) with
          | Simplex.Optimal a, Simplex.Optimal b ->
              Float.abs (a.objective -. b.objective)
              <= 1e-6 *. Float.max 1. (Float.abs a.objective)
          | Simplex.Infeasible, Simplex.Infeasible -> true
          | Simplex.Unbounded, Simplex.Unbounded -> true
          | _ -> false)
      | _ -> true)

(* An unchanged LP re-solved from its own final basis needs no phase-1
   work at all: the crash start is already optimal, so phase 2 should
   terminate without pivoting. *)
let test_warm_identity () =
  let lp () =
    let lp = Lp.create 2 in
    Lp.set_objective lp 0 (-3.);
    Lp.set_objective lp 1 (-5.);
    Lp.add_constraint lp [ (0, 1.) ] Lp.Le 4.;
    Lp.add_constraint lp [ (1, 2.) ] Lp.Le 12.;
    Lp.add_constraint lp [ (0, 3.); (1, 2.) ] Lp.Le 18.;
    lp
  in
  match Simplex.solve_warm (lp ()) with
  | Simplex.Optimal { objective; _ }, Some basis ->
      check_float "cold objective" (-36.) objective;
      (match Simplex.solve_warm ~warm:basis (lp ()) with
      | Simplex.Optimal { objective; _ }, Some _ ->
          check_float "warm objective" (-36.) objective
      | _ -> Alcotest.fail "warm re-solve not optimal")
  | _ -> Alcotest.fail "cold solve not optimal"

let prop_simplex_beats_witness =
  QCheck.Test.make ~name:"simplex optimum feasible and <= witness" ~count:150
    QCheck.small_int (fun seed ->
      let lp, witness = random_feasible_lp seed in
      match Simplex.solve lp with
      | Simplex.Infeasible -> false (* witness proves feasibility *)
      | Simplex.Unbounded -> true (* possible: random rows may leave a ray *)
      | Simplex.Optimal { x; objective } ->
          Lp.is_feasible ~tol:1e-5 lp x
          && objective <= Lp.objective_value lp witness +. 1e-6)

(* Brute-force cross-check on tiny 2-var LPs: sample a dense grid of
   points; every feasible grid point must be >= the simplex optimum. *)
let prop_simplex_no_better_grid_point =
  QCheck.Test.make ~name:"no grid point beats simplex optimum" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 1000) in
      let lp = Lp.create 2 in
      Lp.set_objective lp 0 (Rng.float rng 4. -. 2.);
      Lp.set_objective lp 1 (Rng.float rng 4. -. 2.);
      (* Box keeps it bounded. *)
      Lp.add_constraint lp [ (0, 1.) ] Lp.Le 10.;
      Lp.add_constraint lp [ (1, 1.) ] Lp.Le 10.;
      for _ = 1 to 3 do
        let terms = [ (0, Rng.float rng 2. -. 1.); (1, Rng.float rng 2. -. 1.) ] in
        Lp.add_constraint lp terms Lp.Le (Rng.float rng 8.)
      done;
      match Simplex.solve lp with
      | Simplex.Unbounded -> false (* impossible: boxed *)
      | Simplex.Infeasible ->
          (* Confirm no grid point is feasible. *)
          let ok = ref true in
          for i = 0 to 50 do
            for j = 0 to 50 do
              let p = [| float_of_int i /. 5.; float_of_int j /. 5. |] in
              if Lp.is_feasible ~tol:1e-9 lp p then ok := false
            done
          done;
          !ok
      | Simplex.Optimal { objective; _ } ->
          let ok = ref true in
          for i = 0 to 50 do
            for j = 0 to 50 do
              let p = [| float_of_int i /. 5.; float_of_int j /. 5. |] in
              if Lp.is_feasible ~tol:1e-9 lp p && Lp.objective_value lp p < objective -. 1e-6
              then ok := false
            done
          done;
          !ok)

(* Beale's classic cycling example: Dantzig's rule cycles forever on
   this LP without an anti-cycling safeguard; our stall-triggered
   switch to Bland's rule must terminate at the optimum (-1/20). *)
let test_beale_cycling () =
  let lp = Lp.create 4 in
  List.iteri (fun i c -> Lp.set_objective lp i c) [ -0.75; 150.; -0.02; 6. ];
  Lp.add_constraint lp [ (0, 0.25); (1, -60.); (2, -0.04); (3, 9.) ] Lp.Le 0.;
  Lp.add_constraint lp [ (0, 0.5); (1, -90.); (2, -0.02); (3, 3.) ] Lp.Le 0.;
  Lp.add_constraint lp [ (2, 1.) ] Lp.Le 1.;
  let x, obj = solve_opt lp in
  check_float "objective -1/20" (-0.05) obj;
  check_float "x3 = 1" 1. x.(2)

(* ------------------------------------------------------------------ *)
(* Duality certificates                                                *)
(* ------------------------------------------------------------------ *)

let solve_cert lp =
  match Simplex.solve_certified lp with
  | Simplex.Certified c -> c
  | _ -> Alcotest.fail "expected Certified"

let test_certificate_dantzig () =
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 (-3.);
  Lp.set_objective lp 1 (-5.);
  Lp.add_constraint lp [ (0, 1.) ] Lp.Le 4.;
  Lp.add_constraint lp [ (1, 2.) ] Lp.Le 12.;
  Lp.add_constraint lp [ (0, 3.); (1, 2.) ] Lp.Le 18.;
  let c = solve_cert lp in
  check_float "objective" (-36.) c.Simplex.objective;
  Alcotest.(check bool) "certificate verifies" true (Simplex.check_certificate lp c);
  (* Known duals of this textbook LP: y = (0, -3/2, -1) in the
     min/<= sign convention. *)
  check_float "y1" 0. c.Simplex.duals.(0);
  check_float "y2" (-1.5) c.Simplex.duals.(1);
  check_float "y3" (-1.) c.Simplex.duals.(2)

let test_certificate_mixed_rows () =
  let lp = Lp.create 2 in
  Lp.set_objective lp 0 2.;
  Lp.set_objective lp 1 3.;
  Lp.add_constraint lp [ (0, 1.); (1, 1.) ] Lp.Ge 4.;
  Lp.add_constraint lp [ (0, 1.) ] Lp.Ge 1.;
  Lp.add_constraint lp [ (0, 1.); (1, 1.) ] Lp.Eq 4.;
  let c = solve_cert lp in
  Alcotest.(check bool) "certificate verifies" true (Simplex.check_certificate lp c)

let test_certificate_negative_rhs () =
  (* x >= 2 written as -x <= -2: exercises the flipped-row dual sign. *)
  let lp = Lp.create 1 in
  Lp.set_objective lp 0 1.;
  Lp.add_constraint lp [ (0, -1.) ] Lp.Le (-2.);
  let c = solve_cert lp in
  check_float "x" 2. c.Simplex.x.(0);
  Alcotest.(check bool) "certificate verifies" true (Simplex.check_certificate lp c)

let test_certificate_rejects_wrong_duals () =
  let lp = Lp.create 1 in
  Lp.set_objective lp 0 1.;
  Lp.add_constraint lp [ (0, 1.) ] Lp.Ge 3.;
  let c = solve_cert lp in
  Alcotest.(check bool) "true certificate ok" true (Simplex.check_certificate lp c);
  let fake = { c with Simplex.duals = [| 0. |] } in
  Alcotest.(check bool) "zero duals break strong duality" false
    (Simplex.check_certificate lp fake)

let prop_certificates_verify =
  QCheck.Test.make ~name:"every optimal solve yields a valid certificate" ~count:120
    QCheck.small_int (fun seed ->
      let lp, _ = random_feasible_lp (seed + 4000) in
      match Simplex.solve_certified lp with
      | Simplex.C_infeasible -> false
      | Simplex.C_unbounded -> true
      | Simplex.Certified c -> Simplex.check_certificate lp c)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_simplex_beats_witness;
      prop_simplex_no_better_grid_point;
      prop_certificates_verify;
      prop_warm_equals_cold;
    ]

let suites =
  [
    ( "lp.simplex",
      [
        Alcotest.test_case "dantzig example" `Quick test_dantzig_example;
        Alcotest.test_case "ge constraints" `Quick test_ge_constraints;
        Alcotest.test_case "equality" `Quick test_equality;
        Alcotest.test_case "infeasible" `Quick test_infeasible;
        Alcotest.test_case "infeasible negative rhs" `Quick test_infeasible_negative_rhs;
        Alcotest.test_case "unbounded" `Quick test_unbounded;
        Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
        Alcotest.test_case "redundant equalities" `Quick test_redundant_equalities;
        Alcotest.test_case "feasibility-only" `Quick test_zero_objective_feasibility_only;
        Alcotest.test_case "duplicate terms merged" `Quick test_duplicate_terms_merged;
        Alcotest.test_case "builder validation" `Quick test_builder_validation;
        Alcotest.test_case "objective helpers" `Quick test_objective_helpers;
        Alcotest.test_case "transportation" `Quick test_transportation;
        Alcotest.test_case "beale anti-cycling" `Quick test_beale_cycling;
        Alcotest.test_case "warm re-solve of identical LP" `Quick test_warm_identity;
      ] );
    ( "lp.duality",
      [
        Alcotest.test_case "dantzig duals" `Quick test_certificate_dantzig;
        Alcotest.test_case "mixed rows" `Quick test_certificate_mixed_rows;
        Alcotest.test_case "negative rhs" `Quick test_certificate_negative_rhs;
        Alcotest.test_case "rejects wrong duals" `Quick test_certificate_rejects_wrong_duals;
      ] );
    ("lp.properties", qcheck_tests);
  ]
