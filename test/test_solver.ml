(* The solver engine: registry lookup, outcome invariants shared by
   every algorithm, the batch entry point, and the registry-driven
   capacity property from the acceptance criteria. *)

module Qp_error = Qp_util.Qp_error
module Spec = Qp_instance.Spec
open Qp_place

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected error: " ^ Qp_error.to_string e)

let build_spec ?(topology = "waxman") ?(nodes = 10) ?(system = "grid:2")
    ?(cap_slack = 1.3) ?(seed = 1) () =
  { Spec.default with Spec.topology; nodes; system; cap_slack; seed }

let small_problem () = ok_exn (Spec.build (build_spec ()))

let test_registry_contents () =
  let expected =
    [ "lp"; "total"; "greedy"; "random"; "exact"; "grid"; "majority"; "partial";
      "tree"; "auto" ]
  in
  Alcotest.(check (list string)) "registered names" expected (Solver.names ())

let test_find () =
  let s = ok_exn (Solver.find "lp") in
  Alcotest.(check string) "find returns the named solver" "lp" s.Solver.name;
  match Solver.find "simulated-annealing" with
  | Ok _ -> Alcotest.fail "unknown name must not resolve"
  | Error (Qp_error.Invalid_instance msg) ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "lists known algorithms" true (contains msg "known:")
  | Error e -> Alcotest.fail ("wrong error category: " ^ Qp_error.to_string e)

(* Every registered solver must produce a well-formed outcome on a
   feasible instance: valid placement, agreeing derived fields, and its
   own name stamped on the result. *)
let test_all_solvers_well_formed () =
  let generic = small_problem () in
  (* partial deployment needs |quorums| = |nodes| = |elements|: grid:2
     on 4 nodes (4 elements, 2 rows + 2 columns). *)
  let square =
    ok_exn (Spec.build (build_spec ~topology:"complete" ~nodes:4 ()))
  in
  (* the tree solver only accepts tree metrics. *)
  let on_tree = ok_exn (Spec.build (build_spec ~topology:"tree" ())) in
  List.iter
    (fun (s : Solver.t) ->
      let p =
        if s.Solver.name = "partial" then square
        else if s.Solver.name = "tree" then on_tree
        else generic
      in
      match s.Solver.solve Solver.default_params p with
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "%s on feasible instance: %s" s.Solver.name
               (Qp_error.to_string e))
      | Ok o ->
          (* The [auto] dispatcher passes the chosen specialist's
             outcome through, stamp included — that stamp is how
             callers (and CI) observe the dispatch decision. *)
          (if s.Solver.kind = Solver.Meta then
             Alcotest.(check bool)
               (s.Solver.name ^ " stamps a registered name")
               true
               (List.mem o.Outcome.solver (Solver.names ()))
           else
             Alcotest.(check string) (s.Solver.name ^ " stamps name")
               s.Solver.name o.Outcome.solver);
          Placement.validate p o.Outcome.placement;
          Alcotest.(check bool)
            (s.Solver.name ^ " objective finite")
            true
            (Float.is_finite o.Outcome.objective);
          Alcotest.(check (float 1e-12))
            (s.Solver.name ^ " load_violation consistent")
            (Placement.max_violation p o.Outcome.placement)
            o.Outcome.load_violation)
    (Solver.all ())

let test_source_out_of_range () =
  let p = small_problem () in
  let bad = { Solver.default_params with Solver.source = 99 } in
  List.iter
    (fun name ->
      let s = Solver.find_exn name in
      match s.Solver.solve bad p with
      | Error (Qp_error.Invalid_instance _) -> ()
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "%s: wrong error category: %s" name
               (Qp_error.to_string e))
      | Ok _ -> Alcotest.fail (name ^ ": accepted out-of-range source"))
    [ "greedy"; "grid"; "majority" ]

let test_infeasible_is_typed () =
  (* Slack below 1 leaves no capacity-respecting placement; solvers
     with a capacity constraint must answer [Infeasible], not crash. *)
  let p = ok_exn (Spec.build (build_spec ~nodes:6 ~cap_slack:0.2 ())) in
  List.iter
    (fun name ->
      let s = Solver.find_exn name in
      match s.Solver.solve Solver.default_params p with
      | Error (Qp_error.Infeasible _) -> ()
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "%s: wrong error category: %s" name
               (Qp_error.to_string e))
      | Ok _ -> Alcotest.fail (name ^ ": solved an infeasible instance"))
    [ "greedy"; "random"; "exact" ]

(* solve_many must agree with the sequential map, element for element,
   on both payloads and ordering. *)
let test_solve_many_matches_sequential () =
  let problems =
    List.map (fun seed -> ok_exn (Spec.build (build_spec ~seed ()))) [ 1; 2; 3; 4; 5 ]
  in
  let s = Solver.find_exn "greedy" in
  let batch = Solver.solve_many s problems in
  let seq = List.map (s.Solver.solve Solver.default_params) problems in
  Alcotest.(check int) "same length" (List.length seq) (List.length batch);
  List.iter2
    (fun a b ->
      match (a, b) with
      | Ok oa, Ok ob ->
          Alcotest.(check bool) "same outcome" true (Outcome.equal oa ob)
      | Error ea, Error eb ->
          Alcotest.(check string) "same error" (Qp_error.to_string ea)
            (Qp_error.to_string eb)
      | _ -> Alcotest.fail "batch/sequential disagree on feasibility")
    seq batch

let test_registry_table () =
  let table = Solver.registry_table_markdown () in
  List.iter
    (fun (s : Solver.t) ->
      let cell = Printf.sprintf "| `%s` |" s.Solver.name in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("table row for " ^ s.Solver.name) true
        (contains table cell))
    (Solver.all ())

(* README drift test: the algorithm table in README.md is generated
   from the registry; regenerate with `qplace solvers` when it drifts. *)
let readme_marker_begin = "<!-- solver-registry:begin -->"
let readme_marker_end = "<!-- solver-registry:end -->"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_readme_in_sync () =
  let readme_path =
    (* dune runs tests from the build directory; the dune rule adds
       README.md to the test deps so it is present beside the repo
       sources either way. *)
    List.find Sys.file_exists [ "../README.md"; "README.md" ]
  in
  let readme = read_file readme_path in
  let index_of hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go 0
  in
  match (index_of readme readme_marker_begin, index_of readme readme_marker_end) with
  | Some b, Some e ->
      let start = b + String.length readme_marker_begin in
      let embedded = String.trim (String.sub readme start (e - start)) in
      Alcotest.(check string) "README algorithm table matches the registry"
        (String.trim (Solver.registry_table_markdown ()))
        embedded
  | _ -> Alcotest.fail "README.md is missing the solver-registry markers"

(* The acceptance property: every solver that declares a load bound
   keeps load_f(v) <= bound * cap(v) on random feasible instances. *)
let spec_gen =
  QCheck.Gen.(
    let* nodes = int_range 6 10 in
    let* system = oneofl [ "grid:2"; "majority:5:3"; "wheel:5"; "triangle" ] in
    let* cap_slack = float_range 1.0 1.8 in
    let* seed = int_range 1 10_000 in
    let* topology = oneofl [ "waxman"; "complete"; "cycle"; "tree" ] in
    return (build_spec ~topology ~nodes ~system ~cap_slack ~seed ()))

let spec_arbitrary =
  QCheck.make ~print:(Format.asprintf "%a" Spec.pp) spec_gen

let prop_load_bounds =
  QCheck.Test.make ~name:"registry solvers respect declared load bounds" ~count:60
    spec_arbitrary (fun spec ->
      match Spec.build spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok p ->
          List.for_all
            (fun (s : Solver.t) ->
              match s.Solver.load_bound Solver.default_params with
              | None -> true
              | Some bound -> (
                  match s.Solver.solve Solver.default_params p with
                  | Error _ -> true (* infeasible under this slack: fine *)
                  | Ok o -> o.Outcome.load_violation <= bound +. 1e-9))
            (Solver.all ()))

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_load_bounds ]

let suites =
  [
    ( "place.solver",
      [
        Alcotest.test_case "registry contents" `Quick test_registry_contents;
        Alcotest.test_case "find" `Quick test_find;
        Alcotest.test_case "all solvers well-formed" `Quick
          test_all_solvers_well_formed;
        Alcotest.test_case "source out of range" `Quick test_source_out_of_range;
        Alcotest.test_case "infeasible is typed" `Quick test_infeasible_is_typed;
        Alcotest.test_case "solve_many matches sequential" `Quick
          test_solve_many_matches_sequential;
        Alcotest.test_case "registry table" `Quick test_registry_table;
        Alcotest.test_case "README table in sync" `Quick test_readme_in_sync;
      ] );
    ("solver.properties", qcheck_tests);
  ]
