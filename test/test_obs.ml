(* Telemetry layer: JSON round-trips, metrics registry semantics,
   histogram quantiles vs the exact Stats.percentile, span
   nesting/ordering through the memory sink, Prometheus escaping, the
   disabled-path no-ops, wide-event sampling/ring/record shape, SLO
   burn-rate windows, and whole-line sink atomicity when records are
   emitted from pool worker domains. *)

module Json = Qp_obs.Json
module Metrics = Qp_obs.Metrics
module Trace = Qp_obs.Trace
module Span = Qp_obs.Span
module Core = Qp_obs.Core
module Wide = Qp_obs.Wide
module Slo = Qp_obs.Slo
module Pool = Qp_par.Pool
module Stats = Qp_util.Stats
module Rng = Qp_util.Rng

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("null", Json.Null); ("yes", Json.Bool true); ("int", Json.Int (-42));
        ("float", Json.Float 0.1); ("tiny", Json.Float 1.3113021850585938e-05);
        ("str", Json.String "quote \" backslash \\ newline \n tab \t caf\xc3\xa9");
        ("list", Json.List [ Json.Int 1; Json.Float 2.5; Json.Obj [] ]) ]
  in
  Alcotest.(check bool) "roundtrip" true (Json.of_string (Json.to_string v) = v)

let test_json_nonfinite_is_null () =
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string) "inf" "null" (Json.to_string (Json.Float Float.infinity))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | exception Json.Parse_error _ -> ()
      | v -> Alcotest.failf "parsed %S as %s" s (Json.to_string v))
    [ "{bad"; "[1,"; "\"unterminated"; "1 2"; ""; "nul" ]

let test_json_accessors () =
  let v = Json.of_string {|{"a": 3, "b": 2.5, "c": "x"}|} in
  Alcotest.(check (option int)) "int" (Some 3) Option.(bind (Json.member "a" v) Json.to_int);
  Alcotest.(check bool) "widen" true
    (Option.(bind (Json.member "a" v) Json.to_float) = Some 3.);
  Alcotest.(check bool) "float" true
    (Option.(bind (Json.member "b" v) Json.to_float) = Some 2.5);
  Alcotest.(check (option string)) "str" (Some "x")
    Option.(bind (Json.member "c" v) Json.to_str);
  Alcotest.(check bool) "missing" true (Json.member "zz" v = None)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.counter r "qp_test_total" in
  let g = Metrics.gauge r "qp_test_gauge" in
  Metrics.inc c;
  Metrics.add c 2.5;
  Metrics.set g 7.;
  Metrics.set g (-3.);
  Alcotest.(check (float 1e-12)) "counter" 3.5 (Metrics.counter_value c);
  Alcotest.(check (float 1e-12)) "gauge" (-3.) (Metrics.gauge_value g);
  Alcotest.check_raises "negative add"
    (Invalid_argument "Metrics.add: counters only accept finite non-negative increments")
    (fun () -> Metrics.add c (-1.));
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: qp_test_total is not a gauge") (fun () ->
      ignore (Metrics.gauge r "qp_test_total"));
  Alcotest.check_raises "invalid name"
    (Invalid_argument "Metrics: invalid metric name \"0bad name\"") (fun () ->
      ignore (Metrics.counter r "0bad name"))

let test_bucket_boundaries () =
  let r = Metrics.create () in
  let h =
    Metrics.histogram ~buckets:(Metrics.log_buckets ~lo:1. ~factor:2. ~count:4) r "h"
  in
  Alcotest.(check bool) "bounds" true (Metrics.hist_bounds h = [| 1.; 2.; 4.; 8. |]);
  (* Upper bounds are inclusive (Prometheus le semantics); values past
     the last bound land in the overflow bucket. *)
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 2.1; 8.0; 9.0 ];
  Alcotest.(check bool) "per-bucket counts" true
    (Metrics.hist_bucket_counts h = [| 2; 2; 1; 1; 1 |]);
  Alcotest.(check int) "count" 7 (Metrics.hist_count h);
  Alcotest.check_raises "non-finite observation"
    (Invalid_argument "Metrics.observe: non-finite observation") (fun () ->
      Metrics.observe h Float.nan)

(* First bucket (le-inclusive) that contains [v]. *)
let bucket_of bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

(* The quantile estimate interpolates between per-order-statistic
   estimates, each guaranteed to lie in its true order statistic's
   bucket — so the estimate for quantile q must land between the lower
   edge of the bucket holding order statistic floor(q*(n-1)) and the
   upper edge of the bucket holding order statistic ceil(q*(n-1)),
   clamped by the tracked min/max. *)
let test_quantile_brackets_percentile () =
  let rng = Rng.create 7 in
  let bounds = Metrics.log_buckets ~lo:0.01 ~factor:2. ~count:16 in
  let r = Metrics.create () in
  let h = Metrics.histogram ~buckets:bounds r "h" in
  let xs = Array.init 400 (fun _ -> Rng.uniform rng *. 80.) in
  Array.iter (Metrics.observe h) xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  List.iter
    (fun q ->
      let est = Metrics.quantile h q in
      let rank = q *. float_of_int (n - 1) in
      let lo_stat = sorted.(int_of_float (Float.floor rank)) in
      let hi_stat = sorted.(int_of_float (Float.ceil rank)) in
      let lo_edge =
        let b = bucket_of bounds lo_stat in
        Float.max sorted.(0) (if b = 0 then Float.neg_infinity else bounds.(b - 1))
      in
      let hi_edge =
        let b = bucket_of bounds hi_stat in
        Float.min sorted.(n - 1)
          (if b = Array.length bounds then Float.infinity else bounds.(b))
      in
      if not (est >= lo_edge -. 1e-9 && est <= hi_edge +. 1e-9) then
        Alcotest.failf "q=%.2f: estimate %g outside [%g, %g] (exact %g)" q est lo_edge
          hi_edge
          (Stats.percentile xs (100. *. q)))
    [ 0.; 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1. ]

let test_quantile_degenerate () =
  let r = Metrics.create () in
  let h = Metrics.histogram r "h" in
  Alcotest.check_raises "empty" (Invalid_argument "Metrics.quantile: empty histogram")
    (fun () -> ignore (Metrics.quantile h 0.5));
  Metrics.observe h 3.25;
  Alcotest.(check (float 1e-12)) "single q=0.5" 3.25 (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-12)) "single q=1" 3.25 (Metrics.quantile h 1.)

let test_histogram_merge () =
  let r = Metrics.create () in
  let bounds = Metrics.log_buckets ~lo:0.1 ~factor:4. ~count:6 in
  let a = Metrics.histogram ~buckets:bounds r "a" in
  let b = Metrics.histogram ~buckets:bounds r "b" in
  let combined = Metrics.histogram ~buckets:bounds r "combined" in
  let rng = Rng.create 11 in
  for _ = 1 to 200 do
    let x = Rng.uniform rng *. 30. in
    Metrics.observe (if Rng.uniform rng < 0.5 then a else b) x;
    Metrics.observe combined x
  done;
  Metrics.merge_histogram ~into:a b;
  Alcotest.(check bool) "bucket counts" true
    (Metrics.hist_bucket_counts a = Metrics.hist_bucket_counts combined);
  Alcotest.(check int) "count" (Metrics.hist_count combined) (Metrics.hist_count a);
  Alcotest.(check (float 1e-9)) "sum" (Metrics.hist_sum combined) (Metrics.hist_sum a);
  Alcotest.(check (float 1e-9)) "same quantiles" (Metrics.quantile combined 0.9)
    (Metrics.quantile a 0.9);
  let other = Metrics.histogram r "other" in
  Alcotest.check_raises "bucket mismatch"
    (Invalid_argument "Metrics.merge_histogram: bucket bounds differ") (fun () ->
      Metrics.merge_histogram ~into:a other)

let test_disabled_registry_noop () =
  let r = Metrics.create ~enabled:false () in
  let c = Metrics.counter r "c" in
  let g = Metrics.gauge r "g" in
  let h = Metrics.histogram r "h" in
  Metrics.inc c;
  Metrics.add c (-5.) (* not even validated when disabled *);
  Metrics.set g 9.;
  Metrics.observe h Float.nan;
  Alcotest.(check (float 0.)) "counter untouched" 0. (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "gauge untouched" 0. (Metrics.gauge_value g);
  Alcotest.(check int) "histogram untouched" 0 (Metrics.hist_count h);
  Metrics.set_enabled r true;
  Metrics.inc c;
  Alcotest.(check (float 0.)) "enabled counts" 1. (Metrics.counter_value c)

let test_prometheus_text () =
  let r = Metrics.create () in
  let c =
    Metrics.counter ~help:"Help text"
      ~labels:[ ("path", "a\\b \"c\"\nd") ]
      r "qp_esc_total"
  in
  Metrics.inc c;
  let h = Metrics.histogram ~buckets:[| 1.; 2. |] r "qp_h" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 5. ];
  let text = Metrics.to_prometheus r in
  Alcotest.(check bool) "help" true (contains text "# HELP qp_esc_total Help text");
  Alcotest.(check bool) "type" true (contains text "# TYPE qp_esc_total counter");
  Alcotest.(check bool) "escaped label" true
    (contains text {|path="a\\b \"c\"\nd"|});
  Alcotest.(check bool) "cumulative buckets" true
    (contains text "qp_h_bucket{le=\"1\"} 1"
    && contains text "qp_h_bucket{le=\"2\"} 2"
    && contains text "qp_h_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "sum and count" true
    (contains text "qp_h_sum 7" && contains text "qp_h_count 3")

(* ------------------------------------------------------------------ *)
(* Trace / Span                                                        *)
(* ------------------------------------------------------------------ *)

let with_fake_clock_and_sink f =
  let sink, read = Trace.memory () in
  let tick = ref 0. in
  Core.set_clock (fun () ->
      tick := !tick +. 1.;
      !tick);
  Fun.protect
    ~finally:(fun () ->
      Trace.uninstall ();
      Core.default_clock ())
    (fun () ->
      Trace.install sink;
      f read)

let get_int key record =
  match Option.bind (Json.member key record) Json.to_int with
  | Some i -> i
  | None -> Alcotest.failf "missing int field %s in %s" key (Json.to_string record)

let get_str key record =
  match Option.bind (Json.member key record) Json.to_str with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %s in %s" key (Json.to_string record)

let test_span_nesting_and_order () =
  with_fake_clock_and_sink @@ fun read ->
  Trace.header [ ("seed", Json.Int 42) ];
  let result =
    Span.with_ "outer" ~attrs:[ ("phase", Json.String "test") ] @@ fun () ->
    Alcotest.(check bool) "current id" true (Span.current_id () <> None);
    Span.event "ping" ~attrs:[ ("k", Json.Int 1) ];
    Span.add_attr "extra" (Json.Bool true);
    let x = Span.with_ "inner" (fun () -> 21) in
    2 * x
  in
  Alcotest.(check int) "result" 42 result;
  match read () with
  | [ meta; ping; inner; outer ] ->
      Alcotest.(check string) "meta type" "meta" (get_str "type" meta);
      Alcotest.(check string) "schema" "qp-trace/1" (get_str "schema" meta);
      Alcotest.(check int) "meta seed" 42 (get_int "seed" meta);
      (* Children and events land before their parent (end-time order);
         the tree is rebuilt from id/parent. *)
      let outer_id = get_int "id" outer in
      Alcotest.(check string) "outer name" "outer" (get_str "name" outer);
      Alcotest.(check int) "outer depth" 0 (get_int "depth" outer);
      Alcotest.(check bool) "outer is root" true (Json.member "parent" outer = Some Json.Null);
      Alcotest.(check string) "event name" "ping" (get_str "name" ping);
      Alcotest.(check int) "event links span" outer_id (get_int "span" ping);
      Alcotest.(check string) "inner name" "inner" (get_str "name" inner);
      Alcotest.(check int) "inner parent" outer_id (get_int "parent" inner);
      Alcotest.(check int) "inner depth" 1 (get_int "depth" inner);
      let time key r = Option.get (Option.bind (Json.member key r) Json.to_float) in
      Alcotest.(check bool) "fake clock ordering" true
        (time "t_start" outer < time "t_start" inner
        && time "t_start" inner < time "t_end" inner
        && time "t_end" inner < time "t_end" outer);
      let attrs = Option.get (Json.member "attrs" outer) in
      Alcotest.(check bool) "declared attr" true
        (Option.bind (Json.member "phase" attrs) Json.to_str = Some "test");
      Alcotest.(check bool) "added attr" true
        (Json.member "extra" attrs = Some (Json.Bool true))
  | records -> Alcotest.failf "expected 4 records, got %d" (List.length records)

let test_span_exception () =
  with_fake_clock_and_sink @@ fun read ->
  (try Span.with_ "boom" (fun () -> failwith "expected") with Failure _ -> ());
  match read () with
  | [ record ] ->
      Alcotest.(check string) "name" "boom" (get_str "name" record);
      Alcotest.(check bool) "error recorded" true (Json.member "error" record <> None)
  | records -> Alcotest.failf "expected 1 record, got %d" (List.length records)

let test_tracing_off_noop () =
  Trace.uninstall ();
  Alcotest.(check bool) "inactive" false (Trace.active ());
  let ran = ref false in
  let v =
    Span.with_ "ghost" (fun () ->
        ran := true;
        Alcotest.(check bool) "no current span" true (Span.current_id () = None);
        Span.event "ghost-event";
        Span.add_attr "ignored" Json.Null;
        17)
  in
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "value through" 17 v

let test_jsonl_file_sink () =
  let path = Filename.temp_file "qp_obs_test" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.install (Trace.to_file path);
  Trace.header [ ("run", Json.String "test") ];
  Span.with_ "a" (fun () -> Span.with_ "b" ignore);
  Trace.uninstall ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let records = List.rev_map Json.of_string !lines in
  Alcotest.(check int) "one record per line" 3 (List.length records);
  Alcotest.(check string) "meta first" "meta" (get_str "type" (List.hd records));
  Alcotest.(check bool) "spans follow" true
    (List.for_all (fun r -> get_str "type" r = "span") (List.tl records))

(* ------------------------------------------------------------------ *)
(* Wide events                                                         *)
(* ------------------------------------------------------------------ *)

let with_wide ?sample_every ?ring_capacity f =
  let sink, read = Trace.memory () in
  Fun.protect
    ~finally:(fun () -> Wide.uninstall ())
    (fun () ->
      Wide.install ?sample_every ?ring_capacity sink;
      f read)

let test_wide_record_shape () =
  with_wide @@ fun read ->
  Wide.header [ ("run", Json.String "test") ];
  let ev = Wide.start ~kind:"unit" ~trace_id:"t-1" ~parent_span:"s-9" () in
  Alcotest.(check bool) "sampled" true (Wide.sampled ev);
  Wide.set_str ev "verb" "solve";
  Wide.set_int ev "queue_depth" 3;
  Wide.phase ev "parse" 0.25;
  let v = Wide.timed ev "work" (fun () -> 21 * 2) in
  Alcotest.(check int) "timed passes value" 42 v;
  Wide.finish ~outcome:"overloaded" ev;
  Wide.finish ev;
  (* idempotent: second finish emits nothing *)
  match read () with
  | [ meta; record ] ->
      Alcotest.(check string) "meta type" "meta" (get_str "type" meta);
      Alcotest.(check string) "schema" "qp-wide/1" (get_str "schema" meta);
      Alcotest.(check string) "meta field" "test" (get_str "run" meta);
      Alcotest.(check string) "type" "wide" (get_str "type" record);
      Alcotest.(check string) "kind" "unit" (get_str "kind" record);
      Alcotest.(check string) "trace id" "t-1" (get_str "trace_id" record);
      Alcotest.(check string) "parent span" "s-9" (get_str "parent_span" record);
      Alcotest.(check string) "outcome" "overloaded" (get_str "outcome" record);
      Alcotest.(check bool) "duration" true (Json.member "dur_s" record <> None);
      Alcotest.(check string) "attr str" "solve" (get_str "verb" record);
      Alcotest.(check int) "attr int" 3 (get_int "queue_depth" record);
      let phases = Option.get (Json.member "phases" record) in
      Alcotest.(check bool) "explicit phase" true
        (Option.bind (Json.member "parse" phases) Json.to_float = Some 0.25);
      Alcotest.(check bool) "timed phase" true
        (match Option.bind (Json.member "work" phases) Json.to_float with
        | Some d -> d >= 0.
        | None -> false)
  | records -> Alcotest.failf "expected 2 records, got %d" (List.length records)

let test_wide_sampling_and_ring () =
  with_wide ~sample_every:3 ~ring_capacity:2 @@ fun read ->
  for i = 0 to 8 do
    let ev = Wide.start ~kind:"k" () in
    Alcotest.(check bool)
      (Printf.sprintf "head sampling at %d" i)
      (i mod 3 = 0) (Wide.sampled ev);
    Wide.set_int ev "i" i;
    Wide.finish ev
  done;
  Alcotest.(check int) "emitted" 3 (Wide.emitted ());
  Alcotest.(check int) "sink records" 3 (List.length (read ()));
  match Wide.ring () with
  | [ a; b ] ->
      (* bounded ring keeps the most recent records, oldest first *)
      Alcotest.(check int) "ring oldest" 3 (get_int "i" a);
      Alcotest.(check int) "ring newest" 6 (get_int "i" b)
  | l -> Alcotest.failf "expected ring of 2, got %d" (List.length l)

let test_wide_off_noop () =
  Wide.uninstall ();
  Alcotest.(check bool) "inactive" false (Wide.active ());
  let ev = Wide.start ~kind:"ghost" () in
  Alcotest.(check bool) "not sampled" false (Wide.sampled ev);
  Wide.set ev "k" Json.Null;
  Wide.phase ev "p" 1.;
  let v = Wide.timed ev "t" (fun () -> 7) in
  Wide.finish ev;
  Wide.header [];
  Alcotest.(check int) "value through" 7 v;
  Alcotest.(check int) "nothing emitted" 0 (Wide.emitted ());
  Alcotest.(check bool) "ring empty" true (Wide.ring () = [])

let test_wide_fresh_trace_ids () =
  let a = Wide.fresh_trace_id () in
  let b = Wide.fresh_trace_id () in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "non-empty" true (a <> "" && b <> "")

(* ------------------------------------------------------------------ *)
(* Slo                                                                 *)
(* ------------------------------------------------------------------ *)

let slo_cfg ?(target = 0.9) ?latency windows bucket =
  {
    Slo.objective = { Slo.name = "t"; target; latency_s = latency };
    windows_s = windows;
    bucket_s = bucket;
  }

let test_slo_validation () =
  List.iter
    (fun cfg ->
      match Slo.create ~cfg () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "config accepted: %s" cfg.Slo.objective.name)
    [
      slo_cfg ~target:0. [ 60. ] 5.;
      slo_cfg ~target:1. [ 60. ] 5.;
      slo_cfg [] 5.;
      slo_cfg [ 60. ] 0.;
      slo_cfg [ 2. ] 5. (* window shorter than a bucket *);
    ];
  ignore (Slo.create ())

let test_slo_burn_rates () =
  (* target 0.9 => error budget 0.1. 30 good units in [0,30), then 10
     bad units in [30,40): at now=40 the 10s window is all bad
     (burn 10x) while the 40s window has error rate 0.25 (burn 2.5x). *)
  let t = Slo.create ~cfg:(slo_cfg [ 10.; 40. ] 1.) () in
  for i = 0 to 29 do
    Slo.record ~now:(float_of_int i +. 0.5) t ~ok:true ~latency_s:0.01
  done;
  for i = 30 to 39 do
    Slo.record ~now:(float_of_int i +. 0.5) t ~ok:false ~latency_s:0.01
  done;
  let now = 40. in
  Alcotest.(check (pair int int)) "fast counts" (0, 10) (Slo.counts ~now t ~window_s:10.);
  Alcotest.(check (pair int int)) "slow counts" (30, 40) (Slo.counts ~now t ~window_s:40.);
  Alcotest.(check (float 1e-9)) "fast error rate" 1. (Slo.error_rate ~now t ~window_s:10.);
  Alcotest.(check (float 1e-9)) "fast burn" 10. (Slo.burn_rate ~now t ~window_s:10.);
  Alcotest.(check (float 1e-9)) "slow burn" 2.5 (Slo.burn_rate ~now t ~window_s:40.);
  Alcotest.(check bool) "burning at 2x" true (Slo.burning ~now t ~threshold:2.);
  Alcotest.(check bool) "not burning at 3x (slow window)" false
    (Slo.burning ~now t ~threshold:3.);
  (* Buckets expire: far in the future every window is empty again. *)
  Alcotest.(check (pair int int)) "expired" (0, 0)
    (Slo.counts ~now:10_000. t ~window_s:40.);
  Alcotest.(check (float 1e-9)) "empty window burns 0" 0.
    (Slo.burn_rate ~now:10_000. t ~window_s:40.)

let test_slo_latency_objective () =
  (* ok with latency above the bound counts against the objective *)
  let t = Slo.create ~cfg:(slo_cfg ~latency:0.1 [ 10. ] 1.) () in
  Slo.record ~now:1. t ~ok:true ~latency_s:0.01;
  Slo.record ~now:2. t ~ok:true ~latency_s:0.5;
  Slo.record ~now:3. t ~ok:false ~latency_s:0.01;
  Alcotest.(check (pair int int)) "slow success is bad" (1, 3)
    (Slo.counts ~now:4. t ~window_s:10.);
  match Slo.quantile ~now:4. t ~window_s:10. 0.5 with
  | Some q -> Alcotest.(check bool) "median in latency bucket" true (q > 0.005 && q < 0.65)
  | None -> Alcotest.fail "expected a quantile"

let test_slo_json_shape () =
  let t = Slo.create ~cfg:(slo_cfg [ 10.; 40. ] 1.) () in
  Slo.record ~now:1. t ~ok:true ~latency_s:0.01;
  let j = Slo.to_json ~now:2. t in
  Alcotest.(check string) "objective name" "t" (get_str "objective" j);
  match Json.member "windows" j with
  | Some (Json.List ws) ->
      Alcotest.(check int) "one entry per window" 2 (List.length ws);
      List.iter
        (fun w ->
          Alcotest.(check int) "total" 1 (get_int "total" w);
          Alcotest.(check int) "good" 1 (get_int "good" w))
        ws;
      Alcotest.(check bool) "empty quantile is null" true
        (Json.member "p99_s" (List.hd ws) <> None)
  | _ -> Alcotest.fail "expected windows list"

(* ------------------------------------------------------------------ *)
(* Sink atomicity from pool worker domains (JSONL whole-line writes)   *)
(* ------------------------------------------------------------------ *)

let read_jsonl path =
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.rev_map
    (fun line ->
      match Json.of_string line with
      | j -> j
      | exception Json.Parse_error _ -> Alcotest.failf "torn line: %s" line)
    !lines

let with_pool_and_file name f =
  let path = Filename.temp_file name ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () -> f pool path

let test_trace_sink_atomic_from_pool () =
  with_pool_and_file "qp_obs_pool_trace" @@ fun pool path ->
  let n = 200 in
  Fun.protect ~finally:(fun () -> Trace.uninstall ()) (fun () ->
      Trace.install (Trace.to_file path);
      Trace.header [];
      Pool.parallel_iter pool
        (fun i -> Span.with_ (Printf.sprintf "job-%d" i) ignore)
        (Array.init n Fun.id));
  let records = read_jsonl path in
  (* every record is a complete line and nothing was lost *)
  Alcotest.(check int) "all records present" (n + 1) (List.length records);
  Alcotest.(check int) "all spans" n
    (List.length (List.filter (fun r -> get_str "type" r = "span") records))

let test_wide_sink_atomic_from_pool () =
  with_pool_and_file "qp_obs_pool_wide" @@ fun pool path ->
  let n = 200 in
  Fun.protect ~finally:(fun () -> Wide.uninstall ()) (fun () ->
      Wide.install (Trace.to_file path);
      Wide.header [];
      Pool.parallel_iter pool
        (fun i ->
          let ev = Wide.start ~kind:"pool_job" () in
          Wide.set_int ev "i" i;
          Wide.timed ev "work" (fun () -> ignore (Sys.opaque_identity (i * i)));
          Wide.finish ev)
        (Array.init n Fun.id);
      Alcotest.(check int) "emitted" n (Wide.emitted ()));
  let records = read_jsonl path in
  Alcotest.(check int) "all records present" (n + 1) (List.length records);
  let wides = List.filter (fun r -> get_str "type" r = "wide") records in
  Alcotest.(check int) "all wide events" n (List.length wides);
  (* each job's record arrived exactly once *)
  let seen = List.sort compare (List.map (get_int "i") wides) in
  Alcotest.(check bool) "every index once" true (seen = List.init n Fun.id)

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "non-finite -> null" `Quick test_json_nonfinite_is_null;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counter/gauge" `Quick test_counter_gauge;
        Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
        Alcotest.test_case "quantile brackets percentile" `Quick
          test_quantile_brackets_percentile;
        Alcotest.test_case "quantile degenerate" `Quick test_quantile_degenerate;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "disabled registry no-op" `Quick test_disabled_registry_noop;
        Alcotest.test_case "prometheus text" `Quick test_prometheus_text;
      ] );
    ( "obs.trace",
      [
        Alcotest.test_case "span nesting and order" `Quick test_span_nesting_and_order;
        Alcotest.test_case "span exception" `Quick test_span_exception;
        Alcotest.test_case "tracing off no-op" `Quick test_tracing_off_noop;
        Alcotest.test_case "jsonl file sink" `Quick test_jsonl_file_sink;
      ] );
    ( "obs.wide",
      [
        Alcotest.test_case "record shape" `Quick test_wide_record_shape;
        Alcotest.test_case "sampling and ring" `Quick test_wide_sampling_and_ring;
        Alcotest.test_case "off no-op" `Quick test_wide_off_noop;
        Alcotest.test_case "fresh trace ids" `Quick test_wide_fresh_trace_ids;
      ] );
    ( "obs.slo",
      [
        Alcotest.test_case "validation" `Quick test_slo_validation;
        Alcotest.test_case "burn rates and windows" `Quick test_slo_burn_rates;
        Alcotest.test_case "latency objective" `Quick test_slo_latency_objective;
        Alcotest.test_case "json shape" `Quick test_slo_json_shape;
      ] );
    ( "obs.sinks",
      [
        Alcotest.test_case "trace sink atomic from pool" `Quick
          test_trace_sink_atomic_from_pool;
        Alcotest.test_case "wide sink atomic from pool" `Quick
          test_wide_sink_atomic_from_pool;
      ] );
  ]
