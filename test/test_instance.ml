(* The shared instance layer: Spec.build must be deterministic, agree
   with the historical CLI construction, and reject malformed specs
   with typed errors. *)

module Qp_error = Qp_util.Qp_error
module Spec = Qp_instance.Spec
open Qp_place

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected error: " ^ Qp_error.to_string e)

let check_invalid what = function
  | Error (Qp_error.Invalid_instance _) -> ()
  | Error e ->
      Alcotest.fail
        (Printf.sprintf "%s: wrong error category: %s" what (Qp_error.to_string e))
  | Ok _ -> Alcotest.fail (what ^ ": expected Invalid_instance")

let test_build_deterministic () =
  let spec = { Spec.default with Spec.topology = "geometric"; nodes = 12; seed = 5 } in
  let a = ok_exn (Spec.build spec) in
  let b = ok_exn (Spec.build spec) in
  Alcotest.(check string) "equal specs build byte-identical instances"
    (Serialize.problem_to_string a)
    (Serialize.problem_to_string b)

(* The spec path must reproduce the historical construction exactly:
   seeded rng -> topology -> uniform strategy -> capacities scaled off
   the max element load. *)
let test_build_matches_manual_construction () =
  let spec =
    { Spec.default with Spec.topology = "waxman"; nodes = 14; system = "grid:3";
      cap_slack = 1.2; seed = 3 }
  in
  let built = ok_exn (Spec.build spec) in
  let rng = Qp_util.Rng.create 3 in
  let graph = ok_exn (Spec.build_topology "waxman" 14 rng) in
  let system = ok_exn (Spec.build_system "grid:3") in
  let manual = Spec.uniform_problem ~graph ~system ~slack:1.2 in
  Alcotest.(check string) "spec path = manual path"
    (Serialize.problem_to_string manual)
    (Serialize.problem_to_string built)

let test_all_topologies_build () =
  List.iter
    (fun topology ->
      let spec = { Spec.default with Spec.topology; nodes = 9; system = "grid:2" } in
      let p = ok_exn (Spec.build spec) in
      (* barbell builds two K_{n/2} cliques, so it rounds odd n down. *)
      let expect = if topology = "barbell" then 8 else 9 in
      Alcotest.(check int) (topology ^ " node count") expect (Problem.n_nodes p))
    [ "path"; "cycle"; "star"; "complete"; "tree"; "waxman"; "geometric";
      "geometric:0.45"; "barbell" ]

let test_all_systems_build () =
  List.iter
    (fun system ->
      let spec = { Spec.default with Spec.nodes = 12; Spec.system = system } in
      ignore (ok_exn (Spec.build spec)))
    [ "grid:3"; "majority:7:4"; "fpp:2"; "tree:2"; "wheel:5"; "star:5"; "triangle" ]

let test_invalid_specs () =
  check_invalid "zero nodes" (Spec.build { Spec.default with Spec.nodes = 0 });
  check_invalid "negative nodes" (Spec.build { Spec.default with Spec.nodes = -3 });
  check_invalid "zero slack" (Spec.build { Spec.default with Spec.cap_slack = 0. });
  check_invalid "nan slack" (Spec.build { Spec.default with Spec.cap_slack = Float.nan });
  check_invalid "unknown topology"
    (Spec.build { Spec.default with Spec.topology = "moebius" });
  check_invalid "unknown system"
    (Spec.build { Spec.default with Spec.system = "hexagon:9" });
  check_invalid "bad system integer"
    (Spec.build { Spec.default with Spec.system = "grid:x" });
  check_invalid "bad geometric radius"
    (Spec.build { Spec.default with Spec.topology = "geometric:zero" })

(* ------------------------------------------------------------------ *)
(* Deltas and the live instance                                        *)
(* ------------------------------------------------------------------ *)

module Delta = Qp_instance.Delta
module Live = Qp_instance.Live

let live_spec =
  { Spec.default with Spec.topology = "waxman"; nodes = 10; system = "grid:2";
    cap_slack = 1.5; seed = 7 }

let test_delta_validate () =
  let ok ops =
    match Delta.validate ~nodes:10 ops with
    | Ok () -> ()
    | Error e -> Alcotest.failf "valid delta rejected: %s" (Qp_error.to_string e)
  in
  ok [ Delta.Set_edge { u = 0; v = 1; length = 2. };
       Delta.Remove_edge { u = 2; v = 3 };
       Delta.Set_capacity { node = 9; cap = 0.5 };
       Delta.Set_cap_slack 1.2 ];
  List.iter
    (fun (what, ops) -> check_invalid what (Delta.validate ~nodes:10 ops))
    [ ("self-loop", [ Delta.Set_edge { u = 4; v = 4; length = 1. } ]);
      ("negative length", [ Delta.Set_edge { u = 0; v = 1; length = -1. } ]);
      ("node out of range", [ Delta.Set_capacity { node = 10; cap = 1. } ]);
      ("negative node", [ Delta.Remove_edge { u = -1; v = 2 } ]);
      ("non-positive slack", [ Delta.Set_cap_slack 0. ]) ]

let test_live_apply_tracks_rebuild () =
  (* Generation 0 equals Spec.build; after a delta the incremental
     path (row-wise APSP patch) must equal what a from-scratch build
     of the mutated graph would give. *)
  let live = ok_exn (Live.of_spec live_spec) in
  Alcotest.(check int) "generation 0" 0 (Live.generation live);
  Alcotest.(check string) "gen0 = Spec.build"
    (Serialize.problem_to_string (ok_exn (Spec.build live_spec)))
    (Serialize.problem_to_string (Live.problem live));
  let ops =
    [ Delta.Set_edge { u = 0; v = 5; length = 0.1 };
      Delta.Set_capacity { node = 2; cap = 3. } ]
  in
  ok_exn (Live.apply live ops);
  Alcotest.(check int) "generation bumped" 1 (Live.generation live);
  Alcotest.(check int) "ops counted" 2 (Live.applied_ops live);
  let scratch =
    let system = ok_exn (Spec.build_system live_spec.Spec.system) in
    let p =
      Spec.uniform_problem ~graph:(Live.graph live) ~system
        ~slack:live_spec.Spec.cap_slack
    in
    { p with Problem.capacities = Live.capacities live }
  in
  Alcotest.(check string) "incremental = from-scratch rebuild"
    (Serialize.problem_to_string scratch)
    (Serialize.problem_to_string (Live.problem live))

let test_live_apply_atomic () =
  let live = ok_exn (Live.of_spec live_spec) in
  let before = Serialize.problem_to_string (Live.problem live) in
  (* second op is invalid: the valid first op must NOT have applied *)
  check_invalid "batch with a bad op"
    (Live.apply live
       [ Delta.Set_edge { u = 0; v = 1; length = 2. };
         Delta.Set_capacity { node = 99; cap = 1. } ]);
  Alcotest.(check int) "generation unchanged" 0 (Live.generation live);
  Alcotest.(check string) "state unchanged" before
    (Serialize.problem_to_string (Live.problem live))

let suites =
  [
    ( "instance.spec",
      [
        Alcotest.test_case "build deterministic" `Quick test_build_deterministic;
        Alcotest.test_case "matches manual construction" `Quick
          test_build_matches_manual_construction;
        Alcotest.test_case "all topologies build" `Quick test_all_topologies_build;
        Alcotest.test_case "all systems build" `Quick test_all_systems_build;
        Alcotest.test_case "invalid specs" `Quick test_invalid_specs;
      ] );
    ( "instance.live",
      [
        Alcotest.test_case "delta validation" `Quick test_delta_validate;
        Alcotest.test_case "apply tracks full rebuild" `Quick
          test_live_apply_tracks_rebuild;
        Alcotest.test_case "apply is atomic" `Quick test_live_apply_atomic;
      ] );
  ]
