module Rng = Qp_util.Rng
module Qp_error = Qp_util.Qp_error
module Metric = Qp_graph.Metric
module Generators = Qp_graph.Generators
module Strategy = Qp_quorum.Strategy
module Simple_qs = Qp_quorum.Simple_qs
module Grid_qs = Qp_quorum.Grid_qs
open Qp_place

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected error: " ^ Qp_error.to_string e)

let random_problem seed =
  let rng = Rng.create seed in
  let n = 4 + Rng.int rng 6 in
  let g, _ = Generators.random_geometric rng n 0.5 in
  let system = if Rng.bool rng then Simple_qs.triangle () else Grid_qs.make 2 in
  let strategy =
    if Rng.bool rng then Strategy.uniform system
    else begin
      let m = Qp_quorum.Quorum.n_quorums system in
      Strategy.of_weights system (Array.init m (fun _ -> 0.1 +. Rng.uniform rng))
    end
  in
  let caps = Array.init n (fun _ -> Rng.float rng 3.) in
  let rates =
    if Rng.bool rng then Some (Array.init n (fun _ -> Rng.float rng 2. +. 0.01)) else None
  in
  Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy ?client_rates:rates ()

let same_problem (a : Problem.qpp) (b : Problem.qpp) =
  let n = Problem.n_nodes a in
  Problem.n_nodes b = n
  && Problem.n_elements a = Problem.n_elements b
  && a.Problem.capacities = b.Problem.capacities
  && a.Problem.strategy = b.Problem.strategy
  && a.Problem.client_rates = b.Problem.client_rates
  && Qp_quorum.Quorum.quorums a.Problem.system = Qp_quorum.Quorum.quorums b.Problem.system
  && begin
       let ok = ref true in
       for v = 0 to n - 1 do
         for w = 0 to n - 1 do
           if Metric.dist a.Problem.metric v w <> Metric.dist b.Problem.metric v w then
             ok := false
         done
       done;
       !ok
     end

let test_round_trip () =
  for seed = 1 to 20 do
    let p = random_problem seed in
    let p' = ok_exn (Serialize.problem_of_string (Serialize.problem_to_string p)) in
    Alcotest.(check bool) "round trip exact" true (same_problem p p')
  done

let test_round_trip_objective_stable () =
  let p = random_problem 99 in
  let p' = ok_exn (Serialize.problem_of_string (Serialize.problem_to_string p)) in
  let f = Array.init (Problem.n_elements p) (fun u -> u mod Problem.n_nodes p) in
  Alcotest.(check (float 0.)) "identical delays" (Delay.avg_max_delay p f)
    (Delay.avg_max_delay p' f)

let test_placement_round_trip () =
  let f = [| 3; 0; 7; 3 |] in
  Alcotest.(check (array int)) "round trip" f
    (ok_exn (Serialize.placement_of_string (Serialize.placement_to_string f)));
  Alcotest.(check (array int)) "whitespace tolerant" [| 1; 2 |]
    (ok_exn (Serialize.placement_of_string "  1   2 "))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Malformed input must come back as [Error (Invalid_instance _)] —
   never an exception — per the repository error convention. *)
let check_fails fragment text =
  match Serialize.problem_of_string text with
  | Error (Qp_error.Invalid_instance msg) ->
      Alcotest.(check bool) ("error mentions " ^ fragment) true (contains msg fragment)
  | Error e -> Alcotest.fail ("wrong error category: " ^ Qp_error.to_string e)
  | Ok _ -> Alcotest.fail "expected parse failure"

let test_malformed_inputs () =
  check_fails "expected" "not-an-instance\n";
  check_fails "unexpected end" "qplace-instance v1\nnodes 2\n";
  check_fails "expected 2 numbers"
    "qplace-instance v1\nnodes 2\nmetric\n0 1 2\n0 1\n";
  (* Asymmetric metric rejected by validation. *)
  check_fails "invalid metric"
    "qplace-instance v1\nnodes 2\nmetric\n0 1\n2 0\ncapacities\n1 1\nuniverse 1\nquorums 1\nq 0\nstrategy\n1\nrates none\nend\n";
  (* Non-intersecting quorums rejected. *)
  check_fails "invalid quorum system"
    "qplace-instance v1\nnodes 2\nmetric\n0 1\n1 0\ncapacities\n1 1\nuniverse 2\nquorums 2\nq 0\nq 1\nstrategy\n0.5 0.5\nrates none\nend\n";
  (* Bad strategy sum. *)
  check_fails "invalid problem"
    "qplace-instance v1\nnodes 2\nmetric\n0 1\n1 0\ncapacities\n1 1\nuniverse 1\nquorums 1\nq 0\nstrategy\n0.7\nrates none\nend\n"

let test_file_round_trip () =
  let p = random_problem 7 in
  let path = Filename.temp_file "qplace" ".inst" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      ok_exn (Serialize.save_problem path p);
      let p' = ok_exn (Serialize.load_problem path) in
      Alcotest.(check bool) "file round trip" true (same_problem p p'))

let test_load_missing_file () =
  match Serialize.load_problem "/nonexistent/qplace.inst" with
  | Error (Qp_error.Invalid_instance _) -> ()
  | Error e -> Alcotest.fail ("wrong error category: " ^ Qp_error.to_string e)
  | Ok _ -> Alcotest.fail "expected load failure"

let test_placement_bad_token () =
  match Serialize.placement_of_string "1 x 2" with
  | Error (Qp_error.Invalid_instance msg) ->
      Alcotest.(check bool) "mentions token" true (contains msg "bad placement token")
  | Error e -> Alcotest.fail ("wrong error category: " ^ Qp_error.to_string e)
  | Ok _ -> Alcotest.fail "expected placement failure"

(* Outcome JSON: every solver's outcome on a small instance must
   round-trip exactly through the qp-solve/1 schema. *)
let small_problem ?topology nodes system =
  let spec =
    { Qp_instance.Spec.default with Qp_instance.Spec.nodes; system;
      cap_slack = 1.3 }
  in
  let spec =
    match topology with
    | Some topology -> { spec with Qp_instance.Spec.topology }
    | None -> spec
  in
  ok_exn (Qp_instance.Spec.build spec)

let test_outcome_round_trip () =
  let generic = small_problem 10 "grid:2" in
  (* partial deployment needs |quorums| = |nodes| = |elements|; the
     tree solver only accepts tree metrics. *)
  let square = small_problem 4 "grid:2" in
  let on_tree = small_problem ~topology:"tree" 10 "grid:2" in
  List.iter
    (fun (s : Solver.t) ->
      let p =
        if s.Solver.name = "partial" then square
        else if s.Solver.name = "tree" then on_tree
        else generic
      in
      match s.Solver.solve Solver.default_params p with
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "%s failed: %s" s.Solver.name (Qp_error.to_string e))
      | Ok o ->
          let o' = ok_exn (Serialize.outcome_of_string (Serialize.outcome_to_string o)) in
          Alcotest.(check bool)
            ("outcome round trip: " ^ s.Solver.name)
            true (Outcome.equal o o'))
    (Solver.all ())

let test_outcome_bad_json () =
  let reject text =
    match Serialize.outcome_of_string text with
    | Error (Qp_error.Invalid_instance _) -> ()
    | Error e -> Alcotest.fail ("wrong error category: " ^ Qp_error.to_string e)
    | Ok _ -> Alcotest.fail "expected outcome parse failure"
  in
  reject "not json";
  reject "{\"schema\":\"qp-solve/0\"}";
  reject "{\"schema\":\"qp-solve/1\",\"solver\":7}"

let prop_round_trip =
  QCheck.Test.make ~name:"serialize round trip" ~count:40 QCheck.small_int (fun seed ->
      let p = random_problem (seed + 1000) in
      match Serialize.problem_of_string (Serialize.problem_to_string p) with
      | Ok p' -> same_problem p p'
      | Error _ -> false)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_round_trip ]

let suites =
  [
    ( "place.serialize",
      [
        Alcotest.test_case "round trip" `Quick test_round_trip;
        Alcotest.test_case "objective stable" `Quick test_round_trip_objective_stable;
        Alcotest.test_case "placement round trip" `Quick test_placement_round_trip;
        Alcotest.test_case "malformed inputs" `Quick test_malformed_inputs;
        Alcotest.test_case "file round trip" `Quick test_file_round_trip;
        Alcotest.test_case "load missing file" `Quick test_load_missing_file;
        Alcotest.test_case "placement bad token" `Quick test_placement_bad_token;
        Alcotest.test_case "outcome round trip" `Quick test_outcome_round_trip;
        Alcotest.test_case "outcome bad json" `Quick test_outcome_bad_json;
      ] );
    ("serialize.properties", qcheck_tests);
  ]
