(** A live, mutable instance: a {!Spec.t}-built problem that evolves
    under {!Delta} ops without ever being torn down.

    The value of keeping the instance alive rather than rebuilding
    from a spec is the incremental path: edge deltas flow through
    {!Qp_graph.Metric.of_graph_delta}, so only the affected rows of
    the APSP matrix are recomputed, and the generation counter lets
    cache layers (the serve solve cache) detect staleness with one
    integer compare.

    {!apply} is all-or-nothing: the successor graph, metric,
    capacities and problem are fully constructed and validated before
    any field is written, so a rejected delta leaves the live state
    untouched — the property fuzzed by the serve-layer tests. *)

type t

val of_spec : Spec.t -> (t, Qp_util.Qp_error.t) result
(** Build the initial state at generation 0. Equal specs yield the
    same state {!Spec.build} would. *)

val apply : t -> Delta.op list -> (unit, Qp_util.Qp_error.t) result
(** Apply a delta atomically, bumping the generation on success.
    Errors ([Invalid_instance]): out-of-range or malformed ops, a
    removal that disconnects the graph, an edgeless result, or
    capacities the problem validator rejects. On [Error] the state is
    unchanged and the generation not bumped. *)

val problem : t -> Qp_place.Problem.qpp
(** The current problem; constant between successful {!apply} calls. *)

val spec : t -> Spec.t
(** The originating spec (describes generation 0, not the current
    state). *)

val graph : t -> Qp_graph.Graph.t
val capacities : t -> float array
(** A copy of the current per-node capacities. *)

val generation : t -> int
(** Number of successful {!apply} calls so far. *)

val applied_ops : t -> int
(** Total ops across all successful applies. *)
