(** Instance specifications: one named, validated description of a
    problem instance, shared by the CLI, the benchmark experiments and
    the property tests.

    A {!t} captures everything needed to regenerate a problem
    deterministically: topology name, node count, quorum-system
    construction, capacity slack and seed. {!build} turns it into a
    {!Qp_place.Problem.qpp} — always through the same construction
    path (seeded rng, topology, uniform strategy, capacities =
    [cap_slack * max element load]), so every front end generates
    byte-identical instances from the same spec.

    All validation failures come back as
    [Error (Invalid_instance _)] — never an exception. *)

type t = {
  topology : string;
      (* path | cycle | star | complete | tree | waxman | geometric[:R]
         | barbell | region:NAME (embedded RTT table, see {!Region}) *)
  nodes : int;
  system : string;
      (* grid:K | majority:N:T | fpp:Q | tree:D | wheel:N | star:N
         | triangle *)
  cap_slack : float; (* capacity per node / max element load *)
  seed : int;
  jobs : int; (* worker domains; 0 = all cores (resolved by front ends) *)
}

val default : t
(** The CLI defaults: waxman topology, 16 nodes, grid:3, slack 1.0,
    seed 1, jobs 0. *)

val pp : Format.formatter -> t -> unit

val canonical_key : t -> string
(** Injective encoding of the instance identity this spec denotes:
    topology, nodes, system, cap_slack (exact float round-trip) and
    seed — everything {!build} consumes. [jobs] is deliberately
    excluded: it is a resource knob that never affects results, so
    specs differing only in [jobs] share a key. This is the spec
    component of the qp_serve placement-cache key. *)

val is_tree_topology : t -> bool
(** True when the spec's topology generator always emits a tree
    (path, star, tree), making the instance metric a tree metric. *)

val system_kind : t -> string
(** The quorum-system family name: ["grid:3"] -> ["grid"]. *)

val solver_hints :
  t -> Qp_place.Solver.topology_hint option * string option
(** [(topology_hint, system_hint)] for {!Qp_place.Solver.params}: what
    the [auto] dispatcher should know about instances built from this
    spec. Hints select specialists worth trying; each specialist
    validates its own applicability, so they are advisory only. *)

val build_topology :
  string -> int -> Qp_util.Rng.t -> (Qp_graph.Graph.t, Qp_util.Qp_error.t) result
(** [build_topology name n rng]. ["geometric"] uses connection radius
    0.4; ["geometric:R"] overrides it. ["region:NAME"] expands the
    embedded RTT table NAME ({!Region.names}) into the complete
    weighted graph on [n] nodes — deterministic, the rng is unused. *)

val build_system : string -> (Qp_quorum.Quorum.system, Qp_util.Qp_error.t) result

val uniform_problem :
  graph:Qp_graph.Graph.t ->
  system:Qp_quorum.Quorum.system ->
  slack:float ->
  Qp_place.Problem.qpp
(** The shared construction: uniform strategy, every node's capacity
    set to [slack] times the maximum element load.
    @raise Invalid_argument on an invalid instance (use {!build} for
    untrusted input). *)

val build : t -> (Qp_place.Problem.qpp, Qp_util.Qp_error.t) result
(** Validates the spec ([nodes > 0], finite [cap_slack > 0], known
    topology and construction) and builds the instance. Deterministic:
    equal specs yield byte-identical problems
    ({!Qp_place.Serialize.problem_to_string}). *)
