module Graph = Qp_graph.Graph
module Qp_error = Qp_util.Qp_error

type t = {
  name : string;
  regions : string array;
  rtt_ms : float array array; (* symmetric, zero diagonal *)
  intra_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Embedded tables                                                     *)
(* ------------------------------------------------------------------ *)

(* Inter-region round-trip times in milliseconds, compiled in as data
   (no file I/O). The figures are representative public measurements of
   the respective clouds, rounded to whole milliseconds; the scenario
   machinery treats them as a fixed synthetic geography, so accuracy to
   the living network is not required — only realism of scale and
   asymmetry (trans-Pacific >> intra-continent >> intra-region).

   Each table lists the strict upper triangle row by row; [expand]
   mirrors it into the full symmetric matrix with a zero diagonal.
   Distances between nodes of the same region use [intra_ms]. *)

let expand name regions intra_ms upper =
  let r = Array.length regions in
  let m = Array.make_matrix r r 0. in
  let k = ref 0 in
  for i = 0 to r - 1 do
    for j = i + 1 to r - 1 do
      m.(i).(j) <- upper.(!k);
      m.(j).(i) <- upper.(!k);
      incr k
    done
  done;
  assert (!k = Array.length upper);
  { name; regions; rtt_ms = m; intra_ms }

(* us-east-1 (N. Virginia), eu-west-1 (Ireland), ap-northeast-1
   (Tokyo): the classic three-continent deployment. *)
let aws3 =
  expand "aws-3"
    [| "us-east-1"; "eu-west-1"; "ap-northeast-1" |]
    1.0
    [| (* ue-ew *) 75.; (* ue-an *) 165.; (* ew-an *) 210. |]

(* Nine AWS regions spanning the Americas, Europe and Asia. Order:
   us-east-1, us-west-1, us-west-2, eu-west-1, eu-central-1,
   ap-southeast-1, ap-northeast-1, sa-east-1, ap-south-1. *)
let aws9 =
  expand "aws-9"
    [| "us-east-1"; "us-west-1"; "us-west-2"; "eu-west-1"; "eu-central-1";
       "ap-southeast-1"; "ap-northeast-1"; "sa-east-1"; "ap-south-1" |]
    1.0
    [| (* us-east-1 -> *) 62.; 68.; 75.; 88.; 230.; 165.; 115.; 185.;
       (* us-west-1 -> *) 22.; 140.; 150.; 170.; 105.; 190.; 235.;
       (* us-west-2 -> *) 130.; 145.; 165.; 95.; 180.; 220.;
       (* eu-west-1 -> *) 25.; 180.; 220.; 185.; 120.;
       (* eu-central-1 -> *) 160.; 225.; 200.; 110.;
       (* ap-southeast-1 -> *) 70.; 325.; 60.;
       (* ap-northeast-1 -> *) 255.; 120.;
       (* sa-east-1 -> *) 300. |]

(* Six GCP regions. Order: us-central1, us-east1, europe-west1,
   europe-north1, asia-east1, asia-south1. *)
let gcp6 =
  expand "gcp-6"
    [| "us-central1"; "us-east1"; "europe-west1"; "europe-north1";
       "asia-east1"; "asia-south1" |]
    1.0
    [| (* us-central1 -> *) 32.; 105.; 120.; 160.; 250.;
       (* us-east1 -> *) 92.; 110.; 185.; 230.;
       (* europe-west1 -> *) 30.; 250.; 130.;
       (* europe-north1 -> *) 270.; 150.;
       (* asia-east1 -> *) 85. |]

let tables = [ aws3; aws9; gcp6 ]

let names () = List.map (fun t -> t.name) tables

let find name =
  match List.find_opt (fun t -> t.name = name) tables with
  | Some t -> Ok t
  | None ->
      Qp_error.invalid_instancef "unknown region table %S (%s)" name
        (String.concat "|" (names ()))

let name t = t.name
let regions t = t.regions
let n_regions t = Array.length t.regions
let rtt t i j = t.rtt_ms.(i).(j)

let region_of_node t v =
  if v < 0 then invalid_arg "Region.region_of_node: negative node";
  v mod Array.length t.regions

let region_name_of_node t v = t.regions.(region_of_node t v)

let nodes_of_region t ~nodes r =
  if r < 0 || r >= Array.length t.regions then
    invalid_arg "Region.nodes_of_region: region out of range";
  let acc = ref [] in
  for v = nodes - 1 downto 0 do
    if region_of_node t v = r then acc := v :: !acc
  done;
  !acc

(* The complete weighted graph on [nodes] vertices: node [v] lives in
   region [v mod n_regions] and edge lengths are the table RTTs
   (intra-region pairs use [intra_ms]). Raw RTT tables routinely
   violate the triangle inequality by a few milliseconds (routing
   detours); the shortest-path closure taken by [Metric.of_graph]
   restores it, which is exactly how the placement machinery consumes
   the topology. *)
let graph t ~nodes =
  if nodes < Array.length t.regions then
    invalid_arg
      (Printf.sprintf
         "Region.graph: %s needs at least %d nodes (one per region), got %d"
         t.name (Array.length t.regions) nodes);
  let g = Graph.create nodes in
  for u = 0 to nodes - 1 do
    for v = u + 1 to nodes - 1 do
      let ru = region_of_node t u and rv = region_of_node t v in
      let len = if ru = rv then t.intra_ms else t.rtt_ms.(ru).(rv) in
      Graph.add_edge g u v len
    done
  done;
  g
