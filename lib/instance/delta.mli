(** Instance deltas: small, validated edits to a live instance.

    The churn model of the paper's setting — link weights drift, a
    link or node capacity degrades — expressed as a list of operations
    applied atomically by {!Live.apply}. Ops are applied in list
    order; later ops see the effect of earlier ones (so
    [Set_cap_slack] followed by [Set_capacity] rebases all capacities
    and then overrides one node). *)

type op =
  | Set_edge of { u : int; v : int; length : float }
      (** Insert the undirected edge or set its length (may raise or
          lower it, unlike [Graph.add_edge]'s min semantics). *)
  | Remove_edge of { u : int; v : int }
      (** Remove the edge; a no-op if absent. Rejected at apply time
          if it would disconnect the graph. *)
  | Set_capacity of { node : int; cap : float }
  | Set_cap_slack of float
      (** Reset every node's capacity to [slack * max element load] —
          the {!Spec.uniform_problem} construction — discarding prior
          per-node overrides. *)

val validate : nodes:int -> op list -> (unit, Qp_util.Qp_error.t) result
(** Structural validation (ranges, signs, self-loops) against a node
    count; connectivity and feasibility are checked by {!Live.apply}
    where the graph is known. First offending op wins. *)

val norm_edge : int -> int -> int * int
(** Canonical (min, max) endpoint order. *)

val pp_op : Format.formatter -> op -> unit
