module Qp_error = Qp_util.Qp_error
module Graph = Qp_graph.Graph
module Metric = Qp_graph.Metric
module Strategy = Qp_quorum.Strategy
module Problem = Qp_place.Problem

type t = {
  spec : Spec.t;
  system : Qp_quorum.Quorum.system;
  strategy : Strategy.t;
  max_load : float;
  mutable graph : Graph.t;
  mutable metric : Metric.t;
  mutable capacities : float array;
  mutable problem : Problem.qpp;
  mutable generation : int;
  mutable applied_ops : int;
}

let of_spec spec =
  let ( let* ) = Qp_error.( let* ) in
  let* problem = Spec.build spec in
  Qp_error.guard @@ fun () ->
  let rng = Qp_util.Rng.create spec.Spec.seed in
  let* graph = Spec.build_topology spec.Spec.topology spec.Spec.nodes rng in
  let* system = Spec.build_system spec.Spec.system in
  let strategy = Strategy.uniform system in
  let loads = Strategy.loads system strategy in
  let max_load = Array.fold_left Float.max 0. loads in
  Ok
    {
      spec;
      system;
      strategy;
      max_load;
      graph;
      metric = problem.Problem.metric;
      capacities = Array.copy problem.Problem.capacities;
      problem;
      generation = 0;
      applied_ops = 0;
    }

let spec t = t.spec
let problem t = t.problem
let graph t = t.graph
let capacities t = Array.copy t.capacities
let generation t = t.generation
let applied_ops t = t.applied_ops

(* All-or-nothing: every op is validated and the full successor state
   (graph, metric, capacities, problem) is constructed before any
   field is written, so a rejected delta — out-of-range endpoint,
   disconnecting removal, capacities that invalidate the instance —
   leaves the live state bit-identical. *)
let apply t ops =
  let ( let* ) = Qp_error.( let* ) in
  let nodes = Graph.n_vertices t.graph in
  let* () = Delta.validate ~nodes ops in
  Qp_error.guard @@ fun () ->
  (* Fold ops over an (edge map, capacities) working state. *)
  let edges = Hashtbl.create 64 in
  List.iter
    (fun (u, v, w) -> Hashtbl.replace edges (Delta.norm_edge u v) w)
    (Graph.edges t.graph);
  let caps = Array.copy t.capacities in
  List.iter
    (fun op ->
      match op with
      | Delta.Set_edge { u; v; length } ->
          Hashtbl.replace edges (Delta.norm_edge u v) length
      | Delta.Remove_edge { u; v } ->
          Hashtbl.remove edges (Delta.norm_edge u v)
      | Delta.Set_capacity { node; cap } -> caps.(node) <- cap
      | Delta.Set_cap_slack slack ->
          Array.fill caps 0 (Array.length caps) (slack *. t.max_load))
    ops;
  let edge_list =
    Hashtbl.fold (fun (u, v) w acc -> (u, v, w) :: acc) edges []
    |> List.sort compare
  in
  if edge_list = [] then
    Qp_error.invalid_instancef "delta: graph would have no edges"
  else begin
    let graph' = Graph.of_edges nodes edge_list in
    if not (Graph.is_connected graph') then
      Qp_error.invalid_instancef "delta: graph would be disconnected"
    else begin
      let metric' =
        Metric.of_graph_delta ~base:t.metric ~base_graph:t.graph graph'
      in
      let* problem' =
        Qp_error.of_invalid_arg (fun () ->
            Problem.make_qpp ~metric:metric' ~capacities:caps ~system:t.system
              ~strategy:t.strategy ())
      in
      t.graph <- graph';
      t.metric <- metric';
      t.capacities <- caps;
      t.problem <- problem';
      t.generation <- t.generation + 1;
      t.applied_ops <- t.applied_ops + List.length ops;
      Ok ()
    end
  end
