(** Embedded inter-region RTT tables: real cloud geographies as
    first-class topologies.

    A region table names [R] cloud regions and gives the symmetric
    inter-region round-trip time in milliseconds, compiled in as data
    (no file I/O). {!graph} expands a table into the complete weighted
    graph on [n] nodes — node [v] lives in region [v mod R], edges
    carry the inter-region RTT (or {!t}'s intra-region RTT inside a
    region) — which is what [Spec.build_topology] returns for the
    ["region:NAME"] topology family, so every solver, the serve path
    and bench run on real geographies through the ordinary instance
    pipeline.

    The tables are representative public measurements rounded to whole
    milliseconds. Raw RTT matrices can violate the triangle inequality
    by routing detours; the shortest-path closure taken downstream by
    [Metric.of_graph] restores it. *)

type t

val names : unit -> string list
(** Registered table names: ["aws-3"], ["aws-9"], ["gcp-6"]. *)

val find : string -> (t, Qp_util.Qp_error.t) result
(** Table lookup by name; [Error (Invalid_instance _)] listing the
    known names otherwise. *)

val name : t -> string
val regions : t -> string array
(** Region names, in matrix order. *)

val n_regions : t -> int
val rtt : t -> int -> int -> float
(** Inter-region RTT in milliseconds (0 on the diagonal). *)

val region_of_node : t -> int -> int
(** Node [v] of any expansion lives in region [v mod n_regions] —
    round-robin, so every prefix of node ids covers the regions as
    evenly as possible. *)

val region_name_of_node : t -> int -> string

val nodes_of_region : t -> nodes:int -> int -> int list
(** [nodes_of_region t ~nodes r] — the node ids of region [r] in an
    [nodes]-node expansion, ascending. *)

val graph : t -> nodes:int -> Qp_graph.Graph.t
(** Complete weighted graph on [nodes] vertices with RTT edge lengths.
    @raise Invalid_argument when [nodes < n_regions] (every region
    must host at least one node). *)
