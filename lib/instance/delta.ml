module Qp_error = Qp_util.Qp_error

type op =
  | Set_edge of { u : int; v : int; length : float }
  | Remove_edge of { u : int; v : int }
  | Set_capacity of { node : int; cap : float }
  | Set_cap_slack of float

let pp_op fmt = function
  | Set_edge { u; v; length } ->
      Format.fprintf fmt "set-edge %d-%d %.4g" u v length
  | Remove_edge { u; v } -> Format.fprintf fmt "remove-edge %d-%d" u v
  | Set_capacity { node; cap } ->
      Format.fprintf fmt "set-capacity %d %.4g" node cap
  | Set_cap_slack s -> Format.fprintf fmt "set-cap-slack %.4g" s

let norm_edge u v = if u <= v then (u, v) else (v, u)

let validate_op ~nodes op =
  let check_vertex what x =
    if x < 0 || x >= nodes then
      Qp_error.invalid_instancef "delta: %s %d out of range [0, %d)" what x
        nodes
    else Ok ()
  in
  let open Qp_error in
  match op with
  | Set_edge { u; v; length } ->
      let* () = check_vertex "endpoint" u in
      let* () = check_vertex "endpoint" v in
      if u = v then Qp_error.invalid_instancef "delta: self-loop on %d" u
      else if not (Float.is_finite length && length > 0.) then
        Qp_error.invalid_instancef "delta: edge length must be positive finite \
                                    (got %g)"
          length
      else Ok ()
  | Remove_edge { u; v } ->
      let* () = check_vertex "endpoint" u in
      let* () = check_vertex "endpoint" v in
      if u = v then Qp_error.invalid_instancef "delta: self-loop on %d" u
      else Ok ()
  | Set_capacity { node; cap } ->
      let* () = check_vertex "node" node in
      if not (Float.is_finite cap && cap >= 0.) then
        Qp_error.invalid_instancef
          "delta: capacity must be non-negative finite (got %g)" cap
      else Ok ()
  | Set_cap_slack s ->
      if not (Float.is_finite s && s > 0.) then
        Qp_error.invalid_instancef
          "delta: cap-slack must be positive finite (got %g)" s
      else Ok ()

let validate ~nodes ops =
  let rec go = function
    | [] -> Ok ()
    | op :: rest -> (
        match validate_op ~nodes op with
        | Ok () -> go rest
        | Error _ as e -> e)
  in
  go ops
