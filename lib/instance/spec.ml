module Rng = Qp_util.Rng
module Qp_error = Qp_util.Qp_error
module Generators = Qp_graph.Generators
module Graph = Qp_graph.Graph
module Strategy = Qp_quorum.Strategy

type t = {
  topology : string;
  nodes : int;
  system : string;
  cap_slack : float;
  seed : int;
  jobs : int;
}

let default =
  { topology = "waxman"; nodes = 16; system = "grid:3"; cap_slack = 1.0;
    seed = 1; jobs = 0 }

let pp fmt t =
  Format.fprintf fmt
    "spec(topology=%s nodes=%d system=%s cap-slack=%g seed=%d jobs=%d)"
    t.topology t.nodes t.system t.cap_slack t.seed t.jobs

(* Canonical identity of the instance a spec builds. Excludes [jobs]:
   parallelism is a front-end resource knob that never changes the
   (byte-identical) solve result, so two specs differing only in jobs
   must collide — that is what lets the qp_serve placement cache hit
   across clients with different jobs settings. [%.17g] round-trips
   every float exactly. Topology/system strings are length-prefixed so
   no crafted string can alias another spec's key. *)
let canonical_key t =
  Printf.sprintf "t%d:%s|n%d|s%d:%s|c%.17g|r%d"
    (String.length t.topology) t.topology t.nodes
    (String.length t.system) t.system t.cap_slack t.seed

let topology_names =
  "path|cycle|star|complete|tree|waxman|geometric[:R]|barbell|region:NAME"

(* Topology generators whose output is always a tree (so the
   shortest-path metric is a tree metric). Drives [auto] solver
   dispatch; the tree solver re-verifies, so listing a topology here
   can never produce a wrong answer, only a wasted attempt. *)
let is_tree_topology t =
  match t.topology with "path" | "star" | "tree" -> true | _ -> false

let system_kind t =
  match String.split_on_char ':' t.system with
  | kind :: _ -> kind
  | [] -> t.system

let solver_hints t =
  ( (if is_tree_topology t then Some Qp_place.Solver.Tree_metric
     else Some Qp_place.Solver.General_metric),
    Some (system_kind t) )

let build_topology name n rng =
  Qp_error.guard @@ fun () ->
  match name with
  | "path" -> Ok (Generators.path n)
  | "cycle" -> Ok (Generators.cycle n)
  | "star" -> Ok (Generators.star n)
  | "complete" -> Ok (Generators.complete n)
  | "tree" -> Ok (Generators.random_tree rng n)
  | "waxman" -> Ok (fst (Generators.waxman rng n ()))
  | "geometric" -> Ok (fst (Generators.random_geometric rng n 0.4))
  | "barbell" -> Ok (Generators.barbell (n / 2))
  | other -> (
      match String.split_on_char ':' other with
      | [ "geometric"; r ] -> (
          match float_of_string_opt r with
          | Some radius when Float.is_finite radius && radius > 0. ->
              Ok (fst (Generators.random_geometric rng n radius))
          | _ ->
              Qp_error.invalid_instancef "bad geometric radius %S" r)
      | [ "region"; table ] -> (
          match Region.find table with
          | Ok t ->
              if n < Region.n_regions t then
                Qp_error.invalid_instancef
                  "region table %S needs at least %d nodes (got %d)" table
                  (Region.n_regions t) n
              else Ok (Region.graph t ~nodes:n)
          | Error e -> Error e)
      | _ ->
          Qp_error.invalid_instancef "unknown topology %S (%s)" other
            topology_names)

let build_system name =
  Qp_error.guard @@ fun () ->
  let pint s =
    match int_of_string_opt s with
    | Some v -> v
    | None ->
        raise
          (Qp_error.Error
             (Qp_error.Invalid_instance
                (Printf.sprintf "bad integer %S in system %S" s name)))
  in
  match String.split_on_char ':' name with
  | [ "grid"; k ] -> Ok (Qp_quorum.Grid_qs.make (pint k))
  | [ "majority"; n; t ] ->
      Ok (Qp_quorum.Majority_qs.make ~n:(pint n) ~t:(pint t))
  | [ "fpp"; q ] -> Ok (Qp_quorum.Fpp_qs.make (pint q))
  | [ "tree"; d ] -> Ok (Qp_quorum.Tree_qs.make (pint d))
  | [ "wheel"; n ] -> Ok (Qp_quorum.Simple_qs.wheel (pint n))
  | [ "star"; n ] -> Ok (Qp_quorum.Simple_qs.star (pint n))
  | [ "triangle" ] -> Ok (Qp_quorum.Simple_qs.triangle ())
  | _ ->
      Qp_error.invalid_instancef
        "unknown system %S (try grid:3, majority:7:4, fpp:3, tree:2, wheel:5, \
         star:5, triangle)"
        name

let uniform_problem ~graph ~system ~slack =
  let strategy = Strategy.uniform system in
  let loads = Strategy.loads system strategy in
  let max_load = Array.fold_left Float.max 0. loads in
  let capacities = Array.make (Graph.n_vertices graph) (slack *. max_load) in
  Qp_place.Problem.of_graph_qpp ~graph ~capacities ~system ~strategy ()

let build spec =
  let ( let* ) = Qp_error.( let* ) in
  if spec.nodes <= 0 then
    Qp_error.invalid_instancef "nodes must be positive (got %d)" spec.nodes
  else if not (Float.is_finite spec.cap_slack && spec.cap_slack > 0.) then
    Qp_error.invalid_instancef "cap-slack must be a positive finite number (got %g)"
      spec.cap_slack
  else
    Qp_error.guard @@ fun () ->
    let rng = Rng.create spec.seed in
    let* graph = build_topology spec.topology spec.nodes rng in
    let* system = build_system spec.system in
    Ok (uniform_problem ~graph ~system ~slack:spec.cap_slack)
