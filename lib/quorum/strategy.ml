type t = float array

let validate s p =
  if Array.length p <> Quorum.n_quorums s then
    invalid_arg "Strategy.validate: length mismatch";
  Array.iter (fun x -> if x < 0. then invalid_arg "Strategy.validate: negative probability") p;
  let total = Array.fold_left ( +. ) 0. p in
  if not (Qp_util.Floatx.approx total 1.) then
    invalid_arg "Strategy.validate: probabilities do not sum to 1"

let uniform s =
  let m = Quorum.n_quorums s in
  Array.make m (1. /. float_of_int m)

let of_weights s w =
  if Array.length w <> Quorum.n_quorums s then
    invalid_arg "Strategy.of_weights: length mismatch";
  let total = Array.fold_left ( +. ) 0. w in
  Array.iter (fun x -> if x < 0. then invalid_arg "Strategy.of_weights: negative weight") w;
  if total <= 0. then invalid_arg "Strategy.of_weights: zero total weight";
  Array.map (fun x -> x /. total) w

let element_load s p u =
  let acc = ref 0. in
  Array.iteri (fun i q -> if Quorum.mem q u then acc := !acc +. p.(i)) (Quorum.quorums s);
  !acc

let loads s p =
  let l = Array.make (Quorum.universe s) 0. in
  Array.iteri
    (fun i q -> Array.iter (fun u -> l.(u) <- l.(u) +. p.(i)) q)
    (Quorum.quorums s);
  l

let system_load s p = Array.fold_left Float.max 0. (loads s p)

let total_load s p = Array.fold_left ( +. ) 0. (loads s p)

let sample rng p = Qp_util.Rng.categorical rng p

let reweight p w =
  let scaled =
    Array.mapi
      (fun i x ->
        let f = w i in
        if f < 0. then invalid_arg "Strategy.reweight: negative weight factor";
        x *. f)
      p
  in
  let total = Array.fold_left ( +. ) 0. scaled in
  if total <= 1e-12 then None else Some (Array.map (fun x -> x /. total) scaled)

let mix p q lambda =
  if Array.length p <> Array.length q then invalid_arg "Strategy.mix: length mismatch";
  if lambda < 0. || lambda > 1. then invalid_arg "Strategy.mix: lambda out of range";
  Array.init (Array.length p) (fun i -> (lambda *. p.(i)) +. ((1. -. lambda) *. q.(i)))
