(** Access strategies.

    An access strategy [p] is a probability distribution over the
    quorums of a system (Section 1). It induces the load
    [load(u) = sum over quorums containing u of p(Q)] on each element
    (Section 1.2), the quantity the placement problem packs against
    node capacities. *)

type t = float array
(** [t.(i)] is the probability of accessing quorum [i]. *)

val validate : Quorum.system -> t -> unit
(** @raise Invalid_argument unless lengths match, entries are
    non-negative, and the entries sum to 1 (tolerance 1e-9). *)

val uniform : Quorum.system -> t

val of_weights : Quorum.system -> float array -> t
(** Normalizes non-negative weights with positive sum. *)

val element_load : Quorum.system -> t -> int -> float
val loads : Quorum.system -> t -> float array
(** Per-element loads; [loads s p].(u) = load(u). *)

val system_load : Quorum.system -> t -> float
(** Max element load — the quantity minimized by the quorum-systems
    literature [Naor–Wool]. *)

val total_load : Quorum.system -> t -> float
(** Sum of element loads = expected accessed quorum size. *)

val sample : Qp_util.Rng.t -> t -> int
(** Draws a quorum index from the distribution. *)

val reweight : t -> (int -> float) -> t option
(** [reweight p w] multiplies each [p.(i)] by the non-negative factor
    [w i] and renormalizes — the primitive behind adaptive access
    strategies that steer probability away from quorums on unhealthy
    nodes. [None] when the surviving mass is (numerically) zero, i.e.
    every quorum with positive probability was fully down-weighted.
    @raise Invalid_argument on a negative factor. *)

val mix : t -> t -> float -> t
(** [mix p q lambda] = lambda p + (1-lambda) q; used by the
    "average of client strategies" extension in Section 6. *)
