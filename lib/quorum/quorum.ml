type quorum = int array

type system = { universe : int; quorums : quorum array }

let normalize_quorum ~universe q =
  let sorted = Array.copy q in
  Array.sort compare sorted;
  let dedup = ref [] in
  Array.iter
    (fun v ->
      if v < 0 || v >= universe then invalid_arg "Quorum.make: element out of range";
      match !dedup with w :: _ when w = v -> () | _ -> dedup := v :: !dedup)
    sorted;
  let arr = Array.of_list (List.rev !dedup) in
  if Array.length arr = 0 then invalid_arg "Quorum.make: empty quorum";
  arr

let mem q v =
  let lo = ref 0 and hi = ref (Array.length q - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if q.(mid) = v then found := true
    else if q.(mid) < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let intersect a b =
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na || j >= nb then false
    else if a.(i) = b.(j) then true
    else if a.(i) < b.(j) then go (i + 1) j
    else go i (j + 1)
  in
  go 0 0

let intersection a b =
  let na = Array.length a and nb = Array.length b in
  let acc = ref [] in
  let rec go i j =
    if i < na && j < nb then
      if a.(i) = b.(j) then begin
        acc := a.(i) :: !acc;
        go (i + 1) (j + 1)
      end
      else if a.(i) < b.(j) then go (i + 1) j
      else go i (j + 1)
  in
  go 0 0;
  Array.of_list (List.rev !acc)

let make_unchecked ~universe quorums =
  if universe <= 0 then invalid_arg "Quorum.make: universe must be positive";
  if Array.length quorums = 0 then invalid_arg "Quorum.make: empty family";
  { universe; quorums = Array.map (normalize_quorum ~universe) quorums }

let all_intersecting s =
  let m = Array.length s.quorums in
  let ok = ref true in
  (try
     for i = 0 to m - 1 do
       for j = i + 1 to m - 1 do
         if not (intersect s.quorums.(i) s.quorums.(j)) then begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !ok

let make ~universe quorums =
  let s = make_unchecked ~universe quorums in
  if not (all_intersecting s) then
    invalid_arg "Quorum.make: family is not pairwise intersecting";
  s

let make_checked ~universe quorums =
  Qp_util.Qp_error.of_invalid_arg (fun () -> make ~universe quorums)

let universe s = s.universe

let quorums s = s.quorums

let n_quorums s = Array.length s.quorums

let quorum s i = s.quorums.(i)

let quorum_size s i = Array.length s.quorums.(i)

let element_quorums s v =
  let acc = ref [] in
  Array.iteri (fun i q -> if mem q v then acc := i :: !acc) s.quorums;
  List.rev !acc

let subset a b = Array.for_all (fun v -> mem b v) a

let is_coterie s =
  let m = Array.length s.quorums in
  let ok = ref true in
  (try
     for i = 0 to m - 1 do
       for j = 0 to m - 1 do
         if i <> j && subset s.quorums.(i) s.quorums.(j) then begin
           ok := false;
           raise Exit
         end
       done
     done
   with Exit -> ());
  !ok

let degree s =
  let d = Array.make s.universe 0 in
  Array.iter (fun q -> Array.iter (fun v -> d.(v) <- d.(v) + 1) q) s.quorums;
  d

let pp ppf s =
  Format.fprintf ppf "quorum-system(universe=%d, quorums=%d)" s.universe
    (Array.length s.quorums)
