(** Quorum systems over an integer universe.

    A quorum system over [U = {0, ..., universe-1}] is a non-empty
    family of non-empty subsets of [U], every two of which intersect
    (Section 1 of the paper). Quorums are stored as sorted arrays of
    distinct element ids. *)

type quorum = int array
(** Sorted, duplicate-free element ids. *)

type system
(** A validated quorum system. *)

val make : universe:int -> int array array -> system
(** [make ~universe quorums] sorts, deduplicates and validates.
    @raise Invalid_argument if the family is empty, a quorum is empty
    or out of range, or two quorums fail to intersect. *)

val make_checked :
  universe:int -> int array array -> (system, Qp_util.Qp_error.t) result
(** Like {!make}, but user-input validation failures come back as
    [Error (Invalid_instance _)] instead of an exception — the entry
    point for systems built from untrusted data (instance files,
    CLI-provided constructions). *)

val make_unchecked : universe:int -> int array array -> system
(** Same normalization but skips the O(m^2) pairwise intersection
    check. Use only for constructions whose intersection property is
    proved (e.g. Majority), and cover them with tests. *)

val universe : system -> int
val quorums : system -> quorum array
val n_quorums : system -> int
val quorum : system -> int -> quorum
val quorum_size : system -> int -> int

val mem : quorum -> int -> bool
(** Binary search. *)

val intersect : quorum -> quorum -> bool
val intersection : quorum -> quorum -> int array

val element_quorums : system -> int -> int list
(** Indices of quorums containing a given element. *)

val all_intersecting : system -> bool
(** Re-runs the full pairwise check (test helper). *)

val is_coterie : system -> bool
(** True when no quorum contains another (minimality / antichain). *)

val degree : system -> int array
(** [degree s] maps each element to the number of quorums containing
    it. *)

val pp : Format.formatter -> system -> unit
