(** Read/write quorum systems: asymmetric access over one universe.

    The paper's model has a single quorum family and one access
    strategy. Real replicated stores (and the quoracle line of work)
    distinguish {e read} quorums from {e write} quorums over the same
    universe: reads need not intersect each other, but every read must
    intersect every write (a read sees the latest write) and writes
    must pairwise intersect (writes serialize). A workload is then a
    {e read fraction} rho: accesses draw a read quorum with
    probability rho and a write quorum with probability 1 - rho.

    {!combined} flattens a read/write system into an ordinary
    {!Quorum.system} (reads first, then writes) and {!mixed} builds the
    rho-weighted strategy over it, so the whole existing pipeline —
    loads, placement LP, delay functionals, simulation — runs on
    read/write workloads unchanged: the objective becomes the
    read/write-weighted delay.

    Reductions (qcheck-verified): a {!of_system} (shared) instance with
    [read = write = p] yields a mixed strategy bitwise equal to [p] at
    [read_fraction] 1.0 and 0.5, so the symmetric corner reproduces
    today's behavior byte-for-byte. *)

type t

val of_system : Quorum.system -> t
(** The symmetric embedding: reads = writes = the given family. The
    mixed strategy stays on the original system (same quorum count),
    preserving byte-identity with the single-strategy path. *)

val make :
  reads:Quorum.system -> writes:Quorum.system -> (t, Qp_util.Qp_error.t) result
(** Validates: equal universes, writes pairwise intersecting, every
    read intersecting every write. Reads need NOT intersect each
    other. *)

val rowa : int -> t
(** Read-one-write-all on [n] elements: singleton reads, one full-set
    write quorum. @raise Invalid_argument when [n < 1]. *)

val grid : int -> t
(** Grid read/write protocol on a k x k universe: reads are the k rows
    (k elements each), write quorum [i] is row [i] + column [i]
    (2k - 1 elements). @raise Invalid_argument when [k < 1]. *)

val majority :
  n:int -> r:int -> w:int -> (t, Qp_util.Qp_error.t) result
(** Weighted-majority reads/writes: all r-subsets read, all w-subsets
    write; requires [r + w > n] and [2w > n]. Enumerated (small n). *)

val of_string_opt : string -> (t, Qp_util.Qp_error.t) result option
(** The asymmetric-family name grammar ({!rw_names}): ["rw-grid:K"],
    ["rowa:N"], ["rw-majority:N:R:W"]. [None] when the name is not an
    rw family — callers fall back to the plain system grammar and
    {!of_system}. *)

val rw_names : string
(** Human-readable grammar summary for diagnostics. *)

val reads : t -> Quorum.system
val writes : t -> Quorum.system
val is_shared : t -> bool
val universe : t -> int
val n_reads : t -> int
val n_writes : t -> int

val combined : t -> Quorum.system
(** The flattened family the placement pipeline consumes: the original
    system when shared, else reads followed by writes (read quorum [i]
    is combined quorum [i], write quorum [j] is combined quorum
    [n_reads + j]). Built with [make_unchecked]: read-read pairs need
    not intersect by design; the safety property is what {!make}
    validated and {!intersection_ok} re-checks. *)

val read_indices : t -> int array
val write_indices : t -> int array
(** Index sets of the two sides within {!combined} (both equal to the
    full index range when shared). *)

val intersection_ok : t -> bool
(** Re-runs the full safety check (write-write and read-write
    intersection) — test helper and scenario assertion. *)

val mixed :
  t -> read:Strategy.t -> write:Strategy.t -> read_fraction:float -> Strategy.t
(** [rho * read + (1 - rho) * write] over {!combined}. Shared systems
    use {!Strategy.mix} (exact reductions at rho = 1.0 / 0.5 with
    pointwise-equal strategies); asymmetric ones concatenate the
    rho-scaled sides. @raise Invalid_argument on an out-of-range
    fraction or a strategy invalid for its side. *)

val read_only : t -> read:Strategy.t -> Strategy.t
(** The read distribution as a strategy over {!combined} (zero write
    mass): evaluating a delay functional under it gives the placement's
    pure read latency. *)

val write_only : t -> write:Strategy.t -> Strategy.t

val uniform_read : t -> Strategy.t
val uniform_write : t -> Strategy.t

val pp : Format.formatter -> t -> unit
