module Qp_error = Qp_util.Qp_error

type t = {
  shared : Quorum.system option;
      (* [Some s] when reads and writes are the same family — the
         symmetric case, where the mixed strategy stays on the original
         system so downstream problems are byte-identical to the
         historical single-strategy path. *)
  reads : Quorum.system;
  writes : Quorum.system;
}

let reads t = t.reads
let writes t = t.writes
let is_shared t = t.shared <> None

let universe t = Quorum.universe t.reads

let of_system s = { shared = Some s; reads = s; writes = s }

let cross_intersecting ~reads ~writes =
  Array.for_all
    (fun r -> Array.for_all (fun w -> Quorum.intersect r w) (Quorum.quorums writes))
    (Quorum.quorums reads)

let make ~reads ~writes =
  if Quorum.universe reads <> Quorum.universe writes then
    Qp_error.invalid_instancef
      "Rw_qs.make: read and write universes differ (%d vs %d)"
      (Quorum.universe reads) (Quorum.universe writes)
  else if not (Quorum.all_intersecting writes) then
    Qp_error.invalid_instancef
      "Rw_qs.make: write quorums must be pairwise intersecting"
  else if not (cross_intersecting ~reads ~writes) then
    Qp_error.invalid_instancef
      "Rw_qs.make: some read quorum misses some write quorum"
  else Ok { shared = None; reads; writes }

let intersection_ok t =
  Quorum.all_intersecting t.writes && cross_intersecting ~reads:t.reads ~writes:t.writes

(* ------------------------------------------------------------------ *)
(* Constructions                                                       *)
(* ------------------------------------------------------------------ *)

(* Read-one-write-all: reads are singletons (no read-read intersection
   — the point of the asymmetric model), the single write quorum is the
   full universe. *)
let rowa n =
  if n < 1 then invalid_arg "Rw_qs.rowa: n >= 1 required";
  let reads =
    Quorum.make_unchecked ~universe:n (Array.init n (fun v -> [| v |]))
  in
  let writes =
    Quorum.make_unchecked ~universe:n [| Array.init n (fun v -> v) |]
  in
  { shared = None; reads; writes }

(* Grid read/write protocol on a k x k universe: a read quorum is one
   row (k elements); write quorum i is row i plus column i (2k - 1
   elements). Write-write: row_i crosses col_j at (i, j); read-write:
   row_i crosses col_j at (i, j). Reads are lighter than writes, so a
   read-heavy mix concentrates mass on k-element quorums — the
   asymmetry the scenario experiments exercise. *)
let grid k =
  if k < 1 then invalid_arg "Rw_qs.grid: k >= 1 required";
  let universe = k * k in
  let row i = Array.init k (fun c -> (i * k) + c) in
  let col j = Array.init k (fun r -> (r * k) + j) in
  let reads = Quorum.make_unchecked ~universe (Array.init k row) in
  let writes =
    Quorum.make_unchecked ~universe
      (Array.init k (fun i -> Array.append (row i) (col i)))
  in
  { shared = None; reads; writes }

(* Majority read/write: reads are all r-subsets, writes all w-subsets;
   r + w > n makes every read see the latest write, 2w > n serializes
   writes. Enumerated, so small n only (the Majority_qs bound). *)
let majority ~n ~r ~w =
  if n < 1 then Qp_error.invalid_instancef "Rw_qs.majority: n >= 1 required"
  else if r < 1 || r > n || w < 1 || w > n then
    Qp_error.invalid_instancef
      "Rw_qs.majority: need 1 <= r, w <= n (got r=%d w=%d n=%d)" r w n
  else if r + w <= n then
    Qp_error.invalid_instancef
      "Rw_qs.majority: r + w > n required for read/write intersection \
       (got r=%d w=%d n=%d)"
      r w n
  else if 2 * w <= n then
    Qp_error.invalid_instancef
      "Rw_qs.majority: 2w > n required for write/write intersection \
       (got w=%d n=%d)"
      w n
  else
    Qp_error.guard @@ fun () ->
    let subsets k =
      let acc = ref [] in
      Qp_util.Combin.choose_iter n k (fun s -> acc := Array.of_list s :: !acc);
      Array.of_list (List.rev !acc)
    in
    let reads = Quorum.make_unchecked ~universe:n (subsets r) in
    let writes = Quorum.make_unchecked ~universe:n (subsets w) in
    Ok { shared = None; reads; writes }

(* ------------------------------------------------------------------ *)
(* The combined system and read/write-weighted strategies              *)
(* ------------------------------------------------------------------ *)

(* In the shared case the combined system IS the original system: a
   mixed strategy stays a length-m distribution over it, so problems
   built from it are byte-identical to the historical path (the
   read_fraction = 1.0 and symmetric-0.5 reductions in the tests). In
   the asymmetric case the combined family lists reads then writes;
   read-read pairs need not intersect, which is why this goes through
   [make_unchecked] — the safety property (write-write and read-write
   intersection) is validated by [make] and re-checkable via
   {!intersection_ok}. *)
let combined t =
  match t.shared with
  | Some s -> s
  | None ->
      Quorum.make_unchecked ~universe:(universe t)
        (Array.append (Quorum.quorums t.reads) (Quorum.quorums t.writes))

let n_reads t = Quorum.n_quorums t.reads
let n_writes t = Quorum.n_quorums t.writes

let read_indices t =
  match t.shared with
  | Some s -> Array.init (Quorum.n_quorums s) (fun i -> i)
  | None -> Array.init (n_reads t) (fun i -> i)

let write_indices t =
  match t.shared with
  | Some s -> Array.init (Quorum.n_quorums s) (fun i -> i)
  | None -> Array.init (n_writes t) (fun i -> n_reads t + i)

let check_fraction rho =
  if not (Float.is_finite rho) || rho < 0. || rho > 1. then
    invalid_arg "Rw_qs: read_fraction must be in [0, 1]"

let check_strategy name s p =
  if Array.length p <> Quorum.n_quorums s then
    invalid_arg ("Rw_qs: " ^ name ^ " strategy length mismatch");
  Strategy.validate s p

(* rho * read + (1 - rho) * write, over [combined t]. Shared systems
   take the exact [Strategy.mix] path: with read == write (pointwise)
   the result is bitwise equal to the inputs for rho = 1.0 (1*x + 0*x)
   and rho = 0.5 (0.5*x + 0.5*x), the reduction properties qcheck
   verifies. *)
let mixed t ~read ~write ~read_fraction =
  check_fraction read_fraction;
  check_strategy "read" t.reads read;
  check_strategy "write" t.writes write;
  match t.shared with
  | Some _ -> Strategy.mix read write read_fraction
  | None ->
      Array.append
        (Array.map (fun x -> read_fraction *. x) read)
        (Array.map (fun x -> (1. -. read_fraction) *. x) write)

(* The read-only (write-only) view over the combined family: the given
   side's distribution in its slots, zero mass in the other side's.
   Evaluating [Delay.avg_max_delay] under these gives the pure read
   (write) latency of a placement — the quantity the E20 experiment
   compares across placements. *)
let read_only t ~read =
  check_strategy "read" t.reads read;
  match t.shared with
  | Some _ -> Array.copy read
  | None -> Array.append read (Array.make (n_writes t) 0.)

let write_only t ~write =
  check_strategy "write" t.writes write;
  match t.shared with
  | Some _ -> Array.copy write
  | None -> Array.append (Array.make (n_reads t) 0.) write

let uniform_read t = Strategy.uniform t.reads
let uniform_write t = Strategy.uniform t.writes

(* ------------------------------------------------------------------ *)
(* Name grammar (scenario spec files and tests)                        *)
(* ------------------------------------------------------------------ *)

let rw_names = "rw-grid:K|rowa:N|rw-majority:N:R:W"

(* Only the asymmetric families live here; a plain system name is the
   symmetric embedding, which the scenario layer resolves through
   [Spec.build_system] + {!of_system} (the instance layer sits above
   this library). [None] means "not an rw name — try the plain
   grammar". *)
let of_string_opt name =
  let pint s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None ->
        Qp_error.invalid_instancef "bad integer %S in rw system %S" s name
  in
  let ( let* ) = Qp_error.( let* ) in
  match String.split_on_char ':' name with
  | [ "rw-grid"; k ] ->
      Some
        (let* k = pint k in
         Qp_error.of_invalid_arg (fun () -> grid k))
  | [ "rowa"; n ] ->
      Some
        (let* n = pint n in
         Qp_error.of_invalid_arg (fun () -> rowa n))
  | [ "rw-majority"; n; r; w ] ->
      Some
        (let* n = pint n in
         let* r = pint r in
         let* w = pint w in
         majority ~n ~r ~w)
  | _ -> None

let pp ppf t =
  Format.fprintf ppf "rw-system(universe=%d, reads=%d, writes=%d%s)"
    (universe t) (n_reads t) (n_writes t)
    (if is_shared t then ", shared" else "")
