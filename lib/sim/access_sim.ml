module Rng = Qp_util.Rng
module Stats = Qp_util.Stats
module Obs = Qp_obs
module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Problem = Qp_place.Problem
module Placement = Qp_place.Placement
module Delay = Qp_place.Delay

type protocol = Parallel | Sequential

type service = Zero | Fixed of float | Exponential of float

type config = {
  problem : Problem.qpp;
  placement : Placement.t;
  protocol : protocol;
  round_trip : bool;
  service : service;
  jitter : float;
  accesses_per_client : int;
  arrival_rate : float;
  seed : int;
}

let default_config ~problem ~placement =
  {
    problem;
    placement;
    protocol = Parallel;
    round_trip = false;
    service = Zero;
    jitter = 0.;
    accesses_per_client = 200;
    arrival_rate = 1.0;
    seed = 1;
  }

type report = {
  n_accesses : int;
  mean_delay : float;
  delay_summary : Stats.summary;
  per_client_mean : float array;
  node_probes : int array;
  empirical_node_load : float array;
  analytic_delay : float;
  relative_error : float;
  makespan : float;
}

type state = {
  cfg : config;
  rng : Rng.t;
  node_free_at : float array; (* FIFO single-server per node *)
  node_probes : int array;
  delays : float Queue.t;
  per_client : Stats.online array;
  delay_hist : Obs.Metrics.histogram;
  mutable completed : int;
  mutable makespan : float;
}

let link_latency st v w =
  let base = Metric.dist st.cfg.problem.Problem.metric v w in
  if st.cfg.jitter > 0. then base *. (1. +. Rng.float st.rng st.cfg.jitter) else base

let service_time st =
  match st.cfg.service with
  | Zero -> 0.
  | Fixed s -> s
  | Exponential mean -> Rng.exponential st.rng (1. /. mean)

(* [t0] is the access start time: the completion instant [t0 + delay]
   may lie beyond the current event (one-way mode computes it
   analytically), so the makespan is tracked here rather than read off
   the event clock after [Sim.run]. *)
let record st ~t0 client delay =
  Queue.add delay st.delays;
  Stats.online_add st.per_client.(client) delay;
  Obs.Metrics.observe st.delay_hist delay;
  st.completed <- st.completed + 1;
  if t0 +. delay > st.makespan then st.makespan <- t0 +. delay

(* Serve a probe arriving now at [node] (FIFO single server); returns
   the service completion time. Must be called from an event handler
   executing at the arrival instant so that [node_free_at] is updated
   in arrival order. *)
let serve st sim node =
  let start = Float.max (Sim.now sim) st.node_free_at.(node) in
  let finish = start +. service_time st in
  st.node_free_at.(node) <- finish;
  finish

let perform_access st sim client =
  let qi = Strategy.sample st.rng st.cfg.problem.Problem.strategy in
  let q = Quorum.quorum st.cfg.problem.Problem.system qi in
  let t0 = Sim.now sim in
  match st.cfg.protocol with
  | Parallel ->
      if not st.cfg.round_trip then begin
        (* One-way analytic mode: completion = slowest probe arrival. *)
        let finish =
          Array.fold_left
            (fun acc u ->
              let node = st.cfg.placement.(u) in
              st.node_probes.(node) <- st.node_probes.(node) + 1;
              Float.max acc (t0 +. link_latency st client node))
            t0 q
        in
        record st ~t0 client (finish -. t0)
      end
      else begin
        let pending = ref (Array.length q) in
        let latest = ref t0 in
        Array.iter
          (fun u ->
            let node = st.cfg.placement.(u) in
            st.node_probes.(node) <- st.node_probes.(node) + 1;
            let arrive = t0 +. link_latency st client node in
            Sim.schedule sim arrive (fun sim ->
                let finish = serve st sim node in
                let back = finish +. link_latency st node client in
                if back > !latest then latest := back;
                decr pending;
                if !pending = 0 then record st ~t0 client (!latest -. t0)))
          q
      end
  | Sequential ->
      let len = Array.length q in
      if not st.cfg.round_trip then begin
        (* One-way analytic mode: sum of bare latencies (Gamma). *)
        let total =
          Array.fold_left
            (fun acc u ->
              let node = st.cfg.placement.(u) in
              st.node_probes.(node) <- st.node_probes.(node) + 1;
              acc +. link_latency st client node)
            0. q
        in
        record st ~t0 client total
      end
      else begin
        let rec visit idx depart =
          if idx = len then record st ~t0 client (depart -. t0)
          else begin
            let node = st.cfg.placement.(q.(idx)) in
            st.node_probes.(node) <- st.node_probes.(node) + 1;
            let arrive = depart +. link_latency st client node in
            Sim.schedule sim arrive (fun sim ->
                let finish = serve st sim node in
                let back = finish +. link_latency st node client in
                (* Continue at the moment the reply returns. *)
                Sim.schedule sim back (fun _ -> visit (idx + 1) back))
          end
        in
        visit 0 t0
      end

let client_rates (p : Problem.qpp) =
  match p.Problem.client_rates with
  | Some r -> r
  | None -> Array.make (Problem.n_nodes p) 1.

let run cfg =
  Placement.validate cfg.problem cfg.placement;
  if cfg.accesses_per_client <= 0 then
    invalid_arg "Access_sim.run: accesses_per_client must be positive";
  if cfg.arrival_rate <= 0. then invalid_arg "Access_sim.run: arrival_rate must be positive";
  let n = Problem.n_nodes cfg.problem in
  Obs.Span.with_ "access_sim_run"
    ~attrs:
      [ ("n", Obs.Json.Int n); ("seed", Obs.Json.Int cfg.seed);
        ( "protocol",
          Obs.Json.String
            (match cfg.protocol with Parallel -> "parallel" | Sequential -> "sequential") ) ]
  @@ fun () ->
  let st =
    {
      cfg;
      rng = Rng.create cfg.seed;
      node_free_at = Array.make n 0.;
      node_probes = Array.make n 0;
      delays = Queue.create ();
      per_client = Array.init n (fun _ -> Stats.online_create ());
      delay_hist =
        Obs.Metrics.histogram ~help:"Per-access delay (max or total per protocol)"
          (Obs.Metrics.current ()) "qp_sim_access_delay";
      completed = 0;
      makespan = 0.;
    }
  in
  let sim = Sim.create () in
  let rates = client_rates cfg.problem in
  let mean_rate =
    let positive = Array.of_list (List.filter (fun r -> r > 0.) (Array.to_list rates)) in
    if Array.length positive = 0 then invalid_arg "Access_sim.run: all client rates zero"
    else Stats.mean positive
  in
  (* Each client's access count is proportional to its rate so the
     per-access mean matches the rate-weighted analytic average. *)
  for client = 0 to n - 1 do
    if rates.(client) > 0. then begin
      let rate = cfg.arrival_rate *. rates.(client) in
      let count =
        Stdlib.max 1
          (int_of_float
             (Float.round (float_of_int cfg.accesses_per_client *. rates.(client) /. mean_rate)))
      in
      let remaining = ref count in
      let rec arrival sim =
        perform_access st sim client;
        decr remaining;
        if !remaining > 0 then Sim.schedule_in sim (Rng.exponential st.rng rate) arrival
      in
      Sim.schedule sim (Rng.exponential st.rng rate) arrival
    end
  done;
  Sim.run sim;
  let delays = Array.of_seq (Queue.to_seq st.delays) in
  let analytic =
    match cfg.protocol with
    | Parallel -> Delay.avg_max_delay cfg.problem cfg.placement
    | Sequential -> Delay.avg_total_delay cfg.problem cfg.placement
  in
  let mean = if Array.length delays = 0 then 0. else Stats.mean delays in
  let cnt = Obs.Metrics.counter ~help:"Simulated accesses" (Obs.Metrics.current ())
      "qp_sim_accesses_total" in
  Obs.Metrics.add cnt (float_of_int st.completed);
  Obs.Metrics.set
    (Obs.Metrics.gauge ~help:"Mean simulated access delay" (Obs.Metrics.current ())
       "qp_sim_mean_delay")
    mean;
  Obs.Metrics.set
    (Obs.Metrics.gauge ~help:"Analytic expected delay of the placement"
       (Obs.Metrics.current ()) "qp_sim_analytic_delay")
    analytic;
  Obs.Span.add_attr "accesses" (Obs.Json.Int st.completed);
  Obs.Span.add_attr "mean_delay" (Obs.Json.Float mean);
  Obs.Span.add_attr "analytic_delay" (Obs.Json.Float analytic);
  {
    n_accesses = st.completed;
    mean_delay = mean;
    delay_summary = Stats.summarize delays;
    per_client_mean = Array.map Stats.online_mean st.per_client;
    node_probes = Array.copy st.node_probes;
    empirical_node_load =
      Array.map (fun c -> float_of_int c /. float_of_int st.completed) st.node_probes;
    analytic_delay = analytic;
    relative_error =
      (if analytic = 0. then if mean = 0. then 0. else infinity
       else Float.abs (mean -. analytic) /. analytic);
    makespan = st.makespan;
  }
