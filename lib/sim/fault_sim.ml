module Rng = Qp_util.Rng
module Obs = Qp_obs
module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Problem = Qp_place.Problem
module Placement = Qp_place.Placement
module Failure = Qp_runtime.Failure
module Retry = Qp_runtime.Retry

type failure_model = Failure.model =
  | Static of float
  | Dynamic of { mtbf : float; mttr : float }

type config = {
  problem : Problem.qpp;
  placement : Placement.t;
  failure_model : failure_model;
  retry : Retry.t;
  accesses_per_client : int;
  arrival_rate : float;
  seed : int;
}

let default_config ~problem ~placement ~failure_model =
  {
    problem;
    placement;
    failure_model;
    retry =
      Retry.fixed ~timeout:(4. *. Metric.diameter problem.Problem.metric) ~max_attempts:3;
    accesses_per_client = 200;
    arrival_rate = 1.0;
    seed = 1;
  }

type report = {
  n_accesses : int;
  n_success : int;
  availability : float;
  predicted_success : float;
  mean_delay_success : float;
  mean_attempts : float;
  attempt_histogram : int array;
}

let distinct_nodes_of_quorum cfg qi =
  let q = Quorum.quorum cfg.problem.Problem.system qi in
  List.sort_uniq compare (Array.to_list (Array.map (fun u -> cfg.placement.(u)) q))

let iid_success_probability cfg =
  match cfg.failure_model with
  | Dynamic _ -> invalid_arg "Fault_sim.iid_success_probability: Static model only"
  | Static p ->
      let s = ref 0. in
      Array.iteri
        (fun qi pq ->
          if pq > 0. then begin
            let k = List.length (distinct_nodes_of_quorum cfg qi) in
            s := !s +. (pq *. ((1. -. p) ** float_of_int k))
          end)
        cfg.problem.Problem.strategy;
      !s

let predicted cfg =
  let attempts = float_of_int cfg.retry.Retry.max_attempts in
  match cfg.failure_model with
  | Static _ ->
      let s = iid_success_probability cfg in
      1. -. ((1. -. s) ** attempts)
  | Dynamic _ ->
      (* Steady-state node availability, used in the same iid formula;
         an optimistic reference point for the correlated process. *)
      let avail = Failure.node_availability cfg.failure_model in
      let s = ref 0. in
      Array.iteri
        (fun qi pq ->
          if pq > 0. then begin
            let k = List.length (distinct_nodes_of_quorum cfg qi) in
            s := !s +. (pq *. (avail ** float_of_int k))
          end)
        cfg.problem.Problem.strategy;
      1. -. ((1. -. !s) ** attempts)

(* One client access under the Static model: pure computation. Failed
   attempts burn the attempt timeout plus the policy's (jittered)
   backoff before the next try. *)
let static_access cfg rng p client =
  let timeout = cfg.retry.Retry.timeout in
  let rec attempt k spent =
    let qi = Strategy.sample rng cfg.problem.Problem.strategy in
    let nodes = distinct_nodes_of_quorum cfg qi in
    let all_up = List.for_all (fun _ -> Rng.uniform rng >= p) nodes in
    let q = Quorum.quorum cfg.problem.Problem.system qi in
    let delay =
      Array.fold_left
        (fun acc u ->
          Float.max acc (Metric.dist cfg.problem.Problem.metric client cfg.placement.(u)))
        0. q
    in
    if all_up && delay <= timeout +. 1e-12 then Some (k, spent +. delay)
    else if k >= cfg.retry.Retry.max_attempts then None
    else
      attempt (k + 1) (spent +. timeout +. Retry.backoff_delay cfg.retry rng ~attempt:k)
  in
  attempt 1 0.

type dyn_state = {
  up : bool array;
  mutable successes : int;
  mutable delays_sum : float;
  mutable attempts_total : int;
  mutable resolved : int; (* accesses that ended (success or give-up) *)
  mutable expected : int; (* accesses that will be issued in total *)
  histogram : int array;
}

let run_dynamic cfg =
  let n = Problem.n_nodes cfg.problem in
  let rng = Rng.create cfg.seed in
  (* Churn and arrivals get their own streams, derived from the seed
     the same way in every simulator: at equal seeds the failure
     trajectory and the access times are bit-identical no matter how
     the workload consumes randomness, so static/adaptive comparisons
     are paired. *)
  let churn_rng = Rng.split rng in
  let arrival_rng = Rng.split rng in
  let sim = Sim.create () in
  let timeout = cfg.retry.Retry.timeout in
  let st =
    {
      up = Array.make n true;
      successes = 0;
      delays_sum = 0.;
      attempts_total = 0;
      resolved = 0;
      expected = 0;
      histogram = Array.make cfg.retry.Retry.max_attempts 0;
    }
  in
  (* Crash/repair alternation per node (the shared churn process). *)
  Failure.install_churn cfg.failure_model ~n ~rng:churn_rng ~up:st.up sim;
  let accesses = ref 0 in
  let metric = cfg.problem.Problem.metric in
  (* One access attempt: probes arrive at their nodes; each probe
     checks liveness AT ARRIVAL TIME. The attempt resolves when the
     slowest probe arrives (success needs all alive). *)
  let rec attempt client k start0 t0 sim =
    let qi = Strategy.sample rng cfg.problem.Problem.strategy in
    let q = Quorum.quorum cfg.problem.Problem.system qi in
    let pending = ref (Array.length q) in
    let ok = ref true in
    let latest = ref t0 in
    Array.iter
      (fun u ->
        let node = cfg.placement.(u) in
        let arrive = t0 +. Metric.dist metric client node in
        if arrive > !latest then latest := arrive;
        Sim.schedule sim arrive (fun sim ->
            if not st.up.(node) then ok := false;
            decr pending;
            if !pending = 0 then resolve client k start0 t0 !ok !latest sim))
      q
  and resolve client k start0 t0 ok finished sim =
    st.attempts_total <- st.attempts_total + 1;
    let within_timeout = finished -. t0 <= timeout +. 1e-12 in
    if ok && within_timeout then begin
      st.successes <- st.successes + 1;
      (* Completion delay measured from the original access start, so
         timeouts burned by failed attempts count. *)
      st.delays_sum <- st.delays_sum +. (finished -. start0);
      st.histogram.(k - 1) <- st.histogram.(k - 1) + 1;
      finish sim
    end
    else if k < cfg.retry.Retry.max_attempts then begin
      (* Retry once the timeout since attempt start expires, plus the
         policy's backoff. *)
      let pause = Retry.backoff_delay cfg.retry rng ~attempt:k in
      Sim.schedule sim (Float.max finished (t0 +. timeout) +. pause) (fun sim ->
          attempt client (k + 1) start0 (Sim.now sim) sim)
    end
    else finish sim
  and finish sim =
    st.resolved <- st.resolved + 1;
    (* The crash/repair processes regenerate forever; stop the engine
       once every access has been resolved. *)
    if st.resolved = st.expected then Sim.stop sim
  in
  let rates =
    match cfg.problem.Problem.client_rates with
    | Some r -> r
    | None -> Array.make n 1.
  in
  for client = 0 to n - 1 do
    if rates.(client) > 0. then begin
      st.expected <- st.expected + cfg.accesses_per_client;
      let remaining = ref cfg.accesses_per_client in
      let rec arrival sim =
        incr accesses;
        attempt client 1 (Sim.now sim) (Sim.now sim) sim;
        decr remaining;
        if !remaining > 0 then
          Sim.schedule_in sim (Rng.exponential arrival_rng cfg.arrival_rate) arrival
      in
      Sim.schedule sim (Rng.exponential arrival_rng cfg.arrival_rate) arrival
    end
  done;
  Sim.run sim;
  (st, !accesses)

(* Shared accounting for both the static and dynamic paths. *)
let emit_report_metrics report =
  let c name help v =
    Obs.Metrics.add (Obs.Metrics.counter ~help (Obs.Metrics.current ()) name) v
  in
  c "qp_fault_accesses_total" "Fault-injection accesses" (float_of_int report.n_accesses);
  c "qp_fault_successes_total" "Fault-injection successful accesses"
    (float_of_int report.n_success);
  Obs.Metrics.set
    (Obs.Metrics.gauge ~help:"Observed availability of the last fault-sim run"
       (Obs.Metrics.current ()) "qp_fault_availability")
    report.availability;
  Obs.Span.add_attr "accesses" (Obs.Json.Int report.n_accesses);
  Obs.Span.add_attr "availability" (Obs.Json.Float report.availability);
  Obs.Span.add_attr "mean_attempts" (Obs.Json.Float report.mean_attempts);
  report

let run cfg =
  Placement.validate cfg.problem cfg.placement;
  Retry.validate cfg.retry;
  Failure.validate cfg.failure_model;
  Obs.Span.with_ "fault_sim_run"
    ~attrs:
      [ ("seed", Obs.Json.Int cfg.seed);
        ( "failure_model",
          Obs.Json.String
            (match cfg.failure_model with Static _ -> "static" | Dynamic _ -> "dynamic") ) ]
  @@ fun () ->
  emit_report_metrics
  @@
  match cfg.failure_model with
  | Static p ->
      let n = Problem.n_nodes cfg.problem in
      let rng = Rng.create cfg.seed in
      let histogram = Array.make cfg.retry.Retry.max_attempts 0 in
      let successes = ref 0 in
      let delays_sum = ref 0. in
      let attempts_total = ref 0 in
      let accesses = ref 0 in
      for client = 0 to n - 1 do
        for _ = 1 to cfg.accesses_per_client do
          incr accesses;
          match static_access cfg rng p client with
          | Some (k, delay) ->
              incr successes;
              delays_sum := !delays_sum +. delay;
              attempts_total := !attempts_total + k;
              histogram.(k - 1) <- histogram.(k - 1) + 1
          | None -> attempts_total := !attempts_total + cfg.retry.Retry.max_attempts
        done
      done;
      {
        n_accesses = !accesses;
        n_success = !successes;
        availability = float_of_int !successes /. float_of_int !accesses;
        predicted_success = predicted cfg;
        mean_delay_success =
          (if !successes = 0 then 0. else !delays_sum /. float_of_int !successes);
        mean_attempts = float_of_int !attempts_total /. float_of_int !accesses;
        attempt_histogram = histogram;
      }
  | Dynamic _ ->
      let st, accesses = run_dynamic cfg in
      {
        n_accesses = accesses;
        n_success = st.successes;
        availability = float_of_int st.successes /. float_of_int accesses;
        predicted_success = predicted cfg;
        mean_delay_success =
          (if st.successes = 0 then 0. else st.delays_sum /. float_of_int st.successes);
        mean_attempts = float_of_int st.attempts_total /. float_of_int accesses;
        attempt_histogram = st.histogram;
      }
