(** Minimal discrete-event simulation engine.

    Alias of {!Qp_runtime.Event} (see there for the semantics); kept
    under the historical [Qp_sim.Sim] name for the simulators built on
    top of it. *)

include module type of struct
  include Qp_runtime.Event
end
