(** Discrete-event simulation of quorum accesses over a placed quorum
    system.

    Clients (all network nodes, or rate-weighted) issue quorum
    accesses; each access samples a quorum from the access strategy
    and contacts the nodes hosting its elements. Two protocols:

    - [Parallel]: probes go out simultaneously; the access completes
      when the slowest element answers — the max-delay model
      (Eq. 1).
    - [Sequential]: elements are visited one after another — the
      total-delay model (Section 5).

    Link latency is the metric distance (optionally jittered); each
    node is a FIFO single server with configurable service time, so
    under load the simulation also exhibits the queueing the paper's
    capacity constraints exist to prevent.

    In the calibration configuration (one-way measurement, zero
    service, no jitter) the simulated mean delay equals the analytic
    [Avg_v Delta_f(v)] / [Avg_v Gamma_f(v)] exactly up to sampling
    noise — experiment E8. *)

type protocol = Parallel | Sequential

type service = Zero | Fixed of float | Exponential of float

type config = {
  problem : Qp_place.Problem.qpp;
  placement : Qp_place.Placement.t;
  protocol : protocol;
  round_trip : bool;
      (* if true, an element is "reached" when its reply returns and
         service time applies; if false, one-way probe arrival — the
         paper's analytic model *)
  service : service;
  jitter : float; (* each link latency is scaled by U[1, 1+jitter] *)
  accesses_per_client : int;
  arrival_rate : float; (* per-client Poisson rate *)
  seed : int;
}

val default_config :
  problem:Qp_place.Problem.qpp -> placement:Qp_place.Placement.t -> config
(** Calibration defaults: [Parallel], one-way, [Zero] service, no
    jitter, 200 accesses per client, rate 1.0, seed 1. *)

type report = {
  n_accesses : int;
  mean_delay : float;
  delay_summary : Qp_util.Stats.summary;
  per_client_mean : float array;
  node_probes : int array; (* probes handled per node *)
  empirical_node_load : float array; (* probes / accesses: estimates load_f *)
  analytic_delay : float; (* Avg Delta_f or Avg Gamma_f per protocol *)
  relative_error : float; (* |mean - analytic| / analytic (0 when analytic = 0) *)
  makespan : float;
      (* virtual time at which the last access completes; accesses /
         makespan is the simulated throughput of the run *)
}

val run : config -> report
