(* The event engine moved to Qp_runtime.Event so the closed-loop
   resilience engine can use it without depending on the simulators;
   this alias keeps the historical Qp_sim.Sim name working. *)
include Qp_runtime.Event
