(** Fault-injection simulation of quorum accesses.

    Extends the access model with node failures — the scenario quorum
    systems exist for. A client samples a quorum from the {e static}
    strategy, probes all its members in parallel, and succeeds when
    every member answers within the retry policy's timeout; if some
    member is down it retries with a freshly sampled quorum (paying
    the timeout plus the policy's backoff), up to the policy's attempt
    budget.

    The failure process and retry policy are the shared
    {!Qp_runtime.Failure} / {!Qp_runtime.Retry} types, so this static
    baseline is directly comparable to the closed-loop
    {!Qp_runtime.Engine} at an equal retry budget — the engine differs
    only in feeding a failure detector and reweighting the strategy
    online.

    Failure models (see {!Qp_runtime.Failure}):

    - [Static p]: every probe independently finds its node failed with
      probability [p] (memoryless; matches the iid analysis of the
      availability literature exactly, so the simulated availability
      can be checked against {!predicted_success}).
    - [Dynamic {mtbf; mttr}]: nodes alternate exponential up/down
      periods; probes to a down node are lost. Temporally correlated —
      retries hitting the same down replica keep failing — so
      availability is generally WORSE than the iid prediction at equal
      steady-state node availability. *)

type failure_model = Qp_runtime.Failure.model =
  | Static of float
  | Dynamic of { mtbf : float; mttr : float }

type config = {
  problem : Qp_place.Problem.qpp;
  placement : Qp_place.Placement.t;
  failure_model : failure_model;
  retry : Qp_runtime.Retry.t; (* timeout, attempt budget, backoff *)
  accesses_per_client : int;
  arrival_rate : float;
  seed : int;
}

val default_config :
  problem:Qp_place.Problem.qpp ->
  placement:Qp_place.Placement.t ->
  failure_model:failure_model ->
  config
(** Legacy fixed policy (timeout = 4x metric diameter, 3 attempts, no
    backoff), 200 accesses/client, rate 1.0, seed 1. *)

type report = {
  n_accesses : int;
  n_success : int;
  availability : float; (* successes / accesses *)
  predicted_success : float;
      (* iid prediction: 1 - (1 - s)^max_attempts with
         s = sum_Q p(Q) (1-p)^{|distinct nodes of Q|} *)
  mean_delay_success : float; (* completion delay incl. timeouts spent *)
  mean_attempts : float; (* attempts per access (incl. failures) *)
  attempt_histogram : int array; (* index k-1: accesses finishing in k *)
}

val run : config -> report

val iid_success_probability : config -> float
(** The closed-form single-attempt success probability under
    [Static p] (uses the placement: co-located elements share fate). *)
