module Obs = Qp_obs
module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error
module Spec = Qp_instance.Spec
module Live = Qp_instance.Live
module Solver = Qp_place.Solver
module Serialize = Qp_place.Serialize
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy

let ( let* ) = Qp_error.( let* )

type config = {
  host : string;
  port : int;
  queue_depth : int;
  default_deadline_ms : int option;
  max_frame : int;
  max_connections : int;
  default_spec : Spec.t;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7341;
    queue_depth = 64;
    default_deadline_ms = None;
    max_frame = Frame.default_max_len;
    max_connections = 1024;
    default_spec = Spec.default;
  }

(* ------------------------------------------------------------------ *)
(* Connections and per-server state                                    *)
(* ------------------------------------------------------------------ *)

type conn = { fd : Unix.file_descr; dec : Frame.Decoder.t; mutable alive : bool }

type pending = {
  conn : conn;
  req : Protocol.request;
  arrival : float;
  parse_s : float; (* time spent decoding this request's JSON *)
  q_at_admit : int; (* queue depth the request saw on admission *)
}

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  queue : pending Queue.t;
  mutable draining : bool;
  mutable listen_open : bool;
  started : float;
  live : Live.t option;
      (* the evolving default instance; spec-less solves hit it *)
  solve_cache : (string, Json.t) Hashtbl.t;
      (* live-instance solve results keyed by options; cleared on every
         applied update, so a hit is always coherent with the current
         generation (single-threaded loop: no window between the apply
         and the clear) *)
  slo : Obs.Slo.t;
      (* every answered request feeds this; the [health] verb reports
         its windows and burn rates *)
}

(* SIGTERM lands between loop iterations: the handler only flips this
   flag, the event loop turns it into a graceful drain. *)
let sigterm_requested = Atomic.make false

(* ------------------------------------------------------------------ *)
(* Metrics (always on the default registry: the [metrics] verb and the
   CLI --metrics dump both export it)                                  *)
(* ------------------------------------------------------------------ *)

let reg () = Obs.Metrics.default

let requests_c verb =
  Obs.Metrics.counter ~help:"Requests answered, by verb"
    ~labels:[ ("verb", verb) ] (reg ()) "qp_serve_requests_total"

let errors_c code =
  Obs.Metrics.counter ~help:"Error responses, by code"
    ~labels:[ ("code", code) ] (reg ()) "qp_serve_errors_total"

let latency_h () =
  Obs.Metrics.histogram
    ~help:"Request latency from frame arrival to reply (seconds)"
    ~buckets:(Obs.Metrics.log_buckets ~lo:1e-4 ~factor:2. ~count:22)
    (reg ()) "qp_serve_request_latency_seconds"

let connections_c () =
  Obs.Metrics.counter ~help:"Connections accepted" (reg ())
    "qp_serve_connections_total"

let open_conns_g () =
  Obs.Metrics.gauge ~help:"Currently open connections" (reg ())
    "qp_serve_open_connections"

let updates_c () =
  Obs.Metrics.counter ~help:"Instance deltas applied to the live instance"
    (reg ()) "qp_serve_updates_total"

let cache_c result =
  Obs.Metrics.counter ~help:"Live-instance solve cache lookups, by result"
    ~labels:[ ("result", result) ] (reg ()) "qp_serve_solve_cache_total"

let queue_depth_g () =
  Obs.Metrics.gauge ~help:"Admission queue depth at the last loop cycle"
    (reg ()) "qp_serve_queue_depth"

let queue_wait_h () =
  Obs.Metrics.histogram
    ~help:"Time from admission to dispatch (seconds)"
    ~buckets:(Obs.Metrics.log_buckets ~lo:1e-4 ~factor:2. ~count:22)
    (reg ()) "qp_serve_queue_wait_seconds"

let uptime_g () =
  Obs.Metrics.gauge ~help:"Seconds since the server started" (reg ())
    "process_uptime_seconds"

let build_info_g () =
  Obs.Metrics.gauge ~help:"Build metadata; value is always 1"
    ~labels:[ ("version", Obs.Build_info.version) ]
    (reg ()) "qp_build_info"

(* Same series the simplex increments on the dispatcher's registry;
   sampling it around [handle_verb] attributes pivot work to one
   request. *)
let pivots_c () =
  Obs.Metrics.counter ~help:"Simplex pivots across both phases" (reg ())
    "qp_simplex_pivots_total"

(* ------------------------------------------------------------------ *)
(* Socket helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Non-blocking frame write with a bounded patience: a client that
   stops reading for >5s forfeits the reply and the connection. *)
let write_frame conn payload =
  if conn.alive then begin
    let b = Frame.encode payload in
    let len = Bytes.length b in
    let off = ref 0 in
    let give_up = Obs.Core.now () +. 5.0 in
    let ok = ref true in
    while !ok && !off < len do
      match Unix.write conn.fd b !off (len - !off) with
      | n -> off := !off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if Obs.Core.now () > give_up then ok := false
          else ignore (Unix.select [] [ conn.fd ] [] 0.25)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> ok := false
    done;
    if not !ok then conn.alive <- false
  end

let send_response conn (resp : Protocol.response) =
  write_frame conn (Json.to_string (Protocol.response_to_json resp))

let close_conn conn =
  if conn.alive then begin
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Verb handlers                                                       *)
(* ------------------------------------------------------------------ *)

let typed r = Result.map_error (fun e -> Protocol.Typed e) r

let info_payload (spec : Spec.t) =
  typed
  @@ let* system = Spec.build_system spec.Spec.system in
     let strategy = Strategy.uniform system in
     let sizes = Array.map Array.length (Quorum.quorums system) in
     Ok
       (Json.Obj
          [ ("system", Json.String spec.Spec.system);
            ("universe", Json.Int (Quorum.universe system));
            ("quorums", Json.Int (Quorum.n_quorums system));
            ("min_quorum", Json.Int (Array.fold_left min sizes.(0) sizes));
            ("max_quorum", Json.Int (Array.fold_left max sizes.(0) sizes));
            ( "system_load",
              Json.Float (Strategy.system_load system strategy) );
            ("total_load", Json.Float (Strategy.total_load system strategy));
            ("is_coterie", Json.Bool (Quorum.is_coterie system));
            ( "all_intersecting",
              Json.Bool (Quorum.all_intersecting system) ) ])

let health_payload st =
  Json.Obj
    [ ("status", Json.String (if st.draining then "draining" else "ok"));
      ("version", Json.String Obs.Build_info.version);
      ("schema", Json.String Protocol.schema);
      ("uptime_s", Json.Float (Obs.Core.now () -. st.started));
      ("queue_depth", Json.Int st.cfg.queue_depth);
      ("queue_len", Json.Int (Queue.length st.queue));
      ( "solve_cache",
        Json.Obj
          [ ( "hits",
              Json.Int
                (int_of_float (Obs.Metrics.counter_value (cache_c "hit"))) );
            ( "misses",
              Json.Int
                (int_of_float (Obs.Metrics.counter_value (cache_c "miss"))) ) ]
      );
      ("slo", Obs.Slo.to_json st.slo);
      ( "generation",
        match st.live with
        | Some live -> Json.Int (Live.generation live)
        | None -> Json.Null );
      ("jobs", Json.Int (Qp_par.Pool.default_jobs ())) ]

let metrics_payload st =
  (* Refresh the point-in-time series the scrape should carry. *)
  Obs.Metrics.set (uptime_g ()) (Obs.Core.now () -. st.started);
  Obs.Metrics.set (build_info_g ()) 1.;
  Json.Obj
    [ ("content_type", Json.String "text/plain; version=0.0.4");
      ("body", Json.String (Obs.Metrics.to_prometheus (reg ()))) ]

let start_drain st =
  if not st.draining then begin
    st.draining <- true;
    if st.listen_open then begin
      st.listen_open <- false;
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ())
    end
  end

let run_solve ~deadline solve =
  let result =
    (* Cooperative cancellation: the pivot loops poll this deadline,
       so a request cannot hold the dispatcher past its budget by more
       than one pivot. Cleared even when the solver raises. *)
    Qp_lp.Simplex.set_deadline
      (if deadline < infinity then Some deadline else None);
    Fun.protect ~finally:(fun () -> Qp_lp.Simplex.set_deadline None) solve
  in
  match result with
  | Ok outcome -> Ok (Serialize.outcome_to_json outcome)
  | Error (Qp_error.Internal _ as e) when Obs.Core.now () > deadline ->
      (* The pivot-budget hook fired (or the solver lost the race with
         the clock): report the deadline, not the internal symptom. *)
      Error
        (Protocol.Deadline_exceeded
           ("request deadline exceeded during solve: " ^ Qp_error.to_string e))
  | Error e -> Error (Protocol.Typed e)

let cache_key (o : Protocol.options) =
  Printf.sprintf "%s|%.17g|%s" o.Protocol.algorithm o.Protocol.alpha
    (match o.Protocol.pivot_budget with
    | Some b -> string_of_int b
    | None -> "-")

let solve_payload st (req : Protocol.request) ~deadline =
  let opts = req.Protocol.options in
  match (req.Protocol.spec, st.live) with
  | None, Some live -> (
      (* Spec-less solves run against the live instance; a cache hit
         is valid because the cache is cleared under every applied
         delta. Generation 0 is byte-identical to the spec route. *)
      let key = cache_key opts in
      match Hashtbl.find_opt st.solve_cache key with
      | Some cached ->
          Obs.Metrics.inc (cache_c "hit");
          Ok cached
      | None ->
          Obs.Metrics.inc (cache_c "miss");
          let params = Protocol.solver_params (Live.spec live) opts in
          let payload =
            run_solve ~deadline (fun () ->
                let* solver = Solver.find opts.Protocol.algorithm in
                solver.Solver.solve params (Live.problem live))
          in
          (match payload with
          | Ok j -> Hashtbl.replace st.solve_cache key j
          | Error _ -> ());
          payload)
  | _ ->
      let spec = Option.value req.Protocol.spec ~default:st.cfg.default_spec in
      run_solve ~deadline (fun () ->
          let* solver = Solver.find opts.Protocol.algorithm in
          let* problem = Spec.build spec in
          let params = Protocol.solver_params spec opts in
          solver.Solver.solve params problem)

let update_payload st (req : Protocol.request) =
  match st.live with
  | None ->
      Error
        (Protocol.Typed
           (Qp_error.Invalid_instance "update: server has no live instance"))
  | Some live -> (
      match req.Protocol.delta with
      | None | Some [] ->
          Error
            (Protocol.Typed
               (Qp_error.Invalid_instance
                  "update: missing or empty \"delta\" array"))
      | Some ops -> (
          match Live.apply live ops with
          | Ok () ->
              (* The swap is coherent: the apply was all-or-nothing and
                 the cache clear happens before any later request is
                 dispatched (single-threaded loop). *)
              Hashtbl.reset st.solve_cache;
              Obs.Metrics.inc (updates_c ());
              Ok
                (Json.Obj
                   [ ("generation", Json.Int (Live.generation live));
                     ("applied_ops", Json.Int (Live.applied_ops live)) ])
          | Error e -> Error (Protocol.Typed e)))

let handle_verb st (req : Protocol.request) ~deadline =
  match req.Protocol.verb with
  | Protocol.Solve -> solve_payload st req ~deadline
  | Protocol.Update -> update_payload st req
  | Protocol.Info ->
      info_payload (Option.value req.Protocol.spec ~default:st.cfg.default_spec)
  | Protocol.Metrics -> Ok (metrics_payload st)
  | Protocol.Health -> Ok (health_payload st)
  | Protocol.Shutdown ->
      start_drain st;
      Ok (Json.Obj [ ("draining", Json.Bool true) ])

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)
(* ------------------------------------------------------------------ *)

let dispatch_one st (p : pending) =
  if p.conn.alive then begin
    let verb = Protocol.verb_name p.req.Protocol.verb in
    let deadline =
      let ms =
        match p.req.Protocol.options.Protocol.deadline_ms with
        | Some ms -> Some ms
        | None -> st.cfg.default_deadline_ms
      in
      match ms with
      | Some ms -> p.arrival +. (float_of_int ms /. 1000.)
      | None -> infinity
    in
    Obs.Span.with_ "request"
      ~attrs:[ ("verb", Json.String verb); ("id", p.req.Protocol.id) ]
    @@ fun () ->
    let t_dispatch = Obs.Core.now () in
    let queue_s = Float.max (t_dispatch -. p.arrival) 0. in
    (* One wide event per request. The server adopts the client's
       trace id when the request carries one, so both sides' records
       join across processes; otherwise it mints its own. *)
    let ev =
      if Obs.Wide.active () then begin
        let trace_id, parent_span =
          match p.req.Protocol.trace with
          | Some t -> (t.Protocol.trace_id, t.Protocol.parent_span)
          | None -> (Obs.Wide.fresh_trace_id (), None)
        in
        let ev =
          Obs.Wide.start ~kind:"serve_request" ~trace_id ?parent_span ()
        in
        Obs.Wide.set_str ev "verb" verb;
        (match p.req.Protocol.verb with
        | Protocol.Solve ->
            Obs.Wide.set_str ev "alg"
              p.req.Protocol.options.Protocol.algorithm
        | _ -> ());
        Obs.Wide.set_int ev "queue_depth_at_admission" p.q_at_admit;
        ev
      end
      else Obs.Wide.start ~kind:"serve_request" () (* inert *)
    in
    let pivots0 =
      if Obs.Wide.sampled ev then Obs.Metrics.counter_value (pivots_c ())
      else 0.
    in
    let payload =
      if t_dispatch > deadline then
        Error
          (Protocol.Deadline_exceeded "request deadline expired in the queue")
      else handle_verb st p.req ~deadline
    in
    let t_handled = Obs.Core.now () in
    let handle_s = Float.max (t_handled -. t_dispatch) 0. in
    Obs.Metrics.inc (requests_c verb);
    let outcome =
      match payload with
      | Error e ->
          let code = Protocol.serve_error_code e in
          Obs.Metrics.inc (errors_c code);
          Obs.Span.add_attr "error" (Json.String code);
          code
      | Ok _ -> "ok"
    in
    let latency = Float.max (t_handled -. p.arrival) 0. in
    Obs.Metrics.observe (latency_h ()) latency;
    Obs.Metrics.observe (queue_wait_h ()) queue_s;
    Obs.Slo.record st.slo ~ok:(Result.is_ok payload) ~latency_s:latency;
    Obs.Span.add_attr "latency_s" (Json.Float latency);
    (* The timing echo rides only on traced requests, so untraced
       responses stay byte-identical. Serialize/write phases happen
       after the response is encoded; they exist only in the wide
       event. *)
    let timing =
      match p.req.Protocol.trace with
      | None -> None
      | Some _ ->
          Some
            [ ("parse", p.parse_s); ("queue", queue_s); ("handle", handle_s) ]
    in
    let resp = Protocol.response ?timing ~id:p.req.Protocol.id ~verb payload in
    if Obs.Wide.sampled ev then begin
      let t0 = Obs.Core.now () in
      let body = Json.to_string (Protocol.response_to_json resp) in
      let t1 = Obs.Core.now () in
      write_frame p.conn body;
      let t2 = Obs.Core.now () in
      Obs.Wide.phase ev "parse" p.parse_s;
      Obs.Wide.phase ev "queue" queue_s;
      Obs.Wide.phase ev "handle" handle_s;
      Obs.Wide.phase ev "serialize" (Float.max (t1 -. t0) 0.);
      Obs.Wide.phase ev "write" (Float.max (t2 -. t1) 0.);
      Obs.Wide.set ev "pivots"
        (Json.Int
           (int_of_float (Obs.Metrics.counter_value (pivots_c ()) -. pivots0)));
      Obs.Wide.finish ~outcome ev
    end
    else send_response p.conn resp
  end

(* ------------------------------------------------------------------ *)
(* Read / admission                                                    *)
(* ------------------------------------------------------------------ *)

let reject conn ~id ~verb e =
  Obs.Metrics.inc (errors_c (Protocol.serve_error_code e));
  Obs.Span.event "rejected"
    ~attrs:[ ("code", Json.String (Protocol.serve_error_code e)) ];
  send_response conn (Protocol.response ~id ~verb (Error e))

let admit st conn payload =
  let t0 = Obs.Core.now () in
  match Protocol.parse_request payload with
  | Error (id, e) -> reject conn ~id ~verb:"error" (Protocol.Typed e)
  | Ok req ->
      let depth = Queue.length st.queue in
      if depth >= st.cfg.queue_depth then
        reject conn ~id:req.Protocol.id
          ~verb:(Protocol.verb_name req.Protocol.verb)
          (Protocol.Overloaded
             (Printf.sprintf "server queue full (depth %d)" st.cfg.queue_depth))
      else
        let arrival = Obs.Core.now () in
        Queue.add
          { conn;
            req;
            arrival;
            parse_s = Float.max (arrival -. t0) 0.;
            q_at_admit = depth }
          st.queue

let read_buf = Bytes.create 65536

let on_readable st conn =
  let closed =
    match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> true
    | n ->
        Frame.Decoder.feed conn.dec read_buf n;
        false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        false
    | exception Unix.Unix_error (_, _, _) -> true
  in
  if closed then close_conn conn
  else begin
    let continue = ref true in
    while !continue && conn.alive do
      match Frame.Decoder.next conn.dec with
      | `Frame payload -> admit st conn payload
      | `Await -> continue := false
      | `Error msg ->
          (* Framing violation: one last typed error, then hang up —
             the byte stream has no recoverable frame boundary. *)
          reject conn ~id:Json.Null ~verb:"error"
            (Protocol.Typed (Qp_error.Invalid_instance ("frame: " ^ msg)));
          close_conn conn;
          continue := false
    done
  end

let accept_ready st =
  let continue = ref true in
  while !continue && st.listen_open do
    match Unix.accept ~cloexec:true st.listen_fd with
    | fd, _addr ->
        if List.length st.conns >= st.cfg.max_connections then
          (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Unix.set_nonblock fd;
          Obs.Metrics.inc (connections_c ());
          st.conns <-
            st.conns
            @ [ { fd; dec = Frame.Decoder.create ~max_len:st.cfg.max_frame ();
                  alive = true } ]
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let finish st =
  Queue.clear st.queue;
  List.iter close_conn st.conns;
  st.conns <- [];
  if st.listen_open then begin
    st.listen_open <- false;
    try Unix.close st.listen_fd with Unix.Unix_error _ -> ()
  end

let rec loop st =
  if Atomic.get sigterm_requested then begin
    Atomic.set sigterm_requested false;
    start_drain st
  end;
  if st.draining && Queue.is_empty st.queue then finish st
  else begin
    let read_fds =
      (if st.listen_open then [ st.listen_fd ] else [])
      @ List.filter_map (fun c -> if c.alive then Some c.fd else None) st.conns
    in
    let readable =
      match Unix.select read_fds [] [] 0.25 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    if st.listen_open && List.memq st.listen_fd readable then accept_ready st;
    List.iter
      (fun c -> if c.alive && List.memq c.fd readable then on_readable st c)
      st.conns;
    (* Serve everything admitted this cycle, in admission order. A
       shutdown request flips [draining] mid-loop but the rest of the
       queue is still answered — graceful drain. The gauge samples the
       post-admission high-water mark, before the drain empties it. *)
    Obs.Metrics.set (queue_depth_g ()) (float_of_int (Queue.length st.queue));
    while not (Queue.is_empty st.queue) do
      dispatch_one st (Queue.pop st.queue)
    done;
    st.conns <- List.filter (fun c -> c.alive) st.conns;
    Obs.Metrics.set (open_conns_g ()) (float_of_int (List.length st.conns));
    loop st
  end

let run ?ready cfg =
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    Unix.listen fd 128;
    Unix.set_nonblock fd;
    fd
  with
  | exception Unix.Unix_error (err, _, _) ->
      Qp_error.invalid_instancef "serve: cannot bind %s:%d (%s)" cfg.host
        cfg.port (Unix.error_message err)
  | exception Failure msg ->
      Qp_error.invalid_instancef "serve: cannot bind %s:%d (%s)" cfg.host
        cfg.port msg
  | listen_fd ->
      Obs.Metrics.set_enabled (reg ()) true;
      let st =
        {
          cfg;
          listen_fd;
          conns = [];
          queue = Queue.create ();
          draining = false;
          listen_open = true;
          started = Obs.Core.now ();
          live =
            (match Live.of_spec cfg.default_spec with
            | Ok live -> Some live
            | Error _ -> None);
          solve_cache = Hashtbl.create 8;
          slo = Obs.Slo.create ();
        }
      in
      let port =
        match Unix.getsockname listen_fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> cfg.port
      in
      Atomic.set sigterm_requested false;
      let old_term =
        Sys.signal Sys.sigterm
          (Sys.Signal_handle (fun _ -> Atomic.set sigterm_requested true))
      in
      let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      Fun.protect
        ~finally:(fun () ->
          finish st;
          Sys.set_signal Sys.sigterm old_term;
          Sys.set_signal Sys.sigpipe old_pipe)
        (fun () ->
          (match ready with Some f -> f port | None -> ());
          loop st;
          Ok ())
