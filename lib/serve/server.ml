module Obs = Qp_obs
module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error
module Lru = Qp_util.Lru
module Spec = Qp_instance.Spec
module Live = Qp_instance.Live
module Solver = Qp_place.Solver
module Serialize = Qp_place.Serialize
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy

let ( let* ) = Qp_error.( let* )

type config = {
  host : string;
  port : int;
  queue_depth : int;
  default_deadline_ms : int option;
  max_frame : int;
  max_connections : int;
  default_spec : Spec.t;
  jobs : int;
      (* concurrent solves: 1 = solves run inline on the event loop
         (the fully sequential path); N > 1 = N dedicated worker
         domains, the loop stays I/O-only *)
  cache_capacity : int; (* placement-cache entries; 0 disables it *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7341;
    queue_depth = 64;
    default_deadline_ms = None;
    max_frame = Frame.default_max_len;
    max_connections = 1024;
    default_spec = Spec.default;
    jobs = 1;
    cache_capacity = 256;
  }

(* ------------------------------------------------------------------ *)
(* Connections and per-server state                                    *)
(* ------------------------------------------------------------------ *)

(* A finished response parked until every earlier response on the same
   connection has been written; the wide event is finished when the
   bytes go out so its [write] phase is the real write. *)
type slot = { body : string; ev : Obs.Wide.t; outcome : string }

type conn = {
  fd : Unix.file_descr;
  dec : Frame.Decoder.t;
  mutable alive : bool;
  mutable next_seq : int; (* next response slot to allocate *)
  mutable next_write : int; (* lowest slot not yet written *)
  slots : (int, slot) Hashtbl.t;
}

type pending = {
  conn : conn;
  req : Protocol.request;
  arrival : float;
  parse_s : float; (* time spent decoding this request's JSON *)
  q_at_admit : int; (* queue depth the request saw on admission *)
}

(* One admitted request after dispatch: everything [deliver] needs to
   assemble its response, including its ordered slot and its wide
   event (started at dispatch, finished when the response is
   written). *)
type member = {
  m_conn : conn;
  seq : int;
  m_req : Protocol.request;
  m_arrival : float;
  m_parse_s : float;
  t_dispatch : float;
  deadline : float;
  ev : Obs.Wide.t;
}

(* A single-flight solve: one pool task per distinct cache key, with
   every identical concurrent request joined as a member. [gen] pins
   the live-instance generation the problem was captured at (None for
   full-spec solves); [solve] is reusable so a follower can be
   promoted to a fresh attempt when the leader's deadline fires. *)
type flight = {
  key : string;
  mutable members : member list; (* leader first, joiners in order *)
  gen : int option;
  solve : unit -> (Qp_place.Outcome.t, Qp_error.t) result;
}

(* What a solve task sends back to the event loop: the payload plus
   the scoped metrics registry its telemetry landed on (merged into
   the default registry on the loop thread, never concurrently). *)
type completion = {
  c_key : string;
  c_payload : (Json.t, Protocol.serve_error) result;
  c_reg : Obs.Metrics.t option;
}

type state = {
  cfg : config;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  queue : pending Queue.t;
  mutable draining : bool;
  mutable listen_open : bool;
  started : float;
  live : Live.t option;
      (* the evolving default instance; spec-less solves hit it *)
  cache : (string, Json.t) Lru.t;
      (* placement cache over canonical (spec|generation, options)
         keys. Live-route entries embed the generation, so an applied
         update makes them unreachable without clearing — full-spec
         entries pin their own instance and survive updates. *)
  flights : (string, flight) Hashtbl.t; (* single-flight table *)
  mutable inflight_n : int; (* solve tasks submitted, not yet completed *)
  pool : Qp_par.Pool.t option; (* None when cfg.jobs = 1: solves inline *)
  comp_m : Mutex.t;
  completions : completion Queue.t;
  wake_r : Unix.file_descr; (* self-pipe: workers wake the select *)
  wake_w : Unix.file_descr;
  loop_domain : Domain.id;
  (* health-verb cache counters, tracked as plain ints so they stay
     readable without scraping labeled series *)
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_joins : int;
  mutable evictions_reported : int;
  slo : Obs.Slo.t;
      (* every answered request feeds this; the [health] verb reports
         its windows and burn rates *)
}

(* SIGTERM lands between loop iterations: the handler only flips this
   flag, the event loop turns it into a graceful drain. *)
let sigterm_requested = Atomic.make false

(* ------------------------------------------------------------------ *)
(* Metrics (always on the default registry: the [metrics] verb and the
   CLI --metrics dump both export it)                                  *)
(* ------------------------------------------------------------------ *)

let reg () = Obs.Metrics.default

let requests_c verb =
  Obs.Metrics.counter ~help:"Requests answered, by verb"
    ~labels:[ ("verb", verb) ] (reg ()) "qp_serve_requests_total"

let errors_c code =
  Obs.Metrics.counter ~help:"Error responses, by code"
    ~labels:[ ("code", code) ] (reg ()) "qp_serve_errors_total"

let latency_h () =
  Obs.Metrics.histogram
    ~help:"Request latency from frame arrival to reply (seconds)"
    ~buckets:(Obs.Metrics.log_buckets ~lo:1e-4 ~factor:2. ~count:22)
    (reg ()) "qp_serve_request_latency_seconds"

let connections_c () =
  Obs.Metrics.counter ~help:"Connections accepted" (reg ())
    "qp_serve_connections_total"

let open_conns_g () =
  Obs.Metrics.gauge ~help:"Currently open connections" (reg ())
    "qp_serve_open_connections"

let updates_c () =
  Obs.Metrics.counter ~help:"Instance deltas applied to the live instance"
    (reg ()) "qp_serve_updates_total"

(* The generation label scopes hit rates to one cache epoch: an
   applied update bumps it, so post-reconfiguration hit/miss series
   start fresh and stay interpretable. Full-spec lookups (whose
   entries survive updates) carry generation="spec". *)
let cache_c ~generation result =
  Obs.Metrics.counter ~help:"Placement cache lookups, by result"
    ~labels:[ ("result", result); ("generation", generation) ]
    (reg ()) "qp_serve_solve_cache_total"

let cache_evictions_c () =
  Obs.Metrics.counter ~help:"Placement cache entries evicted by capacity"
    (reg ()) "qp_serve_solve_cache_evictions_total"

let queue_depth_g () =
  Obs.Metrics.gauge ~help:"Admission queue depth at the last loop cycle"
    (reg ()) "qp_serve_queue_depth"

let inflight_g () =
  Obs.Metrics.gauge ~help:"Solve tasks dispatched to the pool, not yet done"
    (reg ()) "qp_serve_inflight_solves"

let queue_wait_h () =
  Obs.Metrics.histogram
    ~help:"Time from admission to dispatch (seconds)"
    ~buckets:(Obs.Metrics.log_buckets ~lo:1e-4 ~factor:2. ~count:22)
    (reg ()) "qp_serve_queue_wait_seconds"

let uptime_g () =
  Obs.Metrics.gauge ~help:"Seconds since the server started" (reg ())
    "process_uptime_seconds"

let build_info_g () =
  Obs.Metrics.gauge ~help:"Build metadata; value is always 1"
    ~labels:[ ("version", Obs.Build_info.version) ]
    (reg ()) "qp_build_info"

(* ------------------------------------------------------------------ *)
(* Socket helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* Non-blocking frame write with a bounded patience: a client that
   stops reading for >5s forfeits the reply and the connection. *)
let write_frame conn payload =
  if conn.alive then begin
    let b = Frame.encode payload in
    let len = Bytes.length b in
    let off = ref 0 in
    let give_up = Obs.Core.now () +. 5.0 in
    let ok = ref true in
    while !ok && !off < len do
      match Unix.write conn.fd b !off (len - !off) with
      | n -> off := !off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          if Obs.Core.now () > give_up then ok := false
          else ignore (Unix.select [] [ conn.fd ] [] 0.25)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (_, _, _) -> ok := false
    done;
    if not !ok then conn.alive <- false
  end

let send_response conn (resp : Protocol.response) =
  write_frame conn (Json.to_string (Protocol.response_to_json resp))

let close_conn conn =
  if conn.alive then begin
    conn.alive <- false;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Ordered response slots                                              *)
(* ------------------------------------------------------------------ *)

(* Responses on one connection go out in dispatch order even when
   pooled solves complete out of order: each dispatched request takes
   the next slot, and a finished response is written only once every
   earlier slot has been. Admission-time rejections (overload, parse
   errors) bypass the slots — they are written immediately, before
   anything admitted in the same read cycle, exactly as the
   single-threaded server did. *)
let alloc_slot conn =
  let s = conn.next_seq in
  conn.next_seq <- s + 1;
  s

let flush_conn conn =
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt conn.slots conn.next_write with
    | None -> continue := false
    | Some s ->
        Hashtbl.remove conn.slots conn.next_write;
        conn.next_write <- conn.next_write + 1;
        let t0 = Obs.Core.now () in
        write_frame conn s.body;
        Obs.Wide.phase s.ev "write" (Float.max (Obs.Core.now () -. t0) 0.);
        Obs.Wide.finish ~outcome:s.outcome s.ev
  done

(* ------------------------------------------------------------------ *)
(* Verb handlers                                                       *)
(* ------------------------------------------------------------------ *)

let typed r = Result.map_error (fun e -> Protocol.Typed e) r

let info_payload (spec : Spec.t) =
  typed
  @@ let* system = Spec.build_system spec.Spec.system in
     let strategy = Strategy.uniform system in
     let sizes = Array.map Array.length (Quorum.quorums system) in
     Ok
       (Json.Obj
          [ ("system", Json.String spec.Spec.system);
            ("universe", Json.Int (Quorum.universe system));
            ("quorums", Json.Int (Quorum.n_quorums system));
            ("min_quorum", Json.Int (Array.fold_left min sizes.(0) sizes));
            ("max_quorum", Json.Int (Array.fold_left max sizes.(0) sizes));
            ( "system_load",
              Json.Float (Strategy.system_load system strategy) );
            ("total_load", Json.Float (Strategy.total_load system strategy));
            ("is_coterie", Json.Bool (Quorum.is_coterie system));
            ( "all_intersecting",
              Json.Bool (Quorum.all_intersecting system) ) ])

let health_payload st =
  Json.Obj
    [ ("status", Json.String (if st.draining then "draining" else "ok"));
      ("version", Json.String Obs.Build_info.version);
      ("schema", Json.String Protocol.schema);
      ("uptime_s", Json.Float (Obs.Core.now () -. st.started));
      ("queue_depth", Json.Int st.cfg.queue_depth);
      ("queue_len", Json.Int (Queue.length st.queue));
      ("inflight_solves", Json.Int st.inflight_n);
      ( "solve_cache",
        Json.Obj
          [ ("hits", Json.Int st.cache_hits);
            ("misses", Json.Int st.cache_misses);
            ("inflight_joins", Json.Int st.cache_joins);
            ("entries", Json.Int (Lru.length st.cache));
            ("capacity", Json.Int st.cfg.cache_capacity);
            ("evictions", Json.Int (Lru.evictions st.cache)) ] );
      ("slo", Obs.Slo.to_json st.slo);
      ( "generation",
        match st.live with
        | Some live -> Json.Int (Live.generation live)
        | None -> Json.Null );
      ("server_jobs", Json.Int st.cfg.jobs);
      ("jobs", Json.Int (Qp_par.Pool.default_jobs ())) ]

let metrics_payload st =
  (* Refresh the point-in-time series the scrape should carry. *)
  Obs.Metrics.set (uptime_g ()) (Obs.Core.now () -. st.started);
  Obs.Metrics.set (build_info_g ()) 1.;
  Obs.Metrics.set (inflight_g ()) (float_of_int st.inflight_n);
  Json.Obj
    [ ("content_type", Json.String "text/plain; version=0.0.4");
      ("body", Json.String (Obs.Metrics.to_prometheus (reg ()))) ]

let start_drain st =
  if not st.draining then begin
    st.draining <- true;
    if st.listen_open then begin
      st.listen_open <- false;
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ())
    end
  end

let run_solve ~deadline solve =
  let result =
    (* Cooperative cancellation: the pivot loops poll this
       domain-local deadline, so a request cannot hold its domain past
       its budget by more than one pivot. Cleared even when the solver
       raises. Inside a pool worker this cancels only that worker's
       solve; nested candidate-LP parallelism inherits it through the
       pool context hook. *)
    Qp_lp.Simplex.set_deadline
      (if deadline < infinity then Some deadline else None);
    Fun.protect ~finally:(fun () -> Qp_lp.Simplex.set_deadline None) solve
  in
  match result with
  | Ok outcome -> Ok (Serialize.outcome_to_json outcome)
  | Error (Qp_error.Internal _ as e) when Obs.Core.now () > deadline ->
      (* The pivot-budget hook fired (or the solver lost the race with
         the clock): report the deadline, not the internal symptom. *)
      Error
        (Protocol.Deadline_exceeded
           ("request deadline exceeded during solve: " ^ Qp_error.to_string e))
  | Error e -> Error (Protocol.Typed e)

let opts_key (o : Protocol.options) =
  (* deadline_ms is deliberately absent: it bounds solve time, never
     the result, so requests differing only in deadline share a key. *)
  Printf.sprintf "%s|%.17g|%s" o.Protocol.algorithm o.Protocol.alpha
    (match o.Protocol.pivot_budget with
    | Some b -> string_of_int b
    | None -> "-")

let update_payload st (req : Protocol.request) =
  match st.live with
  | None ->
      Error
        (Protocol.Typed
           (Qp_error.Invalid_instance "update: server has no live instance"))
  | Some live -> (
      match req.Protocol.delta with
      | None | Some [] ->
          Error
            (Protocol.Typed
               (Qp_error.Invalid_instance
                  "update: missing or empty \"delta\" array"))
      | Some ops -> (
          match Live.apply live ops with
          | Ok () ->
              (* No cache clear: live-route entries are keyed by the
                 generation they were solved at, so the bump alone
                 makes them unreachable; full-spec entries pin their
                 own instance and stay valid. Stale entries age out of
                 the LRU under capacity pressure. *)
              Obs.Metrics.inc (updates_c ());
              Ok
                (Json.Obj
                   [ ("generation", Json.Int (Live.generation live));
                     ("applied_ops", Json.Int (Live.applied_ops live)) ])
          | Error e -> Error (Protocol.Typed e)))

(* ------------------------------------------------------------------ *)
(* Dispatch and delivery                                               *)
(* ------------------------------------------------------------------ *)

let note_evictions st =
  let total = Lru.evictions st.cache in
  if total > st.evictions_reported then begin
    Obs.Metrics.add (cache_evictions_c ())
      (float_of_int (total - st.evictions_reported));
    st.evictions_reported <- total
  end

(* Deliver one request's payload: record telemetry, assemble the
   response (timing echo only on traced requests, so default responses
   stay byte-identical), park it in the connection's ordered slot and
   flush whatever prefix is ready. [sreg] is the scoped registry the
   solve's telemetry landed on; merging here, on the loop thread,
   keeps the default registry single-writer. *)
let deliver st (m : member) (payload : (Json.t, Protocol.serve_error) result)
    ~sreg =
  (match sreg with
  | Some r when Obs.Metrics.enabled (reg ()) -> Obs.Metrics.merge ~into:(reg ()) r
  | _ -> ());
  let verb = Protocol.verb_name m.m_req.Protocol.verb in
  Obs.Span.with_ "request"
    ~attrs:[ ("verb", Json.String verb); ("id", m.m_req.Protocol.id) ]
  @@ fun () ->
  let t_done = Obs.Core.now () in
  let queue_s = Float.max (m.t_dispatch -. m.m_arrival) 0. in
  let handle_s = Float.max (t_done -. m.t_dispatch) 0. in
  Obs.Metrics.inc (requests_c verb);
  let outcome =
    match payload with
    | Error e ->
        let code = Protocol.serve_error_code e in
        Obs.Metrics.inc (errors_c code);
        Obs.Span.add_attr "error" (Json.String code);
        code
    | Ok _ -> "ok"
  in
  let latency = Float.max (t_done -. m.m_arrival) 0. in
  Obs.Metrics.observe (latency_h ()) latency;
  Obs.Metrics.observe (queue_wait_h ()) queue_s;
  Obs.Slo.record st.slo ~ok:(Result.is_ok payload) ~latency_s:latency;
  Obs.Span.add_attr "latency_s" (Json.Float latency);
  let timing =
    match m.m_req.Protocol.trace with
    | None -> None
    | Some _ ->
        Some [ ("parse", m.m_parse_s); ("queue", queue_s); ("handle", handle_s) ]
  in
  let resp =
    Protocol.response ?timing ~id:m.m_req.Protocol.id ~verb payload
  in
  let ev = m.ev in
  Obs.Wide.phase ev "parse" m.m_parse_s;
  Obs.Wide.phase ev "queue" queue_s;
  Obs.Wide.phase ev "handle" handle_s;
  (match sreg with
  | Some r ->
      Obs.Wide.set ev "pivots"
        (Json.Int
           (int_of_float
              (Obs.Metrics.counter_value
                 (Obs.Metrics.counter r "qp_simplex_pivots_total"))))
  | None -> if Obs.Wide.sampled ev then Obs.Wide.set_int ev "pivots" 0);
  let t0 = Obs.Core.now () in
  let body = Json.to_string (Protocol.response_to_json resp) in
  Obs.Wide.phase ev "serialize" (Float.max (Obs.Core.now () -. t0) 0.);
  Hashtbl.replace m.m_conn.slots m.seq { body; ev; outcome };
  flush_conn m.m_conn

let push_completion st c =
  Mutex.protect st.comp_m (fun () -> Queue.add c st.completions);
  (* Wake the select only from worker domains; on the loop's own
     domain the completion is drained in the same cycle. A full pipe
     already guarantees a wakeup. *)
  if Domain.self () <> st.loop_domain then
    try ignore (Unix.write st.wake_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ -> ()

(* Submit one solve attempt for a flight: the task runs [run_solve]
   under a fresh scoped metrics registry (never touching shared
   registries off-loop) and reports back through the completion
   queue. With no pool the task runs right here — the sequential
   path — and the caller drains the completion immediately after. *)
let submit st (fl : flight) ~deadline =
  st.inflight_n <- st.inflight_n + 1;
  let task () =
    let enabled = Obs.Metrics.enabled (reg ()) in
    let sreg = lazy (Obs.Metrics.create ~enabled ()) in
    let payload =
      Obs.Metrics.with_current_lazy sreg (fun () ->
          run_solve ~deadline fl.solve)
    in
    push_completion st
      {
        c_key = fl.key;
        c_payload = payload;
        c_reg =
          (if enabled && Lazy.is_val sreg then Some (Lazy.force sreg)
           else None);
      }
  in
  match st.pool with
  | None -> task ()
  | Some pool -> Qp_par.Pool.async pool task

let count_cache st ~generation result =
  Obs.Metrics.inc (cache_c ~generation result);
  match result with
  | "hit" -> st.cache_hits <- st.cache_hits + 1
  | "miss" -> st.cache_misses <- st.cache_misses + 1
  | _ -> st.cache_joins <- st.cache_joins + 1

let dispatch_solve st (m : member) =
  let opts = m.m_req.Protocol.options in
  (* Capture the instance on the loop thread: live state may mutate
     under a later update, but the problem value is immutable, so the
     pool task solves a coherent snapshot. Full-spec builds run inside
     the task — construction is deterministic and part of the solve
     cost. *)
  let key, generation, gen, solve =
    match (m.m_req.Protocol.spec, st.live) with
    | None, Some live ->
        let g = Live.generation live in
        let params = Protocol.solver_params (Live.spec live) opts in
        let problem = Live.problem live in
        ( Printf.sprintf "live:g%d|%s" g (opts_key opts),
          string_of_int g,
          Some g,
          fun () ->
            let* solver = Solver.find opts.Protocol.algorithm in
            solver.Solver.solve params problem )
    | _ ->
        let spec =
          Option.value m.m_req.Protocol.spec ~default:st.cfg.default_spec
        in
        let params = Protocol.solver_params spec opts in
        ( "spec:" ^ Spec.canonical_key spec ^ "|" ^ opts_key opts,
          "spec",
          None,
          fun () ->
            let* solver = Solver.find opts.Protocol.algorithm in
            let* problem = Spec.build spec in
            solver.Solver.solve params problem )
  in
  match Lru.find st.cache key with
  | Some cached ->
      count_cache st ~generation "hit";
      deliver st m (Ok cached) ~sreg:None
  | None -> (
      match Hashtbl.find_opt st.flights key with
      | Some fl ->
          (* Single-flight: an identical solve is already running;
             join it instead of burning a second worker. *)
          count_cache st ~generation "inflight";
          fl.members <- fl.members @ [ m ]
      | None ->
          count_cache st ~generation "miss";
          let fl = { key; members = [ m ]; gen; solve } in
          Hashtbl.add st.flights key fl;
          submit st fl ~deadline:m.deadline)

let dispatch_one st (p : pending) =
  if p.conn.alive then begin
    let verb = Protocol.verb_name p.req.Protocol.verb in
    let deadline =
      let ms =
        match p.req.Protocol.options.Protocol.deadline_ms with
        | Some ms -> Some ms
        | None -> st.cfg.default_deadline_ms
      in
      match ms with
      | Some ms -> p.arrival +. (float_of_int ms /. 1000.)
      | None -> infinity
    in
    let t_dispatch = Obs.Core.now () in
    (* One wide event per request, started at dispatch and finished
       when its response bytes are written. The server adopts the
       client's trace id when the request carries one, so both sides'
       records join across processes; otherwise it mints its own. *)
    let ev =
      if Obs.Wide.active () then begin
        let trace_id, parent_span =
          match p.req.Protocol.trace with
          | Some t -> (t.Protocol.trace_id, t.Protocol.parent_span)
          | None -> (Obs.Wide.fresh_trace_id (), None)
        in
        let ev =
          Obs.Wide.start ~kind:"serve_request" ~trace_id ?parent_span ()
        in
        Obs.Wide.set_str ev "verb" verb;
        (match p.req.Protocol.verb with
        | Protocol.Solve ->
            Obs.Wide.set_str ev "alg" p.req.Protocol.options.Protocol.algorithm
        | _ -> ());
        Obs.Wide.set_int ev "queue_depth_at_admission" p.q_at_admit;
        ev
      end
      else Obs.Wide.start ~kind:"serve_request" () (* inert *)
    in
    let m =
      {
        m_conn = p.conn;
        seq = alloc_slot p.conn;
        m_req = p.req;
        m_arrival = p.arrival;
        m_parse_s = p.parse_s;
        t_dispatch;
        deadline;
        ev;
      }
    in
    if t_dispatch > deadline then
      deliver st m
        (Error (Protocol.Deadline_exceeded "request deadline expired in the queue"))
        ~sreg:None
    else
      match p.req.Protocol.verb with
      | Protocol.Solve -> dispatch_solve st m
      | Protocol.Update -> deliver st m (update_payload st p.req) ~sreg:None
      | Protocol.Info ->
          deliver st m
            (info_payload
               (Option.value p.req.Protocol.spec ~default:st.cfg.default_spec))
            ~sreg:None
      | Protocol.Metrics -> deliver st m (Ok (metrics_payload st)) ~sreg:None
      | Protocol.Health -> deliver st m (Ok (health_payload st)) ~sreg:None
      | Protocol.Shutdown ->
          start_drain st;
          deliver st m (Ok (Json.Obj [ ("draining", Json.Bool true) ])) ~sreg:None
  end

(* One completed solve attempt. Deadline errors belong to the leader
   alone — its budget, not the flight's — so a waiting follower is
   promoted and the solve retried under the follower's own deadline.
   Every other payload is a deterministic property of the request
   (same key, same instance) and fans out to all members; successes
   enter the cache unless the live instance moved on mid-flight. *)
let process_completion st { c_key; c_payload; c_reg } =
  st.inflight_n <- st.inflight_n - 1;
  match Hashtbl.find_opt st.flights c_key with
  | None -> ()
  | Some fl -> (
      match c_payload with
      | Error (Protocol.Deadline_exceeded _) -> (
          match fl.members with
          | [] -> Hashtbl.remove st.flights c_key
          | leader :: rest -> (
              deliver st leader c_payload ~sreg:c_reg;
              fl.members <- rest;
              match rest with
              | [] -> Hashtbl.remove st.flights c_key
              | next :: _ -> submit st fl ~deadline:next.deadline))
      | _ ->
          Hashtbl.remove st.flights c_key;
          (match c_payload with
          | Ok j ->
              let current =
                match (fl.gen, st.live) with
                | None, _ -> true
                | Some g, Some live -> Live.generation live = g
                | Some _, None -> false
              in
              if current then begin
                Lru.put st.cache c_key j;
                note_evictions st
              end
          | Error _ -> ());
          List.iteri
            (fun i m ->
              deliver st m c_payload ~sreg:(if i = 0 then c_reg else None))
            fl.members)

let drain_completions st =
  let batch =
    Mutex.protect st.comp_m (fun () ->
        let acc = ref [] in
        while not (Queue.is_empty st.completions) do
          acc := Queue.pop st.completions :: !acc
        done;
        List.rev !acc)
  in
  List.iter (process_completion st) batch

(* Deliver whatever has completed, then feed the pool: requests leave
   the admission queue in strict arrival order (so per-connection
   response order is request order), stalling when every solve slot is
   busy — admission control then backs up exactly as it did when
   solves ran synchronously. *)
let rec progress st =
  drain_completions st;
  if not (Queue.is_empty st.queue) then begin
    let can_dispatch =
      match (Queue.peek st.queue).req.Protocol.verb with
      | Protocol.Solve -> st.inflight_n < max 1 st.cfg.jobs
      | _ -> true
    in
    if can_dispatch then begin
      dispatch_one st (Queue.pop st.queue);
      progress st
    end
  end

(* ------------------------------------------------------------------ *)
(* Read / admission                                                    *)
(* ------------------------------------------------------------------ *)

let reject conn ~id ~verb e =
  Obs.Metrics.inc (errors_c (Protocol.serve_error_code e));
  Obs.Span.event "rejected"
    ~attrs:[ ("code", Json.String (Protocol.serve_error_code e)) ];
  send_response conn (Protocol.response ~id ~verb (Error e))

let admit st conn payload =
  let t0 = Obs.Core.now () in
  match Protocol.parse_request payload with
  | Error (id, e) -> reject conn ~id ~verb:"error" (Protocol.Typed e)
  | Ok req ->
      let depth = Queue.length st.queue in
      if depth >= st.cfg.queue_depth then
        reject conn ~id:req.Protocol.id
          ~verb:(Protocol.verb_name req.Protocol.verb)
          (Protocol.Overloaded
             (Printf.sprintf "server queue full (depth %d)" st.cfg.queue_depth))
      else
        let arrival = Obs.Core.now () in
        Queue.add
          { conn;
            req;
            arrival;
            parse_s = Float.max (arrival -. t0) 0.;
            q_at_admit = depth }
          st.queue

let read_buf = Bytes.create 65536

let on_readable st conn =
  let closed =
    match Unix.read conn.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> true
    | n ->
        Frame.Decoder.feed conn.dec read_buf n;
        false
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        false
    | exception Unix.Unix_error (_, _, _) -> true
  in
  if closed then close_conn conn
  else begin
    let continue = ref true in
    while !continue && conn.alive do
      match Frame.Decoder.next conn.dec with
      | `Frame payload -> admit st conn payload
      | `Await -> continue := false
      | `Error msg ->
          (* Framing violation: one last typed error, then hang up —
             the byte stream has no recoverable frame boundary. *)
          reject conn ~id:Json.Null ~verb:"error"
            (Protocol.Typed (Qp_error.Invalid_instance ("frame: " ^ msg)));
          close_conn conn;
          continue := false
    done
  end

let accept_ready st =
  let continue = ref true in
  while !continue && st.listen_open do
    match Unix.accept ~cloexec:true st.listen_fd with
    | fd, _addr ->
        if List.length st.conns >= st.cfg.max_connections then
          (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Unix.set_nonblock fd;
          Obs.Metrics.inc (connections_c ());
          st.conns <-
            st.conns
            @ [ { fd; dec = Frame.Decoder.create ~max_len:st.cfg.max_frame ();
                  alive = true; next_seq = 0; next_write = 0;
                  slots = Hashtbl.create 4 } ]
        end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        continue := false
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> continue := false
  done

(* ------------------------------------------------------------------ *)
(* Event loop                                                          *)
(* ------------------------------------------------------------------ *)

let drain_wake st =
  let b = Bytes.create 256 in
  let continue = ref true in
  while !continue do
    match Unix.read st.wake_r b 0 (Bytes.length b) with
    | n when n > 0 -> ()
    | _ -> continue := false
    | exception Unix.Unix_error _ -> continue := false
  done

let finish st =
  Queue.clear st.queue;
  List.iter close_conn st.conns;
  st.conns <- []

(* Drained when nothing is queued and no pooled solve is still
   running: graceful drain answers every admitted request, including
   solves already handed to worker domains. *)
let drained st =
  st.draining && Queue.is_empty st.queue && st.inflight_n = 0
  && Hashtbl.length st.flights = 0

let rec loop st =
  if Atomic.get sigterm_requested then begin
    Atomic.set sigterm_requested false;
    start_drain st
  end;
  if drained st then finish st
  else begin
    let read_fds =
      (if st.listen_open then [ st.listen_fd ] else [])
      @ (st.wake_r
        :: List.filter_map
             (fun c -> if c.alive then Some c.fd else None)
             st.conns)
    in
    let readable =
      match Unix.select read_fds [] [] 0.25 with
      | r, _, _ -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
    in
    if List.memq st.wake_r readable then drain_wake st;
    if st.listen_open && List.memq st.listen_fd readable then accept_ready st;
    List.iter
      (fun c -> if c.alive && List.memq c.fd readable then on_readable st c)
      st.conns;
    (* Serve everything admitted this cycle, in admission order. A
       shutdown request flips [draining] mid-cycle but the rest of the
       queue (and every inflight solve) is still answered — graceful
       drain. The gauge samples the post-admission high-water mark,
       before dispatch empties it. *)
    Obs.Metrics.set (queue_depth_g ()) (float_of_int (Queue.length st.queue));
    progress st;
    st.conns <- List.filter (fun c -> c.alive) st.conns;
    Obs.Metrics.set (open_conns_g ()) (float_of_int (List.length st.conns));
    loop st
  end

let run ?ready cfg =
  if cfg.jobs < 1 then
    Qp_error.invalid_instancef "serve: jobs must be >= 1 (got %d)" cfg.jobs
  else if cfg.cache_capacity < 0 then
    Qp_error.invalid_instancef "serve: cache capacity must be >= 0 (got %d)"
      cfg.cache_capacity
  else
    match
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (try
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port))
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      Unix.listen fd 128;
      Unix.set_nonblock fd;
      fd
    with
    | exception Unix.Unix_error (err, _, _) ->
        Qp_error.invalid_instancef "serve: cannot bind %s:%d (%s)" cfg.host
          cfg.port (Unix.error_message err)
    | exception Failure msg ->
        Qp_error.invalid_instancef "serve: cannot bind %s:%d (%s)" cfg.host
          cfg.port msg
    | listen_fd ->
        Obs.Metrics.set_enabled (reg ()) true;
        let wake_r, wake_w = Unix.pipe ~cloexec:true () in
        Unix.set_nonblock wake_r;
        Unix.set_nonblock wake_w;
        (* cfg.jobs solve workers need a pool of jobs + 1: the event
           loop is the submitting "domain" but never helps drain. *)
        let pool =
          if cfg.jobs = 1 then None
          else Some (Qp_par.Pool.create ~jobs:(cfg.jobs + 1))
        in
        let st =
          {
            cfg;
            listen_fd;
            conns = [];
            queue = Queue.create ();
            draining = false;
            listen_open = true;
            started = Obs.Core.now ();
            live =
              (match Live.of_spec cfg.default_spec with
              | Ok live -> Some live
              | Error _ -> None);
            cache = Lru.create ~capacity:cfg.cache_capacity;
            flights = Hashtbl.create 8;
            inflight_n = 0;
            pool;
            comp_m = Mutex.create ();
            completions = Queue.create ();
            wake_r;
            wake_w;
            loop_domain = Domain.self ();
            cache_hits = 0;
            cache_misses = 0;
            cache_joins = 0;
            evictions_reported = 0;
            slo = Obs.Slo.create ();
          }
        in
        let port =
          match Unix.getsockname listen_fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> cfg.port
        in
        Atomic.set sigterm_requested false;
        let old_term =
          Sys.signal Sys.sigterm
            (Sys.Signal_handle (fun _ -> Atomic.set sigterm_requested true))
        in
        let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
        Fun.protect
          ~finally:(fun () ->
            finish st;
            if st.listen_open then begin
              st.listen_open <- false;
              try Unix.close st.listen_fd with Unix.Unix_error _ -> ()
            end;
            Option.iter Qp_par.Pool.shutdown st.pool;
            (try Unix.close st.wake_r with Unix.Unix_error _ -> ());
            (try Unix.close st.wake_w with Unix.Unix_error _ -> ());
            Sys.set_signal Sys.sigterm old_term;
            Sys.set_signal Sys.sigpipe old_pipe)
          (fun () ->
            (match ready with Some f -> f port | None -> ());
            loop st;
            Ok ())
