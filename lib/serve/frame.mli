(** Length-prefixed wire framing for the [qp_serve] protocol.

    A frame is a 4-byte big-endian payload length followed by the
    payload bytes (one JSON document in this protocol, but the framing
    layer is content-agnostic). The declared length is bounded by
    [max_len]; anything larger — including garbage prefixes that
    decode to a negative length — is a framing error, never an
    allocation of attacker-chosen size.

    Two consumption styles:
    - {!read}/{!write}: blocking, for clients (the load generator, the
      test harness) that own the socket and wait for one full frame.
    - {!Decoder}: incremental, for the server event loop, which feeds
      whatever [read(2)] returned and pops complete frames. *)

val header_len : int
(** 4. *)

val default_max_len : int
(** 4 MiB. *)

val encode : string -> bytes
(** The full wire image (header + payload) of one frame. *)

val write : Unix.file_descr -> string -> unit
(** Blocking send of one frame.
    @raise Unix.Unix_error as from [Unix.write] (EPIPE on a
    half-closed peer — callers ignore SIGPIPE). *)

val read : ?max_len:int -> Unix.file_descr -> string option
(** Blocking read of one frame. [None] on clean EOF before the first
    header byte.
    @raise Failure on a truncated frame or a length outside
    [\[0, max_len\]]. *)

(** Incremental decoder for non-blocking reads. *)
module Decoder : sig
  type t

  val create : ?max_len:int -> unit -> t

  val feed : t -> bytes -> int -> unit
  (** [feed t buf n] appends [buf\[0..n)] to the internal buffer. *)

  val next : t -> [ `Frame of string | `Await | `Error of string ]
  (** Pop the next complete frame. [`Await] when more bytes are
      needed; [`Error] on an over-long or negative declared length
      (the decoder is then poisoned: every later [next] returns the
      same error — the connection must be closed). *)
end
