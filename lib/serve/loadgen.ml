module Obs = Qp_obs
module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error
module Rng = Qp_util.Rng
module Stats = Qp_util.Stats

let ( let* ) = Qp_error.( let* )

type config = {
  host : string;
  port : int;
  connections : int;
  duration_s : float;
  mix : (Protocol.verb * float) list;
  spec : Qp_instance.Spec.t option;
  options : Protocol.options;
  seed : int;
  timeout_ms : int option;
  retries : int;
  drop_every : int option;
  trace_requests : bool;
  unique_specs : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = Server.default_config.Server.port;
    connections = 1;
    duration_s = 2.;
    mix = [ (Protocol.Solve, 8.); (Protocol.Info, 1.); (Protocol.Health, 1.) ];
    spec = None;
    options = Protocol.default_options;
    seed = 1;
    timeout_ms = None;
    retries = 3;
    drop_every = None;
    trace_requests = false;
    unique_specs = false;
  }

let mix_of_string s =
  let parse_one acc part =
    match acc with
    | Error _ as e -> e
    | Ok acc -> (
        match String.split_on_char '=' (String.trim part) with
        | [ name; w ] -> (
            match
              (Protocol.verb_of_name (String.trim name), float_of_string_opt w)
            with
            | Ok Protocol.Shutdown, _ ->
                Qp_error.invalid_instancef "mix: shutdown is not a load verb"
            | Ok Protocol.Update, _ ->
                Qp_error.invalid_instancef
                  "mix: update mutates the instance and is not a load verb"
            | Ok verb, Some weight when weight > 0. -> Ok ((verb, weight) :: acc)
            | Ok _, _ ->
                Qp_error.invalid_instancef "mix: weight %S must be positive" w
            | (Error _ as e), _ -> e)
        | _ ->
            Qp_error.invalid_instancef "mix entry %S (expected verb=weight)"
              part)
  in
  match List.fold_left parse_one (Ok []) (String.split_on_char ',' s) with
  | Error _ as e -> e
  | Ok [] -> Qp_error.invalid_instancef "mix must name at least one verb"
  | Ok entries -> Ok (List.rev entries)

type report = {
  connections : int;
  wall_s : float;
  completed : int;
  ok : int;
  rejected : int;
  transport_errors : int;
  reconnects : int;
  retried : int;
  throughput_rps : float;
  latencies_ms : float array;
  by_verb : (string * int) list;
  by_code : (string * int) list;
  sample_outcome : Json.t option;
  phases_ms : (string * float array) list;
}

(* Per-thread tally; merged single-threadedly after the joins, so no
   locking anywhere except the shared sample slot. *)
type tally = {
  mutable completed : int;
  mutable ok : int;
  mutable rejected : int;
  mutable transport_errors : int;
  mutable reconnects : int;
  mutable retried : int;
  mutable latencies : float list;
  verbs : (string, int) Hashtbl.t;
  codes : (string, int) Hashtbl.t;
  phases : (string, float list ref) Hashtbl.t;
      (* server-echoed phase durations in ms, per phase name *)
}

let fresh_tally () =
  {
    completed = 0;
    ok = 0;
    rejected = 0;
    transport_errors = 0;
    reconnects = 0;
    retried = 0;
    latencies = [];
    verbs = Hashtbl.create 8;
    codes = Hashtbl.create 8;
    phases = Hashtbl.create 8;
  }

let add_phase t name ms =
  match Hashtbl.find_opt t.phases name with
  | Some l -> l := ms :: !l
  | None -> Hashtbl.add t.phases name (ref [ ms ])

let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let pick_verb rng mix total =
  let x = Rng.float rng total in
  let rec walk acc = function
    | [] -> fst (List.hd mix)
    | (verb, w) :: rest ->
        let acc = acc +. w in
        if x < acc then verb else walk acc rest
  in
  walk 0. mix

(* Workers ride a {!Client.Robust} connection: a dropped connection or
   a restarted server costs a reconnect, not the thread. A failed call
   (retries exhausted) is recorded and the loop keeps going, so a
   crash-recovery run shows service resuming after the restart. *)
let worker cfg ~total_weight ~t_end ~idx ~sample ~sample_lock () =
  let t = fresh_tally () in
  let client =
    Client.Robust.create ~host:cfg.host ?timeout_ms:cfg.timeout_ms
      ~retries:cfg.retries
      ~seed:(cfg.seed + (1000 * idx) + 7)
      ~port:cfg.port ()
  in
  let rng = Rng.create (cfg.seed + (1000 * idx)) in
  let n = ref 0 in
  while Obs.Core.now () < t_end do
    (match cfg.drop_every with
    | Some k when k > 0 && !n > 0 && !n mod k = 0 -> Client.Robust.drop client
    | _ -> ());
    let verb = pick_verb rng cfg.mix total_weight in
    (* Deterministic per-worker trace ids: a rerun with the same seed
       mints the same ids, so client/server JSONL joins are stable. *)
    let trace =
      if cfg.trace_requests then
        Some
          { Protocol.trace_id =
              Printf.sprintf "lg-%d-%d-%d" cfg.seed idx !n;
            parent_span = None }
      else None
    in
    (* [unique_specs] gives every request its own spec seed, so
       neither the placement cache nor single-flight dedup can
       coalesce the work — the run then measures raw solve
       throughput. *)
    let spec =
      match cfg.spec with
      | Some s when cfg.unique_specs ->
          Some
            { s with
              Qp_instance.Spec.seed =
                s.Qp_instance.Spec.seed + (idx * 100_000) + !n }
      | other -> other
    in
    let req =
      Protocol.request
        ~id:(Json.Int ((idx * 1_000_000) + !n))
        ?spec ~options:cfg.options ?trace verb
    in
    incr n;
    let ev =
      match trace with
      | Some tc when Obs.Wide.active () ->
          let ev =
            Obs.Wide.start ~kind:"client_call" ~trace_id:tc.Protocol.trace_id
              ()
          in
          Obs.Wide.set_str ev "verb" (Protocol.verb_name verb);
          Obs.Wide.set_int ev "worker" idx;
          ev
      | _ -> Obs.Wide.start ~kind:"client_call" () (* inert *)
    in
    let t0 = Obs.Core.now () in
    match Client.Robust.call client req with
    | Error _ ->
        t.transport_errors <- t.transport_errors + 1;
        Obs.Wide.finish ~outcome:"transport_error" ev;
        (* The server may be down entirely (crash tests): breathe
           before offering the next request. *)
        Unix.sleepf 0.05
    | Ok resp ->
        let dt_ms = (Obs.Core.now () -. t0) *. 1000. in
        t.completed <- t.completed + 1;
        t.latencies <- dt_ms :: t.latencies;
        bump t.verbs resp.Protocol.verb;
        Obs.Wide.phase ev "call" (dt_ms /. 1000.);
        (match resp.Protocol.timing with
        | Some server_phases ->
            List.iter
              (fun (name, s) ->
                let ms = s *. 1000. in
                add_phase t name ms;
                Obs.Wide.phase ev ("server_" ^ name) s)
              server_phases
        | None -> ());
        (match resp.Protocol.payload with
        | Ok result ->
            t.ok <- t.ok + 1;
            Obs.Wide.finish ~outcome:"ok" ev;
            if verb = Protocol.Solve && Atomic.get sample = None then begin
              Mutex.lock sample_lock;
              if Atomic.get sample = None then Atomic.set sample (Some result);
              Mutex.unlock sample_lock
            end
        | Error e ->
            let code = Protocol.serve_error_code e in
            bump t.codes code;
            Obs.Wide.finish ~outcome:code ev;
            (match e with
            | Protocol.Overloaded _ | Protocol.Deadline_exceeded _ ->
                t.rejected <- t.rejected + 1
            | Protocol.Typed _ -> ()))
  done;
  t.reconnects <- Client.Robust.reconnects client;
  t.retried <- Client.Robust.retried client;
  Client.Robust.close client;
  t

let run (cfg : config) =
  if cfg.connections < 1 then
    Qp_error.invalid_instancef "loadgen: connections must be >= 1"
  else if cfg.duration_s <= 0. then
    Qp_error.invalid_instancef "loadgen: duration must be positive"
  else begin
    let total_weight = List.fold_left (fun a (_, w) -> a +. w) 0. cfg.mix in
    if total_weight <= 0. then
      Qp_error.invalid_instancef "loadgen: mix weights must be positive"
    else begin
      let sample = Atomic.make None in
      let sample_lock = Mutex.create () in
      let t_start = Obs.Core.now () in
      let t_end = t_start +. cfg.duration_s in
      let slots = Array.make cfg.connections None in
      let threads =
        List.init cfg.connections (fun idx ->
            Thread.create
              (fun () ->
                slots.(idx) <-
                  Some
                    (worker cfg ~total_weight ~t_end ~idx ~sample ~sample_lock
                       ()))
              ())
      in
      List.iter Thread.join threads;
      let tallies = List.filter_map Fun.id (Array.to_list slots) in
      let wall_s = Obs.Core.now () -. t_start in
      let merged = fresh_tally () in
      List.iter
        (fun t ->
          merged.completed <- merged.completed + t.completed;
          merged.ok <- merged.ok + t.ok;
          merged.rejected <- merged.rejected + t.rejected;
          merged.transport_errors <- merged.transport_errors + t.transport_errors;
          merged.reconnects <- merged.reconnects + t.reconnects;
          merged.retried <- merged.retried + t.retried;
          merged.latencies <- List.rev_append t.latencies merged.latencies;
          Hashtbl.iter
            (fun k v ->
              Hashtbl.replace merged.verbs k
                (v + Option.value ~default:0 (Hashtbl.find_opt merged.verbs k)))
            t.verbs;
          Hashtbl.iter
            (fun k v ->
              Hashtbl.replace merged.codes k
                (v + Option.value ~default:0 (Hashtbl.find_opt merged.codes k)))
            t.codes;
          Hashtbl.iter
            (fun name l -> List.iter (add_phase merged name) !l)
            t.phases)
        tallies;
      if merged.completed = 0 && merged.transport_errors >= cfg.connections
      then
        Qp_error.invalid_instancef
          "loadgen: no connection to %s:%d ever succeeded" cfg.host cfg.port
      else begin
        let sorted_counts tbl =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        Ok
          {
            connections = cfg.connections;
            wall_s;
            completed = merged.completed;
            ok = merged.ok;
            rejected = merged.rejected;
            transport_errors = merged.transport_errors;
            reconnects = merged.reconnects;
            retried = merged.retried;
            throughput_rps =
              (if wall_s > 0. then float_of_int merged.completed /. wall_s
               else 0.);
            latencies_ms = Array.of_list merged.latencies;
            by_verb = sorted_counts merged.verbs;
            by_code = sorted_counts merged.codes;
            sample_outcome = Atomic.get sample;
            phases_ms =
              Hashtbl.fold
                (fun name l acc -> (name, Array.of_list !l) :: acc)
                merged.phases []
              |> List.sort (fun (a, _) (b, _) -> String.compare a b);
          }
      end
    end
  end

let report_to_json r =
  let latency_fields =
    if Array.length r.latencies_ms = 0 then [ ("count", Json.Int 0) ]
    else
      [ ("count", Json.Int (Array.length r.latencies_ms));
        ("mean_ms", Json.Float (Stats.mean r.latencies_ms));
        ("p50_ms", Json.Float (Stats.percentile r.latencies_ms 50.));
        ("p95_ms", Json.Float (Stats.percentile r.latencies_ms 95.));
        ("p99_ms", Json.Float (Stats.percentile r.latencies_ms 99.));
        ("max_ms", Json.Float (Stats.max r.latencies_ms)) ]
  in
  let counts kvs =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) kvs)
  in
  Json.Obj
    ([ ("schema", Json.String "qp-loadgen/1");
      ("version", Json.String Obs.Build_info.version);
      ("connections", Json.Int r.connections);
      ("wall_s", Json.Float r.wall_s);
      ("completed", Json.Int r.completed);
      ("ok", Json.Int r.ok);
      ("rejected", Json.Int r.rejected);
      ("transport_errors", Json.Int r.transport_errors);
      ("reconnects", Json.Int r.reconnects);
      ("retried", Json.Int r.retried);
      ("throughput_rps", Json.Float r.throughput_rps);
      ("latency", Json.Obj latency_fields);
      ("by_verb", counts r.by_verb);
      ("by_code", counts r.by_code) ]
    (* The phase breakdown appears only when the run collected server
       timing (trace_requests on), so default reports keep their
       pre-trace shape. *)
    @ (match r.phases_ms with
      | [] -> []
      | phases ->
          [ ( "phases",
              Json.Obj
                (List.map
                   (fun (name, samples) ->
                     ( name,
                       Json.Obj
                         [ ("count", Json.Int (Array.length samples));
                           ("mean_ms", Json.Float (Stats.mean samples));
                           ("p50_ms", Json.Float (Stats.percentile samples 50.));
                           ("p95_ms", Json.Float (Stats.percentile samples 95.));
                           ("p99_ms", Json.Float (Stats.percentile samples 99.))
                         ] ))
                   phases) ) ])
    @ [ ( "sample_outcome",
          match r.sample_outcome with Some j -> j | None -> Json.Null ) ])

(* ------------------------------------------------------------------ *)
(* Saturation sweep                                                    *)
(* ------------------------------------------------------------------ *)

type sweep_config = {
  base : config; (* per-cell settings; host/port/connections overridden *)
  server_spec : Qp_instance.Spec.t;
  server_jobs : int list;
  connections_sweep : int list;
  cache_capacity : int; (* 0 = cache off (pure solve-throughput scaling) *)
  queue_depth : int;
}

type sweep_cell = {
  sw_jobs : int;
  sw_connections : int;
  sw_report : report;
  sw_cache : (string * int) list;
      (* hits/misses/inflight_joins/evictions from the final health *)
}

(* One isolated server per cell: an in-process server thread on an
   ephemeral port, the closed-loop generator against it, a final
   health scrape for the cache counters, then shutdown + join — so
   every cell starts cold and its counters are absolute. *)
let run_cell sc ~jobs ~connections =
  let port_slot = Atomic.make None in
  let server_result = ref (Ok ()) in
  let srv =
    Thread.create
      (fun () ->
        server_result :=
          Server.run
            ~ready:(fun p -> Atomic.set port_slot (Some p))
            { Server.default_config with
              Server.host = "127.0.0.1";
              port = 0;
              queue_depth = sc.queue_depth;
              default_spec = sc.server_spec;
              jobs;
              cache_capacity = sc.cache_capacity })
      ()
  in
  let rec wait_port n =
    match Atomic.get port_slot with
    | Some p -> Ok p
    | None when n > 0 ->
        Unix.sleepf 0.005;
        wait_port (n - 1)
    | None -> Qp_error.invalid_instancef "sweep: server did not come up"
  in
  let finish () =
    (match Atomic.get port_slot with
    | Some port -> (
        match Client.connect ~port () with
        | Ok c ->
            ignore (Client.call c (Protocol.request Protocol.Shutdown));
            Client.close c
        | Error _ -> ())
    | None -> ());
    Thread.join srv
  in
  match
    let* port = wait_port 1000 in
    let* report =
      run { sc.base with host = "127.0.0.1"; port; connections }
    in
    let* health =
      let* c = Client.connect ~port () in
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let* resp = Client.call c (Protocol.request Protocol.Health) in
      match resp.Protocol.payload with
      | Ok h -> Ok h
      | Error e ->
          Qp_error.invalid_instancef "sweep: health failed (%s)"
            (Protocol.serve_error_message e)
    in
    let cache =
      match Json.member "solve_cache" health with
      | Some c ->
          List.filter_map
            (fun k ->
              Option.bind (Json.member k c) Json.to_int
              |> Option.map (fun v -> (k, v)))
            [ "hits"; "misses"; "inflight_joins"; "evictions"; "entries" ]
      | None -> []
    in
    Ok { sw_jobs = jobs; sw_connections = connections; sw_report = report;
         sw_cache = cache }
  with
  | result ->
      finish ();
      result
  | exception e ->
      finish ();
      raise e

let sweep sc =
  if sc.server_jobs = [] || sc.connections_sweep = [] then
    Qp_error.invalid_instancef "sweep: server_jobs and connections must be non-empty"
  else
    List.fold_left
      (fun acc jobs ->
        let* acc = acc in
        let* cells =
          List.fold_left
            (fun acc connections ->
              let* acc = acc in
              let* cell = run_cell sc ~jobs ~connections in
              Ok (cell :: acc))
            (Ok []) sc.connections_sweep
        in
        Ok (acc @ List.rev cells))
      (Ok []) sc.server_jobs

let cell_to_json c =
  let lat p =
    if Array.length c.sw_report.latencies_ms = 0 then Json.Null
    else Json.Float (Stats.percentile c.sw_report.latencies_ms p)
  in
  let lookups =
    List.fold_left
      (fun a k ->
        a + Option.value ~default:0 (List.assoc_opt k c.sw_cache))
      0
      [ "hits"; "misses"; "inflight_joins" ]
  in
  let hits = Option.value ~default:0 (List.assoc_opt "hits" c.sw_cache) in
  Json.Obj
    [ ("server_jobs", Json.Int c.sw_jobs);
      ("connections", Json.Int c.sw_connections);
      ("throughput_rps", Json.Float c.sw_report.throughput_rps);
      ("completed", Json.Int c.sw_report.completed);
      ("ok", Json.Int c.sw_report.ok);
      ("rejected", Json.Int c.sw_report.rejected);
      ("p50_ms", lat 50.);
      ("p99_ms", lat 99.);
      ( "cache",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) c.sw_cache) );
      ( "cache_hit_rate",
        if lookups = 0 then Json.Null
        else Json.Float (float_of_int hits /. float_of_int lookups) ) ]

let sweep_to_json cells =
  Json.Obj
    [ ("schema", Json.String "qp-saturation/1");
      ("version", Json.String Obs.Build_info.version);
      ("cells", Json.List (List.map cell_to_json cells)) ]
