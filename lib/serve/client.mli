(** Blocking [qp-serve/1] client.

    One connection, synchronous framing. [call] is the common path
    (send one request, read one response); [send]/[send_raw]/[recv]
    are split out so tests and the load generator can pipeline many
    requests into a single write (the deterministic way to exercise
    the server's admission control) or push arbitrary bytes at the
    framing layer. Thread-safe only in the trivial sense: one thread
    per client, as in {!Loadgen}. *)

module Qp_error := Qp_util.Qp_error

type t

val connect :
  ?host:string -> ?max_frame:int -> port:int -> unit -> (t, Qp_error.t) result
(** TCP connect (default host 127.0.0.1, frame bound
    {!Frame.default_max_len}). [Error (Internal _)] when the
    connection is refused. *)

val send : t -> Protocol.request -> (unit, Qp_error.t) result
val send_raw : t -> string -> (unit, Qp_error.t) result
(** [send_raw] frames arbitrary bytes — not necessarily JSON. *)

val recv : t -> (Protocol.response option, Qp_error.t) result
(** Next response frame; [Ok None] on clean EOF (server closed).
    [Error _] on truncated frames or undecodable responses. *)

val call : t -> Protocol.request -> (Protocol.response, Qp_error.t) result
(** [send] then [recv], treating EOF as an error. *)

val close : t -> unit
(** Idempotent. *)
