(** Blocking [qp-serve/1] client.

    One connection, synchronous framing. [call] is the common path
    (send one request, read one response); [send]/[send_raw]/[recv]
    are split out so tests and the load generator can pipeline many
    requests into a single write (the deterministic way to exercise
    the server's admission control) or push arbitrary bytes at the
    framing layer. Thread-safe only in the trivial sense: one thread
    per client, as in {!Loadgen}. *)

module Qp_error := Qp_util.Qp_error

type t

val connect :
  ?host:string ->
  ?max_frame:int ->
  ?timeout_ms:int ->
  port:int ->
  unit ->
  (t, Qp_error.t) result
(** TCP connect (default host 127.0.0.1, frame bound
    {!Frame.default_max_len}). [Error (Internal _)] when the
    connection is refused. With [timeout_ms] the connect is bounded
    (non-blocking connect + select) and the same budget is installed
    as the socket send/receive timeout, so a later [call] against a
    hung or partitioned server fails with [Error (Internal _)] instead
    of blocking forever. *)

val send : t -> Protocol.request -> (unit, Qp_error.t) result
val send_raw : t -> string -> (unit, Qp_error.t) result
(** [send_raw] frames arbitrary bytes — not necessarily JSON. *)

val recv : t -> (Protocol.response option, Qp_error.t) result
(** Next response frame; [Ok None] on clean EOF (server closed).
    [Error _] on truncated frames or undecodable responses. *)

val call : t -> Protocol.request -> (Protocol.response, Qp_error.t) result
(** [send] then [recv], treating EOF as an error. *)

val close : t -> unit
(** Idempotent. *)

(** Self-healing client: a lazily-(re)connected {!t} plus a bounded
    retry policy. A transport error (refused/reset/timeout/EOF) drops
    the connection and retries on a fresh one; an [overloaded] reply
    is retried in place. Backoff is exponential with full jitter
    (deterministic from [seed]), capped at 2 s per pause, so a herd of
    clients re-arriving after a server restart decorrelates. After
    [retries] extra attempts the last failure is returned as-is — a
    final [overloaded] response surfaces as a response, not an error. *)
module Robust : sig
  type t

  val create :
    ?host:string ->
    ?max_frame:int ->
    ?timeout_ms:int ->
    ?retries:int ->
    ?backoff_ms:float ->
    ?seed:int ->
    port:int ->
    unit ->
    t
  (** No I/O happens here: the first {!call} connects. Defaults:
      3 retries, 25 ms base backoff, no timeout, seed 1. *)

  val call : t -> Protocol.request -> (Protocol.response, Qp_error.t) result

  val reconnects : t -> int
  (** Successful connection establishments beyond the first. *)

  val retried : t -> int
  (** Retry attempts across all calls (each pause counts once). *)

  val drop : t -> unit
  (** Close the current connection (if any) without touching the
      policy; the next {!call} reconnects. Fault-injection hook for
      the load generator's connection-drop chaos mode. *)

  val close : t -> unit
end
