(** The [qp-serve/1] request/response protocol.

    One frame ({!Frame}) carries one JSON document. A request names a
    verb, an optional instance {!Qp_instance.Spec.t} (missing fields
    default to the server's spec) and per-request options; a response
    echoes the request [id] verbatim and carries either a result
    object or a typed error payload with a stable [code]. Servers
    answer {e every} parseable frame — malformed requests come back as
    [invalid_instance] errors, overload as [overloaded], expired
    deadlines as [deadline_exceeded]; a connection is only dropped on
    a framing violation.

    Request:
    {v
    {"schema":"qp-serve/1","verb":"solve","id":1,
     "spec":{"topology":"waxman","nodes":16,"system":"grid:3",
             "cap_slack":1.0,"seed":1},
     "options":{"alg":"lp","alpha":2.0,"deadline_ms":500,
                "pivot_budget":100000}}
    v}

    Response:
    {v
    {"schema":"qp-serve/1","id":1,"verb":"solve","ok":true,
     "result":{...qp-solve/1 outcome...}}
    {"schema":"qp-serve/1","id":1,"verb":"solve","ok":false,
     "error":{"code":"overloaded","message":"..."}}
    v} *)

module Json := Qp_obs.Json
module Qp_error := Qp_util.Qp_error
module Spec := Qp_instance.Spec
module Delta := Qp_instance.Delta

val schema : string
(** ["qp-serve/1"] — bumped on any shape change. *)

type verb = Solve | Update | Info | Metrics | Health | Shutdown

val verb_name : verb -> string
val verb_of_name : string -> (verb, Qp_error.t) result

type options = {
  algorithm : string; (* solver registry name; default "lp" *)
  alpha : float; (* Theorem 3.7 rounding parameter; default 2. *)
  deadline_ms : int option;
      (* per-request deadline override (None = the server default) *)
  pivot_budget : int option;
      (* work cap: simplex pivots on the LP route, search nodes on
         the tree route *)
}

val default_options : options

type trace_ctx = {
  trace_id : string;
      (* client-minted id adopted by the server's wide event *)
  parent_span : string option; (* client-side span, for nesting *)
}

type request = {
  id : Json.t; (* echoed verbatim in the response; Null when absent *)
  verb : verb;
  spec : Spec.t option; (* None = the server's live instance *)
  delta : Delta.op list option; (* [update] payload *)
  options : options;
  trace : trace_ctx option;
      (* optional wire trace context; requests without one get no
         timing echo and responses stay byte-identical to qp-serve/1
         before trace propagation *)
}

val request :
  ?id:Json.t ->
  ?spec:Spec.t ->
  ?delta:Delta.op list ->
  ?options:options ->
  ?trace:trace_ctx ->
  verb ->
  request

val trace_ctx_to_json : trace_ctx -> Json.t
val trace_ctx_of_json : Json.t -> (trace_ctx, Qp_error.t) result

val request_to_json : request -> Json.t

val request_of_json : Json.t -> (request, Qp_error.t) result

val parse_request : string -> (request, Json.t * Qp_error.t) result
(** Parse one frame payload. On error the best-effort request [id]
    (Null when unrecoverable) rides along so the server can still
    correlate the error reply. *)

(** {2 Spec codec} *)

val spec_to_json : Spec.t -> Json.t
(** Serializes topology/nodes/system/cap_slack/seed. [jobs] is not on
    the wire: the worker pool belongs to the server. *)

val spec_of_json : ?base:Spec.t -> Json.t -> (Spec.t, Qp_error.t) result
(** Missing fields default to [base] (default {!Spec.default} with
    [jobs = 1]); value validation happens later in {!Spec.build}. *)

(** {2 Delta codec}

    The [update] verb carries a [delta] array, one object per
    {!Qp_instance.Delta.op}:
    {v
    [{"op":"set_edge","u":0,"v":1,"length":2.5},
     {"op":"remove_edge","u":3,"v":4},
     {"op":"set_capacity","node":2,"cap":4.0},
     {"op":"set_cap_slack","slack":1.5}]
    v}
    Fields are required — a delta op with a missing endpoint or value
    is a protocol error, never defaulted. *)

val delta_to_json : Delta.op list -> Json.t
val delta_of_json : Json.t -> (Delta.op list, Qp_error.t) result

(** {2 Responses} *)

type serve_error =
  | Typed of Qp_error.t (* library errors, wire codes from {!Qp_place.Serialize.error_code} *)
  | Overloaded of string (* admission control rejected the request *)
  | Deadline_exceeded of string (* deadline passed in queue or mid-solve *)

val serve_error_code : serve_error -> string
val serve_error_message : serve_error -> string

type response = {
  id : Json.t;
  verb : string;
  payload : (Json.t, serve_error) result;
  timing : (string * float) list option;
      (* server phase durations in seconds (parse/queue/handle),
         present only when the request carried a trace context *)
}

val response :
  ?timing:(string * float) list ->
  id:Json.t ->
  verb:string ->
  (Json.t, serve_error) result ->
  response

val response_to_json : response -> Json.t
(** [timing] is emitted as an object of numbers and omitted entirely
    when [None] or empty, keeping trace-free responses byte-identical
    to the pre-trace protocol. *)

val response_of_json : Json.t -> (response, Qp_error.t) result

(** {2 Shared solve semantics} *)

val solver_params : Spec.t -> options -> Qp_place.Solver.params
(** The one spec-to-params mapping shared by [qplace solve] and the
    server, so a served placement is byte-identical to the offline
    result: [alpha]/[pivot_budget] from the options, solver seed
    [spec.seed + 1] (instance construction uses [spec.seed]). *)
