let header_len = 4
let default_max_len = 4 * 1024 * 1024

let encode payload =
  let len = String.length payload in
  let b = Bytes.create (header_len + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b header_len len;
  b

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    let n = Unix.write fd b !off (len - !off) in
    off := !off + n
  done

let write fd payload = write_all fd (encode payload)

(* Read exactly [len] bytes; [false] on EOF at offset 0, [Failure] on
   EOF mid-buffer. *)
let really_read fd b len =
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < len do
    match Unix.read fd b !off (len - !off) with
    | 0 -> if !off = 0 then eof := true else failwith "Frame.read: truncated frame"
    | n -> off := !off + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  not !eof

let decode_len b ~max_len =
  let len = Int32.to_int (Bytes.get_int32_be b 0) in
  if len < 0 || len > max_len then
    Error (Printf.sprintf "frame length %d outside [0, %d]" len max_len)
  else Ok len

let read ?(max_len = default_max_len) fd =
  let hdr = Bytes.create header_len in
  if not (really_read fd hdr header_len) then None
  else
    match decode_len hdr ~max_len with
    | Error msg -> failwith ("Frame.read: " ^ msg)
    | Ok len ->
        let body = Bytes.create len in
        if len > 0 && not (really_read fd body len) then
          failwith "Frame.read: truncated frame"
        else Some (Bytes.unsafe_to_string body)

module Decoder = struct
  type t = {
    max_len : int;
    buf : Buffer.t;
    mutable pos : int; (* consumed prefix of [buf] *)
    mutable poisoned : string option;
  }

  let create ?(max_len = default_max_len) () =
    { max_len; buf = Buffer.create 4096; pos = 0; poisoned = None }

  let feed t b n = Buffer.add_subbytes t.buf b 0 n

  (* Drop the consumed prefix once it dominates the buffer, so a
     long-lived connection does not grow its buffer without bound. *)
  let compact t =
    if t.pos > 65536 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let next t =
    match t.poisoned with
    | Some msg -> `Error msg
    | None ->
        let avail = Buffer.length t.buf - t.pos in
        if avail < header_len then `Await
        else begin
          let hdr = Bytes.of_string (Buffer.sub t.buf t.pos header_len) in
          match decode_len hdr ~max_len:t.max_len with
          | Error msg ->
              t.poisoned <- Some msg;
              `Error msg
          | Ok len ->
              if avail < header_len + len then `Await
              else begin
                let payload = Buffer.sub t.buf (t.pos + header_len) len in
                t.pos <- t.pos + header_len + len;
                compact t;
                `Frame payload
              end
        end
end
