(** Closed-loop load generator for a [qp-serve/1] server.

    [connections] client threads each run an issue-wait-record loop
    until [duration_s] elapses: pick a verb from the weighted [mix]
    with a per-thread seeded {!Qp_util.Rng} (seed + thread index, so a
    run's request sequence is reproducible), send, block on the reply,
    record the latency. Closed-loop means offered load tracks server
    capacity — each connection has at most one request in flight.

    The report follows the [qp-bench/2] artifact style (schema
    [qp-loadgen/1]): totals, throughput, latency percentiles, per-verb
    and per-error-code counts, and [sample_outcome] — the first
    successful solve result — so scripts can diff a served placement
    against the offline [qplace solve] JSON byte-for-byte. *)

module Json := Qp_obs.Json
module Qp_error := Qp_util.Qp_error

type config = {
  host : string;
  port : int;
  connections : int;
  duration_s : float;
  mix : (Protocol.verb * float) list; (* weighted verb mix *)
  spec : Qp_instance.Spec.t option; (* None = the server's default *)
  options : Protocol.options;
  seed : int;
  timeout_ms : int option; (* connect + per-call socket timeout *)
  retries : int; (* {!Client.Robust} retry budget per call *)
  drop_every : int option;
      (* chaos mode: force-close the worker's connection before every
         k-th request, exercising the reconnect path under load *)
  trace_requests : bool;
      (* attach a deterministic per-request trace context (seed- and
         worker-derived ids), emit a client-side wide event per call,
         and collect the server's phase-timing echo into the report *)
  unique_specs : bool;
      (* give every request its own spec seed (requires [spec]), so
         neither the placement cache nor single-flight dedup can
         coalesce the work — measures raw solve throughput *)
}

val default_config : config
(** 1 connection, 2 s, mix [solve=8 info=1 health=1], default options,
    seed 1, port {!Server.default_config}[.port], no timeout,
    3 retries, no connection-drop chaos, no trace propagation, shared
    specs. *)

val mix_of_string : string -> ((Protocol.verb * float) list, Qp_error.t) result
(** Parse ["solve=8,info=1,health=1"]. Weights must be positive;
    [shutdown] is rejected (a load mix must not kill the server). *)

type report = {
  connections : int;
  wall_s : float;
  completed : int; (* requests answered, ok or typed error *)
  ok : int;
  rejected : int; (* overloaded / deadline_exceeded replies *)
  transport_errors : int; (* calls failed after exhausting retries *)
  reconnects : int; (* connections re-established across all workers *)
  retried : int; (* retry attempts across all workers *)
  throughput_rps : float; (* completed / wall_s *)
  latencies_ms : float array; (* every completed request, unordered *)
  by_verb : (string * int) list; (* sorted by verb *)
  by_code : (string * int) list; (* error-code histogram, sorted *)
  sample_outcome : Json.t option;
  phases_ms : (string * float array) list;
      (* server-echoed phase samples (parse/queue/handle) in ms,
         sorted by phase; empty unless [trace_requests] *)
}

val run : config -> (report, Qp_error.t) result
(** [Error _] only when no connection could be established at all;
    per-request failures are data ([transport_errors]). *)

val report_to_json : report -> Json.t
(** [qp-loadgen/1] document; latencies appear as
    [{mean,p50,p95,p99,max}] in milliseconds, not as the raw array. A
    [phases] object (per-phase count/mean/p50/p95/p99) is present only
    when the run collected server timing, so default-flag reports keep
    their pre-trace shape. *)

(** {2 Saturation sweep}

    Throughput vs connections at each server-jobs count, each cell
    against a fresh in-process {!Server} on an ephemeral port — cold
    cache, absolute counters. With [cache_capacity = 0] and
    [base.unique_specs = true] the sweep measures raw solve-throughput
    scaling; with the cache on and shared specs it measures the hit
    path. *)

type sweep_config = {
  base : config; (* per-cell settings; host/port/connections overridden *)
  server_spec : Qp_instance.Spec.t;
  server_jobs : int list;
  connections_sweep : int list;
  cache_capacity : int; (* 0 = cache off *)
  queue_depth : int;
}

type sweep_cell = {
  sw_jobs : int;
  sw_connections : int;
  sw_report : report;
  sw_cache : (string * int) list;
      (* hits/misses/inflight_joins/evictions/entries from the final
         health scrape *)
}

val sweep : sweep_config -> (sweep_cell list, Qp_error.t) result
(** Cells in sweep order: for each jobs value, each connection count.
    [Error _] when a cell's server cannot start or its run fails. *)

val sweep_to_json : sweep_cell list -> Json.t
(** [qp-saturation/1] document: one record per cell with throughput,
    latency percentiles, cache counters and hit rate. *)
