(** [qp_serve]: a TCP placement service with an I/O-only event loop
    and pooled solve dispatch.

    One [Unix.select] event loop owns the listening socket and every
    connection; requests are framed ({!Frame}), parsed
    ({!Protocol.parse_request}) and admitted into a bounded FIFO
    queue. Non-solve verbs are handled inline; solves are dispatched
    onto [jobs] dedicated {!Qp_par.Pool} worker domains ([jobs = 1]
    runs them inline — the fully sequential path), each under a
    fresh scoped metrics registry, with completions flowing back to
    the loop over a self-pipe. Responses on one connection are written
    in request order through per-connection ordered slots, so
    pipelined clients see the same wire order at any [jobs]. A served
    placement is byte-identical to the offline [qplace solve] result
    for the same spec and options, at any [jobs] count, cached or
    fresh.

    The placement cache is a bounded LRU over canonical
    [(instance, options)] keys: full-spec requests key on
    {!Qp_instance.Spec.canonical_key} (which excludes [jobs]),
    spec-less requests on the live instance's current generation —
    so an applied [update] strands old entries without clearing, and
    full-spec entries survive reconfiguration. Identical concurrent
    solves are deduplicated in a single-flight table: one worker runs
    the solve, every joined request gets the same payload (deadline
    errors stay with the requester whose deadline fired; a waiting
    joiner is then promoted and the solve retried under its own
    budget). Errors are never cached.

    Robustness invariants (tested in [test/test_serve.ml]):
    - every parseable frame gets exactly one response — malformed
      requests come back as typed error frames, never dropped
      connections; only framing violations close the connection (after
      an error frame when the stream still admits one);
    - admission control: when the queue holds [queue_depth] requests,
      further requests are rejected immediately with [overloaded];
      rejections are written before anything admitted in the same read
      cycle, as in the single-threaded server;
    - deadlines: a request carries (or inherits) a deadline measured
      from arrival; expired requests are rejected with
      [deadline_exceeded] before solving, and a deadline that passes
      mid-solve cancels that solve cooperatively — domain-local
      ({!Qp_lp.Simplex.set_deadline}), so concurrent pooled solves
      never cancel each other;
    - graceful drain: a [shutdown] request or SIGTERM stops accepting,
      answers everything already admitted (including solves already
      running on worker domains, in per-connection order), closes all
      connections and returns.

    Telemetry: per-request spans on the installed {!Qp_obs.Trace}
    sink, and request counters plus latency and queue-wait histograms
    in {!Qp_obs.Metrics.default} (exported by the [metrics] verb as
    Prometheus text). Cache lookups are counted in
    [qp_serve_solve_cache_total{result=hit|miss|inflight,generation}]
    — the generation label makes post-update hit rates interpretable —
    and capacity evictions in [qp_serve_solve_cache_evictions_total].
    Pooled solves record onto scoped registries merged into the
    default registry on the loop thread at delivery. With a
    {!Qp_obs.Wide} sink installed the server emits one wide event per
    request (parse/queue/handle/serialize/write phases, queue depth at
    admission, the solve's simplex pivot count), adopting the client's
    trace id when the request carries a [trace] context — and echoes
    parse/queue/handle timing in such responses. Every answered
    request feeds a {!Qp_obs.Slo} tracker whose windows, error rates
    and burn rates are reported by the [health] verb alongside the
    live queue length, inflight solves and cache
    hit/miss/join/eviction counts. *)

type config = {
  host : string; (* bind address, default "127.0.0.1" *)
  port : int; (* 0 = ephemeral (reported via [ready]) *)
  queue_depth : int; (* admission-control bound on queued requests *)
  default_deadline_ms : int option; (* None = no deadline *)
  max_frame : int; (* framing bound, bytes *)
  max_connections : int;
  default_spec : Qp_instance.Spec.t; (* fills missing request spec fields *)
  jobs : int;
      (* concurrent solves: 1 = inline on the event loop, N > 1 = N
         dedicated worker domains *)
  cache_capacity : int; (* placement-cache entries; 0 disables caching *)
}

val default_config : config
(** 127.0.0.1:7341, queue depth 64, no deadline, 4 MiB frames, 1024
    connections, {!Qp_instance.Spec.default}, [jobs = 1],
    [cache_capacity = 256]. *)

val run : ?ready:(int -> unit) -> config -> (unit, Qp_util.Qp_error.t) result
(** Bind, serve until drained ([shutdown] verb or SIGTERM), then
    return. [ready] is called once with the bound port before the
    first [accept] (how tests and scripts learn an ephemeral port).
    [Error (Invalid_instance _)] when the socket cannot be bound, and
    when [jobs < 1] or [cache_capacity < 0]. Installs a SIGTERM
    handler and ignores SIGPIPE for the duration of the call. *)
