(** [qp_serve]: a single-threaded TCP placement service.

    One [Unix.select] event loop owns the listening socket and every
    connection; requests are framed ({!Frame}), parsed
    ({!Protocol.parse_request}) and admitted into a bounded FIFO
    queue, then dispatched in admission order. Solves run through the
    {!Qp_place.Solver} registry on the process-default
    {!Qp_par.Pool}, so a served placement is byte-identical to the
    offline [qplace solve] result for the same spec and options.

    Robustness invariants (tested in [test/test_serve.ml]):
    - every parseable frame gets exactly one response — malformed
      requests come back as typed error frames, never dropped
      connections; only framing violations close the connection (after
      an error frame when the stream still admits one);
    - admission control: when the queue holds [queue_depth] requests,
      further requests are rejected immediately with [overloaded];
    - deadlines: a request carries (or inherits) a deadline measured
      from arrival; expired requests are rejected with
      [deadline_exceeded] before solving, and a deadline that passes
      mid-solve cancels the simplex cooperatively
      ({!Qp_lp.Simplex.set_deadline});
    - graceful drain: a [shutdown] request or SIGTERM stops accepting,
      answers everything already admitted (in order), closes all
      connections and returns.

    Telemetry: per-request spans on the installed {!Qp_obs.Trace}
    sink, and request counters plus latency and queue-wait histograms
    in {!Qp_obs.Metrics.default} (exported by the [metrics] verb as
    Prometheus text, together with [process_uptime_seconds] and the
    [qp_build_info] gauge). With a {!Qp_obs.Wide} sink installed the
    server also emits one wide event per request
    (parse/queue/handle/serialize/write phases, queue depth at
    admission, simplex pivot delta), adopting the client's trace id
    when the request carries a [trace] context — and echoes
    parse/queue/handle timing in such responses. Every answered
    request feeds a {!Qp_obs.Slo} tracker whose windows, error rates
    and burn rates are reported by the [health] verb alongside the
    live queue length and solve-cache hit/miss counts. *)

type config = {
  host : string; (* bind address, default "127.0.0.1" *)
  port : int; (* 0 = ephemeral (reported via [ready]) *)
  queue_depth : int; (* admission-control bound on queued requests *)
  default_deadline_ms : int option; (* None = no deadline *)
  max_frame : int; (* framing bound, bytes *)
  max_connections : int;
  default_spec : Qp_instance.Spec.t; (* fills missing request spec fields *)
}

val default_config : config
(** 127.0.0.1:7341, queue depth 64, no deadline, 4 MiB frames, 1024
    connections, {!Qp_instance.Spec.default}. *)

val run : ?ready:(int -> unit) -> config -> (unit, Qp_util.Qp_error.t) result
(** Bind, serve until drained ([shutdown] verb or SIGTERM), then
    return. [ready] is called once with the bound port before the
    first [accept] (how tests and scripts learn an ephemeral port).
    [Error (Invalid_instance _)] when the socket cannot be bound.
    Installs a SIGTERM handler and ignores SIGPIPE for the duration of
    the call. *)
