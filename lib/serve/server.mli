(** [qp_serve]: a single-threaded TCP placement service.

    One [Unix.select] event loop owns the listening socket and every
    connection; requests are framed ({!Frame}), parsed
    ({!Protocol.parse_request}) and admitted into a bounded FIFO
    queue, then dispatched in admission order. Solves run through the
    {!Qp_place.Solver} registry on the process-default
    {!Qp_par.Pool}, so a served placement is byte-identical to the
    offline [qplace solve] result for the same spec and options.

    Robustness invariants (tested in [test/test_serve.ml]):
    - every parseable frame gets exactly one response — malformed
      requests come back as typed error frames, never dropped
      connections; only framing violations close the connection (after
      an error frame when the stream still admits one);
    - admission control: when the queue holds [queue_depth] requests,
      further requests are rejected immediately with [overloaded];
    - deadlines: a request carries (or inherits) a deadline measured
      from arrival; expired requests are rejected with
      [deadline_exceeded] before solving, and a deadline that passes
      mid-solve cancels the simplex cooperatively
      ({!Qp_lp.Simplex.set_deadline});
    - graceful drain: a [shutdown] request or SIGTERM stops accepting,
      answers everything already admitted (in order), closes all
      connections and returns.

    Telemetry: per-request spans on the installed {!Qp_obs.Trace}
    sink, and request counters plus a latency histogram in
    {!Qp_obs.Metrics.default} (exported by the [metrics] verb as
    Prometheus text). *)

type config = {
  host : string; (* bind address, default "127.0.0.1" *)
  port : int; (* 0 = ephemeral (reported via [ready]) *)
  queue_depth : int; (* admission-control bound on queued requests *)
  default_deadline_ms : int option; (* None = no deadline *)
  max_frame : int; (* framing bound, bytes *)
  max_connections : int;
  default_spec : Qp_instance.Spec.t; (* fills missing request spec fields *)
}

val default_config : config
(** 127.0.0.1:7341, queue depth 64, no deadline, 4 MiB frames, 1024
    connections, {!Qp_instance.Spec.default}. *)

val run : ?ready:(int -> unit) -> config -> (unit, Qp_util.Qp_error.t) result
(** Bind, serve until drained ([shutdown] verb or SIGTERM), then
    return. [ready] is called once with the bound port before the
    first [accept] (how tests and scripts learn an ephemeral port).
    [Error (Invalid_instance _)] when the socket cannot be bound.
    Installs a SIGTERM handler and ignores SIGPIPE for the duration of
    the call. *)
