module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error

let ( let* ) = Qp_error.( let* )

type t = { fd : Unix.file_descr; max_frame : int; mutable open_ : bool }

(* The client is used from plain threads (loadgen) where an ECONNRESET
   or EPIPE is data, not a crash: everything maps into [result]. *)
let wrap what f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Qp_error.Internal
           (Printf.sprintf "%s: %s" what (Unix.error_message err)))
  | exception Failure msg ->
      Error (Qp_error.Internal (Printf.sprintf "%s: %s" what msg))

let connect ?(host = "127.0.0.1") ?(max_frame = Frame.default_max_len)
    ?timeout_ms ~port () =
  wrap "connect" @@ fun () ->
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try
     (match timeout_ms with
     | None -> Unix.connect fd addr
     | Some ms ->
         (* Bounded connect: non-blocking connect, select for
            writability, then read the pending error off the socket.
            The same budget becomes the send/recv timeout, so a hung
            server can stall a call by at most ~2x the budget. *)
         let t = float_of_int ms /. 1000. in
         Unix.set_nonblock fd;
         (try Unix.connect fd addr with
         | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
             match Unix.select [] [ fd ] [] t with
             | _, [], _ ->
                 raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", host))
             | _ -> (
                 match Unix.getsockopt_error fd with
                 | None -> ()
                 | Some err -> raise (Unix.Unix_error (err, "connect", host)))));
         Unix.clear_nonblock fd;
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO t;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO t)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; max_frame; open_ = true }

let send_raw t payload = wrap "send" @@ fun () -> Frame.write t.fd payload

let send t req =
  send_raw t (Json.to_string (Protocol.request_to_json req))

let recv t =
  let* frame = wrap "recv" @@ fun () -> Frame.read ~max_len:t.max_frame t.fd in
  match frame with
  | None -> Ok None
  | Some payload -> (
      match Json.of_string payload with
      | exception Json.Parse_error msg ->
          Error (Qp_error.Internal ("response JSON: " ^ msg))
      | j ->
          let* resp = Protocol.response_of_json j in
          Ok (Some resp))

let call t req =
  let* () = send t req in
  let* resp = recv t in
  match resp with
  | Some r -> Ok r
  | None -> Error (Qp_error.Internal "server closed the connection mid-call")

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Robust wrapper                                                      *)
(* ------------------------------------------------------------------ *)

module Robust = struct
  type client = t

  type t = {
    host : string;
    port : int;
    max_frame : int;
    timeout_ms : int option;
    retries : int;
    backoff_ms : float;
    rng : Qp_util.Rng.t;
    mutable conn : client option;
    mutable ever_connected : bool;
    mutable reconnects : int;
    mutable retried : int;
  }

  let create ?(host = "127.0.0.1") ?(max_frame = Frame.default_max_len)
      ?timeout_ms ?(retries = 3) ?(backoff_ms = 25.) ?(seed = 1) ~port () =
    {
      host;
      port;
      max_frame;
      timeout_ms;
      retries;
      backoff_ms;
      rng = Qp_util.Rng.create seed;
      conn = None;
      ever_connected = false;
      reconnects = 0;
      retried = 0;
    }

  let reconnects t = t.reconnects
  let retried t = t.retried

  let drop t =
    match t.conn with
    | Some c ->
        close c;
        t.conn <- None
    | None -> ()

  let close = drop

  let ensure t =
    match t.conn with
    | Some c -> Ok c
    | None -> (
        match
          connect ~host:t.host ~max_frame:t.max_frame ?timeout_ms:t.timeout_ms
            ~port:t.port ()
        with
        | Ok c ->
            if t.ever_connected then t.reconnects <- t.reconnects + 1;
            t.ever_connected <- true;
            t.conn <- Some c;
            Ok c
        | Error _ as e -> e)

  (* Full jitter, exponential base, capped at 2 s: enough spread that a
     thundering herd of retries after a server restart decorrelates. *)
  let backoff t ~attempt =
    let base = t.backoff_ms *. (2. ** float_of_int attempt) in
    let ms = base *. (0.5 +. Qp_util.Rng.uniform t.rng) in
    Unix.sleepf (Float.min ms 2000. /. 1000.)

  let call t req =
    let rec go attempt =
      let retry outcome =
        if attempt >= t.retries then outcome
        else begin
          t.retried <- t.retried + 1;
          backoff t ~attempt;
          go (attempt + 1)
        end
      in
      match ensure t with
      | Error e -> retry (Error e)
      | Ok c -> (
          match call c req with
          | Error e ->
              (* A transport error poisons the framing: reconnect. *)
              drop t;
              retry (Error e)
          | Ok resp -> (
              match resp.Protocol.payload with
              | Error (Protocol.Overloaded _) -> retry (Ok resp)
              | _ -> Ok resp))
    in
    go 0
end
