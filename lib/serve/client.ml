module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error

let ( let* ) = Qp_error.( let* )

type t = { fd : Unix.file_descr; max_frame : int; mutable open_ : bool }

(* The client is used from plain threads (loadgen) where an ECONNRESET
   or EPIPE is data, not a crash: everything maps into [result]. *)
let wrap what f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Qp_error.Internal
           (Printf.sprintf "%s: %s" what (Unix.error_message err)))
  | exception Failure msg ->
      Error (Qp_error.Internal (Printf.sprintf "%s: %s" what msg))

let connect ?(host = "127.0.0.1") ?(max_frame = Frame.default_max_len) ~port ()
    =
  wrap "connect" @@ fun () ->
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; max_frame; open_ = true }

let send_raw t payload = wrap "send" @@ fun () -> Frame.write t.fd payload

let send t req =
  send_raw t (Json.to_string (Protocol.request_to_json req))

let recv t =
  let* frame = wrap "recv" @@ fun () -> Frame.read ~max_len:t.max_frame t.fd in
  match frame with
  | None -> Ok None
  | Some payload -> (
      match Json.of_string payload with
      | exception Json.Parse_error msg ->
          Error (Qp_error.Internal ("response JSON: " ^ msg))
      | j ->
          let* resp = Protocol.response_of_json j in
          Ok (Some resp))

let call t req =
  let* () = send t req in
  let* resp = recv t in
  match resp with
  | Some r -> Ok r
  | None -> Error (Qp_error.Internal "server closed the connection mid-call")

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
