module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error
module Spec = Qp_instance.Spec
module Serialize = Qp_place.Serialize

let ( let* ) = Qp_error.( let* )

let schema = "qp-serve/1"

type verb = Solve | Info | Metrics | Health | Shutdown

let verb_name = function
  | Solve -> "solve"
  | Info -> "info"
  | Metrics -> "metrics"
  | Health -> "health"
  | Shutdown -> "shutdown"

let verb_of_name = function
  | "solve" -> Ok Solve
  | "info" -> Ok Info
  | "metrics" -> Ok Metrics
  | "health" -> Ok Health
  | "shutdown" -> Ok Shutdown
  | other ->
      Qp_error.invalid_instancef
        "unknown verb %S (solve|info|metrics|health|shutdown)" other

type options = {
  algorithm : string;
  alpha : float;
  deadline_ms : int option;
  pivot_budget : int option;
}

let default_options =
  { algorithm = "lp"; alpha = 2.; deadline_ms = None; pivot_budget = None }

type request = { id : Json.t; verb : verb; spec : Spec.t option; options : options }

let request ?(id = Json.Null) ?spec ?(options = default_options) verb =
  { id; verb; spec; options }

(* ------------------------------------------------------------------ *)
(* Spec codec                                                          *)
(* ------------------------------------------------------------------ *)

let spec_to_json (s : Spec.t) =
  Json.Obj
    [ ("topology", Json.String s.Spec.topology);
      ("nodes", Json.Int s.Spec.nodes);
      ("system", Json.String s.Spec.system);
      ("cap_slack", Json.Float s.Spec.cap_slack);
      ("seed", Json.Int s.Spec.seed) ]

(* Typed field accessors: a missing field falls back to [base], a
   present field of the wrong type is a protocol error (silently
   ignoring it would solve a different instance than the client
   named). *)
let field_str j key fallback =
  match Json.member key j with
  | None | Some Json.Null -> Ok fallback
  | Some v -> (
      match Json.to_str v with
      | Some s -> Ok s
      | None -> Qp_error.invalid_instancef "spec field %S must be a string" key)

let field_int j key fallback =
  match Json.member key j with
  | None | Some Json.Null -> Ok fallback
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Qp_error.invalid_instancef "spec field %S must be an integer" key)

let field_float j key fallback =
  match Json.member key j with
  | None | Some Json.Null -> Ok fallback
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Qp_error.invalid_instancef "spec field %S must be a number" key)

let spec_of_json ?(base = { Spec.default with Spec.jobs = 1 }) j =
  match j with
  | Json.Obj _ ->
      let* topology = field_str j "topology" base.Spec.topology in
      let* nodes = field_int j "nodes" base.Spec.nodes in
      let* system = field_str j "system" base.Spec.system in
      let* cap_slack = field_float j "cap_slack" base.Spec.cap_slack in
      let* seed = field_int j "seed" base.Spec.seed in
      Ok { Spec.topology; nodes; system; cap_slack; seed; jobs = base.Spec.jobs }
  | _ -> Qp_error.invalid_instancef "spec must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Request codec                                                       *)
(* ------------------------------------------------------------------ *)

let options_to_json (o : options) =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [ ("alg", Json.String o.algorithm);
      ("alpha", Json.Float o.alpha);
      ("deadline_ms", opt (fun v -> Json.Int v) o.deadline_ms);
      ("pivot_budget", opt (fun v -> Json.Int v) o.pivot_budget) ]

let options_of_json j =
  match j with
  | Json.Obj _ ->
      let* algorithm = field_str j "alg" default_options.algorithm in
      let* alpha = field_float j "alpha" default_options.alpha in
      let opt_int key =
        match Json.member key j with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Json.to_int v with
            | Some i -> Ok (Some i)
            | None ->
                Qp_error.invalid_instancef "option %S must be an integer" key)
      in
      let* deadline_ms = opt_int "deadline_ms" in
      let* pivot_budget = opt_int "pivot_budget" in
      Ok { algorithm; alpha; deadline_ms; pivot_budget }
  | _ -> Qp_error.invalid_instancef "options must be a JSON object"

let request_to_json (r : request) =
  Json.Obj
    ([ ("schema", Json.String schema); ("verb", Json.String (verb_name r.verb)) ]
    @ (match r.id with Json.Null -> [] | id -> [ ("id", id) ])
    @ (match r.spec with Some s -> [ ("spec", spec_to_json s) ] | None -> [])
    @ [ ("options", options_to_json r.options) ])

let request_of_json j =
  let id = Option.value (Json.member "id" j) ~default:Json.Null in
  let* () =
    match Json.member "schema" j with
    | None -> Ok () (* schema field optional on requests *)
    | Some s -> (
        match Json.to_str s with
        | Some v when v = schema -> Ok ()
        | Some v ->
            Qp_error.invalid_instancef "request schema %S (expected %S)" v schema
        | None -> Qp_error.invalid_instancef "request schema must be a string")
  in
  let* verb =
    match Option.bind (Json.member "verb" j) Json.to_str with
    | Some name -> verb_of_name name
    | None -> Qp_error.invalid_instancef "request: missing string field \"verb\""
  in
  let* spec =
    match Json.member "spec" j with
    | None | Some Json.Null -> Ok None
    | Some sj ->
        let* s = spec_of_json sj in
        Ok (Some s)
  in
  let* options =
    match Json.member "options" j with
    | None | Some Json.Null -> Ok default_options
    | Some oj -> options_of_json oj
  in
  Ok { id; verb; spec; options }

let parse_request payload =
  match Json.of_string payload with
  | exception Json.Parse_error msg ->
      Error (Json.Null, Qp_error.Invalid_instance ("request JSON: " ^ msg))
  | j -> (
      match request_of_json j with
      | Ok r -> Ok r
      | Error e ->
          Error (Option.value (Json.member "id" j) ~default:Json.Null, e))

(* ------------------------------------------------------------------ *)
(* Response codec                                                      *)
(* ------------------------------------------------------------------ *)

type serve_error =
  | Typed of Qp_error.t
  | Overloaded of string
  | Deadline_exceeded of string

let serve_error_code = function
  | Typed e -> Serialize.error_code e
  | Overloaded _ -> "overloaded"
  | Deadline_exceeded _ -> "deadline_exceeded"

let serve_error_message = function
  | Typed e -> Qp_error.to_string e
  | Overloaded msg | Deadline_exceeded msg -> msg

let serve_error_to_json = function
  | Typed e -> Serialize.error_to_json e
  | (Overloaded msg | Deadline_exceeded msg) as e ->
      Json.Obj
        [ ("code", Json.String (serve_error_code e));
          ("message", Json.String msg) ]

type response = { id : Json.t; verb : string; payload : (Json.t, serve_error) result }

let response_to_json (r : response) =
  Json.Obj
    ([ ("schema", Json.String schema); ("id", r.id);
       ("verb", Json.String r.verb) ]
    @
    match r.payload with
    | Ok result -> [ ("ok", Json.Bool true); ("result", result) ]
    | Error e ->
        [ ("ok", Json.Bool false); ("error", serve_error_to_json e) ])

let response_of_json j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some v when v = schema -> Ok ()
    | Some v ->
        Qp_error.invalid_instancef "response schema %S (expected %S)" v schema
    | None -> Qp_error.invalid_instancef "response: missing string field \"schema\""
  in
  let id = Option.value (Json.member "id" j) ~default:Json.Null in
  let* verb =
    match Option.bind (Json.member "verb" j) Json.to_str with
    | Some v -> Ok v
    | None -> Qp_error.invalid_instancef "response: missing string field \"verb\""
  in
  match Json.member "ok" j with
  | Some (Json.Bool true) -> (
      match Json.member "result" j with
      | Some result -> Ok { id; verb; payload = Ok result }
      | None -> Qp_error.invalid_instancef "response: ok without \"result\"")
  | Some (Json.Bool false) -> (
      match Json.member "error" j with
      | Some ej -> (
          let msg =
            match Option.bind (Json.member "message" ej) Json.to_str with
            | Some m -> m
            | None -> ""
          in
          match Option.bind (Json.member "code" ej) Json.to_str with
          | Some "overloaded" -> Ok { id; verb; payload = Error (Overloaded msg) }
          | Some "deadline_exceeded" ->
              Ok { id; verb; payload = Error (Deadline_exceeded msg) }
          | Some _ ->
              let* e = Serialize.error_of_json ej in
              Ok { id; verb; payload = Error (Typed e) }
          | None ->
              Qp_error.invalid_instancef "response error: missing string field \"code\"")
      | None -> Qp_error.invalid_instancef "response: not ok without \"error\"")
  | _ -> Qp_error.invalid_instancef "response: missing boolean field \"ok\""

(* ------------------------------------------------------------------ *)
(* Shared solve semantics                                              *)
(* ------------------------------------------------------------------ *)

let solver_params (spec : Spec.t) (o : options) =
  { Qp_place.Solver.default_params with
    Qp_place.Solver.alpha = o.alpha;
    seed = spec.Spec.seed + 1;
    pivot_budget = o.pivot_budget }
