module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error
module Spec = Qp_instance.Spec
module Delta = Qp_instance.Delta
module Serialize = Qp_place.Serialize

let ( let* ) = Qp_error.( let* )

let schema = "qp-serve/1"

type verb = Solve | Update | Info | Metrics | Health | Shutdown

let verb_name = function
  | Solve -> "solve"
  | Update -> "update"
  | Info -> "info"
  | Metrics -> "metrics"
  | Health -> "health"
  | Shutdown -> "shutdown"

let verb_of_name = function
  | "solve" -> Ok Solve
  | "update" -> Ok Update
  | "info" -> Ok Info
  | "metrics" -> Ok Metrics
  | "health" -> Ok Health
  | "shutdown" -> Ok Shutdown
  | other ->
      Qp_error.invalid_instancef
        "unknown verb %S (solve|update|info|metrics|health|shutdown)" other

type options = {
  algorithm : string;
  alpha : float;
  deadline_ms : int option;
  pivot_budget : int option;
}

let default_options =
  { algorithm = "lp"; alpha = 2.; deadline_ms = None; pivot_budget = None }

(* Wire trace context: a client-minted id that the server adopts, so
   client- and server-side wide events for one request join on
   [trace_id] across processes. *)
type trace_ctx = { trace_id : string; parent_span : string option }

type request = {
  id : Json.t;
  verb : verb;
  spec : Spec.t option;
  delta : Delta.op list option;
  options : options;
  trace : trace_ctx option;
}

let request ?(id = Json.Null) ?spec ?delta ?(options = default_options) ?trace
    verb =
  { id; verb; spec; delta; options; trace }

(* ------------------------------------------------------------------ *)
(* Spec codec                                                          *)
(* ------------------------------------------------------------------ *)

let spec_to_json (s : Spec.t) =
  Json.Obj
    [ ("topology", Json.String s.Spec.topology);
      ("nodes", Json.Int s.Spec.nodes);
      ("system", Json.String s.Spec.system);
      ("cap_slack", Json.Float s.Spec.cap_slack);
      ("seed", Json.Int s.Spec.seed) ]

(* Typed field accessors: a missing field falls back to [base], a
   present field of the wrong type is a protocol error (silently
   ignoring it would solve a different instance than the client
   named). *)
let field_str j key fallback =
  match Json.member key j with
  | None | Some Json.Null -> Ok fallback
  | Some v -> (
      match Json.to_str v with
      | Some s -> Ok s
      | None -> Qp_error.invalid_instancef "spec field %S must be a string" key)

let field_int j key fallback =
  match Json.member key j with
  | None | Some Json.Null -> Ok fallback
  | Some v -> (
      match Json.to_int v with
      | Some i -> Ok i
      | None -> Qp_error.invalid_instancef "spec field %S must be an integer" key)

let field_float j key fallback =
  match Json.member key j with
  | None | Some Json.Null -> Ok fallback
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Qp_error.invalid_instancef "spec field %S must be a number" key)

let spec_of_json ?(base = { Spec.default with Spec.jobs = 1 }) j =
  match j with
  | Json.Obj _ ->
      let* topology = field_str j "topology" base.Spec.topology in
      let* nodes = field_int j "nodes" base.Spec.nodes in
      let* system = field_str j "system" base.Spec.system in
      let* cap_slack = field_float j "cap_slack" base.Spec.cap_slack in
      let* seed = field_int j "seed" base.Spec.seed in
      Ok { Spec.topology; nodes; system; cap_slack; seed; jobs = base.Spec.jobs }
  | _ -> Qp_error.invalid_instancef "spec must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Delta codec                                                         *)
(* ------------------------------------------------------------------ *)

let delta_op_to_json = function
  | Delta.Set_edge { u; v; length } ->
      Json.Obj
        [ ("op", Json.String "set_edge"); ("u", Json.Int u); ("v", Json.Int v);
          ("length", Json.Float length) ]
  | Delta.Remove_edge { u; v } ->
      Json.Obj
        [ ("op", Json.String "remove_edge"); ("u", Json.Int u);
          ("v", Json.Int v) ]
  | Delta.Set_capacity { node; cap } ->
      Json.Obj
        [ ("op", Json.String "set_capacity"); ("node", Json.Int node);
          ("cap", Json.Float cap) ]
  | Delta.Set_cap_slack slack ->
      Json.Obj
        [ ("op", Json.String "set_cap_slack"); ("slack", Json.Float slack) ]

let delta_to_json ops = Json.List (List.map delta_op_to_json ops)

(* Required typed fields: a delta op with a missing field has no sane
   default — defaulting an endpoint or a length would apply an edit
   the client never asked for. *)
let req_int j key =
  match Option.bind (Json.member key j) Json.to_int with
  | Some i -> Ok i
  | None -> Qp_error.invalid_instancef "delta op: missing integer field %S" key

let req_float j key =
  match Option.bind (Json.member key j) Json.to_float with
  | Some f -> Ok f
  | None -> Qp_error.invalid_instancef "delta op: missing number field %S" key

let delta_op_of_json j =
  match j with
  | Json.Obj _ -> (
      match Option.bind (Json.member "op" j) Json.to_str with
      | Some "set_edge" ->
          let* u = req_int j "u" in
          let* v = req_int j "v" in
          let* length = req_float j "length" in
          Ok (Delta.Set_edge { u; v; length })
      | Some "remove_edge" ->
          let* u = req_int j "u" in
          let* v = req_int j "v" in
          Ok (Delta.Remove_edge { u; v })
      | Some "set_capacity" ->
          let* node = req_int j "node" in
          let* cap = req_float j "cap" in
          Ok (Delta.Set_capacity { node; cap })
      | Some "set_cap_slack" ->
          let* slack = req_float j "slack" in
          Ok (Delta.Set_cap_slack slack)
      | Some other ->
          Qp_error.invalid_instancef
            "delta op %S (set_edge|remove_edge|set_capacity|set_cap_slack)"
            other
      | None ->
          Qp_error.invalid_instancef "delta op: missing string field \"op\"")
  | _ -> Qp_error.invalid_instancef "delta op must be a JSON object"

let delta_of_json j =
  match j with
  | Json.List ops ->
      List.fold_left
        (fun acc op ->
          let* acc = acc in
          let* op = delta_op_of_json op in
          Ok (op :: acc))
        (Ok []) ops
      |> Result.map List.rev
  | _ -> Qp_error.invalid_instancef "delta must be a JSON array of ops"

(* ------------------------------------------------------------------ *)
(* Request codec                                                       *)
(* ------------------------------------------------------------------ *)

let options_to_json (o : options) =
  let opt f = function Some v -> f v | None -> Json.Null in
  Json.Obj
    [ ("alg", Json.String o.algorithm);
      ("alpha", Json.Float o.alpha);
      ("deadline_ms", opt (fun v -> Json.Int v) o.deadline_ms);
      ("pivot_budget", opt (fun v -> Json.Int v) o.pivot_budget) ]

let options_of_json j =
  match j with
  | Json.Obj _ ->
      let* algorithm = field_str j "alg" default_options.algorithm in
      let* alpha = field_float j "alpha" default_options.alpha in
      let opt_int key =
        match Json.member key j with
        | None | Some Json.Null -> Ok None
        | Some v -> (
            match Json.to_int v with
            | Some i -> Ok (Some i)
            | None ->
                Qp_error.invalid_instancef "option %S must be an integer" key)
      in
      let* deadline_ms = opt_int "deadline_ms" in
      let* pivot_budget = opt_int "pivot_budget" in
      Ok { algorithm; alpha; deadline_ms; pivot_budget }
  | _ -> Qp_error.invalid_instancef "options must be a JSON object"

let trace_ctx_to_json (t : trace_ctx) =
  Json.Obj
    (("trace_id", Json.String t.trace_id)
    ::
    (match t.parent_span with
    | Some p -> [ ("parent_span", Json.String p) ]
    | None -> []))

let trace_ctx_of_json j =
  match j with
  | Json.Obj _ -> (
      match Option.bind (Json.member "trace_id" j) Json.to_str with
      | Some trace_id ->
          let* parent_span =
            match Json.member "parent_span" j with
            | None | Some Json.Null -> Ok None
            | Some v -> (
                match Json.to_str v with
                | Some s -> Ok (Some s)
                | None ->
                    Qp_error.invalid_instancef
                      "trace field \"parent_span\" must be a string")
          in
          Ok { trace_id; parent_span }
      | None ->
          Qp_error.invalid_instancef
            "trace: missing string field \"trace_id\"")
  | _ -> Qp_error.invalid_instancef "trace must be a JSON object"

let request_to_json (r : request) =
  Json.Obj
    ([ ("schema", Json.String schema); ("verb", Json.String (verb_name r.verb)) ]
    @ (match r.id with Json.Null -> [] | id -> [ ("id", id) ])
    @ (match r.spec with Some s -> [ ("spec", spec_to_json s) ] | None -> [])
    @ (match r.delta with
      | Some ops -> [ ("delta", delta_to_json ops) ]
      | None -> [])
    @ (match r.trace with
      | Some t -> [ ("trace", trace_ctx_to_json t) ]
      | None -> [])
    @ [ ("options", options_to_json r.options) ])

let request_of_json j =
  let id = Option.value (Json.member "id" j) ~default:Json.Null in
  let* () =
    match Json.member "schema" j with
    | None -> Ok () (* schema field optional on requests *)
    | Some s -> (
        match Json.to_str s with
        | Some v when v = schema -> Ok ()
        | Some v ->
            Qp_error.invalid_instancef "request schema %S (expected %S)" v schema
        | None -> Qp_error.invalid_instancef "request schema must be a string")
  in
  let* verb =
    match Option.bind (Json.member "verb" j) Json.to_str with
    | Some name -> verb_of_name name
    | None -> Qp_error.invalid_instancef "request: missing string field \"verb\""
  in
  let* spec =
    match Json.member "spec" j with
    | None | Some Json.Null -> Ok None
    | Some sj ->
        let* s = spec_of_json sj in
        Ok (Some s)
  in
  let* delta =
    match Json.member "delta" j with
    | None | Some Json.Null -> Ok None
    | Some dj ->
        let* ops = delta_of_json dj in
        Ok (Some ops)
  in
  let* options =
    match Json.member "options" j with
    | None | Some Json.Null -> Ok default_options
    | Some oj -> options_of_json oj
  in
  let* trace =
    match Json.member "trace" j with
    | None | Some Json.Null -> Ok None
    | Some tj ->
        let* t = trace_ctx_of_json tj in
        Ok (Some t)
  in
  Ok { id; verb; spec; delta; options; trace }

let parse_request payload =
  match Json.of_string payload with
  | exception Json.Parse_error msg ->
      Error (Json.Null, Qp_error.Invalid_instance ("request JSON: " ^ msg))
  | j -> (
      match request_of_json j with
      | Ok r -> Ok r
      | Error e ->
          Error (Option.value (Json.member "id" j) ~default:Json.Null, e))

(* ------------------------------------------------------------------ *)
(* Response codec                                                      *)
(* ------------------------------------------------------------------ *)

type serve_error =
  | Typed of Qp_error.t
  | Overloaded of string
  | Deadline_exceeded of string

let serve_error_code = function
  | Typed e -> Serialize.error_code e
  | Overloaded _ -> "overloaded"
  | Deadline_exceeded _ -> "deadline_exceeded"

let serve_error_message = function
  | Typed e -> Qp_error.to_string e
  | Overloaded msg | Deadline_exceeded msg -> msg

let serve_error_to_json = function
  | Typed e -> Serialize.error_to_json e
  | (Overloaded msg | Deadline_exceeded msg) as e ->
      Json.Obj
        [ ("code", Json.String (serve_error_code e));
          ("message", Json.String msg) ]

type response = {
  id : Json.t;
  verb : string;
  payload : (Json.t, serve_error) result;
  (* Server-side phase durations in seconds (parse/queue/handle),
     echoed only when the request carried a trace context so default
     responses stay byte-identical. Serialize/write phases cannot
     appear here — they happen after this record is encoded — and are
     only in the server's wide event. *)
  timing : (string * float) list option;
}

let response ?timing ~id ~verb payload = { id; verb; payload; timing }

let response_to_json (r : response) =
  Json.Obj
    ([ ("schema", Json.String schema); ("id", r.id);
       ("verb", Json.String r.verb) ]
    @ (match r.timing with
      | None | Some [] -> []
      | Some phases ->
          [ ("timing",
             Json.Obj (List.map (fun (n, d) -> (n, Json.Float d)) phases)) ])
    @
    match r.payload with
    | Ok result -> [ ("ok", Json.Bool true); ("result", result) ]
    | Error e ->
        [ ("ok", Json.Bool false); ("error", serve_error_to_json e) ])

let response_of_json j =
  let* () =
    match Option.bind (Json.member "schema" j) Json.to_str with
    | Some v when v = schema -> Ok ()
    | Some v ->
        Qp_error.invalid_instancef "response schema %S (expected %S)" v schema
    | None -> Qp_error.invalid_instancef "response: missing string field \"schema\""
  in
  let id = Option.value (Json.member "id" j) ~default:Json.Null in
  let* verb =
    match Option.bind (Json.member "verb" j) Json.to_str with
    | Some v -> Ok v
    | None -> Qp_error.invalid_instancef "response: missing string field \"verb\""
  in
  let* timing =
    match Json.member "timing" j with
    | None | Some Json.Null -> Ok None
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (name, v) ->
            let* acc = acc in
            match Json.to_float v with
            | Some d -> Ok ((name, d) :: acc)
            | None ->
                Qp_error.invalid_instancef
                  "response timing field %S must be a number" name)
          (Ok []) fields
        |> Result.map (fun ps -> Some (List.rev ps))
    | Some _ -> Qp_error.invalid_instancef "response timing must be an object"
  in
  match Json.member "ok" j with
  | Some (Json.Bool true) -> (
      match Json.member "result" j with
      | Some result -> Ok { id; verb; payload = Ok result; timing }
      | None -> Qp_error.invalid_instancef "response: ok without \"result\"")
  | Some (Json.Bool false) -> (
      match Json.member "error" j with
      | Some ej -> (
          let msg =
            match Option.bind (Json.member "message" ej) Json.to_str with
            | Some m -> m
            | None -> ""
          in
          match Option.bind (Json.member "code" ej) Json.to_str with
          | Some "overloaded" ->
              Ok { id; verb; payload = Error (Overloaded msg); timing }
          | Some "deadline_exceeded" ->
              Ok { id; verb; payload = Error (Deadline_exceeded msg); timing }
          | Some _ ->
              let* e = Serialize.error_of_json ej in
              Ok { id; verb; payload = Error (Typed e); timing }
          | None ->
              Qp_error.invalid_instancef "response error: missing string field \"code\"")
      | None -> Qp_error.invalid_instancef "response: not ok without \"error\"")
  | _ -> Qp_error.invalid_instancef "response: missing boolean field \"ok\""

(* ------------------------------------------------------------------ *)
(* Shared solve semantics                                              *)
(* ------------------------------------------------------------------ *)

let solver_params (spec : Spec.t) (o : options) =
  let topology_hint, system_hint = Spec.solver_hints spec in
  { Qp_place.Solver.default_params with
    Qp_place.Solver.alpha = o.alpha;
    seed = spec.Spec.seed + 1;
    pivot_budget = o.pivot_budget;
    topology_hint;
    system_hint }
