(** Bounded least-recently-used map.

    O(1) amortized [find]/[put] via a hash table plus an intrusive
    recency list. A [find] or [put] of an existing key promotes it to
    most-recently-used; inserting into a full map evicts the
    least-recently-used entry first. [capacity = 0] disables storage:
    every [put] is a no-op and every [find] misses, giving callers a
    single code path for "cache off".

    Not thread-safe — confine each instance to one thread. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument when [capacity < 0]. *)

val capacity : ('k, 'v) t -> int

val length : ('k, 'v) t -> int
(** Current number of entries; always [<= capacity]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup, promoting the entry to most-recently-used on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Membership test without promotion. *)

val put : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, promoting to most-recently-used. Evicts the
    least-recently-used entry when inserting a new key into a full
    map. No-op when [capacity = 0]. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Drop one entry. Does not count as an eviction. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry. Does not count as evictions — invalidation and
    capacity pressure are distinct signals; see {!evictions}. *)

val evictions : ('k, 'v) t -> int
(** Total capacity evictions since [create] (monotone; unaffected by
    {!remove}/{!clear}). *)

val fold : ('k, 'v) t -> init:'a -> f:('a -> 'k -> 'v -> 'a) -> 'a
(** Fold in recency order, most recent first. *)
