(** Typed errors for the solver engine.

    Every user-reachable failure in the placement stack — malformed
    instances, infeasible relaxations, numerical trouble deep inside a
    solver stage — is represented as a {!t} and carried in a
    [('a, t) result], so front ends (the [qplace] CLI, the bench
    driver, the runtime repair loop) report a one-line diagnostic and a
    meaningful exit code instead of dying on a stack trace.

    [Invalid_argument] remains reserved for true programmer errors
    (out-of-range indices, broken invariants in trusted code paths);
    the {!guard} combinator converts it at the engine boundary, where a
    stage rejecting its input means "this solver does not apply to
    this instance". *)

type t =
  | Invalid_instance of string
      (** The instance (spec, file, flag value) is malformed: unknown
          topology or construction name, non-positive node count,
          negative capacity, parse error, or a solver's structural
          precondition (e.g. a non-grid system handed to the grid
          layout). *)
  | Infeasible of string
      (** The instance is well-formed but admits no solution under its
          capacities (LP/GAP relaxation empty, no capacity-respecting
          placement found). *)
  | Capacity_violation of { node : int; load : float; cap : float }
      (** A produced placement exceeded its declared load bound on
          [node] — a solver contract violation surfaced to the
          caller. *)
  | Internal of string
      (** Numerical or invariant trouble inside a solver stage (pivot
          budget exceeded, incomplete matching). Inputs were valid;
          the engine could not certify a result. *)

exception Error of t
(** Raised by deep solver stages (simplex pivot budget,
    Shmoys–Tardos matching extraction) that cannot return a [result]
    without churning every intermediate signature. {!guard} and
    {!protect} catch it at the engine boundary. *)

val to_string : t -> string
(** One-line human rendering, e.g.
    ["infeasible: LP has no solution under these capacities"]. *)

val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** Process exit code convention used by [qplace]:
    [Infeasible]/[Capacity_violation] -> 1, [Invalid_instance] -> 2,
    [Internal] -> 3. *)

val invalid_instancef : ('a, unit, string, ('b, t) result) format4 -> 'a
(** [invalid_instancef fmt ...] = [Error (Invalid_instance msg)]. *)

val infeasiblef : ('a, unit, string, ('b, t) result) format4 -> 'a
val internalf : ('a, unit, string, ('b, t) result) format4 -> 'a

val guard : (unit -> ('a, t) result) -> ('a, t) result
(** Runs the thunk, converting raised {!Error} back to [Error],
    [Invalid_argument msg] to [Error (Invalid_instance msg)] and
    [Failure msg] to [Error (Internal msg)]. The boundary between the
    exception-based stage internals and the [result]-based engine
    API. *)

val of_invalid_arg : (unit -> 'a) -> ('a, t) result
(** [of_invalid_arg f] is [Ok (f ())], with the same exception
    conversions as {!guard}. *)

val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result
(** [Result.bind] for pipelining validation steps. *)
