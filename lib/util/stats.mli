(** Small descriptive-statistics toolkit used by experiments and the
    simulator. All functions operate on float arrays; empty input is an
    [Invalid_argument] error unless stated otherwise. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); 0 for singletons. *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float
val sum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs q] with [q] in [\[0,100\]]; linear interpolation
    between order statistics (total order via [Float.compare]). Input
    need not be sorted. NaN and infinities are rejected with
    [Invalid_argument] — order statistics are meaningless on
    non-finite data. *)

val median : float array -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

val summarize : float array -> summary
(** Sorts once and reads min/p50/p95/max off the sorted copy. Rejects
    non-finite inputs like {!percentile}. *)

val summarize_opt : float array -> summary option
(** Total variant for record emitters: [None] on empty input instead of
    [Invalid_argument]. A singleton yields the degenerate summary
    (stddev 0, all percentiles equal) — finite, never NaN. *)

val percentile_opt : float array -> float -> float option
(** [None] on empty input; otherwise {!percentile}. *)

val default_quantiles : float array
(** Deciles: 0, 10, ..., 100. *)

val cdf : ?quantiles:float array -> float array -> (float * float) list
(** Empirical CDF sampled on a quantile grid: [(q, percentile q)]
    pairs, non-decreasing in value when [quantiles] ascend. Total on
    tiny samples: [[]] for empty input (a well-defined degenerate cell),
    a constant curve for singletons. Rejects non-finite data like
    {!percentile}. *)

val pp_summary : Format.formatter -> summary -> unit

type online
(** Constant-space online accumulator (Welford). *)

val online_create : unit -> online
val online_add : online -> float -> unit
val online_mean : online -> float
val online_stddev : online -> float
val online_count : online -> int

val online_merge : online -> online -> online
(** Parallel Welford combine: the result is equivalent (up to
    roundoff) to folding both input streams into a single accumulator.
    Inputs are not mutated; either side may be empty. *)
