let check name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let sum xs = Array.fold_left ( +. ) 0. xs

let mean xs =
  check "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check "variance" xs;
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)

let stddev xs = sqrt (variance xs)

let min xs =
  check "min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check "max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let check_finite name xs =
  Array.iter
    (fun x ->
      if not (Float.is_finite x) then
        invalid_arg ("Stats." ^ name ^ ": non-finite input"))
    xs

(* [sorted] must already be sorted ascending (all elements finite). *)
let percentile_of_sorted sorted q =
  if q < 0. || q > 100. then invalid_arg "Stats.percentile: q out of range";
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let percentile xs q =
  check "percentile" xs;
  check_finite "percentile" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_of_sorted sorted q

let median xs = percentile xs 50.

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let summarize xs =
  check "summarize" xs;
  check_finite "summarize" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    n = Array.length sorted;
    mean = mean sorted;
    stddev = stddev sorted;
    min = sorted.(0);
    p50 = percentile_of_sorted sorted 50.;
    p95 = percentile_of_sorted sorted 95.;
    max = sorted.(Array.length sorted - 1);
  }

(* Tiny-sample guards: scenario cells can legitimately observe 0 or 1
   samples (an empty region, a single client). Record emitters need a
   total function there — [None] for empty, a degenerate-but-finite
   summary for singletons — rather than the Invalid_argument the strict
   API (correctly) raises mid-computation. *)
let summarize_opt xs =
  if Array.length xs = 0 then None else Some (summarize xs)

let percentile_opt xs q =
  if Array.length xs = 0 then None else Some (percentile xs q)

(* Empirical CDF sampled on a quantile grid: [(q, percentile q)] for
   each [q] in [quantiles] (default 0, 10, .., 100). Values are
   non-decreasing in [q] by construction (order statistics of one
   sorted copy); [] on empty input — a well-defined degenerate cell,
   not an exception. A singleton yields a constant (still monotone)
   curve. *)
let default_quantiles = Array.init 11 (fun i -> 10. *. float_of_int i)

let cdf ?(quantiles = default_quantiles) xs =
  if Array.length xs = 0 then []
  else begin
    check_finite "cdf" xs;
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    Array.to_list
      (Array.map (fun q -> (q, percentile_of_sorted sorted q)) quantiles)
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f p50=%.4f p95=%.4f max=%.4f"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max

type online = { mutable count : int; mutable m : float; mutable s : float }

let online_create () = { count = 0; m = 0.; s = 0. }

let online_add o x =
  o.count <- o.count + 1;
  let delta = x -. o.m in
  o.m <- o.m +. (delta /. float_of_int o.count);
  o.s <- o.s +. (delta *. (x -. o.m))

let online_mean o = o.m

let online_stddev o =
  if o.count < 2 then 0. else sqrt (o.s /. float_of_int (o.count - 1))

let online_count o = o.count

(* Parallel Welford combine (Chan et al.): merging two accumulators is
   equivalent to having folded both streams into one. *)
let online_merge a b =
  let n = a.count + b.count in
  if n = 0 then online_create ()
  else begin
    let na = float_of_int a.count and nb = float_of_int b.count in
    let nf = float_of_int n in
    let delta = b.m -. a.m in
    {
      count = n;
      m = a.m +. (delta *. nb /. nf);
      s = a.s +. b.s +. (delta *. delta *. na *. nb /. nf);
    }
  end
