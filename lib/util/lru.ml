(* Bounded LRU map: Hashtbl for O(1) lookup plus an intrusive
   doubly-linked recency list (head = most recent). [capacity = 0]
   disables storage entirely — every [put] is a no-op — which lets
   callers keep one code path for "cache off". Not thread-safe; the
   qp_serve cache confines all access to the event-loop thread. *)

type ('k, 'v) node = {
  nkey : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option; (* toward head / more recent *)
  mutable next : ('k, 'v) node option; (* toward tail / less recent *)
}

type ('k, 'v) t = {
  cap : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable evictions : int; (* capacity evictions only, not clear/remove *)
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    evictions = 0;
  }

let capacity t = t.cap
let length t = Hashtbl.length t.tbl
let evictions t = t.evictions

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let promote t n =
  match t.head with
  | Some h when h == n -> ()
  | _ ->
      unlink t n;
      push_front t n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      promote t n;
      Some n.value

let mem t k = Hashtbl.mem t.tbl k

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl n.nkey;
      t.evictions <- t.evictions + 1

let put t k v =
  if t.cap > 0 then
    match Hashtbl.find_opt t.tbl k with
    | Some n ->
        n.value <- v;
        promote t n
    | None ->
        if Hashtbl.length t.tbl >= t.cap then evict_lru t;
        let n = { nkey = k; value = v; prev = None; next = None } in
        Hashtbl.replace t.tbl k n;
        push_front t n

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl k

let clear t =
  Hashtbl.reset t.tbl;
  t.head <- None;
  t.tail <- None

let fold t ~init ~f =
  (* Recency order, most recent first. *)
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.nkey n.value) n.next
  in
  go init t.head
