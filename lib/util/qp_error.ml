type t =
  | Invalid_instance of string
  | Infeasible of string
  | Capacity_violation of { node : int; load : float; cap : float }
  | Internal of string

exception Error of t

let to_string = function
  | Invalid_instance msg -> "invalid instance: " ^ msg
  | Infeasible msg -> "infeasible: " ^ msg
  | Capacity_violation { node; load; cap } ->
      Printf.sprintf "capacity violation: node %d carries load %g over capacity %g" node
        load cap
  | Internal msg -> "internal error: " ^ msg

let pp fmt e = Format.pp_print_string fmt (to_string e)

let exit_code = function
  | Infeasible _ | Capacity_violation _ -> 1
  | Invalid_instance _ -> 2
  | Internal _ -> 3

let invalid_instancef fmt = Printf.ksprintf (fun msg -> Result.Error (Invalid_instance msg)) fmt
let infeasiblef fmt = Printf.ksprintf (fun msg -> Result.Error (Infeasible msg)) fmt
let internalf fmt = Printf.ksprintf (fun msg -> Result.Error (Internal msg)) fmt

let guard f =
  match f () with
  | r -> r
  | exception Error e -> Result.Error e
  | exception Invalid_argument msg -> Result.Error (Invalid_instance msg)
  | exception Failure msg -> Result.Error (Internal msg)

let of_invalid_arg f = guard (fun () -> Result.Ok (f ()))

let ( let* ) = Result.bind
