(* Edge-list representation: edge i and its residual i lxor 1 are
   adjacent in the arrays. *)
type t = {
  n : int;
  mutable dst : int array;
  mutable cap : int array;
  mutable cost : float array;
  mutable n_edges : int;
  adj : int list array; (* edge indices out of each node *)
  mutable original : int list; (* indices of user-added arcs, reversed *)
}

let create n =
  if n <= 0 then invalid_arg "Mcmf.create: n must be positive";
  {
    n;
    dst = Array.make 16 0;
    cap = Array.make 16 0;
    cost = Array.make 16 0.;
    n_edges = 0;
    adj = Array.make n [];
    original = [];
  }

let grow t =
  let c = Array.length t.dst in
  let dst = Array.make (2 * c) 0 in
  let cap = Array.make (2 * c) 0 in
  let cost = Array.make (2 * c) 0. in
  Array.blit t.dst 0 dst 0 t.n_edges;
  Array.blit t.cap 0 cap 0 t.n_edges;
  Array.blit t.cost 0 cost 0 t.n_edges;
  t.dst <- dst;
  t.cap <- cap;
  t.cost <- cost

let push_edge t d c w =
  if t.n_edges = Array.length t.dst then grow t;
  t.dst.(t.n_edges) <- d;
  t.cap.(t.n_edges) <- c;
  t.cost.(t.n_edges) <- w;
  t.n_edges <- t.n_edges + 1

let add_edge t ~src ~dst ~capacity ~cost =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Mcmf.add_edge: endpoint out of range";
  if capacity < 0 then invalid_arg "Mcmf.add_edge: negative capacity";
  let idx = t.n_edges in
  push_edge t dst capacity cost;
  push_edge t src 0 (-.cost);
  t.adj.(src) <- idx :: t.adj.(src);
  t.adj.(dst) <- (idx + 1) :: t.adj.(dst);
  t.original <- idx :: t.original

(* Bellman–Ford from [source] to initialize potentials when negative
   arc costs are present. *)
let bellman_ford t source =
  let dist = Array.make t.n infinity in
  dist.(source) <- 0.;
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters <= t.n do
    changed := false;
    incr iters;
    for e = 0 to t.n_edges - 1 do
      if t.cap.(e) > 0 then begin
        (* Source node of edge e is dst of its partner. *)
        let u = t.dst.(e lxor 1) in
        if dist.(u) +. t.cost.(e) < dist.(t.dst.(e)) -. 1e-12 then begin
          dist.(t.dst.(e)) <- dist.(u) +. t.cost.(e);
          changed := true
        end
      end
    done
  done;
  if !changed then
    raise (Qp_util.Qp_error.Error (Internal "Mcmf: negative cycle detected"));
  dist

let min_cost_flow t ~source ~sink ?(max_flow = max_int) () =
  if source < 0 || source >= t.n || sink < 0 || sink >= t.n then
    invalid_arg "Mcmf.min_cost_flow: endpoint out of range";
  let has_negative = ref false in
  for e = 0 to t.n_edges - 1 do
    if t.cap.(e) > 0 && t.cost.(e) < 0. then has_negative := true
  done;
  let pot =
    if !has_negative then begin
      let d = bellman_ford t source in
      Array.map (fun x -> if x = infinity then 0. else x) d
    end
    else Array.make t.n 0.
  in
  let total_flow = ref 0 in
  let total_cost = ref 0. in
  let dist = Array.make t.n infinity in
  let pred_edge = Array.make t.n (-1) in
  let continue_ = ref true in
  while !continue_ && !total_flow < max_flow do
    (* Dijkstra on reduced costs. *)
    Array.fill dist 0 t.n infinity;
    Array.fill pred_edge 0 t.n (-1);
    dist.(source) <- 0.;
    (* Array-scan Dijkstra: O(n^2 + m) per augmentation, fine for the
       bipartite networks we build (hundreds of nodes). *)
    let settled = Array.make t.n false in
    let remaining = ref t.n in
    while !remaining > 0 do
      (* Extract unsettled node with min dist. *)
      let best = ref (-1) in
      let bestd = ref infinity in
      for v = 0 to t.n - 1 do
        if (not settled.(v)) && dist.(v) < !bestd then begin
          bestd := dist.(v);
          best := v
        end
      done;
      if !best < 0 then remaining := 0
      else begin
        let u = !best in
        settled.(u) <- true;
        decr remaining;
        List.iter
          (fun e ->
            if t.cap.(e) > 0 then begin
              let v = t.dst.(e) in
              let rc = t.cost.(e) +. pot.(u) -. pot.(v) in
              let nd = dist.(u) +. rc in
              if nd < dist.(v) -. 1e-12 then begin
                dist.(v) <- nd;
                pred_edge.(v) <- e
              end
            end)
          t.adj.(u)
      end
    done;
    if dist.(sink) = infinity then continue_ := false
    else begin
      (* Update potentials. *)
      for v = 0 to t.n - 1 do
        if dist.(v) < infinity then pot.(v) <- pot.(v) +. dist.(v)
      done;
      (* Bottleneck along the path. *)
      let bottleneck = ref (max_flow - !total_flow) in
      let v = ref sink in
      while !v <> source do
        let e = pred_edge.(!v) in
        if t.cap.(e) < !bottleneck then bottleneck := t.cap.(e);
        v := t.dst.(e lxor 1)
      done;
      (* Augment. *)
      let v = ref sink in
      while !v <> source do
        let e = pred_edge.(!v) in
        t.cap.(e) <- t.cap.(e) - !bottleneck;
        t.cap.(e lxor 1) <- t.cap.(e lxor 1) + !bottleneck;
        total_cost := !total_cost +. (float_of_int !bottleneck *. t.cost.(e));
        v := t.dst.(e lxor 1)
      done;
      total_flow := !total_flow + !bottleneck
    end
  done;
  (!total_flow, !total_cost)

let flow_on_edges t =
  List.rev_map
    (fun e ->
      let flow = t.cap.(e lxor 1) in
      let src = t.dst.(e lxor 1) in
      (src, t.dst.(e), flow, t.cost.(e)))
    (List.filter (fun e -> t.cap.(e lxor 1) > 0) t.original)
