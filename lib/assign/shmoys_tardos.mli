(** The Shmoys–Tardos rounding for GAP (Theorem 3.11 of the paper,
    [Shmoys–Tardos 93]).

    Given a fractional solution of the GAP LP, produces an integral
    assignment whose cost is at most the fractional cost and whose
    load on each machine [i] is at most [T_i + pmax_i], where [pmax_i]
    is the largest load of any job fractionally assigned to [i].

    Implementation: each machine [i] is expanded into
    [ceil (sum_j y_ij)] unit-capacity slots, filled with job fractions
    in non-increasing load order; the restriction of [y] to slots is a
    fractional perfect matching of the jobs, so an integral min-cost
    matching of no greater cost exists and is extracted with
    {!Mcmf}. *)

type rounded = {
  assignment : Gap.assignment;
  cost : float;
  loads : float array; (* resulting machine loads *)
}

val round : Gap.t -> float array array -> rounded
(** [round gap y] rounds a fractional solution [y] (machine -> job ->
    fraction; rows summing to 1 per job over machines).
    @raise Invalid_argument if [y] is not a fractional assignment.
    @raise Qp_util.Qp_error.Error [(Internal _)] if the extracted
    matching is incomplete (numerical trouble; caught at the
    solver-engine boundary). *)

val solve : Gap.t -> rounded option
(** LP solve ({!Gap_lp.solve}) followed by {!round}; [None] if the
    relaxation is infeasible. *)

val check_guarantees : Gap.t -> float array array -> rounded -> bool
(** Verifies the two Theorem 3.11 guarantees against a fractional
    solution: cost at most the fractional cost, and machine loads at
    most [T_i + pmax_i] (both with 1e-6 tolerance). *)
