type rounded = {
  assignment : Gap.assignment;
  cost : float;
  loads : float array;
}

let mass_eps = 1e-9

let validate (g : Gap.t) y =
  if Array.length y <> g.n_machines then invalid_arg "Shmoys_tardos.round: bad y shape";
  Array.iter
    (fun row ->
      if Array.length row <> g.n_jobs then invalid_arg "Shmoys_tardos.round: bad y shape")
    y;
  for j = 0 to g.n_jobs - 1 do
    let total = ref 0. in
    for i = 0 to g.n_machines - 1 do
      let v = y.(i).(j) in
      if v < -.mass_eps then invalid_arg "Shmoys_tardos.round: negative fraction";
      if v > mass_eps && not (g.allowed.(i).(j)) then
        invalid_arg "Shmoys_tardos.round: mass on forbidden pair";
      total := !total +. v
    done;
    if Float.abs (!total -. 1.) > 1e-6 then
      invalid_arg "Shmoys_tardos.round: job fractions do not sum to 1"
  done

(* A slot holds up to one unit of fractional job mass. *)
type slot = { machine : int; mutable jobs : int list }

let build_slots (g : Gap.t) y =
  let slots = ref [] in
  let n_slots = ref 0 in
  for i = 0 to g.n_machines - 1 do
    (* Jobs with positive mass on machine i, heaviest first. *)
    let jobs = ref [] in
    for j = 0 to g.n_jobs - 1 do
      if y.(i).(j) > mass_eps then jobs := j :: !jobs
    done;
    let jobs =
      List.sort (fun a b -> compare g.load.(i).(b) g.load.(i).(a)) !jobs
    in
    if jobs <> [] then begin
      let current = ref { machine = i; jobs = [] } in
      let remaining = ref 1. in
      let open_slot () =
        slots := !current :: !slots;
        incr n_slots
      in
      let fresh () =
        current := { machine = i; jobs = [] };
        remaining := 1.
      in
      List.iter
        (fun j ->
          let f = ref y.(i).(j) in
          while !f > mass_eps do
            let put = Float.min !f !remaining in
            !current.jobs <- j :: !current.jobs;
            f := !f -. put;
            remaining := !remaining -. put;
            if !remaining <= mass_eps then begin
              open_slot ();
              fresh ()
            end
          done)
        jobs;
      if !current.jobs <> [] then open_slot ()
    end
  done;
  Array.of_list (List.rev !slots)

let round (g : Gap.t) y =
  validate g y;
  let slots = build_slots g y in
  let n_slots = Array.length slots in
  (* Flow network: 0 = source; 1..n_jobs = jobs; then slots; last =
     sink. *)
  let source = 0 in
  let job_node j = 1 + j in
  let slot_node s = 1 + g.n_jobs + s in
  let sink = 1 + g.n_jobs + n_slots in
  let net = Mcmf.create (sink + 1) in
  for j = 0 to g.n_jobs - 1 do
    Mcmf.add_edge net ~src:source ~dst:(job_node j) ~capacity:1 ~cost:0.
  done;
  Array.iteri
    (fun s slot ->
      Mcmf.add_edge net ~src:(slot_node s) ~dst:sink ~capacity:1 ~cost:0.;
      List.iter
        (fun j ->
          Mcmf.add_edge net ~src:(job_node j) ~dst:(slot_node s) ~capacity:1
            ~cost:g.cost.(slot.machine).(j))
        (List.sort_uniq compare slot.jobs))
    slots;
  let flow, _ = Mcmf.min_cost_flow net ~source ~sink () in
  if flow <> g.n_jobs then
    raise
      (Qp_util.Qp_error.Error
         (Internal "Shmoys_tardos.round: integral matching incomplete (numerical trouble)"));
  let assignment = Array.make g.n_jobs (-1) in
  List.iter
    (fun (src, dst, fl, _) ->
      if fl > 0 && src >= 1 && src <= g.n_jobs && dst > g.n_jobs && dst < sink then begin
        let j = src - 1 in
        let s = dst - 1 - g.n_jobs in
        assignment.(j) <- slots.(s).machine
      end)
    (Mcmf.flow_on_edges net);
  Array.iter (fun i -> assert (i >= 0)) assignment;
  {
    assignment;
    cost = Gap.assignment_cost g assignment;
    loads = Gap.machine_loads g assignment;
  }

let solve g =
  match Gap_lp.solve g with
  | None -> None
  | Some { Gap_lp.y; _ } -> Some (round g y)

let check_guarantees (g : Gap.t) y rounded =
  let frac_cost = ref 0. in
  for i = 0 to g.n_machines - 1 do
    for j = 0 to g.n_jobs - 1 do
      if y.(i).(j) > 0. then frac_cost := !frac_cost +. (g.cost.(i).(j) *. y.(i).(j))
    done
  done;
  let cost_ok = Qp_util.Floatx.leq ~tol:1e-6 rounded.cost !frac_cost in
  let loads_ok = ref true in
  for i = 0 to g.n_machines - 1 do
    let bound = g.budget.(i) +. Gap.max_job_load g i in
    if not (Qp_util.Floatx.leq ~tol:1e-6 rounded.loads.(i) bound) then loads_ok := false
  done;
  cost_ok && !loads_ok
