(* Fixed-size domain pool. [jobs - 1] worker domains block on a shared
   work queue; the submitting domain drains the same queue while it
   waits for its batch, so a pool of size n keeps n domains busy and
   [jobs = 1] degenerates to plain inline execution with no domains at
   all.

   Determinism contract (see the .mli): results are stored by element
   index, every element runs exactly once, and per-element telemetry
   goes to a fresh lazily-created registry merged into the caller's in
   element order after the join — identical grouping for any worker
   count, so parallel runs reproduce the sequential metric totals
   bit-for-bit for counters and up to float-addition grouping for
   nothing (the grouping itself is fixed). *)

module Metrics = Qp_obs.Metrics

type t = {
  pool_jobs : int;
  queue : (unit -> unit) Queue.t;
  m : Mutex.t;
  work_cv : Condition.t; (* new work or shutdown *)
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

(* True while this domain is executing a pool task — workers always,
   the submitting domain while it helps drain the queue. Nested
   [parallel_*] calls check it and fall back to the inline path
   instead of deadlocking on the shared queue. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get in_worker_key

(* Context propagation: libraries register a capture hook; at submit
   time every hook runs on the submitting domain to snapshot its
   domain-local context, yielding a wrapper that re-installs the
   snapshot around each element on whichever domain executes it (and
   restores the previous value afterwards). Used by [Qp_lp.Simplex] to
   carry the cooperative-cancellation deadline into worker domains. *)
let context_hooks : (unit -> (unit -> unit) -> unit) list Atomic.t =
  Atomic.make []

let register_context_hook h =
  let rec add () =
    let cur = Atomic.get context_hooks in
    if not (Atomic.compare_and_set context_hooks cur (h :: cur)) then add ()
  in
  add ()

(* Snapshot all registered contexts now; returns a wrapper composing
   them around a thunk. Identity when no hooks are registered. *)
let capture_context () =
  match Atomic.get context_hooks with
  | [] -> fun thunk -> thunk ()
  | hooks ->
      let wrappers = List.rev_map (fun h -> h ()) hooks in
      fun thunk ->
        List.fold_left (fun acc w () -> w acc) thunk wrappers ()

let run_task task =
  let was = Domain.DLS.get in_worker_key in
  Domain.DLS.set in_worker_key true;
  (* Tasks are wrapped by the submitter and must not raise; the guard
     keeps a violated contract from killing a worker domain. *)
  (try task () with _ -> ());
  Domain.DLS.set in_worker_key was

let rec worker_loop pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.queue && not pool.stopping do
    Condition.wait pool.work_cv pool.m
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.m (* stopping *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.m;
    run_task task;
    worker_loop pool
  end

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      pool_jobs = jobs;
      queue = Queue.create ();
      m = Mutex.create ();
      work_cv = Condition.create ();
      stopping = false;
      domains = [];
    }
  in
  if jobs > 1 then
    pool.domains <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let jobs pool = pool.pool_jobs

let shutdown pool =
  Mutex.lock pool.m;
  pool.stopping <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.m;
  List.iter Domain.join pool.domains;
  pool.domains <- []

(* ------------------------------------------------------------------ *)
(* Batch execution                                                     *)
(* ------------------------------------------------------------------ *)

(* Run [n] index-addressed elements: each under a fresh lazily-created
   metrics registry installed as the domain-local current registry, so
   concurrent elements never race on shared metric cells. Results and
   exceptions are stored per index; forced registries are merged into
   the caller's registry in index order after the join, and the
   lowest-index exception (if any) is re-raised. *)
let run_indexed pool ~chunk n (f : int -> 'a) : 'a array =
  if n < 0 then invalid_arg "Pool.parallel_init: negative size";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Pool: chunk must be >= 1"
  | _ -> ());
  if n = 0 then [||]
  else begin
    let parent = Metrics.current () in
    let enabled = Metrics.enabled parent in
    let results : 'a option array = Array.make n None in
    let errors : (exn * Printexc.raw_backtrace) option array = Array.make n None in
    let never_forced = lazy (Metrics.create ~enabled:false ()) in
    let regs = Array.make n never_forced in
    let run_element i =
      let reg = lazy (Metrics.create ~enabled ()) in
      regs.(i) <- reg;
      match Metrics.with_current_lazy reg (fun () -> f i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    let chunk_size =
      match chunk with
      | Some c -> c
      | None ->
          (* Enough chunks to balance 4 ways per domain, whole range
             when sequential. *)
          if pool.pool_jobs = 1 then n
          else max 1 ((n + (4 * pool.pool_jobs) - 1) / (4 * pool.pool_jobs))
    in
    let n_chunks = (n + chunk_size - 1) / chunk_size in
    if pool.pool_jobs = 1 || in_worker () || n_chunks = 1 then
      (* Inline path: same per-element scoping, no queue. *)
      for i = 0 to n - 1 do
        run_element i
      done
    else begin
      let in_context = capture_context () in
      Mutex.lock pool.m;
      if pool.stopping then begin
        Mutex.unlock pool.m;
        invalid_arg "Pool: submit on a shut-down pool"
      end;
      let remaining = ref n_chunks in
      let done_cv = Condition.create () in
      for c = 0 to n_chunks - 1 do
        let lo = c * chunk_size and hi = min n ((c + 1) * chunk_size) in
        Queue.push
          (fun () ->
            in_context (fun () ->
                for i = lo to hi - 1 do
                  run_element i
                done);
            Mutex.lock pool.m;
            decr remaining;
            if !remaining = 0 then Condition.broadcast done_cv;
            Mutex.unlock pool.m)
          pool.queue
      done;
      Condition.broadcast pool.work_cv;
      (* Help drain the queue until this batch completes. The popped
         task may belong to another batch submitted concurrently;
         running it here is still correct and keeps the queue moving. *)
      let rec drive () =
        if !remaining > 0 then
          if not (Queue.is_empty pool.queue) then begin
            let task = Queue.pop pool.queue in
            Mutex.unlock pool.m;
            run_task task;
            Mutex.lock pool.m;
            drive ()
          end
          else begin
            Condition.wait done_cv pool.m;
            drive ()
          end
      in
      drive ();
      Mutex.unlock pool.m
    end;
    if enabled then
      Array.iter
        (fun l -> if Lazy.is_val l then Metrics.merge ~into:parent (Lazy.force l))
        regs;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let parallel_init ?chunk pool n f = run_indexed pool ~chunk n f

let parallel_map ?chunk pool f arr =
  run_indexed pool ~chunk (Array.length arr) (fun i -> f arr.(i))

let parallel_iter ?chunk pool f arr =
  ignore (run_indexed pool ~chunk (Array.length arr) (fun i -> f arr.(i)))

(* ------------------------------------------------------------------ *)
(* Fire-and-forget submission                                          *)
(* ------------------------------------------------------------------ *)

(* Single-task submission with no join: the caller arranges its own
   completion signalling (qp_serve uses a self-pipe back to its event
   loop). Runs inline when the pool has no worker domains — the
   submitter is then the only executor — or when already inside a pool
   task (same no-deadlock rule as the batch entry points). Captured
   context hooks apply on the queued path. *)
let async pool task =
  if pool.pool_jobs = 1 || in_worker () then run_task task
  else begin
    let in_context = capture_context () in
    Mutex.lock pool.m;
    if pool.stopping then begin
      Mutex.unlock pool.m;
      invalid_arg "Pool: submit on a shut-down pool"
    end;
    Queue.push (fun () -> in_context task) pool.queue;
    Condition.signal pool.work_cv;
    Mutex.unlock pool.m
  end

(* ------------------------------------------------------------------ *)
(* Process-default pool                                                *)
(* ------------------------------------------------------------------ *)

let default_m = Mutex.create ()
let default_pool : t option ref = ref None
let default_jobs_v = ref 1

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  let old =
    Mutex.protect default_m (fun () ->
        let old = !default_pool in
        default_pool := None;
        default_jobs_v := jobs;
        old)
  in
  Option.iter shutdown old

let default_jobs () = Mutex.protect default_m (fun () -> !default_jobs_v)

let default () =
  Mutex.protect default_m (fun () ->
      match !default_pool with
      | Some p -> p
      | None ->
          let p = create ~jobs:!default_jobs_v in
          default_pool := Some p;
          p)
