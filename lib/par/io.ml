(* Domain-local output sink: a buffer installed by [with_buffer], or
   stdout when none is. See the .mli for the concurrency story. *)

let sink : Buffer.t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_buffer buf f =
  let old = Domain.DLS.get sink in
  Domain.DLS.set sink (Some buf);
  Fun.protect ~finally:(fun () -> Domain.DLS.set sink old) f

let print_string s =
  match Domain.DLS.get sink with
  | Some b -> Buffer.add_string b s
  | None -> Stdlib.print_string s

let print_endline s =
  print_string s;
  print_string "\n"

let print_newline () = print_string "\n"

let printf fmt = Printf.ksprintf print_string fmt
