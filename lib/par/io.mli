(** Domain-local output redirection.

    The bench experiments report through these printers instead of
    [Stdlib.print_*] so the driver can run experiments on worker
    domains concurrently: each experiment writes into its own buffer
    (installed with {!with_buffer}) and the driver flushes the buffers
    in registry order, producing the same bytes as a sequential run.
    With no buffer installed — the default on every domain — output
    goes straight to stdout. *)

val with_buffer : Buffer.t -> (unit -> 'a) -> 'a
(** Redirect this domain's {!print_string}/{!printf} output into [buf]
    for the duration of the callback (restores the previous sink on
    exit, including on exceptions). *)

val print_string : string -> unit
val print_endline : string -> unit
val print_newline : unit -> unit
val printf : ('a, unit, string, unit) format4 -> 'a
