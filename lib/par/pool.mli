(** Fixed-size domain pool for data-parallel sections.

    A pool of [jobs]-way parallelism spawns [jobs - 1] worker domains
    once and reuses them across calls; the calling domain drains the
    same work queue while it waits, so a pool of size [n] keeps exactly
    [n] domains busy. [jobs = 1] is the exact sequential path: no
    domains are spawned and tasks run inline on the caller, in index
    order.

    {2 Determinism}

    All entry points preserve input order in their results, and every
    per-element closure runs exactly once, so a pure function yields a
    bit-identical result array regardless of worker count. Elements
    that record telemetry are scoped: each element runs against a
    fresh, lazily-created {!Qp_obs.Metrics} registry (installed as the
    domain-local {!Qp_obs.Metrics.current}), and after the join the
    per-element registries are merged into the caller's registry {e in
    element order} — the same grouping whether the pool has 1 or 16
    workers, so counter totals, histogram sums and final gauge values
    match the sequential run exactly.

    {2 Nesting}

    Calling [parallel_*] from inside a pool task (any pool) falls back
    to the sequential inline path instead of deadlocking on the shared
    queue; the per-element registry scoping still applies. *)

type t

val create : jobs:int -> t
(** [create ~jobs] builds a pool of total parallelism [jobs]
    ([jobs - 1] spawned domains). The pool is reusable across any
    number of [parallel_*] calls until {!shutdown}.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Drains outstanding work, stops and joins the worker domains.
    Idempotent. Submitting to a shut-down pool of size > 1 raises
    [Invalid_argument]. *)

val parallel_init : ?chunk:int -> t -> int -> (int -> 'a) -> 'a array
(** [parallel_init pool n f] is [Array.init n f] with the [f i] calls
    distributed over the pool. [chunk] overrides the scheduling batch
    size (default: enough chunks to balance [4 * jobs] ways); it never
    affects results or telemetry grouping, only queue granularity.
    If any [f i] raises, all elements still run, then the exception of
    the smallest index is re-raised (with its backtrace).
    @raise Invalid_argument when [n < 0] or [chunk < 1]. *)

val parallel_map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f arr] maps [f] over [arr], order-preserving.
    Same scheduling, telemetry and exception contract as
    {!parallel_init}. *)

val parallel_iter : ?chunk:int -> t -> ('a -> unit) -> 'a array -> unit

val async : t -> (unit -> unit) -> unit
(** [async pool task] submits a single task with no join: the caller
    arranges its own completion signalling. Runs inline on the caller
    when the pool has no worker domains ([jobs = 1]) or when invoked
    from inside a pool task; otherwise a worker domain picks it up.
    The task must not raise (exceptions are swallowed by the worker
    guard). Context hooks captured at submit time apply on the queued
    path. @raise Invalid_argument on a shut-down pool. *)

val in_worker : unit -> bool
(** True while the current domain is executing a pool task (including
    the submitting domain when it helps drain the queue). *)

val register_context_hook : (unit -> (unit -> unit) -> unit) -> unit
(** [register_context_hook h] adds a domain-local context propagation
    hook, applied to every queued task of every pool. At submit time
    [h ()] runs on the submitting domain and returns a wrapper; the
    wrapper runs around each queued task on the executing domain,
    re-installing the captured context and restoring the previous
    value afterwards. Hooks are process-global and cannot be
    unregistered; registration is idempotent in effect only if the
    hook itself is. *)

(** {2 Process-default pool}

    Library hot paths ({!Qp_graph.Apsp}, [Qp_place.Delay],
    [Qp_place.Qpp_solver]) pull their pool from here. The default is
    [jobs = 1] — fully sequential — until a front end (the [--jobs]
    flag of [qplace] and [bench/main.exe]) raises it. *)

val set_default_jobs : int -> unit
(** Replaces the process-default pool with one of the given size,
    shutting the previous one down. @raise Invalid_argument when
    [jobs < 1]. *)

val default_jobs : unit -> int

val default : unit -> t
(** The process-default pool (created lazily). *)
