(** Two-phase primal simplex.

    Exact enough for the paper's placement LPs: Dantzig pricing for
    speed with a switch to Bland's rule after a stall to rule out
    cycling, and a phase-1 artificial-variable start. Two storage
    paths sit behind {!solve}: the historical dense tableau, and a
    {!Revised} path (sparse columns + explicit basis inverse) that
    avoids materializing the tableau. {!solve} auto-selects by problem
    shape — dense below [m * ncols = 8e6] cells, revised above — so
    seed-size LPs keep their historical pivot sequences bit-for-bit
    while large instances stop paying O(m·ncols) per pivot
    (DESIGN.md §15, "Scaling the solve core"). *)

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

val solve : ?max_pivots:int -> Lp.t -> outcome
(** Solves [minimize c.x  s.t. rows, x >= 0]. [max_pivots] defaults to
    [50_000 + 50 * (rows + vars)]; exceeding it raises
    [Qp_util.Qp_error.Error (Internal _)] (caught at the solver-engine
    boundary; front ends expose it as a [--pivot-budget] knob). On
    [Optimal], the returned point satisfies every row to within [1e-6]
    relative tolerance — asserted internally. *)

type path = Dense | Revised

val set_forced_path : path option -> unit
(** Override the shape-based path choice (process-wide; test hook).
    [None] restores auto-selection. *)

val last_path : unit -> path
(** The path chosen by the most recent solve (any domain) —
    introspection for tests and bench asserts. *)

type basis
(** Opaque snapshot of the final simplex basis of an optimal solve:
    the handle for warm-starting a structurally identical LP whose
    coefficients moved a little (an instance delta). *)

val solve_warm :
  ?max_pivots:int -> ?warm:basis -> Lp.t -> outcome * basis option
(** Like {!solve}, and additionally returns the final basis on
    [Optimal] for reuse. With [~warm] (a basis from a previous solve of
    an LP with the same variable/constraint layout), the solver crashes
    those columns into the fresh tableau first; if the crash start is
    primal-feasible, phase 1 is skipped entirely and small deltas
    re-solve in far fewer pivots. If the crash start is infeasible —
    the delta moved the optimum across a facet, or the LP shapes do not
    match — the tableau is rebuilt and the ordinary cold two-phase path
    runs, so the outcome (objective, feasibility classification) is
    always identical to {!solve} up to the usual pivot-order float
    noise. Warm attempts and successes are counted in the
    [qp_simplex_warm_attempts_total] / [qp_simplex_warm_used_total]
    metrics; crash pivots count into [qp_simplex_pivots_total]. *)

val set_deadline : float option -> unit
(** Install (or clear) a domain-local wall-clock deadline, in
    {!Qp_obs.Core.now} seconds. While a deadline is set, every solve
    on this domain checks it on entry and once per pivot and raises
    [Qp_util.Qp_error.Error (Internal _)] as soon as the clock passes
    it — cooperative cancellation for serving front ends
    ([qp_serve] request deadlines). The deadline is domain-local so
    concurrent pooled solves never cancel each other; a
    {!Qp_par.Pool} context hook propagates the submitting domain's
    deadline into worker domains, so candidate LPs parallelized below
    a guarded solve still honor it. Callers must clear it
    ([set_deadline None]) when the guarded region ends; with no
    deadline installed the per-pivot cost is one domain-local load. *)

val get_deadline : unit -> float option
(** The deadline currently installed on this domain, if any. *)

type certified = {
  x : float array;
  objective : float;
  duals : float array; (* one multiplier per constraint, insertion order *)
}

type certified_outcome = Certified of certified | C_infeasible | C_unbounded

val solve_certified : ?max_pivots:int -> Lp.t -> certified_outcome
(** Like {!solve} but also extracts the optimal dual multipliers from
    the final tableau, giving a machine-checkable optimality
    certificate (see {!check_certificate}). Convention for
    [min c.x, x >= 0]: a [<=] row has [y <= 0], a [>=] row has
    [y >= 0], an [=] row is free; dual feasibility is
    [c - A^T y >= 0] and strong duality [y.b = c.x]. *)

val check_certificate : ?tol:float -> Lp.t -> certified -> bool
(** Verifies primal feasibility, dual feasibility (including the sign
    conditions), and strong duality, all from first principles —
    independent of how the solution was produced. *)
