(** Revised simplex with an explicit basis inverse.

    Same two-phase algorithm, pivot rules, tolerances, warm-crash and
    budget/deadline semantics as {!Simplex}'s dense tableau, but the
    constraint matrix is kept as immutable sparse columns and only the
    m x m basis inverse is updated per pivot — roughly a third of the
    dense flops and half the memory on the placement LPs, whose column
    count is dominated by slacks and artificials. Callers should not
    use this directly: {!Simplex.solve} auto-selects it by problem
    shape (see [Simplex.path]). The two paths agree on classification
    and objective up to float noise (property-tested); they are not
    bit-identical, which is why auto-selection keeps seed-size LPs on
    the historical dense path. *)

type result =
  | R_optimal of {
      x : float array;
      objective : float;
      duals : float array;
      basis : int array;
    }
  | R_infeasible
  | R_unbounded

val solve : ?warm:int array -> max_pivots:int -> Lp.t -> result * int * bool
(** [(result, pivots, warm_used)]. [pivots] counts crash + phase-1 +
    phase-2 pivots; [warm_used] is true when the warm crash reached a
    primal-feasible start and phase 1 was skipped. Raises the same
    [Qp_util.Qp_error.Error (Internal _)] as the dense path on pivot
    budget exhaustion or deadline cancellation. *)
