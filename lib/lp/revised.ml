(* Revised simplex with an explicit dense basis inverse.

   The dense two-phase path materializes the full m x ncols tableau
   and rewrites every cell on every pivot. For the placement LPs the
   column count is dominated by slacks and artificials (ncols ≈ n +
   2m), so the tableau costs ~2m² floats of memory and ~2m² flops per
   pivot. This path keeps only:

     - the constraint matrix as immutable sparse columns (built once),
     - B⁻¹, a dense m x m matrix updated by product-form pivots,
     - the basic solution xb = B⁻¹ b.

   Per pivot: one BTRAN (y = c_B B⁻¹, m² flops, skipping zero basic
   costs), pricing over sparse columns (O(nnz)), one FTRAN
   (w = B⁻¹ A_q, m·nnz_q flops), and an m² B⁻¹ update — roughly a
   third of the dense work and half the memory, with the constraint
   data itself never copied.

   Pivot rules, tolerances, stall→Bland switch, pivot budget, warm
   crash and deadline semantics mirror Simplex's dense path so the two
   are interchangeable (equivalence is property-tested); they differ
   only in float rounding, which is why auto-selection keeps seed-size
   LPs on the historical dense path. *)

let eps_rc = 1e-9
let eps_piv = 1e-9
let eps_zero = 1e-11

(* Recompute xb = B⁻¹b from scratch this often to shed accumulated
   product-form rounding drift. *)
let refresh_every = 128

type result =
  | R_optimal of {
      x : float array;
      objective : float;
      duals : float array;
      basis : int array;
    }
  | R_infeasible
  | R_unbounded

type state = {
  m : int;
  ncols : int;
  first_artificial : int;
  cols : (int * float) array array; (* immutable sparse columns *)
  b : float array; (* normalized rhs, >= 0, immutable *)
  binv : float array array; (* m x m basis inverse *)
  xb : float array; (* current basic values, B⁻¹ b *)
  basis : int array; (* row -> basic column *)
  in_basis : bool array; (* column -> basic? *)
}

let budget_exceeded max_pivots =
  raise
    (Qp_util.Qp_error.Error
       (Internal
          (Printf.sprintf "Simplex: pivot budget exceeded (%d pivots)"
             max_pivots)))

(* w := B⁻¹ A_col for a sparse column. *)
let ftran st col w =
  Array.fill w 0 st.m 0.;
  Array.iter
    (fun (k, a) ->
      for i = 0 to st.m - 1 do
        w.(i) <- w.(i) +. (st.binv.(i).(k) *. a)
      done)
    st.cols.(col)

(* y := c_B^T B⁻¹, skipping rows whose basic cost is zero (most rows,
   in both phases). *)
let btran st cost y =
  Array.fill y 0 st.m 0.;
  for k = 0 to st.m - 1 do
    let cb = cost.(st.basis.(k)) in
    if cb <> 0. then begin
      let bk = st.binv.(k) in
      for i = 0 to st.m - 1 do
        y.(i) <- y.(i) +. (cb *. bk.(i))
      done
    end
  done

let reduced_cost st cost y j =
  let r = ref cost.(j) in
  Array.iter (fun (i, a) -> r := !r -. (y.(i) *. a)) st.cols.(j);
  !r

(* Product-form pivot: basis row [row] leaves, column [col] enters,
   with [w] = B⁻¹ A_col already computed. Updates binv, xb, basis. *)
let apply_pivot st ~row ~col w =
  let p = w.(row) in
  let inv = 1. /. p in
  let brow = st.binv.(row) in
  for k = 0 to st.m - 1 do
    brow.(k) <- brow.(k) *. inv
  done;
  st.xb.(row) <- st.xb.(row) *. inv;
  for i = 0 to st.m - 1 do
    if i <> row then begin
      let f = w.(i) in
      if Float.abs f > eps_zero then begin
        let bi = st.binv.(i) in
        for k = 0 to st.m - 1 do
          bi.(k) <- bi.(k) -. (f *. brow.(k))
        done;
        st.xb.(i) <- st.xb.(i) -. (f *. st.xb.(row));
        if st.xb.(i) < 0. && st.xb.(i) > -1e-11 then st.xb.(i) <- 0.
      end
    end
  done;
  st.in_basis.(st.basis.(row)) <- false;
  st.in_basis.(col) <- true;
  st.basis.(row) <- col

let refresh_xb st =
  for i = 0 to st.m - 1 do
    let bi = st.binv.(i) in
    let s = ref 0. in
    for k = 0 to st.m - 1 do
      s := !s +. (bi.(k) *. st.b.(k))
    done;
    st.xb.(i) <- (if !s < 0. && !s > -1e-11 then 0. else !s)
  done

type phase_result = Phase_optimal | Phase_unbounded

(* One simplex phase: Dantzig pricing with a permanent switch to
   Bland's rule after a stall, same thresholds and ratio-test
   tie-break as the dense path. *)
let optimize st cost ~allowed ~max_pivots =
  let y = Array.make st.m 0. in
  let w = Array.make st.m 0. in
  let pivots = ref 0 in
  let stall = ref 0 in
  let bland = ref false in
  let stall_limit = 20 * (st.m + st.ncols + 10) in
  let rec loop () =
    btran st cost y;
    let enter = ref (-1) in
    if !bland then begin
      (try
         for j = 0 to st.ncols - 1 do
           if allowed j && not st.in_basis.(j) then
             if reduced_cost st cost y j < -.eps_rc then begin
               enter := j;
               raise Exit
             end
         done
       with Exit -> ())
    end
    else begin
      let best = ref (-.eps_rc) in
      for j = 0 to st.ncols - 1 do
        if allowed j && not st.in_basis.(j) then begin
          let r = reduced_cost st cost y j in
          if r < !best then begin
            best := r;
            enter := j
          end
        end
      done
    end;
    if !enter < 0 then Phase_optimal
    else begin
      let col = !enter in
      ftran st col w;
      let row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to st.m - 1 do
        let wi = w.(i) in
        if wi > eps_piv then begin
          let ratio = st.xb.(i) /. wi in
          if
            ratio < !best_ratio -. 1e-12
            || (ratio < !best_ratio +. 1e-12
               && !row >= 0
               && st.basis.(i) < st.basis.(!row))
          then begin
            best_ratio := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then Phase_unbounded
      else begin
        apply_pivot st ~row:!row ~col w;
        incr pivots;
        if !pivots > max_pivots then budget_exceeded max_pivots;
        Cancel.check_deadline ();
        if !pivots mod refresh_every = 0 then refresh_xb st;
        if !best_ratio <= 1e-12 then begin
          incr stall;
          if !stall > stall_limit then bland := true
        end
        else stall := 0;
        loop ()
      end
    end
  in
  let result = loop () in
  (result, !pivots)

(* ------------------------------------------------------------------ *)
(* Problem construction (mirrors the dense build exactly)              *)
(* ------------------------------------------------------------------ *)

let normalize rows =
  List.map
    (fun { Lp.terms; cmp; rhs } ->
      if rhs < 0. then
        let terms = List.map (fun (v, c) -> (v, -.c)) terms in
        let cmp = match cmp with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq in
        (terms, cmp, -.rhs)
      else (terms, cmp, rhs))
    rows

let build lp =
  let n = Lp.n_vars lp in
  let rows = Lp.constraints lp in
  let m = List.length rows in
  let normalized = normalize rows in
  let n_slack =
    List.length (List.filter (fun (_, c, _) -> c <> Lp.Eq) normalized)
  in
  let n_artificial =
    List.length (List.filter (fun (_, c, _) -> c <> Lp.Le) normalized)
  in
  let ncols = n + n_slack + n_artificial in
  let first_artificial = n + n_slack in
  let flipped =
    List.map2
      (fun { Lp.rhs; _ } (_, _, rhs') -> rhs < 0. && rhs' > 0.)
      rows normalized
  in
  let cols_acc : (int * float) list array = Array.make ncols [] in
  let b = Array.make m 0. in
  let init_basis = Array.make m (-1) in
  let row_dual = Array.make m (0, 0.) in
  let slack_idx = ref n in
  let art_idx = ref first_artificial in
  List.iteri
    (fun i (terms, cmp, rhs) ->
      let flip_factor = if List.nth flipped i then -1. else 1. in
      (* Duplicate variable mentions in a row are summed, as in the
         dense tableau build. *)
      let row_coeffs = Hashtbl.create (List.length terms) in
      List.iter
        (fun (v, c) ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt row_coeffs v) in
          Hashtbl.replace row_coeffs v (prev +. c))
        terms;
      let vars =
        List.sort compare (Hashtbl.fold (fun v _ acc -> v :: acc) row_coeffs [])
      in
      List.iter
        (fun v -> cols_acc.(v) <- (i, Hashtbl.find row_coeffs v) :: cols_acc.(v))
        vars;
      b.(i) <- rhs;
      (match cmp with
      | Lp.Le ->
          cols_acc.(!slack_idx) <- [ (i, 1.) ];
          init_basis.(i) <- !slack_idx;
          row_dual.(i) <- (!slack_idx, -1. *. flip_factor);
          incr slack_idx
      | Lp.Ge ->
          cols_acc.(!slack_idx) <- [ (i, -1.) ];
          row_dual.(i) <- (!slack_idx, 1. *. flip_factor);
          incr slack_idx;
          cols_acc.(!art_idx) <- [ (i, 1.) ];
          init_basis.(i) <- !art_idx;
          incr art_idx
      | Lp.Eq ->
          cols_acc.(!art_idx) <- [ (i, 1.) ];
          init_basis.(i) <- !art_idx;
          row_dual.(i) <- (!art_idx, -1. *. flip_factor);
          incr art_idx))
    normalized;
  let cols = Array.map (fun l -> Array.of_list (List.rev l)) cols_acc in
  let binv = Array.init m (fun i -> Array.init m (fun j -> if i = j then 1. else 0.)) in
  let st =
    {
      m;
      ncols;
      first_artificial;
      cols;
      b;
      binv;
      xb = Array.copy b;
      basis = init_basis;
      in_basis =
        (let f = Array.make ncols false in
         Array.iter (fun c -> f.(c) <- true) init_basis;
         f);
    }
  in
  (st, row_dual, n_artificial)

(* Crash the columns of a previous optimal basis into the fresh state:
   each warm column is pivoted in on the unclaimed row where B⁻¹A_c
   has the largest magnitude. Returns [Some crash_pivots] when the
   resulting start is primal-feasible (so phase 1 can be skipped). *)
let try_crash st (warm : int array) =
  let claimed = Array.make st.m false in
  let w = Array.make st.m 0. in
  let crash_pivots = ref 0 in
  Array.iter
    (fun c ->
      if c >= 0 && c < st.first_artificial && c < st.ncols then begin
        if st.in_basis.(c) then begin
          for i = 0 to st.m - 1 do
            if st.basis.(i) = c then claimed.(i) <- true
          done
        end
        else begin
          ftran st c w;
          let best = ref (-1) in
          let best_mag = ref 1e-7 in
          for i = 0 to st.m - 1 do
            if not claimed.(i) then begin
              let mag = Float.abs w.(i) in
              if mag > !best_mag then begin
                best := i;
                best_mag := mag
              end
            end
          done;
          if !best >= 0 then begin
            apply_pivot st ~row:!best ~col:c w;
            claimed.(!best) <- true;
            incr crash_pivots
          end
        end
      end)
    warm;
  let feasible = ref true in
  for i = 0 to st.m - 1 do
    if st.xb.(i) < -1e-7 then feasible := false
    else if st.basis.(i) >= st.first_artificial && st.xb.(i) > 1e-7 then
      feasible := false
  done;
  if !feasible then begin
    for i = 0 to st.m - 1 do
      if st.xb.(i) < 0. then st.xb.(i) <- 0.
    done;
    Some !crash_pivots
  end
  else None

let solve ?warm ~max_pivots lp =
  let n = Lp.n_vars lp in
  let total_pivots = ref 0 in
  let count k = total_pivots := !total_pivots + k in
  let st0, row_dual, n_artificial = build lp in
  let st, warm_used =
    match warm with
    | Some wb when Array.length wb > 0 -> (
        match try_crash st0 wb with
        | Some crash_pivots ->
            count crash_pivots;
            (st0, true)
        | None ->
            (* Failed crash left binv/xb/basis mutated; rebuild. *)
            let st1, _, _ = build lp in
            (st1, false))
    | _ -> (st0, false)
  in
  let finish r = (r, !total_pivots, warm_used) in
  (* Phase 1: minimize the sum of artificials. Skipped when the crash
     basis already reached a primal-feasible start. *)
  (if n_artificial > 0 && not warm_used then begin
     let cost1 = Array.make st.ncols 0. in
     for j = st.first_artificial to st.ncols - 1 do
       cost1.(j) <- 1.
     done;
     match optimize st cost1 ~allowed:(fun _ -> true) ~max_pivots with
     | Phase_unbounded, _ -> assert false (* bounded below by 0 *)
     | Phase_optimal, k -> count k
   end);
  let phase1_value =
    let v = ref 0. in
    for i = 0 to st.m - 1 do
      if st.basis.(i) >= st.first_artificial then v := !v +. st.xb.(i)
    done;
    !v
  in
  if n_artificial > 0 && (not warm_used) && phase1_value > 1e-7 then
    finish R_infeasible
  else begin
    (* Drive residual zero-level artificials out of the basis where
       possible. A row r admitting no real pivot column has
       (B⁻¹A)_r,j = 0 for every j < first_artificial, so every future
       entering direction has w_r = 0 there: the row is inert (it
       encodes a redundant constraint) and the artificial stays parked
       at zero. Unlike the dense path there is no need to compact such
       rows away — B⁻¹ keeps its dimension. *)
    let w = Array.make st.m 0. in
    for r = 0 to st.m - 1 do
      if st.basis.(r) >= st.first_artificial then begin
        let brow = st.binv.(r) in
        let found = ref false in
        let j = ref 0 in
        while (not !found) && !j < st.first_artificial do
          if not st.in_basis.(!j) then begin
            let dot = ref 0. in
            Array.iter (fun (i, a) -> dot := !dot +. (brow.(i) *. a)) st.cols.(!j);
            if Float.abs !dot > 1e-7 then begin
              ftran st !j w;
              apply_pivot st ~row:r ~col:!j w;
              found := true
            end
          end;
          incr j
        done;
        if not !found && st.xb.(r) < 0. then st.xb.(r) <- 0.
      end
    done;
    (* Phase 2. *)
    let cost2 = Array.make st.ncols 0. in
    Array.blit (Lp.objective lp) 0 cost2 0 n;
    let allowed j = j < st.first_artificial in
    match optimize st cost2 ~allowed ~max_pivots with
    | Phase_unbounded, k ->
        count k;
        finish R_unbounded
    | Phase_optimal, k ->
        count k;
        let x = Array.make n 0. in
        for i = 0 to st.m - 1 do
          if st.basis.(i) < n then x.(st.basis.(i)) <- st.xb.(i)
        done;
        Array.iteri (fun i xi -> if xi < 0. && xi > -1e-9 then x.(i) <- 0.) x;
        let objective = Lp.objective_value lp x in
        assert (Lp.is_feasible ~tol:1e-6 lp x);
        let y = Array.make st.m 0. in
        btran st cost2 y;
        let duals =
          Array.map
            (fun (col, factor) -> factor *. reduced_cost st cost2 y col)
            row_dual
        in
        finish (R_optimal { x; objective; duals; basis = Array.copy st.basis })
  end
