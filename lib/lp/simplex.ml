module Obs = Qp_obs

type outcome =
  | Optimal of { x : float array; objective : float }
  | Infeasible
  | Unbounded

(* Deadline machinery lives in [Cancel] so the dense and revised pivot
   loops share one domain-local deadline; re-exported here because
   front ends address the solver as [Simplex]. *)
let set_deadline = Cancel.set_deadline
let get_deadline = Cancel.get_deadline
let check_deadline = Cancel.check_deadline

(* ------------------------------------------------------------------ *)
(* Path selection                                                      *)
(* ------------------------------------------------------------------ *)

type path = Dense | Revised

(* The dense tableau allocates and rewrites m x ncols cells per pivot;
   past this many cells (64 MB of floats) the revised path's sparse
   columns + m x m basis inverse win on both memory and flops. Every
   LP the default experiments emit at seed sizes sits well below the
   threshold, keeping their pivot sequences — and therefore solver
   output bytes — on the historical dense path. *)
let revised_min_cells = 8_000_000

let forced_path : path option Atomic.t = Atomic.make None
let set_forced_path p = Atomic.set forced_path p
let last_path_v : path Atomic.t = Atomic.make Dense
let last_path () = Atomic.get last_path_v

let choose_path ~m ~ncols =
  match Atomic.get forced_path with
  | Some p -> p
  | None -> if m * ncols > revised_min_cells then Revised else Dense

let eps_rc = 1e-9 (* reduced-cost optimality tolerance *)
let eps_piv = 1e-9 (* minimum pivot magnitude *)
let eps_zero = 1e-11

(* Mutable tableau kept in canonical form: basis columns are unit
   vectors, [b] is non-negative, [basis.(i)] names the basic variable
   of row i. *)
type tableau = {
  mutable m : int; (* active rows *)
  ncols : int;
  a : float array array; (* m x ncols *)
  b : float array;
  basis : int array;
}

let pivot t ~row ~col =
  let arow = t.a.(row) in
  let p = arow.(col) in
  let inv = 1. /. p in
  for j = 0 to t.ncols - 1 do
    arow.(j) <- arow.(j) *. inv
  done;
  arow.(col) <- 1.;
  t.b.(row) <- t.b.(row) *. inv;
  for i = 0 to t.m - 1 do
    if i <> row then begin
      let f = t.a.(i).(col) in
      if Float.abs f > eps_zero then begin
        let ai = t.a.(i) in
        for j = 0 to t.ncols - 1 do
          ai.(j) <- ai.(j) -. (f *. arow.(j))
        done;
        ai.(col) <- 0.;
        t.b.(i) <- t.b.(i) -. (f *. t.b.(row));
        if t.b.(i) < 0. && t.b.(i) > -1e-11 then t.b.(i) <- 0.
      end
    end
  done;
  t.basis.(row) <- col

(* Reduced costs r_j = c_j - sum_i c_B(i) * T(i,j), and the objective
   value of the current basic solution, computed from scratch. *)
let reduced_costs t cost =
  let r = Array.copy cost in
  let z = ref 0. in
  for i = 0 to t.m - 1 do
    let cb = cost.(t.basis.(i)) in
    if cb <> 0. then begin
      z := !z +. (cb *. t.b.(i));
      let ai = t.a.(i) in
      for j = 0 to t.ncols - 1 do
        r.(j) <- r.(j) -. (cb *. ai.(j))
      done
    end
  done;
  (r, !z)

(* Update the reduced-cost row after a pivot on (row, col): r gets
   r_col * (pivot row) subtracted. Call AFTER the tableau pivot. *)
let update_reduced_costs t r ~row ~col =
  let f = r.(col) in
  if Float.abs f > eps_zero then begin
    let arow = t.a.(row) in
    for j = 0 to t.ncols - 1 do
      r.(j) <- r.(j) -. (f *. arow.(j))
    done;
    r.(col) <- 0.
  end

type phase_result = Phase_optimal | Phase_unbounded

(* Run simplex iterations on the current tableau with the given cost
   vector until optimal or unbounded, returning the outcome and the
   number of pivots performed. [allowed col] gates the entering
   variable (used to keep artificials out in phase 2). Dantzig pricing
   with a permanent switch to Bland's rule after [stall_limit]
   consecutive non-improving pivots. *)
let optimize t cost ~allowed ~max_pivots =
  let r, _ = reduced_costs t cost in
  let pivots = ref 0 in
  let stall = ref 0 in
  let bland = ref false in
  let stall_limit = 20 * (t.m + t.ncols + 10) in
  let rec loop () =
    (* Entering column selection. *)
    let enter = ref (-1) in
    if !bland then begin
      (try
         for j = 0 to t.ncols - 1 do
           if allowed j && r.(j) < -.eps_rc then begin
             enter := j;
             raise Exit
           end
         done
       with Exit -> ())
    end
    else begin
      let best = ref (-.eps_rc) in
      for j = 0 to t.ncols - 1 do
        if allowed j && r.(j) < !best then begin
          best := r.(j);
          enter := j
        end
      done
    end;
    if !enter < 0 then Phase_optimal
    else begin
      let col = !enter in
      (* Ratio test; Bland tie-break on basis variable index. *)
      let row = ref (-1) in
      let best_ratio = ref infinity in
      for i = 0 to t.m - 1 do
        let aij = t.a.(i).(col) in
        if aij > eps_piv then begin
          let ratio = t.b.(i) /. aij in
          if
            ratio < !best_ratio -. 1e-12
            || (ratio < !best_ratio +. 1e-12
               && !row >= 0
               && t.basis.(i) < t.basis.(!row))
          then begin
            best_ratio := ratio;
            row := i
          end
        end
      done;
      if !row < 0 then Phase_unbounded
      else begin
        pivot t ~row:!row ~col;
        update_reduced_costs t r ~row:!row ~col;
        incr pivots;
        if !pivots > max_pivots then
          raise
            (Qp_util.Qp_error.Error
               (Internal
                  (Printf.sprintf "Simplex: pivot budget exceeded (%d pivots)"
                     max_pivots)));
        check_deadline ();
        (* Degenerate pivots (zero ratio) do not improve the objective;
           a long streak of them triggers the switch to Bland's rule,
           which guarantees termination. *)
        if !best_ratio <= 1e-12 then begin
          incr stall;
          if !stall > stall_limit then bland := true
        end
        else stall := 0;
        loop ()
      end
    end
  in
  let result = loop () in
  (result, !pivots)

type certified = {
  x : float array;
  objective : float;
  duals : float array;
}

type certified_outcome = Certified of certified | C_infeasible | C_unbounded

type basis = int array

(* Crash the columns of a previous optimal basis into the fresh
   tableau: each warm column is pivoted in on the unclaimed row where
   it has the largest magnitude. If the resulting basic solution is
   primal-feasible (b >= -1e-7, no artificial carrying weight), phase 1
   can be skipped entirely. Mutates [t]; on failure the caller must
   rebuild the tableau. Returns [Some crash_pivots] on success. *)
let try_crash_basis t ~first_artificial (warm : basis) =
  let claimed = Array.make t.m false in
  let crash_pivots = ref 0 in
  Array.iter
    (fun c ->
      if c >= 0 && c < first_artificial && c < t.ncols then begin
        let basic_row = ref (-1) in
        for i = 0 to t.m - 1 do
          if t.basis.(i) = c then basic_row := i
        done;
        if !basic_row >= 0 then claimed.(!basic_row) <- true
        else begin
          let best = ref (-1) in
          let best_mag = ref 1e-7 in
          for i = 0 to t.m - 1 do
            if not claimed.(i) then begin
              let mag = Float.abs t.a.(i).(c) in
              if mag > !best_mag then begin
                best := i;
                best_mag := mag
              end
            end
          done;
          if !best >= 0 then begin
            pivot t ~row:!best ~col:c;
            claimed.(!best) <- true;
            incr crash_pivots
          end
        end
      end)
    warm;
  let feasible = ref true in
  for i = 0 to t.m - 1 do
    if t.b.(i) < -1e-7 then feasible := false
    else if t.basis.(i) >= first_artificial && t.b.(i) > 1e-7 then
      feasible := false
  done;
  if !feasible then begin
    for i = 0 to t.m - 1 do
      if t.b.(i) < 0. then t.b.(i) <- 0.
    done;
    Some !crash_pivots
  end
  else None

(* Internal driver shared by [solve], [solve_certified] and
   [solve_warm]. Tracks, per original row, the unit column (slack /
   surplus / artificial) whose phase-2 reduced cost encodes the row's
   dual multiplier, and the sign mapping back to the original
   (pre-normalization) orientation. Returns the outcome plus, on
   optimality, the final basis for warm-starting a nearby LP. *)
let solve_internal ?max_pivots ?warm lp =
  check_deadline ();
  let n = Lp.n_vars lp in
  let rows = Lp.constraints lp in
  let m = List.length rows in
  let solves_c =
    Obs.Metrics.counter ~help:"Two-phase simplex invocations" (Obs.Metrics.current ())
      "qp_simplex_solves_total"
  in
  let pivots_c =
    Obs.Metrics.counter ~help:"Simplex pivots across both phases" (Obs.Metrics.current ())
      "qp_simplex_pivots_total"
  in
  let warm_attempts_c =
    Obs.Metrics.counter ~help:"Simplex warm-start attempts" (Obs.Metrics.current ())
      "qp_simplex_warm_attempts_total"
  in
  let warm_used_c =
    Obs.Metrics.counter
      ~help:"Simplex solves where the crash basis skipped phase 1"
      (Obs.Metrics.current ()) "qp_simplex_warm_used_total"
  in
  Obs.Metrics.inc solves_c;
  let total_pivots = ref 0 in
  let count_pivots k = total_pivots := !total_pivots + k in
  Obs.Span.with_ "simplex"
    ~attrs:[ ("vars", Obs.Json.Int n); ("rows", Obs.Json.Int m) ]
  @@ fun () ->
  let finish outcome =
    Obs.Metrics.add pivots_c (float_of_int !total_pivots);
    Obs.Span.add_attr "pivots" (Obs.Json.Int !total_pivots);
    outcome
  in
  let max_pivots =
    match max_pivots with Some v -> v | None -> 50_000 + (50 * (m + n))
  in
  (* Normalize rows to non-negative rhs and count extra columns. *)
  let normalized =
    List.map
      (fun { Lp.terms; cmp; rhs } ->
        if rhs < 0. then
          let terms = List.map (fun (v, c) -> (v, -.c)) terms in
          let cmp = match cmp with Lp.Le -> Lp.Ge | Lp.Ge -> Lp.Le | Lp.Eq -> Lp.Eq in
          (terms, cmp, -.rhs)
        else (terms, cmp, rhs))
      rows
  in
  let n_slack =
    List.length (List.filter (fun (_, c, _) -> c <> Lp.Eq) normalized)
  in
  let n_artificial =
    List.length (List.filter (fun (_, c, _) -> c <> Lp.Le) normalized)
  in
  let ncols = n + n_slack + n_artificial in
  let path = choose_path ~m ~ncols in
  Atomic.set last_path_v path;
  Obs.Span.add_attr "path"
    (Obs.Json.String (match path with Dense -> "dense" | Revised -> "revised"));
  match path with
  | Revised -> (
      let result, pivots, warm_used = Revised.solve ?warm ~max_pivots lp in
      (match warm with
      | Some wb when Array.length wb > 0 ->
          Obs.Metrics.inc warm_attempts_c;
          if warm_used then Obs.Metrics.inc warm_used_c
      | _ -> ());
      count_pivots pivots;
      match result with
      | Revised.R_infeasible -> (finish C_infeasible, None)
      | Revised.R_unbounded -> (finish C_unbounded, None)
      | Revised.R_optimal { x; objective; duals; basis } ->
          (finish (Certified { x; objective; duals }), Some basis))
  | Dense ->
  let first_artificial = n + n_slack in
  let flipped = List.map2 (fun { Lp.rhs; _ } (_, _, rhs') -> rhs < 0. && rhs' > 0.) rows
      normalized in
  (* Tableau construction is a function because a failed warm-start
     crash leaves the tableau mutated and the cold path needs a fresh
     one. *)
  let build () =
    let a = Array.init m (fun _ -> Array.make ncols 0.) in
    let b = Array.make m 0. in
    let basis = Array.make m (-1) in
    let slack_idx = ref n in
    let art_idx = ref first_artificial in
    (* (unit column, factor): original dual = factor * reduced_cost(col)
       under the phase-2 objective. A slack/artificial column e_i gives
       r = -y_i (factor -1); a surplus column -e_i gives r = +y_i
       (factor +1). A row negated during normalization flips the
       factor. *)
    let row_dual = Array.make m (0, 0.) in
    List.iteri
      (fun i (terms, cmp, rhs) ->
        let flip_factor = if List.nth flipped i then -1. else 1. in
        List.iter (fun (v, c) -> a.(i).(v) <- a.(i).(v) +. c) terms;
        b.(i) <- rhs;
        (match cmp with
        | Lp.Le ->
            a.(i).(!slack_idx) <- 1.;
            basis.(i) <- !slack_idx;
            row_dual.(i) <- (!slack_idx, -1. *. flip_factor);
            incr slack_idx
        | Lp.Ge ->
            a.(i).(!slack_idx) <- -1.;
            row_dual.(i) <- (!slack_idx, 1. *. flip_factor);
            incr slack_idx;
            a.(i).(!art_idx) <- 1.;
            basis.(i) <- !art_idx;
            incr art_idx
        | Lp.Eq ->
            a.(i).(!art_idx) <- 1.;
            basis.(i) <- !art_idx;
            row_dual.(i) <- (!art_idx, -1. *. flip_factor);
            incr art_idx))
      normalized;
    ({ m; ncols; a; b; basis }, row_dual)
  in
  let t0, row_dual0 = build () in
  let t, row_dual, warm_ok =
    match warm with
    | Some wb when Array.length wb > 0 ->
        Obs.Metrics.inc warm_attempts_c;
        (match try_crash_basis t0 ~first_artificial wb with
        | Some crash_pivots ->
            Obs.Metrics.inc warm_used_c;
            count_pivots crash_pivots;
            (t0, row_dual0, true)
        | None ->
            let t1, row_dual1 = build () in
            (t1, row_dual1, false))
    | _ -> (t0, row_dual0, false)
  in
  (* Phase 1: minimize the sum of artificials. Skipped when the crash
     basis already reached a primal-feasible start. *)
  (if n_artificial > 0 && not warm_ok then begin
     let cost1 = Array.make ncols 0. in
     for j = first_artificial to ncols - 1 do
       cost1.(j) <- 1.
     done;
     match optimize t cost1 ~allowed:(fun _ -> true) ~max_pivots with
     | Phase_unbounded, _ -> assert false (* phase-1 objective bounded below by 0 *)
     | Phase_optimal, k -> count_pivots k
   end);
  let phase1_value =
    let v = ref 0. in
    for i = 0 to t.m - 1 do
      if t.basis.(i) >= first_artificial then v := !v +. t.b.(i)
    done;
    !v
  in
  if n_artificial > 0 && (not warm_ok) && phase1_value > 1e-7 then
    (finish C_infeasible, None)
  else begin
    (* Drive any residual artificial out of the basis; rows where that
       is impossible are redundant and are dropped. *)
    let keep = Array.make t.m true in
    for i = 0 to t.m - 1 do
      if t.basis.(i) >= first_artificial then begin
        let found = ref false in
        let j = ref 0 in
        while (not !found) && !j < first_artificial do
          if Float.abs t.a.(i).(!j) > 1e-7 then begin
            pivot t ~row:i ~col:!j;
            found := true
          end;
          incr j
        done;
        if not !found then keep.(i) <- false
      end
    done;
    (* Compact dropped rows. *)
    let dst = ref 0 in
    for i = 0 to t.m - 1 do
      if keep.(i) then begin
        if !dst <> i then begin
          t.a.(!dst) <- t.a.(i);
          t.b.(!dst) <- t.b.(i);
          t.basis.(!dst) <- t.basis.(i)
        end;
        incr dst
      end
    done;
    t.m <- !dst;
    (* Phase 2. *)
    let cost2 = Array.make ncols 0. in
    let obj = Lp.objective lp in
    Array.blit obj 0 cost2 0 n;
    let allowed j = j < first_artificial in
    match optimize t cost2 ~allowed ~max_pivots with
    | Phase_unbounded, k ->
        count_pivots k;
        (finish C_unbounded, None)
    | Phase_optimal, k ->
        count_pivots k;
        let x = Array.make n 0. in
        for i = 0 to t.m - 1 do
          if t.basis.(i) < n then x.(t.basis.(i)) <- t.b.(i)
        done;
        (* Clean tiny negatives from roundoff. *)
        Array.iteri (fun i xi -> if xi < 0. && xi > -1e-9 then x.(i) <- 0.) x;
        let objective = Lp.objective_value lp x in
        assert (Lp.is_feasible ~tol:1e-6 lp x);
        let r, _ = reduced_costs t cost2 in
        let duals = Array.map (fun (col, factor) -> factor *. r.(col)) row_dual in
        (finish (Certified { x; objective; duals }), Some (Array.sub t.basis 0 t.m))
  end

let solve ?max_pivots lp =
  match fst (solve_internal ?max_pivots lp) with
  | C_infeasible -> Infeasible
  | C_unbounded -> Unbounded
  | Certified { x; objective; _ } -> Optimal { x; objective }

let solve_certified ?max_pivots lp = fst (solve_internal ?max_pivots lp)

let solve_warm ?max_pivots ?warm lp =
  match solve_internal ?max_pivots ?warm lp with
  | C_infeasible, _ -> (Infeasible, None)
  | C_unbounded, _ -> (Unbounded, None)
  | Certified { x; objective; _ }, basis -> (Optimal { x; objective }, basis)

let check_certificate ?(tol = 1e-6) lp (c : certified) =
  let rows = Lp.constraints lp in
  let duals = c.duals in
  List.length rows = Array.length duals
  && Lp.is_feasible ~tol lp c.x
  && begin
       (* Sign conditions and strong duality. *)
       let signs_ok =
         List.for_all2
           (fun { Lp.cmp; _ } y ->
             match cmp with
             | Lp.Le -> y <= tol
             | Lp.Ge -> y >= -.tol
             | Lp.Eq -> true)
           rows
           (Array.to_list duals)
       in
       let dual_obj =
         List.fold_left2
           (fun acc { Lp.rhs; _ } y -> acc +. (y *. rhs))
           0. rows (Array.to_list duals)
       in
       let scale = Float.max 1. (Float.abs c.objective) in
       let strong = Float.abs (dual_obj -. c.objective) <= tol *. scale in
       (* Dual feasibility: c_j - sum_i y_i a_ij >= 0 for every
          structural variable j. *)
       let n = Lp.n_vars lp in
       let reduced = Lp.objective lp in
       List.iteri
         (fun i { Lp.terms; _ } ->
           List.iter (fun (v, coef) -> reduced.(v) <- reduced.(v) -. (duals.(i) *. coef)) terms)
         rows;
       let dual_feasible = ref true in
       for j = 0 to n - 1 do
         if reduced.(j) < -.tol then dual_feasible := false
       done;
       signs_ok && strong && !dual_feasible
     end
