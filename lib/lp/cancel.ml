module Obs = Qp_obs

(* Cooperative cancellation for serving front ends: a wall-clock
   deadline checked once per pivot (and once on entry). Domain-local —
   not process-wide — so concurrent solves dispatched onto different
   pool domains each observe only their own deadline. A
   [Qp_par.Pool] context hook snapshots the submitting domain's
   deadline at submit time, so candidate LPs parallelized below a
   guarded solve still inherit it. NaN means "no deadline" — the hot
   path then costs one DLS load and a NaN test per pivot, no clock
   read. Shared by the dense-tableau and revised simplex paths. *)
let deadline_key : float Domain.DLS.key = Domain.DLS.new_key (fun () -> Float.nan)

let set_deadline = function
  | None -> Domain.DLS.set deadline_key Float.nan
  | Some t -> Domain.DLS.set deadline_key t

let get_deadline () =
  let d = Domain.DLS.get deadline_key in
  if Float.is_nan d then None else Some d

let () =
  Qp_par.Pool.register_context_hook (fun () ->
      let d = Domain.DLS.get deadline_key in
      fun thunk ->
        let prev = Domain.DLS.get deadline_key in
        Domain.DLS.set deadline_key d;
        Fun.protect
          ~finally:(fun () -> Domain.DLS.set deadline_key prev)
          thunk)

let check_deadline () =
  let d = Domain.DLS.get deadline_key in
  if (not (Float.is_nan d)) && Obs.Core.now () > d then
    raise
      (Qp_util.Qp_error.Error
         (Internal "Simplex: deadline exceeded (cooperative cancellation)"))
