(** Domain-local wall-clock deadlines for cooperative solver
    cancellation, shared by every simplex path. Front ends should use
    the re-exports on {!Simplex} ([set_deadline] / [get_deadline]);
    this module exists so the dense and revised pivot loops can check
    the same deadline without depending on each other. *)

val set_deadline : float option -> unit
val get_deadline : unit -> float option

val check_deadline : unit -> unit
(** @raise Qp_util.Qp_error.Error [(Internal _)] once the domain's
    deadline (if any) has passed. *)
