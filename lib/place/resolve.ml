module Simplex = Qp_lp.Simplex
module Obs = Qp_obs

type t = {
  alpha : float;
  max_pivots : int option;
  candidates : int list option;
  bases : (int, Simplex.basis) Hashtbl.t;
  mutable solves : int;
}

let create ?(alpha = 2.) ?max_pivots ?candidates () =
  if alpha <= 1. then invalid_arg "Resolve.create: alpha > 1 required";
  { alpha; max_pivots; candidates; bases = Hashtbl.create 16; solves = 0 }

let warm_sources t = Hashtbl.length t.bases
let solves t = t.solves
let reset t = Hashtbl.reset t.bases

let solve t (p : Problem.qpp) =
  t.solves <- t.solves + 1;
  let round ~v0 s =
    Rounding.solve_warm ~alpha:t.alpha ?max_pivots:t.max_pivots
      ?warm:(Hashtbl.find_opt t.bases v0)
      s
  in
  let result, bases =
    Qpp_solver.solve_with ~alpha:t.alpha ?candidates:t.candidates ~round p
  in
  (* The pool merged worker results in candidate order; commit the new
     bases sequentially so the store stays single-writer. A candidate
     that turned infeasible keeps no stale basis. *)
  (match t.candidates with
  | None ->
      Hashtbl.reset t.bases;
      List.iter (fun (v0, b) -> Hashtbl.replace t.bases v0 b) bases
  | Some cs ->
      List.iter (fun v0 -> Hashtbl.remove t.bases v0) cs;
      List.iter (fun (v0, b) -> Hashtbl.replace t.bases v0 b) bases);
  Obs.Span.with_ "resolve"
    ~attrs:
      [ ("solves", Obs.Json.Int t.solves);
        ("warm_sources", Obs.Json.Int (Hashtbl.length t.bases)) ]
    (fun () -> result)
