module Qp_error = Qp_util.Qp_error
module Quorum = Qp_quorum.Quorum
module Obs = Qp_obs

type move = { elem : int; src : int; dst : int }

type plan = {
  moves : move list;
  bound : float;
  max_ratio : float;
  drains : int;
}

let eps = 1e-9

let apply_move f { elem; src; dst } =
  if elem < 0 || elem >= Array.length f then
    invalid_arg "Migrate.apply_move: element out of range";
  if f.(elem) <> src then invalid_arg "Migrate.apply_move: source mismatch";
  let f' = Array.copy f in
  f'.(elem) <- dst;
  f'

let intermediates ~current moves =
  let f = ref current in
  List.map
    (fun mv ->
      let f' = apply_move !f mv in
      f := f';
      f')
    moves

(* Per-node load allowance: the safety bound is [bound * cap(v)], but
   a node that already exceeds it in the starting placement (capacity
   shrank under churn) is grandfathered at its starting load — it may
   never grow, only shrink toward the bound. *)
let allowance (p : Problem.qpp) ~bound ~current =
  let start = Placement.node_loads p current in
  Array.mapi
    (fun v cap -> Float.max (bound *. cap) start.(v))
    p.Problem.capacities

let quorum_intersection_ok system f =
  let node_sets =
    Array.map
      (fun q ->
        List.sort_uniq compare (Array.to_list (Array.map (fun u -> f.(u)) q)))
      (Quorum.quorums system)
  in
  let intersects a b = List.exists (fun v -> List.mem v b) a in
  let m = Array.length node_sets in
  let ok = ref true in
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      if not (intersects node_sets.(i) node_sets.(j)) then ok := false
    done
  done;
  !ok

let max_ratio_of_loads (p : Problem.qpp) loads =
  let worst = ref 0. in
  Array.iteri
    (fun v load ->
      if load > eps then begin
        let cap = p.Problem.capacities.(v) in
        let r = if cap > 0. then load /. cap else infinity in
        if r > !worst then worst := r
      end)
    loads;
  !worst

let plan ?(bound = 3.) ?budget (p : Problem.qpp) ~current ~target =
  Qp_error.guard @@ fun () ->
  Placement.validate p current;
  Placement.validate p target;
  if bound <= 0. then invalid_arg "Migrate.plan: bound must be positive";
  let loads_u = Problem.element_loads p in
  let n = Problem.n_nodes p in
  let allow = allowance p ~bound ~current in
  let target_loads = Placement.node_loads p target in
  let bad = ref (-1) in
  Array.iteri
    (fun v load -> if load > allow.(v) +. eps && !bad < 0 then bad := v)
    target_loads;
  if !bad >= 0 then
    Qp_error.infeasiblef
      "Migrate.plan: target load %.3f exceeds %.2fx capacity at node %d"
      target_loads.(!bad) bound !bad
  else begin
    let f = Array.copy current in
    let node_load = Placement.node_loads p current in
    let pending =
      ref
        (List.filter
           (fun u -> current.(u) <> target.(u))
           (List.init (Array.length current) (fun u -> u)))
    in
    let budget =
      match budget with Some b -> b | None -> (2 * List.length !pending) + 2
    in
    let moves = ref [] in
    let moves_used = ref 0 in
    let drains = ref 0 in
    let worst = ref (max_ratio_of_loads p node_load) in
    let do_move u dst =
      let src = f.(u) in
      f.(u) <- dst;
      node_load.(src) <- node_load.(src) -. loads_u.(u);
      if node_load.(src) < 0. then node_load.(src) <- 0.;
      node_load.(dst) <- node_load.(dst) +. loads_u.(u);
      moves := { elem = u; src; dst } :: !moves;
      incr moves_used;
      let r = max_ratio_of_loads p node_load in
      if r > !worst then worst := r
    in
    let result = ref None in
    while !result = None && !pending <> [] do
      if !moves_used >= budget then
        result :=
          Some
            (Qp_error.infeasiblef
               "Migrate.plan: no safe move order within budget %d (%d \
                elements still displaced)"
               budget (List.length !pending))
      else begin
        (* Direct step: largest-load displaced element whose final
           destination has headroom now. Freeing big loads first opens
           the most room for the rest. *)
        let best = ref (-1) in
        List.iter
          (fun u ->
            let dst = target.(u) in
            if node_load.(dst) +. loads_u.(u) <= allow.(dst) +. eps then
              if
                !best < 0
                || loads_u.(u) > loads_u.(!best) +. eps
                || (Float.abs (loads_u.(u) -. loads_u.(!best)) <= eps
                   && u < !best)
              then best := u)
          !pending;
        if !best >= 0 then begin
          let u = !best in
          do_move u target.(u);
          pending := List.filter (fun v -> v <> u) !pending
        end
        else begin
          (* Deadlock: every displaced element's destination is full.
             Staged drain — park the smallest displaced load on a relay
             node with headroom; it stays pending and completes its
             journey once the cycle is broken. *)
          let pick = ref None in
          List.iter
            (fun u ->
              let better_elem =
                match !pick with
                | None -> true
                | Some (u', _) ->
                    loads_u.(u) < loads_u.(u') -. eps
                    || (Float.abs (loads_u.(u) -. loads_u.(u')) <= eps
                       && u < u')
              in
              if better_elem then begin
                (* Relay with maximum headroom; never the element's own
                   node, never its (full) destination. *)
                let relay = ref (-1) in
                let headroom = ref eps in
                for w = 0 to n - 1 do
                  if w <> f.(u) && w <> target.(u) then begin
                    let h = allow.(w) -. node_load.(w) -. loads_u.(u) in
                    if h > !headroom then begin
                      headroom := h;
                      relay := w
                    end
                  end
                done;
                if !relay >= 0 then pick := Some (u, !relay)
              end)
            !pending;
          match !pick with
          | Some (u, w) ->
              do_move u w;
              incr drains
          | None ->
              result :=
                Some
                  (Qp_error.infeasiblef
                     "Migrate.plan: deadlocked with no relay headroom (%d \
                      elements displaced, bound %.2f)"
                     (List.length !pending) bound)
        end
      end
    done;
    match !result with
    | Some err -> err
    | None ->
        let plan =
          {
            moves = List.rev !moves;
            bound;
            max_ratio = !worst;
            drains = !drains;
          }
        in
        Obs.Span.with_ "migrate_plan"
          ~attrs:
            [ ("moves", Obs.Json.Int (List.length plan.moves));
              ("drains", Obs.Json.Int plan.drains);
              ("max_ratio", Obs.Json.Float plan.max_ratio) ]
          (fun () -> Ok plan)
  end

let check (p : Problem.qpp) ~current ~target t =
  Qp_error.guard @@ fun () ->
  Placement.validate p current;
  Placement.validate p target;
  let allow = allowance p ~bound:t.bound ~current in
  let check_placement f =
    let loads = Placement.node_loads p f in
    let bad = ref (-1) in
    Array.iteri
      (fun v load -> if load > allow.(v) +. eps && !bad < 0 then bad := v)
      loads;
    if !bad >= 0 then
      Error
        (Qp_error.Capacity_violation
           {
             node = !bad;
             load = loads.(!bad);
             cap = p.Problem.capacities.(!bad);
           })
    else if not (quorum_intersection_ok p.Problem.system f) then
      Qp_error.internalf "Migrate.check: quorum intersection broken"
    else Ok ()
  in
  let open Qp_error in
  let* () = check_placement current in
  let rec walk f = function
    | [] ->
        if f = target then Ok ()
        else Qp_error.internalf "Migrate.check: plan does not reach target"
    | mv :: rest ->
        let f' = apply_move f mv in
        let* () = check_placement f' in
        walk f' rest
  in
  walk current t.moves

let pp_move ppf { elem; src; dst } =
  Format.fprintf ppf "u%d: %d -> %d" elem src dst

let pp ppf t =
  Format.fprintf ppf "plan(%d moves, %d drains, bound %.2f, peak %.2f)"
    (List.length t.moves) t.drains t.bound t.max_ratio
