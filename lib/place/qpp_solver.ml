module Metric = Qp_graph.Metric
module Obs = Qp_obs

let log_src = Logs.Src.create "qp_place.qpp_solver" ~doc:"Theorem 1.2 solver"

module Log = (val Logs.src_log log_src : Logs.LOG)

type result = {
  placement : Placement.t;
  v0 : int;
  alpha : float;
  objective : float;
  relayed_objective : float;
  ssqpp : Rounding.result;
  lower_bound : float option;
  load_violation : float;
  approx_bound : float;
}

(* Core driver shared by [solve] and [Resolve.solve]: [round] runs the
   Theorem 3.7 stage for one candidate source and may thread a simplex
   basis through (warm re-solve); everything else — the parallel
   candidate fan-out, the sequential winner/lower-bound folds, the
   quality gauges — is byte-identical between the cold and warm paths,
   so both choose the same placement given the same roundings. Also
   returns the per-candidate bases for the caller to stash. *)
let solve_with ~alpha ?candidates ~round (p : Problem.qpp) =
  if alpha <= 1. then invalid_arg "Qpp_solver.solve: alpha > 1 required";
  let n = Problem.n_nodes p in
  let candidates, complete =
    match candidates with
    | None -> (List.init n (fun v -> v), true)
    | Some c ->
        List.iter
          (fun v -> if v < 0 || v >= n then invalid_arg "Qpp_solver.solve: bad candidate")
          c;
        (c, List.sort_uniq compare c = List.init n (fun v -> v))
  in
  Obs.Span.with_ "qpp_solve"
    ~attrs:
      [ ("alpha", Obs.Json.Float alpha); ("n", Obs.Json.Int n);
        ("candidates", Obs.Json.Int (List.length candidates)) ]
  @@ fun () ->
  (* Candidate sources are independent: fan the LP + rounding + delay
     evaluation of each out over the default domain pool. The
     winner/lower-bound folds below run sequentially in candidate
     order with exactly the sequential path's comparisons, so the
     chosen placement and certified bound are identical for any worker
     count (simplex pivot counters recorded inside a candidate are
     merged back in candidate order by the pool). *)
  let evaluations =
    Qp_par.Pool.parallel_map (Qp_par.Pool.default ())
      (fun v0 ->
        Obs.Span.with_ "candidate" ~attrs:[ ("v0", Obs.Json.Int v0) ] @@ fun () ->
        match round ~v0 (Problem.ssqpp_of_qpp p v0) with
        | None ->
            Log.debug (fun m -> m "candidate v0=%d: LP infeasible" v0);
            (v0, None, None)
        | Some ((r : Rounding.result), basis) ->
            let objective = Delay.avg_max_delay p r.Rounding.placement in
            Log.debug (fun m ->
                m "candidate v0=%d: Z*=%.4f delay=%.4f objective=%.4f" v0
                  r.Rounding.z_star r.Rounding.delay objective);
            (* Lower-bound term uses Z*, not the rounded placement. *)
            let avg_dist =
              match p.Problem.client_rates with
              | None -> Metric.average_distance p.Problem.metric v0
              | Some rates ->
                  let total = Array.fold_left ( +. ) 0. rates in
                  let acc = ref 0. in
                  Array.iteri
                    (fun v rate ->
                      if rate > 0. then
                        acc := !acc +. (rate *. Metric.dist p.Problem.metric v v0))
                    rates;
                  !acc /. total
            in
            let term = (avg_dist +. r.Rounding.z_star) /. Relay.bound in
            (v0, Some (objective, term, r), basis))
      (Array.of_list candidates)
  in
  let bases =
    Array.to_list evaluations
    |> List.filter_map (fun (v0, _, basis) ->
           Option.map (fun b -> (v0, b)) basis)
  in
  let best = ref None in
  let bound_acc = ref infinity in
  Array.iter
    (fun (v0, eval, _) ->
      match eval with
      | None -> ()
      | Some (objective, term, r) ->
          if term < !bound_acc then bound_acc := term;
          (match !best with
          | Some (best_obj, _, _) when best_obj <= objective -> ()
          | _ -> best := Some (objective, v0, r)))
    evaluations;
  match !best with
  | None -> (None, bases)
  | Some (objective, v0, r) ->
      let relayed_objective =
        Obs.Span.with_ "relay" ~attrs:[ ("v0", Obs.Json.Int v0) ] @@ fun () ->
        Relay.relay_delay_via p r.Rounding.placement v0
      in
      let result =
        {
          placement = r.Rounding.placement;
          v0;
          alpha;
          objective;
          relayed_objective;
          ssqpp = r;
          lower_bound = (if complete then Some !bound_acc else None);
          load_violation = Placement.max_violation p r.Rounding.placement;
          approx_bound = Relay.bound *. alpha /. (alpha -. 1.);
        }
      in
      (* Quality gauges: the same numbers the CLI prints, exported so a
         metrics dump can be checked against the human output. *)
      let g name help = Obs.Metrics.gauge ~help (Obs.Metrics.current ()) name in
      Obs.Metrics.set (g "qp_solver_objective" "Avg max-delay of the chosen placement")
        result.objective;
      Obs.Metrics.set (g "qp_solver_z_star" "LP optimum Z* of the winning source")
        r.Rounding.z_star;
      Obs.Metrics.set
        (g "qp_solver_delay_bound" "Theorem 3.7 delay bound a/(a-1) * Z*")
        r.Rounding.delay_bound;
      Obs.Metrics.set
        (g "qp_solver_load_violation" "Max load/capacity ratio of the placement")
        result.load_violation;
      Obs.Metrics.set (g "qp_solver_load_bound" "Load bound alpha + 1")
        r.Rounding.load_bound;
      Obs.Metrics.set (g "qp_solver_approx_bound" "QPP bound 5a/(a-1)")
        result.approx_bound;
      (match result.lower_bound with
      | Some lb -> Obs.Metrics.set (g "qp_solver_lower_bound" "Certified lower bound on OPT") lb
      | None -> ());
      Obs.Span.add_attr "v0" (Obs.Json.Int v0);
      Obs.Span.add_attr "objective" (Obs.Json.Float result.objective);
      (Some result, bases)

let solve ?(alpha = 2.) ?max_pivots ?candidates (p : Problem.qpp) =
  fst
    (solve_with ~alpha ?candidates p ~round:(fun ~v0:_ s ->
         Rounding.solve_warm ~alpha ?max_pivots s))
