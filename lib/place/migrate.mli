(** Bounded-safe migration between placements.

    A live system cannot jump from placement [f] to a freshly solved
    [f']: elements move one at a time, and a naive order can pile load
    onto a node far beyond the paper's [(alpha+1) * cap] guarantee
    mid-transition. This module plans an ordered sequence of single
    element moves from [f] to [f'] such that {e every} intermediate
    placement stays within a load bound and preserves quorum
    availability.

    Safety model: a move is atomic copy-then-drop — while element [u]
    is in flight from [src] to [dst], [dst] already carries [u]'s load
    (its post-move load) and [src] still does (its pre-move load).
    Both states are prefix placements of the plan, so checking every
    prefix covers every transient. Each intermediate is a total
    placement, so every quorum stays reachable throughout; {!check}
    verifies node-level quorum intersection on each prefix anyway, as
    defense in depth.

    The planner is greedy: it repeatedly moves the largest displaced
    load whose final destination currently has headroom. When no
    displaced element fits its destination (a capacity cycle), it
    degrades to a {e staged drain} — parking the smallest displaced
    load on the relay node with most headroom, which breaks the cycle
    at the cost of one extra move. Everything runs under a total move
    budget; exhausting it, or deadlocking with no relay headroom,
    yields a typed [Infeasible] so the caller can fall back (larger
    bound, strategy reweighting only). *)

type move = { elem : int; src : int; dst : int }

type plan = {
  moves : move list;  (** in execution order *)
  bound : float;  (** load multiplier the plan was checked against *)
  max_ratio : float;
      (** worst [load(v)/cap(v)] over every intermediate placement *)
  drains : int;  (** moves that parked an element on a relay node *)
}

val plan :
  ?bound:float ->
  ?budget:int ->
  Problem.qpp ->
  current:Placement.t ->
  target:Placement.t ->
  (plan, Qp_util.Qp_error.t) result
(** [plan p ~current ~target] orders the moves from [current] to
    [target]. [bound] (default 3, the paper's [(alpha+1)] at
    [alpha = 2]) caps every intermediate node load at [bound * cap(v)];
    a node whose {e starting} load already exceeds that (capacity
    shrank under churn) is grandfathered at its starting load and may
    only shrink. [budget] (default [2 * displaced + 2]) caps total
    moves including drains. Errors: [Infeasible] when the target
    itself violates the bound, when the budget is exhausted, or when a
    deadlock has no relay headroom; [Invalid_instance] on malformed
    placements. *)

val check :
  Problem.qpp ->
  current:Placement.t ->
  target:Placement.t ->
  plan ->
  (unit, Qp_util.Qp_error.t) result
(** Independent verifier: replays the plan from [current] and checks
    every prefix placement for the load allowance and node-level
    quorum intersection, and that the final placement equals
    [target]. [Capacity_violation] pinpoints the first offending
    node. Used by the qcheck safety property and the runtime engine
    before applying a plan. *)

val apply_move : Placement.t -> move -> Placement.t
(** Pure single-move application (copies).
    @raise Invalid_argument if the move's [src] does not match. *)

val intermediates : current:Placement.t -> move list -> Placement.t list
(** All prefix placements, one per move, ending with the final one. *)

val pp_move : Format.formatter -> move -> unit
val pp : Format.formatter -> plan -> unit
