(** The paper's delay functionals.

    Max-delay (Eq. 1–2): [delta_f(v, Q) = max_{u in Q} d(v, f(u))],
    [Delta_f(v) = sum_Q p(Q) delta_f(v, Q)], objective
    [Avg_v Delta_f(v)].

    Total-delay (Section 5): [gamma_f(v, Q) = sum_{u in Q} d(v, f(u))],
    [Gamma_f(v) = sum_Q p(Q) gamma_f(v, Q)], objective
    [Avg_v Gamma_f(v)].

    When the problem carries client rates (Section 6), averages are
    rate-weighted.

    The per-client scans behind {!avg_max_delay}, {!avg_total_delay}
    and {!all_client_max_delays} are fanned out over
    {!Qp_par.Pool.default}; the final reduction always runs in client
    order, so results are bit-identical for any worker count. *)

val quorum_max_delay : Problem.qpp -> Placement.t -> int -> int -> float
(** [quorum_max_delay p f v qi] = delta_f(v, Q_qi). *)

val quorum_total_delay : Problem.qpp -> Placement.t -> int -> int -> float

val client_max_delay : Problem.qpp -> Placement.t -> int -> float
(** Delta_f(v). *)

val client_total_delay : Problem.qpp -> Placement.t -> int -> float
(** Gamma_f(v). *)

val avg_max_delay : Problem.qpp -> Placement.t -> float
(** The QPP objective Avg_v [Delta_f(v)] (rate-weighted if rates are
    present). *)

val avg_total_delay : Problem.qpp -> Placement.t -> float

val ssqpp_delay : Problem.ssqpp -> Placement.t -> float
(** Delta_f(v0), the Problem 3.2 objective. *)

val all_client_max_delays : Problem.qpp -> Placement.t -> float array
(** Delta_f(v) for every v; one pass, used by the relay analysis. *)
