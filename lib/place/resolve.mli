(** Warm-started repeated QPP solving.

    Live reconfiguration re-solves the same instance after small
    deltas (an edge length moved, a capacity shrank). A [Resolve.t]
    keeps, per candidate source, the final simplex basis of the last
    solve and crash-starts the next one from it
    ({!Qp_lp.Simplex.solve_warm}); when the delta is small the LP
    re-solves in far fewer pivots, and when it is not the solver
    falls back to the cold path per candidate, so {!solve} always
    returns the same answer {!Qpp_solver.solve} would. *)

type t

val create : ?alpha:float -> ?max_pivots:int -> ?candidates:int list -> unit -> t
(** Same parameters and defaults as {!Qpp_solver.solve}; they are
    fixed for the lifetime of the state because the stored bases are
    only meaningful against an unchanged LP layout. *)

val solve : t -> Problem.qpp -> Qpp_solver.result option
(** Solve, warm-starting every candidate source from the basis of the
    previous call and storing the new bases for the next one. The
    first call is a cold solve. *)

val reset : t -> unit
(** Drop all stored bases (e.g. after a topology change that renames
    nodes); the next {!solve} runs cold. *)

val warm_sources : t -> int
(** Number of candidate sources with a stored basis. *)

val solves : t -> int
(** Total {!solve} calls on this state. *)
