module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Gap = Qp_assign.Gap
module St = Qp_assign.Shmoys_tardos
module Obs = Qp_obs

type result = {
  placement : Placement.t;
  alpha : float;
  z_star : float;
  delay : float;
  delay_bound : float;
  load_violation : float;
  load_bound : float;
}

let round_filtered (s : Problem.ssqpp) (flt : Filtering.filtered) =
  Obs.Span.with_ "rounding"
    ~attrs:[ ("alpha", Obs.Json.Float flt.Filtering.alpha) ]
  @@ fun () ->
  let sol = flt.Filtering.sol in
  let n = Array.length sol.Lp_formulation.dist in
  let nu = Quorum.universe s.Problem.system in
  let loads = Strategy.loads s.Problem.system s.Problem.strategy in
  (* GAP view (machines = ranks, jobs = elements): cost of placing u at
     rank t is d_t; load is load(u); budgets are the alpha-inflated
     capacities; only supported (t, u) pairs are allowed. *)
  let allowed =
    Array.init n (fun t -> Array.init nu (fun u -> flt.Filtering.x_hat_elem.(t).(u) > 1e-12))
  in
  let cost = Array.init n (fun t -> Array.make nu sol.Lp_formulation.dist.(t)) in
  let load = Array.init n (fun _ -> Array.copy loads) in
  let budget =
    Array.init n (fun t ->
        flt.Filtering.alpha *. s.Problem.capacities.(sol.Lp_formulation.node_of_rank.(t)))
  in
  let gap = Gap.make ~cost ~load ~budget ~allowed () in
  let rounded = St.round gap flt.Filtering.x_hat_elem in
  let placement =
    Array.map (fun rank -> sol.Lp_formulation.node_of_rank.(rank)) rounded.St.assignment
  in
  let qpp = Problem.qpp_of_ssqpp s in
  let delay = Delay.ssqpp_delay s placement in
  let alpha = flt.Filtering.alpha in
  let result =
    {
      placement;
      alpha;
      z_star = sol.Lp_formulation.z_star;
      delay;
      delay_bound = alpha /. (alpha -. 1.) *. sol.Lp_formulation.z_star;
      load_violation = Placement.max_violation qpp placement;
      load_bound = alpha +. 1.;
    }
  in
  Obs.Span.add_attr "delay" (Obs.Json.Float result.delay);
  Obs.Span.add_attr "delay_bound" (Obs.Json.Float result.delay_bound);
  Obs.Span.add_attr "load_violation" (Obs.Json.Float result.load_violation);
  result

let solve_warm ?(alpha = 2.) ?max_pivots ?warm (s : Problem.ssqpp) =
  if alpha <= 1. then invalid_arg "Rounding.solve: alpha > 1 required";
  match Lp_formulation.solve_warm ?max_pivots ?warm s with
  | None, _ -> None
  | Some sol, basis -> Some (round_filtered s (Filtering.apply ~alpha sol), basis)

let solve ?alpha ?max_pivots (s : Problem.ssqpp) =
  Option.map fst (solve_warm ?alpha ?max_pivots s)
