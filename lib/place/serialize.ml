module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Qp_error = Qp_util.Qp_error
module Json = Qp_obs.Json

let float_row xs =
  String.concat " " (Array.to_list (Array.map (fun x -> Printf.sprintf "%.17g" x) xs))

let problem_to_string (p : Problem.qpp) =
  let buf = Buffer.create 4096 in
  let n = Problem.n_nodes p in
  Buffer.add_string buf "qplace-instance v1\n";
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" n);
  Buffer.add_string buf "metric\n";
  for v = 0 to n - 1 do
    Buffer.add_string buf
      (float_row (Array.init n (fun w -> Metric.dist p.Problem.metric v w)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "capacities\n";
  Buffer.add_string buf (float_row p.Problem.capacities);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Printf.sprintf "universe %d\n" (Problem.n_elements p));
  let quorums = Quorum.quorums p.Problem.system in
  Buffer.add_string buf (Printf.sprintf "quorums %d\n" (Array.length quorums));
  Array.iter
    (fun q ->
      Buffer.add_string buf "q";
      Array.iter (fun u -> Buffer.add_string buf (Printf.sprintf " %d" u)) q;
      Buffer.add_char buf '\n')
    quorums;
  Buffer.add_string buf "strategy\n";
  Buffer.add_string buf (float_row p.Problem.strategy);
  Buffer.add_char buf '\n';
  (match p.Problem.client_rates with
  | None -> Buffer.add_string buf "rates none\n"
  | Some rates ->
      Buffer.add_string buf "rates\n";
      Buffer.add_string buf (float_row rates);
      Buffer.add_char buf '\n');
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { lines : string array; mutable pos : int }

(* Raises [Qp_error.Error (Invalid_instance _)]; the public entry
   points run under [Qp_error.guard], so callers only ever see a
   [result]. *)
let fail cur msg =
  raise
    (Qp_error.Error
       (Qp_error.Invalid_instance
          (Printf.sprintf "Serialize: line %d: %s" (cur.pos + 1) msg)))

let next_line cur =
  if cur.pos >= Array.length cur.lines then fail cur "unexpected end of input";
  let line = String.trim cur.lines.(cur.pos) in
  cur.pos <- cur.pos + 1;
  line

let expect cur what =
  let line = next_line cur in
  if line <> what then fail cur (Printf.sprintf "expected %S, got %S" what line)

let tokens line = String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let parse_floats cur expected_count =
  let line = next_line cur in
  let parts = tokens line in
  if List.length parts <> expected_count then
    fail cur (Printf.sprintf "expected %d numbers, got %d" expected_count (List.length parts));
  Array.of_list
    (List.map
       (fun s ->
         match float_of_string_opt s with
         | Some v -> v
         | None -> fail cur (Printf.sprintf "bad number %S" s))
       parts)

let parse_keyword_int cur keyword =
  let line = next_line cur in
  match tokens line with
  | [ k; v ] when k = keyword -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> fail cur (Printf.sprintf "bad integer %S" v))
  | _ -> fail cur (Printf.sprintf "expected %S <int>" keyword)

let problem_of_string_exn text =
  (* Blank lines are insignificant. *)
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' text)
  in
  let cur = { lines = Array.of_list lines; pos = 0 } in
  expect cur "qplace-instance v1";
  let n = parse_keyword_int cur "nodes" in
  if n <= 0 then fail cur "nodes must be positive";
  expect cur "metric";
  let matrix = Array.init n (fun _ -> parse_floats cur n) in
  expect cur "capacities";
  let capacities = parse_floats cur n in
  let universe = parse_keyword_int cur "universe" in
  let m = parse_keyword_int cur "quorums" in
  if m <= 0 then fail cur "quorums must be positive";
  let quorums =
    Array.init m (fun _ ->
        let line = next_line cur in
        match tokens line with
        | "q" :: ids ->
            Array.of_list
              (List.map
                 (fun s ->
                   match int_of_string_opt s with
                   | Some v -> v
                   | None -> fail cur (Printf.sprintf "bad element id %S" s))
                 ids)
        | _ -> fail cur "expected a 'q <ids>' line")
  in
  expect cur "strategy";
  let strategy = parse_floats cur m in
  let rates =
    let line = next_line cur in
    match tokens line with
    | [ "rates"; "none" ] -> None
    | [ "rates" ] -> Some (parse_floats cur n)
    | _ -> fail cur "expected 'rates none' or 'rates'"
  in
  expect cur "end";
  let metric =
    try Metric.of_matrix matrix
    with Invalid_argument msg -> fail cur ("invalid metric: " ^ msg)
  in
  let system =
    match Quorum.make_checked ~universe quorums with
    | Ok s -> s
    | Error (Qp_error.Invalid_instance msg) ->
        fail cur ("invalid quorum system: " ^ msg)
    | Error e -> raise (Qp_error.Error e)
  in
  try Problem.make_qpp ~metric ~capacities ~system ~strategy ?client_rates:rates ()
  with Invalid_argument msg -> fail cur ("invalid problem: " ^ msg)

let problem_of_string text =
  Qp_error.of_invalid_arg (fun () -> problem_of_string_exn text)

let placement_to_string f =
  String.concat " " (Array.to_list (Array.map string_of_int f))

let placement_of_string s =
  Qp_error.of_invalid_arg (fun () ->
      Array.of_list
        (List.map
           (fun tok ->
             match int_of_string_opt tok with
             | Some v -> v
             | None ->
                 raise
                   (Qp_error.Error
                      (Qp_error.Invalid_instance
                         (Printf.sprintf "Serialize: bad placement token %S" tok))))
           (tokens (String.trim s))))

let save_problem path p =
  match
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc (problem_to_string p))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Qp_error.Invalid_instance msg)

let load_problem path =
  match
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        let size = in_channel_length ic in
        really_input_string ic size)
  with
  | text -> problem_of_string text
  | exception Sys_error msg -> Error (Qp_error.Invalid_instance msg)

(* ------------------------------------------------------------------ *)
(* Outcome JSON                                                        *)
(* ------------------------------------------------------------------ *)

let outcome_schema = "qp-solve/1"

let outcome_to_json (o : Outcome.t) =
  let fopt = function Some v -> Json.Float v | None -> Json.Null in
  Json.Obj
    [ ("schema", Json.String outcome_schema);
      ("solver", Json.String o.Outcome.solver);
      ( "placement",
        Json.List
          (Array.to_list (Array.map (fun v -> Json.Int v) o.Outcome.placement)) );
      ("objective", Json.Float o.Outcome.objective);
      ("avg_max_delay", Json.Float o.Outcome.avg_max_delay);
      ("avg_total_delay", Json.Float o.Outcome.avg_total_delay);
      ("lower_bound", fopt o.Outcome.lower_bound);
      ("load_violation", Json.Float o.Outcome.load_violation);
      ("load_bound", fopt o.Outcome.load_bound);
      ("approx_bound", fopt o.Outcome.approx_bound);
      ("nodes_used", Json.Int o.Outcome.nodes_used);
      ( "detail",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) o.Outcome.detail) )
    ]

let outcome_of_json j =
  let open Qp_error in
  let ( let* ) = Qp_error.( let* ) in
  let str key =
    match Option.bind (Json.member key j) Json.to_str with
    | Some s -> Ok s
    | None -> invalid_instancef "outcome JSON: missing string field %S" key
  in
  let num key =
    match Option.bind (Json.member key j) Json.to_float with
    | Some v -> Ok v
    | None -> invalid_instancef "outcome JSON: missing numeric field %S" key
  in
  let int key =
    match Option.bind (Json.member key j) Json.to_int with
    | Some v -> Ok v
    | None -> invalid_instancef "outcome JSON: missing integer field %S" key
  in
  let opt key =
    match Json.member key j with
    | None | Some Json.Null -> Ok None
    | Some v -> (
        match Json.to_float v with
        | Some f -> Ok (Some f)
        | None -> invalid_instancef "outcome JSON: field %S is not numeric" key)
  in
  let* schema = str "schema" in
  if schema <> outcome_schema then
    invalid_instancef "outcome JSON: schema %S (expected %S)" schema
      outcome_schema
  else
    let* solver = str "solver" in
    let* placement =
      match Json.member "placement" j with
      | Some (Json.List items) ->
          let rec go acc = function
            | [] -> Ok (Array.of_list (List.rev acc))
            | item :: rest -> (
                match Json.to_int item with
                | Some v -> go (v :: acc) rest
                | None ->
                    invalid_instancef
                      "outcome JSON: placement entries must be integers")
          in
          go [] items
      | _ -> invalid_instancef "outcome JSON: missing array field \"placement\""
    in
    let* objective = num "objective" in
    let* avg_max_delay = num "avg_max_delay" in
    let* avg_total_delay = num "avg_total_delay" in
    let* lower_bound = opt "lower_bound" in
    let* load_violation = num "load_violation" in
    let* load_bound = opt "load_bound" in
    let* approx_bound = opt "approx_bound" in
    let* nodes_used = int "nodes_used" in
    let* detail =
      match Json.member "detail" j with
      | Some (Json.Obj fields) ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | (k, v) :: rest -> (
                match Json.to_float v with
                | Some f -> go ((k, f) :: acc) rest
                | None ->
                    invalid_instancef
                      "outcome JSON: detail field %S is not numeric" k)
          in
          go [] fields
      | _ -> invalid_instancef "outcome JSON: missing object field \"detail\""
    in
    Ok
      {
        Outcome.solver;
        placement;
        objective;
        avg_max_delay;
        avg_total_delay;
        lower_bound;
        load_violation;
        load_bound;
        approx_bound;
        nodes_used;
        detail;
      }

(* ------------------------------------------------------------------ *)
(* Typed-error JSON                                                    *)
(* ------------------------------------------------------------------ *)

let error_code = function
  | Qp_error.Invalid_instance _ -> "invalid_instance"
  | Qp_error.Infeasible _ -> "infeasible"
  | Qp_error.Capacity_violation _ -> "capacity_violation"
  | Qp_error.Internal _ -> "internal"

let error_to_json (e : Qp_error.t) =
  let base = [ ("code", Json.String (error_code e)) ] in
  Json.Obj
    (match e with
    | Qp_error.Invalid_instance msg
    | Qp_error.Infeasible msg
    | Qp_error.Internal msg ->
        base @ [ ("message", Json.String msg) ]
    | Qp_error.Capacity_violation { node; load; cap } ->
        base
        @ [ ("message", Json.String (Qp_error.to_string e));
            ("node", Json.Int node); ("load", Json.Float load);
            ("cap", Json.Float cap) ])

let error_of_json j =
  let ( let* ) = Qp_error.( let* ) in
  let str key =
    match Option.bind (Json.member key j) Json.to_str with
    | Some s -> Ok s
    | None -> Qp_error.invalid_instancef "error JSON: missing string field %S" key
  in
  let num key =
    match Option.bind (Json.member key j) Json.to_float with
    | Some v -> Ok v
    | None -> Qp_error.invalid_instancef "error JSON: missing numeric field %S" key
  in
  let* code = str "code" in
  match code with
  | "invalid_instance" ->
      let* msg = str "message" in
      Ok (Qp_error.Invalid_instance msg)
  | "infeasible" ->
      let* msg = str "message" in
      Ok (Qp_error.Infeasible msg)
  | "internal" ->
      let* msg = str "message" in
      Ok (Qp_error.Internal msg)
  | "capacity_violation" ->
      let* node =
        match Option.bind (Json.member "node" j) Json.to_int with
        | Some v -> Ok v
        | None -> Qp_error.invalid_instancef "error JSON: missing integer field \"node\""
      in
      let* load = num "load" in
      let* cap = num "cap" in
      Ok (Qp_error.Capacity_violation { node; load; cap })
  | other -> Qp_error.invalid_instancef "error JSON: unknown code %S" other

let outcome_to_string o = Json.to_string (outcome_to_json o)

let outcome_of_string s =
  match Json.of_string s with
  | j -> outcome_of_json j
  | exception Json.Parse_error msg ->
      Error (Qp_error.Invalid_instance ("outcome JSON: " ^ msg))
