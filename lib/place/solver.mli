(** The solver engine: one registry of placement algorithms behind a
    single typed interface.

    Every algorithm in the library (the Theorem 1.2 LP rounding, the
    Theorem 5.1 GAP route, the Section 4 closed-form layouts, the
    exact oracles and the baselines) is wrapped as a {!t} and
    registered here under a stable name. The CLI, the benchmark
    experiments and the property tests all select algorithms by
    registry lookup, so the set of solvers, their documented
    guarantees and the dispatch tables cannot drift apart.

    Contract: [solve] never raises. Invalid instances come back as
    [Error (Invalid_instance _)], capacity-infeasible ones as
    [Error (Infeasible _)], and internal numerical failures as
    [Error (Internal _)] (see {!Qp_util.Qp_error}). *)

module Qp_error = Qp_util.Qp_error

type kind = Approximation | Exact | Closed_form | Heuristic | Meta

val kind_name : kind -> string

type topology_hint = Tree_metric | General_metric
(** What the front end knows about the instance's metric. Hints only
    steer the [auto] dispatcher toward a specialist worth TRYING; every
    specialist validates its own applicability (the tree solver
    verifies the tree-metric property), so a wrong hint costs a failed
    attempt, never a wrong answer. *)

type params = {
  alpha : float; (* Theorem 3.7 rounding parameter (LP route) *)
  source : int; (* v0 for single-source layouts and greedy *)
  seed : int; (* randomized solvers *)
  candidates : int list option; (* candidate sources for the LP route *)
  pivot_budget : int option;
      (* work cap: simplex pivots on the LP route ([None] = the
         {!Qp_lp.Simplex} default), branch-and-bound search nodes on
         the tree route; exhaustion comes back as
         [Error (Internal _)]. Other solvers ignore it. *)
  topology_hint : topology_hint option;
      (* [auto] dispatch: [Some Tree_metric] routes to the tree-exact
         solver first. [None] = unknown (e.g. instance files). *)
  system_hint : string option;
      (* [auto] dispatch: the quorum-system family name ("grid",
         "majority", ...) for the closed-form layouts. *)
}

val default_params : params
(** [alpha = 2.], [source = 0], [seed = 2], [candidates = None]
    (= all nodes), [pivot_budget = None], no dispatch hints. *)

type t = {
  name : string; (* registry key, e.g. "lp" *)
  kind : kind;
  theorem : string; (* paper result implemented, "-" for baselines *)
  guarantees : string; (* one-line proven guarantee statement *)
  label : string; (* result-table title used by the CLI *)
  load_bound : params -> float option;
      (* declared bound on load_f(v)/cap(v); [None] when the
         formulation has no capacity constraint *)
  headline : Outcome.t -> string list;
      (* human-readable lines the CLI prints above the result table *)
  solve : params -> Problem.qpp -> (Outcome.t, Qp_error.t) result;
}

val register : t -> unit
(** @raise Invalid_argument on a duplicate name (programmer error). *)

val all : unit -> t list
(** Registration order — the order of the CLI/README tables. *)

val names : unit -> string list

val find : string -> (t, Qp_error.t) result
(** [Error (Invalid_instance _)] (listing the known names) when no
    solver is registered under [name]. *)

val find_exn : string -> t
(** For callers that pass a literal name. @raise Not_found. *)

val solve_many :
  ?params:params ->
  t ->
  Problem.qpp list ->
  (Outcome.t, Qp_error.t) result list
(** Batch entry point: fans the instances out over
    {!Qp_par.Pool.default}. Order-preserving and deterministic for
    every worker count; each element runs against its own telemetry
    registry, merged into the caller's in element order (the
    {!Qp_par.Pool} scoping rules). *)

val registry_table_markdown : unit -> string
(** The algorithm table (name, kind, paper result, guarantees) as
    GitHub markdown — the README table is generated from this so the
    two cannot drift (enforced by a test). *)
