type filtered = {
  alpha : float;
  sol : Lp_formulation.fractional;
  x_hat_elem : float array array;
  x_hat_quorum : float array array;
}

(* Move mass of one column toward small ranks: x_hat_t = min(alpha*x_t,
   1 - accumulated). After the cumulative sum reaches 1 the remaining
   entries are 0. *)
let filter_column ~alpha column_of n =
  let acc = ref 0. in
  Array.init n (fun t ->
      if !acc >= 1. -. 1e-12 then 0.
      else begin
        let v = Float.min (alpha *. column_of t) (1. -. !acc) in
        acc := !acc +. v;
        v
      end)

let apply ~alpha (sol : Lp_formulation.fractional) =
  if alpha <= 1. then invalid_arg "Filtering.apply: alpha > 1 required";
  Qp_obs.Span.with_ "filtering" ~attrs:[ ("alpha", Qp_obs.Json.Float alpha) ]
  @@ fun () ->
  let n = Array.length sol.Lp_formulation.dist in
  let nu = Array.length sol.Lp_formulation.x_elem.(0) in
  let nq = Array.length sol.Lp_formulation.x_quorum.(0) in
  let x_hat_elem = Array.make_matrix n nu 0. in
  let x_hat_quorum = Array.make_matrix n nq 0. in
  for u = 0 to nu - 1 do
    let col = filter_column ~alpha (fun t -> sol.Lp_formulation.x_elem.(t).(u)) n in
    Array.iteri (fun t v -> x_hat_elem.(t).(u) <- v) col
  done;
  for q = 0 to nq - 1 do
    let col = filter_column ~alpha (fun t -> sol.Lp_formulation.x_quorum.(t).(q)) n in
    Array.iteri (fun t v -> x_hat_quorum.(t).(q) <- v) col
  done;
  { alpha; sol; x_hat_elem; x_hat_quorum }

let support flt u =
  let acc = ref [] in
  Array.iteri (fun t row -> if row.(u) > 1e-12 then acc := t :: !acc) flt.x_hat_elem;
  List.rev !acc

let max_rank_distance flt u =
  List.fold_left
    (fun best t -> Float.max best flt.sol.Lp_formulation.dist.(t))
    0. (support flt u)

let check_invariants flt =
  let n = Array.length flt.sol.Lp_formulation.dist in
  let nu = Array.length flt.x_hat_elem.(0) in
  let nq = Array.length flt.x_hat_quorum.(0) in
  let ok = ref true in
  let tol = 1e-7 in
  (* Rows sum to one and stay within alpha * x. *)
  for u = 0 to nu - 1 do
    let sum = ref 0. in
    for t = 0 to n - 1 do
      sum := !sum +. flt.x_hat_elem.(t).(u);
      if
        flt.x_hat_elem.(t).(u)
        > (flt.alpha *. flt.sol.Lp_formulation.x_elem.(t).(u)) +. tol
      then ok := false
    done;
    if Float.abs (!sum -. 1.) > tol then ok := false
  done;
  (* Generalized Claim 3.8 on quorum supports. *)
  let ratio = flt.alpha /. (flt.alpha -. 1.) in
  for q = 0 to nq - 1 do
    let dq = Lp_formulation.quorum_frontier flt.sol q in
    for t = 0 to n - 1 do
      if flt.x_hat_quorum.(t).(q) > 1e-12 then
        if flt.sol.Lp_formulation.dist.(t) > (ratio *. dq) +. tol then ok := false
    done
  done;
  !ok
