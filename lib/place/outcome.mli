(** The common result shape every registered solver returns.

    Each algorithm in {!Solver} historically invented its own record
    ([Qpp_solver.result], [Total_delay.result], bare placements, ...).
    [Outcome.t] is the shared denominator the engine exposes: the
    placement, the solver's own objective value, both paper objectives
    evaluated on the placement, the certified lower bound when one
    exists, load accounting against the declared capacity blow-up, and
    a flat [detail] list of per-stage diagnostics (winning source,
    LP value, rounds, ...) for telemetry and JSON export. *)

type t = {
  solver : string; (* registry name of the producing solver *)
  placement : Placement.t;
  objective : float;
      (* the solver's own objective on [placement] (avg max-delay for
         QPP solvers, Delta_f(v0) for single-source layouts, avg
         total-delay for the GAP route) *)
  avg_max_delay : float; (* Avg_v Delta_f(v) on [placement] *)
  avg_total_delay : float; (* Avg_v Gamma_f(v) on [placement] *)
  lower_bound : float option;
      (* certified lower bound on the optimum of [objective] *)
  load_violation : float; (* max_v load_f(v)/cap(v) *)
  load_bound : float option;
      (* the solver's declared bound on [load_violation]; [None] when
         the formulation has no capacity constraint *)
  approx_bound : float option;
      (* declared approximation factor on [objective], when proven *)
  nodes_used : int;
  detail : (string * float) list;
      (* per-solver diagnostics, e.g. [("v0", 13.); ("z_star", 0.3)] *)
}

val make :
  solver:string ->
  problem:Problem.qpp ->
  placement:Placement.t ->
  objective:float ->
  ?avg_max_delay:float ->
  ?avg_total_delay:float ->
  ?lower_bound:float ->
  ?load_bound:float ->
  ?approx_bound:float ->
  ?detail:(string * float) list ->
  unit ->
  t
(** Fills the derived fields: the two paper objectives are evaluated
    on [placement] unless the caller already computed them,
    [load_violation] via {!Placement.max_violation}, [nodes_used] via
    {!Placement.used_nodes}. *)

val detail : t -> string -> float option
(** Lookup in the [detail] list. *)

val equal : t -> t -> bool
(** Structural equality (float fields compared exactly — used by the
    serialization round-trip tests). *)

val pp : Format.formatter -> t -> unit
