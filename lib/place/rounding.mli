(** Theorem 3.7: LP solve, alpha-filtering, and Shmoys–Tardos rounding
    for the Single-Source Quorum Placement Problem.

    For any [alpha > 1] the returned placement satisfies
    - [Delta_f(v0) <= alpha/(alpha-1) * Z* <= alpha/(alpha-1) *
      Delta_{f*}(v0)], and
    - [load_f(v) <= (alpha + 1) * cap(v)] at every node

    (alpha = 2 gives the paper's headline 2x delay / 3x load,
    Theorem 3.12). *)

type result = {
  placement : Placement.t;
  alpha : float;
  z_star : float; (* LP lower bound on the optimal delay *)
  delay : float; (* achieved Delta_f(v0) *)
  delay_bound : float; (* alpha/(alpha-1) * z_star *)
  load_violation : float; (* max_v load_f(v)/cap(v) *)
  load_bound : float; (* alpha + 1 *)
}

val solve : ?alpha:float -> ?max_pivots:int -> Problem.ssqpp -> result option
(** [None] when LP (9)–(14) is infeasible. Default [alpha = 2].
    [max_pivots] caps the simplex pivot count
    ({!Lp_formulation.solve}). *)

val solve_warm :
  ?alpha:float ->
  ?max_pivots:int ->
  ?warm:Qp_lp.Simplex.basis ->
  Problem.ssqpp ->
  (result * Qp_lp.Simplex.basis option) option
(** Like {!solve}, threading a simplex basis through the LP stage
    ({!Lp_formulation.solve_warm}) so a re-solve after a small instance
    delta can crash-start from the previous optimum. The rounding
    stage is unchanged; only pivot counts differ from {!solve}. *)

val round_filtered : Problem.ssqpp -> Filtering.filtered -> result
(** The rounding stage alone, for tests that want to inject a
    hand-built fractional solution. *)
