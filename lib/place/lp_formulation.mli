(** The SSQPP linear program, Eqs. (9)–(14).

    Nodes are renamed [v_0, v_1, ...] by increasing distance from the
    source ([d_0 = 0 <= d_1 <= ...]); [x_tu] fractionally places
    element [u] on the node of rank [t], and [x_tQ] marks the rank by
    which all of quorum [Q] has been placed:

    min  sum_Q p(Q) sum_t d_t x_tQ                      (9)
    s.t. sum_t x_tu = 1                     for all u   (10)
         sum_t x_tQ = 1                     for all Q   (11)
         sum_u load(u) x_tu <= cap(v_t)     for all t   (12)
         x_tu = 0 when load(u) > cap(v_t)               (13)
         sum_{s<=t} x_sQ <= sum_{s<=t} x_su
                     for all Q, u in Q, t               (14)

    Appendix A shows this relaxation has integrality gap
    Omega(sqrt n), which is why Theorem 3.7 rounds it with a capacity
    blow-up rather than exactly (experiment F1 reproduces the gap). *)

type fractional = {
  rank_of_node : int array; (* node id -> rank t *)
  node_of_rank : int array; (* rank t -> node id *)
  dist : float array; (* d_t by rank *)
  x_elem : float array array; (* rank t -> element u -> x_tu *)
  x_quorum : float array array; (* rank t -> quorum index -> x_tQ *)
  z_star : float; (* optimal LP value, lower bound on Delta_{f*}(v0) *)
}

val build : Problem.ssqpp -> Qp_lp.Lp.t * (int -> int -> int) * (int -> int -> int)
(** [build s] returns the LP plus the variable numbering
    [(var_elem t u, var_quorum t q)]; exposed for white-box tests. *)

val solve : ?max_pivots:int -> Problem.ssqpp -> fractional option
(** [None] when the LP is infeasible (capacities cannot hold the
    loads). [max_pivots] overrides the {!Qp_lp.Simplex.solve} pivot
    budget; exhausting it raises
    [Qp_util.Qp_error.Error (Internal _)] (caught at the solver-engine
    boundary). *)

val solve_warm :
  ?max_pivots:int ->
  ?warm:Qp_lp.Simplex.basis ->
  Problem.ssqpp ->
  fractional option * Qp_lp.Simplex.basis option
(** Like {!solve}, threading a {!Qp_lp.Simplex.basis} through the
    solve: pass the basis returned by a previous solve of the same
    source on a slightly perturbed instance and the simplex crash-starts
    from it (falling back to the cold path when the delta moved the
    optimum too far or changed the LP layout, e.g. by re-ranking nodes
    or toggling an oversize-pinning row). The returned basis is [None]
    when the LP is infeasible. *)

val quorum_frontier : fractional -> int -> float
(** [quorum_frontier sol q] = [D_Q = sum_t d_t x_tQ], the per-quorum
    fractional delay used by Claim 3.8. *)
