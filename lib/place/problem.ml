module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy

type qpp = {
  metric : Metric.t;
  capacities : float array;
  system : Quorum.system;
  strategy : Strategy.t;
  client_rates : float array option;
}

type ssqpp = {
  metric : Metric.t;
  capacities : float array;
  system : Quorum.system;
  strategy : Strategy.t;
  v0 : int;
}

let validate ~metric ~capacities ~system ~strategy ~client_rates =
  let n = Metric.size metric in
  if n < 1 then invalid_arg "Problem: metric must have at least one node";
  (* Defense in depth: Metric.of_matrix/of_graph already enforce these,
     but a metric arriving through deserialization or future
     constructors must not poison every downstream LP and simulation
     with NaNs or asymmetric "distances". *)
  for i = 0 to n - 1 do
    if not (Float.is_finite (Metric.dist metric i i)) then
      invalid_arg "Problem: non-finite metric entry";
    if Metric.dist metric i i <> 0. then
      invalid_arg "Problem: metric diagonal must be zero";
    for j = i + 1 to n - 1 do
      let d = Metric.dist metric i j in
      if not (Float.is_finite d) then invalid_arg "Problem: non-finite metric entry";
      if d < 0. then invalid_arg "Problem: negative metric entry";
      if not (Qp_util.Floatx.approx d (Metric.dist metric j i)) then
        invalid_arg "Problem: metric must be symmetric"
    done
  done;
  if Quorum.universe system = 0 then
    invalid_arg "Problem: quorum system has an empty universe";
  if Quorum.n_quorums system = 0 then invalid_arg "Problem: quorum system has no quorums";
  if Array.length capacities <> n then
    invalid_arg "Problem: capacities length must match metric size";
  Array.iter
    (fun c ->
      if not (Float.is_finite c) then invalid_arg "Problem: non-finite capacity";
      if c < 0. then invalid_arg "Problem: negative capacity")
    capacities;
  Strategy.validate system strategy;
  match client_rates with
  | None -> ()
  | Some rates ->
      if Array.length rates <> n then
        invalid_arg "Problem: client_rates length must match metric size";
      Array.iter
        (fun r ->
          if not (Float.is_finite r) then invalid_arg "Problem: non-finite client rate";
          if r < 0. then invalid_arg "Problem: negative client rate")
        rates;
      if Array.fold_left ( +. ) 0. rates <= 0. then
        invalid_arg "Problem: client rates must have positive sum"

let make_qpp ~metric ~capacities ~system ~strategy ?client_rates () =
  validate ~metric ~capacities ~system ~strategy ~client_rates;
  { metric; capacities; system; strategy; client_rates }

let make_ssqpp ~metric ~capacities ~system ~strategy ~v0 =
  validate ~metric ~capacities ~system ~strategy ~client_rates:None;
  if v0 < 0 || v0 >= Metric.size metric then invalid_arg "Problem: v0 out of range";
  { metric; capacities; system; strategy; v0 }

let of_graph_qpp ~graph ~capacities ~system ~strategy ?client_rates () =
  make_qpp ~metric:(Metric.of_graph graph) ~capacities ~system ~strategy ?client_rates ()

let ssqpp_of_qpp (p : qpp) v0 =
  make_ssqpp ~metric:p.metric ~capacities:p.capacities ~system:p.system
    ~strategy:p.strategy ~v0

let qpp_of_ssqpp (s : ssqpp) =
  {
    metric = s.metric;
    capacities = s.capacities;
    system = s.system;
    strategy = s.strategy;
    client_rates = None;
  }

let element_loads (p : qpp) = Strategy.loads p.system p.strategy

let capacity_feasible (p : qpp) =
  let loads = element_loads p in
  let total_load = Array.fold_left ( +. ) 0. loads in
  let total_cap = Array.fold_left ( +. ) 0. p.capacities in
  let max_cap = Array.fold_left Float.max 0. p.capacities in
  Qp_util.Floatx.leq total_load total_cap
  && Array.for_all (fun l -> Qp_util.Floatx.leq l max_cap) loads

let n_nodes (p : qpp) = Metric.size p.metric

let n_elements (p : qpp) = Quorum.universe p.system
