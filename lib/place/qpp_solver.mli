(** The full Quorum Placement Problem solver (Theorem 1.2).

    Theorem 3.3 reduces QPP to SSQPP: some node [v0] makes any
    beta-approximate single-source placement a 5*beta-approximate QPP
    placement. Since [v0] is unknown, the solver runs the Theorem 3.7
    LP-rounding for every candidate source and keeps the placement
    with the best (direct-routing) QPP objective. The guarantee is
    [Avg_v Delta_f(v) <= 5 alpha/(alpha-1) OPT] with node loads at
    most [(alpha+1) cap].

    A certified lower bound comes from the same lemma: for the
    (unknown) optimal placement there is a [v0] with
    [Avg_v d(v,v0) + Delta_{f*}(v0) <= 5 OPT] and
    [Delta_{f*}(v0) >= Z*(v0)], hence
    [OPT >= min_v0 (AvgDist(v0) + Z*(v0)) / 5] — valid only when all
    nodes are candidates. *)

type result = {
  placement : Placement.t;
  v0 : int; (* source whose SSQPP solution won *)
  alpha : float;
  objective : float; (* Avg_v Delta_f(v), direct routing *)
  relayed_objective : float; (* Avg_v d(v,v0) + Delta_f(v0) *)
  ssqpp : Rounding.result; (* winning single-source diagnostics *)
  lower_bound : float option;
      (* (min over v0 of AvgDist + Z_star) / 5 when every node was a candidate *)
  load_violation : float;
  approx_bound : float; (* 5 alpha / (alpha - 1) *)
}

val solve :
  ?alpha:float -> ?max_pivots:int -> ?candidates:int list -> Problem.qpp ->
  result option
(** Default [alpha = 2] and [candidates] = all nodes. [None] when the
    SSQPP LP is infeasible for every candidate. [max_pivots] caps the
    simplex pivot count of every candidate LP; exhausting it raises
    [Qp_util.Qp_error.Error (Internal _)] (the solver registry maps it
    to a typed [Internal] result). *)

val solve_with :
  alpha:float ->
  ?candidates:int list ->
  round:
    (v0:int ->
    Problem.ssqpp ->
    (Rounding.result * Qp_lp.Simplex.basis option) option) ->
  Problem.qpp ->
  result option * (int * Qp_lp.Simplex.basis) list
(** The candidate fan-out and winner fold with a pluggable Theorem 3.7
    stage — the hook {!Resolve} uses to thread per-source simplex bases
    through repeated solves. Also returns the final basis of every
    candidate whose LP was feasible, keyed by source. The fold is
    identical to {!solve}'s, so given the same roundings both paths
    pick the same placement. *)
