(** Exact QPP placement on tree metrics.

    On a tree the farthest placed element from any client is an
    endpoint of the placed set's diametral pair, so the average
    max-delay objective collapses to one weighted two-center cost per
    quorum; the solver runs an exact depth-first branch-and-bound over
    element assignments with an admissible monotone bound and a
    node-loop cutoff in increasing one-center cost (DESIGN.md §15).
    Exactness relies only on the tree-metric property, which is
    verified up front — registry dispatch hints decide to try this
    solver but are never trusted for correctness. *)

type result = {
  placement : int array;
  objective : float;
      (* canonical {!Delay.avg_max_delay} of [placement], recomputed
         after the search so it is comparable bit-for-bit with every
         other solver's outcome *)
  search_nodes : int; (* branch-and-bound nodes expanded *)
  m_pairs : int; (* distinct two-center costs evaluated *)
}

val is_tree_metric : ?pool:Qp_par.Pool.t -> Qp_graph.Metric.t -> bool
(** Reconstructs the minimum spanning tree of the complete distance
    graph (on a genuine tree metric this is the underlying tree) and
    checks that path sums through it reproduce the whole matrix to
    within a small relative tolerance; rows are verified in parallel
    over [pool]. *)

val solve :
  ?pool:Qp_par.Pool.t -> ?node_budget:int -> Problem.qpp -> result option
(** Exact optimum placement, or [None] when no capacity-respecting
    placement exists. The search cooperates with the serving
    deadline machinery exactly like the simplex pivot loops: it
    checks {!Qp_lp.Cancel.check_deadline} on entry and every 1024
    expanded nodes, and aborts once more than [node_budget] nodes
    have been expanded (the registry wires [params.pivot_budget]
    here) — both raise [Qp_util.Qp_error.Error (Internal _)], the
    same shape the simplex budget/deadline paths use.
    @raise Qp_util.Qp_error.Error [(Invalid_instance _)] when the
    metric is not a tree metric. *)
