module Qp_error = Qp_util.Qp_error
module Rng = Qp_util.Rng

type kind = Approximation | Exact | Closed_form | Heuristic | Meta

let kind_name = function
  | Approximation -> "approximation"
  | Exact -> "exact"
  | Closed_form -> "closed form"
  | Heuristic -> "heuristic"
  | Meta -> "dispatcher"

type topology_hint = Tree_metric | General_metric

type params = {
  alpha : float;
  source : int;
  seed : int;
  candidates : int list option;
  pivot_budget : int option;
  topology_hint : topology_hint option;
  system_hint : string option;
}

let default_params =
  { alpha = 2.; source = 0; seed = 2; candidates = None; pivot_budget = None;
    topology_hint = None; system_hint = None }

type t = {
  name : string;
  kind : kind;
  theorem : string;
  guarantees : string;
  label : string;
  load_bound : params -> float option;
  headline : Outcome.t -> string list;
  solve : params -> Problem.qpp -> (Outcome.t, Qp_error.t) result;
}

let registry : t list ref = ref []

let register s =
  if List.exists (fun s' -> String.equal s'.name s.name) !registry then
    invalid_arg (Printf.sprintf "Solver.register: duplicate name %S" s.name);
  registry := !registry @ [ s ]

let all () = !registry

let names () = List.map (fun s -> s.name) !registry

let find name =
  match List.find_opt (fun s -> String.equal s.name name) !registry with
  | Some s -> Ok s
  | None ->
      Qp_error.invalid_instancef "unknown algorithm %S (known: %s)" name
        (String.concat "|" (names ()))

let find_exn name = List.find (fun s -> String.equal s.name name) !registry

let solve_many ?(params = default_params) t problems =
  Array.to_list
    (Qp_par.Pool.parallel_map
       (Qp_par.Pool.default ())
       (fun p -> t.solve params p)
       (Array.of_list problems))

(* ------------------------------------------------------------------ *)
(* Built-in solvers                                                    *)
(* ------------------------------------------------------------------ *)

(* All built-ins run under [Qp_error.guard]: stray [Invalid_argument]s
   from validation become [Invalid_instance], stage-level
   [Qp_error.Error] raises (simplex pivot budget, matching extraction)
   surface as their payload, and any residual [Failure] is an
   [Internal]. *)
let guarded f params p = Qp_error.guard (fun () -> f params p)

let detail_or_nan o key =
  match Outcome.detail o key with Some v -> v | None -> Float.nan

let check_source params p =
  let n = Problem.n_nodes p in
  if params.source < 0 || params.source >= n then
    Qp_error.invalid_instancef "source node %d out of range [0, %d)"
      params.source n
  else Ok params.source

let lp_solve params p =
  match
    Qpp_solver.solve ~alpha:params.alpha ?max_pivots:params.pivot_budget
      ?candidates:params.candidates p
  with
  | None -> Error (Qp_error.Infeasible "LP has no solution under these capacities")
  | Some (r : Qpp_solver.result) ->
      Ok
        (Outcome.make ~solver:"lp" ~problem:p ~placement:r.placement
           ~objective:r.objective ~avg_max_delay:r.objective
           ?lower_bound:r.lower_bound
           ~load_bound:(params.alpha +. 1.)
           ~approx_bound:r.approx_bound
           ~detail:
             [ ("v0", float_of_int r.v0);
               ("alpha", r.alpha);
               ("z_star", r.ssqpp.Rounding.z_star);
               ("relayed_objective", r.relayed_objective);
             ]
           ())

let lp =
  {
    name = "lp";
    kind = Approximation;
    theorem = "Thm 1.2 (via Thm 3.3 + Thm 3.7)";
    guarantees = "delay <= 5a/(a-1) OPT; load <= (a+1) cap";
    label = "LP rounding result";
    load_bound = (fun params -> Some (params.alpha +. 1.));
    headline =
      (fun o ->
        Printf.sprintf "Theorem 1.2 placement via source v0 = %d (alpha = %.2f)"
          (int_of_float (detail_or_nan o "v0"))
          (detail_or_nan o "alpha")
        ::
        (match o.Outcome.lower_bound with
        | Some lb -> [ Printf.sprintf "certified lower bound on OPT: %.4f" lb ]
        | None -> []));
    solve = guarded lp_solve;
  }

let total_solve _params p =
  match Total_delay.solve p with
  | None ->
      Error
        (Qp_error.Infeasible "GAP relaxation has no solution under these capacities")
  | Some (r : Total_delay.result) ->
      Ok
        (Outcome.make ~solver:"total" ~problem:p ~placement:r.placement
           ~objective:r.cost ~avg_total_delay:r.cost ~lower_bound:r.lp_cost
           ~load_bound:2.
           ~detail:[ ("lp_cost", r.lp_cost) ]
           ())

let total =
  {
    name = "total";
    kind = Approximation;
    theorem = "Thm 5.1";
    guarantees = "total delay <= OPT; load <= 2 cap";
    label = "total-delay result";
    load_bound = (fun _ -> Some 2.);
    headline =
      (fun o ->
        [ Printf.sprintf "Theorem 5.1 total-delay placement (GAP LP %.4f)"
            (detail_or_nan o "lp_cost") ]);
    solve = guarded total_solve;
  }

let greedy_solve params p =
  match check_source params p with
  | Error _ as e -> e
  | Ok source -> (
      match Baselines.greedy_closest p source with
      | None ->
          Error (Qp_error.Infeasible "greedy placement failed to fit every element")
      | Some f ->
          let obj = Delay.avg_max_delay p f in
          Ok
            (Outcome.make ~solver:"greedy" ~problem:p ~placement:f ~objective:obj
               ~avg_max_delay:obj ~load_bound:1.
               ~detail:[ ("source", float_of_int source) ]
               ()))

let greedy =
  {
    name = "greedy";
    kind = Heuristic;
    theorem = "-";
    guarantees = "no delay guarantee; load <= cap";
    label = "greedy-closest result";
    load_bound = (fun _ -> Some 1.);
    headline = (fun _ -> []);
    solve = guarded greedy_solve;
  }

let random_solve params p =
  match Baselines.random (Rng.create params.seed) p with
  | None ->
      Error
        (Qp_error.Infeasible
           "no capacity-respecting random placement found after 100 restarts")
  | Some f ->
      let obj = Delay.avg_max_delay p f in
      Ok
        (Outcome.make ~solver:"random" ~problem:p ~placement:f ~objective:obj
           ~avg_max_delay:obj ~load_bound:1.
           ~detail:[ ("seed", float_of_int params.seed) ]
           ())

let random =
  {
    name = "random";
    kind = Heuristic;
    theorem = "-";
    guarantees = "no delay guarantee; load <= cap";
    label = "random feasible result";
    load_bound = (fun _ -> Some 1.);
    headline = (fun _ -> []);
    solve = guarded random_solve;
  }

let exact_solve _params p =
  match Exact.qpp_brute_force p with
  | None ->
      Error (Qp_error.Infeasible "no capacity-respecting placement exists")
  | Some (cost, f) ->
      Ok
        (Outcome.make ~solver:"exact" ~problem:p ~placement:f ~objective:cost
           ~avg_max_delay:cost ~lower_bound:cost ~load_bound:1. ())

let exact =
  {
    name = "exact";
    kind = Exact;
    theorem = "-";
    guarantees = "exact optimum (guarded to tiny instances); load <= cap";
    label = "exact optimum result";
    load_bound = (fun _ -> Some 1.);
    headline = (fun _ -> [ "exhaustive optimum over all placements" ]);
    solve = guarded exact_solve;
  }

let grid_solve params p =
  match check_source params p with
  | Error _ as e -> e
  | Ok source -> (
      let s = Problem.ssqpp_of_qpp p source in
      match Grid_layout.place_with_expansion s with
      | None ->
          Error (Qp_error.Infeasible "fewer usable nodes than grid cells")
      | Some (layout, f) ->
          Ok
            (Outcome.make ~solver:"grid" ~problem:p ~placement:f
               ~objective:layout.Grid_layout.delay ~load_bound:1.
               ~detail:[ ("v0", float_of_int source) ]
               ()))

let grid =
  {
    name = "grid";
    kind = Closed_form;
    theorem = "Thm B.1 / Sec. 4.1";
    guarantees = "optimal single-source delay on Grid systems; load <= cap";
    label = "grid layout result";
    load_bound = (fun _ -> Some 1.);
    headline =
      (fun o ->
        [ Printf.sprintf "Theorem B.1 concentric grid layout via source v0 = %d"
            (int_of_float (detail_or_nan o "v0")) ]);
    solve = guarded grid_solve;
  }

let majority_solve params p =
  match check_source params p with
  | Error _ as e -> e
  | Ok source -> (
      let s = Problem.ssqpp_of_qpp p source in
      match Majority_layout.place s with
      | None ->
          Error
            (Qp_error.Infeasible "fewer usable nodes than majority elements")
      | Some (closed, f) ->
          Ok
            (Outcome.make ~solver:"majority" ~problem:p ~placement:f
               ~objective:closed ~load_bound:1.
               ~detail:
                 [ ("v0", float_of_int source); ("closed_form", closed) ]
               ()))

let majority =
  {
    name = "majority";
    kind = Closed_form;
    theorem = "Eq. (19) / Sec. 4.2";
    guarantees = "optimal single-source delay on threshold systems; load <= cap";
    label = "majority layout result";
    load_bound = (fun _ -> Some 1.);
    headline =
      (fun o ->
        [ Printf.sprintf "Eq. (19) majority layout via source v0 = %d"
            (int_of_float (detail_or_nan o "v0")) ]);
    solve = guarded majority_solve;
  }

let partial_solve _params p =
  let (d : Partial_deploy.deployment) = Partial_deploy.solve p in
  Ok
    (Outcome.make ~solver:"partial" ~problem:p ~placement:d.placement
       ~objective:d.cost
       ~detail:[ ("rounds", float_of_int d.rounds) ]
       ())

let partial =
  {
    name = "partial";
    kind = Heuristic;
    theorem = "Gilbert-Malewicz OPODIS'04 (Related Work)";
    guarantees = "joint local optimum of (f, q); bijection in lieu of capacities";
    label = "partial deployment result";
    load_bound = (fun _ -> None);
    headline =
      (fun o ->
        [ Printf.sprintf "Gilbert-Malewicz partial deployment: %d alternation rounds"
            (int_of_float (detail_or_nan o "rounds")) ]);
    solve = guarded partial_solve;
  }

let tree_solve params p =
  match Tree_place.solve ?node_budget:params.pivot_budget p with
  | None -> Error (Qp_error.Infeasible "no capacity-respecting placement exists")
  | Some (r : Tree_place.result) ->
      Ok
        (Outcome.make ~solver:"tree" ~problem:p ~placement:r.placement
           ~objective:r.objective ~avg_max_delay:r.objective
           ~lower_bound:r.objective ~load_bound:1.
           ~detail:
             [ ("search_nodes", float_of_int r.search_nodes);
               ("m_pairs", float_of_int r.m_pairs);
             ]
           ())

let tree =
  {
    name = "tree";
    kind = Exact;
    theorem = "diametral-pair reduction (cf. Benoit et al., Related Work)";
    guarantees = "exact optimum on tree metrics (verified); load <= cap";
    label = "tree-exact result";
    load_bound = (fun _ -> Some 1.);
    headline =
      (fun o ->
        [ Printf.sprintf
            "exact tree-metric optimum (%d search nodes, %d two-center costs)"
            (int_of_float (detail_or_nan o "search_nodes"))
            (int_of_float (detail_or_nan o "m_pairs")) ]);
    solve = guarded tree_solve;
  }

(* Dispatch spec -> specialist. Hints come from the front ends (the
   one spec->params mapping in [Qp_serve.Protocol.solver_params]); a
   wrong or stale hint costs a failed specialist attempt, never a
   wrong answer, because each specialist validates its own
   applicability (the tree solver verifies the metric). Any specialist
   error falls back to the general LP route — useful even on genuine
   capacity infeasibility, since the LP's (alpha+1) load blow-up
   admits placements the load <= cap solvers reject. *)
let auto_specialist params =
  match params.topology_hint with
  | Some Tree_metric -> Some "tree"
  | _ -> (
      match params.system_hint with
      | Some "grid" -> Some "grid"
      | Some "majority" -> Some "majority"
      | _ -> None)

let auto_solve params p =
  match auto_specialist params with
  | None -> (find_exn "lp").solve params p
  | Some name -> (
      match (find_exn name).solve params p with
      | Ok o -> Ok o
      | Error _ -> (find_exn "lp").solve params p)

let auto =
  {
    name = "auto";
    kind = Meta;
    theorem = "-";
    guarantees = "dispatches spec -> specialist (tree/grid/majority), LP fallback; inherits the chosen solver's guarantees";
    label = "auto-dispatch result";
    load_bound = (fun _ -> None);
    headline =
      (fun o -> [ Printf.sprintf "auto-dispatch selected %S" o.Outcome.solver ]);
    solve = (fun params p -> auto_solve params p);
  }

let () =
  List.iter register
    [ lp; total; greedy; random; exact; grid; majority; partial; tree; auto ]

let registry_table_markdown () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "| algorithm | kind | paper result | guarantees |\n";
  Buffer.add_string buf "|---|---|---|---|\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "| `%s` | %s | %s | %s |\n" s.name (kind_name s.kind)
           s.theorem s.guarantees))
    !registry;
  Buffer.contents buf
