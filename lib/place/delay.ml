module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum

let quorum_max_delay (p : Problem.qpp) f v qi =
  let q = Quorum.quorum p.Problem.system qi in
  Array.fold_left
    (fun acc u -> Float.max acc (Metric.dist p.Problem.metric v f.(u)))
    0. q

let quorum_total_delay (p : Problem.qpp) f v qi =
  let q = Quorum.quorum p.Problem.system qi in
  Array.fold_left (fun acc u -> acc +. Metric.dist p.Problem.metric v f.(u)) 0. q

let expected_over_quorums (p : Problem.qpp) per_quorum =
  let acc = ref 0. in
  Array.iteri (fun qi pq -> if pq > 0. then acc := !acc +. (pq *. per_quorum qi)) p.Problem.strategy;
  !acc

let client_max_delay p f v = expected_over_quorums p (quorum_max_delay p f v)

let client_total_delay p f v = expected_over_quorums p (quorum_total_delay p f v)

(* Per-client delays evaluated over the default domain pool. The
   reduction below always runs sequentially in client order, so the
   result is bit-identical to a single-core run for any worker
   count. *)
let per_client_values n per_client =
  Qp_par.Pool.parallel_init (Qp_par.Pool.default ()) n per_client

let weighted_avg (p : Problem.qpp) per_client =
  let n = Problem.n_nodes p in
  match p.Problem.client_rates with
  | None ->
      let values = per_client_values n per_client in
      let acc = ref 0. in
      for v = 0 to n - 1 do
        acc := !acc +. values.(v)
      done;
      !acc /. float_of_int n
  | Some rates ->
      let total = Array.fold_left ( +. ) 0. rates in
      (* Rate-zero clients are skipped, not just weighted out, to keep
         the float-operation sequence of the sequential path. *)
      let values =
        per_client_values n (fun v -> if rates.(v) > 0. then per_client v else 0.)
      in
      let acc = ref 0. in
      for v = 0 to n - 1 do
        if rates.(v) > 0. then acc := !acc +. (rates.(v) *. values.(v))
      done;
      !acc /. total

let avg_max_delay p f =
  Placement.validate p f;
  weighted_avg p (client_max_delay p f)

let avg_total_delay p f =
  Placement.validate p f;
  weighted_avg p (client_total_delay p f)

let ssqpp_delay (s : Problem.ssqpp) f =
  let p = Problem.qpp_of_ssqpp s in
  Placement.validate p f;
  client_max_delay p f s.Problem.v0

let all_client_max_delays p f =
  Placement.validate p f;
  per_client_values (Problem.n_nodes p) (fun v -> client_max_delay p f v)
