(** Problem instances.

    A {!qpp} is the paper's Problem 1.1: place the universe of a
    quorum system onto the nodes of a metric (shortest-path closure of
    a network) subject to per-node capacities, minimizing the average
    over clients of the expected max-delay. A {!ssqpp} (Problem 3.2)
    is the single-client restriction with source [v0]. *)

type qpp = {
  metric : Qp_graph.Metric.t;
  capacities : float array; (* cap(v) per node *)
  system : Qp_quorum.Quorum.system;
  strategy : Qp_quorum.Strategy.t;
  client_rates : float array option;
      (* Section 6 extension: relative access rates per client; [None]
         means uniform. *)
}

type ssqpp = {
  metric : Qp_graph.Metric.t;
  capacities : float array;
  system : Qp_quorum.Quorum.system;
  strategy : Qp_quorum.Strategy.t;
  v0 : int;
}

val make_qpp :
  metric:Qp_graph.Metric.t ->
  capacities:float array ->
  system:Qp_quorum.Quorum.system ->
  strategy:Qp_quorum.Strategy.t ->
  ?client_rates:float array ->
  unit ->
  qpp
(** Validates the instance and raises a descriptive [Invalid_argument]
    on: a metric with non-finite, negative or asymmetric entries or a
    non-zero diagonal; an empty quorum system (no elements or no
    quorums); capacity/rate arrays of the wrong length; non-finite or
    negative capacities; an invalid strategy (negative mass or not
    summing to 1); non-finite or negative client rates, or rates with
    zero total. *)

val make_ssqpp :
  metric:Qp_graph.Metric.t ->
  capacities:float array ->
  system:Qp_quorum.Quorum.system ->
  strategy:Qp_quorum.Strategy.t ->
  v0:int ->
  ssqpp

val of_graph_qpp :
  graph:Qp_graph.Graph.t ->
  capacities:float array ->
  system:Qp_quorum.Quorum.system ->
  strategy:Qp_quorum.Strategy.t ->
  ?client_rates:float array ->
  unit ->
  qpp
(** Convenience: takes the shortest-path closure of a connected
    graph. *)

val ssqpp_of_qpp : qpp -> int -> ssqpp
val qpp_of_ssqpp : ssqpp -> qpp

val element_loads : qpp -> float array
(** load(u) induced by the strategy. *)

val capacity_feasible : qpp -> bool
(** Necessary conditions: total capacity >= total load and every
    element fits somewhere ([min load <= max cap]). Not sufficient
    (bin packing), but cheap and catches hopeless instances. *)

val n_nodes : qpp -> int
val n_elements : qpp -> int
