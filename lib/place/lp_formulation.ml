module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Lp = Qp_lp.Lp
module Simplex = Qp_lp.Simplex
module Obs = Qp_obs

type fractional = {
  rank_of_node : int array;
  node_of_rank : int array;
  dist : float array;
  x_elem : float array array;
  x_quorum : float array array;
  z_star : float;
}

let ordering (s : Problem.ssqpp) =
  let node_of_rank = Metric.nodes_by_distance s.Problem.metric s.Problem.v0 in
  let n = Array.length node_of_rank in
  let rank_of_node = Array.make n 0 in
  Array.iteri (fun t v -> rank_of_node.(v) <- t) node_of_rank;
  let dist = Array.map (fun v -> Metric.dist s.Problem.metric s.Problem.v0 v) node_of_rank in
  (rank_of_node, node_of_rank, dist)

let build (s : Problem.ssqpp) =
  let _, node_of_rank, dist = ordering s in
  let n = Array.length node_of_rank in
  let nu = Quorum.universe s.Problem.system in
  let nq = Quorum.n_quorums s.Problem.system in
  let loads = Strategy.loads s.Problem.system s.Problem.strategy in
  let var_elem t u = (t * nu) + u in
  let var_quorum t q = (n * nu) + (t * nq) + q in
  let lp = Lp.create ((n * nu) + (n * nq)) in
  (* Objective (9). *)
  for t = 0 to n - 1 do
    for q = 0 to nq - 1 do
      Lp.set_objective lp (var_quorum t q) (s.Problem.strategy.(q) *. dist.(t))
    done
  done;
  (* (10) each element placed once. *)
  for u = 0 to nu - 1 do
    Lp.add_constraint lp (List.init n (fun t -> (var_elem t u, 1.))) Lp.Eq 1.
  done;
  (* (11) each quorum completes once. *)
  for q = 0 to nq - 1 do
    Lp.add_constraint lp (List.init n (fun t -> (var_quorum t q, 1.))) Lp.Eq 1.
  done;
  (* (12) capacity per node and (13) oversize pinning. *)
  for t = 0 to n - 1 do
    let cap = s.Problem.capacities.(node_of_rank.(t)) in
    let terms = ref [] in
    for u = 0 to nu - 1 do
      if loads.(u) > cap +. 1e-12 then
        Lp.add_constraint lp [ (var_elem t u, 1.) ] Lp.Le 0.
      else if loads.(u) > 0. then terms := (var_elem t u, loads.(u)) :: !terms
    done;
    if !terms <> [] then Lp.add_constraint lp !terms Lp.Le cap
  done;
  (* (14) prefix-domination: a quorum cannot complete before each of
     its elements has been placed. The t = n-1 row is implied by (10)
     and (11) and is omitted. *)
  Array.iteri
    (fun q quorum ->
      Array.iter
        (fun u ->
          for t = 0 to n - 2 do
            let terms =
              List.init (t + 1) (fun st -> (var_quorum st q, 1.))
              @ List.init (t + 1) (fun st -> (var_elem st u, -1.))
            in
            Lp.add_constraint lp terms Lp.Le 0.
          done)
        quorum)
    (Quorum.quorums s.Problem.system);
  (lp, var_elem, var_quorum)

let solve_warm ?max_pivots ?warm (s : Problem.ssqpp) =
  let rank_of_node, node_of_rank, dist = ordering s in
  let n = Array.length node_of_rank in
  let nu = Quorum.universe s.Problem.system in
  let nq = Quorum.n_quorums s.Problem.system in
  Obs.Span.with_ "lp_solve"
    ~attrs:
      [ ("v0", Obs.Json.Int s.Problem.v0); ("n", Obs.Json.Int n);
        ("universe", Obs.Json.Int nu); ("quorums", Obs.Json.Int nq) ]
  @@ fun () ->
  let lp, var_elem, var_quorum = build s in
  match Simplex.solve_warm ?max_pivots ?warm lp with
  | Simplex.Infeasible, _ ->
      Obs.Span.add_attr "infeasible" (Obs.Json.Bool true);
      (None, None)
  | Simplex.Unbounded, _ -> assert false (* objective is non-negative *)
  | Simplex.Optimal { x; objective }, basis ->
      Obs.Span.add_attr "z_star" (Obs.Json.Float objective);
      let clip v = if v < 1e-11 then 0. else if v > 1. then 1. else v in
      let x_elem =
        Array.init n (fun t -> Array.init nu (fun u -> clip x.(var_elem t u)))
      in
      let x_quorum =
        Array.init n (fun t -> Array.init nq (fun q -> clip x.(var_quorum t q)))
      in
      ( Some { rank_of_node; node_of_rank; dist; x_elem; x_quorum; z_star = objective },
        basis )

let solve ?max_pivots (s : Problem.ssqpp) = fst (solve_warm ?max_pivots s)

let quorum_frontier sol q =
  let acc = ref 0. in
  Array.iteri (fun t row -> acc := !acc +. (sol.dist.(t) *. row.(q))) sol.x_quorum;
  !acc
