(** Serialization of problem instances, placements and solver
    outcomes.

    Instances use a line-oriented, versioned plain-text format so they
    can be saved from the CLI, shipped in bug reports, and reloaded
    bit-exactly:

    {v
    qplace-instance v1
    nodes <n>
    metric
    <n rows of n floats>
    capacities
    <n floats>
    universe <u>
    quorums <m>
    q <sorted element ids>          (m lines)
    strategy
    <m floats>
    rates none | rates
    [<n floats>]
    end
    v}

    Floats are printed with ["%.17g"] so round-trips are exact.

    Solver outcomes ({!Outcome.t}) serialize to single-line JSON under
    the versioned schema {!outcome_schema} (the [qplace solve
    --format json] output; cf. the [qp-bench/2] artifact schema).
    Finite floats round-trip exactly through {!Qp_obs.Json}.

    All parsers follow the repository error convention: malformed
    input comes back as [Error (Invalid_instance _)] — never an
    exception. *)

val problem_to_string : Problem.qpp -> string

val problem_of_string : string -> (Problem.qpp, Qp_util.Qp_error.t) result
(** [Error (Invalid_instance _)] with a line-numbered message on
    malformed input (also when the embedded metric/system/strategy
    fails validation). *)

val placement_to_string : Placement.t -> string
(** Space-separated node ids on one line. *)

val placement_of_string : string -> (Placement.t, Qp_util.Qp_error.t) result
(** [Error (Invalid_instance _)] on non-integer tokens. Range/shape
    checking against a problem is the caller's job
    ({!Placement.validate}). *)

val save_problem : string -> Problem.qpp -> (unit, Qp_util.Qp_error.t) result
(** [Error (Invalid_instance _)] when the file cannot be written. *)

val load_problem : string -> (Problem.qpp, Qp_util.Qp_error.t) result
(** [Error (Invalid_instance _)] when the file cannot be read or does
    not parse. *)

(** {2 Outcome JSON} *)

val outcome_schema : string
(** ["qp-solve/1"] — bumped on any shape change. *)

val outcome_to_json : Outcome.t -> Qp_obs.Json.t

val outcome_of_json : Qp_obs.Json.t -> (Outcome.t, Qp_util.Qp_error.t) result

val outcome_to_string : Outcome.t -> string
(** Compact single-line JSON. *)

val outcome_of_string : string -> (Outcome.t, Qp_util.Qp_error.t) result

(** {2 Typed-error JSON}

    The wire representation of {!Qp_util.Qp_error.t} used by the
    serving layer ([qp_serve] error frames): an object with a stable
    [code] plus a human [message] (and the node/load/cap fields for
    capacity violations). *)

val error_code : Qp_util.Qp_error.t -> string
(** ["invalid_instance" | "infeasible" | "capacity_violation" |
    "internal"] — stable across schema versions. *)

val error_to_json : Qp_util.Qp_error.t -> Qp_obs.Json.t

val error_of_json :
  Qp_obs.Json.t -> (Qp_util.Qp_error.t, Qp_util.Qp_error.t) result
(** Inverse of {!error_to_json} ([Error (Invalid_instance _)] on a
    malformed payload). *)
