module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Qp_error = Qp_util.Qp_error

(* Exact placement on tree metrics.

   On a tree, the farthest point of a finite set S from ANY vertex is
   one of the two endpoints of S's diametral pair (the classic
   double-BFS fact). So for a placed quorum q the per-client cost
   max_{u in q} d(v, f(u)) collapses to max(d(v, a), d(v, b)) where
   (a, b) is the diametral pair of {f(u) : u in q}, and the QPP
   objective becomes

     objective(f) = sum_q p(q) * M(a_q, b_q),
     M(a, b)      = (1/R) sum_v r_v * max(d(v, a), d(v, b)),

   a sum over one weighted two-center cost per quorum. M is computed
   lazily per distinct node pair (O(n) each, memoized), and the
   diametral pair of a quorum updates in O(1) per added element
   (the new pair is the farthest of the three candidate pairs).

   The search is a depth-first branch-and-bound over element
   assignments, exact because the bound is admissible: M is monotone
   in the placed set (a larger set has a no-smaller farthest point),
   so the current sum_q p(q) * M(pair so far) never overestimates any
   completion. Nodes are tried in increasing order of the one-center
   cost A(v) = M(v, v); since M(a, b) >= max(A(a), A(b)), placing an
   element at v forces every quorum containing it to cost at least
   max(current M, A(v)) — a quantity monotone in A(v) — so once that
   optimistic value reaches the incumbent the whole remaining node
   loop is pruned, not just v.

   Everything here trusts only the tree-metric property, which is
   verified up front (MST reconstruction + O(n^2) distance check) —
   dispatch hints choose to TRY this solver, they are never trusted
   for correctness. *)

(* ------------------------------------------------------------------ *)
(* Tree-metric verification                                            *)
(* ------------------------------------------------------------------ *)

(* Minimum spanning tree of the complete distance graph (Prim,
   O(n^2)). On a genuine tree metric the MST is the underlying tree,
   and path sums through it reproduce every distance. *)
let mst_parent metric =
  let n = Metric.size metric in
  let parent = Array.make n (-1) in
  let in_tree = Array.make n false in
  let best = Array.make n infinity in
  let best_from = Array.make n (-1) in
  in_tree.(0) <- true;
  for v = 1 to n - 1 do
    best.(v) <- Metric.dist metric 0 v;
    best_from.(v) <- 0
  done;
  for _ = 1 to n - 1 do
    let u = ref (-1) in
    for v = 0 to n - 1 do
      if (not in_tree.(v)) && (!u < 0 || best.(v) < best.(!u)) then u := v
    done;
    let u = !u in
    in_tree.(u) <- true;
    parent.(u) <- best_from.(u);
    for v = 0 to n - 1 do
      if not in_tree.(v) then begin
        let d = Metric.unsafe_dist metric u v in
        if d < best.(v) then begin
          best.(v) <- d;
          best_from.(v) <- u
        end
      end
    done
  done;
  parent

let verify_tol = 1e-6

(* Check that summing MST edges along tree paths reproduces the whole
   matrix, one source row per pool element (deterministic: each row is
   an independent boolean). *)
let is_tree_metric ?pool metric =
  let n = Metric.size metric in
  if n <= 2 then true
  else begin
    let pool = match pool with Some p -> p | None -> Qp_par.Pool.default () in
    let parent = mst_parent metric in
    let adj = Array.make n [] in
    for v = 1 to n - 1 do
      let u = parent.(v) in
      let w = Metric.dist metric u v in
      adj.(v) <- (u, w) :: adj.(v);
      adj.(u) <- (v, w) :: adj.(u)
    done;
    let row_ok s =
      let dist = Array.make n infinity in
      dist.(s) <- 0.;
      let stack = ref [ s ] in
      let rec walk () =
        match !stack with
        | [] -> ()
        | v :: rest ->
            stack := rest;
            List.iter
              (fun (u, w) ->
                if dist.(u) = infinity then begin
                  dist.(u) <- dist.(v) +. w;
                  stack := u :: !stack
                end)
              adj.(v);
            walk ()
      in
      walk ();
      let ok = ref true in
      for v = 0 to n - 1 do
        let dm = Metric.unsafe_dist metric s v in
        if Float.abs (dist.(v) -. dm) > verify_tol *. Float.max 1. dm then
          ok := false
      done;
      !ok
    in
    Array.for_all Fun.id (Qp_par.Pool.parallel_init pool n row_ok)
  end

(* ------------------------------------------------------------------ *)
(* Exact branch-and-bound                                              *)
(* ------------------------------------------------------------------ *)

type result = {
  placement : int array;
  objective : float; (* canonical Delay.avg_max_delay of [placement] *)
  search_nodes : int; (* DFS nodes expanded *)
  m_pairs : int; (* distinct two-center costs evaluated *)
}

(* How often the exponential search polls the cooperative deadline: a
   power of two so the test is one mask. 1024 nodes is well under a
   millisecond of work, so a served request overshoots its deadline by
   a negligible slice instead of arbitrarily. *)
let deadline_poll_mask = 1024 - 1

let solve ?pool ?node_budget (p : Problem.qpp) =
  let metric = p.Problem.metric in
  let n = Metric.size metric in
  let nu = Quorum.universe p.Problem.system in
  Qp_lp.Cancel.check_deadline ();
  if not (is_tree_metric ?pool metric) then
    raise
      (Qp_error.Error
         (Qp_error.Invalid_instance
            "tree solver: the instance metric is not a tree metric"));
  let quorums = Quorum.quorums p.Problem.system in
  let nq = Array.length quorums in
  let weights = p.Problem.strategy in
  let rates, total_rate =
    match p.Problem.client_rates with
    | Some r -> (r, Array.fold_left ( +. ) 0. r)
    | None -> (Array.make n 1., float_of_int n)
  in
  (* Lazy weighted two-center costs M(a,b), keyed min*n+max. *)
  let m_memo : (int, float) Hashtbl.t = Hashtbl.create 256 in
  let two_center a b =
    let key = if a <= b then (a * n) + b else (b * n) + a in
    match Hashtbl.find_opt m_memo key with
    | Some v -> v
    | None ->
        let acc = ref 0. in
        for v = 0 to n - 1 do
          if rates.(v) > 0. then
            acc :=
              !acc
              +. rates.(v)
                 *. Float.max
                      (Metric.unsafe_dist metric v a)
                      (Metric.unsafe_dist metric v b)
        done;
        let m = !acc /. total_rate in
        Hashtbl.add m_memo key m;
        m
  in
  let one_center v = two_center v v in
  (* Nodes in increasing one-center cost: good solutions appear early
     and the A-monotone loop break applies. Deterministic tie-break on
     id. *)
  let node_order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare (one_center a) (one_center b) in
      if c <> 0 then c else compare a b)
    node_order;
  (* Elements by decreasing total quorum probability: the heaviest
     contributors bind the bound earliest. *)
  let elem_weight = Array.make nu 0. in
  Array.iteri
    (fun qi q -> Array.iter (fun u -> elem_weight.(u) <- elem_weight.(u) +. weights.(qi)) q)
    quorums;
  let elem_order = Array.init nu (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare elem_weight.(b) elem_weight.(a) in
      if c <> 0 then c else compare a b)
    elem_order;
  let quorums_of = Array.make nu [] in
  Array.iteri
    (fun qi q -> Array.iter (fun u -> quorums_of.(u) <- qi :: quorums_of.(u)) q)
    quorums;
  let loads = Problem.element_loads p in
  let node_load = Array.make n 0. in
  (* Per-quorum diametral pair of placed elements ((-1,-1) = none) and
     its two-center cost. *)
  let pa = Array.make nq (-1) in
  let pb = Array.make nq (-1) in
  let pm = Array.make nq 0. in
  let lb = ref 0. in
  let f = Array.make nu (-1) in
  let best_val = ref infinity in
  let best_f = ref None in
  let search_nodes = ref 0 in
  (* The branch-and-bound is exponential in the worst case, so — like
     the simplex pivot loops — it must stay cancellable while running
     on a server pool domain: poll the domain-local deadline
     periodically and honour the caller's search-node budget. Both
     raise the same [Internal] error shape as the simplex paths, so
     the server's deadline mapping in [run_solve] applies unchanged. *)
  let check_limits () =
    if !search_nodes land deadline_poll_mask = 0 then
      Qp_lp.Cancel.check_deadline ();
    match node_budget with
    | Some b when !search_nodes > b ->
        raise
          (Qp_error.Error
             (Qp_error.Internal
                (Printf.sprintf
                   "Tree solver: search-node budget exceeded (%d nodes)" b)))
    | _ -> ()
  in
  let rec go depth =
    incr search_nodes;
    check_limits ();
    if depth = nu then begin
      if !lb < !best_val -. 1e-15 then begin
        best_val := !lb;
        best_f := Some (Array.copy f)
      end
    end
    else begin
      let u = elem_order.(depth) in
      let qs = quorums_of.(u) in
      (* Optimistic cost of placing u at a node with one-center cost
         [a]: every quorum containing u rises to at least max(pm, a). *)
      let optimistic a =
        List.fold_left
          (fun acc qi ->
            let w = weights.(qi) in
            if w > 0. && a > pm.(qi) then acc +. (w *. (a -. pm.(qi))) else acc)
          !lb qs
      in
      (try
         Array.iter
           (fun v ->
             if elem_weight.(u) > 0. && optimistic (one_center v) >= !best_val
             then raise Exit (* A-monotone: every later node is no better *)
             else if node_load.(v) +. loads.(u) <= p.Problem.capacities.(v) +. 1e-9
             then begin
               node_load.(v) <- node_load.(v) +. loads.(u);
               f.(u) <- v;
               (* Update diametral pairs; keep undo records. *)
               let undo =
                 List.filter_map
                   (fun qi ->
                     let a = pa.(qi) and b = pb.(qi) and m = pm.(qi) in
                     let a', b' =
                       if a < 0 then (v, v)
                       else begin
                         let dav = Metric.unsafe_dist metric a v
                         and dbv = Metric.unsafe_dist metric b v
                         and dab = Metric.unsafe_dist metric a b in
                         if dav >= dbv && dav >= dab then (a, v)
                         else if dbv >= dav && dbv >= dab then (b, v)
                         else (a, b)
                       end
                     in
                     if a' = a && b' = b then None
                     else begin
                       let m' = two_center a' b' in
                       pa.(qi) <- a';
                       pb.(qi) <- b';
                       pm.(qi) <- m';
                       lb := !lb +. (weights.(qi) *. (m' -. m));
                       Some (qi, a, b, m)
                     end)
                   qs
               in
               if !lb < !best_val -. 1e-15 then go (depth + 1);
               List.iter
                 (fun (qi, a, b, m) ->
                   lb := !lb -. (weights.(qi) *. (pm.(qi) -. m));
                   pa.(qi) <- a;
                   pb.(qi) <- b;
                   pm.(qi) <- m)
                 undo;
               f.(u) <- -1;
               node_load.(v) <- node_load.(v) -. loads.(u)
             end)
           node_order
       with Exit -> ())
    end
  in
  go 0;
  match !best_f with
  | None -> None
  | Some placement ->
      Some
        {
          placement;
          objective = Delay.avg_max_delay p placement;
          search_nodes = !search_nodes;
          m_pairs = Hashtbl.length m_memo;
        }
