type t = {
  solver : string;
  placement : Placement.t;
  objective : float;
  avg_max_delay : float;
  avg_total_delay : float;
  lower_bound : float option;
  load_violation : float;
  load_bound : float option;
  approx_bound : float option;
  nodes_used : int;
  detail : (string * float) list;
}

let make ~solver ~problem ~placement ~objective ?avg_max_delay ?avg_total_delay
    ?lower_bound ?load_bound ?approx_bound ?(detail = []) () =
  let avg_max_delay =
    match avg_max_delay with
    | Some d -> d
    | None -> Delay.avg_max_delay problem placement
  in
  let avg_total_delay =
    match avg_total_delay with
    | Some d -> d
    | None -> Delay.avg_total_delay problem placement
  in
  {
    solver;
    placement;
    objective;
    avg_max_delay;
    avg_total_delay;
    lower_bound;
    load_violation = Placement.max_violation problem placement;
    load_bound;
    approx_bound;
    nodes_used = List.length (Placement.used_nodes placement);
    detail;
  }

let detail t key = List.assoc_opt key t.detail

let equal_float_opt a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Float.equal x y
  | _ -> false

let equal a b =
  String.equal a.solver b.solver
  && a.placement = b.placement
  && Float.equal a.objective b.objective
  && Float.equal a.avg_max_delay b.avg_max_delay
  && Float.equal a.avg_total_delay b.avg_total_delay
  && equal_float_opt a.lower_bound b.lower_bound
  && Float.equal a.load_violation b.load_violation
  && equal_float_opt a.load_bound b.load_bound
  && equal_float_opt a.approx_bound b.approx_bound
  && a.nodes_used = b.nodes_used
  && List.length a.detail = List.length b.detail
  && List.for_all2
       (fun (ka, va) (kb, vb) -> String.equal ka kb && Float.equal va vb)
       a.detail b.detail

let pp ppf t =
  Format.fprintf ppf
    "outcome(%s: objective=%g avg-max=%g avg-total=%g violation=%g nodes=%d)"
    t.solver t.objective t.avg_max_delay t.avg_total_delay t.load_violation
    t.nodes_used
