module Rng = Qp_util.Rng

type model = Static of float | Dynamic of { mtbf : float; mttr : float }

let validate = function
  | Static p ->
      if p < 0. || p > 1. then
        invalid_arg "Failure.validate: Static probability must lie in [0, 1]"
  | Dynamic { mtbf; mttr } ->
      if mtbf <= 0. || mttr <= 0. then
        invalid_arg "Failure.validate: mtbf and mttr must be positive"

let node_availability = function
  | Static p -> 1. -. p
  | Dynamic { mtbf; mttr } -> mtbf /. (mtbf +. mttr)

let install_churn model ~n ~rng ~up sim =
  match model with
  | Static _ -> ()
  | Dynamic { mtbf; mttr } ->
      let rec crash node sim =
        up.(node) <- false;
        Event.schedule_in sim (Rng.exponential rng (1. /. mttr)) (repair node)
      and repair node sim =
        up.(node) <- true;
        Event.schedule_in sim (Rng.exponential rng (1. /. mtbf)) (crash node)
      in
      for v = 0 to n - 1 do
        Event.schedule_in sim (Rng.exponential rng (1. /. mtbf)) (crash v)
      done

let probe_up model ~rng ~up node =
  match model with
  | Static p -> Rng.uniform rng >= p
  | Dynamic _ -> up.(node)
