module Rng = Qp_util.Rng
module Obs = Qp_obs
module Metric = Qp_graph.Metric
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Problem = Qp_place.Problem
module Placement = Qp_place.Placement
module Delay = Qp_place.Delay
module Repair = Qp_place.Repair
module Resolve = Qp_place.Resolve
module Migrate = Qp_place.Migrate
module Qpp_solver = Qp_place.Qpp_solver

type repair_trigger = {
  capacity_frac : float;
  delay_factor : float;
  check_interval : float;
  min_interval : float;
}

let default_trigger =
  { capacity_frac = 0.15; delay_factor = 2.0; check_interval = 5.0; min_interval = 20.0 }

type repair_event = {
  time : float;
  dead : int list;
  moved : int;
  delay_before : float;
  delay_after : float;
}

type migration_policy = {
  bound : float;
  budget : int option;
  max_retries : int;
  retry_backoff : float;
  move_interval : float;
  candidates : int list option;
}

let default_migration =
  {
    bound = 3.;
    budget = None;
    max_retries = 3;
    retry_backoff = 2.0;
    move_interval = 1.0;
    candidates = None;
  }

type migration_event = {
  m_time : float;
  m_dead : int list;
  planned_moves : int;
  applied_moves : int;
  retried_moves : int;
  degraded : bool;
  m_delay_before : float;
  m_delay_after : float;
  warm : bool;
}

(* SLO-based repair trigger: every access feeds a sliding-window
   tracker (on simulated time), and the check loop trips when both the
   fast and the slow window burn their error budget faster than
   [burn_threshold] — the multiwindow rule, so one timed-out access
   cannot start a migration but a sustained availability dip can, even
   before the capacity or delay-EWMA heuristics notice. *)
type slo_trigger = {
  objective : Obs.Slo.objective;
  fast_window : float;
  slow_window : float;
  burn_threshold : float;
}

let default_slo_trigger =
  {
    objective = { Obs.Slo.name = "access"; target = 0.9; latency_s = None };
    fast_window = 30.;
    slow_window = 120.;
    burn_threshold = 1.0;
  }

type config = {
  problem : Problem.qpp;
  placement : Placement.t;
  failure : Failure.model;
  retry : Retry.t;
  detector : Detector.config;
  adaptive : bool;
  repair : repair_trigger option;
  migration : migration_policy option;
  slo : slo_trigger option;
  probe_interval : float;
  accesses_per_client : int;
  arrival_rate : float;
  seed : int;
}

let default_config ?(adaptive = true) ?repair ?migration ?slo ~problem
    ~placement ~failure () =
  {
    problem;
    placement;
    failure;
    retry = Retry.fixed ~timeout:(4. *. Metric.diameter problem.Problem.metric) ~max_attempts:3;
    detector = Detector.default_config;
    adaptive;
    repair;
    migration;
    slo;
    probe_interval = 1.0;
    accesses_per_client = 200;
    arrival_rate = 1.0;
    seed = 1;
  }

type report = {
  n_accesses : int;
  n_success : int;
  availability : float;
  mean_delay_success : float;
  mean_attempts : float;
  attempt_histogram : int array;
  hedges_launched : int;
  hedges_won : int;
  repairs : repair_event list;
  migrations : migration_event list;
  final_placement : Placement.t;
  final_suspected : int list;
  analytic_delay : float;
}

let validate cfg =
  Placement.validate cfg.problem cfg.placement;
  Failure.validate cfg.failure;
  Retry.validate cfg.retry;
  if cfg.probe_interval <= 0. then
    invalid_arg "Engine: probe_interval must be positive";
  if cfg.accesses_per_client < 1 then
    invalid_arg "Engine: accesses_per_client >= 1 required";
  if cfg.arrival_rate <= 0. then invalid_arg "Engine: arrival_rate must be positive";
  (match cfg.repair with
  | None -> ()
  | Some t ->
      if t.capacity_frac <= 0. || t.capacity_frac > 1. then
        invalid_arg "Engine: repair capacity_frac must lie in (0, 1]";
      if t.delay_factor <= 1. then
        invalid_arg "Engine: repair delay_factor must exceed 1";
      if t.check_interval <= 0. || t.min_interval < 0. then
        invalid_arg "Engine: repair intervals must be positive");
  (match cfg.slo with
  | None -> ()
  | Some s ->
      if cfg.repair = None then
        invalid_arg "Engine: an SLO trigger requires a repair trigger";
      if s.objective.Obs.Slo.target <= 0. || s.objective.Obs.Slo.target >= 1.
      then invalid_arg "Engine: SLO target must lie in (0, 1)";
      if s.fast_window <= 0. || s.slow_window < s.fast_window then
        invalid_arg "Engine: SLO windows must satisfy 0 < fast <= slow";
      if s.burn_threshold <= 0. then
        invalid_arg "Engine: SLO burn_threshold must be positive");
  match cfg.migration with
  | None -> ()
  | Some m ->
      if cfg.repair = None then
        invalid_arg "Engine: migration requires a repair trigger";
      if m.bound <= 0. then invalid_arg "Engine: migration bound must be positive";
      if m.max_retries < 0 then
        invalid_arg "Engine: migration max_retries must be non-negative";
      if m.retry_backoff < 0. then
        invalid_arg "Engine: migration retry_backoff must be non-negative";
      if m.move_interval <= 0. then
        invalid_arg "Engine: migration move_interval must be positive"

(* Mutable simulation state threaded through the event closures. *)
type state = {
  up : bool array; (* ground truth, flipped by the churn process *)
  placement : Placement.t ref; (* swapped by repairs *)
  mutable successes : int;
  mutable delays_sum : float;
  mutable attempts_total : int;
  mutable resolved : int;
  mutable expected : int;
  histogram : int array;
  mutable hedges_launched : int;
  mutable hedges_won : int;
  mutable repairs : repair_event list;
  mutable migrations : migration_event list;
  mutable migrating : bool; (* a staged move plan is in flight *)
  mutable delay_ewma : float; (* running success-delay estimate *)
  mutable last_repair_time : float;
  mutable last_dead : int list;
}

(* Engine-level counters, shared across runs in the default registry;
   handles are fetched once per run so the per-event cost is an
   enabled-flag branch plus a float add. *)
type obs_handles = {
  m_accesses : Obs.Metrics.counter;
  m_attempts : Obs.Metrics.counter;
  m_successes : Obs.Metrics.counter;
  m_hedges_launched : Obs.Metrics.counter;
  m_hedges_won : Obs.Metrics.counter;
  m_repairs : Obs.Metrics.counter;
  m_migrations : Obs.Metrics.counter;
  m_moves : Obs.Metrics.counter;
  m_degraded : Obs.Metrics.counter;
  m_delay : Obs.Metrics.histogram;
}

let obs_handles () =
  let c name help = Obs.Metrics.counter ~help (Obs.Metrics.current ()) name in
  {
    m_accesses = c "qp_engine_accesses_total" "Accesses issued by the engine";
    m_attempts = c "qp_engine_attempts_total" "Quorum attempts (incl. retries)";
    m_successes = c "qp_engine_successes_total" "Accesses that completed a quorum";
    m_hedges_launched = c "qp_engine_hedges_launched_total" "Hedged second waves launched";
    m_hedges_won = c "qp_engine_hedges_won_total" "Attempts resolved by the hedged wave";
    m_repairs = c "qp_engine_repairs_total" "Placement repairs triggered";
    m_migrations = c "qp_engine_migrations_total" "Staged migrations started";
    m_moves = c "qp_engine_moves_total" "Migration moves applied";
    m_degraded =
      c "qp_engine_migrations_degraded_total"
        "Migrations that fell back to strategy reweighting only";
    m_delay =
      Obs.Metrics.histogram ~help:"Per-access completion delay (successes)"
        (Obs.Metrics.current ()) "qp_engine_access_delay";
  }

let run cfg =
  validate cfg;
  let n = Problem.n_nodes cfg.problem in
  let obs = obs_handles () in
  Obs.Span.with_ "engine_run"
    ~attrs:
      [ ("n", Obs.Json.Int n); ("seed", Obs.Json.Int cfg.seed);
        ("adaptive", Obs.Json.Bool cfg.adaptive);
        ("repair", Obs.Json.Bool (cfg.repair <> None)) ]
  @@ fun () ->
  let metric = cfg.problem.Problem.metric in
  let system = cfg.problem.Problem.system in
  let static = cfg.problem.Problem.strategy in
  let analytic = Delay.avg_max_delay cfg.problem cfg.placement in
  let rng = Rng.create cfg.seed in
  (* Dedicated churn and arrival streams, derived from the seed
     exactly as in Fault_sim.run_dynamic: at equal seeds the static
     baseline and the engine face the bit-identical failure trajectory
     AND access times, so comparisons are paired rather than drowned
     in trajectory variance. *)
  let churn_rng = Rng.split rng in
  let arrival_rng = Rng.split rng in
  let sim = Event.create () in
  let detector = Detector.create ~config:cfg.detector n in
  let st =
    {
      up = Array.make n true;
      placement = ref (Array.copy cfg.placement);
      successes = 0;
      delays_sum = 0.;
      attempts_total = 0;
      resolved = 0;
      expected = 0;
      histogram = Array.make cfg.retry.Retry.max_attempts 0;
      hedges_launched = 0;
      hedges_won = 0;
      repairs = [];
      migrations = [];
      migrating = false;
      delay_ewma = analytic;
      last_repair_time = neg_infinity;
      last_dead = [];
    }
  in
  Failure.install_churn cfg.failure ~n ~rng:churn_rng ~up:st.up sim;
  (* The SLO tracker runs on simulated time: every record and query
     passes the event clock explicitly, so a fake or wall clock in
     [Obs.Core] never leaks into the windows. *)
  let slo_state =
    match cfg.slo with
    | None -> None
    | Some s ->
        Some
          (Obs.Slo.create
             ~cfg:
               {
                 Obs.Slo.objective = s.objective;
                 windows_s = [ s.fast_window; s.slow_window ];
                 bucket_s = s.fast_window /. 6.;
               }
             ())
  in
  let slo_record ~now ~ok ~latency_s =
    match slo_state with
    | Some t -> Obs.Slo.record ~now t ~ok ~latency_s
    | None -> ()
  in
  let adaptive = Adaptive.make system !(st.placement) ~static in
  let current_strategy () =
    if cfg.adaptive then Adaptive.refresh adaptive detector else static
  in
  (* Heartbeat monitors: each node is probed every probe_interval,
     phase-shifted at random so probes do not arrive in lockstep. The
     outcomes are the detector's baseline signal; access probes
     piggy-back additional observations below. *)
  let rec heartbeat node sim =
    Detector.observe detector node ~ok:(Failure.probe_up cfg.failure ~rng ~up:st.up node);
    Event.schedule_in sim cfg.probe_interval (heartbeat node)
  in
  for v = 0 to n - 1 do
    Event.schedule_in sim (Rng.float rng cfg.probe_interval) (heartbeat v)
  done;
  (* Closed-loop repair: periodically compare the suspected capacity
     and the observed delay EWMA against the thresholds, and patch the
     placement off the suspected nodes when either trips. With a
     migration policy, the patch is a warm re-solve followed by a
     bounded-safe staged move plan instead of the greedy repair. *)
  (* The instance restricted to survivors: dead nodes lose their
     capacity (the LP's oversize pinning empties them) and their
     client weight, so the re-solve optimizes the delay the surviving
     clients actually see. *)
  let survivors_problem dead =
    let caps = Array.copy cfg.problem.Problem.capacities in
    List.iter (fun v -> caps.(v) <- 0.) dead;
    let rates =
      match cfg.problem.Problem.client_rates with
      | Some r -> Array.copy r
      | None -> Array.make n 1.
    in
    List.iter (fun v -> rates.(v) <- 0.) dead;
    Problem.make_qpp ~metric ~capacities:caps ~system
      ~strategy:cfg.problem.Problem.strategy ~client_rates:rates ()
  in
  let resolve_state =
    match cfg.migration with
    | None -> None
    | Some m -> Some (Resolve.create ?candidates:m.candidates ())
  in
  let greedy_repair sim dead =
    let now = Event.now sim in
    match Repair.repair cfg.problem !(st.placement) ~dead with
    | None -> () (* survivors cannot absorb the displaced load *)
    | Some r ->
        st.placement := r.Repair.placement;
        Adaptive.set_placement adaptive detector r.Repair.placement;
        st.last_repair_time <- now;
        Obs.Metrics.inc obs.m_repairs;
        Obs.Span.event "repair"
          ~attrs:
            [ ("time", Obs.Json.Float now);
              ("dead", Obs.Json.List (List.map (fun v -> Obs.Json.Int v) dead));
              ("moved", Obs.Json.Int (List.length r.Repair.moved));
              ("delay_before", Obs.Json.Float r.Repair.delay_before);
              ("delay_after", Obs.Json.Float r.Repair.delay_after) ];
        st.repairs <-
          {
            time = now;
            dead;
            moved = List.length r.Repair.moved;
            delay_before = r.Repair.delay_before;
            delay_after = r.Repair.delay_after;
          }
          :: st.repairs
  in
  let migrate sim (m : migration_policy) resolve dead =
    let now = Event.now sim in
    st.last_repair_time <- now;
    let p' = survivors_problem dead in
    let warm = Resolve.warm_sources resolve > 0 in
    let delay_before = Delay.avg_max_delay p' !(st.placement) in
    (* One wide event per migration episode. Phases (resolve/plan) are
       wall-clock compute cost; sim_* attributes carry the simulated
       timeline. *)
    let ev = Obs.Wide.start ~kind:"migration" () in
    Obs.Wide.set ev "sim_time" (Obs.Json.Float now);
    Obs.Wide.set ev "dead"
      (Obs.Json.List (List.map (fun v -> Obs.Json.Int v) dead));
    Obs.Wide.set ev "warm" (Obs.Json.Bool warm);
    Obs.Wide.set ev "delay_before" (Obs.Json.Float delay_before);
    let record ~planned ~applied ~retried ~degraded sim =
      let delay_after = Delay.avg_max_delay p' !(st.placement) in
      if degraded then Obs.Metrics.inc obs.m_degraded;
      Obs.Span.event "migration"
        ~attrs:
          [ ("time", Obs.Json.Float (Event.now sim));
            ("dead", Obs.Json.List (List.map (fun v -> Obs.Json.Int v) dead));
            ("planned", Obs.Json.Int planned);
            ("applied", Obs.Json.Int applied);
            ("degraded", Obs.Json.Bool degraded);
            ("warm", Obs.Json.Bool warm) ];
      Obs.Wide.set ev "sim_end" (Obs.Json.Float (Event.now sim));
      Obs.Wide.set_int ev "planned" planned;
      Obs.Wide.set_int ev "applied" applied;
      Obs.Wide.set_int ev "retried" retried;
      Obs.Wide.set ev "delay_after" (Obs.Json.Float delay_after);
      Obs.Wide.finish ~outcome:(if degraded then "degraded" else "applied") ev;
      st.migrations <-
        {
          m_time = Event.now sim;
          m_dead = dead;
          planned_moves = planned;
          applied_moves = applied;
          retried_moves = retried;
          degraded;
          m_delay_before = delay_before;
          m_delay_after = delay_after;
          warm;
        }
        :: st.migrations;
      st.migrating <- false
    in
    Obs.Metrics.inc obs.m_migrations;
    st.migrating <- true;
    (* Degradation ladder: warm re-solve infeasible, or no safe move
       order -> one-shot greedy repair (still yanks replicas off the
       dead nodes); if even that fails, the adaptive strategy keeps
       reweighting around the suspects. *)
    match Obs.Wide.timed ev "resolve" (fun () -> Resolve.solve resolve p') with
    | None ->
        greedy_repair sim dead;
        record ~planned:0 ~applied:0 ~retried:0 ~degraded:true sim
    | Some r -> (
        let target = r.Qpp_solver.placement in
        match
          Obs.Wide.timed ev "plan" (fun () ->
              Migrate.plan ~bound:m.bound ?budget:m.budget p'
                ~current:!(st.placement) ~target)
        with
        | Error _ ->
            greedy_repair sim dead;
            record ~planned:0 ~applied:0 ~retried:0 ~degraded:true sim
        | Ok plan ->
            let moves = Array.of_list plan.Migrate.moves in
            let planned = Array.length moves in
            let applied = ref 0 in
            let retried = ref 0 in
            (* Staged application: one move per interval. A move whose
               destination is down when it fires retries with backoff;
               an exhausted move aborts the rest of the plan (the next
               trigger re-plans from wherever we stopped). *)
            let rec step idx retries_left sim =
              if idx >= planned then
                record ~planned ~applied:!applied ~retried:!retried
                  ~degraded:false sim
              else begin
                let mv = moves.(idx) in
                if st.up.(mv.Migrate.dst) then begin
                  st.placement := Migrate.apply_move !(st.placement) mv;
                  Adaptive.set_placement adaptive detector !(st.placement);
                  incr applied;
                  Obs.Metrics.inc obs.m_moves;
                  Event.schedule_in sim m.move_interval
                    (step (idx + 1) m.max_retries)
                end
                else if retries_left > 0 then begin
                  incr retried;
                  Event.schedule_in sim m.retry_backoff
                    (step idx (retries_left - 1))
                end
                else begin
                  (* Move retries exhausted mid-plan: patch whatever is
                     still stranded on the dead nodes greedily rather
                     than leaving it there until the next trigger. *)
                  greedy_repair sim dead;
                  record ~planned ~applied:!applied ~retried:!retried
                    ~degraded:true sim
                end
              end
            in
            step 0 m.max_retries sim)
  in
  (match cfg.repair with
  | None -> ()
  | Some trig ->
      let total_cap = Array.fold_left ( +. ) 0. cfg.problem.Problem.capacities in
      let rec check sim =
        let now = Event.now sim in
        let dead = Detector.suspected_nodes detector in
        let dead_cap =
          List.fold_left (fun a v -> a +. cfg.problem.Problem.capacities.(v)) 0. dead
        in
        let capacity_trip = total_cap > 0. && dead_cap /. total_cap >= trig.capacity_frac in
        let delay_trip = analytic > 0. && st.delay_ewma >= trig.delay_factor *. analytic in
        let slo_trip =
          match (cfg.slo, slo_state) with
          | Some s, Some tracker ->
              Obs.Slo.burning ~now tracker ~threshold:s.burn_threshold
          | _ -> false
        in
        let hosted_on_dead =
          Array.exists (fun v -> List.mem v dead) !(st.placement)
        in
        if
          dead <> [] && hosted_on_dead
          && (not st.migrating)
          && List.length dead < n
          && (capacity_trip || delay_trip || slo_trip)
          && now -. st.last_repair_time >= trig.min_interval
          && dead <> st.last_dead
        then begin
          (match (cfg.migration, resolve_state) with
          | Some m, Some resolve -> migrate sim m resolve dead
          | _ -> greedy_repair sim dead);
          st.last_dead <- dead
        end;
        Event.schedule_in sim trig.check_interval check
      in
      Event.schedule_in sim trig.check_interval check);
  let finish sim =
    st.resolved <- st.resolved + 1;
    (* Heartbeats and churn regenerate forever; stop once every access
       has been resolved. *)
    if st.resolved = st.expected then Event.stop sim
  in
  let succeed k start0 finished sim =
    st.successes <- st.successes + 1;
    let d = finished -. start0 in
    st.delays_sum <- st.delays_sum +. d;
    st.delay_ewma <- st.delay_ewma +. (0.1 *. (d -. st.delay_ewma));
    st.histogram.(k - 1) <- st.histogram.(k - 1) + 1;
    Obs.Metrics.inc obs.m_successes;
    Obs.Metrics.observe obs.m_delay d;
    slo_record ~now:finished ~ok:true ~latency_s:d;
    finish sim
  in
  (* One probe wave = one sampled quorum probed in parallel. An attempt
     launches one wave, plus optionally a hedged second wave if it has
     not resolved after the hedge delay. Down nodes are silent, so a
     failed attempt is only discovered at the attempt timeout. *)
  let rec attempt client k start0 t0 sim =
    let resolved_flag = ref false in
    let timeout = cfg.retry.Retry.timeout in
    let launch_wave ~hedged sim =
      if not !resolved_flag then begin
        if hedged then begin
          st.hedges_launched <- st.hedges_launched + 1;
          Obs.Metrics.inc obs.m_hedges_launched
        end;
        let qi = Strategy.sample rng (current_strategy ()) in
        let q = Quorum.quorum system qi in
        let hosts =
          List.sort_uniq compare
            (Array.to_list (Array.map (fun u -> !(st.placement).(u)) q))
        in
        let pending = ref (List.length hosts) in
        let ok = ref true in
        let latest = ref (Event.now sim) in
        List.iter
          (fun node ->
            let arrive = Event.now sim +. Metric.dist metric client node in
            if arrive > !latest then latest := arrive;
            Event.schedule sim arrive (fun sim ->
                let alive = Failure.probe_up cfg.failure ~rng ~up:st.up node in
                Detector.observe detector node ~ok:alive;
                if not alive then ok := false;
                decr pending;
                if !pending = 0 && !ok && not !resolved_flag then begin
                  let finished = !latest in
                  if finished -. t0 <= timeout +. 1e-12 then begin
                    resolved_flag := true;
                    if hedged then begin
                      st.hedges_won <- st.hedges_won + 1;
                      Obs.Metrics.inc obs.m_hedges_won
                    end;
                    succeed k start0 finished sim
                  end
                end))
          hosts
      end
    in
    st.attempts_total <- st.attempts_total + 1;
    Obs.Metrics.inc obs.m_attempts;
    launch_wave ~hedged:false sim;
    (match cfg.retry.Retry.hedge with
    | Some { Retry.after } -> Event.schedule sim (t0 +. after) (launch_wave ~hedged:true)
    | None -> ());
    Event.schedule sim (t0 +. timeout) (fun sim ->
        if not !resolved_flag then begin
          resolved_flag := true;
          if k < cfg.retry.Retry.max_attempts then begin
            let pause = Retry.backoff_delay cfg.retry rng ~attempt:k in
            Event.schedule_in sim pause (fun sim ->
                attempt client (k + 1) start0 (Event.now sim) sim)
          end
          else begin
            let now = Event.now sim in
            slo_record ~now ~ok:false ~latency_s:(now -. start0);
            finish sim
          end
        end)
  in
  let rates =
    match cfg.problem.Problem.client_rates with
    | Some r -> r
    | None -> Array.make n 1.
  in
  let accesses = ref 0 in
  for client = 0 to n - 1 do
    if rates.(client) > 0. then begin
      st.expected <- st.expected + cfg.accesses_per_client;
      let remaining = ref cfg.accesses_per_client in
      let rec arrival sim =
        incr accesses;
        Obs.Metrics.inc obs.m_accesses;
        attempt client 1 (Event.now sim) (Event.now sim) sim;
        decr remaining;
        if !remaining > 0 then
          Event.schedule_in sim (Rng.exponential arrival_rng cfg.arrival_rate) arrival
      in
      Event.schedule sim (Rng.exponential arrival_rng cfg.arrival_rate) arrival
    end
  done;
  Event.run sim;
  Obs.Span.add_attr "accesses" (Obs.Json.Int !accesses);
  Obs.Span.add_attr "successes" (Obs.Json.Int st.successes);
  Obs.Span.add_attr "repairs" (Obs.Json.Int (List.length st.repairs));
  {
    n_accesses = !accesses;
    n_success = st.successes;
    availability =
      (if !accesses = 0 then 1. else float_of_int st.successes /. float_of_int !accesses);
    mean_delay_success =
      (if st.successes = 0 then 0. else st.delays_sum /. float_of_int st.successes);
    mean_attempts =
      (if !accesses = 0 then 0.
       else float_of_int st.attempts_total /. float_of_int !accesses);
    attempt_histogram = st.histogram;
    hedges_launched = st.hedges_launched;
    hedges_won = st.hedges_won;
    repairs = List.rev st.repairs;
    migrations = List.rev st.migrations;
    final_placement = Array.copy !(st.placement);
    final_suspected = Detector.suspected_nodes detector;
    analytic_delay = analytic;
  }
