module Heap = Qp_graph.Heap

type t = {
  queue : (t -> unit) Heap.t;
  mutable clock : float;
  mutable processed : int;
  mutable stopped : bool;
}

let create () = { queue = Heap.create (); clock = 0.; processed = 0; stopped = false }

let stop t = t.stopped <- true

let now t = t.clock

let schedule t time handler =
  if time < t.clock -. 1e-12 then invalid_arg "Event.schedule: time in the past";
  Heap.push t.queue time handler

let schedule_in t dt handler = schedule t (t.clock +. dt) handler

let run ?(until = infinity) t =
  t.stopped <- false;
  let continue_ = ref true in
  while !continue_ && not t.stopped do
    match Heap.peek_min t.queue with
    | None -> continue_ := false
    | Some (time, _) when time > until -> continue_ := false
    | Some _ ->
        (match Heap.pop_min t.queue with
        | Some (time, handler) ->
            t.clock <- time;
            t.processed <- t.processed + 1;
            handler t
        | None -> assert false)
  done

let events_processed t = t.processed
