(** The shared failure model of the sim layer.

    Every simulator (offline fault injection, the closed-loop
    resilience engine) draws node failures from the same two-mode
    process so results are comparable across the stack:

    - [Static p]: every probe independently finds its node failed with
      probability [p] (memoryless; matches the iid availability
      analysis exactly).
    - [Dynamic {mtbf; mttr}]: nodes alternate exponential up/down
      periods (mean time between failures / to repair). Temporally
      correlated — retries hitting the same down replica keep failing
      — which is the regime where failure detection pays off. *)

type model = Static of float | Dynamic of { mtbf : float; mttr : float }

val validate : model -> unit
(** @raise Invalid_argument on [Static] outside [0, 1] or
    non-positive [mtbf]/[mttr]. *)

val node_availability : model -> float
(** Per-node steady-state probability of being up: [1 - p] for
    [Static p], [mtbf / (mtbf + mttr)] for [Dynamic]. *)

val install_churn :
  model -> n:int -> rng:Qp_util.Rng.t -> up:bool array -> Event.t -> unit
(** Under [Dynamic], schedules the regenerating crash/repair process
    for [n] nodes, flipping [up.(v)] as nodes die and recover. A no-op
    under [Static] (liveness is then decided per probe by
    {!probe_up}).

    Pass a {e dedicated} [rng] stream (e.g. [Rng.split] of the seeded
    workload stream): the crash/repair chains then depend only on that
    stream, so two simulators seeded alike face the bit-identical
    failure trajectory regardless of how their workloads consume
    randomness — comparisons become paired. *)

val probe_up : model -> rng:Qp_util.Rng.t -> up:bool array -> int -> bool
(** Outcome of one probe of [node]: an iid draw under [Static], the
    current [up] state under [Dynamic]. *)
