(** Adaptive access strategy: online reweighting of p(Q).

    The paper optimizes a static strategy/placement pair for the
    failure-free network. Under churn, quorums whose hosts are down
    burn a whole timeout per touch. This module steers the access
    distribution away from them: each quorum's probability is scaled
    by its {e health}, the product over its distinct host nodes of
    [1 - suspicion(v)] (an estimate of the probability all hosts are
    up, using the detector's per-node suspicion as failure
    probability), then renormalized.

    Two boundary behaviours make the loop safe:
    - when the detector is {!Detector.healthy}, the static strategy is
      returned {e unchanged} (physically equal), so the paper's delay
      analysis holds exactly in the failure-free case;
    - when every supported quorum is fully suspected, reweighting has
      no signal and the static strategy is used as fallback. *)

val quorum_health :
  Qp_quorum.Quorum.system -> Qp_place.Placement.t -> Detector.t -> int -> float
(** Product of [1 - suspicion] over the distinct nodes hosting the
    quorum's elements (co-located elements share fate, matching the
    iid analysis in the fault simulator). *)

val strategy :
  Qp_quorum.Quorum.system ->
  Qp_place.Placement.t ->
  Detector.t ->
  static:Qp_quorum.Strategy.t ->
  Qp_quorum.Strategy.t
(** The reweighted strategy for the current detector state. *)

(** {2 Cached view}

    Recomputing the reweighting on every access is O(system size);
    the cache rebuilds only when the detector's {!Detector.version}
    changes (some node crossed the suspect threshold) or the placement
    is swapped by a repair. *)

type cached

val make :
  Qp_quorum.Quorum.system ->
  Qp_place.Placement.t ->
  static:Qp_quorum.Strategy.t ->
  cached

val refresh : cached -> Detector.t -> Qp_quorum.Strategy.t
(** Current strategy, rebuilt if stale. *)

val set_placement : cached -> Detector.t -> Qp_place.Placement.t -> unit
(** Invalidate after a repair moved elements. *)
