module Obs = Qp_obs

type config = { gain : float; suspect_threshold : float }

let default_config = { gain = 0.35; suspect_threshold = 0.6 }

let validate_config c =
  if c.gain <= 0. || c.gain > 1. then
    invalid_arg "Detector: gain must lie in (0, 1]";
  if c.suspect_threshold <= 0. || c.suspect_threshold > 1. then
    invalid_arg "Detector: suspect_threshold must lie in (0, 1]"

type t = {
  config : config;
  suspicion : float array;
  observations : int array;
  mutable version : int;
}

let create ?(config = default_config) n =
  validate_config config;
  if n <= 0 then invalid_arg "Detector.create: need at least one node";
  { config; suspicion = Array.make n 0.; observations = Array.make n 0; version = 0 }

let n_nodes t = Array.length t.suspicion

let suspicion t v = t.suspicion.(v)

let suspected t v = t.suspicion.(v) >= t.config.suspect_threshold

let transition_counter dir =
  Obs.Metrics.counter ~help:"Detector suspicion-threshold crossings"
    ~labels:[ ("dir", dir) ] (Obs.Metrics.current ()) "qp_detector_transitions_total"

let observe t v ~ok =
  if v < 0 || v >= n_nodes t then invalid_arg "Detector.observe: node out of range";
  let s = t.suspicion.(v) in
  let target = if ok then 0. else 1. in
  let s' = s +. (t.config.gain *. (target -. s)) in
  t.observations.(v) <- t.observations.(v) + 1;
  let was = s >= t.config.suspect_threshold in
  let is = s' >= t.config.suspect_threshold in
  t.suspicion.(v) <- s';
  if was <> is then begin
    t.version <- t.version + 1;
    let dir = if is then "suspect" else "clear" in
    Obs.Metrics.inc (transition_counter dir);
    Obs.Span.event "detector_transition"
      ~attrs:
        [ ("node", Obs.Json.Int v); ("dir", Obs.Json.String dir);
          ("suspicion", Obs.Json.Float s') ]
  end

let suspected_nodes t =
  let acc = ref [] in
  for v = n_nodes t - 1 downto 0 do
    if suspected t v then acc := v :: !acc
  done;
  !acc

let healthy t = Array.for_all (fun s -> s < t.config.suspect_threshold) t.suspicion

let observations t v = t.observations.(v)

let version t = t.version

let reset t v =
  if suspected t v then t.version <- t.version + 1;
  t.suspicion.(v) <- 0.
