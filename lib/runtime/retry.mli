(** Retry policies for quorum accesses.

    One description of client-side failure handling shared by the
    offline fault simulator and the closed-loop resilience engine, so
    "equal retry budget" comparisons are meaningful:

    - a per-attempt [timeout] after which the attempt counts as failed;
    - up to [max_attempts] attempts per access;
    - an optional exponential {!backoff} between attempts, with
      multiplicative {!field:t.jitter} to decorrelate clients
      (thundering-herd avoidance);
    - an optional {e hedge}: if an attempt has not resolved
      [hedge.after] time units in, a second, independently sampled
      quorum is probed and the attempt succeeds if either completes —
      the classic tail-latency mitigation (cf. "The Tail at Scale"),
      bounded to one hedge per attempt.

    {!fixed} reproduces the legacy fault-injection model (retry
    exactly at timeout expiry, no jitter, no hedging) so the paper's
    availability experiments are unchanged under the shared type. *)

type backoff =
  | No_backoff
  | Exponential of { base : float; factor : float; max : float }
      (** Wait [min max (base * factor^(k-1))] after failed attempt
          [k]. *)

type hedge = { after : float }
(** Launch a second quorum probe [after] time units into an
    unresolved attempt; must satisfy [0 < after < timeout]. *)

type t = {
  max_attempts : int;
  timeout : float; (* per-attempt give-up time *)
  backoff : backoff;
  jitter : float; (* in [0, 1): backoff *= 1 + U(-jitter, jitter) *)
  hedge : hedge option;
}

val validate : t -> unit
(** @raise Invalid_argument on any out-of-range field. *)

val fixed : timeout:float -> max_attempts:int -> t
(** The legacy model: constant timeout, immediate retry, no hedging. *)

val exponential :
  ?jitter:float ->
  ?hedge_after:float ->
  timeout:float ->
  base:float ->
  ?factor:float ->
  ?max_backoff:float ->
  max_attempts:int ->
  unit ->
  t
(** Exponential backoff policy; defaults: jitter 0.2, factor 2, no
    backoff cap, no hedging. *)

val base_backoff : t -> attempt:int -> float
(** Deterministic (un-jittered) backoff after failed attempt
    [attempt] (1-based). *)

val backoff_delay : t -> Qp_util.Rng.t -> attempt:int -> float
(** Jittered backoff sample; equals {!base_backoff} when jitter is 0. *)
