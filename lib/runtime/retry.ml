module Rng = Qp_util.Rng

type backoff =
  | No_backoff
  | Exponential of { base : float; factor : float; max : float }

type hedge = { after : float }

type t = {
  max_attempts : int;
  timeout : float;
  backoff : backoff;
  jitter : float;
  hedge : hedge option;
}

let validate t =
  if t.max_attempts < 1 then invalid_arg "Retry: max_attempts >= 1 required";
  if t.timeout <= 0. then invalid_arg "Retry: timeout must be positive";
  if t.jitter < 0. || t.jitter >= 1. then invalid_arg "Retry: jitter must lie in [0, 1)";
  (match t.backoff with
  | No_backoff -> ()
  | Exponential { base; factor; max } ->
      if base < 0. then invalid_arg "Retry: backoff base must be non-negative";
      if factor < 1. then invalid_arg "Retry: backoff factor must be >= 1";
      if max < base then invalid_arg "Retry: backoff max must be >= base");
  match t.hedge with
  | None -> ()
  | Some { after } ->
      if after <= 0. || after >= t.timeout then
        invalid_arg "Retry: hedge delay must lie in (0, timeout)"

let fixed ~timeout ~max_attempts =
  let t = { max_attempts; timeout; backoff = No_backoff; jitter = 0.; hedge = None } in
  validate t;
  t

let exponential ?(jitter = 0.2) ?hedge_after ~timeout ~base ?(factor = 2.)
    ?(max_backoff = infinity) ~max_attempts () =
  let t =
    {
      max_attempts;
      timeout;
      backoff = Exponential { base; factor; max = max_backoff };
      jitter;
      hedge = (match hedge_after with None -> None | Some after -> Some { after });
    }
  in
  validate t;
  t

let base_backoff t ~attempt =
  if attempt < 1 then invalid_arg "Retry.base_backoff: attempt >= 1 required";
  match t.backoff with
  | No_backoff -> 0.
  | Exponential { base; factor; max } ->
      Float.min max (base *. (factor ** float_of_int (attempt - 1)))

let backoff_delay t rng ~attempt =
  let d = base_backoff t ~attempt in
  if d = 0. || t.jitter = 0. then d
  else
    (* Symmetric jitter: d * (1 + U(-jitter, jitter)); stays positive
       because jitter < 1. *)
    d *. (1. +. (t.jitter *. ((2. *. Rng.uniform rng) -. 1.)))
