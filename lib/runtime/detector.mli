(** EWMA-suspicion failure detector.

    Tracks one suspicion level per node in [0, 1], updated from probe
    outcomes (heartbeats and piggy-backed access probes) by an
    exponentially weighted moving average:
    [s <- s + gain * (target - s)] with target 1 on a failed probe and
    0 on a successful one. A node is {e suspected} once its suspicion
    crosses [suspect_threshold]. The detector is deliberately simple —
    the phi-accrual refinement would slot in behind the same
    interface — but already gives the two properties the closed loop
    needs: fast detection (a few failed probes) and self-healing
    (successful probes decay suspicion after the node recovers). *)

type config = {
  gain : float; (* EWMA step in (0, 1]: larger = faster, noisier *)
  suspect_threshold : float; (* suspicion >= threshold => suspected *)
}

val default_config : config
(** gain 0.35, threshold 0.6: roughly three consecutive failed probes
    to suspect a healthy node, two successes to clear it. *)

type t

val create : ?config:config -> int -> t
(** [create n] tracks nodes [0 .. n-1], all initially unsuspected.
    @raise Invalid_argument on non-positive [n] or out-of-range
    config. *)

val n_nodes : t -> int

val observe : t -> int -> ok:bool -> unit
(** Fold one probe outcome for a node into its suspicion level. *)

val suspicion : t -> int -> float
val suspected : t -> int -> bool
val suspected_nodes : t -> int list
(** Ascending list of currently suspected nodes. *)

val healthy : t -> bool
(** No node suspected — the failure-free fast path: adaptive
    strategies must fall back to the static optimum here. *)

val observations : t -> int -> int
(** Probes folded in for a node (diagnostics). *)

val version : t -> int
(** Bumped whenever some node crosses the suspect threshold in either
    direction; lets callers cache derived state (e.g. a reweighted
    strategy) and rebuild only on change. *)

val reset : t -> int -> unit
(** Clear a node's suspicion (e.g. after a repair migrated its data). *)
