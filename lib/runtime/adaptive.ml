module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Placement = Qp_place.Placement

let distinct_hosts system placement qi =
  let q = Quorum.quorum system qi in
  List.sort_uniq compare (Array.to_list (Array.map (fun u -> placement.(u)) q))

let quorum_health system placement detector qi =
  List.fold_left
    (fun acc v -> acc *. (1. -. Detector.suspicion detector v))
    1.
    (distinct_hosts system placement qi)

let strategy system placement detector ~static =
  if Detector.healthy detector then static
  else
    let w qi = quorum_health system placement detector qi in
    match Strategy.reweight static w with
    | Some p -> p
    | None ->
        (* Every supported quorum looks dead; the reweighting has no
           signal, so fall back to the static optimum rather than
           divide by zero. *)
        static

type cached = {
  system : Quorum.system;
  static : Strategy.t;
  mutable placement : Placement.t;
  mutable version : int;
  mutable current : Strategy.t;
}

let make system placement ~static =
  { system; static; placement; version = -1; current = static }

let refresh c detector =
  if c.version <> Detector.version detector then begin
    c.version <- Detector.version detector;
    c.current <- strategy c.system c.placement detector ~static:c.static
  end;
  c.current

let set_placement c detector placement =
  c.placement <- placement;
  c.version <- -1;
  ignore (refresh c detector)
