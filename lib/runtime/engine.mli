(** Closed-loop resilience engine.

    Runs a placed quorum system through a failure process inside the
    discrete-event simulator, with the full feedback loop a production
    deployment would run:

    + heartbeat probes feed the EWMA {!Detector} (access probes
      piggy-back extra observations);
    + accesses sample quorums from the {!Adaptive} strategy, which
      steers probability away from suspected hosts and falls back to
      the paper's static optimum when the network is healthy — so the
      failure-free run reproduces the static delay analysis;
    + failed attempts are retried under a shared {!Retry} policy
      (timeout, exponential backoff + jitter, optional hedged second
      quorum probe);
    + a {!repair_trigger} watches detected-dead capacity and the
      observed delay EWMA, and invokes {!Qp_place.Repair.repair} to
      migrate replicas off suspected nodes when a threshold trips,
      recording delay before/after each repair.

    Down nodes are silent: a failed attempt is discovered only at its
    timeout, never early — matching the fault-injection simulator so
    static-vs-adaptive comparisons at equal retry budget are fair. *)

type repair_trigger = {
  capacity_frac : float;
      (** repair when suspected nodes hold at least this fraction of
          total capacity (in (0, 1]) *)
  delay_factor : float;
      (** ... or when the success-delay EWMA exceeds this multiple of
          the analytic failure-free delay (> 1) *)
  check_interval : float; (** how often the trigger is evaluated *)
  min_interval : float; (** refractory period between repairs *)
}

val default_trigger : repair_trigger
(** capacity 15%, delay 2x, check every 5, at most one repair per 20
    time units. *)

type repair_event = {
  time : float;
  dead : int list; (* suspected nodes the repair routed around *)
  moved : int; (* elements migrated *)
  delay_before : float; (* avg max-delay on survivors, old placement *)
  delay_after : float; (* ... patched placement *)
}

type migration_policy = {
  bound : float;
      (** intermediate load cap, as a multiple of capacity — the
          paper's [(alpha+1)] guarantee extended to every mid-plan
          placement ({!Qp_place.Migrate}) *)
  budget : int option; (** move budget; [None] = planner default *)
  max_retries : int; (** retries per move whose destination is down *)
  retry_backoff : float; (** sim-time pause before retrying a move *)
  move_interval : float; (** sim-time between successive moves *)
  candidates : int list option;
      (** candidate sources for the re-solve; [None] = all nodes *)
}

val default_migration : migration_policy
(** bound 3 (alpha = 2), planner-default budget, 3 retries, backoff 2,
    one move per time unit, all candidate sources. *)

type migration_event = {
  m_time : float; (* when the migration finished or aborted *)
  m_dead : int list;
  planned_moves : int;
  applied_moves : int;
  retried_moves : int; (* retry attempts across all moves *)
  degraded : bool;
      (* true when the loop fell down the ladder: re-solve infeasible
         or no safe move order (a one-shot greedy repair ran instead,
         with strategy reweighting as the last rung), or a move
         exhausted its retries mid-plan *)
  m_delay_before : float;
  m_delay_after : float;
  warm : bool; (* the re-solve had stored bases to warm-start from *)
}

(** SLO-based trigger: every finished access (success or retry
    exhaustion) feeds an {!Qp_obs.Slo} tracker on {e simulated} time,
    and the repair check additionally trips when both windows burn
    their error budget at [burn_threshold] or faster — the standard
    multiwindow rule, catching sustained availability dips even before
    the capacity or delay-EWMA heuristics notice. Requires [repair]
    (it feeds the same check loop). *)
type slo_trigger = {
  objective : Qp_obs.Slo.objective;
  fast_window : float; (** proves the problem is current *)
  slow_window : float; (** proves it is sustained; >= fast *)
  burn_threshold : float;
}

val default_slo_trigger : slo_trigger
(** 90% of accesses complete (no latency bound), windows 30/120,
    threshold 1 (= budget consumed exactly at exhaustion rate). *)

type config = {
  problem : Qp_place.Problem.qpp;
  placement : Qp_place.Placement.t;
  failure : Failure.model;
  retry : Retry.t;
  detector : Detector.config;
  adaptive : bool; (* false = always sample the static strategy *)
  repair : repair_trigger option; (* None = never migrate replicas *)
  migration : migration_policy option;
      (* with a policy, a tripped trigger runs the closed loop
         detector -> warm re-solve -> bounded-safe move plan -> staged
         application instead of the greedy repair; requires [repair] *)
  slo : slo_trigger option; (* extra trip condition for the check loop *)
  probe_interval : float; (* heartbeat period per node *)
  accesses_per_client : int;
  arrival_rate : float;
  seed : int;
}

val default_config :
  ?adaptive:bool ->
  ?repair:repair_trigger ->
  ?migration:migration_policy ->
  ?slo:slo_trigger ->
  problem:Qp_place.Problem.qpp ->
  placement:Qp_place.Placement.t ->
  failure:Failure.model ->
  unit ->
  config
(** Adaptive on, no auto-repair, no SLO trigger, legacy retry policy
    (timeout = 4x diameter, 3 attempts), default detector, heartbeat
    period 1, 200 accesses/client, rate 1, seed 1. *)

type report = {
  n_accesses : int;
  n_success : int;
  availability : float; (* successes / accesses *)
  mean_delay_success : float; (* completion delay incl. failed-attempt time *)
  mean_attempts : float;
  attempt_histogram : int array; (* index k-1: successes finishing in k *)
  hedges_launched : int;
  hedges_won : int; (* attempts resolved by the hedged wave *)
  repairs : repair_event list; (* in trigger order *)
  migrations : migration_event list; (* in completion order *)
  final_placement : Qp_place.Placement.t;
  final_suspected : int list; (* detector state at the end of the run *)
  analytic_delay : float; (* static failure-free reference delay *)
}

val run : config -> report
(** Deterministic in [config] (all randomness flows from [seed]).
    @raise Invalid_argument on out-of-range configuration. *)
