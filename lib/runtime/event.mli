(** Minimal discrete-event simulation engine.

    Events are closures scheduled at absolute times; the engine pops
    them in time order (deterministic but unspecified order among
    equal timestamps) and runs them. Event handlers may schedule
    further events.

    This is the substrate shared by the offline simulators
    ({!Qp_sim.Access_sim}, {!Qp_sim.Fault_sim} — which re-export it as
    [Qp_sim.Sim]) and the closed-loop resilience {!Engine}. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation clock (0 before the first event). *)

val schedule : t -> float -> (t -> unit) -> unit
(** [schedule sim time handler] enqueues an event; [time] must not
    precede the current clock. @raise Invalid_argument otherwise. *)

val schedule_in : t -> float -> (t -> unit) -> unit
(** Relative variant: [schedule_in sim dt h = schedule sim (now + dt) h]. *)

val run : ?until:float -> t -> unit
(** Processes events in time order until the queue empties, the clock
    would pass [until], or {!stop} has been called (remaining events
    stay queued). *)

val stop : t -> unit
(** Makes the current {!run} return after the in-flight event handler.
    Needed by simulations with self-regenerating background processes
    (e.g. crash/repair cycles) that would otherwise never drain the
    queue. *)

val events_processed : t -> int
