(* Minimal JSON tree, serializer and parser — just enough for JSONL
   traces, metric dumps and the bench artifact, with no external
   dependency. Numbers are split into [Int] and [Float]; non-finite
   floats serialize as [null] (JSON has no representation for them, and
   the metrics layer rejects non-finite observations anyway). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    (* Shortest representation that still round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent)                                         *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    cur.pos < String.length cur.s
    && match cur.s.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance cur
  done

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_hex4 cur =
  if cur.pos + 4 > String.length cur.s then fail cur "truncated \\u escape";
  let v = int_of_string ("0x" ^ String.sub cur.s cur.pos 4) in
  cur.pos <- cur.pos + 4;
  v

(* Encode a Unicode scalar value as UTF-8. *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' -> advance cur; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance cur; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance cur; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance cur; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance cur; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance cur; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance cur; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance cur; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance cur;
            let hi = parse_hex4 cur in
            let code =
              (* Surrogate pair. *)
              if hi >= 0xD800 && hi <= 0xDBFF then begin
                expect cur '\\';
                expect cur 'u';
                let lo = parse_hex4 cur in
                if lo < 0xDC00 || lo > 0xDFFF then fail cur "invalid low surrogate";
                0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
              end
              else hi
            in
            add_utf8 buf code;
            go ()
        | _ -> fail cur "bad escape")
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while cur.pos < String.length cur.s && is_num_char cur.s.[cur.pos] do
    advance cur
  done;
  let text = String.sub cur.s start (cur.pos - start) in
  if text = "" then fail cur "expected number";
  let is_float =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
  in
  if is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> String (parse_string_body cur)
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin
        advance cur;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; items (v :: acc)
          | Some ']' -> advance cur; List.rev (v :: acc)
          | _ -> fail cur "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin
        advance cur;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; fields (kv :: acc)
          | Some '}' -> advance cur; List.rev (kv :: acc)
          | _ -> fail cur "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some _ -> parse_number cur

let of_string s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_str = function String s -> Some s | _ -> None
