(** Wide events — one canonical JSONL record per unit of work.

    A wide event aggregates everything known about one unit (a served
    request, a migration episode, a bench experiment) into a single
    record: trace id, phase durations, outcome, counters. Records are
    written through an installed {!Trace.sink} as one JSON object per
    line with ["type":"wide"], preceded by a ["qp-wide/1"] meta header
    when {!header} is called.

    Emission is thread- and domain-safe: a single mutex serializes
    sampling, the ring buffer and sink writes, so records are always
    whole-line atomic. When no sink is installed every entry point is
    a one-branch no-op. *)

type t
(** An in-flight event builder. Builders for unsampled units (or when
    no sink is installed) are inert: mutations cost one branch. *)

val install : ?sample_every:int -> ?ring_capacity:int -> Trace.sink -> unit
(** Make [sink] the wide-event destination, closing any previous one.
    [sample_every] enables head-based sampling: of every [n] units
    started, the first is emitted and the rest dropped (default [1] =
    keep everything). [ring_capacity] bounds the in-memory buffer of
    recent records (default 256). *)

val uninstall : unit -> unit
(** Close the current sink and disable wide events. Idempotent. *)

val active : unit -> bool

val header : (string * Json.t) list -> unit
(** Emit the run-metadata record
    [{"type":"meta","schema":"qp-wide/1","version":...,...fields}].
    No-op when inactive. *)

val start :
  kind:string -> ?trace_id:string -> ?parent_span:string -> unit -> t
(** Begin a unit of work of the given [kind]. The sampling decision is
    made here (head-based); an unsampled unit returns an inert
    builder. [trace_id]/[parent_span] propagate wire context. *)

val sampled : t -> bool
(** Whether this builder will emit a record on {!finish}. *)

val set : t -> string -> Json.t -> unit
(** Attach an attribute (last write appears in record order). *)

val set_str : t -> string -> string -> unit
val set_int : t -> string -> int -> unit

val phase : t -> string -> float -> unit
(** Record a named phase duration in seconds. *)

val timed : t -> string -> (unit -> 'a) -> 'a
(** [timed t name f] runs [f] and records its wall duration as phase
    [name] (on {!Core.now}, honouring an installed fake clock). Inert
    builders run [f] without reading the clock. *)

val finish : ?outcome:string -> t -> unit
(** Close the unit and emit its record (outcome defaults to ["ok"]).
    Idempotent; inert builders emit nothing. *)

val ring : unit -> Json.t list
(** The most recent emitted records, oldest first (bounded by
    [ring_capacity]). *)

val emitted : unit -> int
(** Total records emitted since {!install}. *)

val flush : unit -> unit

val fresh_trace_id : unit -> string
(** A process-unique trace id for units that did not inherit one from
    the wire. *)
