(** Global switchboard for the telemetry layer: the tracing flag
    (owned by {!Trace}) and the pluggable clock. *)

val tracing : bool ref
(** True while a trace sink is installed. Flipped by
    {!Trace.install}/{!Trace.uninstall}; instrumented code only ever
    reads it. *)

val now : unit -> float
(** Current time from the configured clock (seconds). *)

val set_clock : (unit -> float) -> unit
(** Install a clock — tests use a fake counter for deterministic span
    timings. The default is [Unix.gettimeofday] (best available
    without external monotonic-clock packages). *)

val default_clock : unit -> unit
(** Restore [Unix.gettimeofday]. *)

val clock : (unit -> float) ref

val max_rss_kb : unit -> int option
(** Peak resident set size (high-water mark) of this process in kB,
    read from [/proc/self/status] ([VmHWM]). [None] when the proc
    interface is unavailable (non-Linux) or unparsable — best-effort
    telemetry, never an error. *)
