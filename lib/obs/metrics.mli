(** Metrics registry: counters, gauges, and fixed-bucket mergeable
    histograms, with Prometheus-text and JSON exporters.

    Mutations are gated on the owning registry's enabled flag, so
    instrumented hot paths pay one load + branch when telemetry is
    off. Series identity is (name, sorted labels); registering an
    existing series again returns the same handle, and re-registering
    under a different kind (or different histogram buckets) raises
    [Invalid_argument]. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : ?enabled:bool -> unit -> t
(** Fresh registry, enabled by default. *)

val default : t
(** Shared process-wide registry used by library instrumentation.
    Starts {e disabled}; [qplace --metrics] enables it. *)

val current : unit -> t
(** The registry instrumented code should write to: the innermost
    domain-local override installed by {!with_current} /
    {!with_current_lazy}, or {!default} when none is installed on this
    domain. Instrumentation sites fetch handles through this at run
    time (not at module init) so a scoped region — a parallel-pool
    element, a bench experiment — captures its own series. *)

val with_current : t -> (unit -> 'a) -> 'a
(** Run the callback with the given registry as this domain's
    {!current} (restored on exit, including on exceptions). *)

val with_current_lazy : t Lazy.t -> (unit -> 'a) -> 'a
(** Like {!with_current} but the registry is created only if the
    callback actually touches a metric — the parallel pool uses this
    to scope every element at negligible cost. *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

val counter : ?help:string -> ?labels:(string * string) list -> t -> string -> counter
(** Get-or-create a monotone counter.
    @raise Invalid_argument on an invalid metric name
    ([[a-zA-Z_:][a-zA-Z0-9_:]*]) or a kind clash. *)

val gauge : ?help:string -> ?labels:(string * string) list -> t -> string -> gauge

val histogram :
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float array ->
  t ->
  string ->
  histogram
(** Fixed-bucket histogram; [buckets] are strictly increasing finite
    upper bounds (inclusive, Prometheus [le] semantics) with an
    implicit [+Inf] overflow bucket. Defaults to
    {!default_buckets}. *)

val log_buckets : lo:float -> factor:float -> count:int -> float array
(** [count] log-spaced bounds [lo, lo*factor, lo*factor^2, ...].
    @raise Invalid_argument unless [lo > 0], [factor > 1],
    [count >= 1]. *)

val default_buckets : float array
(** 24 bounds, 2x-spaced from 1e-3 to ~8.4e3. *)

val inc : counter -> unit
val add : counter -> float -> unit
(** @raise Invalid_argument on negative or non-finite increments (only
    when the registry is enabled — disabled registries never observe
    the value). *)

val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** @raise Invalid_argument on non-finite observations (when
    enabled). *)

val counter_value : counter -> float
val gauge_value : gauge -> float
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_bucket_counts : histogram -> int array
(** Per-bucket (non-cumulative) counts, overflow bucket last. *)

val hist_bounds : histogram -> float array

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [\[0,1\]]: interpolated estimate in the
    spirit of [Stats.percentile]. The estimate always lies within the
    bucket that contains the true order statistic (tightened by the
    tracked min/max).
    @raise Invalid_argument on empty histograms or out-of-range [q]. *)

val merge_histogram : into:histogram -> histogram -> unit
(** Pointwise sum of bucket counts (plus sum/count/min/max).
    @raise Invalid_argument when bucket bounds differ. *)

val merge : into:t -> t -> unit
(** Fold every series of the source into [into]: counters add, gauges
    take the source value, histograms merge. *)

val scalar_series : t -> (string * float) list
(** Flat (series-key, value) view in registration order: counters and
    gauges directly, histograms as [_count] and [_sum]. Used for
    before/after deltas by the bench driver. *)

val to_prometheus : t -> string
(** Prometheus text exposition format (with HELP/TYPE headers,
    cumulative histogram buckets, escaped label values). *)

val to_json : t -> Json.t
