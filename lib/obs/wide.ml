(* Wide events: one canonical JSONL record per unit of work (a served
   request, a migration episode, a bench experiment). Each record
   carries everything known about the unit — trace id, phase
   durations, outcome, counters — so a single line answers "where did
   this request spend its time" without joining many narrow spans.

   One sink is installed at a time (a [Trace.sink], typically a JSONL
   file). Head-based sampling is decided at [start]: every Nth unit is
   emitted, the rest build no record. A bounded ring buffer keeps the
   most recent emitted records in memory for the health endpoint and
   tests. When no sink is installed every entry point is a one-branch
   no-op, so default-flag runs stay byte-identical. *)

type state = {
  sink : Trace.sink;
  sample_every : int;
  ring : Json.t option array; (* bounded buffer of recent records *)
  mutable ring_next : int; (* next write slot *)
  mutable started : int; (* units seen, drives head sampling *)
  mutable emitted : int;
}

let current : state option ref = ref None

(* Serializes sampling decisions, ring writes and sink writes: wide
   events finish on pool worker domains and server threads while the
   main domain may also be emitting. *)
let lock = Mutex.create ()

let active () = !current <> None

let install ?(sample_every = 1) ?(ring_capacity = 256) sink =
  if sample_every < 1 then invalid_arg "Wide.install: sample_every < 1";
  if ring_capacity < 1 then invalid_arg "Wide.install: ring_capacity < 1";
  Mutex.protect lock (fun () ->
      (match !current with Some s -> Trace.close_sink s.sink | None -> ());
      current :=
        Some
          {
            sink;
            sample_every;
            ring = Array.make ring_capacity None;
            ring_next = 0;
            started = 0;
            emitted = 0;
          })

let uninstall () =
  Mutex.protect lock (fun () ->
      (match !current with Some s -> Trace.close_sink s.sink | None -> ());
      current := None)

(* An in-flight builder. [Drop] is returned when no sink is installed
   or head sampling skipped this unit; every mutation on it is a
   single-branch no-op. *)
type t =
  | Drop
  | Ev of {
      kind : string;
      trace_id : string option;
      parent_span : string option;
      t_start : float;
      mutable phases : (string * float) list; (* reversed *)
      mutable attrs : (string * Json.t) list; (* reversed *)
      mutable finished : bool;
    }

(* Fresh ids for units that did not inherit one from the wire. Salted
   with the pid so ids from a client and a server process on one
   machine stay distinct; uniqueness, not secrecy, is the goal. *)
let id_seq = ref 0

let fresh_trace_id () =
  let n = Mutex.protect lock (fun () -> incr id_seq; !id_seq) in
  Printf.sprintf "%x-%x" (Unix.getpid () land 0xffffff) n

let start ~kind ?trace_id ?parent_span () =
  match !current with
  | None -> Drop
  | Some _ ->
      let sampled =
        Mutex.protect lock (fun () ->
            match !current with
            | None -> false
            | Some s ->
                s.started <- s.started + 1;
                (s.started - 1) mod s.sample_every = 0)
      in
      if not sampled then Drop
      else
        Ev
          {
            kind;
            trace_id;
            parent_span;
            t_start = Core.now ();
            phases = [];
            attrs = [];
            finished = false;
          }

let sampled = function Drop -> false | Ev _ -> true

let set t name v =
  match t with Drop -> () | Ev e -> e.attrs <- (name, v) :: e.attrs

let set_str t name v = set t name (Json.String v)
let set_int t name v = set t name (Json.Int v)

let phase t name dur =
  match t with Drop -> () | Ev e -> e.phases <- (name, dur) :: e.phases

let timed t name f =
  match t with
  | Drop -> f ()
  | Ev _ ->
      let t0 = Core.now () in
      Fun.protect ~finally:(fun () -> phase t name (Core.now () -. t0)) f

let finish ?(outcome = "ok") t =
  match t with
  | Drop -> ()
  | Ev e ->
      if not e.finished then begin
        e.finished <- true;
        let t_end = Core.now () in
        let base =
          [
            ("type", Json.String "wide");
            ("kind", Json.String e.kind);
            ("t_start", Json.Float e.t_start);
            ("dur_s", Json.Float (t_end -. e.t_start));
            ("outcome", Json.String outcome);
          ]
        in
        let trace =
          (match e.trace_id with
          | None -> []
          | Some id -> [ ("trace_id", Json.String id) ])
          @
          match e.parent_span with
          | None -> []
          | Some p -> [ ("parent_span", Json.String p) ]
        in
        let phases =
          match e.phases with
          | [] -> []
          | ps ->
              [
                ( "phases",
                  Json.Obj
                    (List.rev_map (fun (n, d) -> (n, Json.Float d)) ps) );
              ]
        in
        let attrs = List.rev e.attrs in
        let record = Json.Obj (base @ trace @ phases @ attrs) in
        Mutex.protect lock (fun () ->
            match !current with
            | None -> ()
            | Some s ->
                s.ring.(s.ring_next) <- Some record;
                s.ring_next <- (s.ring_next + 1) mod Array.length s.ring;
                s.emitted <- s.emitted + 1;
                Trace.emit_to s.sink record)
      end

let ring () =
  Mutex.protect lock (fun () ->
      match !current with
      | None -> []
      | Some s ->
          let n = Array.length s.ring in
          let out = ref [] in
          (* Oldest-first: walk forward from the next write slot. *)
          for i = 0 to n - 1 do
            match s.ring.((s.ring_next + i) mod n) with
            | None -> ()
            | Some r -> out := r :: !out
          done;
          List.rev !out)

let emitted () =
  Mutex.protect lock (fun () ->
      match !current with None -> 0 | Some s -> s.emitted)

let flush () =
  Mutex.protect lock (fun () ->
      match !current with None -> () | Some s -> Trace.flush_sink s.sink)

let header fields =
  if active () then
    Mutex.protect lock (fun () ->
        match !current with
        | None -> ()
        | Some s ->
            Trace.emit_to s.sink
              (Json.Obj
                 (("type", Json.String "meta")
                 :: ("schema", Json.String "qp-wide/1")
                 :: ("version", Json.String Build_info.version)
                 :: fields)))
