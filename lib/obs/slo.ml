(* Sliding-window SLOs with multi-window burn rates.

   An objective classifies each unit of work as good or bad (ok flag,
   optionally AND latency <= threshold). Units are accumulated into
   fixed-width time buckets arranged as a ring spanning the longest
   window, so [record] is O(1) and a window query sums at most
   [window/bucket] buckets — no per-request allocation, bounded
   memory regardless of traffic.

   Burn rate is the SRE convention: the ratio of the observed bad
   fraction to the budgeted bad fraction (1 - target). Burn 1.0 means
   the error budget is being consumed exactly at the rate that
   exhausts it over the SLO period; the standard alerting rule trips
   when both a fast and a slow window burn above a threshold, which
   catches sharp regressions without flapping on blips.

   Every entry point takes an explicit [?now] so callers on simulated
   clocks (the runtime engine) can feed their own time; the default is
   [Core.now ()]. *)

type objective = {
  name : string;
  target : float; (* good fraction in (0,1), e.g. 0.999 *)
  latency_s : float option; (* good also requires latency <= this *)
}

type config = {
  objective : objective;
  windows_s : float list; (* sliding windows, shortest = fast alert *)
  bucket_s : float; (* time-bucket granularity *)
}

let default_objective =
  { name = "availability"; target = 0.99; latency_s = Some 1.0 }

let default_config =
  { objective = default_objective; windows_s = [ 60.; 300. ]; bucket_s = 5. }

(* Latency histogram bounds shared by all buckets: 100us..~400s in
   x2 steps, same shape as the serve latency histogram. *)
let lat_bounds = Metrics.log_buckets ~lo:1e-4 ~factor:2. ~count:22

type bucket = {
  mutable epoch : int; (* floor (t / bucket_s); -1 = empty *)
  mutable total : int;
  mutable good : int;
  lat : int array; (* counts per lat_bounds bucket, +Inf last *)
  mutable lat_sum : float;
}

type t = {
  cfg : config;
  buckets : bucket array;
  lock : Mutex.t;
}

let validate cfg =
  if cfg.objective.target <= 0. || cfg.objective.target >= 1. then
    invalid_arg "Slo.create: target must be in (0,1)";
  if cfg.bucket_s <= 0. then invalid_arg "Slo.create: bucket_s <= 0";
  if cfg.windows_s = [] then invalid_arg "Slo.create: no windows";
  List.iter
    (fun w -> if w < cfg.bucket_s then
        invalid_arg "Slo.create: window shorter than bucket_s")
    cfg.windows_s

let create ?(cfg = default_config) () =
  validate cfg;
  let max_w = List.fold_left max 0. cfg.windows_s in
  (* +2: one for the in-progress bucket, one so a window's oldest
     partially-covered bucket is still resident. *)
  let n = int_of_float (ceil (max_w /. cfg.bucket_s)) + 2 in
  {
    cfg;
    buckets =
      Array.init n (fun _ ->
          {
            epoch = -1;
            total = 0;
            good = 0;
            lat = Array.make (Array.length lat_bounds + 1) 0;
            lat_sum = 0.;
          });
    lock = Mutex.create ();
  }

let config t = t.cfg

let lat_slot v =
  let n = Array.length lat_bounds in
  let rec go i = if i >= n then n else if v <= lat_bounds.(i) then i else go (i + 1) in
  go 0

let bucket_for t now =
  let epoch = int_of_float (floor (now /. t.cfg.bucket_s)) in
  let b = t.buckets.(((epoch mod Array.length t.buckets) + Array.length t.buckets)
                     mod Array.length t.buckets) in
  if b.epoch <> epoch then begin
    b.epoch <- epoch;
    b.total <- 0;
    b.good <- 0;
    Array.fill b.lat 0 (Array.length b.lat) 0;
    b.lat_sum <- 0.
  end;
  b

let is_good t ~ok ~latency_s =
  ok
  &&
  match t.cfg.objective.latency_s with
  | None -> true
  | Some thr -> latency_s <= thr

let record ?now t ~ok ~latency_s =
  let now = match now with Some n -> n | None -> Core.now () in
  Mutex.protect t.lock (fun () ->
      let b = bucket_for t now in
      b.total <- b.total + 1;
      if is_good t ~ok ~latency_s then b.good <- b.good + 1;
      let s = lat_slot latency_s in
      b.lat.(s) <- b.lat.(s) + 1;
      b.lat_sum <- b.lat_sum +. latency_s)

(* Fold over the buckets whose interval intersects [now - window, now].
   Called under the lock. *)
let fold_window t ~now ~window_s f init =
  let lo_epoch = int_of_float (floor ((now -. window_s) /. t.cfg.bucket_s)) in
  let hi_epoch = int_of_float (floor (now /. t.cfg.bucket_s)) in
  Array.fold_left
    (fun acc b ->
      if b.epoch >= lo_epoch && b.epoch <= hi_epoch && b.total > 0 then f acc b
      else acc)
    init t.buckets

let counts ?now t ~window_s =
  let now = match now with Some n -> n | None -> Core.now () in
  Mutex.protect t.lock (fun () ->
      fold_window t ~now ~window_s
        (fun (g, tot) b -> (g + b.good, tot + b.total))
        (0, 0))

let error_rate ?now t ~window_s =
  let good, total = counts ?now t ~window_s in
  if total = 0 then 0. else 1. -. (float_of_int good /. float_of_int total)

let burn_rate ?now t ~window_s =
  let budget = 1. -. t.cfg.objective.target in
  error_rate ?now t ~window_s /. budget

let quantile ?now t ~window_s q =
  if q < 0. || q > 1. then invalid_arg "Slo.quantile: q outside [0,1]";
  let now = match now with Some n -> n | None -> Core.now () in
  Mutex.protect t.lock (fun () ->
      let merged = Array.make (Array.length lat_bounds + 1) 0 in
      let total =
        fold_window t ~now ~window_s
          (fun acc b ->
            Array.iteri (fun i c -> merged.(i) <- merged.(i) + c) b.lat;
            acc + b.total)
          0
      in
      if total = 0 then None
      else begin
        let rank = q *. float_of_int total in
        let rec go i cum =
          if i >= Array.length merged then lat_bounds.(Array.length lat_bounds - 1)
          else
            let cum' = cum +. float_of_int merged.(i) in
            if cum' >= rank && merged.(i) > 0 then begin
              (* Linear interpolation inside the bucket's bounds. *)
              let lo = if i = 0 then 0. else lat_bounds.(i - 1) in
              let hi =
                if i < Array.length lat_bounds then lat_bounds.(i)
                else lat_bounds.(Array.length lat_bounds - 1) *. 2.
              in
              let frac =
                if merged.(i) = 0 then 0.
                else (rank -. cum) /. float_of_int merged.(i)
              in
              lo +. ((hi -. lo) *. (max 0. (min 1. frac)))
            end
            else go (i + 1) cum'
        in
        Some (go 0 0.)
      end)

(* The standard multiwindow rule: burning only when EVERY window's
   burn rate is at or above the threshold — the fast window proves the
   problem is current, the slow window proves it is sustained. *)
let burning ?now t ~threshold =
  List.for_all
    (fun w -> burn_rate ?now t ~window_s:w >= threshold)
    t.cfg.windows_s

let to_json ?now t =
  let now = match now with Some n -> n | None -> Core.now () in
  let windows =
    List.map
      (fun w ->
        let good, total = counts ~now t ~window_s:w in
        let p99 = quantile ~now t ~window_s:w 0.99 in
        Json.Obj
          [
            ("window_s", Json.Float w);
            ("total", Json.Int total);
            ("good", Json.Int good);
            ("error_rate", Json.Float (error_rate ~now t ~window_s:w));
            ("burn_rate", Json.Float (burn_rate ~now t ~window_s:w));
            ( "p99_s",
              match p99 with None -> Json.Null | Some v -> Json.Float v );
          ])
      t.cfg.windows_s
  in
  Json.Obj
    [
      ("objective", Json.String t.cfg.objective.name);
      ("target", Json.Float t.cfg.objective.target);
      ( "latency_s",
        match t.cfg.objective.latency_s with
        | None -> Json.Null
        | Some v -> Json.Float v );
      ("windows", Json.List windows);
    ]
