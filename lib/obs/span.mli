(** Span-based tracing around the solver / simulator phases.

    [with_ ~name f] is a no-op wrapper (one branch) unless a
    {!Trace} sink is installed; when tracing it times [f] on the
    configured clock and emits one record as the span closes. Records
    appear in end-time order (children before parents); consumers
    rebuild the tree from [id]/[parent]. *)

val with_ : ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** Run [f] inside a named span. Exceptions are recorded on the span
    ([error] field) and re-raised. *)

val add_attr : string -> Json.t -> unit
(** Attach an attribute to the innermost open span (no-op outside any
    span or when tracing is off). *)

val event : ?attrs:(string * Json.t) list -> string -> unit
(** Emit a point-in-time event record, linked to the innermost open
    span when there is one (e.g. detector transitions, repairs). *)

val current_id : unit -> int option
(** Id of the innermost open span, if any. *)
