(* Metrics registry: counters, gauges and fixed-bucket histograms with
   Prometheus-text and JSON exporters.

   Every mutation is gated on the owning registry's [enabled] flag, so
   an instrumented hot path costs one load + branch when telemetry is
   off. Series identity is (name, sorted labels); re-registering an
   existing series returns the same handle (get-or-create), and
   registering the same name with a different kind or different
   histogram buckets is an error. *)

type hist = {
  bounds : float array; (* strictly increasing upper bucket bounds *)
  counts : int array; (* length = Array.length bounds + 1 (+Inf last) *)
  mutable h_sum : float;
  mutable h_count : int;
  mutable h_min : float;
  mutable h_max : float;
}

type cell = Counter of float ref | Gauge of float ref | Hist of hist

type series = {
  s_name : string;
  s_labels : (string * string) list; (* sorted by key *)
  s_help : string;
  cell : cell;
}

type t = {
  tbl : (string, series) Hashtbl.t; (* key = name + rendered labels *)
  mutable rev_keys : string list; (* registration order, reversed *)
  enabled : bool ref;
}

type counter = { c_on : bool ref; c : float ref }
type gauge = { g_on : bool ref; g : float ref }
type histogram = { h_on : bool ref; h : hist }

let create ?(enabled = true) () =
  { tbl = Hashtbl.create 64; rev_keys = []; enabled = ref enabled }

(* Shared process-wide registry used by library instrumentation; starts
   disabled so uninstrumented runs pay only the flag check. *)
let default = create ~enabled:false ()

(* The registry instrumentation writes to: a domain-local override
   installed by [with_current]/[with_current_lazy] (the parallel pool
   scopes every element in one, and the bench driver scopes each
   experiment), falling back to [default]. Held lazily so scoping a
   region that never touches a metric allocates nothing. *)
let current_key : t Lazy.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Lazy.from_val default)

let current () = Lazy.force (Domain.DLS.get current_key)

let with_current_lazy reg f =
  let old = Domain.DLS.get current_key in
  Domain.DLS.set current_key reg;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key old) f

let with_current reg f = with_current_lazy (Lazy.from_val reg) f

let set_enabled t b = t.enabled := b
let enabled t = !(t.enabled)

let valid_name n =
  n <> ""
  && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       n

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  match labels with
  | [] -> name
  | ls ->
      let b = Buffer.create 32 in
      Buffer.add_string b name;
      Buffer.add_char b '{';
      List.iter
        (fun (k, v) ->
          Buffer.add_string b k;
          Buffer.add_char b '=';
          Buffer.add_string b v;
          Buffer.add_char b ';')
        ls;
      Buffer.add_char b '}';
      Buffer.contents b

let register t ~name ~labels ~help ~make ~check =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  let labels = canonical_labels labels in
  let k = key name labels in
  match Hashtbl.find_opt t.tbl k with
  | Some s -> check s
  | None ->
      let s = { s_name = name; s_labels = labels; s_help = help; cell = make () } in
      Hashtbl.add t.tbl k s;
      t.rev_keys <- k :: t.rev_keys;
      check s

let counter ?(help = "") ?(labels = []) t name =
  register t ~name ~labels ~help
    ~make:(fun () -> Counter (ref 0.))
    ~check:(fun s ->
      match s.cell with
      | Counter c -> { c_on = t.enabled; c }
      | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a counter" name))

let gauge ?(help = "") ?(labels = []) t name =
  register t ~name ~labels ~help
    ~make:(fun () -> Gauge (ref 0.))
    ~check:(fun s ->
      match s.cell with
      | Gauge g -> { g_on = t.enabled; g }
      | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a gauge" name))

(* Log-spaced bucket bounds: lo, lo*factor, ..., count bounds total. *)
let log_buckets ~lo ~factor ~count =
  if lo <= 0. || not (Float.is_finite lo) then
    invalid_arg "Metrics.log_buckets: lo must be positive and finite";
  if factor <= 1. || not (Float.is_finite factor) then
    invalid_arg "Metrics.log_buckets: factor must exceed 1";
  if count < 1 then invalid_arg "Metrics.log_buckets: count must be >= 1";
  Array.init count (fun i -> lo *. (factor ** float_of_int i))

(* Default delay buckets: 2x-spaced from 1e-3 to ~8e3 — wide enough for
   both unit-metric network delays and wall-clock seconds. *)
let default_buckets = log_buckets ~lo:1e-3 ~factor:2. ~count:24

let validate_bounds bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Metrics.histogram: empty bucket bounds";
  for i = 0 to n - 1 do
    if not (Float.is_finite bounds.(i)) then
      invalid_arg "Metrics.histogram: bounds must be finite";
    if i > 0 && bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) t name =
  validate_bounds buckets;
  let bounds = Array.copy buckets in
  register t ~name ~labels ~help
    ~make:(fun () ->
      Hist
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          h_sum = 0.;
          h_count = 0;
          h_min = infinity;
          h_max = neg_infinity;
        })
    ~check:(fun s ->
      match s.cell with
      | Hist h ->
          if h.bounds <> bounds then
            invalid_arg
              (Printf.sprintf "Metrics: %s re-registered with different buckets" name);
          { h_on = t.enabled; h }
      | _ -> invalid_arg (Printf.sprintf "Metrics: %s is not a histogram" name))

(* ------------------------------------------------------------------ *)
(* Mutation                                                            *)
(* ------------------------------------------------------------------ *)

let add cnt v =
  if !(cnt.c_on) then begin
    if v < 0. || not (Float.is_finite v) then
      invalid_arg "Metrics.add: counters only accept finite non-negative increments";
    cnt.c := !(cnt.c) +. v
  end

let inc cnt = add cnt 1.

let set gg v = if !(gg.g_on) then gg.g := v

(* First bucket whose bound is >= v (Prometheus [le] semantics: bounds
   are inclusive upper edges); the overflow bucket otherwise. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  if v <= bounds.(0) then 0
  else if v > bounds.(n - 1) then n
  else begin
    (* Binary search: smallest i with v <= bounds.(i). *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid
    done;
    !hi
  end

let observe hg v =
  if !(hg.h_on) then begin
    if not (Float.is_finite v) then
      invalid_arg "Metrics.observe: non-finite observation";
    let h = hg.h in
    let b = bucket_index h.bounds v in
    h.counts.(b) <- h.counts.(b) + 1;
    h.h_sum <- h.h_sum +. v;
    h.h_count <- h.h_count + 1;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v
  end

(* ------------------------------------------------------------------ *)
(* Reads                                                               *)
(* ------------------------------------------------------------------ *)

let counter_value cnt = !(cnt.c)
let gauge_value gg = !(gg.g)
let hist_count hg = hg.h.h_count
let hist_sum hg = hg.h.h_sum
let hist_bucket_counts hg = Array.copy hg.h.counts
let hist_bounds hg = Array.copy hg.h.bounds

(* Estimated value of the (0-based) i-th order statistic: locate its
   bucket by cumulative count and place it at the observation's
   mid-rank position assuming a uniform spread inside the bucket. The
   estimate always lies inside the bucket that really contains the
   order statistic (tightened by the tracked min/max). *)
let order_stat h i =
  let nb = Array.length h.counts in
  let rec find b cum =
    let cum' = cum + h.counts.(b) in
    if i < cum' || b = nb - 1 then (b, cum) else find (b + 1) cum'
  in
  let b, before = find 0 0 in
  let lo =
    if b = 0 then h.h_min else Float.max h.h_min h.bounds.(b - 1)
  in
  let hi =
    if b = Array.length h.bounds then h.h_max else Float.min h.h_max h.bounds.(b)
  in
  if h.counts.(b) = 0 then lo
  else lo +. ((hi -. lo) *. ((float_of_int (i - before) +. 0.5) /. float_of_int h.counts.(b)))

let quantile hg q =
  if q < 0. || q > 1. then invalid_arg "Metrics.quantile: q must lie in [0, 1]";
  let h = hg.h in
  if h.h_count = 0 then invalid_arg "Metrics.quantile: empty histogram";
  if h.h_count = 1 then h.h_min
  else begin
    let rank = q *. float_of_int (h.h_count - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (h.h_count - 1) in
    let frac = rank -. float_of_int lo in
    let vlo = order_stat h lo in
    let vhi = if hi = lo then vlo else order_stat h hi in
    (vlo *. (1. -. frac)) +. (vhi *. frac)
  end

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)
(* ------------------------------------------------------------------ *)

let merge_histogram ~into src =
  let a = into.h and b = src.h in
  if a.bounds <> b.bounds then
    invalid_arg "Metrics.merge_histogram: bucket bounds differ";
  Array.iteri (fun i c -> a.counts.(i) <- a.counts.(i) + c) b.counts;
  a.h_sum <- a.h_sum +. b.h_sum;
  a.h_count <- a.h_count + b.h_count;
  if b.h_min < a.h_min then a.h_min <- b.h_min;
  if b.h_max > a.h_max then a.h_max <- b.h_max

let ordered_series t =
  List.rev_map (fun k -> Hashtbl.find t.tbl k) t.rev_keys

let merge ~into src =
  List.iter
    (fun s ->
      match s.cell with
      | Counter c ->
          let dst = counter ~help:s.s_help ~labels:s.s_labels into s.s_name in
          dst.c := !(dst.c) +. !c
      | Gauge g ->
          let dst = gauge ~help:s.s_help ~labels:s.s_labels into s.s_name in
          dst.g := !g
      | Hist h ->
          let dst =
            histogram ~help:s.s_help ~labels:s.s_labels ~buckets:h.bounds into s.s_name
          in
          merge_histogram ~into:dst { h_on = into.enabled; h })
    (ordered_series src)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* Scalar view (counters and gauges; histograms contribute _count and
   _sum), used by the bench driver for per-experiment deltas. *)
let scalar_series t =
  List.concat_map
    (fun s ->
      let k = key s.s_name s.s_labels in
      match s.cell with
      | Counter c -> [ (k, !c) ]
      | Gauge g -> [ (k, !g) ]
      | Hist h ->
          [
            (key (s.s_name ^ "_count") s.s_labels, float_of_int h.h_count);
            (key (s.s_name ^ "_sum") s.s_labels, h.h_sum);
          ])
    (ordered_series t)

let prom_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else
    (* Shortest representation that round-trips, like the JSON writer. *)
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_help s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) ls)
      ^ "}"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then
        Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun s ->
      match s.cell with
      | Counter c ->
          header s.s_name "counter" s.s_help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.s_name (render_labels s.s_labels)
               (prom_value !c))
      | Gauge g ->
          header s.s_name "gauge" s.s_help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.s_name (render_labels s.s_labels)
               (prom_value !g))
      | Hist h ->
          header s.s_name "histogram" s.s_help;
          let cum = ref 0 in
          Array.iteri
            (fun i c ->
              cum := !cum + c;
              let le =
                if i = Array.length h.bounds then "+Inf"
                else prom_value h.bounds.(i)
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                   (render_labels (s.s_labels @ [ ("le", le) ]))
                   !cum))
            h.counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.s_name (render_labels s.s_labels)
               (prom_value h.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.s_name (render_labels s.s_labels)
               h.h_count))
    (ordered_series t);
  Buffer.contents buf

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let to_json t =
  let series =
    List.map
      (fun s ->
        let base =
          [ ("name", Json.String s.s_name); ("labels", labels_json s.s_labels) ]
        in
        match s.cell with
        | Counter c ->
            Json.Obj (base @ [ ("type", Json.String "counter"); ("value", Json.Float !c) ])
        | Gauge g ->
            Json.Obj (base @ [ ("type", Json.String "gauge"); ("value", Json.Float !g) ])
        | Hist h ->
            let buckets =
              List.init (Array.length h.counts) (fun i ->
                  Json.Obj
                    [
                      ( "le",
                        if i = Array.length h.bounds then Json.String "+Inf"
                        else Json.Float h.bounds.(i) );
                      ("count", Json.Int h.counts.(i));
                    ])
            in
            Json.Obj
              (base
              @ [
                  ("type", Json.String "histogram");
                  ("buckets", Json.List buckets);
                  ("sum", Json.Float h.h_sum);
                  ("count", Json.Int h.h_count);
                  ( "min",
                    if h.h_count = 0 then Json.Null else Json.Float h.h_min );
                  ( "max",
                    if h.h_count = 0 then Json.Null else Json.Float h.h_max );
                ]))
      (ordered_series t)
  in
  Json.Obj [ ("metrics", Json.List series) ]
