(* Global switchboard for the telemetry layer.

   Everything in qp_obs is a no-op unless explicitly enabled, so
   instrumented hot paths pay a single mutable-bool load per
   operation. Tracing and metrics are gated independently: [tracing]
   is flipped by [Trace.install]/[Trace.uninstall]; each metrics
   registry carries its own enabled flag (the shared default registry
   starts disabled). *)

let tracing = ref false

(* Wall-clock used for span timestamps and bench timings. OCaml's
   stdlib has no monotonic clock without external packages, so the
   default is [Unix.gettimeofday]; tests (and callers that do have a
   monotonic source) install their own via [set_clock], which also
   makes span timing deterministic under test. *)
let clock : (unit -> float) ref = ref Unix.gettimeofday

let now () = !clock ()

let set_clock f = clock := f

let default_clock () = clock := Unix.gettimeofday
