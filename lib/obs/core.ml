(* Global switchboard for the telemetry layer.

   Everything in qp_obs is a no-op unless explicitly enabled, so
   instrumented hot paths pay a single mutable-bool load per
   operation. Tracing and metrics are gated independently: [tracing]
   is flipped by [Trace.install]/[Trace.uninstall]; each metrics
   registry carries its own enabled flag (the shared default registry
   starts disabled). *)

let tracing = ref false

(* Wall-clock used for span timestamps and bench timings. OCaml's
   stdlib has no monotonic clock without external packages, so the
   default is [Unix.gettimeofday]; tests (and callers that do have a
   monotonic source) install their own via [set_clock], which also
   makes span timing deterministic under test. *)
let clock : (unit -> float) ref = ref Unix.gettimeofday

let now () = !clock ()

let set_clock f = clock := f

let default_clock () = clock := Unix.gettimeofday

(* Peak resident set size of this process, from the kernel's
   high-water mark (VmHWM in /proc/self/status, reported in kB).
   Returns [None] off Linux or on any parse surprise — callers treat
   the measurement as best-effort telemetry. *)
let max_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line ->
                if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                  let digits =
                    String.to_seq (String.sub line 6 (String.length line - 6))
                    |> Seq.filter (fun c -> c >= '0' && c <= '9')
                    |> String.of_seq
                  in
                  int_of_string_opt digits
                else scan ()
          in
          scan ())
