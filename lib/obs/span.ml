(* Span-based tracing. [with_ name f] times [f] on the configured
   clock and emits one JSONL record when the span closes (children
   therefore appear before their parents in the stream; consumers
   rebuild the tree from id/parent). Each domain keeps its own span
   stack, so spans opened inside parallel-pool workers nest correctly
   within that worker (they surface as roots rather than children of
   the submitting domain's open span); record emission itself is
   serialized by the trace sink. *)

type frame = {
  id : int;
  name : string;
  parent : int option;
  depth : int;
  start : float;
  mutable attrs : (string * Json.t) list;
}

let stack_key : frame list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let stack () = Domain.DLS.get stack_key

let current_id () = match !(stack ()) with [] -> None | fr :: _ -> Some fr.id

let add_attr key value =
  match !(stack ()) with
  | fr :: _ when !Core.tracing -> fr.attrs <- fr.attrs @ [ (key, value) ]
  | _ -> ()

let json_of_parent = function None -> Json.Null | Some id -> Json.Int id

let emit_span fr ~t_end ~error =
  let base =
    [
      ("type", Json.String "span");
      ("id", Json.Int fr.id);
      ("parent", json_of_parent fr.parent);
      ("name", Json.String fr.name);
      ("depth", Json.Int fr.depth);
      ("t_start", Json.Float fr.start);
      ("t_end", Json.Float t_end);
      ("dur_s", Json.Float (t_end -. fr.start));
    ]
  in
  let base =
    match error with None -> base | Some e -> base @ [ ("error", Json.String e) ]
  in
  let base =
    match fr.attrs with [] -> base | attrs -> base @ [ ("attrs", Json.Obj attrs) ]
  in
  Trace.emit (Json.Obj base)

let with_ ?(attrs = []) name f =
  if not !Core.tracing then f ()
  else begin
    let stack = stack () in
    let fr =
      {
        id = Trace.next_id ();
        name;
        parent = current_id ();
        depth = List.length !stack;
        start = Core.now ();
        attrs;
      }
    in
    stack := fr :: !stack;
    let finish error =
      (match !stack with top :: rest when top == fr -> stack := rest | _ -> ());
      emit_span fr ~t_end:(Core.now ()) ~error
    in
    match f () with
    | v ->
        finish None;
        v
    | exception e ->
        finish (Some (Printexc.to_string e));
        raise e
  end

let event ?(attrs = []) name =
  if !Core.tracing then begin
    let base =
      [
        ("type", Json.String "event");
        ("id", Json.Int (Trace.next_id ()));
        ("span", json_of_parent (current_id ()));
        ("name", Json.String name);
        ("ts", Json.Float (Core.now ()));
      ]
    in
    let base =
      match attrs with [] -> base | attrs -> base @ [ ("attrs", Json.Obj attrs) ]
    in
    Trace.emit (Json.Obj base)
  end
