(** Minimal dependency-free JSON tree used by the telemetry layer
    (JSONL traces, metric dumps, bench artifacts).

    Non-finite floats serialize as [null]: JSON has no representation
    for them and the metrics layer rejects non-finite observations. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (one trace record per line). Finite
    floats round-trip exactly through {!of_string}. *)

exception Parse_error of string

val of_string : string -> t
(** Strict parser (full string must be one JSON value).
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj ...)] — [None] on missing key or non-object. *)

val to_float : t -> float option
(** Numeric accessor; [Int] widens to float. *)

val to_int : t -> int option
val to_str : t -> string option
