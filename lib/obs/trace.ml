(* Trace sinks: destinations for span and event records. One sink is
   installed at a time (the common case is a JSONL file opened by the
   CLI); installing flips the global tracing flag that every span
   checks, so an uninstalled tracer costs callers one branch. *)

type sink = {
  emit : Json.t -> unit;
  flush : unit -> unit;
  close : unit -> unit;
}

let null = { emit = ignore; flush = ignore; close = ignore }

let to_channel oc =
  {
    emit =
      (fun j ->
        output_string oc (Json.to_string j);
        output_char oc '\n');
    flush = (fun () -> flush oc);
    close = (fun () -> flush oc);
  }

let to_file path =
  let oc = open_out path in
  let chan = to_channel oc in
  { chan with close = (fun () -> close_out oc) }

(* Direct sink operations, for layers (e.g. [Wide]) that reuse the
   writer machinery without going through the installed-span sink. *)
let emit_to s j = s.emit j
let flush_sink s = s.flush ()
let close_sink s = s.close ()

let memory () =
  let records = ref [] in
  let sink =
    { emit = (fun j -> records := j :: !records); flush = ignore; close = ignore }
  in
  (sink, fun () -> List.rev !records)

let current : sink option ref = ref None

(* Serializes id allocation and sink writes: spans may close on
   parallel-pool worker domains while the main domain is also
   emitting. *)
let lock = Mutex.create ()

(* Monotone record/span id source, reset per installed trace so runs
   produce reproducible ids. *)
let seq = ref 0

let next_id () = Mutex.protect lock (fun () -> incr seq; !seq)

let install sink =
  (match !current with Some s -> s.close () | None -> ());
  current := Some sink;
  seq := 0;
  Core.tracing := true

let uninstall () =
  (match !current with Some s -> s.close () | None -> ());
  current := None;
  Core.tracing := false

let active () = !Core.tracing

let emit j =
  match !current with
  | None -> ()
  | Some s -> Mutex.protect lock (fun () -> s.emit j)

let flush () =
  match !current with
  | None -> ()
  | Some s -> Mutex.protect lock (fun () -> s.flush ())

let header fields =
  if active () then
    emit
      (Json.Obj
         (("type", Json.String "meta")
         :: ("schema", Json.String "qp-trace/1")
         :: ("version", Json.String Build_info.version)
         :: fields))
