(** Trace sinks — destinations for the JSONL span/event stream.

    One sink is installed at a time; {!install} flips the process-wide
    tracing flag checked by every {!Span.with_}, so tracing-off costs
    instrumented code a single branch. Records are one JSON object per
    line when written through {!to_channel}/{!to_file}. *)

type sink

val null : sink
val to_channel : out_channel -> sink
(** Writes one record per line; [close] flushes but does not close the
    channel (the caller owns it). *)

val to_file : string -> sink
(** Opens [path] for writing; [close] closes it. *)

val memory : unit -> sink * (unit -> Json.t list)
(** In-memory sink for tests; the thunk returns records in emission
    order. *)

val emit_to : sink -> Json.t -> unit
(** Write one record directly to [sink], bypassing the installed
    tracer. Callers are responsible for their own serialization of
    concurrent writers; {!Wide} wraps this in its own mutex. *)

val flush_sink : sink -> unit
val close_sink : sink -> unit

val install : sink -> unit
(** Make [sink] current, closing any previous sink, resetting span ids
    and enabling tracing. *)

val uninstall : unit -> unit
(** Close the current sink and disable tracing. Idempotent. *)

val active : unit -> bool

val next_id : unit -> int
(** Fresh monotone record id (reset by {!install}); used by
    {!Span}. *)

val emit : Json.t -> unit
(** Low-level record write (no-op when no sink is installed). *)

val flush : unit -> unit

val header : (string * Json.t) list -> unit
(** Emit the run-metadata record
    [{"type":"meta","schema":"qp-trace/1","version":...,...fields}] —
    the first line of every trace, making runs reproducible from the
    artifact alone. No-op when tracing is inactive. *)
