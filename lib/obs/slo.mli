(** Sliding-window SLOs with multi-window burn rates.

    An {!objective} classifies each unit of work as good or bad; units
    accumulate into a ring of fixed-width time buckets, so {!record}
    is O(1) and memory is bounded regardless of traffic. Burn rate is
    the observed bad fraction divided by the error budget
    [1 - target]: burn 1.0 consumes the budget exactly at the rate
    that exhausts it over the SLO period.

    All entry points accept [?now] so engines on simulated clocks can
    feed their own time; the default is {!Core.now}. Thread-safe. *)

type objective = {
  name : string;
  target : float;  (** required good fraction, in (0,1) *)
  latency_s : float option;
      (** when set, good additionally requires latency <= this *)
}

type config = {
  objective : objective;
  windows_s : float list;  (** sliding windows, shortest = fast alert *)
  bucket_s : float;  (** time-bucket granularity *)
}

val default_objective : objective
(** 99% of requests ok within 1s. *)

val default_config : config
(** {!default_objective} over 60s and 300s windows, 5s buckets. *)

type t

val create : ?cfg:config -> unit -> t
(** @raise Invalid_argument on a malformed config (target outside
    (0,1), non-positive bucket, window shorter than a bucket). *)

val config : t -> config

val record : ?now:float -> t -> ok:bool -> latency_s:float -> unit

val counts : ?now:float -> t -> window_s:float -> int * int
(** [(good, total)] over the trailing window. *)

val error_rate : ?now:float -> t -> window_s:float -> float
(** Bad fraction over the window; [0.] when the window is empty. *)

val burn_rate : ?now:float -> t -> window_s:float -> float
(** [error_rate / (1 - target)]. *)

val quantile : ?now:float -> t -> window_s:float -> float -> float option
(** Windowed latency quantile (log-bucketed, linearly interpolated);
    [None] when the window is empty.
    @raise Invalid_argument when q is outside [0,1]. *)

val burning : ?now:float -> t -> threshold:float -> bool
(** True when {e every} configured window's burn rate is at or above
    [threshold] — the fast window proves the problem is current, the
    slow window that it is sustained. *)

val to_json : ?now:float -> t -> Json.t
(** Per-window counts, error/burn rates and p99, for the [health]
    verb. *)
