(** Finite metric spaces.

    The placement algorithms never look at graph structure directly;
    they consume a metric — the shortest-path closure of a network, or
    a synthetic metric such as the integrality-gap instances of
    Appendix A.

    Distances are stored in a single flat row-major [Bigarray.Array1]
    (float64): one contiguous block per metric instead of n boxed
    rows, so a 10^4-node metric is GC-inert and rows can be shared
    with worker domains as disjoint slices. The representation is
    hidden behind the same [size]/[dist] interface as before. *)

type t

val size : t -> int

val dist : t -> int -> int -> float
(** [dist t i j] with per-axis validation: the flat layout would
    otherwise map an out-of-range [j] to a cell of the wrong row
    instead of failing. @raise Invalid_argument unless
    [0 <= i < size t] and [0 <= j < size t]. *)

val unsafe_dist : t -> int -> int -> float
(** [dist] without the bounds check, for validated hot loops. *)

val of_matrix : float array array -> t
(** Wraps a square matrix (copied into the flat layout).
    @raise Invalid_argument unless the matrix is
    square, symmetric, non-negative, with a zero diagonal. Triangle
    inequality is NOT enforced here; use {!check_triangle}. *)

val of_graph : ?cache:bool -> Graph.t -> t
(** Shortest-path metric of a connected graph. Sparse graphs run
    Dijkstra from every vertex, fanned out over
    {!Qp_par.Pool.default}; dense graphs at [n >= 256] use blocked
    Floyd–Warshall over the flat matrix (both bit-deterministic for
    any worker count; the size floor keeps seed-size instances on the
    historical Dijkstra rounding). With [cache] (the default), the
    metric is memoized in a small process-wide table keyed by graph
    structure, so callers that regenerate the same topology from the
    same seed — notably bench experiments — share one APSP
    computation; pass [~cache:false] to force a fresh computation.
    @raise Invalid_argument if the graph is disconnected. *)

val of_graph_delta : ?cache:bool -> base:t -> base_graph:Graph.t -> Graph.t -> t
(** [of_graph_delta ~base ~base_graph g] is the shortest-path metric of
    [g], computed incrementally from the metric [base] of [base_graph]
    when the two graphs differ in only a few edges. Edge insertions and
    length decreases cost one O(n^2) relaxation each; removals and
    length increases re-run Dijkstra only from the rows whose shortest
    paths used the changed edge (the other rows are provably
    unchanged). Falls back to a full APSP when the vertex count
    changed or more than a handful of edges differ. The result is
    bit-comparable to [of_graph g] up to float summation noise and is
    inserted into the same cache; incremental reuses count as partial
    invalidations in {!apsp_cache_stats} rather than full misses.
    @raise Invalid_argument if [g] is disconnected. *)

val apsp_cache_stats : unit -> int * int * int
(** [(hits, misses, partial)] of the {!of_graph} APSP cache since start
    or the last {!reset_apsp_cache}: exact-fingerprint hits, full
    recomputations, and {!of_graph_delta} incremental updates (partial
    invalidations that reused unaffected rows). *)

val apsp_cache_bytes : unit -> int
(** Bytes of distance-matrix data currently resident in the APSP
    cache. Cache entries share the [t] handles returned to callers, so
    this is the cache's true marginal footprint, also published as the
    [qp_apsp_cache_bytes] gauge. *)

val reset_apsp_cache : unit -> unit
(** Empty the APSP cache and zero its statistics (test hook). *)

val check_triangle : ?tol:float -> ?pool:Qp_par.Pool.t -> t -> (int * int * int) option
(** Returns a violating triple [(i, j, k)] with
    [dist i k > dist i j + dist j k], or [None] if the triangle
    inequality holds everywhere. Rows are scanned in parallel over
    [pool] (default {!Qp_par.Pool.default}); the reported triple is
    always the lexicographically least violation, independent of
    worker count. *)

val nodes_by_distance : t -> int -> int array
(** [nodes_by_distance m v0] lists all vertices sorted by increasing
    distance from [v0], starting with [v0] itself. Ties are broken by
    vertex id, making the order deterministic. *)

val diameter : t -> float
val average_distance : t -> int -> float
(** [average_distance m v0] = Avg_v d(v, v0), the constant that appears
    in the relay decomposition (Eq. 8 of the paper). *)

val scale : t -> float -> t
(** Multiplies all distances by a positive factor. *)

val submetric : t -> int array -> t
(** [submetric m keep] restricts to the listed vertices (renumbered in
    array order). *)

val pp : Format.formatter -> t -> unit
