(** Finite metric spaces.

    The placement algorithms never look at graph structure directly;
    they consume a metric — the shortest-path closure of a network, or
    a synthetic metric such as the integrality-gap instances of
    Appendix A. *)

type t

val size : t -> int
val dist : t -> int -> int -> float

val of_matrix : float array array -> t
(** Wraps a square matrix. @raise Invalid_argument unless the matrix is
    square, symmetric, non-negative, with a zero diagonal. Triangle
    inequality is NOT enforced here; use {!check_triangle}. *)

val of_graph : ?cache:bool -> Graph.t -> t
(** Shortest-path metric of a connected graph (runs Dijkstra from
    every vertex, fanned out over {!Qp_par.Pool.default}). With
    [cache] (the default), the distance matrix is memoized in a small
    process-wide table keyed by graph structure, so callers that
    regenerate the same topology from the same seed — notably bench
    experiments — share one APSP computation; pass [~cache:false] to
    force a fresh computation. @raise Invalid_argument if the graph is
    disconnected. *)

val of_graph_delta : ?cache:bool -> base:t -> base_graph:Graph.t -> Graph.t -> t
(** [of_graph_delta ~base ~base_graph g] is the shortest-path metric of
    [g], computed incrementally from the metric [base] of [base_graph]
    when the two graphs differ in only a few edges. Edge insertions and
    length decreases cost one O(n^2) relaxation each; removals and
    length increases re-run Dijkstra only from the rows whose shortest
    paths used the changed edge (the other rows are provably
    unchanged). Falls back to a full APSP when the vertex count
    changed or more than a handful of edges differ. The result is
    bit-comparable to [of_graph g] up to float summation noise and is
    inserted into the same cache; incremental reuses count as partial
    invalidations in {!apsp_cache_stats} rather than full misses.
    @raise Invalid_argument if [g] is disconnected. *)

val apsp_cache_stats : unit -> int * int * int
(** [(hits, misses, partial)] of the {!of_graph} APSP cache since start
    or the last {!reset_apsp_cache}: exact-fingerprint hits, full
    recomputations, and {!of_graph_delta} incremental updates (partial
    invalidations that reused unaffected rows). *)

val reset_apsp_cache : unit -> unit
(** Empty the APSP cache and zero its statistics (test hook). *)

val check_triangle : ?tol:float -> t -> (int * int * int) option
(** Returns a violating triple [(i, j, k)] with
    [dist i k > dist i j + dist j k], or [None] if the triangle
    inequality holds everywhere. *)

val nodes_by_distance : t -> int -> int array
(** [nodes_by_distance m v0] lists all vertices sorted by increasing
    distance from [v0], starting with [v0] itself. Ties are broken by
    vertex id, making the order deterministic. *)

val diameter : t -> float
val average_distance : t -> int -> float
(** [average_distance m v0] = Avg_v d(v, v0), the constant that appears
    in the relay decomposition (Eq. 8 of the paper). *)

val scale : t -> float -> t
(** Multiplies all distances by a positive factor. *)

val submetric : t -> int array -> t
(** [submetric m keep] restricts to the listed vertices (renumbered in
    array order). *)

val pp : Format.formatter -> t -> unit
