(** All-pairs shortest paths.

    Two independent implementations: repeated Dijkstra (the production
    path, used by {!Metric.of_graph}) and Floyd–Warshall (used as a
    cross-check oracle in property tests). *)

val repeated_dijkstra : ?pool:Qp_par.Pool.t -> Graph.t -> float array array
(** Distance matrix via n Dijkstra runs; [infinity] for unreachable
    pairs. The per-source runs are fanned out over [pool] (default:
    {!Qp_par.Pool.default}); each row is computed independently by a
    sequential Dijkstra, so the matrix is bit-identical for any worker
    count. *)

val floyd_warshall : Graph.t -> float array array
(** Distance matrix via Floyd–Warshall dynamic programming. *)
