(** All-pairs shortest paths.

    Two independent algorithm families: repeated Dijkstra (the
    production path for sparse graphs, used by {!Metric.of_graph}) and
    Floyd–Warshall (a cross-check oracle in property tests, and — in
    its blocked flat-matrix form — the production path for dense
    graphs). *)

type mat = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Flat row-major n*n distance matrix: entry [(i, j)] lives at index
    [i * n + j]. *)

val repeated_dijkstra : ?pool:Qp_par.Pool.t -> Graph.t -> float array array
(** Distance matrix via n Dijkstra runs; [infinity] for unreachable
    pairs. The per-source runs are fanned out over [pool] (default:
    {!Qp_par.Pool.default}); each row is computed independently by a
    sequential Dijkstra, so the matrix is bit-identical for any worker
    count. *)

val repeated_dijkstra_into : ?pool:Qp_par.Pool.t -> Graph.t -> mat -> unit
(** Same floats as {!repeated_dijkstra}, written into a caller-supplied
    flat matrix of dimension [n * n]. Workers write disjoint rows of
    the shared buffer, so the result is bit-identical to the boxed
    path for any worker count. @raise Invalid_argument on a dimension
    mismatch. *)

val floyd_warshall : Graph.t -> float array array
(** Distance matrix via Floyd–Warshall dynamic programming. *)

val floyd_warshall_into : ?pool:Qp_par.Pool.t -> Graph.t -> mat -> unit
(** Blocked Floyd–Warshall on the flat layout, tiles fanned out over
    [pool] with the classic three-phase (diagonal / row+column /
    remainder) schedule whose phases only read tiles finalized in
    earlier phases — bit-identical for any worker count. When the
    matrix fits in a single block the floats also equal the untiled
    {!floyd_warshall} bitwise; with multiple blocks the per-cell
    relaxation order differs (phase 3 reads distances already closed
    over a whole k-block), so cells agree with the untiled loop only
    up to float-summation rounding — both are correct shortest-path
    distances. Preferable to {!repeated_dijkstra_into} on dense
    graphs, where n Dijkstra heaps cost O(n·m log n) ≈ O(n³ log n).
    @raise Invalid_argument on a dimension mismatch. *)

val set_fw_block : int -> unit
(** Test hook: override the Floyd–Warshall tile width (default 64) so
    property tests can exercise the multi-block phases at small n.
    @raise Invalid_argument when the block is < 1. *)

val fw_block : unit -> int
(** The current tile width. *)
