type mat = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let repeated_dijkstra ?pool g =
  let pool = match pool with Some p -> p | None -> Qp_par.Pool.default () in
  Qp_par.Pool.parallel_init pool (Graph.n_vertices g) (fun src ->
      Dijkstra.distances g src)

let repeated_dijkstra_into ?pool g (d : mat) =
  let pool = match pool with Some p -> p | None -> Qp_par.Pool.default () in
  let n = Graph.n_vertices g in
  if Bigarray.Array1.dim d <> n * n then
    invalid_arg "Apsp.repeated_dijkstra_into: matrix dimension mismatch";
  (* Each source writes only its own row, so concurrent workers touch
     disjoint slices of the shared flat matrix. The per-row floats are
     exactly the boxed path's: same sequential Dijkstra per source. *)
  ignore
    (Qp_par.Pool.parallel_init pool n (fun src ->
         let row = Dijkstra.distances g src in
         let off = src * n in
         for j = 0 to n - 1 do
           Bigarray.Array1.unsafe_set d (off + j) (Array.unsafe_get row j)
         done))

let floyd_warshall g =
  let n = Graph.n_vertices g in
  let d = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.
  done;
  Graph.iter_edges g (fun u v len ->
      if len < d.(u).(v) then begin
        d.(u).(v) <- len;
        d.(v).(u) <- len
      end);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if dik < infinity then
        for j = 0 to n - 1 do
          let via = dik +. d.(k).(j) in
          if via < d.(i).(j) then d.(i).(j) <- via
        done
    done
  done;
  d

(* ------------------------------------------------------------------ *)
(* Blocked Floyd–Warshall on the flat layout                           *)
(* ------------------------------------------------------------------ *)

(* The classic three-phase tiling: for each diagonal block K, (1) close
   K against itself, (2) close K's block-row and block-column against
   K, (3) close every remaining tile (I,J) against (I,K) and (K,J).
   Within one phase the tiles only read tiles finished in an earlier
   phase plus themselves, so the tiles of a phase can run on the domain
   pool in any order — the result is bit-identical for any worker
   count.

   It is NOT promised bit-identical to the untiled k-major triple
   loop once there is more than one block: a phase-3 relaxation reads
   d(i,k) already closed over the WHOLE k-block, a different
   bracketing of the same path sums than the untiled loop's
   one-k-at-a-time order, so individual cells may round differently.
   Both orders converge to correct shortest-path distances; the
   property tests pin single-block runs bitwise and multi-block runs
   to a tight relative tolerance. *)

let default_block = 64
let block = ref default_block

(* Test hook: shrinking the block exercises the multi-block phases 2/3
   at property-test sizes. Production never changes it. *)
let set_fw_block b =
  if b < 1 then invalid_arg "Apsp.set_fw_block: block must be >= 1";
  block := b

let fw_block () = !block

let fw_tile (d : mat) n ~k0 ~k1 ~i0 ~i1 ~j0 ~j1 =
  for k = k0 to k1 - 1 do
    let krow = k * n in
    for i = i0 to i1 - 1 do
      let irow = i * n in
      let dik = Bigarray.Array1.unsafe_get d (irow + k) in
      if dik < infinity then
        for j = j0 to j1 - 1 do
          let via = dik +. Bigarray.Array1.unsafe_get d (krow + j) in
          if via < Bigarray.Array1.unsafe_get d (irow + j) then
            Bigarray.Array1.unsafe_set d (irow + j) via
        done
    done
  done

let floyd_warshall_into ?pool g (d : mat) =
  let pool = match pool with Some p -> p | None -> Qp_par.Pool.default () in
  let n = Graph.n_vertices g in
  if Bigarray.Array1.dim d <> n * n then
    invalid_arg "Apsp.floyd_warshall_into: matrix dimension mismatch";
  Bigarray.Array1.fill d infinity;
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set d ((i * n) + i) 0.
  done;
  Graph.iter_edges g (fun u v len ->
      if len < Bigarray.Array1.get d ((u * n) + v) then begin
        Bigarray.Array1.set d ((u * n) + v) len;
        Bigarray.Array1.set d ((v * n) + u) len
      end);
  let block = !block in
  let nb = (n + block - 1) / block in
  let lo b = b * block in
  let hi b = min n ((b + 1) * block) in
  let run_tiles tiles =
    ignore
      (Qp_par.Pool.parallel_init pool (Array.length tiles) (fun t ->
           let kb, ib, jb = tiles.(t) in
           fw_tile d n ~k0:(lo kb) ~k1:(hi kb) ~i0:(lo ib) ~i1:(hi ib)
             ~j0:(lo jb) ~j1:(hi jb)))
  in
  for kb = 0 to nb - 1 do
    (* Phase 1: the diagonal tile, self-dependent, runs alone. *)
    fw_tile d n ~k0:(lo kb) ~k1:(hi kb) ~i0:(lo kb) ~i1:(hi kb) ~j0:(lo kb)
      ~j1:(hi kb);
    (* Phase 2: tiles sharing a block-row or block-column with K. *)
    let phase2 = ref [] in
    for b = 0 to nb - 1 do
      if b <> kb then begin
        phase2 := (kb, kb, b) :: !phase2;
        phase2 := (kb, b, kb) :: !phase2
      end
    done;
    run_tiles (Array.of_list (List.rev !phase2));
    (* Phase 3: everything else. *)
    let phase3 = ref [] in
    for ib = nb - 1 downto 0 do
      if ib <> kb then
        for jb = nb - 1 downto 0 do
          if jb <> kb then phase3 := (kb, ib, jb) :: !phase3
        done
    done;
    run_tiles (Array.of_list !phase3)
  done
