let repeated_dijkstra ?pool g =
  let pool = match pool with Some p -> p | None -> Qp_par.Pool.default () in
  Qp_par.Pool.parallel_init pool (Graph.n_vertices g) (fun src ->
      Dijkstra.distances g src)

let floyd_warshall g =
  let n = Graph.n_vertices g in
  let d = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0.
  done;
  Graph.iter_edges g (fun u v len ->
      if len < d.(u).(v) then begin
        d.(u).(v) <- len;
        d.(v).(u) <- len
      end);
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      let dik = d.(i).(k) in
      if dik < infinity then
        for j = 0 to n - 1 do
          let via = dik +. d.(k).(j) in
          if via < d.(i).(j) then d.(i).(j) <- via
        done
    done
  done;
  d
