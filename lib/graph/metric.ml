(* Distances live in one flat row-major Bigarray (float64): entry
   (i, j) at index i*n + j. Compared to the previous boxed
   [float array array], a 10^4-node metric is a single 800 MB block
   instead of 10^4 heap arrays the GC must trace, [submetric]/[scale]
   are straight-line loops, and rows can be handed to worker domains
   as disjoint slices of shared memory. Matrices are immutable by
   convention — every mutating operation works on a fresh copy — so
   handles can be shared freely across domains and cache entries. *)

type mat = Apsp.mat

type t = { n : int; d : mat }

let size t = t.n

(* Per-axis bounds checks: the flat index i*n + j can land inside the
   buffer even when j (or i) is out of range, silently reading a cell
   of the wrong row — so Bigarray's own range check is not enough. *)
let dist t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then
    invalid_arg
      (Printf.sprintf "Metric.dist: index (%d, %d) out of bounds for n=%d" i j
         t.n);
  Bigarray.Array1.unsafe_get t.d ((i * t.n) + j)

let unsafe_dist t i j = Bigarray.Array1.unsafe_get t.d ((i * t.n) + j)

let alloc n : mat =
  Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (n * n)

let copy_mat (d : mat) : mat =
  let c =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
      (Bigarray.Array1.dim d)
  in
  Bigarray.Array1.blit d c;
  c

let of_matrix d =
  let n = Array.length d in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Metric.of_matrix: not square") d;
  for i = 0 to n - 1 do
    if d.(i).(i) <> 0. then invalid_arg "Metric.of_matrix: non-zero diagonal";
    for j = 0 to n - 1 do
      if not (Float.is_finite d.(i).(j)) then
        invalid_arg "Metric.of_matrix: non-finite distance";
      if d.(i).(j) < 0. then invalid_arg "Metric.of_matrix: negative distance";
      if not (Qp_util.Floatx.approx d.(i).(j) d.(j).(i)) then
        invalid_arg "Metric.of_matrix: not symmetric"
    done
  done;
  let flat = alloc n in
  for i = 0 to n - 1 do
    let off = i * n in
    let row = d.(i) in
    for j = 0 to n - 1 do
      Bigarray.Array1.unsafe_set flat (off + j) (Array.unsafe_get row j)
    done
  done;
  { n; d = flat }

(* ------------------------------------------------------------------ *)
(* APSP cache                                                          *)
(* ------------------------------------------------------------------ *)

(* Bench experiments rebuild structurally identical topologies from
   the same generator seed, each paying a full APSP. A small
   fingerprint-keyed cache shares the metric between them; entries
   store the [t] handle itself — one flat block per distinct topology,
   never a boxed copy — so a hit costs a Hashtbl probe and zero
   allocation. Bounded FIFO so long-lived processes cannot grow it
   without limit; mutex-guarded so worker domains can build metrics
   concurrently. The resident-bytes total is tracked on every
   insert/evict and mirrored into the [qp_apsp_cache_bytes] gauge. *)

type fingerprint = int * (int * int * float) list

let cache_capacity = 16
let cache : (fingerprint, t) Hashtbl.t = Hashtbl.create cache_capacity
let cache_order : fingerprint Queue.t = Queue.create ()
let cache_lock = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0
let cache_partial = ref 0
let cache_bytes = ref 0

let entry_bytes m = 8 * Bigarray.Array1.dim m.d

let publish_cache_bytes () =
  Qp_obs.Metrics.set
    (Qp_obs.Metrics.gauge
       ~help:"Bytes of distance-matrix data resident in the APSP cache"
       (Qp_obs.Metrics.current ()) "qp_apsp_cache_bytes")
    (float_of_int !cache_bytes)

let fingerprint g : fingerprint = (Graph.n_vertices g, Graph.edges g)

let cache_find key =
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache key with
      | Some m ->
          incr cache_hits;
          Some m
      | None ->
          incr cache_misses;
          None)

(* Lookup that counts a hit but leaves the miss classification (full
   vs partial) to the caller. *)
let cache_peek key =
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache key with
      | Some m ->
          incr cache_hits;
          Some m
      | None -> None)

let cache_insert key m =
  Mutex.protect cache_lock (fun () ->
      if not (Hashtbl.mem cache key) then begin
        if Hashtbl.length cache >= cache_capacity then begin
          let victim = Queue.pop cache_order in
          (match Hashtbl.find_opt cache victim with
          | Some old -> cache_bytes := !cache_bytes - entry_bytes old
          | None -> ());
          Hashtbl.remove cache victim
        end;
        Hashtbl.add cache key m;
        Queue.push key cache_order;
        cache_bytes := !cache_bytes + entry_bytes m;
        publish_cache_bytes ()
      end)

let apsp_cache_stats () = (!cache_hits, !cache_misses, !cache_partial)

let apsp_cache_bytes () = Mutex.protect cache_lock (fun () -> !cache_bytes)

let reset_apsp_cache () =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.reset cache;
      Queue.clear cache_order;
      cache_hits := 0;
      cache_misses := 0;
      cache_partial := 0;
      cache_bytes := 0;
      publish_cache_bytes ())

(* ------------------------------------------------------------------ *)
(* APSP algorithm selection                                            *)
(* ------------------------------------------------------------------ *)

(* Repeated Dijkstra costs O(n·m log n); blocked Floyd–Warshall is a
   branch-light O(n³) over the flat matrix. On dense graphs
   (m ≈ n²/2) Dijkstra's log factor and heap traffic lose, so switch
   to FW there. The n ≥ 256 floor keeps every seed-size instance on
   the historical Dijkstra path: the two algorithms round
   intermediate sums differently, and solver outputs at seed sizes
   must stay byte-identical across PRs. *)
let fw_min_nodes = 256
let fw_min_density = 0.5

let density g =
  let n = Graph.n_vertices g in
  if n < 2 then 0.
  else
    float_of_int (Graph.n_edges g) /. (float_of_int n *. float_of_int (n - 1) /. 2.)

let compute_apsp g =
  let n = Graph.n_vertices g in
  let d = alloc n in
  if n >= fw_min_nodes && density g >= fw_min_density then
    Apsp.floyd_warshall_into g d
  else Apsp.repeated_dijkstra_into g d;
  { n; d }

let of_graph ?(cache = true) g =
  if not (Graph.is_connected g) then invalid_arg "Metric.of_graph: disconnected graph";
  if not cache then compute_apsp g
  else begin
    let key = fingerprint g in
    match cache_find key with
    | Some m -> m
    | None ->
        (* Compute outside the lock: APSP dominates, and a racing
           duplicate computation is deterministic so either copy may
           land in the cache. *)
        let m = compute_apsp g in
        cache_insert key m;
        m
  end

(* ------------------------------------------------------------------ *)
(* Incremental APSP under edge deltas                                  *)
(* ------------------------------------------------------------------ *)

(* A single-edge length decrease (or edge insertion) updates the
   matrix exactly with one O(n^2) relaxation through the new edge. An
   increase (or removal) can only lengthen paths that ran through the
   edge, so only the rows whose shortest-path tree used it need a
   fresh Dijkstra; the remaining rows are provably unchanged. Deltas
   are applied one edge at a time through a working copy, insertions
   and decreases first so every intermediate graph is a supergraph of
   the (connected) final graph. *)

let relax_through_edge (d : mat) n u v w =
  for i = 0 to n - 1 do
    let irow = i * n in
    let diu = Bigarray.Array1.unsafe_get d (irow + u)
    and div = Bigarray.Array1.unsafe_get d (irow + v) in
    let vrow = v * n and urow = u * n in
    for j = 0 to n - 1 do
      let via =
        Float.min
          (diu +. w +. Bigarray.Array1.unsafe_get d (vrow + j))
          (div +. w +. Bigarray.Array1.unsafe_get d (urow + j))
      in
      if via < Bigarray.Array1.unsafe_get d (irow + j) then
        Bigarray.Array1.unsafe_set d (irow + j) via
    done
  done

(* Rows whose distance to some vertex may have used edge {u,v} at
   length [w_old]: row i is affected iff for some k,
   d(i,k) = d(i,u) + w_old + d(v,k) (or the symmetric form). The eps
   absorbs float summation noise; false positives only cost an extra
   row recompute, never correctness. *)
let affected_rows (d : mat) n u v w_old =
  let eps = 1e-9 in
  let rows = ref [] in
  for i = n - 1 downto 0 do
    let irow = i * n in
    let diu = Bigarray.Array1.unsafe_get d (irow + u)
    and div = Bigarray.Array1.unsafe_get d (irow + v) in
    let vrow = v * n and urow = u * n in
    let hit = ref false in
    let k = ref 0 in
    while (not !hit) && !k < n do
      let dk = Bigarray.Array1.unsafe_get d (irow + !k) in
      if
        dk >= diu +. w_old +. Bigarray.Array1.unsafe_get d (vrow + !k) -. eps
        || dk >= div +. w_old +. Bigarray.Array1.unsafe_get d (urow + !k) -. eps
      then hit := true;
      incr k
    done;
    if !hit then rows := i :: !rows
  done;
  !rows

type edge_delta =
  | Relaxing of int * int * float (* insertion or length decrease *)
  | Tightening of int * int * float (* removal or length increase: old length *)

let classify_deltas old_edges new_edges =
  let tbl_of es =
    let h = Hashtbl.create (List.length es) in
    List.iter (fun (u, v, w) -> Hashtbl.replace h (u, v) w) es;
    h
  in
  let old_t = tbl_of old_edges and new_t = tbl_of new_edges in
  let deltas = ref [] in
  Hashtbl.iter
    (fun (u, v) w_new ->
      match Hashtbl.find_opt old_t (u, v) with
      | None -> deltas := Relaxing (u, v, w_new) :: !deltas
      | Some w_old ->
          if w_new < w_old then deltas := Relaxing (u, v, w_new) :: !deltas
          else if w_new > w_old then
            deltas := Tightening (u, v, w_old) :: !deltas)
    new_t;
  Hashtbl.iter
    (fun (u, v) w_old ->
      if not (Hashtbl.mem new_t (u, v)) then
        deltas := Tightening (u, v, w_old) :: !deltas)
    old_t;
  (* Deterministic order: relaxations first (keeps intermediates
     connected), then by endpoints. *)
  List.sort
    (fun a b ->
      match (a, b) with
      | Relaxing _, Tightening _ -> -1
      | Tightening _, Relaxing _ -> 1
      | Relaxing (u, v, w), Relaxing (u', v', w')
      | Tightening (u, v, w), Tightening (u', v', w') ->
          compare (u, v, w) (u', v', w'))
    !deltas

(* Beyond this many changed edges a fresh APSP is cheaper than the
   per-edge affected-row scans. *)
let max_incremental_deltas = 8

let of_graph_delta ?(cache = true) ~base ~base_graph g =
  let n = Graph.n_vertices g in
  if not (Graph.is_connected g) then
    invalid_arg "Metric.of_graph_delta: disconnected graph";
  let full ~count_miss =
    if count_miss then
      Mutex.protect cache_lock (fun () -> incr cache_misses);
    let m = compute_apsp g in
    if cache then cache_insert (fingerprint g) m;
    m
  in
  if n <> base.n || n <> Graph.n_vertices base_graph then full ~count_miss:true
  else begin
    let key = fingerprint g in
    let cached = if cache then cache_peek key else None in
    match cached with
    | Some m -> m
    | None -> (
        let deltas = classify_deltas (Graph.edges base_graph) (Graph.edges g) in
        match deltas with
        | [] -> { n; d = base.d }
        | _ when List.length deltas > max_incremental_deltas ->
            full ~count_miss:true
        | _ ->
            Mutex.protect cache_lock (fun () -> incr cache_partial);
            let d = copy_mat base.d in
            (* Working graph tracks the edge set matching [d] so the
               per-row Dijkstra after a tightening sees the right
               lengths. *)
            let work = ref (Graph.edges base_graph) in
            List.iter
              (fun delta ->
                match delta with
                | Relaxing (u, v, w) ->
                    work :=
                      (u, v, w)
                      :: List.filter (fun (a, b, _) -> (a, b) <> (u, v)) !work;
                    relax_through_edge d n u v w
                | Tightening (u, v, w_old) ->
                    let rows = affected_rows d n u v w_old in
                    let keep = List.filter (fun (a, b, _) -> (a, b) <> (u, v)) !work in
                    work :=
                      (match Graph.edge_length g u v with
                      | Some w_new -> (u, v, w_new) :: keep
                      | None -> keep);
                    let g_work = Graph.of_edges n !work in
                    List.iter
                      (fun i ->
                        let row = Dijkstra.distances g_work i in
                        let off = i * n in
                        for j = 0 to n - 1 do
                          Bigarray.Array1.unsafe_set d (off + j)
                            (Array.unsafe_get row j)
                        done)
                      rows;
                    (* Restore exact symmetry: column entries of
                       recomputed rows. *)
                    List.iter
                      (fun i ->
                        for j = 0 to n - 1 do
                          Bigarray.Array1.unsafe_set d ((j * n) + i)
                            (Bigarray.Array1.unsafe_get d ((i * n) + j))
                        done)
                      rows)
              deltas;
            if cache then cache_insert key { n; d };
            { n; d })
  end

(* ------------------------------------------------------------------ *)
(* Triangle-inequality validation                                      *)
(* ------------------------------------------------------------------ *)

(* The O(n³) scan is fanned out over the pool one i-row per element.
   Determinism: each row worker scans (j, k) in sequential order, so a
   row's local answer is its lexicographically-least violation; the
   fold below then takes the least violating row. The shared
   [best_row] atomic only lets workers skip rows strictly above a row
   already known to violate — such rows can never be the final answer
   (a smaller violating row exists), so racy pruning cannot change
   the result, only save work. *)
let check_triangle ?(tol = Qp_util.Floatx.eps) ?pool t =
  let pool = match pool with Some p -> p | None -> Qp_par.Pool.default () in
  let n = t.n in
  let d = t.d in
  let best_row = Atomic.make max_int in
  let scan_row i =
    if i > Atomic.get best_row then None
    else begin
      let irow = i * n in
      let found = ref None in
      (try
         for j = 0 to n - 1 do
           let dij = Bigarray.Array1.unsafe_get d (irow + j) in
           let jrow = j * n in
           for k = 0 to n - 1 do
             if
               Bigarray.Array1.unsafe_get d (irow + k)
               > dij +. Bigarray.Array1.unsafe_get d (jrow + k) +. tol
             then begin
               found := Some (i, j, k);
               raise Exit
             end
           done
         done
       with Exit -> ());
      (match !found with
      | Some _ ->
          (* Atomic min: publish i as an upper bound for later rows. *)
          let rec lower () =
            let cur = Atomic.get best_row in
            if i < cur && not (Atomic.compare_and_set best_row cur i) then
              lower ()
          in
          lower ()
      | None -> ());
      !found
    end
  in
  let per_row = Qp_par.Pool.parallel_init pool n scan_row in
  Array.fold_left
    (fun acc r -> match acc with Some _ -> acc | None -> r)
    None per_row

let nodes_by_distance t v0 =
  let order = Array.init t.n (fun i -> i) in
  let row = v0 * t.n in
  Array.sort
    (fun a b ->
      let c =
        compare
          (Bigarray.Array1.get t.d (row + a))
          (Bigarray.Array1.get t.d (row + b))
      in
      if c <> 0 then c else compare a b)
    order;
  order

let diameter t =
  let best = ref 0. in
  for i = 0 to t.n - 1 do
    let irow = i * t.n in
    for j = i + 1 to t.n - 1 do
      let dij = Bigarray.Array1.unsafe_get t.d (irow + j) in
      if dij > !best then best := dij
    done
  done;
  !best

let average_distance t v0 =
  if t.n = 0 then 0.
  else begin
    let sum = ref 0. in
    for v = 0 to t.n - 1 do
      sum := !sum +. Bigarray.Array1.unsafe_get t.d ((v * t.n) + v0)
    done;
    !sum /. float_of_int t.n
  end

let scale t factor =
  if factor <= 0. then invalid_arg "Metric.scale: non-positive factor";
  let d = alloc t.n in
  for idx = 0 to Bigarray.Array1.dim t.d - 1 do
    Bigarray.Array1.unsafe_set d idx
      (Bigarray.Array1.unsafe_get t.d idx *. factor)
  done;
  { n = t.n; d }

let submetric t keep =
  let k = Array.length keep in
  Array.iter (fun v -> if v < 0 || v >= t.n then invalid_arg "Metric.submetric: vertex out of range") keep;
  let d = alloc k in
  for i = 0 to k - 1 do
    let src = keep.(i) * t.n and dst = i * k in
    for j = 0 to k - 1 do
      Bigarray.Array1.unsafe_set d (dst + j)
        (Bigarray.Array1.unsafe_get t.d (src + keep.(j)))
    done
  done;
  { n = k; d }

let pp ppf t = Format.fprintf ppf "metric(n=%d, diam=%.3f)" t.n (diameter t)
