type t = { n : int; d : float array array }

let size t = t.n

let dist t i j = t.d.(i).(j)

let of_matrix d =
  let n = Array.length d in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Metric.of_matrix: not square") d;
  for i = 0 to n - 1 do
    if d.(i).(i) <> 0. then invalid_arg "Metric.of_matrix: non-zero diagonal";
    for j = 0 to n - 1 do
      if not (Float.is_finite d.(i).(j)) then
        invalid_arg "Metric.of_matrix: non-finite distance";
      if d.(i).(j) < 0. then invalid_arg "Metric.of_matrix: negative distance";
      if not (Qp_util.Floatx.approx d.(i).(j) d.(j).(i)) then
        invalid_arg "Metric.of_matrix: not symmetric"
    done
  done;
  { n; d }

let of_graph g =
  if not (Graph.is_connected g) then invalid_arg "Metric.of_graph: disconnected graph";
  let n = Graph.n_vertices g in
  let d = Array.init n (fun src -> Dijkstra.distances g src) in
  { n; d }

let check_triangle ?(tol = Qp_util.Floatx.eps) t =
  let result = ref None in
  (try
     for i = 0 to t.n - 1 do
       for j = 0 to t.n - 1 do
         for k = 0 to t.n - 1 do
           if t.d.(i).(k) > t.d.(i).(j) +. t.d.(j).(k) +. tol then begin
             result := Some (i, j, k);
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  !result

let nodes_by_distance t v0 =
  let order = Array.init t.n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare t.d.(v0).(a) t.d.(v0).(b) in
      if c <> 0 then c else compare a b)
    order;
  order

let diameter t =
  let best = ref 0. in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      if t.d.(i).(j) > !best then best := t.d.(i).(j)
    done
  done;
  !best

let average_distance t v0 =
  if t.n = 0 then 0.
  else begin
    let sum = ref 0. in
    for v = 0 to t.n - 1 do
      sum := !sum +. t.d.(v).(v0)
    done;
    !sum /. float_of_int t.n
  end

let scale t factor =
  if factor <= 0. then invalid_arg "Metric.scale: non-positive factor";
  { n = t.n; d = Array.map (Array.map (fun x -> x *. factor)) t.d }

let submetric t keep =
  let k = Array.length keep in
  Array.iter (fun v -> if v < 0 || v >= t.n then invalid_arg "Metric.submetric: vertex out of range") keep;
  { n = k; d = Array.init k (fun i -> Array.init k (fun j -> t.d.(keep.(i)).(keep.(j)))) }

let pp ppf t = Format.fprintf ppf "metric(n=%d, diam=%.3f)" t.n (diameter t)
