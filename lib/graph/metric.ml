type t = { n : int; d : float array array }

let size t = t.n

let dist t i j = t.d.(i).(j)

let of_matrix d =
  let n = Array.length d in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Metric.of_matrix: not square") d;
  for i = 0 to n - 1 do
    if d.(i).(i) <> 0. then invalid_arg "Metric.of_matrix: non-zero diagonal";
    for j = 0 to n - 1 do
      if not (Float.is_finite d.(i).(j)) then
        invalid_arg "Metric.of_matrix: non-finite distance";
      if d.(i).(j) < 0. then invalid_arg "Metric.of_matrix: negative distance";
      if not (Qp_util.Floatx.approx d.(i).(j) d.(j).(i)) then
        invalid_arg "Metric.of_matrix: not symmetric"
    done
  done;
  { n; d }

(* ------------------------------------------------------------------ *)
(* APSP cache                                                          *)
(* ------------------------------------------------------------------ *)

(* Bench experiments rebuild structurally identical topologies from
   the same generator seed, each paying a full APSP. A small
   fingerprint-keyed cache shares the distance matrix between them;
   the matrices are immutable by convention (every Metric operation
   copies), so sharing is safe. Bounded FIFO so long-lived processes
   cannot grow it without limit; mutex-guarded so worker domains can
   build metrics concurrently. *)

type fingerprint = int * (int * int * float) list

let cache_capacity = 16
let cache : (fingerprint, float array array) Hashtbl.t = Hashtbl.create cache_capacity
let cache_order : fingerprint Queue.t = Queue.create ()
let cache_lock = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0

let fingerprint g : fingerprint = (Graph.n_vertices g, Graph.edges g)

let cache_find key =
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache key with
      | Some d ->
          incr cache_hits;
          Some d
      | None ->
          incr cache_misses;
          None)

let cache_insert key d =
  Mutex.protect cache_lock (fun () ->
      if not (Hashtbl.mem cache key) then begin
        if Hashtbl.length cache >= cache_capacity then
          Hashtbl.remove cache (Queue.pop cache_order);
        Hashtbl.add cache key d;
        Queue.push key cache_order
      end)

let apsp_cache_stats () = (!cache_hits, !cache_misses)

let reset_apsp_cache () =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.reset cache;
      Queue.clear cache_order;
      cache_hits := 0;
      cache_misses := 0)

let of_graph ?(cache = true) g =
  if not (Graph.is_connected g) then invalid_arg "Metric.of_graph: disconnected graph";
  let n = Graph.n_vertices g in
  if not cache then { n; d = Apsp.repeated_dijkstra g }
  else begin
    let key = fingerprint g in
    match cache_find key with
    | Some d -> { n; d }
    | None ->
        (* Compute outside the lock: APSP dominates, and a racing
           duplicate computation is deterministic so either copy may
           land in the cache. *)
        let d = Apsp.repeated_dijkstra g in
        cache_insert key d;
        { n; d }
  end

let check_triangle ?(tol = Qp_util.Floatx.eps) t =
  let result = ref None in
  (try
     for i = 0 to t.n - 1 do
       for j = 0 to t.n - 1 do
         for k = 0 to t.n - 1 do
           if t.d.(i).(k) > t.d.(i).(j) +. t.d.(j).(k) +. tol then begin
             result := Some (i, j, k);
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  !result

let nodes_by_distance t v0 =
  let order = Array.init t.n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare t.d.(v0).(a) t.d.(v0).(b) in
      if c <> 0 then c else compare a b)
    order;
  order

let diameter t =
  let best = ref 0. in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      if t.d.(i).(j) > !best then best := t.d.(i).(j)
    done
  done;
  !best

let average_distance t v0 =
  if t.n = 0 then 0.
  else begin
    let sum = ref 0. in
    for v = 0 to t.n - 1 do
      sum := !sum +. t.d.(v).(v0)
    done;
    !sum /. float_of_int t.n
  end

let scale t factor =
  if factor <= 0. then invalid_arg "Metric.scale: non-positive factor";
  { n = t.n; d = Array.map (Array.map (fun x -> x *. factor)) t.d }

let submetric t keep =
  let k = Array.length keep in
  Array.iter (fun v -> if v < 0 || v >= t.n then invalid_arg "Metric.submetric: vertex out of range") keep;
  { n = k; d = Array.init k (fun i -> Array.init k (fun j -> t.d.(keep.(i)).(keep.(j)))) }

let pp ppf t = Format.fprintf ppf "metric(n=%d, diam=%.3f)" t.n (diameter t)
