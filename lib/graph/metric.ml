type t = { n : int; d : float array array }

let size t = t.n

let dist t i j = t.d.(i).(j)

let of_matrix d =
  let n = Array.length d in
  Array.iter (fun row -> if Array.length row <> n then invalid_arg "Metric.of_matrix: not square") d;
  for i = 0 to n - 1 do
    if d.(i).(i) <> 0. then invalid_arg "Metric.of_matrix: non-zero diagonal";
    for j = 0 to n - 1 do
      if not (Float.is_finite d.(i).(j)) then
        invalid_arg "Metric.of_matrix: non-finite distance";
      if d.(i).(j) < 0. then invalid_arg "Metric.of_matrix: negative distance";
      if not (Qp_util.Floatx.approx d.(i).(j) d.(j).(i)) then
        invalid_arg "Metric.of_matrix: not symmetric"
    done
  done;
  { n; d }

(* ------------------------------------------------------------------ *)
(* APSP cache                                                          *)
(* ------------------------------------------------------------------ *)

(* Bench experiments rebuild structurally identical topologies from
   the same generator seed, each paying a full APSP. A small
   fingerprint-keyed cache shares the distance matrix between them;
   the matrices are immutable by convention (every Metric operation
   copies), so sharing is safe. Bounded FIFO so long-lived processes
   cannot grow it without limit; mutex-guarded so worker domains can
   build metrics concurrently. *)

type fingerprint = int * (int * int * float) list

let cache_capacity = 16
let cache : (fingerprint, float array array) Hashtbl.t = Hashtbl.create cache_capacity
let cache_order : fingerprint Queue.t = Queue.create ()
let cache_lock = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0
let cache_partial = ref 0

let fingerprint g : fingerprint = (Graph.n_vertices g, Graph.edges g)

let cache_find key =
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache key with
      | Some d ->
          incr cache_hits;
          Some d
      | None ->
          incr cache_misses;
          None)

(* Lookup that counts a hit but leaves the miss classification (full
   vs partial) to the caller. *)
let cache_peek key =
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt cache key with
      | Some d ->
          incr cache_hits;
          Some d
      | None -> None)

let cache_insert key d =
  Mutex.protect cache_lock (fun () ->
      if not (Hashtbl.mem cache key) then begin
        if Hashtbl.length cache >= cache_capacity then
          Hashtbl.remove cache (Queue.pop cache_order);
        Hashtbl.add cache key d;
        Queue.push key cache_order
      end)

let apsp_cache_stats () = (!cache_hits, !cache_misses, !cache_partial)

let reset_apsp_cache () =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.reset cache;
      Queue.clear cache_order;
      cache_hits := 0;
      cache_misses := 0;
      cache_partial := 0)

let of_graph ?(cache = true) g =
  if not (Graph.is_connected g) then invalid_arg "Metric.of_graph: disconnected graph";
  let n = Graph.n_vertices g in
  if not cache then { n; d = Apsp.repeated_dijkstra g }
  else begin
    let key = fingerprint g in
    match cache_find key with
    | Some d -> { n; d }
    | None ->
        (* Compute outside the lock: APSP dominates, and a racing
           duplicate computation is deterministic so either copy may
           land in the cache. *)
        let d = Apsp.repeated_dijkstra g in
        cache_insert key d;
        { n; d }
  end

(* ------------------------------------------------------------------ *)
(* Incremental APSP under edge deltas                                  *)
(* ------------------------------------------------------------------ *)

(* A single-edge length decrease (or edge insertion) updates the
   matrix exactly with one O(n^2) relaxation through the new edge. An
   increase (or removal) can only lengthen paths that ran through the
   edge, so only the rows whose shortest-path tree used it need a
   fresh Dijkstra; the remaining rows are provably unchanged. Deltas
   are applied one edge at a time through a working copy, insertions
   and decreases first so every intermediate graph is a supergraph of
   the (connected) final graph. *)

let relax_through_edge d n u v w =
  for i = 0 to n - 1 do
    let diu = d.(i).(u) and div = d.(i).(v) in
    for j = 0 to n - 1 do
      let via = Float.min (diu +. w +. d.(v).(j)) (div +. w +. d.(u).(j)) in
      if via < d.(i).(j) then d.(i).(j) <- via
    done
  done

(* Rows whose distance to some vertex may have used edge {u,v} at
   length [w_old]: row i is affected iff for some k,
   d(i,k) = d(i,u) + w_old + d(v,k) (or the symmetric form). The eps
   absorbs float summation noise; false positives only cost an extra
   row recompute, never correctness. *)
let affected_rows d n u v w_old =
  let eps = 1e-9 in
  let rows = ref [] in
  for i = n - 1 downto 0 do
    let diu = d.(i).(u) and div = d.(i).(v) in
    let hit = ref false in
    let k = ref 0 in
    while (not !hit) && !k < n do
      let dk = d.(i).(!k) in
      if
        dk >= diu +. w_old +. d.(v).(!k) -. eps
        || dk >= div +. w_old +. d.(u).(!k) -. eps
      then hit := true;
      incr k
    done;
    if !hit then rows := i :: !rows
  done;
  !rows

type edge_delta =
  | Relaxing of int * int * float (* insertion or length decrease *)
  | Tightening of int * int * float (* removal or length increase: old length *)

let classify_deltas old_edges new_edges =
  let tbl_of es =
    let h = Hashtbl.create (List.length es) in
    List.iter (fun (u, v, w) -> Hashtbl.replace h (u, v) w) es;
    h
  in
  let old_t = tbl_of old_edges and new_t = tbl_of new_edges in
  let deltas = ref [] in
  Hashtbl.iter
    (fun (u, v) w_new ->
      match Hashtbl.find_opt old_t (u, v) with
      | None -> deltas := Relaxing (u, v, w_new) :: !deltas
      | Some w_old ->
          if w_new < w_old then deltas := Relaxing (u, v, w_new) :: !deltas
          else if w_new > w_old then
            deltas := Tightening (u, v, w_old) :: !deltas)
    new_t;
  Hashtbl.iter
    (fun (u, v) w_old ->
      if not (Hashtbl.mem new_t (u, v)) then
        deltas := Tightening (u, v, w_old) :: !deltas)
    old_t;
  (* Deterministic order: relaxations first (keeps intermediates
     connected), then by endpoints. *)
  List.sort
    (fun a b ->
      match (a, b) with
      | Relaxing _, Tightening _ -> -1
      | Tightening _, Relaxing _ -> 1
      | Relaxing (u, v, w), Relaxing (u', v', w')
      | Tightening (u, v, w), Tightening (u', v', w') ->
          compare (u, v, w) (u', v', w'))
    !deltas

(* Beyond this many changed edges a fresh APSP is cheaper than the
   per-edge affected-row scans. *)
let max_incremental_deltas = 8

let of_graph_delta ?(cache = true) ~base ~base_graph g =
  let n = Graph.n_vertices g in
  if not (Graph.is_connected g) then
    invalid_arg "Metric.of_graph_delta: disconnected graph";
  let full ~count_miss =
    if count_miss then
      Mutex.protect cache_lock (fun () -> incr cache_misses);
    let d = Apsp.repeated_dijkstra g in
    if cache then cache_insert (fingerprint g) d;
    { n; d }
  in
  if n <> base.n || n <> Graph.n_vertices base_graph then full ~count_miss:true
  else begin
    let key = fingerprint g in
    let cached = if cache then cache_peek key else None in
    match cached with
    | Some d -> { n; d }
    | None -> (
        let deltas = classify_deltas (Graph.edges base_graph) (Graph.edges g) in
        match deltas with
        | [] -> { n; d = base.d }
        | _ when List.length deltas > max_incremental_deltas ->
            full ~count_miss:true
        | _ ->
            Mutex.protect cache_lock (fun () -> incr cache_partial);
            let d = Array.map Array.copy base.d in
            (* Working graph tracks the edge set matching [d] so the
               per-row Dijkstra after a tightening sees the right
               lengths. *)
            let work = ref (Graph.edges base_graph) in
            List.iter
              (fun delta ->
                match delta with
                | Relaxing (u, v, w) ->
                    work :=
                      (u, v, w)
                      :: List.filter (fun (a, b, _) -> (a, b) <> (u, v)) !work;
                    relax_through_edge d n u v w
                | Tightening (u, v, w_old) ->
                    let rows = affected_rows d n u v w_old in
                    let keep = List.filter (fun (a, b, _) -> (a, b) <> (u, v)) !work in
                    work :=
                      (match Graph.edge_length g u v with
                      | Some w_new -> (u, v, w_new) :: keep
                      | None -> keep);
                    let g_work = Graph.of_edges n !work in
                    List.iter
                      (fun i -> d.(i) <- Dijkstra.distances g_work i)
                      rows;
                    (* Restore exact symmetry: column entries of
                       recomputed rows. *)
                    List.iter
                      (fun i ->
                        for j = 0 to n - 1 do
                          d.(j).(i) <- d.(i).(j)
                        done)
                      rows)
              deltas;
            if cache then cache_insert key d;
            { n; d })
  end

let check_triangle ?(tol = Qp_util.Floatx.eps) t =
  let result = ref None in
  (try
     for i = 0 to t.n - 1 do
       for j = 0 to t.n - 1 do
         for k = 0 to t.n - 1 do
           if t.d.(i).(k) > t.d.(i).(j) +. t.d.(j).(k) +. tol then begin
             result := Some (i, j, k);
             raise Exit
           end
         done
       done
     done
   with Exit -> ());
  !result

let nodes_by_distance t v0 =
  let order = Array.init t.n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare t.d.(v0).(a) t.d.(v0).(b) in
      if c <> 0 then c else compare a b)
    order;
  order

let diameter t =
  let best = ref 0. in
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      if t.d.(i).(j) > !best then best := t.d.(i).(j)
    done
  done;
  !best

let average_distance t v0 =
  if t.n = 0 then 0.
  else begin
    let sum = ref 0. in
    for v = 0 to t.n - 1 do
      sum := !sum +. t.d.(v).(v0)
    done;
    !sum /. float_of_int t.n
  end

let scale t factor =
  if factor <= 0. then invalid_arg "Metric.scale: non-positive factor";
  { n = t.n; d = Array.map (Array.map (fun x -> x *. factor)) t.d }

let submetric t keep =
  let k = Array.length keep in
  Array.iter (fun v -> if v < 0 || v >= t.n then invalid_arg "Metric.submetric: vertex out of range") keep;
  { n = k; d = Array.init k (fun i -> Array.init k (fun j -> t.d.(keep.(i)).(keep.(j)))) }

let pp ppf t = Format.fprintf ppf "metric(n=%d, diam=%.3f)" t.n (diameter t)
