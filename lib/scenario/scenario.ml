module Json = Qp_obs.Json
module Qp_error = Qp_util.Qp_error

let schema = "qp-scenario-spec/1"

type t = {
  name : string;
  topology : string;
  nodes : int;
  system : string;
  read_fraction : float;
  skew : Clients.skew;
  offered_loads : float array;
  accesses_per_client : int;
  service : Qp_sim.Access_sim.service;
  protocol : Qp_sim.Access_sim.protocol;
  alg : string;
  alpha : float;
  cap_slack : float;
  seed : int;
}

let default =
  {
    name = "unnamed";
    topology = "region:aws-3";
    nodes = 9;
    system = "grid:3";
    read_fraction = 0.5;
    skew = Clients.Uniform;
    offered_loads = [| 1.0 |];
    accesses_per_client = 200;
    service = Qp_sim.Access_sim.Exponential 1.0;
    protocol = Qp_sim.Access_sim.Parallel;
    alg = "auto";
    alpha = 2.0;
    cap_slack = 1.0;
    seed = 1;
  }

let service_of_string s =
  match String.split_on_char ':' s with
  | [ "zero" ] -> Ok Qp_sim.Access_sim.Zero
  | [ "fixed"; x ] | [ "exp"; x ] -> (
      match float_of_string_opt x with
      | Some v when Float.is_finite v && v > 0. ->
          Ok
            (match String.split_on_char ':' s with
            | "fixed" :: _ -> Qp_sim.Access_sim.Fixed v
            | _ -> Qp_sim.Access_sim.Exponential v)
      | _ -> Qp_error.invalid_instancef "bad service time %S" s)
  | _ ->
      Qp_error.invalid_instancef "unknown service %S (zero|fixed:X|exp:X)" s

let service_to_string = function
  | Qp_sim.Access_sim.Zero -> "zero"
  | Qp_sim.Access_sim.Fixed v -> Printf.sprintf "fixed:%g" v
  | Qp_sim.Access_sim.Exponential v -> Printf.sprintf "exp:%g" v

let protocol_to_string = function
  | Qp_sim.Access_sim.Parallel -> "parallel"
  | Qp_sim.Access_sim.Sequential -> "sequential"

(* ------------------------------------------------------------------ *)
(* Spec-file parsing (qp-scenario-spec/1, via the dependency-free      *)
(* telemetry JSON — no new parser dependency)                          *)
(* ------------------------------------------------------------------ *)

let known_keys =
  [ "schema"; "name"; "topology"; "nodes"; "system"; "read_fraction";
    "clients"; "offered_loads"; "accesses_per_client"; "service";
    "protocol"; "alg"; "alpha"; "cap_slack"; "seed" ]

let ( let* ) = Qp_error.( let* )

let opt_field json key conv ~default =
  match Json.member key json with
  | None -> Ok default
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Qp_error.invalid_instancef "scenario: bad %S field" key)

let req_field json key conv =
  match Json.member key json with
  | None -> Qp_error.invalid_instancef "scenario: missing %S field" key
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Qp_error.invalid_instancef "scenario: bad %S field" key)

let to_float_array = function
  | Json.List xs ->
      let rec go acc = function
        | [] -> Some (Array.of_list (List.rev acc))
        | x :: rest -> (
            match Json.to_float x with
            | Some f -> go (f :: acc) rest
            | None -> None)
      in
      go [] xs
  | _ -> None

let skew_of_json json =
  match Json.member "clients" json with
  | None -> Ok Clients.Uniform
  | Some c -> (
      let* kind = req_field c "skew" Json.to_str in
      match kind with
      | "uniform" -> Ok Clients.Uniform
      | "zipf" ->
          let* s = opt_field c "exponent" Json.to_float ~default:1.0 in
          Ok (Clients.Zipf s)
      | "regions" ->
          let* w =
            req_field c "weights" (fun v -> to_float_array v)
          in
          Ok (Clients.Region_weights w)
      | other ->
          Qp_error.invalid_instancef
            "scenario: unknown client skew %S (uniform|zipf|regions)" other)

let validate spec =
  if spec.nodes <= 0 then
    Qp_error.invalid_instancef "scenario: nodes must be positive (got %d)"
      spec.nodes
  else if
    not
      (Float.is_finite spec.read_fraction
      && spec.read_fraction >= 0. && spec.read_fraction <= 1.)
  then
    Qp_error.invalid_instancef
      "scenario: read_fraction must be in [0, 1] (got %g)" spec.read_fraction
  else if Array.length spec.offered_loads = 0 then
    Qp_error.invalid_instancef "scenario: offered_loads must be non-empty"
  else if
    Array.exists
      (fun l -> not (Float.is_finite l) || l <= 0.)
      spec.offered_loads
  then
    Qp_error.invalid_instancef
      "scenario: offered_loads must be positive and finite"
  else if spec.accesses_per_client <= 0 then
    Qp_error.invalid_instancef
      "scenario: accesses_per_client must be positive (got %d)"
      spec.accesses_per_client
  else if not (Float.is_finite spec.cap_slack && spec.cap_slack > 0.) then
    Qp_error.invalid_instancef
      "scenario: cap_slack must be positive and finite (got %g)" spec.cap_slack
  else Ok spec

let of_json json =
  match json with
  | Json.Obj fields ->
      let unknown =
        List.filter (fun (k, _) -> not (List.mem k known_keys)) fields
      in
      if unknown <> [] then
        Qp_error.invalid_instancef "scenario: unknown field %S"
          (fst (List.hd unknown))
      else
        let* s = req_field json "schema" Json.to_str in
        if s <> schema then
          Qp_error.invalid_instancef
            "scenario: schema %S unsupported (want %s)" s schema
        else
          let* name = req_field json "name" Json.to_str in
          let* topology = req_field json "topology" Json.to_str in
          let* nodes = req_field json "nodes" Json.to_int in
          let* system = req_field json "system" Json.to_str in
          let* read_fraction =
            opt_field json "read_fraction" Json.to_float
              ~default:default.read_fraction
          in
          let* skew = skew_of_json json in
          let* offered_loads =
            opt_field json "offered_loads" to_float_array
              ~default:default.offered_loads
          in
          let* accesses_per_client =
            opt_field json "accesses_per_client" Json.to_int
              ~default:default.accesses_per_client
          in
          let* service_name =
            opt_field json "service" Json.to_str
              ~default:(service_to_string default.service)
          in
          let* service = service_of_string service_name in
          let* protocol_name =
            opt_field json "protocol" Json.to_str ~default:"parallel"
          in
          let* protocol =
            match protocol_name with
            | "parallel" -> Ok Qp_sim.Access_sim.Parallel
            | "sequential" -> Ok Qp_sim.Access_sim.Sequential
            | other ->
                Qp_error.invalid_instancef
                  "scenario: unknown protocol %S (parallel|sequential)" other
          in
          let* alg = opt_field json "alg" Json.to_str ~default:default.alg in
          let* alpha =
            opt_field json "alpha" Json.to_float ~default:default.alpha
          in
          let* cap_slack =
            opt_field json "cap_slack" Json.to_float ~default:default.cap_slack
          in
          let* seed = opt_field json "seed" Json.to_int ~default:default.seed in
          let spec =
            { name; topology; nodes; system; read_fraction; skew;
              offered_loads; accesses_per_client; service; protocol; alg;
              alpha; cap_slack; seed }
          in
          validate spec
  | _ -> Qp_error.invalid_instancef "scenario: spec must be a JSON object"

let of_string s =
  match Json.of_string s with
  | exception Json.Parse_error msg ->
      Qp_error.invalid_instancef "scenario: malformed JSON: %s" msg
  | json -> of_json json

let region_table spec =
  match String.split_on_char ':' spec.topology with
  | [ "region"; name ] -> (
      match Qp_instance.Region.find name with Ok t -> Some t | Error _ -> None)
  | _ -> None

let pp ppf spec =
  Format.fprintf ppf
    "scenario(%s: topology=%s nodes=%d system=%s rho=%g skew=%a loads=%d \
     alg=%s seed=%d)"
    spec.name spec.topology spec.nodes spec.system spec.read_fraction
    Clients.pp spec.skew
    (Array.length spec.offered_loads)
    spec.alg spec.seed
