(** Scenario specifications: one JSON file describing a geo-distributed
    workload end to end — topology, quorum system, read/write mix,
    client skew and an offered-load sweep.

    The spec format is [qp-scenario-spec/1], parsed with the
    dependency-free telemetry JSON ({!Qp_obs.Json}):

    {v
    { "schema": "qp-scenario-spec/1",
      "name": "aws3-read-heavy",
      "topology": "region:aws-3",
      "nodes": 9,
      "system": "rw-grid:3",
      "read_fraction": 0.9,
      "clients": { "skew": "zipf", "exponent": 1.0 },
      "offered_loads": [0.5, 1.0, 2.0],
      "accesses_per_client": 200,
      "service": "exp:1",
      "alg": "auto",
      "seed": 1 }
    v}

    [schema], [name], [topology], [nodes] and [system] are required;
    everything else defaults ({!default}). [system] accepts the plain
    quorum-system grammar (symmetric reads = writes) or the
    asymmetric read/write families ({!Qp_quorum.Rw_qs.rw_names}).
    Unknown top-level fields are rejected — a typoed knob fails loudly
    instead of silently running the default. *)

type t = {
  name : string;
  topology : string;  (** any [Spec.build_topology] name, e.g. ["region:aws-3"] *)
  nodes : int;
  system : string;  (** plain system grammar or an rw family *)
  read_fraction : float;  (** rho in [0, 1]: share of accesses that are reads *)
  skew : Clients.skew;
  offered_loads : float array;
      (** arrival-rate multipliers swept into the latency–throughput curve *)
  accesses_per_client : int;
  service : Qp_sim.Access_sim.service;
  protocol : Qp_sim.Access_sim.protocol;
  alg : string;  (** solver registry name *)
  alpha : float;
  cap_slack : float;
  seed : int;
}

val default : t
(** The field defaults merged under a parsed spec: rho 0.5, uniform
    clients, one offered load 1.0, 200 accesses per client, [exp:1]
    service, parallel protocol, [auto] solver, alpha 2, slack 1,
    seed 1. *)

val schema : string
(** ["qp-scenario-spec/1"]. *)

val of_json : Qp_obs.Json.t -> (t, Qp_util.Qp_error.t) result
val of_string : string -> (t, Qp_util.Qp_error.t) result
(** Parse and validate a spec. All failures are
    [Error (Invalid_instance _)] naming the offending field. *)

val validate : t -> (t, Qp_util.Qp_error.t) result
(** Range checks on a directly-constructed spec (the same ones
    {!of_json} applies). *)

val region_table : t -> Qp_instance.Region.t option
(** The region table of a ["region:NAME"] topology, [None] otherwise
    (including unknown table names — topology errors surface when the
    runner builds the graph). *)

val service_of_string :
  string -> (Qp_sim.Access_sim.service, Qp_util.Qp_error.t) result
(** ["zero" | "fixed:X" | "exp:X"] (X = mean service time). *)

val service_to_string : Qp_sim.Access_sim.service -> string
val protocol_to_string : Qp_sim.Access_sim.protocol -> string
val pp : Format.formatter -> t -> unit
