(** Skewed client populations for scenario workloads.

    A population is a rate vector over the topology's nodes — the
    [client_rates] of the placement problem and the per-client arrival
    weights of the access simulation. All constructors normalize to
    sum 1, so the vector is a distribution: a node's entry is its share
    of the offered load. *)

type skew =
  | Uniform  (** every node the same share *)
  | Zipf of float
      (** [Zipf s]: the rank-[k] node gets share proportional to
          [1/(k+1)^s]; ranks are a seeded permutation of the nodes, so
          the hot spot moves with the seed. Requires [s > 0]. *)
  | Region_weights of float array
      (** One weight per region of the topology's region table, split
          evenly over that region's nodes. Zero silences a region
          (rate-zero clients never issue accesses). *)

val rates :
  ?table:Qp_instance.Region.t ->
  skew ->
  nodes:int ->
  seed:int ->
  (float array, Qp_util.Qp_error.t) result
(** The rate vector of a population. Deterministic: equal
    [(skew, nodes, seed)] (and table) yield bitwise-equal vectors; the
    result always sums to 1 up to roundoff. [Region_weights] requires
    [table] (the scenario's [region:NAME] topology) and a weight per
    region. *)

val pp : Format.formatter -> skew -> unit
