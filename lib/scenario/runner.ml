module Rng = Qp_util.Rng
module Stats = Qp_util.Stats
module Qp_error = Qp_util.Qp_error
module Json = Qp_obs.Json
module Metric = Qp_graph.Metric
module Strategy = Qp_quorum.Strategy
module Rw_qs = Qp_quorum.Rw_qs
module Spec = Qp_instance.Spec
module Region = Qp_instance.Region
module Problem = Qp_place.Problem
module Solver = Qp_place.Solver
module Delay = Qp_place.Delay
module Access_sim = Qp_sim.Access_sim

let schema = "qp-scenario/1"

type cell = {
  offered : float;
  throughput : float;
  accesses : int;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

type region_cdf = { region : string; count : int; cdf : (float * float) list }

type t = {
  spec : Scenario.t;
  regions : string array;
  outcome : Qp_place.Outcome.t;
  read_delay : float;
  write_delay : float;
  sym_read_delay : float;
  curve : cell array;
  region_cdfs : region_cdf list;
}

let ( let* ) = Qp_error.( let* )

(* The symmetric baseline the read/write-aware placement is judged
   against: same topology, same capacities, same solver — only the mix
   differs (equal read/write weight instead of the scenario's rho). *)
let sym_fraction = 0.5

let resolve_system name =
  match Rw_qs.of_string_opt name with
  | Some r -> r
  | None -> (
      match Spec.build_system name with
      | Ok s -> Ok (Rw_qs.of_system s)
      | Error e -> Error e)

let resolve_system name =
  match resolve_system name with
  | Ok _ as ok -> ok
  | Error (Qp_error.Invalid_instance msg) ->
      Error
        (Qp_error.Invalid_instance
           (Printf.sprintf "%s; rw systems: %s" msg Rw_qs.rw_names))
  | Error _ as e -> e

(* Capacities sized like [Spec.uniform_problem] — slack times the
   maximum element load — but against BOTH strategies (the scenario mix
   and the symmetric baseline), so the two solves run under identical
   capacities and at slack >= 1 both are feasible: the comparison
   isolates the mix, not the budget. *)
let capacities ~nodes ~system ~slack strategies =
  let max_load =
    List.fold_left
      (fun acc strategy ->
        Array.fold_left Float.max acc (Strategy.loads system strategy))
      0. strategies
  in
  Array.make nodes (slack *. max_load)

let delay_of_protocol protocol problem placement =
  match protocol with
  | Access_sim.Parallel -> Delay.avg_max_delay problem placement
  | Access_sim.Sequential -> Delay.avg_total_delay problem placement

let solve ~alg ~params problem =
  let* solver = Solver.find alg in
  solver.Solver.solve params problem

let simulate (spec : Scenario.t) problem placement offered =
  let report =
    Access_sim.run
      {
        problem;
        placement;
        protocol = spec.protocol;
        round_trip = true;
        service = spec.service;
        jitter = 0.;
        accesses_per_client = spec.accesses_per_client;
        arrival_rate = offered;
        seed = spec.seed;
      }
  in
  let cell =
    {
      offered;
      throughput =
        (if report.makespan > 0. then
           float_of_int report.n_accesses /. report.makespan
         else 0.);
      accesses = report.n_accesses;
      mean = report.mean_delay;
      p50 = report.delay_summary.Stats.p50;
      p95 = report.delay_summary.Stats.p95;
      max = report.delay_summary.Stats.max;
    }
  in
  (cell, report.per_client_mean)

(* Per-region delay CDFs over the per-client mean delays of the first
   curve cell. Every region of the table gets a key — an empty region
   (all its clients rate-zero) emits a degenerate cell (count 0, empty
   cdf) through the tiny-sample-safe [Stats.cdf] rather than an
   exception. Without a region table the whole population lands under
   one "all" key, so the record shape is uniform across topologies. *)
let region_cdfs table ~nodes ~rates per_client_mean =
  let active region_nodes =
    Array.of_list
      (List.filter_map
         (fun v -> if rates.(v) > 0. then Some per_client_mean.(v) else None)
         region_nodes)
  in
  let groups =
    match table with
    | Some t ->
        List.init (Region.n_regions t) (fun r ->
            ( (Region.regions t).(r),
              active (Region.nodes_of_region t ~nodes r) ))
    | None -> [ ("all", active (List.init nodes (fun v -> v))) ]
  in
  List.map
    (fun (region, samples) ->
      { region; count = Array.length samples; cdf = Stats.cdf samples })
    groups

let run ?(pool = Qp_par.Pool.default ()) (spec : Scenario.t) =
  let* spec = Scenario.validate spec in
  let rng = Rng.create spec.seed in
  let* graph = Spec.build_topology spec.topology spec.nodes rng in
  let* rw = resolve_system spec.system in
  let table = Scenario.region_table spec in
  let* rates = Clients.rates ?table spec.skew ~nodes:spec.nodes ~seed:spec.seed in
  let system = Rw_qs.combined rw in
  let read = Rw_qs.uniform_read rw in
  let write = Rw_qs.uniform_write rw in
  let mixed = Rw_qs.mixed rw ~read ~write ~read_fraction:spec.read_fraction in
  let sym = Rw_qs.mixed rw ~read ~write ~read_fraction:sym_fraction in
  let caps =
    capacities ~nodes:spec.nodes ~system ~slack:spec.cap_slack [ mixed; sym ]
  in
  Qp_error.guard @@ fun () ->
  let metric = Metric.of_graph graph in
  let problem_of strategy =
    Problem.make_qpp ~metric ~capacities:caps ~system ~strategy
      ~client_rates:rates ()
  in
  let problem = problem_of mixed in
  let hints_spec = { Spec.default with topology = spec.topology;
                     nodes = spec.nodes; system = spec.system } in
  let topology_hint, system_hint = Spec.solver_hints hints_spec in
  let params =
    { Solver.default_params with alpha = spec.alpha; seed = spec.seed;
      topology_hint; system_hint }
  in
  let* outcome = solve ~alg:spec.alg ~params problem in
  let* sym_outcome = solve ~alg:spec.alg ~params (problem_of sym) in
  let read_view = problem_of (Rw_qs.read_only rw ~read) in
  let write_view = problem_of (Rw_qs.write_only rw ~write) in
  let read_delay =
    delay_of_protocol spec.protocol read_view outcome.Qp_place.Outcome.placement
  in
  let write_delay =
    delay_of_protocol spec.protocol write_view
      outcome.Qp_place.Outcome.placement
  in
  let sym_read_delay =
    delay_of_protocol spec.protocol read_view
      sym_outcome.Qp_place.Outcome.placement
  in
  let cells =
    Qp_par.Pool.parallel_map pool
      (simulate spec problem outcome.Qp_place.Outcome.placement)
      spec.offered_loads
  in
  let curve = Array.map fst cells in
  let per_client_mean = snd cells.(0) in
  let region_cdfs = region_cdfs table ~nodes:spec.nodes ~rates per_client_mean in
  Ok
    {
      spec;
      regions = (match table with Some t -> Region.regions t | None -> [||]);
      outcome;
      read_delay;
      write_delay;
      sym_read_delay;
      curve;
      region_cdfs;
    }

(* ------------------------------------------------------------------ *)
(* qp-scenario/1 record                                                *)
(* ------------------------------------------------------------------ *)

let cell_to_json c =
  Json.Obj
    [
      ("offered", Json.Float c.offered);
      ("throughput", Json.Float c.throughput);
      ("accesses", Json.Int c.accesses);
      ("mean", Json.Float c.mean);
      ("p50", Json.Float c.p50);
      ("p95", Json.Float c.p95);
      ("max", Json.Float c.max);
    ]

let cdf_to_json { region = _; count; cdf } =
  Json.Obj
    [
      ("n", Json.Int count);
      ( "cdf",
        Json.List
          (List.map (fun (q, v) -> Json.List [ Json.Float q; Json.Float v ]) cdf)
      );
    ]

let to_json r =
  let spec = r.spec in
  Json.Obj
    [
      ("schema", Json.String schema);
      ("name", Json.String spec.Scenario.name);
      ("topology", Json.String spec.Scenario.topology);
      ("nodes", Json.Int spec.Scenario.nodes);
      ("system", Json.String spec.Scenario.system);
      ("read_fraction", Json.Float spec.Scenario.read_fraction);
      ("protocol", Json.String (Scenario.protocol_to_string spec.Scenario.protocol));
      ("service", Json.String (Scenario.service_to_string spec.Scenario.service));
      ("alg", Json.String spec.Scenario.alg);
      ("seed", Json.Int spec.Scenario.seed);
      ( "offered_loads",
        Json.List
          (Array.to_list
             (Array.map (fun x -> Json.Float x) spec.Scenario.offered_loads))
      );
      ( "regions",
        Json.List
          (Array.to_list (Array.map (fun s -> Json.String s) r.regions)) );
      ("objective", Json.Float r.outcome.Qp_place.Outcome.objective);
      ("read_delay", Json.Float r.read_delay);
      ("write_delay", Json.Float r.write_delay);
      ("sym_read_delay", Json.Float r.sym_read_delay);
      ("curve", Json.List (Array.to_list (Array.map cell_to_json r.curve)));
      ( "region_cdfs",
        Json.Obj (List.map (fun c -> (c.region, cdf_to_json c)) r.region_cdfs)
      );
    ]
