(** The scenario runner: spec in, [qp-scenario/1] record out.

    {!run} drives the whole pipeline described by a {!Scenario.t}:

    + build the topology (including [region:NAME] tables) and the
      read/write quorum system;
    + derive the skewed client population ({!Clients.rates});
    + solve the placement under the rho-weighted read/write strategy,
      and once more under the symmetric (rho = 0.5) mix with the SAME
      capacities — the baseline the read/write-aware placement is
      compared against;
    + evaluate pure read and write latency of both placements
      (rate-weighted, protocol-matched delay functional);
    + sweep the offered loads through the queueing access simulation
      (round-trip, per-node FIFO service) over the {!Qp_par.Pool},
      producing the latency–throughput curve;
    + group the first cell's per-client mean delays by region into
      delay CDFs (every region keyed, empty ones degenerate).

    Determinism: the sweep is order-preserving over the pool, every
    simulation is seeded from the spec, and no wall-clock enters the
    record — equal specs yield byte-identical records at any [--jobs]. *)

type cell = {
  offered : float;  (** arrival-rate multiplier of this sweep point *)
  throughput : float;  (** completed accesses / simulated makespan *)
  accesses : int;
  mean : float;
  p50 : float;
  p95 : float;
  max : float;
}

type region_cdf = {
  region : string;
  count : int;  (** active (rate > 0) clients in the region *)
  cdf : (float * float) list;
      (** per-client mean delay at deciles; [[]] when [count = 0] *)
}

type t = {
  spec : Scenario.t;
  regions : string array;  (** region names, [[||]] off region tables *)
  outcome : Qp_place.Outcome.t;  (** the rho-mix solve *)
  read_delay : float;  (** pure read latency of [outcome.placement] *)
  write_delay : float;
  sym_read_delay : float;
      (** read latency of the symmetric-mix placement — E20 asserts
          [read_delay <= sym_read_delay] on read-heavy scenarios *)
  curve : cell array;  (** one cell per offered load, in spec order *)
  region_cdfs : region_cdf list;
}

val run :
  ?pool:Qp_par.Pool.t -> Scenario.t -> (t, Qp_util.Qp_error.t) result
(** Never raises: invalid specs, topologies, systems and solver
    failures all come back as [Error]. [pool] defaults to
    {!Qp_par.Pool.default}. *)

val schema : string
(** ["qp-scenario/1"]. *)

val to_json : t -> Qp_obs.Json.t
(** The [qp-scenario/1] record: spec echo, region list, objective,
    read/write/symmetric delays, latency–throughput [curve] and
    [region_cdfs]. Contains no wall-clock or resource fields, so the
    rendering is byte-stable across runs and job counts. *)
