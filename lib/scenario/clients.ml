module Rng = Qp_util.Rng
module Qp_error = Qp_util.Qp_error
module Region = Qp_instance.Region

type skew =
  | Uniform
  | Zipf of float
  | Region_weights of float array

let pp ppf = function
  | Uniform -> Format.fprintf ppf "uniform"
  | Zipf s -> Format.fprintf ppf "zipf:%g" s
  | Region_weights w ->
      Format.fprintf ppf "regions[%s]"
        (String.concat ","
           (List.map (Printf.sprintf "%g") (Array.to_list w)))

let normalize rates =
  let total = Array.fold_left ( +. ) 0. rates in
  Array.map (fun r -> r /. total) rates

(* Zipfian population: node ranks are a seeded permutation of 0..n-1
   (so the "hot" clients are spread over the topology rather than
   always being the low ids), and the rate of the rank-k node is
   1 / (k + 1)^s, normalized to sum 1. Deterministic per (seed, n, s):
   the permutation is the only randomness, drawn from a fresh
   splitmix64 stream. *)
let zipf ~nodes ~seed s =
  let rng = Rng.create seed in
  let rank = Rng.permutation rng nodes in
  normalize
    (Array.init nodes (fun v ->
         1. /. Float.pow (float_of_int (rank.(v) + 1)) s))

(* Per-region weight vector: region r's total rate share is w.(r),
   split evenly over the nodes living in r (round-robin residency, see
   {!Region.region_of_node}). A zero weight silences a whole region —
   its nodes become rate-zero clients the simulator skips. *)
let region_weights table ~nodes w =
  let r = Region.n_regions table in
  if Array.length w <> r then
    Qp_error.invalid_instancef
      "client weights: expected %d region weights for table %s (got %d)" r
      (Region.name table) (Array.length w)
  else if Array.exists (fun x -> not (Float.is_finite x) || x < 0.) w then
    Qp_error.invalid_instancef
      "client weights: weights must be finite and non-negative"
  else if Array.for_all (fun x -> x = 0.) w then
    Qp_error.invalid_instancef "client weights: at least one must be positive"
  else begin
    let per_region_count = Array.make r 0 in
    for v = 0 to nodes - 1 do
      let reg = Region.region_of_node table v in
      per_region_count.(reg) <- per_region_count.(reg) + 1
    done;
    Ok
      (normalize
         (Array.init nodes (fun v ->
              let reg = Region.region_of_node table v in
              if per_region_count.(reg) = 0 then 0.
              else w.(reg) /. float_of_int per_region_count.(reg))))
  end

let rates ?table skew ~nodes ~seed =
  if nodes <= 0 then
    Qp_error.invalid_instancef "client rates: nodes must be positive (got %d)"
      nodes
  else
    match skew with
    | Uniform -> Ok (Array.make nodes (1. /. float_of_int nodes))
    | Zipf s ->
        if not (Float.is_finite s) || s <= 0. then
          Qp_error.invalid_instancef
            "client rates: zipf exponent must be positive (got %g)" s
        else Ok (zipf ~nodes ~seed s)
    | Region_weights w -> (
        match table with
        | None ->
            Qp_error.invalid_instancef
              "client rates: per-region weights need a region:NAME topology"
        | Some t -> region_weights t ~nodes w)
