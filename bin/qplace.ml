(* qplace: command-line front end for the quorum-placement library.

   Subcommands:
     solve       build an instance and place it with a chosen algorithm
     simulate    place and then drive the discrete-event simulator
     gap         print the Appendix-A integrality-gap measurements
     info        describe a quorum system construction
     solvers     list the registered placement algorithms
     resilience  closed-loop engine vs static baseline under churn
     churn       greedy repair vs bounded-safe migration under churn
     scenario    run a qp-scenario-spec/1 geo-workload file end to end
     tail        summarize wide-event JSONL artifacts
   Instances are described by one shared {!Qp_instance.Spec.t} record
   (deterministic from --seed); algorithms are selected by name from
   the {!Qp_place.Solver} registry. Library errors arrive as typed
   {!Qp_util.Qp_error.t} values and map to exit codes:
   infeasible/capacity 1, invalid instance 2, internal 3. *)

module Rng = Qp_util.Rng
module Table = Qp_util.Table
module Qp_error = Qp_util.Qp_error
module Obs = Qp_obs
module Spec = Qp_instance.Spec
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
open Qp_place

let ( let* ) = Qp_error.( let* )

(* ------------------------------------------------------------------ *)
(* Common flags: every instance-driven subcommand shares one spec      *)
(* record plus the telemetry sinks.                                    *)
(* ------------------------------------------------------------------ *)

type common = {
  spec : Spec.t;
  trace : string option;
  metrics : string option;
  wide : string option; (* wide-event JSONL sink *)
}

type run_meta = {
  command : string;
  spec : Spec.t;
  jobs : int; (* resolved worker count (spec.jobs with 0 = all cores) *)
  alpha : float option;
  algorithm : string option;
}

let meta_fields m =
  [ ("command", Obs.Json.String m.command);
    ("topology", Obs.Json.String m.spec.Spec.topology);
    ("nodes", Obs.Json.Int m.spec.Spec.nodes);
    ("system", Obs.Json.String m.spec.Spec.system);
    ("cap_slack", Obs.Json.Float m.spec.Spec.cap_slack);
    ("seed", Obs.Json.Int m.spec.Spec.seed);
    ("jobs", Obs.Json.Int m.jobs) ]
  @ (match m.alpha with Some a -> [ ("alpha", Obs.Json.Float a) ] | None -> [])
  @ match m.algorithm with Some a -> [ ("algorithm", Obs.Json.String a) ] | None -> []

let print_meta m =
  Printf.printf
    "run: %s topology=%s nodes=%d system=%s cap-slack=%g seed=%d jobs=%d%s%s version=%s\n"
    m.command m.spec.Spec.topology m.spec.Spec.nodes m.spec.Spec.system
    m.spec.Spec.cap_slack m.spec.Spec.seed m.jobs
    (match m.alpha with Some a -> Printf.sprintf " alpha=%g" a | None -> "")
    (match m.algorithm with Some a -> " alg=" ^ a | None -> "")
    Obs.Build_info.version

(* --jobs 0 means "all cores"; everything downstream sees the resolved
   count. All parallel sections are deterministic by construction, so
   the choice only affects wall-clock time, never output. *)
let resolve_jobs jobs =
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  Qp_par.Pool.set_default_jobs jobs;
  jobs

(* Run [f] with the requested telemetry sinks live: a JSONL trace
   (header record first) and/or a Prometheus text dump of the default
   registry written when the command finishes, even on error.
   [quiet] suppresses the human-readable meta line (--format json). *)
let with_obs ?(quiet = false) (c : common) meta f =
  if not quiet then print_meta meta;
  (match c.trace with
  | Some path ->
      Obs.Trace.install (Obs.Trace.to_file path);
      Obs.Trace.header (meta_fields meta)
  | None -> ());
  (match c.wide with
  | Some path ->
      Obs.Wide.install (Obs.Trace.to_file path);
      Obs.Wide.header (meta_fields meta)
  | None -> ());
  if c.metrics <> None then Obs.Metrics.set_enabled Obs.Metrics.default true;
  Fun.protect
    ~finally:(fun () ->
      (match c.metrics with
      | Some path ->
          let oc = open_out path in
          output_string oc (Obs.Metrics.to_prometheus Obs.Metrics.default);
          close_out oc
      | None -> ());
      Obs.Wide.uninstall ();
      Obs.Trace.uninstall ())
    f

(* Every subcommand body returns [(unit, Qp_error.t) result]; this is
   the single place errors become diagnostics and exit codes. *)
let run_result r =
  match r with
  | Ok () -> ()
  | Error e ->
      prerr_endline ("qplace: " ^ Qp_error.to_string e);
      exit (Qp_error.exit_code e)

let meta_of ?(command = "solve") ?alpha ?algorithm (c : common) ~jobs =
  { command; spec = c.spec; jobs; alpha; algorithm }

let describe_placement problem label f =
  let tbl =
    Table.create ~title:label
      [ ("metric", Table.Left); ("value", Table.Right) ]
  in
  Table.add_rowf tbl "avg max-delay|%.4f" (Delay.avg_max_delay problem f);
  Table.add_rowf tbl "avg total-delay|%.4f" (Delay.avg_total_delay problem f);
  Table.add_rowf tbl "max load/cap|%.3f" (Placement.max_violation problem f);
  Table.add_rowf tbl "nodes used|%d" (List.length (Placement.used_nodes f));
  Table.print tbl;
  Printf.printf "placement: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int f)))

(* ------------------------------------------------------------------ *)
(* Subcommand implementations                                          *)
(* ------------------------------------------------------------------ *)

let get_problem ~instance (c : common) =
  match instance with
  | Some path -> Serialize.load_problem path
  | None -> Spec.build c.spec

(* Solver parameters from the CLI spec. The randomized solver streams
   from [seed + 1] so "solve" and the instance construction (seeded
   with [seed]) stay independent. Shared with the server through
   {!Qp_serve.Protocol.solver_params}, so served and offline
   placements agree byte-for-byte. *)
let params_of ?pivot_budget (c : common) ~alpha =
  Qp_serve.Protocol.solver_params c.spec
    { Qp_serve.Protocol.default_options with
      Qp_serve.Protocol.alpha;
      pivot_budget }

let solve_cmd (c : common) algorithm alpha pivot_budget instance save format =
  run_result
  @@
  let* solver = Solver.find algorithm in
  let* format =
    match format with
    | "text" | "json" -> Ok format
    | other -> Qp_error.invalid_instancef "unknown format %S (text|json)" other
  in
  let jobs = resolve_jobs c.spec.Spec.jobs in
  with_obs ~quiet:(format = "json") c
    (meta_of c ~jobs ~alpha ~algorithm)
  @@ fun () ->
  let ev = Obs.Wide.start ~kind:"solve" () in
  Obs.Wide.set_str ev "alg" algorithm;
  Obs.Wide.set ev "alpha" (Obs.Json.Float alpha);
  let res =
    let* problem = Obs.Wide.timed ev "build" (fun () -> get_problem ~instance c) in
    let* () =
      match save with
      | Some path ->
          let* () = Serialize.save_problem path problem in
          if format <> "json" then Printf.printf "instance saved to %s\n" path;
          Ok ()
      | None -> Ok ()
    in
    let* outcome =
      Obs.Wide.timed ev "solve" (fun () ->
          solver.Solver.solve (params_of ?pivot_budget c ~alpha) problem)
    in
    if format = "json" then print_endline (Serialize.outcome_to_string outcome)
    else begin
      List.iter print_endline (solver.Solver.headline outcome);
      describe_placement problem solver.Solver.label outcome.Outcome.placement
    end;
    Ok ()
  in
  (match res with
  | Ok () -> Obs.Wide.finish ~outcome:"ok" ev
  | Error e -> Obs.Wide.finish ~outcome:(Serialize.error_code e) ev);
  res

let simulate_cmd (c : common) protocol accesses =
  run_result
  @@
  let* solver = Solver.find "lp" in
  let* protocol =
    match protocol with
    | "parallel" -> Ok Qp_sim.Access_sim.Parallel
    | "sequential" -> Ok Qp_sim.Access_sim.Sequential
    | other -> Qp_error.invalid_instancef "unknown protocol %S (parallel|sequential)" other
  in
  let jobs = resolve_jobs c.spec.Spec.jobs in
  with_obs c (meta_of c ~command:"simulate" ~jobs ~alpha:2. ~algorithm:"lp")
  @@ fun () ->
  let* problem = Spec.build c.spec in
  let* outcome = solver.Solver.solve (params_of c ~alpha:2.) problem in
  let cfg =
    Qp_sim.Access_sim.default_config ~problem
      ~placement:outcome.Outcome.placement
  in
  let report =
    Qp_sim.Access_sim.run
      { cfg with
        Qp_sim.Access_sim.protocol;
        accesses_per_client = accesses;
        seed = c.spec.Spec.seed }
  in
  let open Qp_sim.Access_sim in
  Printf.printf "accesses: %d\n" report.n_accesses;
  Printf.printf "simulated mean delay: %.4f\n" report.mean_delay;
  Printf.printf "analytic delay:       %.4f\n" report.analytic_delay;
  Printf.printf "relative error:       %.3f%%\n" (100. *. report.relative_error);
  Format.printf "summary: %a@." Qp_util.Stats.pp_summary report.delay_summary;
  Ok ()

let gap_cmd (c : common) max_k =
  run_result
  @@
  let* () =
    if max_k < 2 then Qp_error.invalid_instancef "max-k must be at least 2 (got %d)" max_k
    else Ok ()
  in
  let jobs = resolve_jobs c.spec.Spec.jobs in
  with_obs c (meta_of c ~command:"gap" ~jobs)
  @@ fun () ->
  Qp_error.guard @@ fun () ->
  let tbl =
    Table.create ~title:"Integrality gap of LP (9)-(14) on the Figure-1 family"
      [ ("k", Table.Right); ("n = k^2", Table.Right); ("LP value", Table.Right);
        ("integral OPT", Table.Right); ("gap", Table.Right) ]
  in
  for k = 2 to max_k do
    let r = Integrality.measure (Integrality.figure1_instance k) in
    Table.add_rowf tbl "%d|%d|%.4f|%.1f|%.2f" k r.Integrality.n r.Integrality.lp_value
      r.Integrality.integral_opt r.Integrality.gap
  done;
  Table.print tbl;
  Ok ()

let info_cmd (c : common) =
  run_result
  @@
  let jobs = resolve_jobs c.spec.Spec.jobs in
  with_obs c (meta_of c ~command:"info" ~jobs)
  @@ fun () ->
  let* system = Spec.build_system c.spec.Spec.system in
  let strategy = Strategy.uniform system in
  let loads = Strategy.loads system strategy in
  Printf.printf "universe size:   %d\n" (Quorum.universe system);
  Printf.printf "quorums:         %d\n" (Quorum.n_quorums system);
  let sizes = Array.map Array.length (Quorum.quorums system) in
  Printf.printf "quorum sizes:    min %d, max %d\n"
    (Array.fold_left min sizes.(0) sizes)
    (Array.fold_left max sizes.(0) sizes);
  Printf.printf "system load:     %.4f\n" (Strategy.system_load system strategy);
  Printf.printf "total load:      %.4f (expected quorum size)\n"
    (Strategy.total_load system strategy);
  Printf.printf "balanced loads:  %b\n"
    (Array.for_all (fun l -> Qp_util.Floatx.approx l loads.(0)) loads);
  Printf.printf "is coterie:      %b\n" (Quorum.is_coterie system);
  Printf.printf "intersecting:    %b\n" (Quorum.all_intersecting system);
  Ok ()

let solvers_cmd () =
  print_string (Solver.registry_table_markdown ())

let availability_cmd system_name p =
  run_result
  @@
  let* system = Spec.build_system system_name in
  Printf.printf "resilience:           %d\n%!" (Qp_quorum.Availability.resilience system);
  Printf.printf "Naor-Wool load bound: %.4f\n%!"
    (Qp_quorum.Availability.naor_wool_load_lower_bound system);
  Printf.printf "uniform system load:  %.4f\n%!"
    (Strategy.system_load system (Strategy.uniform system));
  if Quorum.universe system <= 22 then
    Printf.printf "failure prob (p=%.2f): %.6f (exact)\n" p
      (Qp_quorum.Availability.failure_probability system p)
  else begin
    let rng = Rng.create 1 in
    Printf.printf "failure prob (p=%.2f): %.6f (Monte-Carlo, 100k samples)\n" p
      (Qp_quorum.Availability.failure_probability_mc rng system p ~samples:100_000)
  end;
  Ok ()

let faults_cmd (c : common) p attempts =
  run_result
  @@
  let* solver = Solver.find "lp" in
  let jobs = resolve_jobs c.spec.Spec.jobs in
  with_obs c (meta_of c ~command:"faults" ~jobs ~alpha:2. ~algorithm:"lp")
  @@ fun () ->
  let* problem = Spec.build c.spec in
  let* outcome = solver.Solver.solve (params_of c ~alpha:2.) problem in
  let base =
    Qp_sim.Fault_sim.default_config ~problem
      ~placement:outcome.Outcome.placement
      ~failure_model:(Qp_sim.Fault_sim.Static p)
  in
  let cfg =
    {
      base with
      Qp_sim.Fault_sim.retry =
        { base.Qp_sim.Fault_sim.retry with Qp_runtime.Retry.max_attempts = attempts };
      accesses_per_client = 1000;
      seed = c.spec.Spec.seed;
    }
  in
  let fr = Qp_sim.Fault_sim.run cfg in
  let open Qp_sim.Fault_sim in
  Printf.printf "accesses:        %d\n" fr.n_accesses;
  Printf.printf "availability:    %.4f (iid prediction %.4f)\n" fr.availability
    fr.predicted_success;
  Printf.printf "mean delay (ok): %.4f\n" fr.mean_delay_success;
  Printf.printf "mean attempts:   %.2f\n" fr.mean_attempts;
  Ok ()

let resilience_cmd (c : common) mtbf mttr attempts accesses hedge no_repair =
  run_result
  @@
  let* solver = Solver.find "lp" in
  let jobs = resolve_jobs c.spec.Spec.jobs in
  with_obs c (meta_of c ~command:"resilience" ~jobs ~alpha:2. ~algorithm:"lp")
  @@ fun () ->
  let* problem = Spec.build c.spec in
  let* outcome = solver.Solver.solve (params_of c ~alpha:2.) problem in
  let placement = outcome.Outcome.placement in
  let seed = c.spec.Spec.seed in
  let module Failure = Qp_runtime.Failure in
  let module Retry = Qp_runtime.Retry in
  let module Engine = Qp_runtime.Engine in
  let failure = Failure.Dynamic { mtbf; mttr } in
  let timeout = 4. *. Qp_graph.Metric.diameter problem.Problem.metric in
  let retry =
    if hedge then
      Retry.exponential ~jitter:0.2 ~hedge_after:(0.5 *. timeout) ~timeout
        ~base:(0.2 *. timeout) ~max_attempts:attempts ()
    else Retry.fixed ~timeout ~max_attempts:attempts
  in
  (* Static baseline at the same retry budget and failure trajectory. *)
  let sr =
    Qp_sim.Fault_sim.run
      { (Qp_sim.Fault_sim.default_config ~problem ~placement ~failure_model:failure) with
        Qp_sim.Fault_sim.retry = Retry.fixed ~timeout ~max_attempts:attempts;
        accesses_per_client = accesses;
        seed }
  in
  let cfg =
    { (Engine.default_config ~adaptive:true
         ?repair:(if no_repair then None else Some Engine.default_trigger)
         ~problem ~placement ~failure ()) with
      Engine.retry; accesses_per_client = accesses; seed }
  in
  let er = Engine.run cfg in
  Printf.printf "dynamic churn: mtbf %.1f, mttr %.1f (node availability %.3f)\n" mtbf
    mttr (Failure.node_availability failure);
  Printf.printf "retry budget:  %d attempts, timeout %.3f%s\n" attempts timeout
    (if hedge then ", hedged + exponential backoff" else ", fixed");
  let tbl =
    Table.create ~title:"static baseline vs closed-loop engine"
      [ ("metric", Table.Left); ("static", Table.Right); ("engine", Table.Right) ]
  in
  Table.add_rowf tbl "availability|%.4f|%.4f" sr.Qp_sim.Fault_sim.availability
    er.Engine.availability;
  Table.add_rowf tbl "mean delay (ok)|%.4f|%.4f" sr.Qp_sim.Fault_sim.mean_delay_success
    er.Engine.mean_delay_success;
  Table.add_rowf tbl "mean attempts|%.2f|%.2f" sr.Qp_sim.Fault_sim.mean_attempts
    er.Engine.mean_attempts;
  Table.print tbl;
  Printf.printf "analytic failure-free delay: %.4f\n" er.Engine.analytic_delay;
  if hedge then
    Printf.printf "hedges: %d launched, %d won the race\n" er.Engine.hedges_launched
      er.Engine.hedges_won;
  (match er.Engine.repairs with
  | [] -> print_endline "repairs: none triggered"
  | rs ->
      Printf.printf "repairs: %d triggered\n" (List.length rs);
      List.iter
        (fun (ev : Engine.repair_event) ->
          Printf.printf
            "  t=%8.2f  dead {%s}  moved %d  delay %.4f -> %.4f\n" ev.Engine.time
            (String.concat ", " (List.map string_of_int ev.Engine.dead))
            ev.Engine.moved ev.Engine.delay_before ev.Engine.delay_after)
        rs);
  (match er.Engine.final_suspected with
  | [] -> print_endline "final suspected set: empty"
  | s ->
      Printf.printf "final suspected set: {%s}\n"
        (String.concat ", " (List.map string_of_int s)));
  Ok ()

let eval_cmd instance placement =
  run_result
  @@
  let* problem = Serialize.load_problem instance in
  let* f = Serialize.placement_of_string placement in
  let* () = Qp_error.of_invalid_arg (fun () -> Placement.validate problem f) in
  Qp_error.guard @@ fun () ->
  describe_placement problem "evaluation" f;
  let a = Relay.analyze problem f in
  Printf.printf "relay analysis: v0 = %d, direct %.4f, relayed %.4f (ratio %.3f <= 5)\n"
    a.Relay.v0 a.Relay.direct a.Relay.relayed a.Relay.ratio;
  Ok ()

let design_cmd topology nodes seed =
  run_result
  @@
  let rng = Rng.create seed in
  let* graph = Spec.build_topology topology nodes rng in
  Qp_error.guard @@ fun () ->
  let metric = Qp_graph.Metric.of_graph graph in
  let module Design = Qp_design.Design in
  let radius = Design.minmax_optimal_radius metric in
  let ball = Design.minmax_optimal_design metric in
  let median, lin = Design.lin_median_design metric in
  Printf.printf "min-max design (Tsuchiya-style):\n";
  Printf.printf "  optimal radius:     %.4f (exact)\n" radius;
  Printf.printf "  ball-design ecc:    %.4f\n" (Design.eccentricity_of_design metric ball);
  Printf.printf "min-avg design (Kobayashi/Lin):\n";
  Printf.printf "  Lin median:         node %d, cost %.4f (2-approx)\n" median
    (Design.mean_delay_of_design metric lin);
  Printf.printf "  lower bound on OPT: %.4f\n" (Design.minavg_lower_bound metric);
  Printf.printf
    "  (note: the Lin design has system load 1 - the concentration the paper's\n\
    \   placement formulation exists to avoid)\n";
  Ok ()

(* Churn comparison: the greedy-repair engine vs the full closed loop
   (warm re-solve + bounded-safe migration) on the same failure
   trajectory and retry budget. *)
let churn_cmd (c : common) mtbf mttr attempts accesses bound =
  run_result
  @@
  let* solver = Solver.find "lp" in
  let* () =
    if bound <= 0. then
      Qp_error.invalid_instancef "bound must be positive (got %g)" bound
    else Ok ()
  in
  let jobs = resolve_jobs c.spec.Spec.jobs in
  with_obs c (meta_of c ~command:"churn" ~jobs ~alpha:2. ~algorithm:"lp")
  @@ fun () ->
  let* problem = Spec.build c.spec in
  let* outcome = solver.Solver.solve (params_of c ~alpha:2.) problem in
  let placement = outcome.Outcome.placement in
  let seed = c.spec.Spec.seed in
  let module Failure = Qp_runtime.Failure in
  let module Retry = Qp_runtime.Retry in
  let module Engine = Qp_runtime.Engine in
  let failure = Failure.Dynamic { mtbf; mttr } in
  let timeout = 4. *. Qp_graph.Metric.diameter problem.Problem.metric in
  let retry = Retry.fixed ~timeout ~max_attempts:attempts in
  let cfg migration =
    { (Engine.default_config ~adaptive:true ~repair:Engine.default_trigger
         ?migration ~problem ~placement ~failure ()) with
      Engine.retry; accesses_per_client = accesses; seed }
  in
  let greedy = Engine.run (cfg None) in
  let migr =
    Engine.run (cfg (Some { Engine.default_migration with Engine.bound }))
  in
  Printf.printf "dynamic churn: mtbf %.1f, mttr %.1f (node availability %.3f)\n"
    mtbf mttr (Failure.node_availability failure);
  let tbl =
    Table.create ~title:"greedy repair vs bounded-safe migration"
      [ ("metric", Table.Left); ("greedy", Table.Right); ("migration", Table.Right) ]
  in
  Table.add_rowf tbl "availability|%.4f|%.4f" greedy.Engine.availability
    migr.Engine.availability;
  Table.add_rowf tbl "mean delay (ok)|%.4f|%.4f" greedy.Engine.mean_delay_success
    migr.Engine.mean_delay_success;
  Table.add_rowf tbl "mean attempts|%.2f|%.2f" greedy.Engine.mean_attempts
    migr.Engine.mean_attempts;
  Table.add_rowf tbl "repairs / migrations|%d|%d"
    (List.length greedy.Engine.repairs)
    (List.length migr.Engine.migrations);
  Table.print tbl;
  (match migr.Engine.migrations with
  | [] -> print_endline "migrations: none triggered"
  | ms ->
      List.iter
        (fun (m : Engine.migration_event) ->
          Printf.printf
            "  t=%8.2f  dead {%s}  moves %d/%d (%d retried)%s%s  delay %.4f -> %.4f\n"
            m.Engine.m_time
            (String.concat ", " (List.map string_of_int m.Engine.m_dead))
            m.Engine.applied_moves m.Engine.planned_moves m.Engine.retried_moves
            (if m.Engine.warm then "  warm" else "  cold")
            (if m.Engine.degraded then "  DEGRADED" else "")
            m.Engine.m_delay_before m.Engine.m_delay_after)
        ms);
  Ok ()

(* ------------------------------------------------------------------ *)
(* serve / loadgen: the network front end (lib/serve)                  *)
(* ------------------------------------------------------------------ *)

let serve_cmd (c : common) port host queue_depth deadline_ms server_jobs
    cache_capacity =
  run_result
  @@
  let* () =
    if queue_depth < 1 then
      Qp_error.invalid_instancef "queue-depth must be >= 1 (got %d)" queue_depth
    else Ok ()
  in
  let* () =
    if server_jobs < 1 then
      Qp_error.invalid_instancef "server-jobs must be >= 1 (got %d)" server_jobs
    else Ok ()
  in
  let* () =
    if cache_capacity < 0 then
      Qp_error.invalid_instancef "cache-capacity must be >= 0 (got %d)"
        cache_capacity
    else Ok ()
  in
  let jobs = resolve_jobs c.spec.Spec.jobs in
  with_obs c (meta_of c ~command:"serve" ~jobs)
  @@ fun () ->
  let cfg =
    { Qp_serve.Server.default_config with
      Qp_serve.Server.host;
      port;
      queue_depth;
      default_deadline_ms = deadline_ms;
      default_spec = c.spec;
      jobs = server_jobs;
      cache_capacity }
  in
  Qp_serve.Server.run
    ~ready:(fun p -> Printf.printf "serving qp-serve/1 on %s:%d\n%!" host p)
    cfg

let loadgen_cmd (c : common) host port connections duration mix deadline_ms
    pivot_budget algorithm alpha timeout_ms retries drop_every unique_specs
    out =
  run_result
  @@
  let* mix = Qp_serve.Loadgen.mix_of_string mix in
  let* () =
    if retries < 0 then
      Qp_error.invalid_instancef "retries must be >= 0 (got %d)" retries
    else Ok ()
  in
  ignore (resolve_jobs 1);
  (* quiet: loadgen's stdout is the report document, nothing else —
     the telemetry sinks (--trace/--metrics/--wide-events) still
     install around the run *)
  with_obs ~quiet:true c (meta_of c ~command:"loadgen" ~jobs:1 ~algorithm ~alpha)
  @@ fun () ->
  let options =
    { Qp_serve.Protocol.algorithm;
      alpha;
      deadline_ms;
      pivot_budget }
  in
  let cfg =
    { Qp_serve.Loadgen.host;
      port;
      connections;
      duration_s = duration;
      mix;
      spec = Some c.spec;
      options;
      seed = c.spec.Spec.seed;
      timeout_ms;
      retries;
      drop_every;
      (* Wide events imply per-request trace propagation: the client
         mints ids, the server echoes phase timing, and the two JSONL
         files join. *)
      trace_requests = c.wide <> None;
      unique_specs }
  in
  let* report = Qp_serve.Loadgen.run cfg in
  let doc = Obs.Json.to_string (Qp_serve.Loadgen.report_to_json report) in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc doc;
      output_char oc '\n';
      close_out oc
  | None -> ());
  print_endline doc;
  Ok ()

(* ------------------------------------------------------------------ *)
(* scenario: run a qp-scenario-spec/1 file end to end                  *)
(* ------------------------------------------------------------------ *)

let scenario_cmd file jobs format out trace metrics wide =
  run_result
  @@
  let* format =
    match format with
    | "text" | "json" -> Ok format
    | other -> Qp_error.invalid_instancef "unknown format %S (text|json)" other
  in
  let* contents =
    match open_in file with
    | exception Sys_error msg -> Qp_error.invalid_instancef "scenario: %s" msg
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> Ok (really_input_string ic (in_channel_length ic)))
  in
  let* sc = Qp_scenario.Scenario.of_string contents in
  let jobs = resolve_jobs jobs in
  (* The scenario names a full instance spec, so the shared meta line
     and telemetry headers describe it exactly like any other
     subcommand. *)
  let c =
    { spec =
        { Spec.topology = sc.Qp_scenario.Scenario.topology;
          nodes = sc.Qp_scenario.Scenario.nodes;
          system = sc.Qp_scenario.Scenario.system;
          cap_slack = sc.Qp_scenario.Scenario.cap_slack;
          seed = sc.Qp_scenario.Scenario.seed;
          jobs };
      trace; metrics; wide }
  in
  with_obs ~quiet:(format = "json") c
    (meta_of c ~command:"scenario" ~jobs
       ~alpha:sc.Qp_scenario.Scenario.alpha
       ~algorithm:sc.Qp_scenario.Scenario.alg)
  @@ fun () ->
  let* result = Qp_scenario.Runner.run sc in
  let open Qp_scenario.Runner in
  if format = "text" then begin
    Printf.printf "scenario: %s (read_fraction=%g, %d offered loads)\n"
      sc.Qp_scenario.Scenario.name sc.Qp_scenario.Scenario.read_fraction
      (Array.length result.curve);
    if Array.length result.regions > 0 then
      Printf.printf "regions: %s\n"
        (String.concat " " (Array.to_list result.regions));
    Printf.printf
      "objective: %.4f  read delay: %.4f  write delay: %.4f  symmetric read \
       delay: %.4f\n"
      result.outcome.Outcome.objective result.read_delay result.write_delay
      result.sym_read_delay;
    let tbl =
      Table.create ~title:"latency-throughput curve"
        [ ("offered", Table.Right); ("throughput", Table.Right);
          ("accesses", Table.Right); ("mean", Table.Right);
          ("p50", Table.Right); ("p95", Table.Right); ("max", Table.Right) ]
    in
    Array.iter
      (fun cell ->
        Table.add_rowf tbl "%g|%.4f|%d|%.3f|%.3f|%.3f|%.3f" cell.offered
          cell.throughput cell.accesses cell.mean cell.p50 cell.p95 cell.max)
      result.curve;
    Table.print tbl
  end;
  let doc = Obs.Json.to_string (to_json result) in
  (match out with
  | Some path ->
      let oc = open_out path in
      output_string oc doc;
      output_char oc '\n';
      close_out oc
  | None -> ());
  print_endline doc;
  Ok ()

(* ------------------------------------------------------------------ *)
(* tail: summarize wide-event JSONL artifacts                          *)
(* ------------------------------------------------------------------ *)

(* Reads one or more qp-wide/1 files (e.g. the server's and the
   client's from one loadgen run) and prints per-kind counts, a
   per-phase latency breakdown, delay CDFs, and — when both sides of a
   trace are present — the client/server join. *)
let tail_cmd files =
  run_result
  @@
  let module Stats = Qp_util.Stats in
  let read_records path =
    match open_in path with
    | exception Sys_error msg -> Qp_error.invalid_instancef "tail: %s" msg
    | ic ->
        let records = ref [] in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match Obs.Json.of_string line with
               | exception Obs.Json.Parse_error _ -> ()
               | j -> (
                   match Obs.Json.member "type" j with
                   | Some (Obs.Json.String "wide") -> records := j :: !records
                   | _ -> ())
           done
         with End_of_file -> close_in ic);
        Ok (List.rev !records)
  in
  let* records =
    List.fold_left
      (fun acc path ->
        let* acc = acc in
        let* rs = read_records path in
        Ok (acc @ rs))
      (Ok []) files
  in
  if records = [] then begin
    print_endline "no wide events found";
    Ok ()
  end
  else begin
    let str j key = Option.bind (Obs.Json.member key j) Obs.Json.to_str in
    let flt j key = Option.bind (Obs.Json.member key j) Obs.Json.to_float in
    let push tbl key v =
      match Hashtbl.find_opt tbl key with
      | Some l -> l := v :: !l
      | None -> Hashtbl.add tbl key (ref [ v ])
    in
    let durs_by_kind = Hashtbl.create 8 in
    let outcomes = Hashtbl.create 8 in
    let phase_samples = Hashtbl.create 8 in
    let by_trace :
        (string, float option ref * float option ref) Hashtbl.t =
      Hashtbl.create 64
    in
    List.iter
      (fun j ->
        let kind = Option.value (str j "kind") ~default:"?" in
        let outcome = Option.value (str j "outcome") ~default:"?" in
        (match flt j "dur_s" with
        | Some d -> push durs_by_kind kind (d *. 1000.)
        | None -> ());
        let okey = kind ^ "/" ^ outcome in
        Hashtbl.replace outcomes okey
          (1 + Option.value ~default:0 (Hashtbl.find_opt outcomes okey));
        (match Obs.Json.member "phases" j with
        | Some (Obs.Json.Obj ps) ->
            List.iter
              (fun (name, v) ->
                match Obs.Json.to_float v with
                | Some s -> push phase_samples (kind ^ ":" ^ name) (s *. 1000.)
                | None -> ())
              ps
        | _ -> ());
        match (str j "trace_id", flt j "dur_s") with
        | Some tid, Some d ->
            let cl, sv =
              match Hashtbl.find_opt by_trace tid with
              | Some slot -> slot
              | None ->
                  let slot = (ref None, ref None) in
                  Hashtbl.add by_trace tid slot;
                  slot
            in
            if kind = "client_call" then cl := Some d
            else if kind = "serve_request" then sv := Some d
        | _ -> ())
      records;
    let sorted tbl =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let kinds = Table.create ~title:"wide events by kind/outcome"
        [ ("kind/outcome", Table.Left); ("count", Table.Right) ]
    in
    List.iter
      (fun (k, n) -> Table.add_rowf kinds "%s|%d" k n)
      (List.sort compare (Hashtbl.fold (fun k v a -> (k, v) :: a) outcomes []));
    Table.print kinds;
    let phases = Table.create ~title:"phase breakdown (ms)"
        [ ("phase", Table.Left); ("count", Table.Right); ("mean", Table.Right);
          ("p50", Table.Right); ("p95", Table.Right); ("p99", Table.Right) ]
    in
    List.iter
      (fun (name, l) ->
        let a = Array.of_list !l in
        Table.add_rowf phases "%s|%d|%.3f|%.3f|%.3f|%.3f" name (Array.length a)
          (Stats.mean a) (Stats.percentile a 50.) (Stats.percentile a 95.)
          (Stats.percentile a 99.))
      (sorted phase_samples);
    Table.print phases;
    let cdf = Table.create ~title:"delay CDF (ms)"
        [ ("kind", Table.Left); ("count", Table.Right); ("p10", Table.Right);
          ("p50", Table.Right); ("p90", Table.Right); ("p99", Table.Right);
          ("max", Table.Right) ]
    in
    List.iter
      (fun (kind, l) ->
        let a = Array.of_list !l in
        Table.add_rowf cdf "%s|%d|%.3f|%.3f|%.3f|%.3f|%.3f" kind
          (Array.length a) (Stats.percentile a 10.) (Stats.percentile a 50.)
          (Stats.percentile a 90.) (Stats.percentile a 99.) (Stats.max a))
      (sorted durs_by_kind);
    Table.print cdf;
    let joined = ref [] in
    Hashtbl.iter
      (fun _ (cl, sv) ->
        match (!cl, !sv) with
        | Some c, Some s -> joined := ((c -. s) *. 1000.) :: !joined
        | _ -> ())
      by_trace;
    (match !joined with
    | [] -> ()
    | l ->
        let a = Array.of_list l in
        Printf.printf
          "trace join: %d requests seen on both sides; client-server overhead \
           mean %.3f ms, p99 %.3f ms\n"
          (Array.length a) (Stats.mean a) (Stats.percentile a 99.));
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let topology_t =
  Arg.(value & opt string "waxman" & info [ "topology" ] ~docv:"NAME"
         ~doc:"Topology: path, cycle, star, complete, tree, waxman, geometric, barbell.")

let nodes_t =
  Arg.(value & opt int 16 & info [ "nodes"; "n" ] ~docv:"N" ~doc:"Number of network nodes.")

let system_t =
  Arg.(value & opt string "grid:3" & info [ "system" ] ~docv:"SPEC"
         ~doc:"Quorum system: grid:K, majority:N:T, fpp:Q, tree:D, wheel:N, star:N, triangle.")

let cap_slack_t =
  Arg.(value & opt float 1.0 & info [ "cap-slack" ] ~docv:"X"
         ~doc:"Capacity per node as a multiple of the max element load.")

let seed_t = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let jobs_t =
  Arg.(value & opt int 0 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker domains for parallel sections (0 = all cores, 1 = sequential). \
               Results are identical for every N.")

let trace_t =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write a JSONL span/event trace of the run to FILE.")

let metrics_t =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write Prometheus-format metrics of the run to FILE.")

let wide_t =
  Arg.(value & opt (some string) None & info [ "wide-events" ] ~docv:"FILE"
         ~doc:"Write one qp-wide/1 JSONL record per unit of work (request, \
               solve, migration) to FILE. On loadgen this also attaches a \
               trace context to every request, so client and server files \
               join on trace id (see the tail subcommand).")

let common_t =
  let mk topology nodes system cap_slack seed jobs trace metrics wide =
    { spec = { Spec.topology; nodes; system; cap_slack; seed; jobs };
      trace; metrics; wide }
  in
  Term.(const mk $ topology_t $ nodes_t $ system_t $ cap_slack_t $ seed_t
        $ jobs_t $ trace_t $ metrics_t $ wide_t)

let alpha_t =
  Arg.(value & opt float 2.0 & info [ "alpha" ] ~docv:"A"
         ~doc:"Rounding parameter of Theorem 3.7 (alpha > 1).")

let algorithm_t =
  Arg.(value & opt string "lp" & info [ "alg" ] ~docv:"ALG"
         ~doc:"Algorithm (see the solvers subcommand): lp (Thm 1.2), total (Thm 5.1), \
               greedy, random, exact, grid, majority, partial.")

let instance_t =
  Arg.(value & opt (some string) None & info [ "instance" ] ~docv:"FILE"
         ~doc:"Load the instance from FILE instead of generating one.")

let save_t =
  Arg.(value & opt (some string) None & info [ "save-instance" ] ~docv:"FILE"
         ~doc:"Save the instance to FILE before solving.")

let format_t =
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
         ~doc:"Output format: text (human-readable) or json (one qp-solve/1 object).")

let pivot_budget_t =
  Arg.(value & opt (some int) None & info [ "pivot-budget" ] ~docv:"N"
         ~doc:"Abort the LP after N simplex pivots (typed internal error). \
               Bounds worst-case solve time; also available per request on the server.")

let solve_term =
  Term.(const solve_cmd $ common_t $ algorithm_t $ alpha_t $ pivot_budget_t
        $ instance_t $ save_t $ format_t)

let solve_cmd_info = Cmd.info "solve" ~doc:"Place a quorum system on a generated network."

let protocol_t =
  Arg.(value & opt string "parallel" & info [ "protocol" ] ~docv:"P"
         ~doc:"Access protocol: parallel (max-delay) or sequential (total-delay).")

let accesses_t =
  Arg.(value & opt int 500 & info [ "accesses" ] ~docv:"K"
         ~doc:"Accesses per client in the simulation.")

let simulate_term = Term.(const simulate_cmd $ common_t $ protocol_t $ accesses_t)

let simulate_cmd_info =
  Cmd.info "simulate" ~doc:"Solve, then validate the placement in the event simulator."

let max_k_t =
  Arg.(value & opt int 8 & info [ "max-k" ] ~docv:"K" ~doc:"Largest k for the gap series.")

let gap_term = Term.(const gap_cmd $ common_t $ max_k_t)

let gap_cmd_info = Cmd.info "gap" ~doc:"Reproduce the Appendix-A integrality gap series."

let info_term = Term.(const info_cmd $ common_t)

let info_cmd_info = Cmd.info "info" ~doc:"Describe a quorum system construction."

let solvers_term = Term.(const solvers_cmd $ const ())

let solvers_cmd_info =
  Cmd.info "solvers" ~doc:"List the registered placement algorithms and their guarantees."

let fail_p_t =
  Arg.(value & opt float 0.1 & info [ "fail-prob" ] ~docv:"P" ~doc:"Per-node failure probability.")

let availability_term = Term.(const availability_cmd $ system_t $ fail_p_t)

let availability_cmd_info =
  Cmd.info "availability" ~doc:"Failure probability, resilience and load bounds of a system."

let attempts_t =
  Arg.(value & opt int 3 & info [ "attempts" ] ~docv:"K" ~doc:"Quorum retries per access.")

let faults_term = Term.(const faults_cmd $ common_t $ fail_p_t $ attempts_t)

let faults_cmd_info =
  Cmd.info "faults" ~doc:"Solve, then run the fault-injection simulator on the placement."

let mtbf_t =
  Arg.(value & opt float 60. & info [ "mtbf" ] ~docv:"T"
         ~doc:"Mean time between failures of the crash/repair churn process.")

let mttr_t =
  Arg.(value & opt float 20. & info [ "mttr" ] ~docv:"T"
         ~doc:"Mean time to repair of the crash/repair churn process.")

let hedge_t =
  Arg.(value & flag & info [ "hedge" ]
         ~doc:"Use exponential backoff with a hedged second quorum probe.")

let no_repair_t =
  Arg.(value & flag & info [ "no-repair" ]
         ~doc:"Disable the automatic placement-repair trigger.")

let resilience_accesses_t =
  Arg.(value & opt int 500 & info [ "accesses" ] ~docv:"K"
         ~doc:"Accesses per client in the simulation.")

let resilience_term =
  Term.(const resilience_cmd $ common_t $ mtbf_t $ mttr_t $ attempts_t
        $ resilience_accesses_t $ hedge_t $ no_repair_t)

let resilience_cmd_info =
  Cmd.info "resilience"
    ~doc:"Run the closed-loop resilience engine against the static baseline under churn."

let eval_instance_t =
  Arg.(required & opt (some string) None & info [ "instance" ] ~docv:"FILE"
         ~doc:"Instance file (see the solve --save-instance flag).")

let placement_arg_t =
  Arg.(required & opt (some string) None & info [ "placement" ] ~docv:"IDS"
         ~doc:"Space-separated node id per element, e.g. \"0 3 3 7\".")

let eval_term = Term.(const eval_cmd $ eval_instance_t $ placement_arg_t)

let eval_cmd_info =
  Cmd.info "eval" ~doc:"Evaluate a given placement on a saved instance."

let design_term = Term.(const design_cmd $ topology_t $ nodes_t $ seed_t)

let design_cmd_info =
  Cmd.info "design" ~doc:"The Related-Work quorum DESIGN problems on a generated network."

let host_t =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Address to bind (serve) or connect to (loadgen).")

let port_t =
  Arg.(value & opt int Qp_serve.Server.default_config.Qp_serve.Server.port
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port (0 = pick an ephemeral port and print it).")

let queue_depth_t =
  Arg.(value & opt int Qp_serve.Server.default_config.Qp_serve.Server.queue_depth
       & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Admission-control bound: requests beyond N queued are rejected \
                 immediately with an overloaded error.")

let deadline_ms_t =
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"Per-request deadline in milliseconds; expired requests are \
               rejected (or cancelled mid-solve) with deadline_exceeded.")

let server_jobs_t =
  Arg.(value & opt int Qp_serve.Server.default_config.Qp_serve.Server.jobs
       & info [ "server-jobs" ] ~docv:"N"
           ~doc:"Concurrent solves: 1 runs them inline on the event loop, N > \
                 1 dispatches onto N dedicated worker domains (responses stay \
                 byte-identical and in per-connection order). Distinct from \
                 --jobs, which parallelizes within one solve.")

let cache_capacity_t =
  Arg.(value
       & opt int Qp_serve.Server.default_config.Qp_serve.Server.cache_capacity
       & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Placement-cache entries (LRU, keyed by canonical \
                 spec+options); 0 disables caching.")

let serve_term =
  Term.(const serve_cmd $ common_t $ port_t $ host_t $ queue_depth_t
        $ deadline_ms_t $ server_jobs_t $ cache_capacity_t)

let serve_cmd_info =
  Cmd.info "serve"
    ~doc:"Serve placements over TCP (qp-serve/1 framed JSON) until shutdown or SIGTERM."

let connections_t =
  Arg.(value & opt int 4 & info [ "connections" ] ~docv:"N"
         ~doc:"Concurrent closed-loop client connections.")

let duration_t =
  Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"S"
         ~doc:"Load duration in seconds.")

let mix_t =
  Arg.(value & opt string "solve=8,info=1,health=1" & info [ "mix" ] ~docv:"MIX"
         ~doc:"Weighted verb mix, e.g. solve=8,info=1,health=1.")

let out_t =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Also write the qp-loadgen/1 report to FILE.")

let timeout_ms_t =
  Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS"
         ~doc:"Client connect and per-call socket timeout; a hung or \
               partitioned server fails the call instead of blocking forever.")

let retries_t =
  Arg.(value & opt int 3 & info [ "retries" ] ~docv:"N"
         ~doc:"Retries per call (jittered exponential backoff) on transport \
               errors and overloaded replies before the failure is recorded.")

let chaos_drop_t =
  Arg.(value & opt (some int) None & info [ "chaos-drop" ] ~docv:"K"
         ~doc:"Fault injection: force-close each worker's connection before \
               every K-th request, exercising the reconnect path.")

let unique_specs_t =
  Arg.(value & flag
       & info [ "unique-specs" ]
           ~doc:"Give every request its own spec seed, defeating the server's \
                 placement cache and single-flight dedup — measures raw solve \
                 throughput.")

let loadgen_term =
  Term.(const loadgen_cmd $ common_t $ host_t $ port_t $ connections_t
        $ duration_t $ mix_t $ deadline_ms_t $ pivot_budget_t $ algorithm_t
        $ alpha_t $ timeout_ms_t $ retries_t $ chaos_drop_t $ unique_specs_t
        $ out_t)

let loadgen_cmd_info =
  Cmd.info "loadgen"
    ~doc:"Drive a qplace server with closed-loop load and report latency percentiles."

let scenario_file_t =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC"
         ~doc:"qp-scenario-spec/1 JSON file (see examples/scenarios/).")

let scenario_out_t =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Also write the qp-scenario/1 record to FILE.")

let scenario_format_t =
  Arg.(value & opt string "text" & info [ "format" ] ~docv:"FMT"
         ~doc:"Output format: text (tables + the record line) or json \
               (one qp-scenario/1 object).")

let scenario_term =
  Term.(const scenario_cmd $ scenario_file_t $ jobs_t $ scenario_format_t
        $ scenario_out_t $ trace_t $ metrics_t $ wide_t)

let scenario_cmd_info =
  Cmd.info "scenario"
    ~doc:"Run a geo-distributed scenario spec: region topology, read/write \
          mix, skewed clients, offered-load sweep."

let tail_files_t =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE"
         ~doc:"qp-wide/1 JSONL file(s); pass both the server's and the \
               client's to see the cross-process trace join.")

let tail_term = Term.(const tail_cmd $ tail_files_t)

let tail_cmd_info =
  Cmd.info "tail"
    ~doc:"Summarize wide-event JSONL into per-phase breakdowns and delay CDFs."

let bound_t =
  Arg.(value & opt float 3.0 & info [ "bound" ] ~docv:"B"
         ~doc:"Migration load bound: every intermediate placement keeps each \
               node's load within B times its capacity (default alpha + 1).")

let churn_term =
  Term.(const churn_cmd $ common_t $ mtbf_t $ mttr_t $ attempts_t
        $ resilience_accesses_t $ bound_t)

let churn_cmd_info =
  Cmd.info "churn"
    ~doc:"Compare greedy repair with the warm-re-solve + bounded-safe \
          migration loop under node churn."

let main_cmd =
  let doc = "quorum placement in networks to minimize access delays (PODC'05)" in
  Cmd.group (Cmd.info "qplace" ~doc ~version:Obs.Build_info.version)
    [
      Cmd.v solve_cmd_info solve_term;
      Cmd.v simulate_cmd_info simulate_term;
      Cmd.v gap_cmd_info gap_term;
      Cmd.v info_cmd_info info_term;
      Cmd.v solvers_cmd_info solvers_term;
      Cmd.v availability_cmd_info availability_term;
      Cmd.v faults_cmd_info faults_term;
      Cmd.v resilience_cmd_info resilience_term;
      Cmd.v design_cmd_info design_term;
      Cmd.v eval_cmd_info eval_term;
      Cmd.v serve_cmd_info serve_term;
      Cmd.v loadgen_cmd_info loadgen_term;
      Cmd.v scenario_cmd_info scenario_term;
      Cmd.v tail_cmd_info tail_term;
      Cmd.v churn_cmd_info churn_term;
    ]

let broken_pipe msg =
  let sub = "Broken pipe" in
  let n = String.length sub in
  let rec find i =
    i + n <= String.length msg && (String.sub msg i n = sub || find (i + 1))
  in
  find 0

let () =
  (* A downstream pipe closing early ([qplace ... | head]) or a client
     hanging up mid-reply must surface as EPIPE on the write, not kill
     the process — and EPIPE on stdout is a clean exit, not an error. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  match Cmd.eval ~catch:false main_cmd with
  | code -> (
      (* Flush before [exit] so a closed pipe cannot blow up in the
         [at_exit] flusher after we picked the exit code. *)
      match flush stdout with
      | () -> exit code
      | exception Sys_error msg when broken_pipe msg -> Unix._exit 0)
  | exception Sys_error msg when broken_pipe msg -> Unix._exit 0
  | exception Qp_error.Error e ->
      prerr_endline ("qplace: " ^ Qp_error.to_string e);
      exit (Qp_error.exit_code e)
  | exception e ->
      prerr_endline
        ("qplace: internal error, uncaught exception: " ^ Printexc.to_string e);
      exit Cmd.Exit.internal_error
