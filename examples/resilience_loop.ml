(* Surviving sustained churn with the closed-loop resilience engine.

   The static placement of the paper is optimal when every node
   answers; under crash/repair churn a fixed strategy burns its retry
   budget on down replicas. This example deploys the same placement
   twice against the bit-identical failure trajectory (the churn
   process draws from its own seeded stream):

   1. static baseline: fixed strategy + blind retries (Fault_sim);
   2. closed-loop engine: heartbeat failure detection, adaptive
      strategy reweighting, hedged retries with exponential backoff,
      and automatic placement repair when too much suspected capacity
      accumulates (Qp_runtime.Engine).

   It then shows what each control-loop stage buys, and that with the
   failures turned off the engine reproduces the paper's analytic
   average max-delay - the adaptive layer costs nothing when healthy.

   Run with: dune exec examples/resilience_loop.exe *)

module Rng = Qp_util.Rng
module Table = Qp_util.Table
module Generators = Qp_graph.Generators
module Metric = Qp_graph.Metric
module Majority_qs = Qp_quorum.Majority_qs
module Strategy = Qp_quorum.Strategy
module Failure = Qp_runtime.Failure
module Retry = Qp_runtime.Retry
module Engine = Qp_runtime.Engine
open Qp_place

let () =
  let rng = Rng.create 42 in
  let n = 14 in
  let graph, _ = Generators.waxman rng n () in
  let system = Majority_qs.make ~n:5 ~t:3 in
  let strategy = Strategy.uniform system in
  let load = 3. /. 5. in
  let problem =
    Problem.of_graph_qpp ~graph ~capacities:(Array.make n (1.5 *. load)) ~system
      ~strategy ()
  in
  let placement =
    match Qpp_solver.solve ~alpha:2. problem with
    | Some r -> r.Qpp_solver.placement
    | None -> failwith "infeasible"
  in
  let timeout = 4. *. Metric.diameter problem.Problem.metric in
  let attempts = 3 in
  let fixed = Retry.fixed ~timeout ~max_attempts:attempts in
  let hedged =
    Retry.exponential ~jitter:0.2 ~hedge_after:(0.5 *. timeout) ~timeout
      ~base:(0.2 *. timeout) ~max_attempts:attempts ()
  in
  (* Heavy churn: each node is down 40% of the time, in long bursts -
     the regime where memoryless retries keep hitting the same dead
     replica. *)
  let failure = Failure.Dynamic { mtbf = 60.; mttr = 40. } in
  let accesses = 500 in
  let seed = 7 in

  Printf.printf "Majority 3-of-5 on a %d-node WAN; churn mtbf 60 / mttr 40\n" n;
  Printf.printf "(steady-state node availability %.2f), %d attempts per access.\n\n"
    (Failure.node_availability failure)
    attempts;

  (* Static baseline: same placement, same retry budget, no feedback. *)
  let static =
    Qp_sim.Fault_sim.run
      { (Qp_sim.Fault_sim.default_config ~problem ~placement ~failure_model:failure) with
        Qp_sim.Fault_sim.retry = fixed;
        accesses_per_client = accesses;
        seed }
  in
  (* The control loop, one stage at a time. *)
  let engine ?repair retry =
    Engine.run
      { (Engine.default_config ~adaptive:true ?repair ~problem ~placement ~failure ()) with
        Engine.retry; accesses_per_client = accesses; seed }
  in
  let adaptive = engine fixed in
  let hedging = engine hedged in
  let full = engine ~repair:Engine.default_trigger hedged in

  let tbl =
    Table.create ~title:"the control loop, stage by stage"
      [ ("configuration", Table.Left); ("availability", Table.Right);
        ("delay (ok)", Table.Right); ("attempts", Table.Right) ]
  in
  Table.add_rowf tbl "static strategy, blind retries|%.4f|%.3f|%.2f"
    static.Qp_sim.Fault_sim.availability static.Qp_sim.Fault_sim.mean_delay_success
    static.Qp_sim.Fault_sim.mean_attempts;
  Table.add_rowf tbl "+ detector & adaptive strategy|%.4f|%.3f|%.2f"
    adaptive.Engine.availability adaptive.Engine.mean_delay_success
    adaptive.Engine.mean_attempts;
  Table.add_rowf tbl "+ hedged retries, backoff|%.4f|%.3f|%.2f"
    hedging.Engine.availability hedging.Engine.mean_delay_success
    hedging.Engine.mean_attempts;
  Table.add_rowf tbl "+ automatic repair|%.4f|%.3f|%.2f" full.Engine.availability
    full.Engine.mean_delay_success full.Engine.mean_attempts;
  Table.print tbl;

  Printf.printf "\nhedges: %d launched, %d won the race to a quorum\n"
    full.Engine.hedges_launched full.Engine.hedges_won;
  Printf.printf "repairs: %d triggered, %d replicas moved in total\n"
    (List.length full.Engine.repairs)
    (List.fold_left (fun a (r : Engine.repair_event) -> a + r.Engine.moved) 0
       full.Engine.repairs);
  (match full.Engine.repairs with
  | first :: _ ->
      Printf.printf "first repair at t=%.1f: dead {%s}, %d moved, delay %.3f -> %.3f\n"
        first.Engine.time
        (String.concat ", " (List.map string_of_int first.Engine.dead))
        first.Engine.moved first.Engine.delay_before first.Engine.delay_after
  | [] -> ());

  (* Failure-free sanity check: the adaptive layer vanishes when the
     detector is quiet, recovering the paper's analytic delay. *)
  let calm =
    Engine.run
      { (Engine.default_config ~adaptive:true ~problem ~placement
           ~failure:(Failure.Static 0.) ()) with
        Engine.retry = fixed; accesses_per_client = accesses; seed }
  in
  Printf.printf
    "\nNo failures: engine delay %.4f vs analytic avg max-delay %.4f (err %.2f%%)\n"
    calm.Engine.mean_delay_success calm.Engine.analytic_delay
    (100.
    *. Float.abs (calm.Engine.mean_delay_success -. calm.Engine.analytic_delay)
    /. calm.Engine.analytic_delay)
