(* Tests for the extension modules: quorum composition, access-strategy
   re-optimization, graph properties, transit-stub topologies. *)

module Rng = Qp_util.Rng
module Metric = Qp_graph.Metric
module Generators = Qp_graph.Generators
module Graph_props = Qp_graph.Graph_props
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Simple_qs = Qp_quorum.Simple_qs
module Compose_qs = Qp_quorum.Compose_qs
module Majority_qs = Qp_quorum.Majority_qs
module Grid_qs = Qp_quorum.Grid_qs
open Qp_place

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Composition                                                         *)
(* ------------------------------------------------------------------ *)

let test_compose_counts () =
  let outer = Simple_qs.triangle () in
  let inners = Array.init 3 (fun _ -> Simple_qs.triangle ()) in
  (* Each outer quorum has 2 blocks, each with 3 inner choices: 9
     composed quorums per outer quorum, 27 total over universe 9. *)
  Alcotest.(check int) "count" 27 (Compose_qs.n_composed_quorums outer inners);
  let s = Compose_qs.compose outer inners in
  Alcotest.(check int) "universe" 9 (Quorum.universe s);
  Alcotest.(check int) "materialized" 27 (Quorum.n_quorums s);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s)

let test_compose_quorum_sizes () =
  let outer = Simple_qs.triangle () in
  let inners = Array.init 3 (fun _ -> Simple_qs.triangle ()) in
  let s = Compose_qs.compose outer inners in
  (* Outer quorums have 2 elements, inner quorums 2 elements: composed
     size 4. *)
  Array.iter
    (fun q -> Alcotest.(check int) "size 4" 4 (Array.length q))
    (Quorum.quorums s)

let test_compose_heterogeneous () =
  let outer = Simple_qs.triangle () in
  let inners =
    [| Simple_qs.triangle (); Majority_qs.make ~n:5 ~t:3; Simple_qs.star 3 |]
  in
  let s = Compose_qs.compose outer inners in
  Alcotest.(check int) "universe 3+5+3" 11 (Quorum.universe s);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s);
  let strategy = Compose_qs.uniform_recursive_strategy outer inners in
  Strategy.validate s strategy

let test_compose_offsets () =
  let inners = [| Simple_qs.triangle (); Simple_qs.star 4; Simple_qs.triangle () |] in
  Alcotest.(check (array int)) "offsets" [| 0; 3; 7 |] (Compose_qs.block_offsets inners)

let test_compose_validation () =
  let outer = Simple_qs.triangle () in
  Alcotest.check_raises "arity"
    (Invalid_argument "Compose_qs: need one inner system per outer element") (fun () ->
      ignore (Compose_qs.compose outer [| Simple_qs.triangle () |]))

let prop_compose_intersects =
  QCheck.Test.make ~name:"compositions pairwise intersect" ~count:20
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let pick () =
        match Rng.int rng 3 with
        | 0 -> Simple_qs.triangle ()
        | 1 -> Simple_qs.star 3
        | _ -> Majority_qs.make ~n:3 ~t:2
      in
      let outer = pick () in
      let inners = Array.init (Quorum.universe outer) (fun _ -> pick ()) in
      Quorum.all_intersecting (Compose_qs.compose outer inners))

(* ------------------------------------------------------------------ *)
(* Strategy re-optimization                                            *)
(* ------------------------------------------------------------------ *)

let strategy_fixture seed =
  let rng = Rng.create seed in
  let n = 8 in
  let g, _ = Generators.random_geometric rng n 0.5 in
  let system = Grid_qs.make 2 in
  let strategy = Strategy.uniform system in
  (* Roomy capacities so many strategies are feasible. *)
  let problem =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make n 2.) ~system ~strategy ()
  in
  let placement = [| 0; 1; 2; 3 |] in
  (problem, placement)

let test_strategy_opt_improves () =
  let problem, placement = strategy_fixture 5 in
  match Strategy_opt.optimize problem placement with
  | None -> Alcotest.fail "feasible (roomy caps)"
  | Some r ->
      check_float "input objective = avg max delay" r.Strategy_opt.input_delay
        (Delay.avg_max_delay problem placement);
      Alcotest.(check bool) "no worse than input" true
        (r.Strategy_opt.delay <= r.Strategy_opt.input_delay +. 1e-9);
      Strategy.validate problem.Problem.system r.Strategy_opt.strategy;
      (* Re-evaluating the problem under the new strategy reproduces
         the LP objective. *)
      let problem' =
        Problem.make_qpp ~metric:problem.Problem.metric
          ~capacities:problem.Problem.capacities ~system:problem.Problem.system
          ~strategy:r.Strategy_opt.strategy ()
      in
      check_float "objective consistent" r.Strategy_opt.delay
        (Delay.avg_max_delay problem' placement);
      (* The optimized strategy respects capacities under f. *)
      Alcotest.(check bool) "respects caps" true
        (Placement.respects_capacities problem' placement)

let test_strategy_opt_concentrates_on_best_quorum () =
  (* With slack capacities the optimum is a point mass on the cheapest
     quorum. *)
  let problem, placement = strategy_fixture 9 in
  match Strategy_opt.optimize problem placement with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      let m = Quorum.n_quorums problem.Problem.system in
      let best = ref infinity in
      for qi = 0 to m - 1 do
        let w =
          let acc = ref 0. in
          for v = 0 to Problem.n_nodes problem - 1 do
            acc := !acc +. Delay.quorum_max_delay problem placement v qi
          done;
          !acc /. float_of_int (Problem.n_nodes problem)
        in
        if w < !best then best := w
      done;
      check_float "point mass on cheapest quorum" !best r.Strategy_opt.delay

let test_strategy_opt_capacity_binds () =
  (* Tight capacities force load spreading: the single-quorum point
     mass becomes infeasible, so the optimum mixes quorums. *)
  let rng = Rng.create 31 in
  let n = 8 in
  let g, _ = Generators.random_geometric rng n 0.5 in
  let system = Grid_qs.make 2 in
  let strategy = Strategy.uniform system in
  (* Grid 2x2: each element lies in 3 of the 4 quorums, so its load is
     1 - p(the one quorum avoiding it). Capacity 0.8 forces
     p(Q) >= 0.2 for every quorum - no point mass is feasible. *)
  let problem =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make n 0.8) ~system ~strategy ()
  in
  let placement = [| 0; 1; 2; 3 |] in
  match Strategy_opt.optimize problem placement with
  | None -> Alcotest.fail "uniform strategy is feasible (load 3/4 < 0.8 each)"
  | Some r ->
      let support =
        Array.fold_left (fun c x -> if x > 1e-9 then c + 1 else c) 0 r.Strategy_opt.strategy
      in
      Alcotest.(check bool) "mixes all quorums" true (support = 4);
      Array.iter
        (fun pq -> Alcotest.(check bool) "each >= 0.2" true (pq >= 0.2 -. 1e-6))
        r.Strategy_opt.strategy

let test_strategy_opt_infeasible () =
  (* Zero capacity everywhere: no distribution works. *)
  let rng = Rng.create 33 in
  let g, _ = Generators.random_geometric rng 6 0.6 in
  let system = Grid_qs.make 2 in
  let strategy = Strategy.uniform system in
  let problem =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make 6 0.) ~system ~strategy ()
  in
  Alcotest.(check bool) "infeasible" true
    (Strategy_opt.optimize problem [| 0; 1; 2; 3 |] = None)

let test_strategy_opt_total_delay () =
  let problem, placement = strategy_fixture 11 in
  match Strategy_opt.optimize ~objective:Strategy_opt.Total_delay problem placement with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      check_float "input = avg total delay" r.Strategy_opt.input_delay
        (Delay.avg_total_delay problem placement);
      Alcotest.(check bool) "no worse" true
        (r.Strategy_opt.delay <= r.Strategy_opt.input_delay +. 1e-9)

let prop_strategy_opt_never_worse =
  QCheck.Test.make ~name:"strategy re-optimization never increases delay" ~count:20
    QCheck.small_int (fun seed ->
      let problem, placement = strategy_fixture (seed + 100) in
      match Strategy_opt.optimize problem placement with
      | None -> false
      | Some r -> r.Strategy_opt.delay <= r.Strategy_opt.input_delay +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Graph properties + transit-stub                                     *)
(* ------------------------------------------------------------------ *)

let test_graph_props_path () =
  let m = Metric.of_graph (Generators.path 5) in
  check_float "radius" 2. (Graph_props.radius m);
  check_float "diameter" 4. (Graph_props.diameter m);
  Alcotest.(check int) "center" 2 (Graph_props.center m);
  Alcotest.(check int) "median" 2 (Graph_props.one_median m);
  (* APL of P5: sum over ordered pairs = 2*(4*1+3*2+2*3+1*4) = 40;
     pairs = 20 -> 2. *)
  check_float "apl" 2. (Graph_props.average_path_length m)

let test_graph_props_star () =
  let m = Metric.of_graph (Generators.star 7) in
  check_float "radius 1" 1. (Graph_props.radius m);
  check_float "diameter 2" 2. (Graph_props.diameter m);
  Alcotest.(check int) "center is hub" 0 (Graph_props.center m)

let test_transit_stub_shape () =
  let rng = Rng.create 3 in
  let g = Generators.transit_stub rng ~transits:4 ~stubs_per_transit:2 ~stub_size:3 in
  Alcotest.(check int) "node count" (4 * (1 + 6)) (Qp_graph.Graph.n_vertices g);
  Alcotest.(check bool) "connected" true (Qp_graph.Graph.is_connected g);
  (* Hierarchy shows in the metric: intra-stub distances are much
     smaller than cross-transit ones. *)
  let m = Metric.of_graph g in
  let intra = Metric.dist m 1 2 in
  let cross = Metric.dist m 1 (7 + 1) in
  Alcotest.(check bool) "locality" true (intra < cross)

let test_transit_stub_validation () =
  let rng = Rng.create 4 in
  Alcotest.check_raises "transits" (Invalid_argument "Generators.transit_stub: transits >= 3 required")
    (fun () -> ignore (Generators.transit_stub rng ~transits:2 ~stubs_per_transit:1 ~stub_size:2))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_compose_intersects; prop_strategy_opt_never_worse ]

let suites =
  [
    ( "quorum.compose",
      [
        Alcotest.test_case "counts" `Quick test_compose_counts;
        Alcotest.test_case "quorum sizes" `Quick test_compose_quorum_sizes;
        Alcotest.test_case "heterogeneous" `Quick test_compose_heterogeneous;
        Alcotest.test_case "offsets" `Quick test_compose_offsets;
        Alcotest.test_case "validation" `Quick test_compose_validation;
      ] );
    ( "place.strategy_opt",
      [
        Alcotest.test_case "improves over input" `Quick test_strategy_opt_improves;
        Alcotest.test_case "point mass when slack" `Quick test_strategy_opt_concentrates_on_best_quorum;
        Alcotest.test_case "capacity forces mixing" `Quick test_strategy_opt_capacity_binds;
        Alcotest.test_case "infeasible" `Quick test_strategy_opt_infeasible;
        Alcotest.test_case "total-delay objective" `Quick test_strategy_opt_total_delay;
      ] );
    ( "graph.props",
      [
        Alcotest.test_case "path" `Quick test_graph_props_path;
        Alcotest.test_case "star" `Quick test_graph_props_star;
        Alcotest.test_case "transit-stub shape" `Quick test_transit_stub_shape;
        Alcotest.test_case "transit-stub validation" `Quick test_transit_stub_validation;
      ] );
    ("extensions.properties", qcheck_tests);
  ]
