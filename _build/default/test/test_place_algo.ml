open Qp_place
module Rng = Qp_util.Rng
module Metric = Qp_graph.Metric
module Generators = Qp_graph.Generators
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
module Simple_qs = Qp_quorum.Simple_qs
module Grid_qs = Qp_quorum.Grid_qs
module Majority_qs = Qp_quorum.Majority_qs

let check_float = Alcotest.(check (float 1e-6))

(* Random SSQPP with a uniform-load system and unit-regime capacities:
   the exact DP applies, so every algorithmic guarantee can be checked
   against the true optimum. *)
let random_uniform_ssqpp seed =
  let rng = Rng.create seed in
  let system, load =
    match Rng.int rng 2 with
    | 0 -> (Simple_qs.triangle (), 2. /. 3.)
    | _ -> (Grid_qs.make 2, Grid_qs.element_load 2)
  in
  let nu = Quorum.universe system in
  let n = nu + 2 + Rng.int rng 5 in
  let g, _ = Generators.random_geometric rng n 0.5 in
  let caps = Array.make n load in
  let strategy = Strategy.uniform system in
  let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  Problem.ssqpp_of_qpp p (Rng.int rng n)

(* ------------------------------------------------------------------ *)
(* LP formulation                                                      *)
(* ------------------------------------------------------------------ *)

let test_lp_lower_bounds_exact () =
  for seed = 1 to 6 do
    let s = random_uniform_ssqpp seed in
    match (Lp_formulation.solve s, Exact.ssqpp_uniform_dp s) with
    | Some sol, Some (opt, _) ->
        Alcotest.(check bool) "Z* <= OPT" true
          (sol.Lp_formulation.z_star <= opt +. 1e-6)
    | _ -> Alcotest.fail "expected feasible"
  done

let test_lp_infeasible_detection () =
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  (* Two nodes for three unit-regime elements. *)
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 2)
      ~capacities:(Array.make 2 (2. /. 3.))
      ~system ~strategy ()
  in
  let s = Problem.ssqpp_of_qpp p 0 in
  Alcotest.(check bool) "infeasible" true (Lp_formulation.solve s = None)

let test_lp_zero_when_colocated () =
  (* One node with huge capacity at the source: LP value 0. *)
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 3) ~capacities:[| 10.; 0.; 0. |]
      ~system ~strategy ()
  in
  let s = Problem.ssqpp_of_qpp p 0 in
  match Lp_formulation.solve s with
  | None -> Alcotest.fail "feasible"
  | Some sol -> check_float "zero delay" 0. sol.Lp_formulation.z_star

let test_lp_ordering_fields () =
  let s = random_uniform_ssqpp 42 in
  match Lp_formulation.solve s with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
      let n = Array.length sol.Lp_formulation.dist in
      (* dist is sorted ascending and rank/node arrays are inverse. *)
      for t = 0 to n - 2 do
        Alcotest.(check bool) "sorted" true
          (sol.Lp_formulation.dist.(t) <= sol.Lp_formulation.dist.(t + 1) +. 1e-12)
      done;
      for t = 0 to n - 1 do
        Alcotest.(check int) "inverse maps" t
          sol.Lp_formulation.rank_of_node.(sol.Lp_formulation.node_of_rank.(t))
      done

(* ------------------------------------------------------------------ *)
(* Filtering                                                           *)
(* ------------------------------------------------------------------ *)

let test_filtering_invariants () =
  List.iter
    (fun alpha ->
      for seed = 1 to 4 do
        let s = random_uniform_ssqpp (100 + seed) in
        match Lp_formulation.solve s with
        | None -> Alcotest.fail "feasible"
        | Some sol ->
            let flt = Filtering.apply ~alpha sol in
            Alcotest.(check bool) "invariants hold" true (Filtering.check_invariants flt)
      done)
    [ 1.5; 2.; 3.; 4. ]

let test_filtering_rejects_alpha () =
  let s = random_uniform_ssqpp 7 in
  match Lp_formulation.solve s with
  | None -> Alcotest.fail "feasible"
  | Some sol ->
      Alcotest.check_raises "alpha must exceed 1"
        (Invalid_argument "Filtering.apply: alpha > 1 required") (fun () ->
          ignore (Filtering.apply ~alpha:1. sol))

(* ------------------------------------------------------------------ *)
(* Rounding (Theorem 3.7)                                              *)
(* ------------------------------------------------------------------ *)

let check_thm37 s alpha =
  match Rounding.solve ~alpha s with
  | None -> Alcotest.fail "expected feasible LP"
  | Some r ->
      Alcotest.(check bool) "delay within alpha/(alpha-1) * Z*" true
        (r.Rounding.delay <= r.Rounding.delay_bound +. 1e-6);
      Alcotest.(check bool) "load within alpha+1" true
        (r.Rounding.load_violation <= r.Rounding.load_bound +. 1e-6);
      (* The delay bound also certifies against the true optimum. *)
      (match Exact.ssqpp_uniform_dp s with
      | Some (opt, _) ->
          Alcotest.(check bool) "delay within bound * OPT" true
            (r.Rounding.delay <= (alpha /. (alpha -. 1.) *. opt) +. 1e-6)
      | None -> Alcotest.fail "expected feasible DP")

let test_rounding_thm37_alpha2 () =
  for seed = 1 to 6 do
    check_thm37 (random_uniform_ssqpp (200 + seed)) 2.
  done

let test_rounding_thm37_alpha_sweep () =
  List.iter (fun alpha -> check_thm37 (random_uniform_ssqpp 300) alpha) [ 1.25; 1.5; 3.; 5. ]

let test_rounding_heterogeneous_loads () =
  (* Star system: hub load 1, leaf loads 1/(n-1). Node capacities must
     leave room for the hub somewhere. *)
  let system = Simple_qs.star 4 in
  let strategy = Strategy.uniform system in
  let rng = Rng.create 9 in
  let g, _ = Generators.random_geometric rng 8 0.5 in
  let caps = Array.init 8 (fun v -> if v < 2 then 1.2 else 0.5) in
  let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  let s = Problem.ssqpp_of_qpp p 3 in
  match Rounding.solve ~alpha:2. s with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      Alcotest.(check bool) "delay bound" true
        (r.Rounding.delay <= r.Rounding.delay_bound +. 1e-6);
      Alcotest.(check bool) "load bound" true
        (r.Rounding.load_violation <= 3. +. 1e-6)

let test_rounding_infeasible () =
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 2)
      ~capacities:(Array.make 2 (2. /. 3.))
      ~system ~strategy ()
  in
  Alcotest.(check bool) "None" true (Rounding.solve (Problem.ssqpp_of_qpp p 0) = None)

(* ------------------------------------------------------------------ *)
(* Grid layout (Theorem B.1)                                           *)
(* ------------------------------------------------------------------ *)

let grid_ssqpp ~k ~n ~seed =
  let rng = Rng.create seed in
  let g, _ = Generators.random_geometric rng n 0.5 in
  let system = Grid_qs.make k in
  let strategy = Strategy.uniform system in
  let caps = Array.make n (Grid_qs.element_load k) in
  let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  Problem.ssqpp_of_qpp p 0

let test_grid_rank_pattern () =
  (* k = 3 concentric pattern (1-based ranks):
       1 2 5
       3 4 6
       7 8 9 *)
  let expected = [| [| 1; 2; 5 |]; [| 3; 4; 6 |]; [| 7; 8; 9 |] |] in
  for i = 0 to 2 do
    for j = 0 to 2 do
      Alcotest.(check int) "rank" expected.(i).(j) (Grid_layout.rank_of_cell 3 i j)
    done
  done

let test_grid_layout_equals_dp () =
  for seed = 1 to 5 do
    let s = grid_ssqpp ~k:2 ~n:(6 + seed) ~seed:(400 + seed) in
    match (Grid_layout.place s, Exact.ssqpp_uniform_dp s) with
    | Some layout, Some (opt, _) ->
        Alcotest.(check bool) "concentric layout optimal" true
          (Float.abs (layout.Grid_layout.delay -. opt) < 1e-9)
    | _ -> Alcotest.fail "expected feasible"
  done

let test_grid_layout_equals_dp_k3 () =
  let s = grid_ssqpp ~k:3 ~n:12 ~seed:999 in
  match (Grid_layout.place s, Exact.ssqpp_uniform_dp s) with
  | Some layout, Some (opt, _) ->
      Alcotest.(check bool) "k=3 optimal" true
        (Float.abs (layout.Grid_layout.delay -. opt) < 1e-9)
  | _ -> Alcotest.fail "expected feasible"

let test_grid_layout_equals_dp_k4 () =
  (* |U| = 16: the largest size the subset DP covers comfortably. *)
  let s = grid_ssqpp ~k:4 ~n:20 ~seed:1001 in
  match (Grid_layout.place s, Exact.ssqpp_uniform_dp s) with
  | Some layout, Some (opt, _) ->
      Alcotest.(check bool) "k=4 optimal" true
        (Float.abs (layout.Grid_layout.delay -. opt) < 1e-9)
  | _ -> Alcotest.fail "expected feasible"

let test_grid_layout_predicted_matches () =
  let s = grid_ssqpp ~k:3 ~n:11 ~seed:123 in
  match Grid_layout.place s with
  | None -> Alcotest.fail "feasible"
  | Some layout ->
      (* Reconstruct tau (descending distances of the 9 nearest). *)
      let order = Metric.nodes_by_distance s.Problem.metric s.Problem.v0 in
      let nearest = Array.sub order 0 9 in
      let tau = Array.map (fun v -> Metric.dist s.Problem.metric s.Problem.v0 v) nearest in
      Array.sort (fun a b -> compare b a) tau;
      check_float "closed form = evaluation" (Grid_layout.predicted_delay tau 3)
        layout.Grid_layout.delay

let test_grid_layout_rejects_non_grid () =
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 4) ~capacities:(Array.make 4 1.)
      ~system ~strategy ()
  in
  Alcotest.check_raises "not a grid" (Invalid_argument "Grid_layout: system is not a k x k grid")
    (fun () -> ignore (Grid_layout.place (Problem.ssqpp_of_qpp p 0)))

let test_grid_layout_with_expansion () =
  (* Nodes with capacity for several elements. *)
  let rng = Rng.create 31 in
  let g, _ = Generators.random_geometric rng 6 0.5 in
  let k = 2 in
  let system = Grid_qs.make k in
  let strategy = Strategy.uniform system in
  let load = Grid_qs.element_load k in
  let caps = Array.init 6 (fun v -> if v mod 2 = 0 then 2.5 *. load else 0.2 *. load) in
  let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  let s = Problem.ssqpp_of_qpp p 0 in
  match Grid_layout.place_with_expansion s with
  | None -> Alcotest.fail "expected enough copies"
  | Some (_, projected) ->
      Alcotest.(check bool) "projection respects capacities" true
        (Placement.respects_capacities p projected)

(* ------------------------------------------------------------------ *)
(* Majority (Eq. 19)                                                   *)
(* ------------------------------------------------------------------ *)

let majority_ssqpp ~n ~t ~nodes ~seed =
  let rng = Rng.create seed in
  let g, _ = Generators.random_geometric rng nodes 0.5 in
  let system = Majority_qs.make ~n ~t in
  let strategy = Strategy.uniform system in
  let load = float_of_int t /. float_of_int n in
  let caps = Array.make nodes load in
  let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
  Problem.ssqpp_of_qpp p 0

let test_majority_closed_form_matches_direct () =
  let s = majority_ssqpp ~n:5 ~t:3 ~nodes:8 ~seed:500 in
  match Majority_layout.place s with
  | None -> Alcotest.fail "feasible"
  | Some (predicted, f) ->
      check_float "Eq.19 = direct evaluation" predicted (Delay.ssqpp_delay s f)

let test_majority_placement_invariance () =
  (* Any permutation of elements over the same nodes: same delay. *)
  let s = majority_ssqpp ~n:5 ~t:3 ~nodes:7 ~seed:501 in
  match Majority_layout.place s with
  | None -> Alcotest.fail "feasible"
  | Some (predicted, f) ->
      let rng = Rng.create 1 in
      for _ = 1 to 10 do
        let perm = Rng.permutation rng 5 in
        let g = Array.init 5 (fun u -> f.(perm.(u))) in
        check_float "permutation invariant" predicted (Delay.ssqpp_delay s g)
      done

let test_majority_matches_dp () =
  let s = majority_ssqpp ~n:5 ~t:3 ~nodes:8 ~seed:502 in
  match (Majority_layout.place s, Exact.ssqpp_uniform_dp s) with
  | Some (predicted, _), Some (opt, _) ->
      check_float "closed form optimal" predicted opt
  | _ -> Alcotest.fail "expected feasible"

let test_majority_threshold_recovery () =
  let system = Majority_qs.make ~n:6 ~t:4 in
  Alcotest.(check int) "t" 4 (Majority_layout.threshold_of_system system);
  Alcotest.check_raises "not threshold"
    (Invalid_argument "Majority_layout: quorums are not all the same size") (fun () ->
      ignore (Majority_layout.threshold_of_system (Simple_qs.wheel 5)))

(* ------------------------------------------------------------------ *)
(* Total delay (Theorem 5.1)                                           *)
(* ------------------------------------------------------------------ *)

let test_total_delay_thm51 () =
  for seed = 1 to 6 do
    let rng = Rng.create (600 + seed) in
    let n = 7 + Rng.int rng 4 in
    let g, _ = Generators.random_geometric rng n 0.5 in
    let system = Simple_qs.triangle () in
    let strategy = Strategy.uniform system in
    let caps = Array.make n (2. /. 3.) in
    let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
    match Total_delay.solve p with
    | None -> Alcotest.fail "feasible"
    | Some r ->
        Alcotest.(check bool) "load within 2x" true (r.Total_delay.load_violation <= 2. +. 1e-6);
        Alcotest.(check bool) "cost equals GAP objective" true
          (Float.abs (r.Total_delay.cost -. r.Total_delay.lp_cost) < 1e-6
          || r.Total_delay.cost >= r.Total_delay.lp_cost -. 1e-6);
        (* Theorem 5.1: cost <= capacity-respecting optimum. *)
        (match Exact.total_delay_brute_force p with
        | Some (opt, _) ->
            Alcotest.(check bool) "cost <= OPT" true (r.Total_delay.cost <= opt +. 1e-6)
        | None -> Alcotest.fail "brute force feasible")
  done

let test_total_delay_exact_uniform () =
  for seed = 1 to 5 do
    let rng = Rng.create (700 + seed) in
    let n = 6 + Rng.int rng 3 in
    let g, _ = Generators.random_geometric rng n 0.5 in
    let system = Simple_qs.triangle () in
    let strategy = Strategy.uniform system in
    let caps = Array.make n (2. /. 3.) in
    let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
    match (Total_delay.exact_uniform p, Exact.total_delay_brute_force p) with
    | Some (greedy, f), Some (bf, _) ->
        Alcotest.(check bool) "greedy fill optimal" true (Float.abs (greedy -. bf) < 1e-9);
        Alcotest.(check bool) "feasible" true (Placement.respects_capacities p f)
    | _ -> Alcotest.fail "expected feasible"
  done

let test_total_delay_separability () =
  (* Avg Gamma = sum_u load(u) * AvgDist(f(u)). *)
  let p, _ =
    let rng = Rng.create 800 in
    let g, _ = Generators.random_geometric rng 7 0.5 in
    let system = Simple_qs.star 4 in
    let strategy = Strategy.uniform system in
    ( Problem.of_graph_qpp ~graph:g ~capacities:(Array.make 7 2.) ~system ~strategy (),
      () )
  in
  let f = [| 1; 3; 0; 5 |] in
  let loads = Problem.element_loads p in
  let expected =
    Array.to_list (Array.mapi (fun u v -> loads.(u) *. Total_delay.avg_dist_to p v) f)
    |> List.fold_left ( +. ) 0.
  in
  check_float "separable form" expected (Delay.avg_total_delay p f)

(* ------------------------------------------------------------------ *)
(* QPP solver (Theorem 1.2)                                            *)
(* ------------------------------------------------------------------ *)

let test_qpp_solver_guarantees () =
  for seed = 1 to 4 do
    let rng = Rng.create (900 + seed) in
    let n = 6 + Rng.int rng 2 in
    let g, _ = Generators.random_geometric rng n 0.5 in
    let system = Simple_qs.triangle () in
    let strategy = Strategy.uniform system in
    let caps = Array.make n (2. /. 3.) in
    let p = Problem.of_graph_qpp ~graph:g ~capacities:caps ~system ~strategy () in
    match Qpp_solver.solve ~alpha:2. p with
    | None -> Alcotest.fail "feasible"
    | Some r ->
        Alcotest.(check bool) "load within alpha+1" true (r.Qpp_solver.load_violation <= 3. +. 1e-6);
        check_float "bound constant" 10. r.Qpp_solver.approx_bound;
        (* Against the exhaustive optimum. *)
        (match Exact.qpp_brute_force p with
        | Some (opt, _) ->
            Alcotest.(check bool) "within 10x OPT" true
              (r.Qpp_solver.objective <= (10. *. opt) +. 1e-6);
            (match r.Qpp_solver.lower_bound with
            | Some lb ->
                Alcotest.(check bool) "lower bound valid" true (lb <= opt +. 1e-6)
            | None -> Alcotest.fail "expected lower bound")
        | None -> Alcotest.fail "brute force feasible");
        Alcotest.(check bool) "direct <= relayed" true
          (r.Qpp_solver.objective <= r.Qpp_solver.relayed_objective +. 1e-9)
  done

let test_qpp_solver_with_client_rates () =
  (* The Section 6 extension: rate-weighted objective. The guarantee
     chain (Lemma 3.1 generalizes per the paper) must hold against the
     rate-weighted exhaustive optimum. *)
  for seed = 1 to 3 do
    let rng = Rng.create (9600 + seed) in
    let n = 6 in
    let g, _ = Generators.random_geometric rng n 0.55 in
    let system = Simple_qs.triangle () in
    let strategy = Strategy.uniform system in
    let rates = Array.init n (fun _ -> 0.2 +. Rng.float rng 3.) in
    let p =
      Problem.of_graph_qpp ~graph:g ~capacities:(Array.make n (2. /. 3.)) ~system
        ~strategy ~client_rates:rates ()
    in
    match Qpp_solver.solve ~alpha:2. p with
    | None -> Alcotest.fail "feasible"
    | Some r -> (
        Alcotest.(check bool) "load bound" true (r.Qpp_solver.load_violation <= 3. +. 1e-6);
        match Exact.qpp_brute_force p with
        | Some (opt, _) ->
            Alcotest.(check bool) "within 10x weighted OPT" true
              (r.Qpp_solver.objective <= (10. *. opt) +. 1e-6);
            (match r.Qpp_solver.lower_bound with
            | Some lb -> Alcotest.(check bool) "weighted LB valid" true (lb <= opt +. 1e-6)
            | None -> Alcotest.fail "expected lower bound")
        | None -> Alcotest.fail "brute force feasible")
  done

let test_qpp_solver_candidate_subset () =
  let rng = Rng.create 950 in
  let g, _ = Generators.random_geometric rng 7 0.5 in
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  let p =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make 7 (2. /. 3.)) ~system ~strategy ()
  in
  match Qpp_solver.solve ~alpha:2. ~candidates:[ 0; 3 ] p with
  | None -> Alcotest.fail "feasible"
  | Some r ->
      Alcotest.(check bool) "no lower bound on subset" true (r.Qpp_solver.lower_bound = None);
      Alcotest.(check bool) "v0 from subset" true (r.Qpp_solver.v0 = 0 || r.Qpp_solver.v0 = 3)

(* ------------------------------------------------------------------ *)
(* Integrality gap (Claim A.1)                                         *)
(* ------------------------------------------------------------------ *)

let test_integrality_path () =
  let n = 8 and m = 100. in
  let s = Integrality.path_instance ~n ~m in
  let r = Integrality.measure s in
  check_float "integral = M" m r.Integrality.integral_opt;
  (* LP value <= (n-2 + M)/n (the uniform spread is feasible). *)
  Alcotest.(check bool) "LP small" true
    (r.Integrality.lp_value <= ((float_of_int (n - 2) +. m) /. float_of_int n) +. 1e-6);
  Alcotest.(check bool) "gap large" true (r.Integrality.gap >= float_of_int n /. 2.)

let test_integrality_figure1 () =
  let k = 4 in
  let s = Integrality.figure1_instance k in
  let r = Integrality.measure s in
  check_float "integral = k" (float_of_int k) r.Integrality.integral_opt;
  (* LP is at most ~1.5 + o(1) on this family. *)
  Alcotest.(check bool) "LP below 2" true (r.Integrality.lp_value <= 2.);
  Alcotest.(check bool) "gap grows with k" true (r.Integrality.gap >= float_of_int k /. 2.)

let test_integrality_rejects_multi_quorum () =
  let system = Simple_qs.triangle () in
  let strategy = Strategy.uniform system in
  let p =
    Problem.of_graph_qpp ~graph:(Generators.path 4) ~capacities:(Array.make 4 1.)
      ~system ~strategy ()
  in
  Alcotest.check_raises "single quorum only"
    (Invalid_argument "Integrality.measure: single-quorum instances only") (fun () ->
      ignore (Integrality.measure (Problem.ssqpp_of_qpp p 0)))

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_thm37_random =
  QCheck.Test.make ~name:"Theorem 3.7 guarantees (random instances)" ~count:15
    QCheck.small_int (fun seed ->
      let s = random_uniform_ssqpp (5000 + seed) in
      match Rounding.solve ~alpha:2. s with
      | None -> false
      | Some r ->
          r.Rounding.delay <= r.Rounding.delay_bound +. 1e-6
          && r.Rounding.load_violation <= 3. +. 1e-6)

let prop_grid_concentric_optimal =
  QCheck.Test.make ~name:"Theorem B.1: concentric layout optimal (k=2)" ~count:10
    QCheck.small_int (fun seed ->
      let s = grid_ssqpp ~k:2 ~n:(6 + (seed mod 4)) ~seed:(6000 + seed) in
      match (Grid_layout.place s, Exact.ssqpp_uniform_dp s) with
      | Some layout, Some (opt, _) -> Float.abs (layout.Grid_layout.delay -. opt) < 1e-9
      | _ -> false)

let prop_majority_any_placement_same_delay =
  QCheck.Test.make ~name:"Eq. 19: all placements on same nodes equal" ~count:10
    QCheck.small_int (fun seed ->
      let s = majority_ssqpp ~n:5 ~t:3 ~nodes:7 ~seed:(7000 + seed) in
      match Majority_layout.place s with
      | None -> false
      | Some (predicted, f) ->
          let rng = Rng.create seed in
          let perm = Rng.permutation rng 5 in
          let g = Array.init 5 (fun u -> f.(perm.(u))) in
          Float.abs (Delay.ssqpp_delay s g -. predicted) < 1e-9)

(* Scaling every distance by a positive factor must scale Z*, the
   rounded delay, and the exact optimum by exactly that factor (the
   algorithms are combinatorial in the ranks, which scaling
   preserves). Guards against hidden absolute-epsilon dependencies. *)
let prop_scale_invariance =
  QCheck.Test.make ~name:"solver pipeline is scale-invariant" ~count:8
    QCheck.(pair small_int (float_range 3. 1000.))
    (fun (seed, factor) ->
      let s = random_uniform_ssqpp (8000 + seed) in
      let scaled =
        Problem.make_ssqpp
          ~metric:(Metric.scale s.Problem.metric factor)
          ~capacities:s.Problem.capacities ~system:s.Problem.system
          ~strategy:s.Problem.strategy ~v0:s.Problem.v0
      in
      match (Rounding.solve ~alpha:2. s, Rounding.solve ~alpha:2. scaled) with
      | Some a, Some b ->
          let close x y =
            Float.abs ((factor *. x) -. y) <= 1e-6 *. Float.max 1. (Float.abs y)
          in
          close a.Rounding.z_star b.Rounding.z_star
          && close a.Rounding.delay b.Rounding.delay
      | _ -> false)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_thm37_random; prop_grid_concentric_optimal;
      prop_majority_any_placement_same_delay; prop_scale_invariance;
    ]

let suites =
  [
    ( "place.lp",
      [
        Alcotest.test_case "Z* lower-bounds OPT" `Quick test_lp_lower_bounds_exact;
        Alcotest.test_case "infeasible detection" `Quick test_lp_infeasible_detection;
        Alcotest.test_case "zero when colocated" `Quick test_lp_zero_when_colocated;
        Alcotest.test_case "ordering fields" `Quick test_lp_ordering_fields;
      ] );
    ( "place.filtering",
      [
        Alcotest.test_case "invariants across alpha" `Quick test_filtering_invariants;
        Alcotest.test_case "alpha validation" `Quick test_filtering_rejects_alpha;
      ] );
    ( "place.rounding",
      [
        Alcotest.test_case "Theorem 3.7 (alpha=2)" `Quick test_rounding_thm37_alpha2;
        Alcotest.test_case "alpha sweep" `Quick test_rounding_thm37_alpha_sweep;
        Alcotest.test_case "heterogeneous loads" `Quick test_rounding_heterogeneous_loads;
        Alcotest.test_case "infeasible" `Quick test_rounding_infeasible;
      ] );
    ( "place.grid_layout",
      [
        Alcotest.test_case "rank pattern" `Quick test_grid_rank_pattern;
        Alcotest.test_case "optimal k=2" `Quick test_grid_layout_equals_dp;
        Alcotest.test_case "optimal k=3" `Quick test_grid_layout_equals_dp_k3;
        Alcotest.test_case "optimal k=4" `Quick test_grid_layout_equals_dp_k4;
        Alcotest.test_case "closed form matches" `Quick test_grid_layout_predicted_matches;
        Alcotest.test_case "rejects non-grid" `Quick test_grid_layout_rejects_non_grid;
        Alcotest.test_case "expansion" `Quick test_grid_layout_with_expansion;
      ] );
    ( "place.majority",
      [
        Alcotest.test_case "Eq.19 = direct" `Quick test_majority_closed_form_matches_direct;
        Alcotest.test_case "placement invariance" `Quick test_majority_placement_invariance;
        Alcotest.test_case "matches DP optimum" `Quick test_majority_matches_dp;
        Alcotest.test_case "threshold recovery" `Quick test_majority_threshold_recovery;
      ] );
    ( "place.total_delay",
      [
        Alcotest.test_case "Theorem 5.1" `Quick test_total_delay_thm51;
        Alcotest.test_case "exact uniform greedy" `Quick test_total_delay_exact_uniform;
        Alcotest.test_case "separability" `Quick test_total_delay_separability;
      ] );
    ( "place.qpp_solver",
      [
        Alcotest.test_case "Theorem 1.2 guarantees" `Quick test_qpp_solver_guarantees;
        Alcotest.test_case "candidate subset" `Quick test_qpp_solver_candidate_subset;
        Alcotest.test_case "client rates (Section 6)" `Quick test_qpp_solver_with_client_rates;
      ] );
    ( "place.integrality",
      [
        Alcotest.test_case "path instance" `Quick test_integrality_path;
        Alcotest.test_case "figure-1 instance" `Quick test_integrality_figure1;
        Alcotest.test_case "rejects multi-quorum" `Quick test_integrality_rejects_multi_quorum;
      ] );
    ("place.algo_properties", qcheck_tests);
  ]
