open Qp_graph
module Rng = Qp_util.Rng

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let test_heap_order () =
  let h = Heap.create () in
  let rng = Rng.create 1 in
  let xs = Array.init 500 (fun _ -> Rng.uniform rng) in
  Array.iter (fun x -> Heap.push h x x) xs;
  let prev = ref neg_infinity in
  let count = ref 0 in
  let rec drain () =
    match Heap.pop_min h with
    | None -> ()
    | Some (k, v) ->
        check_float "key = value" k v;
        Alcotest.(check bool) "nondecreasing" true (k >= !prev);
        prev := k;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check int) "drained all" 500 !count

let test_heap_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop_min h = None);
  Heap.push h 1.0 "a";
  Alcotest.(check bool) "nonempty" false (Heap.is_empty h);
  Alcotest.(check bool) "peek" true (Heap.peek_min h = Some (1.0, "a"));
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let test_graph_basic () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 2.0;
  Graph.add_edge g 1 2 3.0;
  Alcotest.(check int) "n" 4 (Graph.n_vertices g);
  Alcotest.(check int) "m" 2 (Graph.n_edges g);
  Alcotest.(check (option (float 1e-9))) "edge len" (Some 2.0) (Graph.edge_length g 1 0);
  Alcotest.(check (option (float 1e-9))) "missing edge" None (Graph.edge_length g 0 3);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1)

let test_graph_parallel_edge_min () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 5.0;
  Graph.add_edge g 0 1 2.0;
  Graph.add_edge g 0 1 9.0;
  Alcotest.(check int) "still one edge" 1 (Graph.n_edges g);
  Alcotest.(check (option (float 1e-9))) "min kept" (Some 2.0) (Graph.edge_length g 0 1)

let test_graph_rejects () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Graph.add_edge g 1 1 1.0);
  Alcotest.check_raises "bad length" (Invalid_argument "Graph.add_edge: non-positive length")
    (fun () -> Graph.add_edge g 0 1 0.0);
  Alcotest.check_raises "out of range" (Invalid_argument "Graph.add_edge: vertex out of range")
    (fun () -> Graph.add_edge g 0 7 1.0)

let test_graph_connectivity () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.;
  Graph.add_edge g 2 3 1.;
  Alcotest.(check bool) "disconnected" false (Graph.is_connected g);
  Graph.add_edge g 1 2 1.;
  Alcotest.(check bool) "connected" true (Graph.is_connected g);
  Alcotest.(check bool) "empty connected" true (Graph.is_connected (Graph.create 0))

let test_graph_iter_edges_once () =
  let g = Generators.complete 5 in
  let count = ref 0 in
  Graph.iter_edges g (fun u v _ ->
      Alcotest.(check bool) "u < v" true (u < v);
      incr count);
  Alcotest.(check int) "edge count" 10 !count

(* ------------------------------------------------------------------ *)
(* Dijkstra / APSP                                                     *)
(* ------------------------------------------------------------------ *)

let test_dijkstra_path_graph () =
  let g = Generators.path 5 in
  let d = Dijkstra.distances g 0 in
  Array.iteri (fun i di -> check_float "distance" (float_of_int i) di) d

let test_dijkstra_weighted () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 1.0;
  Graph.add_edge g 0 2 5.0;
  Graph.add_edge g 2 3 1.0;
  let d = Dijkstra.distances g 0 in
  check_float "shortcut ignored" 2.0 d.(2);
  check_float "end" 3.0 d.(3)

let test_dijkstra_unreachable () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.0;
  let d = Dijkstra.distances g 0 in
  Alcotest.(check bool) "unreachable = inf" true (d.(2) = infinity);
  Alcotest.(check bool) "no path" true (Dijkstra.path g 0 2 = None)

let test_dijkstra_path_reconstruction () =
  let g = Generators.cycle 6 in
  match Dijkstra.path g 0 3 with
  | None -> Alcotest.fail "expected path"
  | Some p ->
      Alcotest.(check int) "path length" 4 (List.length p);
      Alcotest.(check int) "starts at src" 0 (List.hd p);
      Alcotest.(check int) "ends at dst" 3 (List.nth p 3)

let random_connected_graph seed n =
  let rng = Rng.create seed in
  let g = Generators.erdos_renyi rng n 0.2 in
  (* Randomize lengths while keeping connectivity: rebuild with random
     weights on the same edge set. *)
  let g' = Graph.create n in
  Graph.iter_edges g (fun u v _ -> Graph.add_edge g' u v (0.1 +. Rng.uniform rng));
  g'

let test_apsp_dijkstra_equals_floyd () =
  for seed = 1 to 10 do
    let g = random_connected_graph seed 20 in
    let a = Apsp.repeated_dijkstra g in
    let b = Apsp.floyd_warshall g in
    for i = 0 to 19 do
      for j = 0 to 19 do
        Alcotest.(check bool) "apsp agree" true (Float.abs (a.(i).(j) -. b.(i).(j)) < 1e-9)
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Metric                                                              *)
(* ------------------------------------------------------------------ *)

let test_metric_of_graph_triangle () =
  for seed = 1 to 10 do
    let g = random_connected_graph (100 + seed) 15 in
    let m = Metric.of_graph g in
    Alcotest.(check bool) "triangle holds" true (Metric.check_triangle m = None)
  done

let test_metric_rejects_disconnected () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.0;
  Alcotest.check_raises "disconnected" (Invalid_argument "Metric.of_graph: disconnected graph")
    (fun () -> ignore (Metric.of_graph g))

let test_metric_of_matrix_validation () =
  Alcotest.check_raises "asymmetric" (Invalid_argument "Metric.of_matrix: not symmetric")
    (fun () -> ignore (Metric.of_matrix [| [| 0.; 1. |]; [| 2.; 0. |] |]));
  Alcotest.check_raises "diag" (Invalid_argument "Metric.of_matrix: non-zero diagonal")
    (fun () -> ignore (Metric.of_matrix [| [| 1. |] |]))

let test_metric_triangle_detector () =
  (* d(0,2)=10 violates via middle point 1: 1 + 1 < 10. *)
  let m = Metric.of_matrix [| [| 0.; 1.; 10. |]; [| 1.; 0.; 1. |]; [| 10.; 1.; 0. |] |] in
  Alcotest.(check bool) "violation found" true (Metric.check_triangle m <> None)

let test_metric_nodes_by_distance () =
  let g = Generators.path 5 in
  let m = Metric.of_graph g in
  Alcotest.(check (array int)) "order from end" [| 4; 3; 2; 1; 0 |] (Metric.nodes_by_distance m 4);
  Alcotest.(check (array int)) "order from middle" [| 2; 1; 3; 0; 4 |] (Metric.nodes_by_distance m 2)

let test_metric_avg_and_diameter () =
  let m = Metric.of_graph (Generators.path 3) in
  check_float "diameter" 2.0 (Metric.diameter m);
  check_float "avg from end" 1.0 (Metric.average_distance m 0);
  check_float "avg from middle" (2. /. 3.) (Metric.average_distance m 1)

let test_metric_submetric_scale () =
  let m = Metric.of_graph (Generators.path 5) in
  let s = Metric.submetric m [| 0; 4 |] in
  Alcotest.(check int) "size" 2 (Metric.size s);
  check_float "kept distance" 4.0 (Metric.dist s 0 1);
  let sc = Metric.scale m 2.0 in
  check_float "scaled" 8.0 (Metric.dist sc 0 4)

(* ------------------------------------------------------------------ *)
(* Union-find / MST                                                    *)
(* ------------------------------------------------------------------ *)

let test_union_find () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "classes" 5 (Union_find.n_classes uf);
  Alcotest.(check bool) "union new" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "union dup" false (Union_find.union uf 1 0);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "not same" false (Union_find.same uf 0 2);
  Alcotest.(check int) "classes after" 4 (Union_find.n_classes uf)

let test_mst_known () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 2.0;
  Graph.add_edge g 2 3 1.0;
  Graph.add_edge g 0 3 10.0;
  Graph.add_edge g 0 2 2.5;
  let mst = Mst.kruskal g in
  Alcotest.(check int) "n-1 edges" 3 (List.length mst);
  check_float "weight" 4.0 (Mst.total_weight mst)

let test_mst_spans () =
  let rng = Rng.create 77 in
  let g, _ = Generators.random_geometric rng 30 0.3 in
  let mst = Mst.kruskal g in
  Alcotest.(check int) "spanning" (Graph.n_vertices g - 1) (List.length mst)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_generators_shapes () =
  Alcotest.(check int) "path edges" 9 (Graph.n_edges (Generators.path 10));
  Alcotest.(check int) "cycle edges" 10 (Graph.n_edges (Generators.cycle 10));
  Alcotest.(check int) "star edges" 9 (Graph.n_edges (Generators.star 10));
  Alcotest.(check int) "complete edges" 45 (Graph.n_edges (Generators.complete 10));
  Alcotest.(check int) "grid edges" 12 (Graph.n_edges (Generators.grid2d 3 3));
  Alcotest.(check int) "torus edges" 18 (Graph.n_edges (Generators.torus2d 3 3));
  Alcotest.(check int) "barbell vertices" 8 (Graph.n_vertices (Generators.barbell 4))

let test_generators_connected () =
  let rng = Rng.create 5 in
  let graphs =
    [
      Generators.random_tree rng 40;
      Generators.erdos_renyi rng 40 0.05;
      fst (Generators.random_geometric rng 40 0.2);
      fst (Generators.waxman rng 40 ());
      Generators.caterpillar rng 40;
      Generators.integrality_gap_graph 5;
    ]
  in
  List.iter (fun g -> Alcotest.(check bool) "connected" true (Graph.is_connected g)) graphs

let test_generators_tree_edge_count () =
  let rng = Rng.create 9 in
  let g = Generators.random_tree rng 25 in
  Alcotest.(check int) "tree edges" 24 (Graph.n_edges g)

let test_gap_graph_distances () =
  (* Distances from v0 sorted must be 0, then 1 x (n-k), then 2..k. *)
  let k = 5 in
  let g = Generators.integrality_gap_graph k in
  let n = k * k in
  Alcotest.(check int) "n = k^2" n (Graph.n_vertices g);
  let d = Dijkstra.distances g 0 in
  let sorted = Array.copy d in
  Array.sort compare sorted;
  check_float "self" 0. sorted.(0);
  for i = 1 to n - k do
    check_float "unit spokes" 1. sorted.(i)
  done;
  for j = 2 to k do
    check_float "tail path" (float_of_int j) sorted.(n - k + j - 1)
  done

let test_weighted_path () =
  let g = Generators.weighted_path [| 2.; 3.; 4. |] in
  let d = Dijkstra.distances g 0 in
  check_float "cumulative" 9.0 d.(3)

let test_dot_output () =
  let g = Generators.path 3 in
  let s = Dot.of_graph ~highlight:[ 1 ] g in
  Alcotest.(check bool) "nonempty dot" true (String.length s > 20)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

let prop_dijkstra_triangle =
  QCheck.Test.make ~name:"graph metric satisfies triangle inequality" ~count:30
    QCheck.(pair small_int (int_range 4 25))
    (fun (seed, n) ->
      let g = random_connected_graph seed n in
      Metric.check_triangle (Metric.of_graph g) = None)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:100
    QCheck.(list (float_range 0. 1000.))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h x ()) xs;
      let rec drain acc =
        match Heap.pop_min h with None -> List.rev acc | Some (k, ()) -> drain (k :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare xs)

let prop_mst_weight_leq_any_spanning_subgraph =
  QCheck.Test.make ~name:"MST weight <= path-tree weight" ~count:30
    QCheck.(pair small_int (int_range 3 15))
    (fun (seed, n) ->
      let g = random_connected_graph seed n in
      let mst_w = Mst.total_weight (Mst.kruskal g) in
      (* Compare against the shortest-path tree from vertex 0. *)
      let _, parent = Dijkstra.distances_with_parents g 0 in
      let spt_w = ref 0. in
      Array.iteri
        (fun v p ->
          if p >= 0 then
            match Graph.edge_length g v p with Some l -> spt_w := !spt_w +. l | None -> ())
        parent;
      mst_w <= !spt_w +. 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_dijkstra_triangle; prop_heap_sorts; prop_mst_weight_leq_any_spanning_subgraph ]

let suites =
  [
    ( "graph.heap",
      [
        Alcotest.test_case "sorted drain" `Quick test_heap_order;
        Alcotest.test_case "empty behaviour" `Quick test_heap_empty;
      ] );
    ( "graph.core",
      [
        Alcotest.test_case "basic" `Quick test_graph_basic;
        Alcotest.test_case "parallel edges keep min" `Quick test_graph_parallel_edge_min;
        Alcotest.test_case "rejects invalid edges" `Quick test_graph_rejects;
        Alcotest.test_case "connectivity" `Quick test_graph_connectivity;
        Alcotest.test_case "iter_edges visits once" `Quick test_graph_iter_edges_once;
      ] );
    ( "graph.shortest_paths",
      [
        Alcotest.test_case "path graph" `Quick test_dijkstra_path_graph;
        Alcotest.test_case "weighted" `Quick test_dijkstra_weighted;
        Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable;
        Alcotest.test_case "path reconstruction" `Quick test_dijkstra_path_reconstruction;
        Alcotest.test_case "dijkstra = floyd-warshall" `Quick test_apsp_dijkstra_equals_floyd;
      ] );
    ( "graph.metric",
      [
        Alcotest.test_case "triangle inequality" `Quick test_metric_of_graph_triangle;
        Alcotest.test_case "rejects disconnected" `Quick test_metric_rejects_disconnected;
        Alcotest.test_case "matrix validation" `Quick test_metric_of_matrix_validation;
        Alcotest.test_case "violation detector" `Quick test_metric_triangle_detector;
        Alcotest.test_case "nodes by distance" `Quick test_metric_nodes_by_distance;
        Alcotest.test_case "avg + diameter" `Quick test_metric_avg_and_diameter;
        Alcotest.test_case "submetric + scale" `Quick test_metric_submetric_scale;
      ] );
    ( "graph.mst",
      [
        Alcotest.test_case "union-find" `Quick test_union_find;
        Alcotest.test_case "known instance" `Quick test_mst_known;
        Alcotest.test_case "spans" `Quick test_mst_spans;
      ] );
    ( "graph.generators",
      [
        Alcotest.test_case "shapes" `Quick test_generators_shapes;
        Alcotest.test_case "connectivity" `Quick test_generators_connected;
        Alcotest.test_case "tree edge count" `Quick test_generators_tree_edge_count;
        Alcotest.test_case "figure-1 gap graph distances" `Quick test_gap_graph_distances;
        Alcotest.test_case "weighted path" `Quick test_weighted_path;
        Alcotest.test_case "dot export" `Quick test_dot_output;
      ] );
    ("graph.properties", qcheck_tests);
  ]
