open Qp_quorum
module Rng = Qp_util.Rng
module Combin = Qp_util.Combin

(* ------------------------------------------------------------------ *)
(* Byzantine quorum systems                                            *)
(* ------------------------------------------------------------------ *)

let test_intersection_degree_basics () =
  Alcotest.(check int) "triangle overlap 1" 1
    (Byzantine_qs.intersection_degree (Simple_qs.triangle ()));
  (* FPP: any two lines meet in exactly one point. *)
  Alcotest.(check int) "fpp overlap 1" 1 (Byzantine_qs.intersection_degree (Fpp_qs.make 3));
  (* Single-quorum system: degree = universe. *)
  Alcotest.(check int) "singleton" 4
    (Byzantine_qs.intersection_degree (Quorum.make ~universe:4 [| [| 0; 1; 2; 3 |] |]))

let test_majority_intersection_degree () =
  (* t-of-n threshold: min overlap = 2t - n. *)
  let s = Majority_qs.make ~n:7 ~t:5 in
  Alcotest.(check int) "2t-n" 3 (Byzantine_qs.intersection_degree s);
  Alcotest.(check int) "max dissemination f" 2 (Byzantine_qs.max_dissemination_f s);
  Alcotest.(check int) "max masking f" 1 (Byzantine_qs.max_masking_f s)

let test_dissemination_construction () =
  let n = 7 and f = 2 in
  let s = Byzantine_qs.dissemination_majority ~n ~f in
  Alcotest.(check bool) "is dissemination" true (Byzantine_qs.is_dissemination s ~f);
  Alcotest.(check bool) "intersecting" true (Quorum.all_intersecting s);
  (* Quorums small enough to survive f crashes. *)
  Array.iter
    (fun q -> Alcotest.(check bool) "available after f crashes" true (Array.length q <= n - f))
    (Quorum.quorums s)

let test_masking_construction () =
  let n = 9 and f = 2 in
  let s = Byzantine_qs.masking_majority ~n ~f in
  Alcotest.(check bool) "is masking" true (Byzantine_qs.is_masking s ~f);
  Alcotest.(check bool) "masking implies dissemination" true
    (Byzantine_qs.is_dissemination s ~f);
  Array.iter
    (fun q -> Alcotest.(check bool) "available after f crashes" true (Array.length q <= n - f))
    (Quorum.quorums s)

let test_byzantine_bounds () =
  Alcotest.check_raises "dissemination needs 3f+1"
    (Invalid_argument "Byzantine_qs.dissemination_majority: n >= 3f + 1 required")
    (fun () -> ignore (Byzantine_qs.dissemination_majority ~n:6 ~f:2));
  Alcotest.check_raises "masking needs 4f+1"
    (Invalid_argument "Byzantine_qs.masking_majority: n >= 4f + 1 required") (fun () ->
      ignore (Byzantine_qs.masking_majority ~n:8 ~f:2));
  (* Plain majority is 0-masking but not 1-dissemination when overlap
     is 1. *)
  let plain = Majority_qs.make ~n:5 ~t:3 in
  Alcotest.(check bool) "0-masking" true (Byzantine_qs.is_masking plain ~f:0);
  Alcotest.(check bool) "not 1-dissemination" false
    (Byzantine_qs.is_dissemination plain ~f:1)

let prop_threshold_overlap_formula =
  QCheck.Test.make ~name:"threshold overlap = 2t - n" ~count:25
    QCheck.(pair (int_range 3 9) (int_range 0 4))
    (fun (n, delta) ->
      let t = (n / 2) + 1 + delta in
      t > n
      || Combin.binomial n t = 0
      ||
      let s = Majority_qs.make ~n ~t in
      (* Only when at least two quorums exist. *)
      Quorum.n_quorums s < 2 || Byzantine_qs.intersection_degree s = (2 * t) - n)

(* ------------------------------------------------------------------ *)
(* Probe complexity                                                    *)
(* ------------------------------------------------------------------ *)

let test_probe_no_failures () =
  let rng = Rng.create 1 in
  (* With p = 0 the greedy prober verifies a smallest quorum. *)
  List.iter
    (fun system ->
      let o = Probe.greedy_probe rng system ~p:0. in
      Alcotest.(check bool) "found" true o.Probe.found;
      Alcotest.(check int) "c(Q) probes" (Probe.min_quorum_size system) o.Probe.probes)
    [ Simple_qs.triangle (); Grid_qs.make 3; Simple_qs.wheel 6; Fpp_qs.make 2 ]

let test_probe_all_dead () =
  let rng = Rng.create 2 in
  let system = Simple_qs.triangle () in
  let o = Probe.greedy_probe rng system ~p:1. in
  Alcotest.(check bool) "not found" false o.Probe.found;
  (* Two dead elements kill all three pair-quorums. *)
  Alcotest.(check int) "two probes suffice to refute" 2 o.Probe.probes

let test_probe_estimate_consistency () =
  let rng = Rng.create 3 in
  let system = Majority_qs.make ~n:5 ~t:3 in
  let st = Probe.estimate rng system ~p:0.2 ~samples:4000 in
  (* Success rate should track the availability of the system under
     iid failures (the prober is exhaustive: it fails only when no
     quorum is alive). *)
  let expected_up = 1. -. Availability.failure_probability system 0.2 in
  Alcotest.(check bool) "success ~ availability" true
    (Float.abs (st.Probe.success_rate -. expected_up) < 0.03);
  Alcotest.(check bool) "probes >= c(Q)" true
    (st.Probe.mean_probes_on_success >= float_of_int (Probe.min_quorum_size system) -. 1e-9)

let prop_probe_exhaustive =
  QCheck.Test.make ~name:"greedy prober success iff some quorum alive" ~count:60
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let system =
        match seed mod 3 with
        | 0 -> Simple_qs.triangle ()
        | 1 -> Grid_qs.make 2
        | _ -> Majority_qs.make ~n:5 ~t:3
      in
      (* Run the prober and an independent oracle on the SAME failure
         pattern: re-derive the pattern by reusing the seed is not
         possible (adaptive draws), so instead check the logical
         implications: found => at least c(Q) probes; not found =>
         probes cover a transversal of dead elements. This weaker but
         deterministic property must always hold. *)
      let o = Probe.greedy_probe rng system ~p:0.4 in
      if o.Probe.found then o.Probe.probes >= Probe.min_quorum_size system
      else o.Probe.probes >= 1)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest [ prop_threshold_overlap_formula; prop_probe_exhaustive ]

let suites =
  [
    ( "quorum.byzantine",
      [
        Alcotest.test_case "intersection degree" `Quick test_intersection_degree_basics;
        Alcotest.test_case "majority overlap" `Quick test_majority_intersection_degree;
        Alcotest.test_case "dissemination construction" `Quick test_dissemination_construction;
        Alcotest.test_case "masking construction" `Quick test_masking_construction;
        Alcotest.test_case "bounds + rejections" `Quick test_byzantine_bounds;
      ] );
    ( "quorum.probe",
      [
        Alcotest.test_case "failure-free optimum" `Quick test_probe_no_failures;
        Alcotest.test_case "all dead" `Quick test_probe_all_dead;
        Alcotest.test_case "estimate ~ availability" `Quick test_probe_estimate_consistency;
      ] );
    ("byzantine.properties", qcheck_tests);
  ]
