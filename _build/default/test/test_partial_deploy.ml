module Rng = Qp_util.Rng
module Generators = Qp_graph.Generators
module Quorum = Qp_quorum.Quorum
module Strategy = Qp_quorum.Strategy
open Qp_place

(* A GM-shaped instance: |Q| = |V| = |U| = n. The wheel on n elements
   has exactly n quorums, so it fits naturally. *)
let gm_instance seed n =
  let rng = Rng.create seed in
  let g, _ = Generators.random_geometric rng n 0.6 in
  let system = Qp_quorum.Simple_qs.wheel n in
  Problem.of_graph_qpp ~graph:g ~capacities:(Array.make n 99.) ~system
    ~strategy:(Strategy.uniform system) ()

let is_bijection a n =
  let seen = Array.make n false in
  Array.length a = n
  && Array.for_all
       (fun v ->
         if v < 0 || v >= n || seen.(v) then false
         else begin
           seen.(v) <- true;
           true
         end)
       a

let test_shapes_and_bijectivity () =
  let p = gm_instance 1 6 in
  let d = Partial_deploy.solve p in
  Alcotest.(check bool) "placement bijective" true
    (is_bijection d.Partial_deploy.placement 6);
  Alcotest.(check bool) "quorum map bijective" true
    (is_bijection d.Partial_deploy.quorum_of_client 6);
  Alcotest.(check (float 1e-9)) "cost consistent" d.Partial_deploy.cost
    (Partial_deploy.cost_of p d.Partial_deploy.placement d.Partial_deploy.quorum_of_client)

let test_rejects_non_square () =
  let rng = Rng.create 2 in
  let g, _ = Generators.random_geometric rng 6 0.6 in
  let system = Qp_quorum.Simple_qs.triangle () in
  let p =
    Problem.of_graph_qpp ~graph:g ~capacities:(Array.make 6 1.) ~system
      ~strategy:(Strategy.uniform system) ()
  in
  Alcotest.check_raises "shape" (Invalid_argument "Partial_deploy: requires |Q| = |V| = |U|")
    (fun () -> ignore (Partial_deploy.solve p))

let test_local_optimality () =
  (* At the fixpoint, neither half-step can improve: re-running solve
     from the result's maps yields the same cost. *)
  let p = gm_instance 3 7 in
  let d = Partial_deploy.solve p in
  (* Perturb q arbitrarily: cost must not beat the fixpoint best-q. *)
  let n = 7 in
  let rng = Rng.create 17 in
  for _ = 1 to 30 do
    let perm = Rng.permutation rng n in
    Alcotest.(check bool) "no random q beats the matched q" true
      (Partial_deploy.cost_of p d.Partial_deploy.placement perm
      >= d.Partial_deploy.cost -. 1e-9)
  done

let test_matches_brute_force_on_tiny () =
  (* The alternation is a heuristic; verify it never goes below the
     true optimum, and report that it achieves it on these tiny
     instances (it does for all tested seeds). *)
  for seed = 1 to 6 do
    let p = gm_instance (100 + seed) 4 in
    let d = Partial_deploy.solve p in
    let opt = Partial_deploy.brute_force p in
    Alcotest.(check bool) "never below optimum" true
      (d.Partial_deploy.cost >= opt -. 1e-9);
    Alcotest.(check bool) "close to optimum (<= 1.10x)" true
      (d.Partial_deploy.cost <= (1.10 *. opt) +. 1e-9)
  done

let test_brute_force_guard () =
  let p = gm_instance 7 6 in
  Alcotest.check_raises "guard" (Invalid_argument "Partial_deploy.brute_force: n <= 5 required")
    (fun () -> ignore (Partial_deploy.brute_force p))

let prop_alternation_monotone =
  QCheck.Test.make ~name:"alternation result never beaten by random maps" ~count:20
    QCheck.small_int (fun seed ->
      let n = 5 in
      let p = gm_instance (seed + 500) n in
      let d = Partial_deploy.solve p in
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 25 do
        let f = Rng.permutation rng n in
        let q = Rng.permutation rng n in
        (* Random (f, q) pairs should rarely beat the local optimum;
           they must NEVER beat the brute-force optimum, which the
           local optimum upper-bounds within 10% on these sizes. *)
        if Partial_deploy.cost_of p f q < Partial_deploy.brute_force p -. 1e-9 then
          ok := false
      done;
      !ok && d.Partial_deploy.cost >= Partial_deploy.brute_force p -. 1e-9)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_alternation_monotone ]

let suites =
  [
    ( "place.partial_deploy",
      [
        Alcotest.test_case "bijectivity" `Quick test_shapes_and_bijectivity;
        Alcotest.test_case "rejects non-square" `Quick test_rejects_non_square;
        Alcotest.test_case "local optimality" `Quick test_local_optimality;
        Alcotest.test_case "vs brute force" `Quick test_matches_brute_force_on_tiny;
        Alcotest.test_case "brute force guard" `Quick test_brute_force_guard;
      ] );
    ("partial_deploy.properties", qcheck_tests);
  ]
