test/test_design.ml: Alcotest Float List QCheck QCheck_alcotest Qp_design Qp_graph Qp_quorum Qp_util
