test/test_assign.ml: Alcotest Array Gap Gap_lp List Mcmf QCheck QCheck_alcotest Qp_assign Qp_util Shmoys_tardos
