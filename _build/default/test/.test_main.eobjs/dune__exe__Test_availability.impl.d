test/test_availability.ml: Alcotest Array Availability Float Fpp_qs Grid_qs List Majority_qs QCheck QCheck_alcotest Qp_quorum Qp_util Quorum Simple_qs Strategy Strategy_lp Tree_qs Voting_qs Walls_qs
