test/test_util.ml: Alcotest Array Combin Float Floatx List QCheck QCheck_alcotest Qp_util Rng Stats String Table
