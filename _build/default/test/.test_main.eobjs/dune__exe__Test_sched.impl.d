test/test_sched.ml: Alcotest Array Float List QCheck QCheck_alcotest Qp_graph Qp_quorum Qp_sched Qp_util Reduction Sched Sched_exact Sched_heuristics
