test/test_repair.ml: Alcotest Array List Placement Problem QCheck QCheck_alcotest Qp_graph Qp_place Qp_quorum Qp_util Qpp_solver Repair
