test/test_sim.ml: Access_sim Alcotest Array Float List QCheck QCheck_alcotest Qp_graph Qp_place Qp_quorum Qp_sim Qp_util Sim
