test/test_extensions.ml: Alcotest Array Delay List Placement Problem QCheck QCheck_alcotest Qp_graph Qp_place Qp_quorum Qp_util Strategy_opt
