test/test_byzantine.ml: Alcotest Array Availability Byzantine_qs Float Fpp_qs Grid_qs List Majority_qs Probe QCheck QCheck_alcotest Qp_quorum Qp_util Quorum Simple_qs
