test/test_lp.ml: Alcotest Array List Lp QCheck QCheck_alcotest Qp_lp Qp_util Simplex
