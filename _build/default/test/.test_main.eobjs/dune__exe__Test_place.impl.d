test/test_place.ml: Alcotest Array Baselines Capacity Delay Exact Float List Placement Problem QCheck QCheck_alcotest Qp_graph Qp_place Qp_quorum Qp_util Relay
