test/test_fault_sim.ml: Alcotest Array Fault_sim Float Qp_graph Qp_place Qp_quorum Qp_sim Qp_util
