test/test_serialize.ml: Alcotest Array Delay Filename Fun List Problem QCheck QCheck_alcotest Qp_graph Qp_place Qp_quorum Qp_util Serialize String Sys
