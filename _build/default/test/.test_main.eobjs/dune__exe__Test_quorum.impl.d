test/test_quorum.ml: Alcotest Array Float Fpp_qs Grid_qs List Majority_qs QCheck QCheck_alcotest Qp_quorum Qp_util Quorum Simple_qs Strategy Tree_qs Walls_qs
