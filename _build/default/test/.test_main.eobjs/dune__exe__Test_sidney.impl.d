test/test_sidney.ml: Alcotest Array List QCheck QCheck_alcotest Qp_assign Qp_sched Qp_util Sched Sched_exact Sidney
