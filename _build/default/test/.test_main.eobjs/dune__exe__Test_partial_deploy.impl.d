test/test_partial_deploy.ml: Alcotest Array List Partial_deploy Problem QCheck QCheck_alcotest Qp_graph Qp_place Qp_quorum Qp_util
