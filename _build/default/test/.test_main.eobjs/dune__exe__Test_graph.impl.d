test/test_graph.ml: Alcotest Apsp Array Dijkstra Dot Float Generators Graph Heap List Metric Mst QCheck QCheck_alcotest Qp_graph Qp_util String Union_find
