test/test_pareto.ml: Alcotest Array Delay List Pareto Placement Problem QCheck QCheck_alcotest Qp_graph Qp_place Qp_quorum Qp_util
