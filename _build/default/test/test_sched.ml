open Qp_sched
module Rng = Qp_util.Rng

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Core                                                                *)
(* ------------------------------------------------------------------ *)

let simple_instance () =
  (* 3 jobs, 0 -> 2 precedence. *)
  Sched.make ~time:[| 2.; 1.; 3. |] ~weight:[| 1.; 2.; 1. |] ~prec:[ (0, 2) ]

let test_make_validation () =
  Alcotest.check_raises "cycle" (Invalid_argument "Sched.make: cyclic precedence")
    (fun () ->
      ignore (Sched.make ~time:[| 1.; 1. |] ~weight:[| 1.; 1. |] ~prec:[ (0, 1); (1, 0) ]));
  Alcotest.check_raises "self edge" (Invalid_argument "Sched.make: bad precedence pair")
    (fun () -> ignore (Sched.make ~time:[| 1. |] ~weight:[| 1. |] ~prec:[ (0, 0) ]));
  Alcotest.check_raises "negative time" (Invalid_argument "Sched.make: negative time")
    (fun () -> ignore (Sched.make ~time:[| -1. |] ~weight:[| 1. |] ~prec:[]))

let test_cost_and_feasibility () =
  let t = simple_instance () in
  (* Order 1, 0, 2: C_1 = 1, C_0 = 3, C_2 = 6 -> 2 + 3 + 6 = 11. *)
  check_float "cost" 11. (Sched.cost t [| 1; 0; 2 |]);
  Alcotest.(check bool) "feasible" true (Sched.is_feasible t [| 0; 1; 2 |]);
  Alcotest.(check bool) "violates prec" false (Sched.is_feasible t [| 2; 0; 1 |]);
  Alcotest.(check bool) "not a permutation" false (Sched.is_feasible t [| 0; 0; 2 |]);
  Alcotest.check_raises "cost rejects" (Invalid_argument "Sched.cost: infeasible schedule")
    (fun () -> ignore (Sched.cost t [| 2; 0; 1 |]))

let test_topological () =
  let t = simple_instance () in
  Alcotest.(check bool) "topo feasible" true (Sched.is_feasible t (Sched.topological_order t));
  Alcotest.(check (list int)) "preds" [ 0 ] (Sched.predecessors t 2);
  Alcotest.(check (list int)) "succs" [ 2 ] (Sched.successors t 0)

let test_woeginger_form () =
  let t = Sched.make ~time:[| 1.; 0. |] ~weight:[| 0.; 1. |] ~prec:[ (0, 1) ] in
  Alcotest.(check bool) "in form" true (Sched.is_woeginger_form t);
  Alcotest.(check bool) "general not in form" false
    (Sched.is_woeginger_form (simple_instance ()));
  let bad_edge = Sched.make ~time:[| 1.; 1. |] ~weight:[| 0.; 0. |] ~prec:[ (0, 1) ] in
  Alcotest.(check bool) "edge between unit-time jobs" false
    (Sched.is_woeginger_form bad_edge)

let test_random_woeginger () =
  let rng = Rng.create 3 in
  let t = Sched.random_woeginger rng ~n_unit_time:4 ~n_unit_weight:3 ~edge_prob:0.5 in
  Alcotest.(check int) "job count" 7 t.Sched.n;
  Alcotest.(check bool) "in form" true (Sched.is_woeginger_form t)

(* ------------------------------------------------------------------ *)
(* Exact DP                                                            *)
(* ------------------------------------------------------------------ *)

let test_exact_no_prec_smith_rule () =
  (* Without precedence the optimum follows Smith's rule (sort by
     w/T descending): times 3,1,2 weights 1,1,4 -> order 2,1,0 ->
     C = 2, 3, 6 -> 4*2 + 1*3 + 1*6 = 17. *)
  let t = Sched.make ~time:[| 3.; 1.; 2. |] ~weight:[| 1.; 1.; 4. |] ~prec:[] in
  let cost, order = Sched_exact.solve t in
  check_float "optimal cost" 17. cost;
  Alcotest.(check bool) "order feasible" true (Sched.is_feasible t order);
  check_float "order cost matches" cost (Sched.cost t order)

let test_exact_with_prec () =
  (* Force the heavy job behind a slow one. *)
  let t = Sched.make ~time:[| 5.; 1. |] ~weight:[| 0.; 10. |] ~prec:[ (0, 1) ] in
  let cost, order = Sched_exact.solve t in
  check_float "forced wait" 60. cost;
  Alcotest.(check (array int)) "order" [| 0; 1 |] order

let prop_exact_equals_brute_force =
  QCheck.Test.make ~name:"DP = brute force on small instances" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 5 in
      let time = Array.init n (fun _ -> float_of_int (Rng.int rng 4)) in
      let weight = Array.init n (fun _ -> float_of_int (Rng.int rng 4)) in
      (* Random DAG respecting index order. *)
      let prec = ref [] in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          if Rng.uniform rng < 0.3 then prec := (a, b) :: !prec
        done
      done;
      let t = Sched.make ~time ~weight ~prec:!prec in
      let dp, order = Sched_exact.solve t in
      let bf = Sched_exact.brute_force t in
      Float.abs (dp -. bf) < 1e-9 && Sched.is_feasible t order)

let prop_wspt_optimal_without_prec =
  QCheck.Test.make ~name:"WSPT heuristic optimal when prec empty" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 100) in
      let n = 2 + Rng.int rng 5 in
      let time = Array.init n (fun _ -> 1. +. float_of_int (Rng.int rng 4)) in
      let weight = Array.init n (fun _ -> float_of_int (Rng.int rng 5)) in
      let t = Sched.make ~time ~weight ~prec:[] in
      let dp, _ = Sched_exact.solve t in
      Float.abs (Sched.cost t (Sched_heuristics.wspt t) -. dp) < 1e-9)

let prop_heuristics_feasible_and_ge_opt =
  QCheck.Test.make ~name:"heuristics feasible and >= optimum" ~count:50
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 200) in
      let t = Sched.random_woeginger rng ~n_unit_time:4 ~n_unit_weight:4 ~edge_prob:0.4 in
      let dp, _ = Sched_exact.solve t in
      let h1 = Sched_heuristics.wspt t in
      let h2 = Sched_heuristics.topological t in
      Sched.is_feasible t h1 && Sched.is_feasible t h2
      && Sched.cost t h1 >= dp -. 1e-9
      && Sched.cost t h2 >= dp -. 1e-9)

(* ------------------------------------------------------------------ *)
(* Reduction (Theorem 3.6)                                             *)
(* ------------------------------------------------------------------ *)

let woeginger_fixture () =
  (* 3 unit-time jobs (0,1,2), 2 unit-weight jobs (3,4);
     0 -> 3, 1 -> 3, 2 -> 4. *)
  Sched.make
    ~time:[| 1.; 1.; 1.; 0.; 0. |]
    ~weight:[| 0.; 0.; 0.; 1.; 1. |]
    ~prec:[ (0, 3); (1, 3); (2, 4) ]

let test_reduction_shape () =
  let r = Reduction.make (woeginger_fixture ()) in
  Alcotest.(check int) "universe = n-m+1" 4 (Qp_quorum.Quorum.universe r.Reduction.system);
  Alcotest.(check int) "quorum count = n" 5
    (Qp_quorum.Quorum.n_quorums r.Reduction.system);
  Alcotest.(check int) "path nodes" 4 (Qp_graph.Graph.n_vertices r.Reduction.graph);
  check_float "hub capacity" 1. r.Reduction.capacities.(0);
  (* Strategy sums to 1 and epsilon below the proof's threshold. *)
  Alcotest.(check bool) "epsilon small" true
    (r.Reduction.epsilon < (1. -. r.Reduction.epsilon) /. 3.)

let test_reduction_load_properties () =
  let r = Reduction.make (woeginger_fixture ()) in
  let loads = Qp_quorum.Strategy.loads r.Reduction.system r.Reduction.strategy in
  check_float "hub load is 1" 1. loads.(0);
  let nm = 3. in
  let eps = r.Reduction.epsilon in
  for u = 1 to 3 do
    Alcotest.(check bool) "element load within proof bounds" true
      (loads.(u) >= ((1. -. eps) /. nm) -. 1e-9
      && loads.(u) < (2. *. (1. -. eps) /. nm) +. 1e-9)
  done;
  (* Non-hub capacity must accept exactly one element. *)
  let cap = r.Reduction.capacities.(1) in
  for u = 1 to 3 do
    Alcotest.(check bool) "one element fits" true (loads.(u) <= cap +. 1e-9)
  done;
  Alcotest.(check bool) "two min elements do not fit" true
    (2. *. ((1. -. eps) /. nm) > cap +. 1e-9)

let test_reduction_rejects () =
  Alcotest.check_raises "not woeginger"
    (Invalid_argument "Reduction.make: instance not in Woeginger form") (fun () ->
      ignore (Reduction.make (simple_instance ())));
  let reordered =
    Sched.make ~time:[| 0.; 1. |] ~weight:[| 1.; 0. |] ~prec:[]
  in
  Alcotest.check_raises "ordering"
    (Invalid_argument "Reduction.make: unit-time jobs must precede unit-weight jobs")
    (fun () -> ignore (Reduction.make reordered))

let test_reduction_cost_correspondence () =
  let sched = woeginger_fixture () in
  let r = Reduction.make sched in
  (* Try all 3! placements of elements 1..3 on nodes 1..3. *)
  let perms = [ [| 1; 2; 3 |]; [| 1; 3; 2 |]; [| 2; 1; 3 |]; [| 2; 3; 1 |]; [| 3; 1; 2 |]; [| 3; 2; 1 |] ] in
  List.iter
    (fun perm ->
      let f = Array.append [| 0 |] perm in
      let delay = Reduction.delay_of_placement r f in
      let schedule = Reduction.schedule_of_placement r f in
      Alcotest.(check bool) "schedule feasible" true (Sched.is_feasible sched schedule);
      let cost = Sched.cost sched schedule in
      check_float "affine correspondence" delay (Reduction.delay_of_cost r cost);
      check_float "inverse" cost (Reduction.cost_of_delay r delay))
    perms

let test_reduction_optima_align () =
  let sched = woeginger_fixture () in
  let r = Reduction.make sched in
  let opt_cost, _ = Sched_exact.solve sched in
  (* Brute-force the SSQPP side over all placements. *)
  let best_delay = ref infinity in
  let perms = [ [| 1; 2; 3 |]; [| 1; 3; 2 |]; [| 2; 1; 3 |]; [| 2; 3; 1 |]; [| 3; 1; 2 |]; [| 3; 2; 1 |] ] in
  List.iter
    (fun perm ->
      let f = Array.append [| 0 |] perm in
      let d = Reduction.delay_of_placement r f in
      if d < !best_delay then best_delay := d)
    perms;
  check_float "optimal schedule <-> optimal placement" opt_cost
    (Reduction.cost_of_delay r !best_delay)

let prop_reduction_correspondence_random =
  QCheck.Test.make ~name:"reduction affine correspondence (random)" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 42) in
      let nt = 2 + Rng.int rng 4 in
      let nw = 1 + Rng.int rng 3 in
      let sched = Sched.random_woeginger rng ~n_unit_time:nt ~n_unit_weight:nw ~edge_prob:0.5 in
      let r = Reduction.make sched in
      (* Random placement: random permutation of 1..nt. *)
      let perm = Rng.permutation rng nt in
      let f = Array.append [| 0 |] (Array.map (fun x -> x + 1) perm) in
      let delay = Reduction.delay_of_placement r f in
      let schedule = Reduction.schedule_of_placement r f in
      Sched.is_feasible sched schedule
      &&
      let cost = Sched.cost sched schedule in
      Float.abs (delay -. Reduction.delay_of_cost r cost) < 1e-9)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_exact_equals_brute_force; prop_wspt_optimal_without_prec;
      prop_heuristics_feasible_and_ge_opt; prop_reduction_correspondence_random;
    ]

let suites =
  [
    ( "sched.core",
      [
        Alcotest.test_case "validation" `Quick test_make_validation;
        Alcotest.test_case "cost + feasibility" `Quick test_cost_and_feasibility;
        Alcotest.test_case "topological" `Quick test_topological;
        Alcotest.test_case "woeginger form" `Quick test_woeginger_form;
        Alcotest.test_case "random woeginger" `Quick test_random_woeginger;
      ] );
    ( "sched.exact",
      [
        Alcotest.test_case "smith rule" `Quick test_exact_no_prec_smith_rule;
        Alcotest.test_case "with precedence" `Quick test_exact_with_prec;
      ] );
    ( "sched.reduction",
      [
        Alcotest.test_case "shape" `Quick test_reduction_shape;
        Alcotest.test_case "load properties" `Quick test_reduction_load_properties;
        Alcotest.test_case "rejects bad input" `Quick test_reduction_rejects;
        Alcotest.test_case "cost correspondence" `Quick test_reduction_cost_correspondence;
        Alcotest.test_case "optima align" `Quick test_reduction_optima_align;
      ] );
    ("sched.properties", qcheck_tests);
  ]
