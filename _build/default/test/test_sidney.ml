module Rng = Qp_util.Rng
module Maxflow = Qp_assign.Maxflow
open Qp_sched

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Max-flow                                                            *)
(* ------------------------------------------------------------------ *)

let test_maxflow_known () =
  (* Classic 4-node example: max flow 2.5 through two paths. *)
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:1.5;
  Maxflow.add_edge net ~src:0 ~dst:2 ~capacity:1.0;
  Maxflow.add_edge net ~src:1 ~dst:3 ~capacity:2.0;
  Maxflow.add_edge net ~src:2 ~dst:3 ~capacity:1.0;
  check_float "value" 2.5 (Maxflow.max_flow net ~source:0 ~sink:3);
  let side = Maxflow.min_cut_side net ~source:0 in
  Alcotest.(check bool) "source in" true side.(0);
  Alcotest.(check bool) "sink out" false side.(3)

let test_maxflow_bottleneck () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:10.;
  Maxflow.add_edge net ~src:1 ~dst:2 ~capacity:0.25;
  check_float "bottleneck" 0.25 (Maxflow.max_flow net ~source:0 ~sink:2)

let test_maxflow_disconnected () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:1.;
  check_float "zero" 0. (Maxflow.max_flow net ~source:0 ~sink:2)

let test_maxflow_infinite_arc () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~capacity:3.;
  Maxflow.add_edge net ~src:1 ~dst:2 ~capacity:infinity;
  check_float "finite bottleneck" 3. (Maxflow.max_flow net ~source:0 ~sink:2)

let test_maxflow_equals_mcmf_on_unit_networks () =
  (* Cross-check against the integer MCMF on random unit-capacity
     DAGs. *)
  for seed = 1 to 10 do
    let rng = Rng.create (700 + seed) in
    let n = 6 in
    let edges = ref [] in
    for i = 0 to n - 2 do
      for j = i + 1 to n - 1 do
        if Rng.uniform rng < 0.5 then edges := (i, j) :: !edges
      done
    done;
    let net = Maxflow.create n in
    let mc = Qp_assign.Mcmf.create n in
    List.iter
      (fun (i, j) ->
        Maxflow.add_edge net ~src:i ~dst:j ~capacity:1.;
        Qp_assign.Mcmf.add_edge mc ~src:i ~dst:j ~capacity:1 ~cost:0.)
      !edges;
    let f1 = Maxflow.max_flow net ~source:0 ~sink:(n - 1) in
    let f2, _ = Qp_assign.Mcmf.min_cost_flow mc ~source:0 ~sink:(n - 1) () in
    check_float "agree" (float_of_int f2) f1
  done

(* ------------------------------------------------------------------ *)
(* Max-weight ideals                                                   *)
(* ------------------------------------------------------------------ *)

let chain3 () =
  (* 0 -> 1 -> 2 with mixed weights. *)
  Sched.make ~time:[| 1.; 1.; 1. |] ~weight:[| 1.; 1.; 1. |] ~prec:[ (0, 1); (1, 2) ]

let test_ideal_respects_closure () =
  let t = chain3 () in
  (* Weight +1 on job 2 only: taking 2 forces 0 and 1 (costs -0.6
     each): net -0.2 < 0, so the best ideal is empty. *)
  let w = function 2 -> 1. | _ -> -0.6 in
  Alcotest.(check (list int)) "empty" []
    (Sidney.max_weight_ideal t ~among:[ 0; 1; 2 ] ~weights:w);
  (* Cheaper predecessors: take the whole chain. *)
  let w = function 2 -> 1. | _ -> -0.3 in
  Alcotest.(check (list int)) "whole chain" [ 0; 1; 2 ]
    (Sidney.max_weight_ideal t ~among:[ 0; 1; 2 ] ~weights:w)

let test_ideal_picks_positive_prefix () =
  let t = chain3 () in
  let w = function 0 -> 2. | 1 -> -1. | _ -> -5. in
  Alcotest.(check (list int)) "prefix only" [ 0 ]
    (Sidney.max_weight_ideal t ~among:[ 0; 1; 2 ] ~weights:w)

(* ------------------------------------------------------------------ *)
(* Sidney decomposition                                                *)
(* ------------------------------------------------------------------ *)

let test_density_blocks_nonincreasing () =
  let rng = Rng.create 11 in
  for _ = 1 to 10 do
    let n = 4 + Rng.int rng 5 in
    let time = Array.init n (fun _ -> 1. +. float_of_int (Rng.int rng 4)) in
    let weight = Array.init n (fun _ -> float_of_int (Rng.int rng 6)) in
    let prec = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if Rng.uniform rng < 0.3 then prec := (a, b) :: !prec
      done
    done;
    let t = Sched.make ~time ~weight ~prec:!prec in
    let blocks = Sidney.decomposition t in
    (* Partition check. *)
    let all = List.sort compare (List.concat blocks) in
    Alcotest.(check (list int)) "partition" (List.init n (fun j -> j)) all;
    (* Densities non-increasing. *)
    let density block =
      let w = List.fold_left (fun acc j -> acc +. weight.(j)) 0. block in
      let p = List.fold_left (fun acc j -> acc +. time.(j)) 0. block in
      w /. p
    in
    let rec check = function
      | a :: (b :: _ as rest) ->
          Alcotest.(check bool) "non-increasing density" true
            (density a +. 1e-9 >= density b);
          check rest
      | _ -> ()
    in
    check blocks
  done

let test_schedule_feasible_and_two_approx () =
  let rng = Rng.create 13 in
  for _ = 1 to 15 do
    let n = 4 + Rng.int rng 5 in
    let time = Array.init n (fun _ -> 1. +. float_of_int (Rng.int rng 4)) in
    let weight = Array.init n (fun _ -> float_of_int (Rng.int rng 6)) in
    let prec = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if Rng.uniform rng < 0.3 then prec := (a, b) :: !prec
      done
    done;
    let t = Sched.make ~time ~weight ~prec:!prec in
    let order = Sidney.schedule t in
    Alcotest.(check bool) "feasible" true (Sched.is_feasible t order);
    let opt, _ = Sched_exact.solve t in
    if opt > 0. then
      Alcotest.(check bool) "2-approximation" true
        (Sched.cost t order <= (2. *. opt) +. 1e-9)
  done

let test_schedule_optimal_without_prec () =
  (* No precedence: Sidney blocks peel off in WSPT order, giving the
     exact optimum (Smith's rule). *)
  let rng = Rng.create 17 in
  for _ = 1 to 10 do
    let n = 3 + Rng.int rng 5 in
    let time = Array.init n (fun _ -> 1. +. float_of_int (Rng.int rng 4)) in
    let weight = Array.init n (fun _ -> 1. +. float_of_int (Rng.int rng 5)) in
    let t = Sched.make ~time ~weight ~prec:[] in
    let opt, _ = Sched_exact.solve t in
    check_float "optimal" opt (Sched.cost t (Sidney.schedule t))
  done

let test_sidney_rejects_zero_times () =
  let t = Sched.make ~time:[| 1.; 0. |] ~weight:[| 0.; 1. |] ~prec:[] in
  Alcotest.check_raises "zero time"
    (Invalid_argument "Sidney: positive processing times required") (fun () ->
      ignore (Sidney.decomposition t))

let prop_sidney_two_approx =
  QCheck.Test.make ~name:"Sidney schedule within 2x of subset-DP optimum" ~count:40
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 900) in
      let n = 3 + Rng.int rng 6 in
      let time = Array.init n (fun _ -> 1. +. float_of_int (Rng.int rng 3)) in
      let weight = Array.init n (fun _ -> float_of_int (Rng.int rng 5)) in
      let prec = ref [] in
      for a = 0 to n - 1 do
        for b = a + 1 to n - 1 do
          if Rng.uniform rng < 0.35 then prec := (a, b) :: !prec
        done
      done;
      let t = Sched.make ~time ~weight ~prec:!prec in
      let order = Sidney.schedule t in
      let opt, _ = Sched_exact.solve t in
      Sched.is_feasible t order && Sched.cost t order <= (2. *. opt) +. 1e-9)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_sidney_two_approx ]

let suites =
  [
    ( "assign.maxflow",
      [
        Alcotest.test_case "known value + cut" `Quick test_maxflow_known;
        Alcotest.test_case "bottleneck" `Quick test_maxflow_bottleneck;
        Alcotest.test_case "disconnected" `Quick test_maxflow_disconnected;
        Alcotest.test_case "infinite arcs" `Quick test_maxflow_infinite_arc;
        Alcotest.test_case "matches mcmf" `Quick test_maxflow_equals_mcmf_on_unit_networks;
      ] );
    ( "sched.sidney",
      [
        Alcotest.test_case "closure respected" `Quick test_ideal_respects_closure;
        Alcotest.test_case "positive prefix" `Quick test_ideal_picks_positive_prefix;
        Alcotest.test_case "block densities" `Quick test_density_blocks_nonincreasing;
        Alcotest.test_case "feasible 2-approx" `Quick test_schedule_feasible_and_two_approx;
        Alcotest.test_case "optimal without prec" `Quick test_schedule_optimal_without_prec;
        Alcotest.test_case "rejects zero times" `Quick test_sidney_rejects_zero_times;
      ] );
    ("sidney.properties", qcheck_tests);
  ]
